// dst_explore: the deterministic chaos-exploration driver (sim/explore.h).
//
// Sweep mode (default): run a time-boxed sweep of seeded fault schedules,
// checking every run against the four cluster invariants. A violating seed
// is written out as a JSON replay artifact, ddmin-shrunk to a minimal
// schedule, and the process exits nonzero.
//
//   dst_explore --seeds=200 --base-seed=1 --artifact-dir=dst_artifacts
//
// Replay mode: load an artifact and run it twice, asserting bit-identical
// fingerprints (the determinism contract), printing any violations.
//
//   dst_explore --replay=dst_artifacts/seed-17.json
//
// Not a gtest binary: the tier-1 `dst` leg and scripts/dst_nightly.sh drive
// it directly, and ctest registers it with a small sweep.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/explore.h"

namespace {

using aodb::FaultPlan;
using aodb::Status;
using aodb::dst::ExploreConfig;
using aodb::dst::RunResult;

struct Args {
  int seeds = 50;
  uint64_t base_seed = 1;
  std::string replay;
  std::string artifact_dir = "dst_artifacts";
  bool shrink = true;
  bool force_violation = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--seeds=")) {
      out->seeds = std::atoi(v);
    } else if (const char* v = value("--base-seed=")) {
      out->base_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--replay=")) {
      out->replay = v;
    } else if (const char* v = value("--artifact-dir=")) {
      out->artifact_dir = v;
    } else if (arg == "--no-shrink") {
      out->shrink = false;
    } else if (arg == "--force-violation") {
      out->force_violation = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (out->seeds <= 0 && out->replay.empty()) {
    std::fprintf(stderr, "--seeds must be positive\n");
    return false;
  }
  if (out->base_seed == 0) out->base_seed = 1;  // Seed 0 is reserved.
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: dst_explore [--seeds=N] [--base-seed=S] [--artifact-dir=DIR]\n"
      "                   [--no-shrink] [--force-violation] [--replay=FILE]\n");
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int Replay(const Args& args) {
  std::ifstream in(args.replay, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "dst_explore: cannot open %s\n",
                 args.replay.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  FaultPlan plan;
  Status st = aodb::dst::PlanFromJson(buf.str(), &plan);
  if (!st.ok()) {
    std::fprintf(stderr, "dst_explore: %s\n", st.ToString().c_str());
    return 2;
  }
  ExploreConfig config;
  config.force_violation = args.force_violation;
  std::printf("replaying seed %llu (%d fault events) from %s\n",
              static_cast<unsigned long long>(plan.seed),
              aodb::dst::CountFaultEvents(plan), args.replay.c_str());
  RunResult first = aodb::dst::RunScenario(plan, config);
  RunResult second = aodb::dst::RunScenario(plan, config);
  std::printf("run 1 fingerprint: %s\n", first.fingerprint.c_str());
  std::printf("run 2 fingerprint: %s\n", second.fingerprint.c_str());
  for (const std::string& v : first.violations) {
    std::printf("violation: %s\n", v.c_str());
  }
  if (first.fingerprint != second.fingerprint) {
    std::fprintf(stderr,
                 "dst_explore: REPLAY NOT DETERMINISTIC (fingerprints "
                 "differ)\n");
    return 2;
  }
  if (first.postmortem_json != second.postmortem_json) {
    std::fprintf(stderr,
                 "dst_explore: REPLAY NOT DETERMINISTIC (postmortem bundles "
                 "differ)\n");
    return 2;
  }
  if (!first.postmortem_json.empty()) {
    // seed-N.json -> seed-N.bundle.json, next to the replay artifact.
    std::string bundle_path = args.replay;
    const std::string suffix = ".json";
    if (bundle_path.size() > suffix.size() &&
        bundle_path.compare(bundle_path.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
      bundle_path.resize(bundle_path.size() - suffix.size());
    }
    bundle_path += ".bundle.json";
    if (WriteFile(bundle_path, first.postmortem_json)) {
      std::printf("postmortem bundle: %s\n", bundle_path.c_str());
    } else {
      std::fprintf(stderr, "dst_explore: failed to write %s\n",
                   bundle_path.c_str());
    }
  }
  std::printf("replay deterministic: %d violation(s), %lld acked ops\n",
              static_cast<int>(first.violations.size()),
              static_cast<long long>(first.acked_ops));
  return 0;
}

int Sweep(const Args& args) {
  ExploreConfig config;
  config.force_violation = args.force_violation;
  int64_t total_acked = 0;
  int64_t total_checks = 0;
  int violating_seeds = 0;
  std::vector<std::string> artifacts;
  for (int i = 0; i < args.seeds; ++i) {
    const uint64_t seed = args.base_seed + static_cast<uint64_t>(i);
    FaultPlan plan = aodb::dst::GeneratePlan(seed, config);
    RunResult result = aodb::dst::RunScenario(plan, config);
    total_acked += result.acked_ops;
    total_checks += result.checks_run;
    if (result.violations.empty()) continue;

    ++violating_seeds;
    std::printf("seed %llu: %d violation(s) [%d fault events]\n",
                static_cast<unsigned long long>(seed),
                static_cast<int>(result.violations.size()),
                aodb::dst::CountFaultEvents(plan));
    for (const std::string& v : result.violations) {
      std::printf("  %s\n", v.c_str());
    }
    std::error_code ec;
    std::filesystem::create_directories(args.artifact_dir, ec);
    const std::string base =
        args.artifact_dir + "/seed-" + std::to_string(seed);
    const std::string full_path = base + ".json";
    if (WriteFile(full_path, aodb::dst::PlanToJson(plan))) {
      std::printf("  replay artifact: %s\n", full_path.c_str());
      artifacts.push_back(full_path);
    } else {
      std::fprintf(stderr, "  failed to write %s\n", full_path.c_str());
    }
    if (!result.postmortem_json.empty()) {
      const std::string bundle_path = base + ".bundle.json";
      if (WriteFile(bundle_path, result.postmortem_json)) {
        std::printf("  postmortem bundle: %s\n", bundle_path.c_str());
        artifacts.push_back(bundle_path);
      } else {
        std::fprintf(stderr, "  failed to write %s\n", bundle_path.c_str());
      }
    }
    if (args.shrink) {
      int shrink_runs = 0;
      FaultPlan minimized =
          aodb::dst::ShrinkPlan(plan, config, /*max_runs=*/64, &shrink_runs);
      const std::string min_path = base + ".min.json";
      if (WriteFile(min_path, aodb::dst::PlanToJson(minimized))) {
        std::printf(
            "  minimized: %d -> %d fault events in %d shrink runs: %s\n",
            aodb::dst::CountFaultEvents(plan),
            aodb::dst::CountFaultEvents(minimized), shrink_runs,
            min_path.c_str());
        artifacts.push_back(min_path);
      }
    }
  }
  std::printf(
      "dst_explore: %d seed(s) explored, %d violating, %lld acked ops, "
      "%lld invariant checks\n",
      args.seeds, violating_seeds, static_cast<long long>(total_acked),
      static_cast<long long>(total_checks));
  if (total_checks == 0 || total_acked == 0) {
    std::fprintf(stderr,
                 "dst_explore: sweep made no progress (0 checks or 0 acked "
                 "ops) — harness wiring is broken\n");
    return 2;
  }
  if (violating_seeds > 0) {
    std::fprintf(stderr, "dst_explore: INVARIANT VIOLATIONS FOUND\n");
    for (const std::string& a : artifacts) {
      std::fprintf(stderr, "  artifact: %s\n", a.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.replay.empty()) return Replay(args);
  return Sweep(args);
}
