// End-to-end tests of the beef cattle tracking & tracing platform:
// herd management, collar ingestion, geo-fencing, ownership transfer via
// transaction and via workflow, the slaughter -> cuts -> delivery ->
// product pipeline in both meat-cut models, and consumer tracing.

#include <gtest/gtest.h>

#include "cattle/platform.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace cattle {
namespace {

class CattleSimTest : public ::testing::Test {
 protected:
  CattleSimTest() : harness_(MakeOptions()), platform_(&harness_.cluster()) {
    CattlePlatform::RegisterTypes(harness_.cluster());
    // Startup assertion: every registered type must have wire methods, so
    // strict mode cannot hit an unregistered cross-silo call mid-test.
    Status wires = harness_.cluster().CheckWireRegistry();
    EXPECT_TRUE(wires.ok()) << wires.ToString();
  }

  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 3;
    o.workers_per_silo = 2;
    o.wire.require_wire = true;
    return o;
  }

  /// Runs the scheduler and unwraps a future that must complete OK.
  template <typename T>
  T Must(Future<T> f, Micros run_for = 10 * kMicrosPerSecond) {
    harness_.RunFor(run_for);
    auto r = f.Get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Status MustOk(Future<Status> f, Micros run_for = 10 * kMicrosPerSecond) {
    Status st = Must(std::move(f), run_for);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return st;
  }

  SimHarness harness_;
  CattlePlatform platform_;
};

TEST_F(CattleSimTest, RegisterCowUpdatesBothSides) {
  MustOk(platform_.RegisterCow("cow-1", "farm-1", "Angus"));
  auto herd = harness_.cluster().Ref<FarmerActor>("farm-1").Call(
      &FarmerActor::Herd);
  auto info =
      harness_.cluster().Ref<CowActor>("cow-1").Call(&CowActor::Info);
  harness_.RunFor(kMicrosPerSecond);
  ASSERT_EQ(herd.Get().value().size(), 1u);
  EXPECT_EQ(herd.Get().value()[0], "cow-1");
  EXPECT_EQ(info.Get().value().owner_farmer, "farm-1");
  EXPECT_EQ(info.Get().value().breed, "Angus");
}

TEST_F(CattleSimTest, CollarReadingsBuildTrajectory) {
  MustOk(platform_.RegisterCow("cow-2", "farm-1", "Hereford"));
  auto cow = harness_.cluster().Ref<CowActor>("cow-2");
  Micros base = harness_.Now();
  for (int i = 0; i < 10; ++i) {
    cow.Tell(&CowActor::ReportCollar,
             CollarReading{base + i * kMicrosPerSecond,
                           GeoPoint{55.0 + i * 0.001, 12.0}, 0.5, 38.6});
  }
  harness_.RunFor(5 * kMicrosPerSecond);
  auto traj = cow.Call(&CowActor::Trajectory, Micros{0}, Micros{1} << 60);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(traj.Get().value().size(), 10u);
  auto info = cow.Call(&CowActor::Info);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_TRUE(info.Get().value().has_location);
  EXPECT_NEAR(info.Get().value().location.lat, 55.009, 1e-9);
}

TEST_F(CattleSimTest, GeofenceBreachAlertsTheFarmer) {
  MustOk(platform_.RegisterCow("cow-3", "farm-2", "Angus"));
  auto cow = harness_.cluster().Ref<CowActor>("cow-3");
  MustOk(cow.Call(&CowActor::SetPasture,
                  GeoFence::Rectangle(55.0, 12.0, 55.1, 12.1)));
  // Inside: no alert. Outside: alert.
  cow.Tell(&CowActor::ReportCollar,
           CollarReading{harness_.Now(), GeoPoint{55.05, 12.05}, 0.1, 38.5});
  cow.Tell(&CowActor::ReportCollar,
           CollarReading{harness_.Now(), GeoPoint{55.2, 12.05}, 1.9, 38.5});
  harness_.RunFor(5 * kMicrosPerSecond);
  auto alerts = harness_.cluster().Ref<FarmerActor>("farm-2").Call(
      &FarmerActor::TotalAlerts);
  auto breaches = cow.Call(&CowActor::GeofenceBreaches);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(alerts.Get().value(), 1);
  EXPECT_EQ(breaches.Get().value(), 1);
}

TEST_F(CattleSimTest, OwnershipTransferViaTransaction) {
  MustOk(platform_.RegisterCow("cow-4", "farm-a", "Angus"));
  MustOk(platform_.TransferOwnershipTxn("cow-4", "farm-a", "farm-b"));
  auto a = harness_.cluster().Ref<FarmerActor>("farm-a").Call(
      &FarmerActor::HerdSize);
  auto b = harness_.cluster().Ref<FarmerActor>("farm-b").Call(
      &FarmerActor::HerdSize);
  auto info =
      harness_.cluster().Ref<CowActor>("cow-4").Call(&CowActor::Info);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(a.Get().value(), 0);
  EXPECT_EQ(b.Get().value(), 1);
  EXPECT_EQ(info.Get().value().owner_farmer, "farm-b");
  // Ownership history preserves provenance.
  ASSERT_EQ(info.Get().value().owner_history.size(), 2u);
  EXPECT_EQ(info.Get().value().owner_history[0], "farm-a");
}

TEST_F(CattleSimTest, TransactionAbortsOnInvalidTransfer) {
  MustOk(platform_.RegisterCow("cow-5", "farm-a", "Angus"));
  // farm-c does not own cow-5: remove_cow validation must abort the txn,
  // leaving every participant unchanged.
  auto f = platform_.TransferOwnershipTxn("cow-5", "farm-c", "farm-b");
  harness_.RunFor(20 * kMicrosPerSecond);
  auto st = f.Get();
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st.value().ok());
  auto info =
      harness_.cluster().Ref<CowActor>("cow-5").Call(&CowActor::Info);
  auto b = harness_.cluster().Ref<FarmerActor>("farm-b").Call(
      &FarmerActor::HerdSize);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(info.Get().value().owner_farmer, "farm-a")
      << "aborted transaction must not change the cow";
  EXPECT_EQ(b.Get().value(), 0);
}

TEST_F(CattleSimTest, OwnershipTransferViaWorkflow) {
  MustOk(platform_.RegisterCow("cow-6", "farm-a", "Angus"));
  MustOk(platform_.TransferOwnershipWorkflow("cow-6", "farm-a", "farm-b"));
  auto info =
      harness_.cluster().Ref<CowActor>("cow-6").Call(&CowActor::Info);
  auto b = harness_.cluster().Ref<FarmerActor>("farm-b").Call(
      &FarmerActor::Owns, std::string("cow-6"));
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(info.Get().value().owner_farmer, "farm-b");
  EXPECT_TRUE(b.Get().value());
}

TEST_F(CattleSimTest, WorkflowCompensatesOnFailure) {
  MustOk(platform_.RegisterCow("cow-7", "farm-a", "Angus"));
  // Put cow-7 in farm-b's herd up front so the workflow's second step
  // (add_cow to farm-b) fails permanently, forcing compensation of the
  // first step (remove from farm-a is undone by add_cow).
  MustOk(harness_.cluster()
             .Ref<FarmerActor>("farm-b")
             .Call(&FarmerActor::RegisterCow, std::string("cow-7")));
  auto f = platform_.TransferOwnershipWorkflow("cow-7", "farm-a", "farm-b");
  harness_.RunFor(30 * kMicrosPerSecond);
  auto st = f.Get();
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st.value().ok());
  auto owns = harness_.cluster().Ref<FarmerActor>("farm-a").Call(
      &FarmerActor::Owns, std::string("cow-7"));
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_TRUE(owns.Get().value())
      << "compensation must restore farm-a's herd";
  EXPECT_GT(platform_.workflows().compensations(), 0);
}

TEST_F(CattleSimTest, SlaughterPipelineAndConsumerTrace) {
  MustOk(platform_.RegisterCow("cow-8", "farm-a", "Angus"));
  auto cuts = Must(platform_.SlaughterAndCut("sh-1", "cow-8", "farm-a", 4));
  ASSERT_EQ(cuts.size(), 4u);
  // A slaughtered cow cannot be slaughtered twice.
  auto again = harness_.cluster()
                   .Ref<SlaughterhouseActor>("sh-1")
                   .Call(&SlaughterhouseActor::Slaughter,
                         std::string("cow-8"));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(again.Get().ok());
  EXPECT_FALSE(again.Get().value().ok());
  // Ship two cuts to a retailer and build a product.
  MustOk(platform_.ShipCuts("dist-1", "shop-1",
                            {cuts[0], cuts[1]}, "Jutland", "Copenhagen"));
  auto product = Must(harness_.cluster()
                          .Ref<RetailerActor>("shop-1")
                          .Call(&RetailerActor::CreateProduct,
                                std::vector<std::string>{cuts[0], cuts[1]}));
  auto trace = Must(platform_.TraceProduct(product));
  EXPECT_EQ(trace.retailer_key, "shop-1");
  ASSERT_EQ(trace.cuts.size(), 2u);
  for (const CutTrace& cut : trace.cuts) {
    EXPECT_EQ(cut.cow_key, "cow-8");
    EXPECT_EQ(cut.farmer_key, "farm-a");
    EXPECT_EQ(cut.slaughterhouse_key, "sh-1");
    // Itinerary: slaughterhouse -> distributor departure -> retailer.
    ASSERT_GE(cut.itinerary.size(), 3u);
    EXPECT_EQ(cut.itinerary.front().holder_type, "Slaughterhouse");
    EXPECT_EQ(cut.itinerary.back().holder_type, "Retailer");
  }
}

TEST_F(CattleSimTest, ObjectCutModelTransfersAndTraces) {
  // Figure 5 variant: cuts as versioned non-actor objects copied along the
  // chain; tracing is answered from embedded state.
  MustOk(platform_.RegisterCow("cow-9", "farm-a", "Angus"));
  auto sh = harness_.cluster().Ref<SlaughterhouseActor>("sh-2");
  MustOk(sh.Call(&SlaughterhouseActor::Slaughter, std::string("cow-9")));
  auto cuts = Must(sh.Call(&SlaughterhouseActor::CreateCutsLocal,
                           std::string("cow-9"), std::string("farm-a"), 3));
  ASSERT_EQ(cuts.size(), 3u);
  MustOk(sh.Call(&SlaughterhouseActor::TransferCutsTo, std::string("dist-2"),
                 cuts, std::string("Jutland")));
  // After transfer the slaughterhouse no longer holds the records.
  auto remaining = Must(sh.Call(&SlaughterhouseActor::LocalCutCount));
  EXPECT_EQ(remaining, 0);
  auto dist = harness_.cluster().Ref<DistributorActor>("dist-2");
  auto held = Must(dist.Call(&DistributorActor::LocalCutCount));
  EXPECT_EQ(held, 3);
  // Version increments on each copy.
  auto rec = Must(dist.Call(&DistributorActor::ReadCutLocal, cuts[0]));
  EXPECT_EQ(rec.version, 2);
  EXPECT_EQ(rec.cow_key, "cow-9");
  // Onward to the retailer, then a locally traced product.
  MustOk(dist.Call(&DistributorActor::TransferCutsToRetailer,
                   std::string("shop-2"), cuts, std::string("Copenhagen")));
  auto shop = harness_.cluster().Ref<RetailerActor>("shop-2");
  auto product = Must(shop.Call(&RetailerActor::CreateProductLocal, cuts));
  auto trace = Must(platform_.TraceProduct(product));
  ASSERT_EQ(trace.cuts.size(), 3u);
  EXPECT_EQ(trace.cuts[0].cow_key, "cow-9");
  EXPECT_EQ(trace.cuts[0].farmer_key, "farm-a");
  // The object version of the embedded record reflects every copy hop.
  auto final_rec = Must(shop.Call(&RetailerActor::ReadCutLocal, cuts[0]));
  EXPECT_EQ(final_rec.version, 3);
  ASSERT_GE(final_rec.itinerary.size(), 3u);
}

TEST_F(CattleSimTest, CrossTenantCowAccessIsRestricted) {
  MustOk(platform_.RegisterCow("cow-10", "farm-a", "Angus"));
  auto cow = harness_.cluster().Ref<CowActor>("cow-10");
  cow.Tell(&CowActor::ReportCollar,
           CollarReading{harness_.Now(), GeoPoint{55, 12}, 0.1, 38.5});
  harness_.RunFor(2 * kMicrosPerSecond);
  // Another farmer cannot read the trajectory...
  auto foreign = cow.WithPrincipal(Principal{"farm-x", "farmer"})
                     .Call(&CowActor::Trajectory, Micros{0}, Micros{1} << 60);
  // ...but a slaughterhouse role can read provenance info (requirement 3).
  auto sh_info = cow.WithPrincipal(Principal{"sh-1", "slaughterhouse"})
                     .Call(&CowActor::Info);
  harness_.RunFor(2 * kMicrosPerSecond);
  EXPECT_TRUE(foreign.Get().value().empty());
  EXPECT_EQ(sh_info.Get().value().owner_farmer, "farm-a");
}

}  // namespace
}  // namespace cattle
}  // namespace aodb
