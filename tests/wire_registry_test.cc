// Tests of the serialized invocation boundary: method-registry self-checks,
// two-lane dispatch (closure lane for same-silo sends, wire lane for
// cross-silo sends), measured byte accounting, wire-frame corruption
// surfacing as clean Status::Corruption, strict-mode fail-fast for
// unregistered methods, registry completeness checking, and the promise
// double-completion guard.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "actor/fault.h"
#include "actor/method_registry.h"
#include "cattle/platform.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

// A perfectly wire-encodable method that is deliberately never registered
// with the MethodRegistry.
class UnregisteredActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "wiretest.Unregistered";
  int64_t Echo(int64_t v) { return v; }
};

RuntimeOptions StrictOptions(int silos) {
  RuntimeOptions o;
  o.num_silos = silos;
  o.workers_per_silo = 2;
  o.wire.require_wire = true;
  return o;
}

void RegisterPlatforms(Cluster& cluster) {
  shm::ShmPlatform::RegisterTypes(cluster);
  cattle::CattlePlatform::RegisterTypes(cluster);
}

shm::ShmTopology SmallTopology() {
  shm::ShmTopology t;
  t.sensors = 4;
  t.sensors_per_org = 4;
  t.virtual_every = 2;
  t.hour_window_us = 2 * kMicrosPerSecond;
  t.day_window_us = 10 * kMicrosPerSecond;
  t.month_window_us = 60 * kMicrosPerSecond;
  return t;
}

std::vector<shm::DataPoint> MakePacket(Micros start, int n) {
  std::vector<shm::DataPoint> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(shm::DataPoint{start + i * kMicrosPerMilli, 1.5 + i});
  }
  return pts;
}

// --- Registry ----------------------------------------------------------------

TEST(MethodRegistryTest, MethodIdsArePinnedFnv1a) {
  // The wire format depends on these ids never changing (DESIGN.md,
  // "Invocation boundary & wire format"). Pin one known value.
  EXPECT_EQ(MethodRegistry::MethodId("Insert"), 0x5ada999b33ccc808ULL);
  EXPECT_NE(MethodRegistry::MethodId("Insert"),
            MethodRegistry::MethodId("insert"));
}

TEST(MethodRegistryTest, EveryRegisteredMethodPassesCodecSelfCheck) {
  SimHarness harness(StrictOptions(1));
  RegisterPlatforms(harness.cluster());
  Status st = MethodRegistry::Global().SelfCheckAll();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(MethodRegistry::Global().TotalMethods(), 80u)
      << "both platforms plus aodb core should register their full surface";
}

TEST(MethodRegistryTest, RepeatedRegistrationIsIdempotent) {
  MethodRegistry& reg = MethodRegistry::Global();
  ASSERT_TRUE(reg.Register("wiretest.Idem", &UnregisteredActor::Echo, "Echo")
                  .ok());
  size_t count = reg.MethodCount("wiretest.Idem");
  ASSERT_TRUE(reg.Register("wiretest.Idem", &UnregisteredActor::Echo, "Echo")
                  .ok());
  EXPECT_EQ(reg.MethodCount("wiretest.Idem"), count);
  EXPECT_NE(reg.Find(&UnregisteredActor::Echo), nullptr);
}

TEST(MethodRegistryTest, CompletenessCheckNamesUncoveredTypes) {
  SimHarness harness(StrictOptions(1));
  RegisterPlatforms(harness.cluster());
  EXPECT_TRUE(harness.cluster().CheckWireRegistry().ok());
  harness.cluster().RegisterActorType<UnregisteredActor>();
  Status st = harness.cluster().CheckWireRegistry();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find(UnregisteredActor::kTypeName),
            std::string::npos)
      << st.ToString();
}

// --- Two-lane dispatch -------------------------------------------------------

TEST(WireLaneTest, RemoteSendsNeverUseClosureLane) {
  SimHarness harness(StrictOptions(3));
  RegisterPlatforms(harness.cluster());
  shm::ShmPlatform::ApplyPaperPlacement(harness.cluster());
  ASSERT_TRUE(harness.cluster().CheckWireRegistry().ok());
  shm::ShmPlatform platform(&harness.cluster());
  shm::ShmTopology t = SmallTopology();
  auto setup = platform.Setup(t);
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().ok()) << setup.Get().status().ToString();
  for (int s = 0; s < t.sensors; ++s) {
    auto f = platform.Insert(t, s, MakePacket(harness.Now(), 10));
    harness.RunFor(2 * kMicrosPerSecond);
    ASSERT_TRUE(f.Get().ok());
  }
  auto live = platform.LiveData(t, 0);
  harness.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(live.Get().ok());

  WireStats stats = harness.cluster().wire_stats();
  EXPECT_GT(stats.wire_requests, 0);
  EXPECT_EQ(stats.closure_fallbacks, 0)
      << "a cross-silo send took the closure lane despite registration";
  EXPECT_GT(stats.wire_replies, 0);
  EXPECT_GT(stats.wire_request_bytes, stats.wire_requests)
      << "every encoded request frame is larger than one byte";
  EXPECT_GT(stats.wire_reply_bytes, stats.wire_replies);
  EXPECT_EQ(stats.decode_failures, 0);
}

TEST(WireLaneTest, SameSiloSendsKeepTheClosureFastPath) {
  // One silo: all actor-to-actor traffic is silo-local and must stay on the
  // zero-copy closure lane; only client -> silo calls cross the wire.
  SimHarness harness(StrictOptions(1));
  RegisterPlatforms(harness.cluster());
  shm::ShmPlatform platform(&harness.cluster());
  shm::ShmTopology t = SmallTopology();
  auto setup = platform.Setup(t);
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().ok());
  auto f = platform.Insert(t, 0, MakePacket(harness.Now(), 20));
  harness.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());

  WireStats stats = harness.cluster().wire_stats();
  EXPECT_GT(stats.local_closure_sends, 0)
      << "co-located sensor->channel->aggregator sends must not serialize";
  EXPECT_GT(stats.wire_requests, 0) << "client calls still cross the wire";
  EXPECT_EQ(stats.closure_fallbacks, 0);
}

TEST(WireLaneTest, WireAndClosureLanesProduceIdenticalResults) {
  // The same cattle scenario through a mostly-local single-silo cluster and
  // a strict 3-silo cluster (every client call and most actor hops on the
  // wire lane) must be observationally identical.
  auto run = [](int silos) {
    SimHarness harness(StrictOptions(silos));
    RegisterPlatforms(harness.cluster());
    cattle::CattlePlatform platform(&harness.cluster());
    auto reg = platform.RegisterCow("cow-1", "farm-1", "Angus");
    harness.RunFor(10 * kMicrosPerSecond);
    EXPECT_TRUE(reg.Get().ok() && reg.Get().value().ok());
    auto cow = harness.cluster().Ref<cattle::CowActor>("cow-1");
    for (int i = 0; i < 3; ++i) {
      cattle::CollarReading r;
      r.ts = harness.Now();
      r.position = cattle::GeoPoint{10.0 + i, 20.0 + i};
      r.speed_mps = 0.5 * i;
      auto ack = cow.Call(&cattle::CowActor::ReportCollar, r);
      harness.RunFor(kMicrosPerSecond);
      EXPECT_TRUE(ack.Get().ok() && ack.Get().value().ok());
    }
    auto info = cow.Call(&cattle::CowActor::Info);
    auto traj = cow.Call(&cattle::CowActor::Trajectory, Micros{0},
                         Micros{1} << 60);
    harness.RunFor(2 * kMicrosPerSecond);
    EXPECT_TRUE(info.Get().ok());
    EXPECT_TRUE(traj.Get().ok());
    return std::make_pair(info.Get().value(), traj.Get().value());
  };
  auto [info_local, traj_local] = run(1);
  auto [info_wire, traj_wire] = run(3);
  EXPECT_EQ(info_local.owner_farmer, info_wire.owner_farmer);
  EXPECT_EQ(info_local.breed, info_wire.breed);
  ASSERT_EQ(traj_local.size(), traj_wire.size());
  for (size_t i = 0; i < traj_local.size(); ++i) {
    EXPECT_EQ(traj_local[i].position.lat, traj_wire[i].position.lat);
    EXPECT_EQ(traj_local[i].speed_mps, traj_wire[i].speed_mps);
  }
}

// --- Measured byte accounting ------------------------------------------------

TEST(WireBytesTest, MeasuredRequestBytesScaleWithPayload) {
  SimHarness harness(StrictOptions(1));
  RegisterPlatforms(harness.cluster());
  shm::ShmPlatform platform(&harness.cluster());
  shm::ShmTopology t = SmallTopology();
  auto setup = platform.Setup(t);
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().ok());

  auto measure = [&](int points) {
    WireStats before = harness.cluster().wire_stats();
    auto f = platform.Insert(t, 0, MakePacket(harness.Now(), points));
    harness.RunFor(5 * kMicrosPerSecond);
    EXPECT_TRUE(f.Get().ok());
    WireStats after = harness.cluster().wire_stats();
    EXPECT_EQ(after.wire_requests - before.wire_requests, 1)
        << "exactly the client Insert call crosses the wire in one silo";
    return after.wire_request_bytes - before.wire_request_bytes;
  };
  int64_t small = measure(1);
  int64_t large = measure(100);
  // Every DataPoint costs at least 9 encoded bytes (varint ts + 8-byte
  // double); the measured frame sizes must reflect the real payload.
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small + 99 * 9);
}

// --- Corruption --------------------------------------------------------------

TEST(WireCorruptionTest, CorruptedFramesSurfaceAsStatusCorruption) {
  SimHarness harness(StrictOptions(1));
  RegisterPlatforms(harness.cluster());
  FaultPlan plan;
  plan.message.corrupt_prob = 1.0;
  FaultInjector injector(plan);
  injector.Arm(&harness.cluster());

  auto cow = harness.cluster().Ref<cattle::CowActor>("cow-x");
  auto f = cow.Call(&cattle::CowActor::Register, std::string("farm-x"),
                    std::string("Angus"), harness.Now());
  harness.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  ASSERT_FALSE(f.Get().ok());
  EXPECT_EQ(f.Get().status().code(), StatusCode::kCorruption)
      << f.Get().status().ToString();
  EXPECT_GT(injector.messages_corrupted(), 0);
  EXPECT_GT(harness.cluster().wire_stats().decode_failures, 0)
      << "the receiving silo must reject the mangled request frame";
}

// --- Strict mode -------------------------------------------------------------

TEST(WireStrictModeTest, UnregisteredRemoteMethodFailsFastWithTypeName) {
  SimHarness harness(StrictOptions(1));
  harness.cluster().RegisterActorType<UnregisteredActor>();
  auto f = harness.cluster().Ref<UnregisteredActor>("x").Call(
      &UnregisteredActor::Echo, int64_t{7});
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  ASSERT_FALSE(f.Get().ok());
  EXPECT_EQ(f.Get().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(f.Get().status().ToString().find(UnregisteredActor::kTypeName),
            std::string::npos)
      << f.Get().status().ToString();
  EXPECT_EQ(harness.cluster().wire_stats().closure_fallbacks, 0);
}

// --- Promise double-completion guard ----------------------------------------

TEST(PromiseGuardTest, FirstCompletionWinsAndDuplicateIsCounted) {
  int64_t before = PromiseDuplicatesDropped();
  Promise<int> p;
  auto f = p.GetFuture();
  p.SetValue(1);
  p.SetValue(2);
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(f.Get().value(), 1) << "the first completion must win";
  EXPECT_EQ(PromiseDuplicatesDropped(), before + 1);
}

TEST(PromiseGuardTest, DuplicateWireDeliveryDropsSecondReply) {
  SimHarness harness(StrictOptions(1));
  RegisterPlatforms(harness.cluster());
  FaultPlan plan;
  plan.message.duplicate_prob = 1.0;
  FaultInjector injector(plan);
  injector.Arm(&harness.cluster());

  int64_t before = PromiseDuplicatesDropped();
  auto farmer = harness.cluster().Ref<cattle::FarmerActor>("farm-d");
  auto f = farmer.Call(&cattle::FarmerActor::HerdSize);
  harness.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  EXPECT_GT(injector.messages_duplicated(), 0);
  EXPECT_GT(PromiseDuplicatesDropped(), before)
      << "the duplicated delivery's second reply must be dropped, not "
         "double-complete the caller's promise";
}

}  // namespace
}  // namespace aodb
