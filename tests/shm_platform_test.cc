// End-to-end tests of the Structural Health Monitoring platform under the
// discrete-event simulator: topology setup, ingestion, derived virtual
// channels, aggregation hierarchy, live/raw queries, alerts, access
// control, and persistence.

#include <gtest/gtest.h>

#include "aodb/query.h"
#include "loadgen/shm_loadgen.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/state_storage.h"

namespace aodb {
namespace shm {
namespace {

class ShmSimTest : public ::testing::Test {
 protected:
  ShmSimTest() : harness_(MakeOptions()), platform_(&harness_.cluster()) {
    ShmPlatform::RegisterTypes(harness_.cluster());
    ShmPlatform::ApplyPaperPlacement(harness_.cluster());
    // Startup assertion: every registered type must have wire methods, so
    // strict mode cannot hit an unregistered cross-silo call mid-test.
    Status wires = harness_.cluster().CheckWireRegistry();
    EXPECT_TRUE(wires.ok()) << wires.ToString();
  }

  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 2;
    o.workers_per_silo = 2;
    o.wire.require_wire = true;
    return o;
  }

  ShmTopology SmallTopology() {
    ShmTopology t;
    t.sensors = 10;
    t.sensors_per_org = 10;
    t.virtual_every = 5;
    t.hour_window_us = 2 * kMicrosPerSecond;
    t.day_window_us = 10 * kMicrosPerSecond;
    t.month_window_us = 60 * kMicrosPerSecond;
    return t;
  }

  Status SetupAndRun(const ShmTopology& t) {
    auto f = platform_.Setup(t);
    harness_.RunFor(30 * kMicrosPerSecond);
    auto r = f.Get();
    return r.ok() ? r.value() : r.status();
  }

  std::vector<DataPoint> MakePacket(Micros start, int n, double value0) {
    std::vector<DataPoint> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back(DataPoint{start + i * 100 * kMicrosPerMilli,
                              value0 + i});
    }
    return pts;
  }

  SimHarness harness_;
  ShmPlatform platform_;
};

TEST_F(ShmSimTest, SetupCreatesTopology) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  // 10 sensors, 20 channels, 2 virtual channels, aggregators, 1 org.
  auto org = harness_.cluster().Ref<OrganizationActor>(ShmPlatform::OrgKey(0));
  auto sensors = org.Call(&OrganizationActor::SensorCount);
  auto channels = org.Call(&OrganizationActor::ChannelKeys);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(sensors.Get().value(), 10);
  EXPECT_EQ(channels.Get().value().size(), 22u);  // 20 physical + 2 virtual.
}

TEST_F(ShmSimTest, InsertReachesChannelsAndSplitsPacket) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  auto f = platform_.Insert(t, 1, MakePacket(harness_.Now(), 20, 0));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());
  auto c0 = harness_.cluster()
                .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(1, 0))
                .Call(&PhysicalChannelActor::TotalPoints);
  auto c1 = harness_.cluster()
                .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(1, 1))
                .Call(&PhysicalChannelActor::TotalPoints);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(c0.Get().value(), 10);
  EXPECT_EQ(c1.Get().value(), 10);
}

TEST_F(ShmSimTest, AccumulatedChangeTracksMovement) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  // Values 0,1,...,9 -> 9 steps of 1.0 accumulated change per channel.
  auto f = platform_.Insert(t, 0, MakePacket(harness_.Now(), 20, 0));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());
  auto acc = harness_.cluster()
                 .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(0, 0))
                 .Call(&PhysicalChannelActor::AccumulatedChange);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(acc.Get().value(), 9.0);
}

TEST_F(ShmSimTest, VirtualChannelSumsItsSources) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  // Sensor 0 has a virtual channel (virtual_every=5). Packet values:
  // channel 0 gets 0..9, channel 1 gets 10..19. After all updates the
  // virtual latest should be latest(c0) + latest(c1) = 9 + 19 = 28.
  auto f = platform_.Insert(t, 0, MakePacket(harness_.Now(), 20, 0));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());
  auto latest = harness_.cluster()
                    .Ref<VirtualChannelActor>(ShmPlatform::VirtualKey(0))
                    .Call(&VirtualChannelActor::Latest);
  harness_.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(latest.Get().value().has_data);
  EXPECT_DOUBLE_EQ(latest.Get().value().value, 28.0);
  // And exactly 20 derived points exist (one per source point).
  auto total = harness_.cluster()
                   .Ref<VirtualChannelActor>(ShmPlatform::VirtualKey(0))
                   .Call(&VirtualChannelActor::TotalPoints);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(total.Get().value(), 20);
}

TEST_F(ShmSimTest, LiveDataReturnsAllChannels) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  for (int s = 0; s < t.sensors; ++s) {
    platform_.Insert(t, s, MakePacket(harness_.Now(), 20, s * 100));
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  auto live = platform_.LiveData(t, 0);
  harness_.RunFor(5 * kMicrosPerSecond);
  auto r = live.Get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 22u);
  int with_data = 0;
  for (const auto& e : r.value()) with_data += e.has_data ? 1 : 0;
  EXPECT_EQ(with_data, 22);
}

TEST_F(ShmSimTest, RawRangeFiltersByTime) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  Micros base = harness_.Now();
  auto f = platform_.Insert(t, 2, MakePacket(base, 20, 0));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());
  // Points in channel 0 are at base + i*100ms for i in 0..9. Query the
  // middle: [base+200ms, base+500ms) -> points at 200,300,400ms.
  auto range = platform_.RawRange(t, 2, 0, base + 200 * kMicrosPerMilli,
                                  base + 500 * kMicrosPerMilli);
  harness_.RunFor(kMicrosPerSecond);
  auto r = range.Get();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().authorized);
  EXPECT_EQ(r.value().points.size(), 3u);
}

TEST_F(ShmSimTest, AggregatorHierarchyBuildsWindows) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  // Insert packets spanning several hour-windows (2s each).
  Micros base = harness_.Now();
  for (int wave = 0; wave < 8; ++wave) {
    platform_.Insert(t, 3, MakePacket(base + wave * kMicrosPerSecond, 20,
                                      wave * 10));
    harness_.RunFor(kMicrosPerSecond);
  }
  harness_.RunFor(5 * kMicrosPerSecond);
  auto aggs = platform_.HourAggregates(t, 3, 0, 0, base + 600 * kMicrosPerSecond);
  harness_.RunFor(kMicrosPerSecond);
  auto r = aggs.Get();
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r.value().size(), 3u);
  for (const auto& w : r.value()) {
    EXPECT_GT(w.count, 0);
    EXPECT_GE(w.max, w.mean);
    EXPECT_LE(w.min, w.mean);
  }
}

TEST_F(ShmSimTest, ThresholdAlertsReachTheUser) {
  ShmTopology t = SmallTopology();
  t.enable_alerts = true;
  t.threshold_high = 15.0;  // Values 16..19 in channel 1 cross it.
  ASSERT_TRUE(SetupAndRun(t).ok());
  auto f = platform_.Insert(t, 1, MakePacket(harness_.Now(), 20, 0));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());
  auto alerts = harness_.cluster()
                    .Ref<UserActor>(ShmPlatform::UserKey(0))
                    .Call(&UserActor::TotalAlerts);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(alerts.Get().value(), 4) << "values 16,17,18,19 cross 15.0";
}

TEST_F(ShmSimTest, CrossTenantAccessIsRejected) {
  ShmTopology t = SmallTopology();
  t.sensors = 20;  // Two organizations.
  ASSERT_TRUE(SetupAndRun(t).ok());
  // A user of org-1 asks org-0 for live data.
  auto live = harness_.cluster()
                  .Ref<OrganizationActor>(ShmPlatform::OrgKey(0))
                  .WithPrincipal(Principal{ShmPlatform::OrgKey(1), "user"})
                  .Call(&OrganizationActor::LiveData);
  harness_.RunFor(5 * kMicrosPerSecond);
  auto r = live.Get();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnauthorized());
  // Raw channel data of org-0 is likewise refused.
  auto range = harness_.cluster()
                   .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(0, 0))
                   .WithPrincipal(Principal{ShmPlatform::OrgKey(1), "user"})
                   .Call(&PhysicalChannelActor::Range, Micros{0},
                         Micros{1} << 60);
  harness_.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(range.Get().ok());
  EXPECT_FALSE(range.Get().value().authorized);
  // Admins may read across tenants.
  auto admin = harness_.cluster()
                   .Ref<OrganizationActor>(ShmPlatform::OrgKey(0))
                   .WithPrincipal(Principal{"hq", "admin"})
                   .Call(&OrganizationActor::LiveData);
  harness_.RunFor(5 * kMicrosPerSecond);
  EXPECT_TRUE(admin.Get().ok());
}

TEST_F(ShmSimTest, ChannelStateSurvivesDeactivation) {
  // With a storage provider and deactivate-time persistence, the channel's
  // window and accumulated change survive collection (virtual actor
  // perpetuity with durable state).
  auto backing = std::make_shared<MemKvStore>();
  harness_.cluster().RegisterStateStorage(
      "default", std::make_shared<KvStateStorage>(backing.get()));
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  auto f = platform_.Insert(t, 0, MakePacket(harness_.Now(), 20, 0));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().ok());
  // Flush everything and drop activations.
  auto flushed = harness_.cluster().DeactivateAll();
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(flushed.Get().ok());
  EXPECT_EQ(harness_.cluster().TotalActivations(), 0u);
  // Reactivate: state must come back from storage.
  auto acc = harness_.cluster()
                 .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(0, 0))
                 .Call(&PhysicalChannelActor::AccumulatedChange);
  harness_.RunFor(5 * kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(acc.Get().value(), 9.0);
}

TEST_F(ShmSimTest, IndexedDeclarativeQueriesOverChannels) {
  // With indexing enabled, physical channels register in the AODB type
  // registry and the channels-by-org index, so declarative multi-actor
  // queries (the Bernstein-vision feature the paper builds on) work over
  // the SHM platform.
  ShmTopology t = SmallTopology();
  t.sensors = 20;  // Two organizations (10 sensors each).
  t.sensors_per_org = 10;
  t.enable_indexing = true;
  ASSERT_TRUE(SetupAndRun(t).ok());
  // Index lookup: all physical channels of org-1.
  ActorIndex by_org(kChannelsByOrgIndex);
  auto keys = by_org.Lookup(harness_.cluster(), ShmPlatform::OrgKey(1));
  harness_.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(keys.Ready());
  EXPECT_EQ(keys.Get().value().size(), 20u)
      << "10 sensors x 2 physical channels";
  // Ingest movement into org-1's sensors only, then run an indexed
  // projection: accumulated change per channel of org-1.
  for (int sensor = 10; sensor < 20; ++sensor) {
    platform_.Insert(t, sensor, MakePacket(harness_.Now(), 20, 0));
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  auto changes = QueryByIndex<PhysicalChannelActor>(
      harness_.cluster(), by_org, ShmPlatform::OrgKey(1),
      &PhysicalChannelActor::AccumulatedChange);
  harness_.RunFor(10 * kMicrosPerSecond);
  ASSERT_TRUE(changes.Ready());
  std::vector<double> values = changes.Get().value();
  ASSERT_EQ(values.size(), 20u);
  for (double v : values) {
    EXPECT_DOUBLE_EQ(v, 9.0) << "each channel saw 10 points stepping by 1";
  }
  // Type-wide query spans both organizations' channels.
  auto totals = QueryAll<PhysicalChannelActor>(
      harness_.cluster(), &PhysicalChannelActor::TotalPoints);
  harness_.RunFor(10 * kMicrosPerSecond);
  ASSERT_TRUE(totals.Ready());
  EXPECT_EQ(totals.Get().value().size(), 40u);
}

TEST_F(ShmSimTest, LoadGenDrivesClosedLoopWaves) {
  ShmTopology t = SmallTopology();
  ASSERT_TRUE(SetupAndRun(t).ok());
  LoadGenOptions lg;
  lg.duration_us = 20 * kMicrosPerSecond;
  lg.user_queries = true;
  ShmLoadGen gen(&platform_, t, harness_.client_executor(), lg);
  gen.Start();
  harness_.RunFor(lg.duration_us + 10 * kMicrosPerSecond);
  ASSERT_TRUE(gen.Done());
  const LoadGenReport& report = gen.Finish();
  EXPECT_EQ(report.errors, 0);
  // 10 sensors at ~1 wave/s for 20s (first wave at t=0 is within Start).
  EXPECT_GE(report.inserts_done, 10 * 15);
  EXPECT_GT(report.live_done, 0);
  EXPECT_GT(report.raw_done, 0);
  EXPECT_GT(report.insert_latency_us.count(), 0);
  EXPECT_GT(report.achieved_insert_rps, 5.0);
}

}  // namespace
}  // namespace aodb
}  // namespace shm
