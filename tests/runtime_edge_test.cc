// Edge cases and properties of the runtime: message ordering under jitter,
// lifecycle races (deactivation vs in-flight messages), restart-with-
// durable-state, principal propagation, reminder management, and silo
// bookkeeping.

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

/// Records the order in which sequence numbers arrive.
class SequenceActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "edge.Sequence";
  void Push(int64_t seq) { seen_.push_back(seq); }
  std::vector<int64_t> Seen() { return seen_; }

 private:
  std::vector<int64_t> seen_;
};

/// Property sweep: per-channel FIFO holds end to end for any jitter level.
class OrderingUnderJitter : public ::testing::TestWithParam<Micros> {};

TEST_P(OrderingUnderJitter, TellsArriveInSendOrder) {
  RuntimeOptions o;
  o.num_silos = 2;
  o.workers_per_silo = 2;
  o.network.jitter_us = GetParam();
  SimHarness harness(o);
  harness.cluster().RegisterActorType<SequenceActor>();
  auto ref = harness.cluster().Ref<SequenceActor>("seq");
  constexpr int kMessages = 200;
  for (int64_t i = 0; i < kMessages; ++i) {
    ref.Tell(&SequenceActor::Push, i);
  }
  harness.RunFor(30 * kMicrosPerSecond);
  auto f = ref.Call(&SequenceActor::Seen);
  harness.RunFor(kMicrosPerSecond);
  auto seen = f.Get().value();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kMessages));
  for (int64_t i = 0; i < kMessages; ++i) {
    ASSERT_EQ(seen[i], i) << "reordered at position " << i << " with jitter "
                          << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(JitterLevels, OrderingUnderJitter,
                         ::testing::Values(0, 50, 200, 1000, 5000));

struct EdgeCounterState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

class DurableCounter : public PersistentActor<EdgeCounterState> {
 public:
  static constexpr char kTypeName[] = "edge.DurableCounter";
  DurableCounter()
      : PersistentActor<EdgeCounterState>(PersistenceOptions{
            PersistPolicy::kOnDeactivate, 100, 60 * kMicrosPerSecond,
            "default"}) {}
  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
};

TEST(RuntimeRestartTest, StateAndRemindersSurviveClusterRestart) {
  // Durable media shared across two cluster generations.
  MemKvStore grain_backing;
  MemKvStore system_kv;
  auto storage = std::make_shared<KvStateStorage>(&grain_backing);

  RuntimeOptions o;
  o.num_silos = 2;
  {
    SimHarness gen1(o, &system_kv);
    gen1.cluster().RegisterActorType<DurableCounter>();
    gen1.cluster().RegisterStateStorage("default", storage);
    auto c = gen1.cluster().Ref<DurableCounter>("persist-me");
    c.Tell(&DurableCounter::Add, int64_t{41});
    gen1.RunFor(5 * kMicrosPerSecond);
    ASSERT_TRUE(gen1.cluster()
                    .RegisterReminder(
                        ActorId{DurableCounter::kTypeName, "persist-me"},
                        "tick", kMicrosPerSecond)
                    .ok());
    auto flushed = gen1.cluster().DeactivateAll();
    gen1.RunFor(5 * kMicrosPerSecond);
    ASSERT_TRUE(flushed.Get().value().ok());
  }  // "Process exit".

  SimHarness gen2(o, &system_kv);
  gen2.cluster().RegisterActorType<DurableCounter>();
  gen2.cluster().RegisterStateStorage("default", storage);
  ASSERT_TRUE(gen2.cluster().LoadReminders().ok());
  EXPECT_EQ(gen2.cluster().ActiveReminders(), 1u)
      << "reminders restore from the system store";
  auto c = gen2.cluster().Ref<DurableCounter>("persist-me");
  auto v = c.Call(&DurableCounter::Value);
  gen2.RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(v.Get().value(), 41) << "grain state restores from storage";
}

TEST(RuntimeLifecycleTest, MessagesRacingDeactivationAreNotLost) {
  RuntimeOptions o;
  o.num_silos = 1;
  o.lifecycle.enable_idle_deactivation = true;
  o.lifecycle.idle_timeout_us = 500 * kMicrosPerMilli;
  o.lifecycle.scan_interval_us = 100 * kMicrosPerMilli;
  SimHarness harness(o);
  harness.cluster().RegisterActorType<SequenceActor>();
  harness.cluster().StartIdleScanner();
  auto ref = harness.cluster().Ref<SequenceActor>("racer");
  // Bursts separated by idle windows long enough to trigger deactivation.
  // Every burst must be fully observable within its own activation (no
  // message lost to the lifecycle machinery), and the activation must
  // actually be collected between bursts.
  for (int burst = 0; burst < 5; ++burst) {
    for (int64_t i = 0; i < 10; ++i) ref.Tell(&SequenceActor::Push, i);
    auto f = ref.Call(&SequenceActor::Seen);
    harness.RunFor(100 * kMicrosPerMilli);
    ASSERT_TRUE(f.Ready());
    EXPECT_EQ(f.Get().value().size(), 10u)
        << "burst " << burst << " incomplete";
    harness.RunFor(3 * kMicrosPerSecond);  // Idle: collected.
    EXPECT_EQ(harness.cluster().TotalActivations(), 0u)
        << "idle activation should be collected between bursts";
  }
  SiloStats stats = harness.cluster().silo(0)->Stats();
  EXPECT_GE(stats.activations_removed, 5);
  EXPECT_EQ(stats.messages_processed, 5 * 11);
}

TEST(RuntimePrincipalTest, PrincipalTravelsWithEveryMessage) {
  class WhoAmI : public ActorBase {
   public:
    std::string CallerTenant() { return ctx().caller().tenant; }
    void Record() { tenants_.push_back(ctx().caller().tenant); }
    std::vector<std::string> Recorded() { return tenants_; }

   private:
    std::vector<std::string> tenants_;
  };
  RuntimeOptions o;
  SimHarness harness(o);
  harness.cluster().RegisterActorType(
      "edge.WhoAmI", [](const ActorId&) { return std::make_unique<WhoAmI>(); });
  auto plain = harness.cluster().RefAs<WhoAmI>("edge.WhoAmI", "w");
  auto alice = plain.WithPrincipal(Principal{"alice", "user"});
  auto bob = plain.WithPrincipal(Principal{"bob", "admin"});
  auto f1 = alice.Call(&WhoAmI::CallerTenant);
  auto f2 = bob.Call(&WhoAmI::CallerTenant);
  auto f3 = plain.Call(&WhoAmI::CallerTenant);
  alice.Tell(&WhoAmI::Record);
  bob.Tell(&WhoAmI::Record);
  harness.RunFor(5 * kMicrosPerSecond);
  EXPECT_EQ(f1.Get().value(), "alice");
  EXPECT_EQ(f2.Get().value(), "bob");
  EXPECT_EQ(f3.Get().value(), "");
  auto rec = plain.Call(&WhoAmI::Recorded);
  harness.RunFor(kMicrosPerSecond);
  EXPECT_EQ(rec.Get().value(),
            (std::vector<std::string>{"alice", "bob"}));
}

TEST(RuntimeReminderTest, UnregisterStopsFiring) {
  class Armed : public ActorBase {
   public:
    void ReceiveReminder(const std::string&) override { ++count_; }
    int Count() { return count_; }

   private:
    int count_ = 0;
  };
  MemKvStore system_kv;
  RuntimeOptions o;
  SimHarness harness(o, &system_kv);
  harness.cluster().RegisterActorType(
      "edge.Armed", [](const ActorId&) { return std::make_unique<Armed>(); });
  ActorId id{"edge.Armed", "a"};
  ASSERT_TRUE(harness.cluster()
                  .RegisterReminder(id, "r", 200 * kMicrosPerMilli)
                  .ok());
  harness.RunFor(kMicrosPerSecond + 50 * kMicrosPerMilli);
  ASSERT_TRUE(harness.cluster().UnregisterReminder(id, "r").ok());
  auto before =
      harness.cluster().RefAs<Armed>("edge.Armed", "a").Call(&Armed::Count);
  harness.RunFor(kMicrosPerSecond);
  int count_at_unregister = before.Get().value();
  EXPECT_GE(count_at_unregister, 4);
  harness.RunFor(5 * kMicrosPerSecond);
  auto after =
      harness.cluster().RefAs<Armed>("edge.Armed", "a").Call(&Armed::Count);
  harness.RunFor(kMicrosPerSecond);
  EXPECT_EQ(after.Get().value(), count_at_unregister)
      << "no reminder tick may fire after unregistration";
  EXPECT_EQ(harness.cluster().ActiveReminders(), 0u);
  auto listed = system_kv.List("rem/");
  EXPECT_TRUE(listed.value().empty()) << "durable record removed";
}

TEST(RuntimeStatsTest, SiloCountersTrackActivity) {
  RuntimeOptions o;
  o.num_silos = 1;
  SimHarness harness(o);
  harness.cluster().RegisterActorType<SequenceActor>();
  for (int a = 0; a < 5; ++a) {
    auto ref =
        harness.cluster().Ref<SequenceActor>("s" + std::to_string(a));
    for (int64_t m = 0; m < 4; ++m) ref.Tell(&SequenceActor::Push, m);
  }
  harness.RunFor(10 * kMicrosPerSecond);
  SiloStats stats = harness.cluster().silo(0)->Stats();
  EXPECT_EQ(stats.activations_created, 5);
  EXPECT_EQ(stats.messages_processed, 20);
  EXPECT_EQ(harness.cluster().silo(0)->ActivationCount(), 5u);
  EXPECT_EQ(harness.cluster().directory().Count(), 5u);
}

TEST(RuntimeErrorTest, FutureReturningMethodErrorPropagatesToCaller) {
  class Failing : public ActorBase {
   public:
    Future<int64_t> Doomed() {
      return Future<int64_t>::FromError(Status::ResourceExhausted("nope"));
    }
  };
  RuntimeOptions o;
  SimHarness harness(o);
  harness.cluster().RegisterActorType(
      "edge.Failing",
      [](const ActorId&) { return std::make_unique<Failing>(); });
  auto f = harness.cluster()
               .RefAs<Failing>("edge.Failing", "f")
               .Call(&Failing::Doomed);
  harness.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  EXPECT_FALSE(f.Get().ok());
  EXPECT_EQ(f.Get().status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace aodb
