// Fault-injection and recovery tests: the RetryPolicy/RetryState backoff
// math, FaultInjector determinism, silo kill/restart with reactivation from
// persisted state, message drop and duplication, FaultyStateStorage healed
// by persistence retries, and the acceptance chaos scenario — a seeded
// fault plan (1 of 3 silos killed mid-run, 1% message drop, 5% transient
// storage errors) under which the SHM platform must lose no acknowledged
// sensor write, and a rerun of the same seed must reproduce identical
// fault/retry counters.

#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "actor/fault.h"
#include "actor/retry_async.h"
#include "common/retry.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"
#include "storage/faulty_storage.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

// --- RetryPolicy / RetryState ------------------------------------------------

TEST(RetryStateTest, JitterlessBackoffDoublesUpToCap) {
  RetryPolicy p;
  p.max_retries = 4;
  p.initial_backoff_us = 10;
  p.max_backoff_us = 35;
  p.multiplier = 2.0;
  p.jitter = 0;
  RetryState state(p, /*seed=*/1);
  EXPECT_EQ(state.NextBackoff(0).value(), 10);
  EXPECT_EQ(state.NextBackoff(0).value(), 20);
  EXPECT_EQ(state.NextBackoff(0).value(), 35) << "capped at max_backoff_us";
  EXPECT_EQ(state.NextBackoff(0).value(), 35);
  EXPECT_FALSE(state.NextBackoff(0).has_value()) << "attempt cap reached";
  EXPECT_EQ(state.attempts(), 4);
}

TEST(RetryStateTest, JitterStaysWithinBandAndIsSeedDeterministic) {
  RetryPolicy p;
  p.max_retries = 100;
  p.initial_backoff_us = 1000;
  p.max_backoff_us = 1000;
  p.jitter = 0.2;
  RetryState a(p, 99);
  RetryState b(p, 99);
  for (int i = 0; i < 100; ++i) {
    Micros wa = a.NextBackoff(0).value();
    EXPECT_GE(wa, 800);
    EXPECT_LE(wa, 1200);
    EXPECT_EQ(wa, b.NextBackoff(0).value()) << "same seed, same sequence";
  }
}

TEST(RetryStateTest, DeadlineStopsRetrying) {
  RetryPolicy p;
  p.max_retries = 100;
  p.initial_backoff_us = 100;
  p.jitter = 0;
  p.deadline_us = 150;
  RetryState state(p, 1);
  EXPECT_TRUE(state.NextBackoff(0).has_value());
  EXPECT_FALSE(state.NextBackoff(140).has_value())
      << "backoff would land past the deadline";
}

TEST(RetryStateTest, NonePolicyNeverRetries) {
  RetryState state(RetryPolicy::None(), 1);
  EXPECT_FALSE(state.NextBackoff(0).has_value());
}

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultPlan plan;
  plan.seed = 7;
  plan.message.drop_prob = 0.3;
  plan.message.duplicate_prob = 0.2;
  plan.storage.error_prob = 0.25;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.ShouldDropMessage(), b.ShouldDropMessage());
    EXPECT_EQ(a.ShouldDuplicateMessage(), b.ShouldDuplicateMessage());
    EXPECT_EQ(a.NextStorageFault().ok(), b.NextStorageFault().ok());
  }
  EXPECT_EQ(a.messages_dropped(), b.messages_dropped());
  EXPECT_EQ(a.messages_duplicated(), b.messages_duplicated());
  EXPECT_EQ(a.storage_errors(), b.storage_errors());
  EXPECT_GT(a.messages_dropped(), 0);
  EXPECT_GT(a.storage_errors(), 0);
}

// --- Actors under test -------------------------------------------------------

struct CounterState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

/// Durable counter persisting on every update (so acked increments are on
/// storage before the silo can die).
class DurableCounter : public PersistentActor<CounterState> {
 public:
  static constexpr char kTypeName[] = "test.DurableCounter";

  DurableCounter()
      : PersistentActor<CounterState>(PersistenceOptions{
            PersistPolicy::kOnEveryUpdate, 100, 10 * kMicrosPerSecond,
            "default", MakeRetry()}) {}

  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
  int64_t Retries() { return storage_retries(); }

 private:
  static RetryPolicy MakeRetry() {
    RetryPolicy p;
    p.max_retries = 10;
    p.initial_backoff_us = 5 * kMicrosPerMilli;
    return p;
  }
};

/// Volatile counter for message drop/duplication observation.
class VolatileCounter : public ActorBase {
 public:
  static constexpr char kTypeName[] = "test.VolatileCounter";
  int64_t Add(int64_t d) { return value_ += d; }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

// --- Silo kill / restart -----------------------------------------------------

class SiloCrashTest : public ::testing::Test {
 protected:
  explicit SiloCrashTest(int num_silos = 2) : harness_(MakeOptions(num_silos)) {
    harness_.cluster().RegisterActorType<DurableCounter>();
    harness_.cluster().RegisterActorType<VolatileCounter>();
    backing_ = std::make_shared<MemKvStore>();
    storage_ = std::make_shared<KvStateStorage>(backing_.get());
    harness_.cluster().RegisterStateStorage("default", storage_);
  }

  static RuntimeOptions MakeOptions(int num_silos) {
    RuntimeOptions o;
    o.num_silos = num_silos;
    o.workers_per_silo = 2;
    return o;
  }

  template <typename T>
  Result<T> Settle(Future<T> f, Micros run_for = 30 * kMicrosPerSecond) {
    harness_.RunFor(run_for);
    EXPECT_TRUE(f.Ready());
    return f.Get();
  }

  SimHarness harness_;
  std::shared_ptr<MemKvStore> backing_;
  std::shared_ptr<KvStateStorage> storage_;
};

TEST_F(SiloCrashTest, KilledSiloFailsCallsAndStateSurvivesReactivation) {
  // Spread durable counters over both silos and ack some increments.
  std::vector<ActorRef<DurableCounter>> refs;
  for (int i = 0; i < 8; ++i) {
    refs.push_back(
        harness_.cluster().Ref<DurableCounter>("c" + std::to_string(i)));
    auto v = Settle(refs.back().Call(&DurableCounter::Add, int64_t{i + 1}));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), i + 1);
  }
  harness_.cluster().KillSilo(1);
  EXPECT_FALSE(harness_.cluster().SiloAlive(1));
  // Every counter remains reachable: actors that lived on silo 1 were
  // purged from the directory and reactivate on silo 0 from their
  // persisted snapshot.
  for (int i = 0; i < 8; ++i) {
    auto v = Settle(refs[i].Call(&DurableCounter::Value));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v.value(), i + 1) << "acked increment lost on reactivation";
  }
}

TEST_F(SiloCrashTest, CallToDeadSingleSiloFailsUnavailableUntilRestart) {
  SimHarness solo(MakeOptions(1));
  solo.cluster().RegisterActorType<DurableCounter>();
  MemKvStore backing;
  auto storage = std::make_shared<KvStateStorage>(&backing);
  solo.cluster().RegisterStateStorage("default", storage);
  auto c = solo.cluster().Ref<DurableCounter>("c");
  auto first = c.Call(&DurableCounter::Add, int64_t{5});
  solo.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(first.Ready());
  ASSERT_TRUE(first.Get().ok());

  solo.cluster().KillSilo(0);
  auto dead = c.Call(&DurableCounter::Value);
  solo.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(dead.Ready());
  EXPECT_TRUE(dead.Get().status().IsUnavailable())
      << "no live silo: calls must fail fast, not hang";

  solo.cluster().RestartSilo(0);
  EXPECT_TRUE(solo.cluster().SiloAlive(0));
  auto back = c.Call(&DurableCounter::Value);
  solo.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(back.Ready());
  ASSERT_TRUE(back.Get().ok());
  EXPECT_EQ(back.Get().value(), 5) << "state survives a full silo bounce";
}

TEST_F(SiloCrashTest, InFlightMessagesToKilledSiloFailUnavailable) {
  // Queue calls, kill the silo before the simulator runs them: both mailbox
  // occupants and late arrivals must fail with Unavailable.
  std::vector<Future<int64_t>> pending;
  for (int i = 0; i < 16; ++i) {
    pending.push_back(harness_.cluster()
                          .Ref<VolatileCounter>("v" + std::to_string(i))
                          .Call(&VolatileCounter::Add, int64_t{1}));
  }
  harness_.cluster().KillSilo(1);
  harness_.cluster().KillSilo(0);
  harness_.RunFor(kMicrosPerSecond);
  for (auto& f : pending) {
    ASSERT_TRUE(f.Ready());
    EXPECT_TRUE(f.Get().status().IsUnavailable());
  }
}

TEST_F(SiloCrashTest, RetryAsyncHealsACrashRestartWindow) {
  SimHarness solo(MakeOptions(1));
  solo.cluster().RegisterActorType<VolatileCounter>();
  auto c = solo.cluster().Ref<VolatileCounter>("v");
  auto warm = c.Call(&VolatileCounter::Add, int64_t{1});
  solo.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(warm.Ready());
  ASSERT_TRUE(warm.Get().ok());

  solo.cluster().KillSilo(0);
  // The silo comes back 2 s from now; the client retries through the
  // outage under the unified policy.
  solo.client_executor()->PostAfter(2 * kMicrosPerSecond, [&solo] {
    solo.cluster().RestartSilo(0);
  });
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.initial_backoff_us = 100 * kMicrosPerMilli;
  int retries = 0;
  auto healed = RetryAsync<int64_t>(
      solo.client_executor(), policy, /*seed=*/3,
      [&c] { return c.Call(&VolatileCounter::Value); }, IsTransient,
      [&retries](const Status&) { ++retries; });
  solo.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(healed.Ready());
  ASSERT_TRUE(healed.Get().ok()) << healed.Get().status().ToString();
  EXPECT_GT(retries, 0) << "the outage must have forced at least one retry";
  EXPECT_EQ(healed.Get().value(), 0)
      << "volatile state is lost on crash; only durability saves it";
}

// --- Message faults ----------------------------------------------------------

TEST(MessageFaultTest, DroppedMessagesFailSenderWithUnavailable) {
  RuntimeOptions o;
  o.num_silos = 1;
  SimHarness harness(o);
  harness.cluster().RegisterActorType<VolatileCounter>();
  FaultPlan plan;
  plan.message.drop_prob = 1.0;
  FaultInjector injector(plan);
  injector.Arm(&harness.cluster());
  auto f = harness.cluster().Ref<VolatileCounter>("v").Call(
      &VolatileCounter::Add, int64_t{1});
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Get().status().IsUnavailable());
  EXPECT_GT(injector.messages_dropped(), 0);
}

TEST(MessageFaultTest, DuplicatedDeliveryExecutesNonIdempotentOpTwice) {
  RuntimeOptions o;
  o.num_silos = 1;
  SimHarness harness(o);
  harness.cluster().RegisterActorType<VolatileCounter>();
  FaultPlan plan;
  plan.message.duplicate_prob = 1.0;
  FaultInjector injector(plan);
  injector.Arm(&harness.cluster());
  auto c = harness.cluster().Ref<VolatileCounter>("v");
  auto add = c.Call(&VolatileCounter::Add, int64_t{1});
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(add.Ready());
  ASSERT_TRUE(add.Get().ok());
  EXPECT_GT(injector.messages_duplicated(), 0);
  auto v = c.Call(&VolatileCounter::Value);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(v.Ready());
  EXPECT_EQ(v.Get().value(), 2)
      << "at-least-once delivery applies the non-idempotent add twice";
}

// --- Storage faults ----------------------------------------------------------

TEST(StorageFaultTest, PersistenceRetriesHealTransientStorageErrors) {
  RuntimeOptions o;
  o.num_silos = 1;
  SimHarness harness(o);
  harness.cluster().RegisterActorType<DurableCounter>();
  FaultPlan plan;
  plan.seed = 11;
  plan.storage.error_prob = 0.5;
  plan.storage.latency_spike_prob = 0.2;
  FaultInjector injector(plan);
  MemKvStore backing;
  auto faulty = std::make_shared<FaultyStateStorage>(
      std::make_shared<KvStateStorage>(&backing), &injector);
  harness.cluster().RegisterStateStorage("default", faulty);

  auto c = harness.cluster().Ref<DurableCounter>("c");
  for (int i = 0; i < 20; ++i) {
    auto f = c.Call(&DurableCounter::Add, int64_t{1});
    harness.RunFor(kMicrosPerSecond);
    ASSERT_TRUE(f.Ready());
    ASSERT_TRUE(f.Get().ok());
  }
  harness.RunFor(60 * kMicrosPerSecond);  // Drain retried writes.
  EXPECT_GT(injector.storage_errors(), 0) << "the fault model must fire";
  auto retries = c.Call(&DurableCounter::Retries);
  harness.RunFor(kMicrosPerSecond);
  EXPECT_GT(retries.Get().value(), 0) << "writes must have been retried";
  // The latest snapshot on the backing store carries every increment.
  auto stored = backing.Get("grain/test.DurableCounter/c");
  ASSERT_TRUE(stored.ok());
  BufReader r(stored.value());
  CounterState st;
  ASSERT_TRUE(st.Decode(&r).ok());
  EXPECT_EQ(st.value, 20);
}

// --- The acceptance chaos scenario ------------------------------------------

/// One acked data point: which channel it belongs to and its payload.
struct AckedPoint {
  std::string channel_key;
  Micros ts;
  double value;
};

/// Everything a chaos run produces that a deterministic rerun must
/// reproduce exactly.
struct ChaosOutcome {
  int64_t acked_inserts = 0;
  int64_t failed_inserts = 0;
  int64_t client_retries = 0;
  int64_t messages_dropped = 0;
  int64_t messages_duplicated = 0;
  int64_t storage_errors = 0;
  int64_t storage_spikes = 0;
  int64_t silo_kills = 0;
  int64_t silo_restarts = 0;
};

constexpr int kChaosSensors = 6;
constexpr int kChaosRounds = 36;

ChaosOutcome RunChaosScenario() {
  RuntimeOptions options;
  options.num_silos = 3;
  options.workers_per_silo = 2;
  options.seed = 42;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();

  // Channel/sensor state persists on every update behind the fault
  // decorator; loads and writes retry under the unified policy.
  PersistenceOptions persistence;
  persistence.policy = PersistPolicy::kOnEveryUpdate;
  persistence.retry.max_retries = 10;
  persistence.retry.initial_backoff_us = 5 * kMicrosPerMilli;
  shm::ShmPlatform::RegisterTypes(cluster, persistence);
  shm::ShmPlatform::ApplyPaperPlacement(cluster);

  FaultPlan plan;
  plan.seed = 2026;
  plan.crashes.push_back(SiloCrashEvent{/*at_us=*/3 * kMicrosPerSecond,
                                        /*silo=*/1,
                                        /*restart_after_us=*/3 *
                                            kMicrosPerSecond});
  plan.message.drop_prob = 0.01;
  plan.message.duplicate_prob = 0.005;
  plan.storage.error_prob = 0.05;
  plan.storage.latency_spike_prob = 0.02;
  FaultInjector injector(plan);

  MemKvStore backing;
  auto faulty = std::make_shared<FaultyStateStorage>(
      std::make_shared<KvStateStorage>(&backing), &injector);
  cluster.RegisterStateStorage("default", faulty);

  shm::ShmClientOptions client;
  client.durable_acks = true;
  client.retry.max_retries = 12;
  client.retry.initial_backoff_us = 50 * kMicrosPerMilli;
  client.retry.max_backoff_us = kMicrosPerSecond;
  shm::ShmPlatform platform(&cluster, client);

  shm::ShmTopology topo;
  topo.sensors = kChaosSensors;
  topo.sensors_per_org = kChaosSensors;
  topo.channels_per_sensor = 2;
  topo.virtual_every = 0;
  topo.window_capacity = 4096;

  // Build the topology on a healthy cluster, then unleash the fault plan.
  auto setup = platform.Setup(topo);
  harness.RunFor(10 * kMicrosPerSecond);
  EXPECT_TRUE(setup.Ready());
  EXPECT_TRUE(setup.Get().value().ok());
  injector.Arm(&cluster);

  // Open-loop ingestion across the crash window: every round, each sensor
  // ships one packet of two points (one per channel) with unique payloads.
  struct PendingInsert {
    Future<Status> ack;
    std::vector<AckedPoint> points;
  };
  std::vector<PendingInsert> inserts;
  for (int round = 0; round < kChaosRounds; ++round) {
    Micros ts = harness.Now();
    for (int s = 0; s < kChaosSensors; ++s) {
      double base = s * 1e6 + round;
      std::vector<shm::DataPoint> pts = {{ts, base}, {ts, base + 0.5}};
      PendingInsert pi;
      pi.points = {
          {shm::ShmPlatform::ChannelKey(s, 0), ts, base},
          {shm::ShmPlatform::ChannelKey(s, 1), ts, base + 0.5},
      };
      pi.ack = platform.Insert(topo, s, std::move(pts));
      inserts.push_back(std::move(pi));
    }
    harness.RunFor(250 * kMicrosPerMilli);
  }
  // Let outstanding retries run dry (the retry budget outlives the 3 s
  // outage) and the cluster settle.
  harness.RunFor(120 * kMicrosPerSecond);

  std::map<std::string, std::vector<AckedPoint>> acked_by_channel;
  ChaosOutcome out;
  for (auto& pi : inserts) {
    EXPECT_TRUE(pi.ack.Ready()) << "insert still pending after settle";
    if (pi.ack.Ready() && pi.ack.Get().ok() && pi.ack.Get().value().ok()) {
      ++out.acked_inserts;
      for (const AckedPoint& p : pi.points) {
        acked_by_channel[p.channel_key].push_back(p);
      }
    } else {
      ++out.failed_inserts;
    }
  }
  // The whole point: every point acked before/through the crash is
  // readable after the failed silo's actors reactivated elsewhere.
  for (int s = 0; s < kChaosSensors; ++s) {
    for (int c = 0; c < topo.channels_per_sensor; ++c) {
      auto range = platform.RawRange(topo, s, c, 0,
                                     std::numeric_limits<Micros>::max());
      harness.RunFor(30 * kMicrosPerSecond);
      EXPECT_TRUE(range.Ready());
      if (!range.Ready()) continue;
      Result<shm::RangeReply> rr = range.Get();
      if (!rr.ok()) continue;
      const shm::RangeReply& reply = rr.value();
      EXPECT_TRUE(reply.authorized);
      std::set<std::pair<Micros, double>> present;
      for (const shm::DataPoint& p : reply.points) {
        present.insert({p.ts, p.value});
      }
      for (const AckedPoint& p :
           acked_by_channel[shm::ShmPlatform::ChannelKey(s, c)]) {
        EXPECT_TRUE(present.count({p.ts, p.value}))
            << "acked point lost: " << p.channel_key << " ts=" << p.ts
            << " value=" << p.value;
      }
    }
  }

  out.client_retries = platform.insert_retries();
  out.messages_dropped = injector.messages_dropped();
  out.messages_duplicated = injector.messages_duplicated();
  out.storage_errors = injector.storage_errors();
  out.storage_spikes = injector.storage_spikes();
  out.silo_kills = injector.silo_kills();
  out.silo_restarts = injector.silo_restarts();
  return out;
}

TEST(ChaosTest, NoAckedWriteLostAndRerunIsDeterministic) {
  ChaosOutcome first = RunChaosScenario();
  EXPECT_EQ(first.silo_kills, 1);
  EXPECT_EQ(first.silo_restarts, 1);
  EXPECT_GT(first.acked_inserts, 0);
  EXPECT_GT(first.messages_dropped, 0) << "1% drop over hundreds of sends";
  EXPECT_GT(first.storage_errors, 0) << "5% storage errors must fire";
  EXPECT_GT(first.client_retries, 0)
      << "drops and the crash window must force client retries";

  // Same seeds, same virtual time, same everything: the rerun reproduces
  // the exact fault and retry counters.
  ChaosOutcome second = RunChaosScenario();
  EXPECT_EQ(first.acked_inserts, second.acked_inserts);
  EXPECT_EQ(first.failed_inserts, second.failed_inserts);
  EXPECT_EQ(first.client_retries, second.client_retries);
  EXPECT_EQ(first.messages_dropped, second.messages_dropped);
  EXPECT_EQ(first.messages_duplicated, second.messages_duplicated);
  EXPECT_EQ(first.storage_errors, second.storage_errors);
  EXPECT_EQ(first.storage_spikes, second.storage_spikes);
  EXPECT_EQ(first.silo_kills, second.silo_kills);
  EXPECT_EQ(first.silo_restarts, second.silo_restarts);
}

// --- Promise-leak gauge at Cluster::Stop -------------------------------------

TEST(PromiseLeakGaugeTest, StopPublishesLeaksObservedDuringClusterLifetime) {
  SimHarness harness{RuntimeOptions{}};
  {
    // A reply handler that is registered and then dropped unfulfilled —
    // the bug class the detector exists for.
    Promise<int> p;
    Future<int> f = p.GetFuture();
    f.OnReady([](Result<int>&&) {});
  }
  harness.cluster().Stop();
  EXPECT_GE(
      harness.cluster().metrics().GetGauge("runtime.leaked_promises")->value(),
      1);
}

TEST(PromiseLeakGaugeTest, CleanShutdownReportsZeroLeaks) {
  SimHarness harness{RuntimeOptions{}};
  harness.cluster().RegisterActorType<VolatileCounter>();
  auto a = harness.cluster().Ref<VolatileCounter>("c");
  auto f = a.Call(&VolatileCounter::Add, int64_t{1});
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  harness.cluster().Stop();
  EXPECT_EQ(
      harness.cluster().metrics().GetGauge("runtime.leaked_promises")->value(),
      0);
}

}  // namespace
}  // namespace aodb
