// End-to-end telemetry tests: the unified metrics registry (snapshot /
// delta / merge semantics, the thread-safe ConcurrentHistogram), distributed
// tracing (same-silo closure lane, cross-silo wire round-trip, propagation
// through retries and workflows, span parentage), per-actor-type turn
// profiling, and the sampling draw.

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/retry_async.h"
#include "actor/runtime.h"
#include "actor/trace.h"
#include "actor/wire_format.h"
#include "aodb/txn.h"
#include "aodb/workflow.h"
#include "common/telemetry.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

// --- Registry ----------------------------------------------------------------

TEST(MetricsRegistryTest, GetIsRegisterOnceAndPointerStable) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("a.count");
  EXPECT_EQ(c, reg.GetCounter("a.count"));
  c->Add(3);
  c->Add();
  Gauge* g = reg.GetGauge("a.level");
  g->Set(7);
  reg.GetHistogram("a.lat")->Record(100);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 4);
  EXPECT_EQ(snap.gauges.at("a.level"), 7);
  EXPECT_EQ(snap.histograms.at("a.lat").count(), 1);
}

TEST(MetricsRegistryTest, DeltaSubtractsCountersAndKeepsLaterGauges) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("events");
  Gauge* g = reg.GetGauge("depth");
  ConcurrentHistogram* h = reg.GetHistogram("lat");
  c->Add(10);
  g->Set(5);
  h->Record(50);
  MetricsSnapshot before = reg.Snapshot();
  c->Add(7);
  g->Set(2);
  h->Record(60);
  h->Record(70);
  MetricsSnapshot after = reg.Snapshot();

  MetricsSnapshot delta = after.Delta(before);
  EXPECT_EQ(delta.counters.at("events"), 7);
  EXPECT_EQ(delta.gauges.at("depth"), 2) << "gauges are levels, not rates";
  EXPECT_EQ(delta.histograms.at("lat").count(), 2);
}

TEST(MetricsRegistryTest, MergeAddsCountersAndMergesHistograms) {
  MetricsRegistry a, b;
  a.GetCounter("n")->Add(2);
  b.GetCounter("n")->Add(3);
  b.GetCounter("only_b")->Add(1);
  a.GetGauge("g")->Set(10);
  b.GetGauge("g")->Set(5);
  a.GetHistogram("h")->Record(100);
  b.GetHistogram("h")->Record(200);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("n"), 5);
  EXPECT_EQ(merged.counters.at("only_b"), 1);
  EXPECT_EQ(merged.gauges.at("g"), 15) << "sharded gauges sum";
  EXPECT_EQ(merged.histograms.at("h").count(), 2);
}

TEST(MetricsRegistryTest, ExportsRenderEverySeries) {
  MetricsRegistry reg;
  reg.GetCounter("wire.requests")->Add(42);
  reg.GetGauge("cluster.activations")->Set(3);
  reg.GetHistogram("turn.exec_us.Sensor")->Record(120);
  MetricsSnapshot snap = reg.Snapshot();

  std::string table = snap.ToTable();
  EXPECT_NE(table.find("wire.requests"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("turn.exec_us.Sensor"), std::string::npos);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"wire.requests\":42"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- ConcurrentHistogram -----------------------------------------------------

TEST(ConcurrentHistogramTest, SnapshotMatchesPlainHistogramBuckets) {
  ConcurrentHistogram ch;
  Histogram plain;
  for (int64_t v : {0, 1, 63, 64, 100, 1000, 123456, 99999999}) {
    ch.Record(v);
    plain.Record(v);
  }
  Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.min(), plain.min()) << "extrema are tracked exactly";
  EXPECT_EQ(snap.max(), plain.max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(snap.Percentile(q), plain.Percentile(q))
        << "same bucket layout must give identical percentiles at q=" << q;
  }
}

TEST(ConcurrentHistogramTest, LosesNothingUnderConcurrentWriters) {
  // The satellite fix: plain Histogram::Record is racy; the registry's
  // histogram must count every observation from many threads.
  ConcurrentHistogram ch;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ch, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ch.Record(t * 1000 + i % 997);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ch.count(), int64_t{kThreads} * kPerThread);
  Histogram snap = ch.Snapshot();
  EXPECT_EQ(snap.count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.min(), 0);
}

// --- Wire round-trip ---------------------------------------------------------

TEST(TraceWireTest, TraceContextSurvivesFrameRoundTrip) {
  WireRequest req;
  req.target = ActorId{"shm.Sensor", "s42"};
  req.method_id = 0x1234;
  req.trace_id = 77;
  req.parent_span_id = 9001;
  req.trace_sampled = true;
  req.args = "payload";
  std::string frame = WireEncodeRequest(req);

  WireRequest out;
  ASSERT_TRUE(WireDecodeRequest(frame, &out).ok());
  EXPECT_EQ(out.trace_id, 77u);
  EXPECT_EQ(out.parent_span_id, 9001u);
  EXPECT_TRUE(out.trace_sampled);

  // Untraced requests pay three zero varint bytes and decode back to zero.
  WireRequest bare;
  bare.target = req.target;
  bare.method_id = 1;
  WireRequest bare_out;
  ASSERT_TRUE(WireDecodeRequest(WireEncodeRequest(bare), &bare_out).ok());
  EXPECT_EQ(bare_out.trace_id, 0u);
  EXPECT_EQ(bare_out.parent_span_id, 0u);
  EXPECT_FALSE(bare_out.trace_sampled);
}

// --- Actors used by the propagation tests ------------------------------------

class PingActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "tel.Ping";
  int64_t Echo(int64_t v) { return v; }
};

class HopActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "tel.Hop";
  Future<int64_t> Forward(std::string target, int64_t v) {
    return ctx().Ref<PingActor>(target).Call(&PingActor::Echo, v);
  }
};

RuntimeOptions TracedOptions(int silos, int sample_every = 1) {
  RuntimeOptions o;
  o.num_silos = silos;
  o.workers_per_silo = 2;
  o.trace.sample_every = sample_every;
  return o;
}

std::map<uint64_t, SpanRecord> ById(const std::vector<SpanRecord>& spans) {
  std::map<uint64_t, SpanRecord> m;
  for (const SpanRecord& s : spans) m[s.span_id] = s;
  return m;
}

// --- Same-silo propagation ---------------------------------------------------

TEST(TracePropagationTest, SameSiloCallChainIsParentLinked) {
  SimHarness harness(TracedOptions(1));
  harness.cluster().RegisterActorType<PingActor>();
  harness.cluster().RegisterActorType<HopActor>();

  auto f = harness.cluster().Ref<HopActor>("h").Call(
      &HopActor::Forward, std::string("p"), int64_t{5});
  harness.RunFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  ASSERT_TRUE(f.Get().ok());

  std::vector<SpanRecord> spans = harness.cluster().tracer().Collect();
  ASSERT_FALSE(spans.empty());
  uint64_t trace_id = spans[0].trace_id;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, trace_id) << "one call chain, one trace";
  }

  // client root -> Hop turn -> Ping turn.
  auto by_id = ById(spans);
  const SpanRecord* client = nullptr;
  const SpanRecord* hop = nullptr;
  const SpanRecord* ping = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.kind == "client") client = &by_id[s.span_id];
    if (s.kind == "turn" && s.actor.find("tel.Hop") == 0) {
      hop = &by_id[s.span_id];
    }
    if (s.kind == "turn" && s.actor.find("tel.Ping") == 0) {
      ping = &by_id[s.span_id];
    }
  }
  ASSERT_NE(client, nullptr);
  ASSERT_NE(hop, nullptr);
  ASSERT_NE(ping, nullptr);
  EXPECT_EQ(client->parent_span_id, 0u) << "the external call is the root";
  EXPECT_EQ(hop->parent_span_id, client->span_id);
  EXPECT_EQ(ping->parent_span_id, hop->span_id)
      << "the nested Call inherits the Hop turn's span";
  EXPECT_GE(hop->end_us, hop->start_us);
}

TEST(TracePropagationTest, DisabledTracingRecordsNothing) {
  RuntimeOptions o;
  o.num_silos = 1;  // trace.sample_every defaults to 0 (off).
  SimHarness harness(o);
  harness.cluster().RegisterActorType<PingActor>();
  auto f = harness.cluster().Ref<PingActor>("p").Call(&PingActor::Echo,
                                                      int64_t{1});
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(harness.cluster().tracer().Collect().empty());
  EXPECT_FALSE(harness.cluster().tracer().enabled());
}

TEST(TracePropagationTest, SamplingDrawIsOneInN) {
  SimHarness harness(TracedOptions(1, /*sample_every=*/4));
  harness.cluster().RegisterActorType<PingActor>();
  for (int i = 0; i < 8; ++i) {
    auto f = harness.cluster().Ref<PingActor>("p").Call(&PingActor::Echo,
                                                        int64_t{i});
    harness.RunFor(kMicrosPerSecond);
    ASSERT_TRUE(f.Ready());
  }
  // The draw counter is deterministic: draws 0..7 sample draws 0 and 4.
  MetricsSnapshot snap = harness.cluster().SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("trace.traces_started"), 2);
  std::set<uint64_t> trace_ids;
  for (const SpanRecord& s : harness.cluster().tracer().Collect()) {
    trace_ids.insert(s.trace_id);
  }
  EXPECT_EQ(trace_ids.size(), 2u);
}

// --- Cross-silo acceptance: SHM ingest ---------------------------------------

TEST(TraceCrossSiloTest, ShmIngestTraceLinksClientSensorAndAggregator) {
  RuntimeOptions o = TracedOptions(3);
  o.wire.require_wire = true;
  SimHarness harness(o);
  shm::ShmPlatform::RegisterTypes(harness.cluster());
  shm::ShmPlatform::ApplyPaperPlacement(harness.cluster());
  shm::ShmPlatform platform(&harness.cluster());

  shm::ShmTopology t;
  t.sensors = 4;
  t.sensors_per_org = 4;
  t.virtual_every = 2;
  t.hour_window_us = 2 * kMicrosPerSecond;
  auto setup = platform.Setup(t);
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().ok()) << setup.Get().status().ToString();
  // Drop the setup traffic so only the ingest trace below remains
  // interesting; rings keep everything, so just remember the current ids.
  std::set<uint64_t> old_traces;
  for (const SpanRecord& s : harness.cluster().tracer().Collect()) {
    old_traces.insert(s.trace_id);
  }

  std::vector<shm::DataPoint> pts;
  for (int i = 0; i < 8; ++i) {
    pts.push_back(shm::DataPoint{harness.Now() + i * kMicrosPerMilli,
                                 20.0 + i});
  }
  auto ins = platform.Insert(t, /*sensor=*/1, pts);
  harness.RunFor(10 * kMicrosPerSecond);
  ASSERT_TRUE(ins.Ready());
  ASSERT_TRUE(ins.Get().ok()) << ins.Get().status().ToString();

  // Find the ingest trace: the one with a shm.Sensor turn we didn't see
  // during setup.
  std::vector<SpanRecord> all = harness.cluster().tracer().Collect();
  uint64_t ingest_trace = 0;
  for (const SpanRecord& s : all) {
    if (old_traces.count(s.trace_id)) continue;
    if (s.kind == "turn" && s.actor.find("shm.Sensor") == 0) {
      ingest_trace = s.trace_id;
      break;
    }
  }
  ASSERT_NE(ingest_trace, 0u) << "ingest must have started a fresh trace";

  std::vector<SpanRecord> trace =
      harness.cluster().tracer().CollectTrace(ingest_trace);
  auto by_id = ById(trace);

  const SpanRecord* client = nullptr;
  const SpanRecord* sensor = nullptr;
  bool saw_aggregator = false;
  for (const SpanRecord& s : trace) {
    if (s.kind == "client") client = &by_id[s.span_id];
    if (s.kind == "turn" && s.actor.find("shm.Sensor") == 0) {
      sensor = &by_id[s.span_id];
    }
    if (s.kind == "turn" && s.actor.find("shm.Aggregator") == 0) {
      saw_aggregator = true;
    }
  }
  ASSERT_NE(client, nullptr) << "the external Insert call roots the trace";
  ASSERT_NE(sensor, nullptr);
  EXPECT_TRUE(saw_aggregator)
      << "ingest must fan through the channel into the aggregator";
  EXPECT_EQ(client->parent_span_id, 0u);
  EXPECT_EQ(sensor->parent_span_id, client->span_id)
      << "the sensor turn is caused by the client call";

  // Every span's parent must exist in the same trace (or be the root).
  for (const SpanRecord& s : trace) {
    if (s.parent_span_id == 0) continue;
    EXPECT_TRUE(by_id.count(s.parent_span_id))
        << "orphan span " << s.span_id << " (" << s.name << ")";
  }

  // Turn spans on remote silos prove the context crossed the wire.
  std::set<SiloId> turn_silos;
  for (const SpanRecord& s : trace) {
    if (s.kind == "turn") turn_silos.insert(s.silo);
  }
  EXPECT_GE(turn_silos.size(), 1u);

  std::string dump = harness.cluster().DumpTraceJson();
  EXPECT_NE(dump.find("\"traces\""), std::string::npos);
  EXPECT_NE(dump.find("\"shm.Sensor"), std::string::npos);
}

// --- Propagation through retry ----------------------------------------------

class VolatileCounter : public ActorBase {
 public:
  static constexpr char kTypeName[] = "tel.Volatile";
  int64_t Add(int64_t d) { return value_ += d; }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

TEST(TracePropagationTest, RetryAttemptsStayOnTheOriginalTrace) {
  SimHarness harness(TracedOptions(1));
  harness.cluster().RegisterActorType<VolatileCounter>();
  auto c = harness.cluster().Ref<VolatileCounter>("v");
  auto warm = c.Call(&VolatileCounter::Add, int64_t{1});
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(warm.Get().ok());
  uint64_t warm_trace = 0;
  for (const SpanRecord& s : harness.cluster().tracer().Collect()) {
    warm_trace = std::max(warm_trace, s.trace_id);
  }

  harness.cluster().KillSilo(0);
  harness.client_executor()->PostAfter(2 * kMicrosPerSecond, [&harness] {
    harness.cluster().RestartSilo(0);
  });
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.initial_backoff_us = 100 * kMicrosPerMilli;

  // Give the whole retry loop one synthetic traced scope, the way a traced
  // workflow step would invoke it.
  Tracer& tracer = harness.cluster().tracer();
  TraceContext ctx = tracer.MaybeStartTrace();
  ASSERT_TRUE(ctx.valid());
  ctx.span_id = tracer.NewSpanId();
  Future<int64_t> healed = [&] {
    ScopedTraceContext scope(ctx);
    return RetryAsync<int64_t>(
        harness.client_executor(), policy, /*seed=*/3,
        [&c] { return c.Call(&VolatileCounter::Value); }, IsTransient);
  }();
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(healed.Ready());
  ASSERT_TRUE(healed.Get().ok()) << healed.Get().status().ToString();

  // The successful attempt ran after the restart, from a timer thread with
  // no ambient context — only RetryLoop's re-install can have kept the id.
  bool found_turn_on_ctx_trace = false;
  for (const SpanRecord& s : harness.cluster().tracer().Collect()) {
    if (s.trace_id == ctx.trace_id && s.kind == "turn" &&
        s.parent_span_id == ctx.span_id) {
      found_turn_on_ctx_trace = true;
    }
  }
  EXPECT_TRUE(found_turn_on_ctx_trace)
      << "retried attempts must carry the originating trace context";
  EXPECT_NE(ctx.trace_id, warm_trace);
}

// --- Workflow trace ----------------------------------------------------------

class LedgerActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "tel.Ledger";
  int64_t Balance() { return balance_; }

 protected:
  Status ValidateOp(const std::string& op, const std::string&) override {
    if (op == "credit" || op == "debit") return Status::OK();
    return Status::InvalidArgument("unknown op " + op);
  }
  void ApplyOp(const std::string& op, const std::string& arg) override {
    int64_t amount = std::atoll(arg.c_str());
    balance_ += (op == "credit") ? amount : -amount;
  }
  void UnstageOp(const std::string&, const std::string&) override {}

 private:
  int64_t balance_ = 0;
};

TEST(TraceWorkflowTest, TwoStepWorkflowIsOneTraceUnderTheWorkflowSpan) {
  SimHarness harness(TracedOptions(2));
  harness.cluster().RegisterActorType<LedgerActor>();
  WorkflowEngine engine(&harness.cluster());
  auto f = engine.Run({
      WorkflowStep{LedgerActor::kTypeName, "w-a", "credit", "30", "debit",
                   "30"},
      WorkflowStep{LedgerActor::kTypeName, "w-b", "credit", "30", "debit",
                   "30"},
  });
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  ASSERT_TRUE(f.Get().ok());
  ASSERT_TRUE(f.Get().value().ok()) << f.Get().value().ToString();

  const SpanRecord* wf = nullptr;
  std::vector<SpanRecord> all = harness.cluster().tracer().Collect();
  for (const SpanRecord& s : all) {
    if (s.kind == "workflow") wf = &s;
  }
  ASSERT_NE(wf, nullptr) << "the workflow records its own span";

  int turns_on_wf_trace = 0;
  std::set<std::string> actors;
  for (const SpanRecord& s : all) {
    if (s.trace_id == wf->trace_id && s.kind == "turn") {
      ++turns_on_wf_trace;
      actors.insert(s.actor);
    }
  }
  EXPECT_GE(turns_on_wf_trace, 2)
      << "both steps' turns must land on the workflow's trace";
  bool saw_a = false, saw_b = false;
  for (const std::string& a : actors) {
    if (a.find("w-a") != std::string::npos) saw_a = true;
    if (a.find("w-b") != std::string::npos) saw_b = true;
  }
  EXPECT_TRUE(saw_a && saw_b) << "steps touch both target actors";
  EXPECT_EQ(wf->parent_span_id, 0u)
      << "an externally-started workflow roots its trace";

  MetricsSnapshot snap = harness.cluster().SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("workflow.steps_executed"), 2);
}

// --- Cluster metrics & turn profiling ----------------------------------------

TEST(ClusterMetricsTest, RuntimeCountersLandInTheRegistry) {
  SimHarness harness(TracedOptions(2));
  harness.cluster().RegisterActorType<PingActor>();
  for (int i = 0; i < 6; ++i) {
    auto f = harness.cluster()
                 .Ref<PingActor>("p" + std::to_string(i))
                 .Call(&PingActor::Echo, int64_t{i});
    harness.RunFor(kMicrosPerSecond);
    ASSERT_TRUE(f.Get().ok());
  }
  MetricsSnapshot snap = harness.cluster().SnapshotMetrics();
  EXPECT_GT(snap.counters.at("trace.spans_recorded"), 0);
  EXPECT_GT(snap.gauges.at("cluster.activations"), 0);
  EXPECT_GT(snap.gauges.at("cluster.messages_processed"), 0);
  // Some lane carried every call: same-silo closures, wire frames, or the
  // closure fallback (these test actors are not in the method registry).
  int64_t carried = snap.counters.at("wire.local_closure_sends") +
                    snap.counters.at("wire.requests") +
                    snap.counters.at("wire.closure_fallbacks");
  EXPECT_GE(carried, 6);

  // Turn profiling: per-type histograms exist and saw every turn.
  ASSERT_TRUE(snap.histograms.count("turn.exec_us.tel.Ping"));
  ASSERT_TRUE(snap.histograms.count("turn.queue_wait_us.tel.Ping"));
  EXPECT_GE(snap.histograms.at("turn.exec_us.tel.Ping").count(), 6);
  EXPECT_EQ(snap.histograms.at("turn.exec_us.tel.Ping").count(),
            snap.histograms.at("turn.queue_wait_us.tel.Ping").count());

  EXPECT_NE(harness.cluster().DumpMetrics().find("wire."),
            std::string::npos);
  EXPECT_NE(harness.cluster().DumpMetricsJson().find("\"counters\""),
            std::string::npos);
}

// --- SpanRing ----------------------------------------------------------------

TEST(SpanRingTest, KeepsNewestOnWrapAndSurvivesConcurrentPush) {
  SpanRing ring(16);
  for (uint64_t i = 1; i <= 40; ++i) {
    SpanRecord r;
    r.trace_id = 1;
    r.span_id = i;
    ASSERT_TRUE(ring.Push(r));
  }
  std::vector<SpanRecord> out;
  ring.Collect(&out);
  ASSERT_EQ(out.size(), 16u);
  for (const SpanRecord& s : out) {
    EXPECT_GT(s.span_id, 24u) << "wrap-around keeps only the newest spans";
  }

  SpanRing hot(64);
  std::atomic<int64_t> pushed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&hot, &pushed, t] {
      for (uint64_t i = 0; i < 5000; ++i) {
        SpanRecord r;
        r.trace_id = 2;
        r.span_id = t * 10000 + i;
        if (hot.Push(r)) pushed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<SpanRecord> survivors;
  hot.Collect(&survivors);
  EXPECT_LE(survivors.size(), 64u);
  EXPECT_GT(pushed.load(), 0);
}

}  // namespace
}  // namespace aodb
