// Property tests of the wire boundary (common/wire.h, actor/wire_format.h):
// randomized payloads must round-trip exactly through the codec layer, and
// randomly corrupted frames — bit flips, truncations, random garbage — must
// surface as Status::Corruption (or, for request frames, a clean decode
// failure), never as a crash or undefined behavior in a decoder. Runs under
// ASan in tier-1, so "never crash" is checked with memory teeth.

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "actor/wire_format.h"
#include "common/rng.h"
#include "common/wire.h"

namespace aodb {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t n = rng->NextBelow(max_len + 1);
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>(rng->NextBelow(256));
  }
  return s;
}

// --- Round-trips -------------------------------------------------------------

TEST(WirePropertyTest, SealOpenRoundTripsRandomPayloads) {
  Rng rng(0xdeadbeef);
  for (int i = 0; i < 500; ++i) {
    std::string payload = RandomBytes(&rng, 512);
    std::string frame = WireSeal(payload);
    std::string_view opened;
    Status st = WireOpen(frame, &opened);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(opened, payload);
  }
}

TEST(WirePropertyTest, TupleCodecRoundTripsRandomValues) {
  Rng rng(0x5eed);
  for (int i = 0; i < 500; ++i) {
    std::tuple<int64_t, uint64_t, bool, double, std::string,
               std::vector<int64_t>>
        in;
    std::get<0>(in) = static_cast<int64_t>(rng.NextU64());
    std::get<1>(in) = rng.NextU64();
    std::get<2>(in) = rng.Bernoulli(0.5);
    std::get<3>(in) = rng.NextDouble() * 1e12 - 5e11;
    std::get<4>(in) = RandomBytes(&rng, 128);
    std::vector<int64_t> v(rng.NextBelow(16));
    for (auto& x : v) x = static_cast<int64_t>(rng.NextU64());
    std::get<5>(in) = std::move(v);

    BufWriter w;
    WireEncodeTuple(&w, in);
    std::string bytes = w.Release();
    decltype(in) back;
    BufReader r(bytes);
    Status st = WireDecodeTuple(&r, &back);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(in, back);
  }
}

TEST(WirePropertyTest, RequestFramesRoundTripRandomContents) {
  Rng rng(0xf00d);
  for (int i = 0; i < 300; ++i) {
    WireRequest req;
    req.target.type = "t" + std::to_string(rng.NextBelow(1000));
    req.target.key = RandomBytes(&rng, 64);
    req.method_id = rng.NextU64();
    req.cost_us = static_cast<Micros>(rng.NextBelow(1 << 20));
    req.deadline_us = static_cast<Micros>(rng.NextBelow(1 << 30));
    req.priority = static_cast<uint8_t>(rng.NextBelow(3));
    req.trace_id = rng.NextU64();
    req.parent_span_id = rng.NextU64();
    req.trace_sampled = rng.Bernoulli(0.5);
    req.args = RandomBytes(&rng, 256);

    std::string frame = WireEncodeRequest(req);
    WireRequest out;
    Status st = WireDecodeRequest(frame, &out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(out.target.type, req.target.type);
    EXPECT_EQ(out.target.key, req.target.key);
    EXPECT_EQ(out.method_id, req.method_id);
    EXPECT_EQ(out.cost_us, req.cost_us);
    EXPECT_EQ(out.deadline_us, req.deadline_us);
    EXPECT_EQ(out.priority, req.priority);
    EXPECT_EQ(out.trace_id, req.trace_id);
    EXPECT_EQ(out.parent_span_id, req.parent_span_id);
    EXPECT_EQ(out.trace_sampled, req.trace_sampled);
    EXPECT_EQ(out.args, req.args);
  }
}

// --- Corruption --------------------------------------------------------------

/// Applies one random mutation: flip a bit, truncate the tail, or append
/// garbage. Returns true if the frame actually changed.
bool Mutate(Rng* rng, std::string* frame) {
  switch (rng->NextBelow(3)) {
    case 0: {
      if (frame->empty()) return false;
      size_t pos = rng->NextBelow(frame->size());
      (*frame)[pos] = static_cast<char>(
          static_cast<uint8_t>((*frame)[pos]) ^
          (1u << rng->NextBelow(8)));
      return true;
    }
    case 1: {
      if (frame->empty()) return false;
      frame->resize(rng->NextBelow(frame->size()));
      return true;
    }
    default:
      frame->append(RandomBytes(rng, 8));
      return true;
  }
}

TEST(WirePropertyTest, CorruptedSealedFramesSurfaceAsCorruption) {
  Rng rng(0xbadc0de);
  int rejected = 0;
  constexpr int kRounds = 2000;
  for (int i = 0; i < kRounds; ++i) {
    std::string frame = WireSeal(RandomBytes(&rng, 256));
    if (!Mutate(&rng, &frame)) continue;
    std::string_view payload;
    Status st = WireOpen(frame, &payload);
    // A 1-in-2^32 CRC collision is possible in principle; anything that
    // does fail must fail as Corruption. (With this fixed seed, every
    // mutation is caught.)
    if (!st.ok()) {
      EXPECT_TRUE(st.IsCorruption()) << st.ToString();
      ++rejected;
    }
  }
  EXPECT_GT(rejected, kRounds * 9 / 10)
      << "the CRC seal must catch essentially all mutations";
}

TEST(WirePropertyTest, CorruptedRequestFramesNeverCrashTheDecoder) {
  Rng rng(0xc0ffee);
  for (int i = 0; i < 2000; ++i) {
    WireRequest req;
    req.target.type = "chaos.Actor";
    req.target.key = RandomBytes(&rng, 32);
    req.method_id = rng.NextU64();
    req.args = RandomBytes(&rng, 128);
    std::string frame = WireEncodeRequest(req);
    if (!Mutate(&rng, &frame)) continue;
    WireRequest out;
    Status st = WireDecodeRequest(frame, &out);
    // Decode may succeed only on a CRC collision; it must never crash, and
    // failures must be structured errors.
    if (!st.ok()) {
      EXPECT_TRUE(st.IsCorruption())
          << st.ToString();
    }
  }
}

TEST(WirePropertyTest, RandomGarbageNeverCrashesTheDecoder) {
  Rng rng(0x9a5b4a6e);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage = RandomBytes(&rng, 192);
    std::string_view payload;
    Status opened = WireOpen(garbage, &payload);
    WireRequest out;
    Status decoded = WireDecodeRequest(garbage, &out);
    // Both must return (not crash); decode of random noise should
    // essentially always fail.
    (void)opened;
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.IsCorruption())
          << decoded.ToString();
    }
  }
}

}  // namespace
}  // namespace aodb
