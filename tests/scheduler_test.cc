// Scheduling invariants of the work-stealing executor and batched actor
// turns: task completion and shutdown drain, timer deadline ordering,
// per-actor turn serialization, same-sender FIFO, and batch fairness.
// These are the properties that stealing and batching are NOT allowed to
// break; the suite runs under ASan and TSan in tier-1 (see scripts/tier1.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "actor/thread_pool.h"

namespace aodb {
namespace {

/// Spin-waits (with yields) until `pred` holds, up to ~10 s of wall time.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(ThreadPool, RunsAllTasksFromExternalAndWorkerThreads) {
  ThreadPoolExecutor pool(4);
  constexpr int kExternal = 500;
  std::atomic<int> ran{0};
  for (int i = 0; i < kExternal; ++i) {
    // Each external task posts one follow-on from the worker thread itself,
    // exercising both the round-robin external path and the LIFO-slot local
    // path.
    pool.Post(Task{[&pool, &ran] {
                     ran.fetch_add(1);
                     pool.Post(Task{[&ran] { ran.fetch_add(1); }, 0});
                   },
                   0});
  }
  EXPECT_TRUE(WaitFor([&] { return ran.load() == 2 * kExternal; }));
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 2 * kExternal);
}

TEST(ThreadPool, ShutdownDrainsPendingImmediateTasks) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    ThreadPoolExecutor pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Post(Task{[&ran] { ran.fetch_add(1); }, 0});
    }
    pool.Shutdown();  // Must not drop queued work.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, StatsMergePerWorkerShards) {
  ThreadPoolExecutor pool(4);
  constexpr int kTasks = 300;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Post(Task{[&ran] { ran.fetch_add(1); }, 0});
  }
  ASSERT_TRUE(WaitFor([&] { return ran.load() == kTasks; }));
  ASSERT_TRUE(WaitFor([&] { return pool.Stats().tasks_run == kTasks; }));
  ExecutorStats s = pool.Stats();
  EXPECT_EQ(s.tasks_run, kTasks);
  EXPECT_EQ(s.queue_depth, 0);
  EXPECT_GE(s.steals, 0);
  EXPECT_GE(s.parks, 0);
  pool.Shutdown();
}

TEST(ThreadPool, PostAtFiresInDeadlineOrder) {
  ThreadPoolExecutor pool(2);
  Micros now = pool.clock()->Now();
  std::mutex mu;
  std::vector<int> order;
  auto mark = [&mu, &order](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  };
  // Inserted out of order; must fire by deadline, not insertion.
  pool.PostAt(now + 60000, [&] { mark(3); });
  pool.PostAt(now + 20000, [&] { mark(1); });
  pool.PostAt(now + 40000, [&] { mark(2); });
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lock(mu);
    return order.size() == 3;
  }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  pool.Shutdown();
}

TEST(ThreadPool, EarlierDeadlineInsertedLaterStillFiresPromptly) {
  ThreadPoolExecutor pool(2);
  Micros now = pool.clock()->Now();
  std::atomic<bool> early_ran{false};
  // A far-future entry parks the timer thread on a long wait; the late
  // insertion of a near deadline must wake it (the new-earliest notify),
  // not ride out the original wait.
  pool.PostAt(now + 30 * kMicrosPerSecond, [] {});
  pool.PostAt(now + 10000, [&early_ran] { early_ran.store(true); });
  ASSERT_TRUE(WaitFor([&] { return early_ran.load(); }));
  EXPECT_LT(pool.clock()->Now() - now, 5 * kMicrosPerSecond);
  pool.Shutdown();
}

/// Detects overlapping turns: Enter/exit marks around each method body. Any
/// concurrent entry — two workers running the same activation — is counted
/// as a violation. Members are atomics only so the DETECTOR itself is race-
/// free; the runtime's guarantee is that they never observe overlap.
class SerialProbe : public ActorBase {
 public:
  static constexpr char kTypeName[] = "sched.SerialProbe";

  void Enter(int64_t spin) {
    if (in_turn_.exchange(true, std::memory_order_acq_rel)) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    for (int64_t i = 0; i < spin; ++i) {
      asm volatile("" ::: "memory");  // Widen the would-be race window.
    }
    in_turn_.store(false, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t Count() { return count_.load(std::memory_order_relaxed); }
  int64_t Violations() {
    return violations_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> in_turn_{false};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> violations_{0};
};

TEST(Scheduling, TurnsStaySerializedUnderStealingAndBatching) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 8;  // Ample opportunity to co-schedule.
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<SerialProbe>();
  auto ref = handle->Ref<SerialProbe>("probe");
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ref] {
      for (int i = 0; i < kPerProducer; ++i) {
        ref.Tell(&SerialProbe::Enter, int64_t{25});
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(WaitFor([&] {
    return ref.Call(&SerialProbe::Count).Get().value() ==
           kProducers * kPerProducer;
  }));
  EXPECT_EQ(ref.Call(&SerialProbe::Violations).Get().value(), 0);
}

/// Checks that within each stream (one sender thread), sequence numbers
/// arrive in send order — stealing may reorder tasks globally, but never
/// messages of one sender to one actor.
class StreamChecker : public ActorBase {
 public:
  static constexpr char kTypeName[] = "sched.StreamChecker";

  void Push(int64_t stream, int64_t seq) {
    int64_t& next = next_[stream];
    if (seq != next) ++violations_;
    next = seq + 1;
    ++total_;
  }
  int64_t Total() { return total_; }
  int64_t Violations() { return violations_; }

 private:
  std::map<int64_t, int64_t> next_;
  int64_t total_ = 0;
  int64_t violations_ = 0;
};

TEST(Scheduling, SameSenderFifoSurvivesStealingAndBatching) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 8;
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<StreamChecker>();
  auto ref = handle->Ref<StreamChecker>("streams");
  constexpr int kStreams = 4;
  constexpr int kPerStream = 300;
  std::vector<std::thread> producers;
  for (int p = 0; p < kStreams; ++p) {
    producers.emplace_back([&ref, p] {
      for (int64_t i = 0; i < kPerStream; ++i) {
        ref.Tell(&StreamChecker::Push, int64_t{p}, i);
      }
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(WaitFor([&] {
    return ref.Call(&StreamChecker::Total).Get().value() ==
           kStreams * kPerStream;
  }));
  EXPECT_EQ(ref.Call(&StreamChecker::Violations).Get().value(), 0);
}

class CountActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "sched.Count";
  int64_t Add(int64_t d) {
    value_ += d;
    return value_;
  }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

/// A flooded actor must not starve a lightly-loaded one: the batch cap
/// forces the hot activation to yield its worker between batches.
TEST(Scheduling, BatchCapBoundsHotActorMonopoly) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 2;
  options.max_turn_batch = 4;
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<CountActor>();
  auto hot = handle->Ref<CountActor>("hot");
  auto cold = handle->Ref<CountActor>("cold");
  constexpr int kHot = 600;
  constexpr int kCold = 60;
  for (int i = 0; i < kHot; ++i) {
    hot.Tell(&CountActor::Add, int64_t{1});
    if (i % (kHot / kCold) == 0) cold.Tell(&CountActor::Add, int64_t{1});
  }
  ASSERT_TRUE(WaitFor([&] {
    return cold.Call(&CountActor::Value).Get().value() == kCold &&
           hot.Call(&CountActor::Value).Get().value() == kHot;
  }));
  EXPECT_EQ(hot.Call(&CountActor::Value).Get().value(), kHot);
  EXPECT_EQ(cold.Call(&CountActor::Value).Get().value(), kCold);
}

TEST(Scheduling, BatchSizeOneProcessesEveryMessage) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 2;
  options.max_turn_batch = 1;  // Batching disabled: one envelope per task.
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<CountActor>();
  auto ref = handle->Ref<CountActor>("one");
  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    ref.Tell(&CountActor::Add, int64_t{1});
  }
  ASSERT_TRUE(WaitFor([&] {
    return ref.Call(&CountActor::Value).Get().value() == kMessages;
  }));
  EXPECT_EQ(ref.Call(&CountActor::Value).Get().value(), kMessages);
}

}  // namespace
}  // namespace aodb
