// Overload-management tests: bounded mailboxes returning Overloaded on both
// dispatch lanes (same-silo closure lane and the cross-silo wire lane),
// per-type depth overrides, RetryAsync backpressure (back off and re-send
// to the SAME placement — no failover), the silo load shedder's priority
// ordering (telemetry first, queries past the hard watermark, control
// never), live hot-actor migration (state and reminders survive the
// deactivate -> directory-move -> reactivate cycle), and the regression
// for the idle-sweep vs migration race: both initiators must observe the
// activation state machine, so whichever loses simply declines.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/retry_async.h"
#include "common/retry.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

// --- Actors under test -------------------------------------------------------

struct OvState {
  int64_t value = 0;
  int64_t reminder_fires = 0;
  void Encode(BufWriter* w) const {
    w->PutSigned(value);
    w->PutSigned(reminder_fires);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&value));
    return r->GetSigned(&reminder_fires);
  }
};

/// Durable counter. Writes persist on every update, so idle-sweeps and
/// migrations may deactivate it at any point without losing acked adds.
class OvCounter : public PersistentActor<OvState> {
 public:
  static constexpr char kTypeName[] = "test.OvCounter";

  OvCounter()
      : PersistentActor<OvState>(PersistenceOptions{
            PersistPolicy::kOnEveryUpdate, 100, 10 * kMicrosPerSecond,
            "default", RetryPolicy{}}) {}

  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
  int64_t ReminderFires() { return state().reminder_fires; }
  Status StartReminder(int64_t period_us) {
    return ctx().RegisterReminder("tick", period_us);
  }

  void ReceiveReminder(const std::string&) override {
    ++state().reminder_fires;
    MarkDirty();
  }
};

/// Fans `n` expensive adds out to a counter from INSIDE a silo, so the
/// sends ride the same-silo closure lane (the wire lane is only taken for
/// cross-silo sends). Returns how many came back Overloaded.
class OvRelay : public ActorBase {
 public:
  static constexpr char kTypeName[] = "test.OvRelay";

  Future<int64_t> Flood(std::string key, int64_t n) {
    std::vector<Future<int64_t>> acks;
    acks.reserve(static_cast<size_t>(n));
    CallOptions opts;
    opts.cost_us = 100 * kMicrosPerMilli;
    for (int64_t i = 0; i < n; ++i) {
      acks.push_back(
          ctx().Ref<OvCounter>(key).CallWith(opts, &OvCounter::Add,
                                             int64_t{1}));
    }
    Promise<int64_t> done;
    WhenAll(acks).OnReady(
        [done](Result<std::vector<Result<int64_t>>>&& r) {
          int64_t overloaded = 0;
          if (r.ok()) {
            for (const auto& a : r.value()) {
              if (!a.ok() && a.status().IsOverloaded()) ++overloaded;
            }
          }
          done.SetValue(overloaded);
        });
    return done.GetFuture();
  }
};

void RegisterWireMethods() {
  static const Status st = [] {
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        OvCounter::kTypeName, &OvCounter::Add, "OvCounter.Add"));
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        OvCounter::kTypeName, &OvCounter::Value, "OvCounter.Value",
        /*idempotent=*/true));
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        OvCounter::kTypeName, &OvCounter::ReminderFires,
        "OvCounter.ReminderFires", /*idempotent=*/true));
    return MethodRegistry::Global().Register(
        OvCounter::kTypeName, &OvCounter::StartReminder,
        "OvCounter.StartReminder");
  }();
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// --- Fixture -----------------------------------------------------------------

RuntimeOptions BaseOptions(int num_silos) {
  RuntimeOptions o;
  o.num_silos = num_silos;
  o.workers_per_silo = 1;  // Serialize turns: deterministic queue depths.
  o.seed = 42;
  return o;
}

struct TestCluster {
  explicit TestCluster(const RuntimeOptions& options)
      : harness(options), cluster(harness.cluster()) {
    RegisterWireMethods();
    cluster.RegisterActorType<OvCounter>();
    cluster.RegisterActorType<OvRelay>();
    cluster.RegisterStateStorage("default",
                                 std::make_shared<KvStateStorage>(&kv));
  }

  int64_t Metric(const std::string& name) {
    MetricsSnapshot snap = cluster.SnapshotMetrics();
    auto cit = snap.counters.find(name);
    if (cit != snap.counters.end()) return cit->second;
    auto git = snap.gauges.find(name);
    return git != snap.gauges.end() ? git->second : 0;
  }

  MemKvStore kv;
  SimHarness harness;
  Cluster& cluster;
};

// --- Bounded mailboxes -------------------------------------------------------

/// A full mailbox rejects with Overloaded on the wire lane (client -> silo
/// with wire-registered methods), the depth gauge returns to zero after the
/// drain, and no accepted add is lost or double-applied.
TEST(OverloadTest, MailboxFullOverloadedOnWireLane) {
  RuntimeOptions options = BaseOptions(1);
  options.overload.max_mailbox_depth = 2;
  TestCluster tc(options);

  CallOptions slow;
  slow.cost_us = 100 * kMicrosPerMilli;
  std::vector<Future<int64_t>> acks;
  for (int i = 0; i < 6; ++i) {
    acks.push_back(tc.cluster.Ref<OvCounter>("w0").CallWith(
        slow, &OvCounter::Add, int64_t{1}));
  }
  tc.harness.RunFor(2 * kMicrosPerSecond);

  int64_t overloaded = 0;
  int64_t acked = 0;
  for (auto& f : acks) {
    ASSERT_TRUE(f.Ready());
    if (f.Get().ok()) {
      ++acked;
    } else {
      EXPECT_TRUE(f.Get().status().IsOverloaded())
          << f.Get().status().ToString();
      EXPECT_TRUE(IsTransient(f.Get().status()));
      ++overloaded;
    }
  }
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(acked + overloaded, 6);
  EXPECT_EQ(tc.Metric("overload.mailbox_rejects"), overloaded);
  EXPECT_EQ(tc.Metric("mailbox.depth.test.OvCounter"), 0);

  auto v = tc.cluster.Ref<OvCounter>("w0").Call(&OvCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 5 * kMicrosPerSecond));
  EXPECT_EQ(v.Get().value(), acked);
}

/// Same rejection on the same-silo closure lane: an actor flooding a
/// co-located peer sees Overloaded without any wire encoding involved.
TEST(OverloadTest, MailboxFullOverloadedOnClosureLane) {
  RuntimeOptions options = BaseOptions(1);
  options.overload.max_mailbox_depth = 2;
  TestCluster tc(options);

  auto f = tc.cluster.Ref<OvRelay>("relay").Call(&OvRelay::Flood,
                                                 std::string("c0"),
                                                 int64_t{6});
  ASSERT_TRUE(RunUntilReady(tc.harness, f, 5 * kMicrosPerSecond));
  ASSERT_TRUE(f.Get().ok());
  int64_t overloaded = f.Get().value();
  EXPECT_GE(overloaded, 1);

  auto v = tc.cluster.Ref<OvCounter>("c0").Call(&OvCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 5 * kMicrosPerSecond));
  EXPECT_EQ(v.Get().value(), 6 - overloaded);
}

/// SetTypeMailboxDepth overrides the (here unlimited) cluster default for
/// one actor type; activations created afterwards enforce it.
TEST(OverloadTest, PerTypeMailboxDepthOverride) {
  RuntimeOptions options = BaseOptions(1);
  ASSERT_EQ(options.overload.max_mailbox_depth, 0);  // Unbounded default.
  TestCluster tc(options);
  tc.cluster.SetTypeMailboxDepth(OvCounter::kTypeName, 2);

  CallOptions slow;
  slow.cost_us = 100 * kMicrosPerMilli;
  std::vector<Future<int64_t>> acks;
  for (int i = 0; i < 6; ++i) {
    acks.push_back(tc.cluster.Ref<OvCounter>("t0").CallWith(
        slow, &OvCounter::Add, int64_t{1}));
  }
  tc.harness.RunFor(2 * kMicrosPerSecond);
  int64_t overloaded = 0;
  for (auto& f : acks) {
    ASSERT_TRUE(f.Ready());
    if (!f.Get().ok()) {
      EXPECT_TRUE(f.Get().status().IsOverloaded());
      ++overloaded;
    }
  }
  EXPECT_GE(overloaded, 1);
}

// --- Backpressure ------------------------------------------------------------

/// Overloaded is retryable-with-backoff: once the actor drains, the retry
/// succeeds against the SAME placement — backpressure must not trigger the
/// failover/re-placement path that Unavailable does.
TEST(OverloadTest, RetryBacksOffThenSucceedsSamePlacement) {
  RuntimeOptions options = BaseOptions(2);
  options.overload.max_mailbox_depth = 2;
  TestCluster tc(options);

  auto warm = tc.cluster.Ref<OvCounter>("r0").Call(&OvCounter::Add,
                                                   int64_t{1});
  ASSERT_TRUE(RunUntilReady(tc.harness, warm, 5 * kMicrosPerSecond));
  ASSERT_TRUE(warm.Get().ok());
  auto before = tc.cluster.directory().Lookup(
      ActorId{OvCounter::kTypeName, "r0"});
  ASSERT_TRUE(before.has_value());

  // Fill the mailbox (2 queued behind one 100ms turn), then push one more
  // add through RetryAsync: the first attempt is rejected, the backoff
  // waits out the drain, and the re-send lands.
  CallOptions slow;
  slow.cost_us = 100 * kMicrosPerMilli;
  std::vector<Future<int64_t>> backlog;
  for (int i = 0; i < 3; ++i) {
    backlog.push_back(tc.cluster.Ref<OvCounter>("r0").CallWith(
        slow, &OvCounter::Add, int64_t{1}));
  }
  tc.harness.RunFor(5 * kMicrosPerMilli);  // Deliveries land, none drain.

  RetryPolicy policy;
  policy.max_retries = 10;
  policy.initial_backoff_us = 50 * kMicrosPerMilli;
  policy.max_backoff_us = 200 * kMicrosPerMilli;
  int64_t retries = 0;
  Cluster* cl = &tc.cluster;
  auto f = RetryAsync<int64_t>(
      tc.cluster.client_executor(), policy, /*seed=*/7,
      [cl] {
        CallOptions opts;
        opts.cost_us = kMicrosPerMilli;
        return cl->Ref<OvCounter>("r0").CallWith(opts, &OvCounter::Add,
                                                 int64_t{1});
      },
      IsTransient, [&retries](const Status&) { ++retries; });
  ASSERT_TRUE(RunUntilReady(tc.harness, f, 10 * kMicrosPerSecond));
  ASSERT_TRUE(f.Get().ok()) << f.Get().status().ToString();

  int64_t backlog_acked = 0;
  for (auto& b : backlog) {
    if (b.Ready() && b.Get().ok()) ++backlog_acked;
  }
  auto after = tc.cluster.directory().Lookup(
      ActorId{OvCounter::kTypeName, "r0"});
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after.value(), before.value());  // No failover re-placement.
  EXPECT_GE(retries, 1);

  auto v = tc.cluster.Ref<OvCounter>("r0").Call(&OvCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 5 * kMicrosPerSecond));
  EXPECT_EQ(v.Get().value(), 1 + backlog_acked + 1);
}

// --- Load shedding -----------------------------------------------------------

/// Past the soft watermark the silo sheds telemetry but still accepts
/// queries and control traffic.
TEST(OverloadTest, ShedsTelemetryFirst) {
  RuntimeOptions options = BaseOptions(1);
  options.overload.shed_watermark = 4;
  options.overload.shed_hard_watermark = 1000;
  TestCluster tc(options);

  // Backlog rides the control class so building it cannot itself be shed.
  CallOptions slow;
  slow.cost_us = 50 * kMicrosPerMilli;
  slow.priority = MessagePriority::kControl;
  std::vector<Future<int64_t>> backlog;
  for (int i = 0; i < 12; ++i) {
    backlog.push_back(tc.cluster.Ref<OvCounter>("s0").CallWith(
        slow, &OvCounter::Add, int64_t{1}));
  }
  tc.harness.RunFor(5 * kMicrosPerMilli);

  CallOptions telemetry;
  telemetry.priority = MessagePriority::kTelemetry;
  auto t = tc.cluster.Ref<OvCounter>("s0").CallWith(telemetry,
                                                    &OvCounter::Add,
                                                    int64_t{1});
  CallOptions query;  // kQuery is the default priority.
  auto q = tc.cluster.Ref<OvCounter>("s0").CallWith(query, &OvCounter::Add,
                                                    int64_t{1});
  CallOptions control;
  control.priority = MessagePriority::kControl;
  auto c = tc.cluster.Ref<OvCounter>("s0").CallWith(control, &OvCounter::Add,
                                                    int64_t{1});
  tc.harness.RunFor(5 * kMicrosPerSecond);

  ASSERT_TRUE(t.Ready());
  ASSERT_FALSE(t.Get().ok());
  EXPECT_TRUE(t.Get().status().IsOverloaded()) << t.Get().status().ToString();
  ASSERT_TRUE(q.Ready());
  EXPECT_TRUE(q.Get().ok()) << q.Get().status().ToString();
  ASSERT_TRUE(c.Ready());
  EXPECT_TRUE(c.Get().ok()) << c.Get().status().ToString();
  EXPECT_GE(tc.Metric("overload.shed.telemetry"), 1);
  EXPECT_EQ(tc.Metric("overload.shed.query"), 0);
}

/// Past the hard watermark queries are shed too; control traffic never is.
TEST(OverloadTest, ShedsQueriesPastHardWatermarkNeverControl) {
  RuntimeOptions options = BaseOptions(1);
  options.overload.shed_watermark = 2;
  options.overload.shed_hard_watermark = 4;
  TestCluster tc(options);

  CallOptions slow;
  slow.cost_us = 50 * kMicrosPerMilli;
  slow.priority = MessagePriority::kControl;
  std::vector<Future<int64_t>> backlog;
  for (int i = 0; i < 12; ++i) {
    backlog.push_back(tc.cluster.Ref<OvCounter>("h0").CallWith(
        slow, &OvCounter::Add, int64_t{1}));
  }
  tc.harness.RunFor(5 * kMicrosPerMilli);

  auto q = tc.cluster.Ref<OvCounter>("h0").Call(&OvCounter::Add, int64_t{1});
  CallOptions control;
  control.priority = MessagePriority::kControl;
  auto c = tc.cluster.Ref<OvCounter>("h0").CallWith(control, &OvCounter::Add,
                                                    int64_t{1});
  tc.harness.RunFor(5 * kMicrosPerSecond);

  ASSERT_TRUE(q.Ready());
  ASSERT_FALSE(q.Get().ok());
  EXPECT_TRUE(q.Get().status().IsOverloaded()) << q.Get().status().ToString();
  ASSERT_TRUE(c.Ready());
  EXPECT_TRUE(c.Get().ok()) << c.Get().status().ToString();
  EXPECT_GE(tc.Metric("overload.shed.query"), 1);
  for (auto& b : backlog) {
    ASSERT_TRUE(b.Ready());
    EXPECT_TRUE(b.Get().ok());  // Control backlog was never shed.
  }
}

// --- Migration ---------------------------------------------------------------

/// Deterministic live migration: state survives the deactivate ->
/// directory-move -> reactivate cycle and the actor's reminder keeps firing
/// at the new silo (reminders route by ActorId, not by placement).
TEST(OverloadTest, MigrationPreservesStateAndReminders) {
  RuntimeOptions options = BaseOptions(2);
  TestCluster tc(options);

  ActorId id{OvCounter::kTypeName, "m0"};
  auto warm = tc.cluster.Ref<OvCounter>("m0").Call(&OvCounter::Add,
                                                   int64_t{7});
  ASSERT_TRUE(RunUntilReady(tc.harness, warm, 5 * kMicrosPerSecond));
  ASSERT_TRUE(warm.Get().ok());
  auto rem = tc.cluster.Ref<OvCounter>("m0").Call(
      &OvCounter::StartReminder, int64_t{200 * kMicrosPerMilli});
  ASSERT_TRUE(RunUntilReady(tc.harness, rem, 5 * kMicrosPerSecond));
  ASSERT_TRUE(rem.Get().ok() && rem.Get().value().ok());

  auto host = tc.cluster.directory().Lookup(id);
  ASSERT_TRUE(host.has_value());
  SiloId to = host.value() == 0 ? 1 : 0;

  // Unknown actors and already-there targets are reported, not migrated.
  EXPECT_TRUE(tc.cluster
                  .MigrateActivation(ActorId{OvCounter::kTypeName, "nope"}, to)
                  .IsNotFound());
  EXPECT_TRUE(tc.cluster.MigrateActivation(id, host.value()).ok());
  EXPECT_EQ(tc.Metric("overload.migrations"), 0);

  Status st = tc.cluster.MigrateActivation(id, to);
  ASSERT_TRUE(st.ok()) << st.ToString();
  tc.harness.RunFor(kMicrosPerSecond);
  auto moved = tc.cluster.directory().Lookup(id);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved.value(), to);
  EXPECT_EQ(tc.Metric("overload.migrations"), 1);

  // State survived the move; an add lands on the new silo without touching
  // the old placement.
  auto v = tc.cluster.Ref<OvCounter>("m0").Call(&OvCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 5 * kMicrosPerSecond));
  EXPECT_EQ(v.Get().value(), 7);

  auto fires0 = tc.cluster.Ref<OvCounter>("m0").Call(
      &OvCounter::ReminderFires);
  ASSERT_TRUE(RunUntilReady(tc.harness, fires0, 5 * kMicrosPerSecond));
  tc.harness.RunFor(2 * kMicrosPerSecond);
  auto fires1 = tc.cluster.Ref<OvCounter>("m0").Call(
      &OvCounter::ReminderFires);
  ASSERT_TRUE(RunUntilReady(tc.harness, fires1, 5 * kMicrosPerSecond));
  EXPECT_GT(fires1.Get().value(), fires0.Get().value());
  EXPECT_EQ(tc.cluster.directory().Lookup(id).value(), to);

  // A dead silo is not a migration target.
  tc.cluster.KillSilo(to == 0 ? 1 : 0);
  EXPECT_FALSE(tc.cluster.MigrateActivation(id, to == 0 ? 1 : 0).ok());
}

/// Queued messages survive a migration: mail waiting in the mailbox when
/// the controller deactivates the actor is re-routed to the new silo and
/// every accepted add is applied exactly once.
TEST(OverloadTest, MigrationReroutesQueuedMailWithoutLoss) {
  RuntimeOptions options = BaseOptions(2);
  TestCluster tc(options);

  ActorId id{OvCounter::kTypeName, "q0"};
  auto warm = tc.cluster.Ref<OvCounter>("q0").Call(&OvCounter::Add,
                                                   int64_t{1});
  ASSERT_TRUE(RunUntilReady(tc.harness, warm, 5 * kMicrosPerSecond));
  auto host = tc.cluster.directory().Lookup(id);
  ASSERT_TRUE(host.has_value());
  SiloId to = host.value() == 0 ? 1 : 0;

  // Stack mail behind a slow turn, then migrate mid-backlog: the busy
  // activation defers the move to the end of its current turn.
  CallOptions slow;
  slow.cost_us = 100 * kMicrosPerMilli;
  std::vector<Future<int64_t>> acks;
  for (int i = 0; i < 4; ++i) {
    acks.push_back(tc.cluster.Ref<OvCounter>("q0").CallWith(
        slow, &OvCounter::Add, int64_t{1}));
  }
  tc.harness.RunFor(5 * kMicrosPerMilli);
  Status st = tc.cluster.MigrateActivation(id, to);
  ASSERT_TRUE(st.ok()) << st.ToString();
  tc.harness.RunFor(3 * kMicrosPerSecond);

  int64_t acked = 1;  // Warmup.
  for (auto& f : acks) {
    ASSERT_TRUE(f.Ready());
    if (f.Get().ok()) ++acked;
  }
  EXPECT_EQ(tc.cluster.directory().Lookup(id).value(), to);
  EXPECT_EQ(tc.Metric("overload.migrations"), 1);
  auto v = tc.cluster.Ref<OvCounter>("q0").Call(&OvCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 5 * kMicrosPerSecond));
  EXPECT_EQ(v.Get().value(), acked);  // Nothing lost, nothing doubled.
}

/// Regression: the idle sweeper and the migration controller both want to
/// deactivate the same activation. Every combination of timing must leave
/// the actor consistent — a migration request observing a sweep in
/// progress declines (Aborted/NotFound) instead of double-deactivating,
/// and no acked write is ever lost.
TEST(OverloadTest, IdleSweepMigrationRaceKeepsStateConsistent) {
  RuntimeOptions options = BaseOptions(2);
  options.lifecycle.enable_idle_deactivation = true;
  options.lifecycle.idle_timeout_us = 20 * kMicrosPerMilli;
  options.lifecycle.scan_interval_us = 10 * kMicrosPerMilli;
  TestCluster tc(options);
  tc.cluster.StartIdleScanner();

  ActorId id{OvCounter::kTypeName, "race0"};
  int64_t adds = 0;
  for (int i = 0; i < 20; ++i) {
    auto f = tc.cluster.Ref<OvCounter>("race0").Call(&OvCounter::Add,
                                                     int64_t{1});
    ASSERT_TRUE(RunUntilReady(tc.harness, f, 5 * kMicrosPerSecond));
    ASSERT_TRUE(f.Get().ok());
    ++adds;
    // Vary the phase against the 10ms sweep so the migration request hits
    // the activation in every lifecycle state over the 20 iterations.
    tc.harness.RunFor(static_cast<Micros>(i) * kMicrosPerMilli);
    auto host = tc.cluster.directory().Lookup(id);
    SiloId to = host.has_value() && host.value() == 0 ? 1 : 0;
    Status st = tc.cluster.MigrateActivation(id, to);
    EXPECT_TRUE(st.ok() || st.IsAborted() || st.IsNotFound())
        << st.ToString();
    tc.harness.RunFor(50 * kMicrosPerMilli);
  }
  auto v = tc.cluster.Ref<OvCounter>("race0").Call(&OvCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 5 * kMicrosPerSecond));
  EXPECT_EQ(v.Get().value(), adds);
}

}  // namespace
}  // namespace aodb
