// Tests of the discrete-event substrate: the scheduler's ordering and
// clock semantics, SimExecutor's multi-server queueing model, and the
// utilization accounting the figure benches rely on.

#include <gtest/gtest.h>

#include "sim/sim_executor.h"
#include "sim/sim_scheduler.h"

namespace aodb {
namespace {

TEST(SimSchedulerTest, EventsRunInTimeOrder) {
  SimScheduler sched;
  std::vector<int> order;
  sched.At(300, [&] { order.push_back(3); });
  sched.At(100, [&] { order.push_back(1); });
  sched.At(200, [&] { order.push_back(2); });
  sched.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), 1000);
}

TEST(SimSchedulerTest, EqualTimesRunInInsertionOrder) {
  SimScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.At(500, [&order, i] { order.push_back(i); });
  }
  sched.RunUntil(500);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimSchedulerTest, ClockAdvancesToEachEvent) {
  SimScheduler sched;
  std::vector<Micros> seen;
  sched.At(100, [&] { seen.push_back(sched.Now()); });
  sched.At(250, [&] { seen.push_back(sched.Now()); });
  sched.RunUntil(300);
  EXPECT_EQ(seen, (std::vector<Micros>{100, 250}));
}

TEST(SimSchedulerTest, EventsMayScheduleMoreEvents) {
  SimScheduler sched;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) sched.After(100, chain);
  };
  sched.After(100, chain);
  sched.RunUntil(10000);
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(sched.empty());
}

TEST(SimSchedulerTest, RunUntilStopsAtHorizon) {
  SimScheduler sched;
  int fired = 0;
  sched.At(100, [&] { ++fired; });
  sched.At(900, [&] { ++fired; });
  EXPECT_EQ(sched.RunUntil(500), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.Now(), 500);
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(1000);
  EXPECT_EQ(fired, 2);
}

TEST(SimSchedulerTest, PastTimesClampToNow) {
  SimScheduler sched;
  sched.RunUntil(1000);
  Micros ran_at = -1;
  sched.At(1, [&] { ran_at = sched.Now(); });
  sched.RunUntil(2000);
  EXPECT_EQ(ran_at, 1000) << "events cannot run in the past";
}

TEST(SimExecutorTest, SingleWorkerSerializesTasks) {
  SimScheduler sched;
  SimExecutor exec(&sched, 1);
  std::vector<Micros> completions;
  for (int i = 0; i < 3; ++i) {
    exec.Post(Task{[&] { completions.push_back(sched.Now()); }, 100});
  }
  sched.RunUntil(10000);
  // Tasks of 100us each on one worker: done at 100, 200, 300.
  EXPECT_EQ(completions, (std::vector<Micros>{100, 200, 300}));
}

TEST(SimExecutorTest, TwoWorkersRunInParallel) {
  SimScheduler sched;
  SimExecutor exec(&sched, 2);
  std::vector<Micros> completions;
  for (int i = 0; i < 4; ++i) {
    exec.Post(Task{[&] { completions.push_back(sched.Now()); }, 100});
  }
  sched.RunUntil(10000);
  // Pairs complete together: 100, 100, 200, 200.
  EXPECT_EQ(completions, (std::vector<Micros>{100, 100, 200, 200}));
}

TEST(SimExecutorTest, ZeroWorkerExecutorRunsImmediately) {
  SimScheduler sched;
  SimExecutor exec(&sched, 0);
  Micros ran_at = -1;
  exec.Post(Task{[&] { ran_at = sched.Now(); }, 999999});
  sched.RunUntil(100);
  EXPECT_EQ(ran_at, 0) << "client node has no CPU constraint";
}

TEST(SimExecutorTest, PostAfterDoesNotOccupyWorkers) {
  SimScheduler sched;
  SimExecutor exec(&sched, 1);
  // A long task plus a timer: the timer fires during the task.
  Micros task_done = 0, timer_fired = 0;
  exec.Post(Task{[&] { task_done = sched.Now(); }, 1000});
  exec.PostAfter(500, [&] { timer_fired = sched.Now(); });
  sched.RunUntil(10000);
  EXPECT_EQ(task_done, 1000);
  EXPECT_EQ(timer_fired, 500);
}

TEST(SimExecutorTest, UtilizationAccountsBusyTime) {
  SimScheduler sched;
  SimExecutor exec(&sched, 2);
  // 4 x 100us of work on 2 workers over a 1000us window: 20%.
  for (int i = 0; i < 4; ++i) {
    exec.Post(Task{[] {}, 100});
  }
  sched.RunUntil(1000);
  EXPECT_NEAR(exec.Utilization(), 0.2, 1e-9);
  EXPECT_EQ(exec.Stats().tasks_run, 4);
  EXPECT_EQ(exec.Stats().busy_us, 400);
}

/// Property sweep: an M/D/c-style system's completion count equals the
/// offered count and the makespan approximates total_work / workers across
/// worker counts.
class SimExecutorWorkers : public ::testing::TestWithParam<int> {};

TEST_P(SimExecutorWorkers, MakespanScalesWithWorkers) {
  int workers = GetParam();
  SimScheduler sched;
  SimExecutor exec(&sched, workers);
  constexpr int kTasks = 120;
  constexpr Micros kCost = 50;
  int done = 0;
  Micros last = 0;
  for (int i = 0; i < kTasks; ++i) {
    exec.Post(Task{[&] {
                     ++done;
                     last = sched.Now();
                   },
                   kCost});
  }
  sched.RunUntil(1000000);
  EXPECT_EQ(done, kTasks);
  Micros expected = kTasks * kCost / workers;
  EXPECT_EQ(last, expected);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SimExecutorWorkers,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace aodb
