// Edge cases of the cattle platform: delivery lifecycle state machine,
// trajectory window bounds, heterogeneous sensor streams, post-slaughter
// rejection, transfer of missing cuts, and product invariants.

#include <gtest/gtest.h>

#include "cattle/platform.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace cattle {
namespace {

class CattleEdgeTest : public ::testing::Test {
 protected:
  CattleEdgeTest() : harness_(MakeOptions()), platform_(&harness_.cluster()) {
    CattlePlatform::RegisterTypes(harness_.cluster());
  }
  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 2;
    return o;
  }
  template <typename T>
  T Must(Future<T> f) {
    EXPECT_TRUE(RunUntilReady(harness_, f, 60 * kMicrosPerSecond));
    auto r = f.Get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  /// Resolves a Status-returning call; delivery failures and application
  /// errors both surface as the returned Status.
  Status Outcome(Future<Status> f) {
    EXPECT_TRUE(RunUntilReady(harness_, f, 60 * kMicrosPerSecond));
    auto r = f.Get();
    return r.ok() ? r.value() : r.status();
  }
  SimHarness harness_;
  CattlePlatform platform_;
};

TEST_F(CattleEdgeTest, DeliveryLifecycleEnforcesOrder) {
  auto delivery = harness_.cluster().Ref<DeliveryActor>("d1");
  // Depart before Plan: rejected.
  EXPECT_FALSE(Outcome(delivery.Call(&DeliveryActor::Depart)).ok());
  ASSERT_TRUE(Outcome(delivery.Call(&DeliveryActor::Plan,
                                    std::string("dist-1"),
                                    std::vector<std::string>{},
                                    std::string("a"), std::string("b"),
                                    std::string("truck")))
                  .ok());
  // Arrive before Depart: rejected.
  EXPECT_FALSE(Outcome(delivery.Call(&DeliveryActor::Arrive,
                                     std::string("Retailer"),
                                     std::string("shop")))
                   .ok());
  ASSERT_TRUE(Outcome(delivery.Call(&DeliveryActor::Depart)).ok());
  EXPECT_TRUE(Must(delivery.Call(&DeliveryActor::InTransit)));
  // Double departure: rejected.
  EXPECT_FALSE(Outcome(delivery.Call(&DeliveryActor::Depart)).ok());
  ASSERT_TRUE(Outcome(delivery.Call(&DeliveryActor::Arrive,
                                    std::string("Retailer"),
                                    std::string("shop")))
                  .ok());
  EXPECT_FALSE(Must(delivery.Call(&DeliveryActor::InTransit)));
  // Replanning an existing delivery: rejected.
  EXPECT_FALSE(Outcome(delivery.Call(&DeliveryActor::Plan,
                                     std::string("dist-1"),
                                     std::vector<std::string>{},
                                     std::string("a"), std::string("b"),
                                     std::string("truck")))
                   .ok());
}

TEST_F(CattleEdgeTest, TrajectoryWindowIsBounded) {
  Must(platform_.RegisterCow("cow-w", "farm-1", "Angus"));
  auto cow = harness_.cluster().Ref<CowActor>("cow-w");
  constexpr int kReports = 5000;  // Above kTrajectoryCapacity (4096).
  for (int i = 0; i < kReports; ++i) {
    cow.Tell(&CowActor::ReportCollar,
             CollarReading{static_cast<Micros>(i) * 1000,
                           GeoPoint{55, 12}, 0.1, 38.5});
  }
  harness_.RunFor(60 * kMicrosPerSecond);
  auto traj = Must(cow.Call(&CowActor::Trajectory, Micros{0},
                            Micros{1} << 60));
  EXPECT_EQ(traj.size(), CowActor::kTrajectoryCapacity);
  // The oldest points were evicted: the first retained timestamp is
  // kReports - capacity.
  EXPECT_EQ(traj.front().ts,
            static_cast<Micros>(kReports - CowActor::kTrajectoryCapacity) *
                1000);
}

TEST_F(CattleEdgeTest, BolusStreamIsSeparateFromCollar) {
  Must(platform_.RegisterCow("cow-b", "farm-1", "Angus"));
  auto cow = harness_.cluster().Ref<CowActor>("cow-b");
  // Bolus samples at a different (slower) rate than the collar — the
  // paper's point about heterogeneous per-animal sensors.
  for (int i = 0; i < 4; ++i) {
    cow.Tell(&CowActor::ReportBolus,
             BolusReading{static_cast<Micros>(i) * kMicrosPerSecond,
                          39.0 + 0.5 * i, 6.4});
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  EXPECT_DOUBLE_EQ(Must(cow.Call(&CowActor::MeanRumenTemperature)),
                   (39.0 + 39.5 + 40.0 + 40.5) / 4);
  auto traj = Must(cow.Call(&CowActor::Trajectory, Micros{0},
                            Micros{1} << 60));
  EXPECT_TRUE(traj.empty()) << "bolus readings are not trajectory points";
}

TEST_F(CattleEdgeTest, SlaughteredCowRejectsTelemetryAndTransfer) {
  Must(platform_.RegisterCow("cow-s", "farm-1", "Angus"));
  Must(platform_.SlaughterAndCut("sh-1", "cow-s", "farm-1", 2));
  auto cow = harness_.cluster().Ref<CowActor>("cow-s");
  EXPECT_FALSE(Outcome(cow.Call(&CowActor::ReportCollar,
                                CollarReading{0, GeoPoint{55, 12}, 0, 38.5}))
                   .ok());
  EXPECT_FALSE(
      Outcome(cow.Call(&CowActor::ReportBolus, BolusReading{})).ok());
  // Ownership transfer of a slaughtered cow must abort.
  Status st = Outcome(platform_.TransferOwnershipTxn("cow-s", "farm-1",
                                                     "farm-2"));
  EXPECT_FALSE(st.ok());
  auto info = Must(cow.Call(&CowActor::Info));
  EXPECT_EQ(info.status, CowStatus::kSlaughtered);
  EXPECT_EQ(info.owner_farmer, "farm-1");
}

TEST_F(CattleEdgeTest, TransferOfUnknownCutsFails) {
  auto sh = harness_.cluster().Ref<SlaughterhouseActor>("sh-x");
  Status st = Outcome(sh.Call(&SlaughterhouseActor::TransferCutsTo,
                              std::string("dist-x"),
                              std::vector<std::string>{"ghost-cut"},
                              std::string("loc")));
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(CattleEdgeTest, ProductRequiresAtLeastOneCut) {
  auto shop = harness_.cluster().Ref<RetailerActor>("shop-x");
  auto f = shop.Call(&RetailerActor::CreateProduct,
                     std::vector<std::string>{});
  RunUntilReady(harness_, f, 30 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  EXPECT_FALSE(f.Get().ok());
}

TEST_F(CattleEdgeTest, ProductsComposeCutsFromDifferentCows) {
  Must(platform_.RegisterCow("cow-m1", "farm-1", "Angus"));
  Must(platform_.RegisterCow("cow-m2", "farm-1", "Hereford"));
  auto cuts1 = Must(platform_.SlaughterAndCut("sh-1", "cow-m1", "farm-1", 2));
  auto cuts2 = Must(platform_.SlaughterAndCut("sh-1", "cow-m2", "farm-1", 2));
  Must(platform_.ShipCuts("dist-1", "shop-m", {cuts1[0], cuts2[0]}, "a",
                          "b"));
  auto product = Must(harness_.cluster()
                          .Ref<RetailerActor>("shop-m")
                          .Call(&RetailerActor::CreateProduct,
                                std::vector<std::string>{cuts1[0],
                                                         cuts2[0]}));
  ProductTrace trace = Must(platform_.TraceProduct(product));
  ASSERT_EQ(trace.cuts.size(), 2u);
  std::set<std::string> cows{trace.cuts[0].cow_key, trace.cuts[1].cow_key};
  EXPECT_EQ(cows, (std::set<std::string>{"cow-m1", "cow-m2"}))
      << "a product can combine cuts of several animals (many-to-many)";
}

TEST_F(CattleEdgeTest, DistributorTracksItsDeliveries) {
  auto dist = harness_.cluster().Ref<DistributorActor>("dist-t");
  auto d1 = Must(dist.Call(&DistributorActor::PlanDelivery,
                           std::vector<std::string>{}, std::string("a"),
                           std::string("b"), std::string("v1")));
  auto d2 = Must(dist.Call(&DistributorActor::PlanDelivery,
                           std::vector<std::string>{}, std::string("c"),
                           std::string("d"), std::string("v2")));
  EXPECT_NE(d1, d2);
  auto deliveries = Must(dist.Call(&DistributorActor::Deliveries));
  EXPECT_EQ(deliveries.size(), 2u);
}

TEST_F(CattleEdgeTest, DoubleRegistrationIsRejected) {
  Must(platform_.RegisterCow("cow-d", "farm-1", "Angus"));
  auto again = platform_.RegisterCow("cow-d", "farm-1", "Angus");
  RunUntilReady(harness_, again, 30 * kMicrosPerSecond);
  ASSERT_TRUE(again.Ready());
  Status st = again.Get().ok() ? again.Get().value() : again.Get().status();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace cattle
}  // namespace aodb
