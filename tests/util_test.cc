// Unit and property tests of the common utilities: Status/Result, binary
// codec, CRC32C, histogram percentiles, Welford statistics, windowed
// series, deterministic RNG, network model, and geo-fencing.

#include <cmath>

#include <gtest/gtest.h>

#include "actor/network.h"
#include "cattle/geofence.h"
#include "common/codec.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace aodb {
namespace {

// --- Status / Result ----------------------------------------------------------

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status nf = Status::NotFound("key xyz");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: key xyz");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(ResultTest, ValueAndErrorChannels) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());
  Result<int> err(Status::Timeout("slow"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsTimeout());
  EXPECT_EQ(err.value_or(-1), -1);
  // Result<Status> treats Status as a value.
  Result<Status> carried(Status::Aborted("x"));
  EXPECT_TRUE(carried.ok());
  EXPECT_TRUE(carried.value().IsAborted());
  Result<Status> failed = Result<Status>::FromError(Status::Internal("y"));
  EXPECT_FALSE(failed.ok());
}

// --- Codec ---------------------------------------------------------------------

TEST(CodecTest, RoundTripAllTypes) {
  BufWriter w;
  w.PutU8(7);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutVarint(128);
  w.PutVarint(0xDEADBEEFCAFEULL);
  w.PutSigned(-1);
  w.PutSigned(123456789);
  w.PutDouble(3.14159);
  w.PutBool(true);
  w.PutString("hello \x00 world");
  BufReader r(w.data());
  uint8_t u8;
  uint64_t v;
  int64_t s;
  double d;
  bool b;
  std::string str;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  EXPECT_EQ(u8, 7);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 127u);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 128u);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 0xDEADBEEFCAFEULL);
  ASSERT_TRUE(r.GetSigned(&s).ok());
  EXPECT_EQ(s, -1);
  ASSERT_TRUE(r.GetSigned(&s).ok());
  EXPECT_EQ(s, 123456789);
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, 3.14159);
  ASSERT_TRUE(r.GetBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(r.GetString(&str).ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, TruncationIsCorruption) {
  BufWriter w;
  w.PutString("abcdef");
  std::string data = w.data().substr(0, 3);  // Cut mid-string.
  BufReader r(data);
  std::string out;
  EXPECT_TRUE(r.GetString(&out).IsCorruption());
  // Truncated varint likewise (continuation bit set, no next byte).
  std::string one_byte("\xff", 1);
  BufReader r2(one_byte);
  uint64_t v;
  EXPECT_TRUE(r2.GetVarint(&v).IsCorruption());
}

/// Property sweep: signed zigzag round-trips across magnitudes and signs.
class SignedRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedRoundTrip, RoundTrips) {
  BufWriter w;
  w.PutSigned(GetParam());
  BufReader r(w.data());
  int64_t out;
  ASSERT_TRUE(r.GetSigned(&out).ok());
  EXPECT_EQ(out, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, SignedRoundTrip,
                         ::testing::Values(0, 1, -1, 63, -64, 8191, -8192,
                                           1LL << 31, -(1LL << 31),
                                           (1LL << 62), -(1LL << 62)));

TEST(Crc32cTest, KnownVector) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aaU);
  // "123456789" -> 0xe3069283.
  EXPECT_EQ(Crc32c(std::string("123456789")), 0xe3069283U);
  EXPECT_NE(Crc32c(std::string("a")), Crc32c(std::string("b")));
}

// --- Histogram ------------------------------------------------------------------

TEST(HistogramTest, ExactBelowSubBucketRange) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 10);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  EXPECT_EQ(h.Percentile(50), 5);
  EXPECT_EQ(h.Percentile(100), 10);
}

/// Property sweep: percentile estimates stay within the bucketing scheme's
/// relative-error bound across magnitudes.
class HistogramAccuracy : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramAccuracy, BoundedRelativeError) {
  int64_t scale = GetParam();
  Histogram h;
  Rng rng(99);
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Uniform(0, 1) * scale);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0}) {
    int64_t exact = values[static_cast<size_t>(p / 100 * (values.size() - 1))];
    int64_t est = h.Percentile(p);
    double err = std::fabs(static_cast<double>(est - exact)) /
                 std::max<double>(1.0, static_cast<double>(exact));
    EXPECT_LT(err, 0.05) << "p" << p << " scale " << scale << " exact "
                         << exact << " est " << est;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramAccuracy,
                         ::testing::Values(100, 10000, 1000000, 100000000));

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextBelow(100000));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.Percentile(99), combined.Percentile(99));
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
}

TEST(HistogramTest, EmptyAndNegative) {
  Histogram h;
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_EQ(h.min(), 0);
  h.Record(-5);  // Clamped to zero.
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1);
}

// --- Welford / WindowedSeries ----------------------------------------------------

TEST(WelfordTest, MatchesDirectComputation) {
  Welford w;
  std::vector<double> xs = {1, 2, 3, 4, 5, 100, -7};
  double sum = 0;
  for (double x : xs) {
    w.Add(x);
    sum += x;
  }
  double mean = sum / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(w.mean(), mean);
  EXPECT_NEAR(w.Variance(), var, 1e-9);
  EXPECT_EQ(w.count(), static_cast<int64_t>(xs.size()));
  EXPECT_EQ(w.min(), -7);
  EXPECT_EQ(w.max(), 100);
}

TEST(WelfordTest, MergeIsEquivalentToSequential) {
  Rng rng(11);
  Welford a, b, all;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Normal(10, 3);
    (i < 200 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-6);
}

TEST(WindowedSeriesTest, SplitsByTimestampAndDropsEdges) {
  WindowedSeries series(kMicrosPerSecond);
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 10; ++i) {
      series.Add(w * kMicrosPerSecond + i * 1000, static_cast<double>(w));
    }
  }
  auto windows = series.Windows();
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_EQ(windows[2].agg.count(), 10);
  EXPECT_DOUBLE_EQ(windows[2].agg.mean(), 2.0);
  auto interior = series.InteriorWindows();
  ASSERT_EQ(interior.size(), 3u);
  EXPECT_DOUBLE_EQ(interior.front().agg.mean(), 1.0);
  EXPECT_DOUBLE_EQ(interior.back().agg.mean(), 3.0);
}

// --- Rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
  }
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, DistributionsAreSane) {
  Rng rng(7);
  Welford uni, expo, norm;
  for (int i = 0; i < 20000; ++i) {
    uni.Add(rng.Uniform(0, 10));
    expo.Add(rng.Exponential(5.0));
    norm.Add(rng.Normal(100, 15));
  }
  EXPECT_NEAR(uni.mean(), 5.0, 0.1);
  EXPECT_NEAR(expo.mean(), 5.0, 0.2);
  EXPECT_NEAR(norm.mean(), 100.0, 0.5);
  EXPECT_NEAR(norm.StdDev(), 15.0, 0.5);
}

// --- NetworkModel ------------------------------------------------------------------

TEST(NetworkModelTest, LocalIsFreeRemotePaysLatency) {
  NetworkOptions opts;
  opts.silo_latency_us = 500;
  opts.client_latency_us = 300;
  opts.jitter_us = 0;
  NetworkModel net(opts, 1);
  EXPECT_EQ(net.Delay(0, 0, 1000), 0);
  EXPECT_EQ(net.Delay(0, 1, 0), 500);
  EXPECT_EQ(net.Delay(kClientSiloId, 0, 0), 300);
  // Transfer time: 1 MB at 1000 B/us = 1000 us extra.
  EXPECT_EQ(net.Delay(0, 1, 1000000), 1500);
}

TEST(NetworkModelTest, FifoPerChannelNeverReorders) {
  NetworkOptions opts;
  opts.jitter_us = 400;
  NetworkModel net(opts, 7);
  Micros now = 0;
  Micros last_arrival = 0;
  for (int i = 0; i < 200; ++i) {
    now += 10;  // Sends every 10us; jitter alone would reorder them.
    Micros arrival = net.FifoArrival(0, 1, 100, now);
    EXPECT_GT(arrival, last_arrival) << "FIFO violated at message " << i;
    last_arrival = arrival;
  }
  // Independent channels are not serialized against each other.
  EXPECT_LT(net.FifoArrival(1, 0, 100, now) - now,
            opts.silo_latency_us + opts.jitter_us + 1);
}

// --- GeoFence ------------------------------------------------------------------------

TEST(GeoFenceTest, RectangleContainment) {
  cattle::GeoFence fence =
      cattle::GeoFence::Rectangle(55.0, 12.0, 55.1, 12.1);
  EXPECT_TRUE(fence.Contains(cattle::GeoPoint{55.05, 12.05}));
  EXPECT_FALSE(fence.Contains(cattle::GeoPoint{55.2, 12.05}));
  EXPECT_FALSE(fence.Contains(cattle::GeoPoint{55.05, 12.2}));
  EXPECT_FALSE(fence.Contains(cattle::GeoPoint{54.9, 11.9}));
}

TEST(GeoFenceTest, EmptyFenceContainsEverything) {
  cattle::GeoFence fence;
  EXPECT_TRUE(fence.Contains(cattle::GeoPoint{0, 0}));
  EXPECT_TRUE(fence.Contains(cattle::GeoPoint{90, 180}));
}

TEST(GeoFenceTest, ConcavePolygon) {
  // A "U"-shaped fence: the notch is outside.
  cattle::GeoFence fence;
  fence.vertices = {
      cattle::GeoPoint{0, 0}, cattle::GeoPoint{0, 10},
      cattle::GeoPoint{10, 10}, cattle::GeoPoint{10, 6},
      cattle::GeoPoint{2, 6},  cattle::GeoPoint{2, 4},
      cattle::GeoPoint{10, 4}, cattle::GeoPoint{10, 0},
  };
  EXPECT_TRUE(fence.Contains(cattle::GeoPoint{1, 5}));    // Base of the U.
  EXPECT_FALSE(fence.Contains(cattle::GeoPoint{5, 5}));   // Inside the notch.
  EXPECT_TRUE(fence.Contains(cattle::GeoPoint{5, 8}));    // Upper arm.
  EXPECT_TRUE(fence.Contains(cattle::GeoPoint{5, 2}));    // Lower arm.
}

/// Property sweep: points strictly inside / outside a convex polygon are
/// classified correctly at several scales.
class GeoFenceScale : public ::testing::TestWithParam<double> {};

TEST_P(GeoFenceScale, ScaledSquare) {
  double s = GetParam();
  cattle::GeoFence fence = cattle::GeoFence::Rectangle(-s, -s, s, s);
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    double lat = rng.Uniform(-0.99 * s, 0.99 * s);
    double lon = rng.Uniform(-0.99 * s, 0.99 * s);
    EXPECT_TRUE(fence.Contains(cattle::GeoPoint{lat, lon}));
    EXPECT_FALSE(fence.Contains(cattle::GeoPoint{lat + 2 * s, lon}));
    EXPECT_FALSE(fence.Contains(cattle::GeoPoint{lat, lon - 2.5 * s}));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, GeoFenceScale,
                         ::testing::Values(0.001, 0.1, 1.0, 45.0));

}  // namespace
}  // namespace aodb
