// Core virtual-actor runtime tests: activation on demand, turn-based
// execution, typed calls in real and simulated mode, placement, timers,
// reminders, and idle deactivation.

#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"

namespace aodb {
namespace {

/// A counter actor used across runtime tests.
class CounterActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "Counter";

  int64_t Add(int64_t delta) {
    value_ += delta;
    return value_;
  }
  int64_t Value() { return value_; }
  void Bump() { ++value_; }
  std::string Key() { return ctx().self().key; }
  int64_t SiloOf() { return ctx().silo(); }

 private:
  int64_t value_ = 0;
};

/// Echoes status/results to exercise the non-value return paths.
class EchoActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "Echo";

  Status Ok() { return Status::OK(); }
  Status Fail() { return Status::InvalidArgument("nope"); }
  std::string Concat(std::string a, std::string b) { return a + b; }
};

struct GhostActor : ActorBase {
  static constexpr char kTypeName[] = "Ghost";
  int Zero() { return 0; }
};

class TickActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "Tick";
  void Start() { ctx().SetTimer("t", 100 * kMicrosPerMilli); }
  void OnTimer(const std::string&) override { ++ticks_; }
  int Ticks() { return ticks_; }

 private:
  int ticks_ = 0;
};

class RemindedActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "Reminded";
  Status Arm(int64_t period_ms) {
    return ctx().RegisterReminder("r", period_ms * kMicrosPerMilli);
  }
  void ReceiveReminder(const std::string&) override { ++count_; }
  int Count() { return count_; }

 private:
  int count_ = 0;
};

/// Calls another actor asynchronously; exercises Future-returning methods.
class RelayActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "Relay";

  Future<int64_t> AddViaCounter(std::string counter_key, int64_t delta) {
    return ctx().Ref<CounterActor>(counter_key).Call(&CounterActor::Add,
                                                     delta);
  }
};

class RealClusterTest : public ::testing::Test {
 protected:
  RealClusterTest() : handle_(MakeOptions()) {
    handle_->RegisterActorType<CounterActor>();
    handle_->RegisterActorType<EchoActor>();
    handle_->RegisterActorType<RelayActor>();
  }

  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 2;
    o.workers_per_silo = 2;
    o.network.silo_latency_us = 100;
    o.network.client_latency_us = 100;
    o.network.jitter_us = 50;
    return o;
  }

  RealClusterHandle handle_;
};

TEST_F(RealClusterTest, CallReturnsValue) {
  auto counter = handle_->Ref<CounterActor>("c1");
  auto r = counter.Call(&CounterActor::Add, int64_t{5}).Get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), 5);
  r = counter.Call(&CounterActor::Add, int64_t{7}).Get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 12);
}

TEST_F(RealClusterTest, StateIsPerActorKey) {
  auto a = handle_->Ref<CounterActor>("a");
  auto b = handle_->Ref<CounterActor>("b");
  ASSERT_TRUE(a.Call(&CounterActor::Add, int64_t{10}).Get().ok());
  auto rb = b.Call(&CounterActor::Value).Get();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb.value(), 0) << "actors must not share state";
}

TEST_F(RealClusterTest, VoidMethodReturnsUnit) {
  auto c = handle_->Ref<CounterActor>("v");
  auto r = c.Call(&CounterActor::Bump).Get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(c.Call(&CounterActor::Value).Get().value(), 1);
}

TEST_F(RealClusterTest, StatusReturningMethods) {
  auto e = handle_->Ref<EchoActor>("e");
  auto ok = e.Call(&EchoActor::Ok).Get();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().ok());
  auto fail = e.Call(&EchoActor::Fail).Get();
  ASSERT_TRUE(fail.ok()) << "delivery succeeded; the Status is the value";
  EXPECT_EQ(fail.value().code(), StatusCode::kInvalidArgument);
}

TEST_F(RealClusterTest, MultiArgumentCall) {
  auto e = handle_->Ref<EchoActor>("e2");
  auto r = e.Call(&EchoActor::Concat, std::string("foo"), std::string("bar"))
               .Get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "foobar");
}

TEST_F(RealClusterTest, ActorKnowsItsIdentity) {
  auto c = handle_->Ref<CounterActor>("identity-key");
  EXPECT_EQ(c.Call(&CounterActor::Key).Get().value(), "identity-key");
}

TEST_F(RealClusterTest, FutureReturningMethodIsChained) {
  auto relay = handle_->Ref<RelayActor>("r");
  auto r =
      relay.Call(&RelayActor::AddViaCounter, std::string("rc"), int64_t{3})
          .Get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), 3);
}

TEST_F(RealClusterTest, UnregisteredTypeFailsTheCall) {
  auto ghost = handle_->Ref<GhostActor>("g");
  auto r = ghost.Call(&GhostActor::Zero).Get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RealClusterTest, TellEventuallyApplies) {
  auto c = handle_->Ref<CounterActor>("tell");
  for (int i = 0; i < 10; ++i) c.Tell(&CounterActor::Bump);
  // Tells are asynchronous; a subsequent Call is ordered behind them only
  // once delivered, so poll.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (c.Call(&CounterActor::Value).Get().value() == 10) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(c.Call(&CounterActor::Value).Get().value(), 10);
}

TEST_F(RealClusterTest, ManyActorsManyMessages) {
  constexpr int kActors = 50;
  constexpr int kMsgs = 20;
  std::vector<Future<int64_t>> futures;
  for (int a = 0; a < kActors; ++a) {
    auto ref = handle_->Ref<CounterActor>("m" + std::to_string(a));
    for (int m = 0; m < kMsgs; ++m) {
      futures.push_back(ref.Call(&CounterActor::Add, int64_t{1}));
    }
  }
  auto all = WhenAll(futures).Get();
  ASSERT_TRUE(all.ok());
  for (int a = 0; a < kActors; ++a) {
    auto ref = handle_->Ref<CounterActor>("m" + std::to_string(a));
    EXPECT_EQ(ref.Call(&CounterActor::Value).Get().value(), kMsgs);
  }
  EXPECT_EQ(handle_->TotalActivations(), static_cast<size_t>(kActors));
}

TEST_F(RealClusterTest, PlacementSpreadsActorsAcrossSilos) {
  std::set<int64_t> silos;
  for (int i = 0; i < 40; ++i) {
    auto ref = handle_->Ref<CounterActor>("p" + std::to_string(i));
    silos.insert(ref.Call(&CounterActor::SiloOf).Get().value());
  }
  EXPECT_EQ(silos.size(), 2u) << "random placement should use both silos";
}

// --- Simulation mode ---------------------------------------------------------

class SimClusterTest : public ::testing::Test {
 protected:
  SimClusterTest() : harness_(MakeOptions()) {
    harness_.cluster().RegisterActorType<CounterActor>();
    harness_.cluster().RegisterActorType<EchoActor>();
    harness_.cluster().RegisterActorType<RelayActor>();
  }

  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 2;
    o.workers_per_silo = 2;
    return o;
  }

  SimHarness harness_;
};

TEST_F(SimClusterTest, CallCompletesInVirtualTime) {
  auto c = harness_.cluster().Ref<CounterActor>("c");
  auto f = c.Call(&CounterActor::Add, int64_t{41});
  EXPECT_FALSE(f.Ready()) << "nothing runs until virtual time advances";
  harness_.RunFor(10 * kMicrosPerMilli);
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(f.Get().value(), 41);
}

TEST_F(SimClusterTest, VirtualTimeAdvancesPastNetworkAndCost) {
  auto c = harness_.cluster().Ref<CounterActor>("c");
  CallOptions opts;
  opts.cost_us = 1000;
  auto f = c.CallWith(opts, &CounterActor::Add, int64_t{1});
  harness_.RunFor(10 * kMicrosPerMilli);
  ASSERT_TRUE(f.Ready());
  // Client->silo latency + activation + 1ms processing + reply latency.
  EXPECT_GT(harness_.Now(), 1000);
}

TEST_F(SimClusterTest, DeterministicAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    RuntimeOptions o = MakeOptions();
    o.seed = seed;
    SimHarness h(o);
    h.cluster().RegisterActorType<CounterActor>();
    std::vector<int64_t> silos;
    for (int i = 0; i < 20; ++i) {
      auto ref = h.cluster().Ref<CounterActor>("d" + std::to_string(i));
      auto f = ref.Call(&CounterActor::SiloOf);
      h.RunFor(kMicrosPerSecond);
      silos.push_back(f.Get().value());
    }
    return silos;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8)) << "different seeds should differ";
}

TEST_F(SimClusterTest, SimExecutorModelsServiceTime) {
  // 10 sequential 1ms messages to one actor should take >= 10ms of virtual
  // time (turn-based execution serializes them on the actor).
  auto c = harness_.cluster().Ref<CounterActor>("s");
  CallOptions opts;
  opts.cost_us = 1000;
  std::vector<Future<int64_t>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(c.CallWith(opts, &CounterActor::Add, int64_t{1}));
  }
  harness_.RunFor(5 * kMicrosPerMilli);
  EXPECT_FALSE(futures.back().Ready())
      << "10ms of work cannot finish in 5ms of virtual time";
  harness_.RunFor(100 * kMicrosPerMilli);
  ASSERT_TRUE(futures.back().Ready());
  EXPECT_EQ(futures.back().Get().value(), 10);
}

TEST_F(SimClusterTest, TimerTicksDeliverMessages) {
  harness_.cluster().RegisterActorType<TickActor>();
  auto t = harness_.cluster().Ref<TickActor>("t");
  t.Tell(&TickActor::Start);
  harness_.RunFor(1050 * kMicrosPerMilli);
  auto f = t.Call(&TickActor::Ticks);
  harness_.RunFor(10 * kMicrosPerMilli);
  EXPECT_EQ(f.Get().value(), 10);
}

TEST_F(SimClusterTest, IdleActorsAreDeactivated) {
  RuntimeOptions o = MakeOptions();
  o.lifecycle.enable_idle_deactivation = true;
  o.lifecycle.idle_timeout_us = kMicrosPerSecond;
  o.lifecycle.scan_interval_us = 200 * kMicrosPerMilli;
  SimHarness h(o);
  h.cluster().RegisterActorType<CounterActor>();
  h.cluster().StartIdleScanner();
  auto c = h.cluster().Ref<CounterActor>("idle");
  c.Call(&CounterActor::Bump);
  h.RunFor(100 * kMicrosPerMilli);
  EXPECT_EQ(h.cluster().TotalActivations(), 1u);
  h.RunFor(3 * kMicrosPerSecond);
  EXPECT_EQ(h.cluster().TotalActivations(), 0u)
      << "idle activation should be collected";
  // Virtual actor: a new call transparently re-activates it (state was
  // volatile, so the counter restarts — persistence is a separate test).
  auto f = c.Call(&CounterActor::Value);
  h.RunFor(kMicrosPerSecond);
  EXPECT_EQ(f.Get().value(), 0);
  EXPECT_EQ(h.cluster().TotalActivations(), 1u);
}

TEST_F(SimClusterTest, RemindersFireAndSurviveDeactivation) {
  MemKvStore sys_kv;
  RuntimeOptions o = MakeOptions();
  SimHarness h(o, &sys_kv);
  h.cluster().RegisterActorType<RemindedActor>();
  auto a = h.cluster().Ref<RemindedActor>("rem");
  auto armed = a.Call(&RemindedActor::Arm, int64_t{200});
  h.RunFor(kMicrosPerSecond + 100 * kMicrosPerMilli);
  ASSERT_TRUE(armed.Get().value().ok());
  auto f = a.Call(&RemindedActor::Count);
  h.RunFor(50 * kMicrosPerMilli);
  EXPECT_GE(f.Get().value(), 4);
  // The reminder record is durable in the system store.
  auto listed = sys_kv.List("rem/");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().size(), 1u);
}

TEST_F(SimClusterTest, PreferLocalPlacementFollowsCaller) {
  harness_.cluster().SetTypePlacement(CounterActor::kTypeName,
                                      Placement::kPreferLocal);
  // Relay actors land randomly; the counters they create must be co-located
  // with their caller.
  harness_.cluster().SetTypePlacement(RelayActor::kTypeName,
                                      Placement::kRandom);
  for (int i = 0; i < 10; ++i) {
    auto relay = harness_.cluster().Ref<RelayActor>("rl" + std::to_string(i));
    auto f = relay.Call(&RelayActor::AddViaCounter,
                        std::string("ctr" + std::to_string(i)), int64_t{1});
    harness_.RunFor(kMicrosPerSecond);
    ASSERT_TRUE(f.Get().ok());
    auto relay_silo = harness_.cluster().directory().Lookup(
        ActorId{RelayActor::kTypeName, "rl" + std::to_string(i)});
    auto ctr_silo = harness_.cluster().directory().Lookup(
        ActorId{CounterActor::kTypeName, "ctr" + std::to_string(i)});
    ASSERT_TRUE(relay_silo.has_value());
    ASSERT_TRUE(ctr_silo.has_value());
    EXPECT_EQ(*relay_silo, *ctr_silo);
  }
}

TEST_F(SimClusterTest, HashPlacementIsDeterministic) {
  harness_.cluster().SetTypePlacement(CounterActor::kTypeName,
                                      Placement::kHash);
  auto c = harness_.cluster().Ref<CounterActor>("h1");
  auto f = c.Call(&CounterActor::SiloOf);
  harness_.RunFor(kMicrosPerSecond);
  SiloId expected = static_cast<SiloId>(
      ActorIdHash()(ActorId{CounterActor::kTypeName, "h1"}) % 2);
  EXPECT_EQ(f.Get().value(), expected);
}

}  // namespace
}  // namespace aodb
