// Stress tests of the runtime on real thread pools: multi-threaded
// clients, turn-based isolation under contention, persistence with real
// concurrency, and clean shutdown with work in flight. These are the tests
// that would catch data races the single-threaded simulator cannot.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

/// Counter whose Add is deliberately non-atomic: correct results are only
/// possible if the runtime really serializes turns per activation.
class RacyCounter : public ActorBase {
 public:
  static constexpr char kTypeName[] = "stress.Counter";
  int64_t Add() {
    int64_t v = value_;        // Read...
    std::this_thread::yield();  // ...invite interleaving...
    value_ = v + 1;            // ...write.
    return value_;
  }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

RuntimeOptions StressOptions() {
  RuntimeOptions o;
  o.num_silos = 2;
  o.workers_per_silo = 2;
  o.network.client_latency_us = 10;
  o.network.silo_latency_us = 10;
  o.network.jitter_us = 5;
  return o;
}

TEST(RealModeStressTest, TurnBasedExecutionSerializesRacyUpdates) {
  RealClusterHandle handle(StressOptions());
  handle->RegisterActorType<RacyCounter>();
  constexpr int kClients = 4;
  constexpr int kPerClient = 250;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&handle] {
      auto ref = handle->Ref<RacyCounter>("shared");
      for (int i = 0; i < kPerClient; ++i) {
        ref.Tell(&RacyCounter::Add);
      }
    });
  }
  for (auto& t : clients) t.join();
  auto ref = handle->Ref<RacyCounter>("shared");
  // Wait until all tells drained.
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (ref.Call(&RacyCounter::Value).Get().value() ==
        kClients * kPerClient) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ref.Call(&RacyCounter::Value).Get().value(),
            kClients * kPerClient)
      << "lost updates imply two turns ran concurrently";
}

TEST(RealModeStressTest, ManyActorsManyThreadsNoLostCalls) {
  RealClusterHandle handle(StressOptions());
  handle->RegisterActorType<RacyCounter>();
  constexpr int kActors = 32;
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 200;
  std::atomic<int64_t> ok_calls{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&handle, &ok_calls, t] {
      Rng rng(t + 1);
      std::vector<Future<int64_t>> futures;
      for (int i = 0; i < kCallsPerThread; ++i) {
        int a = static_cast<int>(rng.NextBelow(kActors));
        futures.push_back(handle->Ref<RacyCounter>("a" + std::to_string(a))
                              .Call(&RacyCounter::Add));
      }
      for (auto& f : futures) {
        if (f.Get().ok()) ok_calls.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_calls.load(), kThreads * kCallsPerThread);
  // Total across actors must equal the number of calls.
  int64_t total = 0;
  for (int a = 0; a < kActors; ++a) {
    total += handle->Ref<RacyCounter>("a" + std::to_string(a))
                 .Call(&RacyCounter::Value)
                 .Get()
                 .value();
  }
  EXPECT_EQ(total, kThreads * kCallsPerThread);
}

struct StressState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

class DurableStressCounter : public PersistentActor<StressState> {
 public:
  static constexpr char kTypeName[] = "stress.Durable";
  DurableStressCounter()
      : PersistentActor<StressState>(PersistenceOptions{
            PersistPolicy::kWindowed, 10, kMicrosPerSecond, "default"}) {}
  int64_t Add() {
    ++state().value;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
};

TEST(RealModeStressTest, WindowedPersistenceUnderRealConcurrency) {
  MemKvStore backing;
  auto storage = std::make_shared<KvStateStorage>(&backing);
  RealClusterHandle handle(StressOptions());
  handle->RegisterStateStorage("default", storage);
  handle->RegisterActorType<DurableStressCounter>();
  auto ref = handle->Ref<DurableStressCounter>("d");
  std::vector<Future<int64_t>> futures;
  for (int i = 0; i < 500; ++i) futures.push_back(ref.Call(&DurableStressCounter::Add));
  for (auto& f : futures) ASSERT_TRUE(f.Get().ok());
  EXPECT_EQ(ref.Call(&DurableStressCounter::Value).Get().value(), 500);
  // The windowed policy must have produced storage snapshots while running.
  EXPECT_GE(backing.Count().value(), 1);
  // Final flush on shutdown keeps the latest value durable.
  auto flushed = handle->DeactivateAll();
  ASSERT_TRUE(flushed.GetFor(5 * kMicrosPerSecond).ok());
  auto stored = backing.Get("grain/stress.Durable/d");
  ASSERT_TRUE(stored.ok());
  BufReader r(stored.value());
  StressState st;
  ASSERT_TRUE(st.Decode(&r).ok());
  EXPECT_EQ(st.value, 500);
}

TEST(RealModeStressTest, ShutdownWithWorkInFlightDoesNotCrash) {
  for (int round = 0; round < 5; ++round) {
    RealClusterHandle handle(StressOptions());
    handle->RegisterActorType<RacyCounter>();
    for (int a = 0; a < 8; ++a) {
      auto ref = handle->Ref<RacyCounter>("x" + std::to_string(a));
      for (int i = 0; i < 100; ++i) ref.Tell(&RacyCounter::Add);
    }
    // Destroy the handle immediately: pending work must not crash or hang.
    handle.Shutdown();
  }
  SUCCEED();
}

TEST(RealModeStressTest, CrossSiloCallChainsUnderLoad) {
  // Relay -> Counter chains spanning silos, driven from several threads.
  class Relay : public ActorBase {
   public:
    Future<int64_t> Through(std::string target) {
      return ctx().Ref<RacyCounter>(target).Call(&RacyCounter::Add);
    }
  };
  RealClusterHandle handle(StressOptions());
  handle->RegisterActorType<RacyCounter>();
  handle->RegisterActorType(
      "stress.Relay", [](const ActorId&) { return std::make_unique<Relay>(); });
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&handle, &completed, t] {
      for (int i = 0; i < 100; ++i) {
        auto relay = handle->RefAs<Relay>("stress.Relay",
                                          "r" + std::to_string(i % 4));
        auto r = relay.Call(&Relay::Through,
                            std::string("end" + std::to_string(t)));
        if (r.Get().ok()) completed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 300);
  int64_t total = 0;
  for (int t = 0; t < 3; ++t) {
    total += handle->Ref<RacyCounter>("end" + std::to_string(t))
                 .Call(&RacyCounter::Value)
                 .Get()
                 .value();
  }
  EXPECT_EQ(total, 300);
}

}  // namespace
}  // namespace aodb
