// Observability-plane tests: the black-box flight recorder (ring semantics,
// lifecycle events from a simulated cluster, retry-exhaustion attribution),
// the metrics time-series sampler, and the postmortem bundle — plus the
// property tests proving every JSON dump (metrics, traces, flight events,
// bundles) stays parseable when metric/actor names contain quotes,
// backslashes, and control characters.

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/flight_recorder.h"
#include "actor/retry_async.h"
#include "common/json.h"
#include "common/retry.h"
#include "common/telemetry.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

class ObsCounter : public ActorBase {
 public:
  static constexpr char kTypeName[] = "test.ObsCounter";
  int64_t Add(int64_t d) {
    value_ += d;
    return value_;
  }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

// --- FlightRing / FlightRecorder mechanics -----------------------------------

TEST(FlightRing, KeepsNewestAcrossWrap) {
  FlightRing ring(8);
  for (int i = 0; i < 20; ++i) {
    FlightRecord rec;
    rec.at_us = i;
    rec.seq = static_cast<uint64_t>(i);
    EXPECT_TRUE(ring.Push(rec));
  }
  std::vector<FlightRecord> out;
  ring.Collect(&out);
  ASSERT_EQ(out.size(), 8u);
  for (const FlightRecord& r : out) EXPECT_GE(r.at_us, 12);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder rec(2, /*enabled=*/false, 64, nullptr);
  EXPECT_FALSE(rec.enabled());
  rec.Record(FlightEventType::kActivate, 0, "t/a", 1, 0, 10);
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.DumpJson(), "{\"flight_events\":[]}");
}

TEST(FlightRecorder, MergesRingsInTimeOrderAndTruncatesNames) {
  FlightRecorder rec(2, /*enabled=*/true, 64, nullptr);
  const std::string long_name(100, 'x');
  rec.Record(FlightEventType::kActivate, 0, long_name, 0, 0, 50);
  rec.Record(FlightEventType::kDeactivate, 1, "t/k", 0, 0, 20);
  rec.Record(FlightEventType::kSlowTurn, kClientSiloId, "t/k", 0, 0, 50);
  std::vector<FlightRecord> events = rec.Collect();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by (at_us, seq): the t=20 event first, then the two t=50 events
  // in recording order (the global seq counter breaks the tie).
  EXPECT_EQ(events[0].type, FlightEventType::kDeactivate);
  EXPECT_EQ(events[1].type, FlightEventType::kActivate);
  EXPECT_EQ(events[2].type, FlightEventType::kSlowTurn);
  EXPECT_EQ(std::strlen(events[1].actor), FlightRecord::kActorBytes - 1);
}

// --- Lifecycle events from a live (simulated) cluster ------------------------

TEST(FlightRecorder, SimClusterRecordsActivateAndDeactivate) {
  RuntimeOptions options;
  options.num_silos = 2;
  options.workers_per_silo = 2;
  options.lifecycle.enable_idle_deactivation = true;
  options.lifecycle.idle_timeout_us = 20 * kMicrosPerMilli;
  options.lifecycle.scan_interval_us = 10 * kMicrosPerMilli;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();
  cluster.RegisterActorType<ObsCounter>();
  cluster.StartIdleScanner();

  auto ref = cluster.Ref<ObsCounter>("a");
  auto f = ref.Call(&ObsCounter::Add, int64_t{1});
  ASSERT_TRUE(RunUntilReady(harness, f, kMicrosPerSecond));
  harness.RunFor(200 * kMicrosPerMilli);  // Let the idle sweeper reap it.

  bool saw_activate = false;
  bool saw_deactivate = false;
  for (const FlightRecord& e : cluster.flight_recorder().Collect()) {
    if (std::string(e.actor) != "test.ObsCounter/a") continue;
    EXPECT_GE(e.silo, 0);
    if (e.type == FlightEventType::kActivate) saw_activate = true;
    if (e.type == FlightEventType::kDeactivate) saw_deactivate = true;
  }
  EXPECT_TRUE(saw_activate);
  EXPECT_TRUE(saw_deactivate);
  cluster.Stop();
}

TEST(FlightRecorder, RetryExhaustionAttributedToScope) {
  RuntimeOptions options;
  options.num_silos = 1;
  SimHarness harness(options);
  FlightRecorder& rec = harness.cluster().flight_recorder();

  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_us = kMicrosPerMilli;
  Future<Status> f;
  {
    // Simulates a loop constructed inside an actor turn on silo 0.
    ScopedFlightScope scope(&rec, 0);
    f = RetryAsync<Status>(harness.client_executor(), policy, /*seed=*/7,
                           [] {
                             Promise<Status> p;
                             p.SetValue(Status::Unavailable("nope"));
                             return p.GetFuture();
                           });
  }
  ASSERT_TRUE(RunUntilReady(harness, f, kMicrosPerSecond));

  bool saw = false;
  for (const FlightRecord& e : rec.Collect()) {
    if (e.type != FlightEventType::kRetryExhausted) continue;
    saw = true;
    EXPECT_EQ(e.silo, 0);
    EXPECT_GE(e.detail, 1);  // Attempts consumed before giving up.
  }
  EXPECT_TRUE(saw);
  harness.cluster().Stop();
}

// --- Metrics timeline --------------------------------------------------------

TEST(MetricsTimeline, RecordsDeltasAndBoundsCapacity) {
  MetricsTimeline tl(2);
  MetricsSnapshot s1;
  s1.counters["c"] = 5;
  tl.Record(10, s1);
  MetricsSnapshot s2;
  s2.counters["c"] = 8;
  tl.Record(20, s2);
  EXPECT_EQ(tl.size(), 2u);

  std::string json = tl.ToJson();
  EXPECT_TRUE(ValidateJson(json));
  EXPECT_NE(json.find("\"t_us\":10"), std::string::npos);
  EXPECT_NE(json.find("\"c\":5"), std::string::npos);  // First: delta from 0.
  EXPECT_NE(json.find("\"c\":3"), std::string::npos);  // Second: 8 - 5.

  MetricsSnapshot s3;
  s3.counters["c"] = 9;
  tl.Record(30, s3);
  EXPECT_EQ(tl.size(), 2u);  // Oldest entry fell off.
  EXPECT_EQ(tl.ToJson().find("\"t_us\":10"), std::string::npos);

  tl.Clear();
  EXPECT_EQ(tl.size(), 0u);
  EXPECT_EQ(tl.ToJson(), "[]");
}

TEST(MetricsTimeline, BackgroundSamplerRecordsOnCadence) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.observability.metrics_sample_interval_us = 10 * kMicrosPerMilli;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();
  cluster.StartMetricsSampler();
  harness.RunFor(105 * kMicrosPerMilli);
  EXPECT_GE(cluster.metrics_timeline().size(), 5u);
  EXPECT_TRUE(ValidateJson(cluster.metrics_timeline().ToJson()));
  cluster.Stop();
}

// --- JSON validity under hostile names (the property tests) ------------------

TEST(ObservabilityJson, HostileNamesSurviveEveryDump) {
  const std::string evil = "ev\"il\\na\nme\twith\x01ctrl";
  RuntimeOptions options;
  options.num_silos = 1;
  options.trace.sample_every = 1;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();

  cluster.metrics().GetCounter(evil)->Add(3);
  cluster.metrics().GetGauge(evil + ".g")->Set(4);
  cluster.metrics().GetHistogram(evil + ".h")->Record(5);

  SpanRecord span;
  span.trace_id = 1;
  span.span_id = 1;
  span.name = evil;
  span.actor = evil;
  span.kind = "turn";
  span.silo = 0;
  span.start_us = 1;
  span.end_us = 2;
  cluster.tracer().Record(span);

  cluster.flight_recorder().Record(FlightEventType::kSlowTurn, 0, evil, 1, 2,
                                   3);
  cluster.metrics_timeline().Record(10, cluster.SnapshotMetrics());

  EXPECT_TRUE(ValidateJson(cluster.DumpMetricsJson()));
  EXPECT_TRUE(ValidateJson(cluster.DumpTraceJson()));
  EXPECT_TRUE(ValidateJson(cluster.DumpFlightJson()));
  std::string bundle =
      cluster.BuildPostmortemJson("reason \"quoted\" \\ and \x02 ctrl");
  EXPECT_TRUE(ValidateJson(bundle));

  // Round-trip: the reader decodes the escaped actor name back exactly.
  const std::string flight_json = cluster.DumpFlightJson();
  JsonReader r(flight_json);
  bool found = false;
  bool ok = ReadObject(&r, [&](const std::string& key) {
    if (key != "flight_events") return r.SkipValue();
    return ReadArray(&r, [&] {
      return ReadObject(&r, [&](const std::string& k) {
        if (k == "actor") {
          std::string a;
          if (!r.ReadString(&a)) return false;
          if (a == evil) found = true;
          return true;
        }
        return r.SkipValue();
      });
    });
  });
  EXPECT_TRUE(ok);
  EXPECT_TRUE(found);
  cluster.Stop();
}

TEST(ObservabilityJson, ReaderDecodesStandardEscapes) {
  const std::string text = "\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"";
  JsonReader r(text);
  std::string s;
  ASSERT_TRUE(r.ReadString(&s));
  EXPECT_EQ(s, "a\"b\\c\n\tA\xc3\xa9");
  EXPECT_TRUE(r.AtEnd());

  EXPECT_TRUE(
      ValidateJson(" {\"a\":[1,2.5,true,false,null,\"x\\u0007\"]} "));
  EXPECT_FALSE(ValidateJson("{\"a\":1,}"));
  EXPECT_FALSE(ValidateJson("{\"a\":1} trailing"));
  EXPECT_FALSE(ValidateJson("{\"a\":\"unterminated}"));
  EXPECT_FALSE(ValidateJson("{\"a\":\"bad \\q escape\"}"));
}

// --- Postmortem bundles ------------------------------------------------------

TEST(Postmortem, BundleContainsLifecycleAndSections) {
  RuntimeOptions options;
  options.num_silos = 2;
  options.workers_per_silo = 2;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();
  cluster.RegisterActorType<ObsCounter>();

  auto f = cluster.Ref<ObsCounter>("pm").Call(&ObsCounter::Add, int64_t{1});
  ASSERT_TRUE(RunUntilReady(harness, f, kMicrosPerSecond));

  std::string bundle = cluster.BuildPostmortemJson("unit-test reason");
  EXPECT_TRUE(ValidateJson(bundle));
  EXPECT_NE(bundle.find("\"schema\":\"aodb.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"reason\":\"unit-test reason\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"type\":\"activate\""), std::string::npos);
  EXPECT_NE(bundle.find("test.ObsCounter/pm"), std::string::npos);
  for (const char* section :
       {"\"membership\"", "\"hot_actors\"", "\"flight_events\"",
        "\"metrics_timeline\"", "\"metrics\"", "\"traces\""}) {
    EXPECT_NE(bundle.find(section), std::string::npos) << section;
  }
  cluster.Stop();
}

TEST(Postmortem, DumpWritesParseableFileAndFailsOnBadPath) {
  RuntimeOptions options;
  options.num_silos = 1;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();

  const std::string path =
      ::testing::TempDir() + "/aodb_postmortem_test.json";
  ASSERT_TRUE(cluster.DumpPostmortem(path, "unit test").ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(ValidateJson(buf.str()));

  EXPECT_FALSE(
      cluster.DumpPostmortem("/nonexistent-dir-xyz/p.json", "r").ok());
  cluster.Stop();
}

TEST(Postmortem, StopWithLeakedPromiseWritesBundle) {
  const std::string path =
      ::testing::TempDir() + "/aodb_postmortem_leak.json";
  std::remove(path.c_str());
  {
    RuntimeOptions options;
    options.num_silos = 1;
    options.observability.postmortem_path = path;
    SimHarness harness(options);
    {
      // A promise with a continuation attached that is destroyed without
      // ever completing — invariant 4's definition of a leak.
      Promise<int> p;
      p.GetFuture().OnReady([](Result<int>&&) {});
    }
    harness.cluster().Stop();
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "Stop() did not write the postmortem bundle";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(ValidateJson(buf.str()));
  EXPECT_NE(buf.str().find("leaked promise"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aodb
