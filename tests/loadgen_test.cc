// Tests of the benchmarking tool itself: the synthetic signal generator,
// the closed-loop wave driver (per-sensor skip behaviour at saturation),
// the 98/1/1 request mix, and windowed throughput accounting.

#include <gtest/gtest.h>

#include "loadgen/shm_loadgen.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

TEST(SignalGeneratorTest, DeterministicPerSeed) {
  SignalGenerator a(42), b(42), c(43);
  for (int i = 0; i < 50; ++i) {
    Micros t = i * 100000;
    EXPECT_DOUBLE_EQ(a.At(t), b.At(t));
  }
  // Different seeds produce different signals (with overwhelming
  // probability at any single point).
  EXPECT_NE(a.At(123456), c.At(123456));
}

TEST(SignalGeneratorTest, PacketTimestampsAreEvenlySpaced) {
  SignalGenerator gen(7);
  auto packet = gen.Packet(10 * kMicrosPerSecond, 20, 10.0);
  ASSERT_EQ(packet.size(), 20u);
  EXPECT_EQ(packet.back().ts, 10 * kMicrosPerSecond);
  for (size_t i = 1; i < packet.size(); ++i) {
    EXPECT_EQ(packet[i].ts - packet[i - 1].ts, 100 * kMicrosPerMilli)
        << "10 Hz sampling";
  }
}

TEST(SignalGeneratorTest, ValuesStayInPlausibleRange) {
  SignalGenerator gen(11);
  for (int i = 0; i < 1000; ++i) {
    double v = gen.At(i * 50000);
    EXPECT_GT(v, -10.0);
    EXPECT_LT(v, 10.0);
  }
}

class LoadGenTest : public ::testing::Test {
 protected:
  LoadGenTest() : harness_(MakeOptions()), platform_(&harness_.cluster()) {
    shm::ShmPlatform::RegisterTypes(harness_.cluster());
    shm::ShmPlatform::ApplyPaperPlacement(harness_.cluster());
  }

  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 1;
    o.workers_per_silo = 2;
    return o;
  }

  shm::ShmTopology Topology(int sensors) {
    shm::ShmTopology t;
    t.sensors = sensors;
    t.sensors_per_org = 100;
    return t;
  }

  void Setup(const shm::ShmTopology& t) {
    auto f = platform_.Setup(t);
    harness_.RunFor(120 * kMicrosPerSecond);
    ASSERT_TRUE(f.Ready());
    ASSERT_TRUE(f.Get().value().ok());
  }

  SimHarness harness_;
  shm::ShmPlatform platform_;
};

TEST_F(LoadGenTest, OffersOneRequestPerSensorPerSecond) {
  auto t = Topology(50);
  Setup(t);
  LoadGenOptions lg;
  lg.duration_us = 20 * kMicrosPerSecond;
  ShmLoadGen gen(&platform_, t, harness_.client_executor(), lg);
  gen.Start();
  harness_.RunUntil(gen.end_time() + 10 * kMicrosPerSecond);
  ASSERT_TRUE(gen.Done());
  const LoadGenReport& r = gen.Finish();
  // 50 sensors x 20 waves, all under light load.
  EXPECT_EQ(r.inserts_sent, 50 * 20);
  EXPECT_EQ(r.inserts_done, r.inserts_sent);
  EXPECT_EQ(r.ticks_skipped, 0);
  EXPECT_EQ(r.errors, 0);
  EXPECT_NEAR(r.achieved_insert_rps, 50.0, 1.0);
}

TEST_F(LoadGenTest, ClosedLoopSkipsWhenSaturated) {
  // 3000 sensors on a 2-vCPU silo (~1770 req/s capacity): sensors must
  // skip ticks while their previous call runs, and achieved < offered.
  auto t = Topology(3000);
  Setup(t);
  LoadGenOptions lg;
  lg.duration_us = 15 * kMicrosPerSecond;
  ShmLoadGen gen(&platform_, t, harness_.client_executor(), lg);
  gen.Start();
  harness_.RunUntil(gen.end_time() + 60 * kMicrosPerSecond);
  const LoadGenReport& r = gen.Finish();
  EXPECT_GT(r.ticks_skipped, 0) << "saturation must throttle the closed loop";
  EXPECT_LT(r.achieved_insert_rps, 2200.0);
  EXPECT_GT(r.achieved_insert_rps, 1200.0);
  EXPECT_EQ(r.errors, 0);
}

TEST_F(LoadGenTest, UserQueriesFollowTheOnePerOrgRule) {
  auto t = Topology(200);  // Two organizations.
  Setup(t);
  LoadGenOptions lg;
  lg.duration_us = 20 * kMicrosPerSecond;
  lg.user_queries = true;
  ShmLoadGen gen(&platform_, t, harness_.client_executor(), lg);
  gen.Start();
  harness_.RunUntil(gen.end_time() + 20 * kMicrosPerSecond);
  const LoadGenReport& r = gen.Finish();
  // At most one live and one raw query per org per second; under light
  // load all fire: ~2 orgs x 20 waves each.
  EXPECT_GT(r.live_done, 2 * 15);
  EXPECT_LE(r.live_done, 2 * 21);
  EXPECT_GT(r.raw_done, 2 * 15);
  EXPECT_LE(r.raw_done, 2 * 21);
  // Mix sanity: inserts dominate at roughly 98%.
  double total = static_cast<double>(r.inserts_done + r.live_done + r.raw_done);
  EXPECT_GT(static_cast<double>(r.inserts_done) / total, 0.95);
  EXPECT_EQ(r.errors, 0);
}

TEST_F(LoadGenTest, LatencyHistogramsArePopulated) {
  auto t = Topology(100);
  Setup(t);
  LoadGenOptions lg;
  lg.duration_us = 10 * kMicrosPerSecond;
  lg.user_queries = true;
  ShmLoadGen gen(&platform_, t, harness_.client_executor(), lg);
  gen.Start();
  harness_.RunUntil(gen.end_time() + 20 * kMicrosPerSecond);
  const LoadGenReport& r = gen.Finish();
  EXPECT_GT(r.insert_latency_us.count(), 0);
  EXPECT_GT(r.live_latency_us.count(), 0);
  EXPECT_GT(r.raw_latency_us.count(), 0);
  // Latencies include at least one network round trip.
  EXPECT_GT(r.insert_latency_us.min(), 0);
  EXPECT_GE(r.insert_latency_us.Percentile(99),
            r.insert_latency_us.Percentile(50));
}

TEST_F(LoadGenTest, DeterministicAcrossRuns) {
  auto run = [this]() {
    auto t = Topology(100);
    // Fresh harness per run for full determinism.
    SimHarness harness(MakeOptions());
    shm::ShmPlatform::RegisterTypes(harness.cluster());
    shm::ShmPlatform::ApplyPaperPlacement(harness.cluster());
    shm::ShmPlatform platform(&harness.cluster());
    auto f = platform.Setup(t);
    harness.RunFor(120 * kMicrosPerSecond);
    LoadGenOptions lg;
    lg.duration_us = 10 * kMicrosPerSecond;
    ShmLoadGen gen(&platform, t, harness.client_executor(), lg);
    gen.Start();
    harness.RunUntil(gen.end_time() + 20 * kMicrosPerSecond);
    LoadGenReport r = gen.Finish();
    return std::make_tuple(r.inserts_done,
                           r.insert_latency_us.Percentile(99),
                           r.insert_latency_us.max());
  };
  EXPECT_EQ(run(), run()) << "virtual-time runs must be exactly repeatable";
}

}  // namespace
}  // namespace aodb
