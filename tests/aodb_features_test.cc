// Tests of the AODB database features layered over the actor runtime:
// type registry, secondary indexes, multi-actor queries, 2PC transactions
// (including conflict and contention behaviour), and saga workflows.

#include <gtest/gtest.h>

#include "aodb/index.h"
#include "aodb/query.h"
#include "aodb/registry.h"
#include "aodb/txn.h"
#include "aodb/workflow.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

/// An account actor with a transactional balance, used to test transfers.
class AccountActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "test.Account";

  Status Deposit(int64_t amount) {
    balance_ += amount;
    return Status::OK();
  }
  int64_t Balance() { return balance_; }

 protected:
  // Ops: "credit:<n>" and "debit:<n>" with overdraft protection.
  Status ValidateOp(const std::string& op, const std::string& arg) override {
    int64_t amount = std::atoll(arg.c_str());
    if (op == "credit") return Status::OK();
    if (op == "debit") {
      // Include already-staged debits so a transaction cannot overdraw by
      // splitting into several ops.
      if (balance_ - staged_debits_ < amount) {
        return Status::FailedPrecondition("insufficient funds");
      }
      staged_debits_ += amount;
      return Status::OK();
    }
    return Status::InvalidArgument("unknown op " + op);
  }
  void ApplyOp(const std::string& op, const std::string& arg) override {
    int64_t amount = std::atoll(arg.c_str());
    if (op == "credit") balance_ += amount;
    if (op == "debit") {
      balance_ -= amount;
      staged_debits_ -= amount;
    }
  }
  void UnstageOp(const std::string& op, const std::string& arg) override {
    if (op == "debit") staged_debits_ -= std::atoll(arg.c_str());
  }
 private:
  int64_t balance_ = 0;
  int64_t staged_debits_ = 0;
};

/// A tagged item registered in the type registry and a tag index.
class ItemActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "test.Item";

  Status Init(std::string tag, int64_t value) {
    tag_ = std::move(tag);
    value_ = value;
    TypeRegistry::Add(ctx(), kTypeName, ctx().self().key);
    ActorIndex("item_by_tag").Insert(ctx(), tag_, ctx().self().key);
    return Status::OK();
  }
  Status Retag(std::string new_tag) {
    ActorIndex("item_by_tag").Update(ctx(), tag_, new_tag,
                                     ctx().self().key);
    tag_ = std::move(new_tag);
    return Status::OK();
  }
  int64_t Value() { return value_; }
  std::string Tag() { return tag_; }

 private:
  std::string tag_;
  int64_t value_ = 0;
};

class AodbFeaturesTest : public ::testing::Test {
 protected:
  AodbFeaturesTest() : harness_(MakeOptions()) {
    harness_.cluster().RegisterActorType<AccountActor>();
    harness_.cluster().RegisterActorType<ItemActor>();
    harness_.cluster().RegisterActorType<RegistryActor>();
    harness_.cluster().RegisterActorType<IndexActor>();
  }

  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 2;
    o.workers_per_silo = 2;
    return o;
  }

  template <typename T>
  T Must(Future<T> f, Micros run_for = 20 * kMicrosPerSecond) {
    harness_.RunFor(run_for);
    auto r = f.Get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  SimHarness harness_;
};

TEST_F(AodbFeaturesTest, CommittedTransferMovesMoney) {
  auto a = harness_.cluster().Ref<AccountActor>("a");
  auto b = harness_.cluster().Ref<AccountActor>("b");
  Must(a.Call(&AccountActor::Deposit, int64_t{100}));
  TxnManager txn(&harness_.cluster());
  Status st = Must(txn.Run({
      TxnOp{AccountActor::kTypeName, "a", "debit", "40"},
      TxnOp{AccountActor::kTypeName, "b", "credit", "40"},
  }));
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Must(a.Call(&AccountActor::Balance)), 60);
  EXPECT_EQ(Must(b.Call(&AccountActor::Balance)), 40);
}

TEST_F(AodbFeaturesTest, FailedValidationAbortsAtomically) {
  auto a = harness_.cluster().Ref<AccountActor>("a2");
  auto b = harness_.cluster().Ref<AccountActor>("b2");
  Must(a.Call(&AccountActor::Deposit, int64_t{10}));
  TxnManager txn(&harness_.cluster());
  Status st = Must(txn.Run({
      TxnOp{AccountActor::kTypeName, "a2", "debit", "40"},  // Overdraft.
      TxnOp{AccountActor::kTypeName, "b2", "credit", "40"},
  }));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(Must(a.Call(&AccountActor::Balance)), 10);
  EXPECT_EQ(Must(b.Call(&AccountActor::Balance)), 0)
      << "credit must not apply when the debit failed";
}

TEST_F(AodbFeaturesTest, ConcurrentConflictingTransfersSerialize) {
  // Ten concurrent transfers moving 10 each out of a shared account with
  // exactly 50: exactly five must commit.
  auto hub = harness_.cluster().Ref<AccountActor>("hub");
  Must(hub.Call(&AccountActor::Deposit, int64_t{50}));
  RetryPolicy txn_retry;
  txn_retry.max_retries = 25;
  txn_retry.initial_backoff_us = 10 * kMicrosPerMilli;
  TxnManager txn(&harness_.cluster(), TxnOptions{txn_retry});
  std::vector<Future<Status>> transfers;
  for (int i = 0; i < 10; ++i) {
    transfers.push_back(txn.Run({
        TxnOp{AccountActor::kTypeName, "hub", "debit", "10"},
        TxnOp{AccountActor::kTypeName, "sink" + std::to_string(i), "credit",
              "10"},
    }));
  }
  auto results = Must(WhenAll(transfers), 120 * kMicrosPerSecond);
  int committed = 0;
  for (auto& r : results) {
    if (r.ok() && r.value().ok()) ++committed;
  }
  EXPECT_EQ(committed, 5);
  EXPECT_EQ(Must(hub.Call(&AccountActor::Balance)), 0);
  int64_t sink_total = 0;
  for (int i = 0; i < 10; ++i) {
    sink_total += Must(harness_.cluster()
                           .Ref<AccountActor>("sink" + std::to_string(i))
                           .Call(&AccountActor::Balance));
  }
  EXPECT_EQ(sink_total, 50) << "money is conserved";
  EXPECT_GT(txn.aborts(), 0) << "lock conflicts must have occurred";
}

TEST_F(AodbFeaturesTest, RegistryListsAllInstances) {
  for (int i = 0; i < 25; ++i) {
    harness_.cluster()
        .Ref<ItemActor>("item" + std::to_string(i))
        .Tell(&ItemActor::Init, std::string("tag"), int64_t{i});
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  auto keys = Must(TypeRegistry::ListAll(harness_.cluster(),
                                         ItemActor::kTypeName));
  EXPECT_EQ(keys.size(), 25u);
}

TEST_F(AodbFeaturesTest, QueryAllProjectsEveryActor) {
  for (int i = 0; i < 10; ++i) {
    harness_.cluster()
        .Ref<ItemActor>("q" + std::to_string(i))
        .Tell(&ItemActor::Init, std::string("t"), int64_t{i});
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  auto values = Must(
      QueryAll<ItemActor>(harness_.cluster(), &ItemActor::Value));
  ASSERT_EQ(values.size(), 10u);
  int64_t sum = 0;
  for (int64_t v : values) sum += v;
  EXPECT_EQ(sum, 45);
}

TEST_F(AodbFeaturesTest, QueryWhereFilters) {
  for (int i = 0; i < 10; ++i) {
    harness_.cluster()
        .Ref<ItemActor>("w" + std::to_string(i))
        .Tell(&ItemActor::Init, std::string("t"), int64_t{i});
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  auto big = Must(QueryWhere<ItemActor>(
      harness_.cluster(), &ItemActor::Value,
      [](const int64_t& v) { return v >= 7; }));
  EXPECT_EQ(big.size(), 3u);
}

TEST_F(AodbFeaturesTest, IndexLookupAndReindex) {
  ActorIndex index("item_by_tag");
  harness_.cluster().Ref<ItemActor>("x1").Tell(&ItemActor::Init,
                                               std::string("red"),
                                               int64_t{1});
  harness_.cluster().Ref<ItemActor>("x2").Tell(&ItemActor::Init,
                                               std::string("red"),
                                               int64_t{2});
  harness_.cluster().Ref<ItemActor>("x3").Tell(&ItemActor::Init,
                                               std::string("blue"),
                                               int64_t{3});
  harness_.RunFor(10 * kMicrosPerSecond);
  auto red = Must(index.Lookup(harness_.cluster(), "red"));
  EXPECT_EQ(red.size(), 2u);
  // Retag x2 to blue; the index must follow.
  harness_.cluster().Ref<ItemActor>("x2").Tell(&ItemActor::Retag,
                                               std::string("blue"));
  harness_.RunFor(10 * kMicrosPerSecond);
  EXPECT_EQ(Must(index.Lookup(harness_.cluster(), "red")).size(), 1u);
  EXPECT_EQ(Must(index.Lookup(harness_.cluster(), "blue")).size(), 2u);
}

TEST_F(AodbFeaturesTest, QueryByIndexProjectsHits) {
  ActorIndex index("item_by_tag");
  for (int i = 0; i < 6; ++i) {
    harness_.cluster()
        .Ref<ItemActor>("y" + std::to_string(i))
        .Tell(&ItemActor::Init,
              std::string(i % 2 == 0 ? "even" : "odd"), int64_t{i});
  }
  harness_.RunFor(10 * kMicrosPerSecond);
  auto evens = Must(QueryByIndex<ItemActor>(harness_.cluster(), index,
                                            "even", &ItemActor::Value));
  ASSERT_EQ(evens.size(), 3u);
  int64_t sum = 0;
  for (int64_t v : evens) sum += v;
  EXPECT_EQ(sum, 0 + 2 + 4);
}

TEST_F(AodbFeaturesTest, WorkflowRunsStepsInOrder) {
  auto a = harness_.cluster().Ref<AccountActor>("wf-a");
  Must(a.Call(&AccountActor::Deposit, int64_t{30}));
  WorkflowEngine engine(&harness_.cluster());
  Status st = Must(engine.Run({
      WorkflowStep{AccountActor::kTypeName, "wf-a", "debit", "30", "credit",
                   "30"},
      WorkflowStep{AccountActor::kTypeName, "wf-b", "credit", "30", "debit",
                   "30"},
  }));
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(Must(a.Call(&AccountActor::Balance)), 0);
  EXPECT_EQ(engine.steps_executed(), 2);
}

TEST_F(AodbFeaturesTest, WorkflowRetriesOnLockConflict) {
  // Lock wf-c with a bare prepare (no commit) and start a workflow touching
  // it. The workflow must retry until the transactional lock times out and
  // is broken, then succeed.
  auto c = harness_.cluster().Ref<AccountActor>("wf-c");
  // Short RunFor: the ghost lock must still be fresh when the workflow
  // makes its first attempt (the transactional lock timeout is 5s).
  Must(c.Call(&AccountActor::TxnPrepare, std::string("ghost-txn"),
              std::string("credit"), std::string("1")),
       kMicrosPerSecond);
  RetryPolicy wf_retry;
  wf_retry.max_retries = 10;
  wf_retry.initial_backoff_us = 500 * kMicrosPerMilli;
  wf_retry.max_backoff_us = 2 * kMicrosPerSecond;
  WorkflowEngine engine(&harness_.cluster(), WorkflowOptions{wf_retry});
  auto f = engine.Run({WorkflowStep{AccountActor::kTypeName, "wf-c",
                                    "credit", "5", "", ""}});
  harness_.RunFor(30 * kMicrosPerSecond);
  auto st = f.Get();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st.value().ok()) << st.value().ToString();
  EXPECT_GT(engine.retries(), 0);
}

TEST_F(AodbFeaturesTest, StaleLockIsBrokenAfterTimeoutAndUnstagesEveryOp) {
  auto a = harness_.cluster().Ref<AccountActor>("stale");
  Must(a.Call(&AccountActor::Deposit, int64_t{100}));
  // A coordinator that crashes right after prepare: stage two debits under
  // one transaction and never send phase 2.
  // Short RunFor steps: the lock must still be fresh (5 s timeout) when the
  // competing prepare arrives below.
  EXPECT_TRUE(Must(a.Call(&AccountActor::TxnPrepare, std::string("dead-txn"),
                          std::string("debit"), std::string("30")),
                   kMicrosPerSecond)
                  .ok());
  EXPECT_TRUE(Must(a.Call(&AccountActor::TxnPrepare, std::string("dead-txn"),
                          std::string("debit"), std::string("30")),
                   kMicrosPerSecond)
                  .ok());
  EXPECT_TRUE(Must(a.Call(&AccountActor::TxnLocked), kMicrosPerSecond));
  // While the lock is fresh, a competing prepare must abort.
  EXPECT_TRUE(Must(a.Call(&AccountActor::TxnPrepare, std::string("early"),
                          std::string("debit"), std::string("10")),
                   kMicrosPerSecond)
                  .IsAborted());
  harness_.RunFor(TransactionalActor::kLockTimeoutUs + kMicrosPerSecond);
  // The next prepare breaks the stale lock. Both staged debits (60 in
  // reservations) must have been unstaged — a debit of 80 only validates
  // against the 100 balance if no reservation leaked.
  EXPECT_TRUE(Must(a.Call(&AccountActor::TxnPrepare, std::string("fresh"),
                          std::string("debit"), std::string("80")))
                  .ok());
  a.Tell(&AccountActor::TxnCommit, std::string("fresh"));
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(Must(a.Call(&AccountActor::Balance)), 20)
      << "only the fresh transaction's debit applies";
  // And the dead transaction's ops must never apply, even if its
  // coordinator wakes up and commits after the break.
  a.Tell(&AccountActor::TxnCommit, std::string("dead-txn"));
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(Must(a.Call(&AccountActor::Balance)), 20);
  EXPECT_FALSE(Must(a.Call(&AccountActor::TxnLocked)));
}

}  // namespace
}  // namespace aodb
