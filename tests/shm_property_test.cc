// Property-style tests of the SHM platform's data structures and
// invariants: state codec round trips under random contents, packet
// splitting across channel counts, window capacity bounds, aggregator
// correctness against a reference computation, and topology sweeps.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace shm {
namespace {

// --- Codec round trips ----------------------------------------------------------

ChannelState RandomChannelState(Rng* rng) {
  ChannelState st;
  st.config.org_key = "org-" + std::to_string(rng->NextBelow(100));
  st.config.aggregator_key = "agg-" + std::to_string(rng->NextBelow(100));
  st.config.virtual_key = rng->Bernoulli(0.5) ? "v-1" : "";
  st.config.alert_user_key = rng->Bernoulli(0.3) ? "user-1" : "";
  st.config.threshold_low = rng->Uniform(-100, 0);
  st.config.threshold_high = rng->Uniform(0, 100);
  st.config.has_threshold_low = rng->Bernoulli(0.5);
  st.config.has_threshold_high = rng->Bernoulli(0.5);
  st.config.window_capacity = static_cast<int>(rng->NextBelow(2000)) + 1;
  st.config.indexed = rng->Bernoulli(0.5);
  int points = static_cast<int>(rng->NextBelow(200));
  for (int i = 0; i < points; ++i) {
    st.window.push_back(DataPoint{static_cast<Micros>(rng->NextBelow(1u << 30)),
                                  rng->Normal(0, 50)});
  }
  st.accumulated_change = rng->Uniform(0, 1e6);
  st.total_points = static_cast<int64_t>(rng->NextBelow(1u << 30));
  return st;
}

class ChannelStateRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelStateRoundTrip, EncodeDecodeIsIdentity) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    ChannelState original = RandomChannelState(&rng);
    BufWriter w;
    original.Encode(&w);
    ChannelState decoded;
    BufReader r(w.data());
    ASSERT_TRUE(decoded.Decode(&r).ok());
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(decoded.config.org_key, original.config.org_key);
    EXPECT_EQ(decoded.config.aggregator_key, original.config.aggregator_key);
    EXPECT_EQ(decoded.config.virtual_key, original.config.virtual_key);
    EXPECT_EQ(decoded.config.has_threshold_high,
              original.config.has_threshold_high);
    EXPECT_EQ(decoded.config.window_capacity,
              original.config.window_capacity);
    EXPECT_EQ(decoded.config.indexed, original.config.indexed);
    ASSERT_EQ(decoded.window.size(), original.window.size());
    for (size_t i = 0; i < original.window.size(); ++i) {
      EXPECT_EQ(decoded.window[i].ts, original.window[i].ts);
      EXPECT_DOUBLE_EQ(decoded.window[i].value, original.window[i].value);
    }
    EXPECT_DOUBLE_EQ(decoded.accumulated_change,
                     original.accumulated_change);
    EXPECT_EQ(decoded.total_points, original.total_points);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelStateRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ShmCodecTest, TruncatedChannelStateIsRejected) {
  Rng rng(9);
  ChannelState st = RandomChannelState(&rng);
  BufWriter w;
  st.Encode(&w);
  for (size_t cut : {size_t{0}, w.size() / 3, w.size() - 1}) {
    std::string data = w.data().substr(0, cut);
    ChannelState decoded;
    BufReader r(data);
    EXPECT_FALSE(decoded.Decode(&r).ok())
        << "decode must fail when truncated to " << cut << " bytes";
  }
}

TEST(ShmCodecTest, VirtualChannelStateRoundTrips) {
  VirtualChannelState st;
  st.config.org_key = "org-5";
  st.config.aggregator_key = "agg";
  st.config.source_keys = {"s1.c0", "s1.c1", "s2.c0"};
  st.config.window_capacity = 77;
  st.latest_by_source = {{"s1.c0", 1.5}, {"s1.c1", -2.25}};
  st.window.push_back(DataPoint{123456, -0.75});
  st.total_points = 42;
  BufWriter w;
  st.Encode(&w);
  VirtualChannelState decoded;
  BufReader r(w.data());
  ASSERT_TRUE(decoded.Decode(&r).ok());
  EXPECT_EQ(decoded.config.source_keys, st.config.source_keys);
  EXPECT_EQ(decoded.latest_by_source, st.latest_by_source);
  EXPECT_EQ(decoded.total_points, 42);
}

TEST(ShmCodecTest, OrganizationStateRoundTrips) {
  OrganizationState st;
  st.name = "Great Belt";
  st.projects.push_back(Project{"p0", "East bridge", {"s0", "s1"}});
  st.projects.push_back(Project{"p1", "West bridge", {}});
  st.user_keys = {"user-0"};
  st.channel_keys = {"s0.c0", "s0.c1", "s0.v"};
  BufWriter w;
  st.Encode(&w);
  OrganizationState decoded;
  BufReader r(w.data());
  ASSERT_TRUE(decoded.Decode(&r).ok());
  EXPECT_EQ(decoded.name, st.name);
  ASSERT_EQ(decoded.projects.size(), 2u);
  EXPECT_EQ(decoded.projects[0].sensor_keys, st.projects[0].sensor_keys);
  EXPECT_EQ(decoded.channel_keys, st.channel_keys);
}

// --- Behavioural properties in the simulator --------------------------------------

class ShmPropertyTest : public ::testing::Test {
 protected:
  ShmPropertyTest() : harness_(MakeOptions()), platform_(&harness_.cluster()) {
    ShmPlatform::RegisterTypes(harness_.cluster());
    ShmPlatform::ApplyPaperPlacement(harness_.cluster());
  }
  static RuntimeOptions MakeOptions() {
    RuntimeOptions o;
    o.num_silos = 2;
    return o;
  }
  SimHarness harness_;
  ShmPlatform platform_;
};

/// Packet splitting across channel counts: each channel receives a
/// contiguous block, all points land exactly once.
class PacketSplit : public ::testing::TestWithParam<int> {};

TEST_P(PacketSplit, AllPointsLandExactlyOnce) {
  int channels = GetParam();
  RuntimeOptions o;
  o.num_silos = 2;
  SimHarness harness(o);
  ShmPlatform::RegisterTypes(harness.cluster());
  ShmPlatform::ApplyPaperPlacement(harness.cluster());
  ShmPlatform platform(&harness.cluster());
  ShmTopology t;
  t.sensors = 1;
  t.sensors_per_org = 1;
  t.channels_per_sensor = channels;
  t.virtual_every = 0;
  auto setup = platform.Setup(t);
  harness.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().value().ok());
  std::vector<DataPoint> packet;
  for (int i = 0; i < 21; ++i) {  // Deliberately not divisible by channels.
    packet.push_back(DataPoint{i * 1000, static_cast<double>(i)});
  }
  auto f = platform.Insert(t, 0, packet);
  harness.RunFor(10 * kMicrosPerSecond);
  ASSERT_TRUE(f.Get().value().ok());
  int64_t total = 0;
  for (int c = 0; c < channels; ++c) {
    auto points = harness.cluster()
                      .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(0, c))
                      .Call(&PhysicalChannelActor::TotalPoints);
    harness.RunFor(kMicrosPerSecond);
    total += points.Get().value();
  }
  EXPECT_EQ(total, 21);
}

INSTANTIATE_TEST_SUITE_P(ChannelCounts, PacketSplit,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST_F(ShmPropertyTest, WindowCapacityBoundsMemory) {
  ShmTopology t;
  t.sensors = 1;
  t.sensors_per_org = 1;
  t.virtual_every = 0;
  t.window_capacity = 50;
  auto setup = platform_.Setup(t);
  harness_.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().value().ok());
  // Insert 300 points in batches of 20 -> 150 per channel, window keeps 50.
  for (int batch = 0; batch < 15; ++batch) {
    std::vector<DataPoint> packet;
    for (int i = 0; i < 20; ++i) {
      packet.push_back(
          DataPoint{(batch * 20 + i) * 1000, static_cast<double>(i)});
    }
    platform_.Insert(t, 0, packet);
    harness_.RunFor(kMicrosPerSecond);
  }
  auto range = platform_.RawRange(t, 0, 0, 0, Micros{1} << 60);
  harness_.RunFor(2 * kMicrosPerSecond);
  EXPECT_EQ(range.Get().value().points.size(), 50u);
  auto total = harness_.cluster()
                   .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(0, 0))
                   .Call(&PhysicalChannelActor::TotalPoints);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(total.Get().value(), 150)
      << "total counter keeps counting past the window";
}

TEST_F(ShmPropertyTest, AggregatorMatchesReferenceStatistics) {
  ShmTopology t;
  t.sensors = 1;
  t.sensors_per_org = 1;
  t.virtual_every = 0;
  t.hour_window_us = 4 * kMicrosPerSecond;
  auto setup = platform_.Setup(t);
  harness_.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().value().ok());
  // Feed a known series into channel 0 only (channel 1 gets none).
  Rng rng(77);
  std::map<int64_t, std::vector<double>> reference;
  Micros base = harness_.Now();
  for (int batch = 0; batch < 12; ++batch) {
    std::vector<DataPoint> points;
    for (int i = 0; i < 10; ++i) {
      Micros ts = base + batch * kMicrosPerSecond + i * 100 * kMicrosPerMilli;
      double v = rng.Normal(10, 4);
      points.push_back(DataPoint{ts, v});
      reference[ts / t.hour_window_us].push_back(v);
    }
    // Use the channel directly so only c0 receives data.
    CallOptions opts;
    harness_.cluster()
        .Ref<PhysicalChannelActor>(ShmPlatform::ChannelKey(0, 0))
        .TellWith(opts, &PhysicalChannelActor::Append, points);
    harness_.RunFor(kMicrosPerSecond);
  }
  harness_.RunFor(5 * kMicrosPerSecond);
  auto aggs = platform_.HourAggregates(t, 0, 0, 0, base + (Micros{1} << 40));
  harness_.RunFor(2 * kMicrosPerSecond);
  auto windows = aggs.Get().value();
  ASSERT_EQ(windows.size(), reference.size());
  for (const AggregateView& w : windows) {
    const auto& ref = reference.at(w.window_start / t.hour_window_us);
    ASSERT_EQ(w.count, static_cast<int64_t>(ref.size()));
    double sum = 0, mn = ref[0], mx = ref[0];
    for (double v : ref) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_NEAR(w.mean, sum / ref.size(), 1e-9);
    EXPECT_DOUBLE_EQ(w.min, mn);
    EXPECT_DOUBLE_EQ(w.max, mx);
  }
}

TEST_F(ShmPropertyTest, DayAggregatorReceivesClosedHourWindows) {
  ShmTopology t;
  t.sensors = 1;
  t.sensors_per_org = 1;
  t.virtual_every = 0;
  t.hour_window_us = 2 * kMicrosPerSecond;
  t.day_window_us = 10 * kMicrosPerSecond;
  auto setup = platform_.Setup(t);
  harness_.RunFor(30 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Get().value().ok());
  Micros base = harness_.Now();
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<DataPoint> points;
    for (int i = 0; i < 10; ++i) {
      points.push_back(DataPoint{base + batch * kMicrosPerSecond + i * 100000,
                                 1.0});
    }
    platform_.Insert(t, 0, points);
    harness_.RunFor(kMicrosPerSecond);
  }
  harness_.RunFor(5 * kMicrosPerSecond);
  auto day = harness_.cluster()
                 .Ref<AggregatorActor>(
                     ShmPlatform::DayAggKey(ShmPlatform::ChannelKey(0, 0)))
                 .Call(&AggregatorActor::Query, Micros{0}, Micros{1} << 60);
  harness_.RunFor(2 * kMicrosPerSecond);
  auto windows = day.Get().value();
  ASSERT_GE(windows.size(), 1u) << "closed hour windows roll up to day";
  for (const AggregateView& w : windows) {
    EXPECT_NEAR(w.mean, 1.0, 1e-9)
        << "constant series: every rolled-up mean is 1.0";
  }
}

/// Topology sweep: setup counts scale correctly with the sensor count.
class TopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweep, ActivationCountsMatchTopology) {
  int sensors = GetParam();
  RuntimeOptions o;
  o.num_silos = 2;
  SimHarness harness(o);
  ShmPlatform::RegisterTypes(harness.cluster());
  ShmPlatform::ApplyPaperPlacement(harness.cluster());
  ShmPlatform platform(&harness.cluster());
  ShmTopology t;
  t.sensors = sensors;
  auto setup = platform.Setup(t);
  harness.RunFor(60 * kMicrosPerSecond);
  ASSERT_TRUE(setup.Ready());
  ASSERT_TRUE(setup.Get().value().ok());
  // Orgs + users are created lazily by messages; sensors, channels,
  // virtual channels and aggregators are activated during setup.
  int orgs = ShmPlatform::NumOrgs(t);
  int virtuals = (sensors + t.virtual_every - 1) / t.virtual_every;
  int physical = sensors * t.channels_per_sensor;
  int aggregators = (physical + virtuals) * 3;  // hour/day/month.
  // Users are never messaged during setup, so they have no activations.
  size_t expected = static_cast<size_t>(orgs + sensors + physical +
                                        virtuals + aggregators);
  EXPECT_EQ(harness.cluster().TotalActivations(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySweep,
                         ::testing::Values(10, 50, 100, 250));

}  // namespace
}  // namespace shm
}  // namespace aodb
