// Activation-paging tests for the bounded-memory working set (ROADMAP item
// 1): fault-in after a page-out preserves durable state and reminders, the
// directory keeps a paged entry (and the activation.fault.* /
// activation.paged_out series count the round-trip), paging composes with
// live migration, silo death (PurgeSilo must drop paged entries too),
// and bounded-mailbox rejection; SweepIdle's cost tracks the STALE count
// rather than the resident count (the intrusive-LRU regression); kHash
// placement never touches the per-stripe RNG (replay determinism across
// shard counts); and a 50-seed DST sweep with a deliberately tiny
// working-set cap runs violation-free.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/directory.h"
#include "actor/flight_recorder.h"
#include "sim/explore.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

// --- Actor under test --------------------------------------------------------

struct PgState {
  int64_t value = 0;
  int64_t reminder_fires = 0;
  void Encode(BufWriter* w) const {
    w->PutSigned(value);
    w->PutSigned(reminder_fires);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&value));
    return r->GetSigned(&reminder_fires);
  }
};

/// Durable counter persisted ON DEACTIVATION only — the policy that makes
/// paging itself carry the durability obligation: a page-out of a dirty
/// activation must flush the snapshot or the fault-in loses acked adds.
class PgCounter : public PersistentActor<PgState> {
 public:
  static constexpr char kTypeName[] = "test.PgCounter";

  PgCounter()
      : PersistentActor<PgState>(PersistenceOptions{
            PersistPolicy::kOnDeactivate, 100, 10 * kMicrosPerSecond,
            "default", RetryPolicy{}}) {}

  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
  int64_t ReminderFires() { return state().reminder_fires; }
  /// Explicit snapshot write: the turn ends when the write is ISSUED, so
  /// the ack can still be on the wire when the activation goes idle.
  Future<Status> Persist() { return WriteStateAsync(); }
  Status StartReminder(int64_t period_us) {
    return ctx().RegisterReminder("tick", period_us);
  }

  void ReceiveReminder(const std::string&) override {
    ++state().reminder_fires;
    MarkDirty();
  }
};

void RegisterWireMethods() {
  static const Status st = [] {
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        PgCounter::kTypeName, &PgCounter::Add, "PgCounter.Add"));
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        PgCounter::kTypeName, &PgCounter::Value, "PgCounter.Value",
        /*idempotent=*/true));
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        PgCounter::kTypeName, &PgCounter::ReminderFires,
        "PgCounter.ReminderFires", /*idempotent=*/true));
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        PgCounter::kTypeName, &PgCounter::StartReminder,
        "PgCounter.StartReminder"));
    return MethodRegistry::Global().Register(
        PgCounter::kTypeName, &PgCounter::Persist, "PgCounter.Persist",
        /*idempotent=*/true);
  }();
  ASSERT_TRUE(st.ok()) << st.ToString();
}

/// Storage decorator that can hold the apply AND the ack of writes to one
/// grain key — modeling a write still on the wire (provider latency, retry
/// backoff) after the issuing turn has long finished.
class HoldWriteStorage final : public StateStorage {
 public:
  explicit HoldWriteStorage(std::shared_ptr<StateStorage> inner)
      : inner_(std::move(inner)) {}

  Future<Status> Write(const std::string& grain_key, std::string bytes,
                       Executor* exec) override {
    if (grain_key == held_key_) {
      held_.push_back(Held{grain_key, std::move(bytes), exec, {}});
      return held_.back().done.GetFuture();
    }
    return inner_->Write(grain_key, std::move(bytes), exec);
  }
  Future<std::string> Read(const std::string& grain_key,
                           Executor* exec) override {
    return inner_->Read(grain_key, exec);
  }
  Future<Status> Clear(const std::string& grain_key,
                       Executor* exec) override {
    return inner_->Clear(grain_key, exec);
  }

  void HoldKey(const std::string& grain_key) { held_key_ = grain_key; }

  /// Applies every held write against the inner provider and completes its
  /// future; returns how many were held.
  size_t ReleaseAll() {
    held_key_.clear();
    size_t n = held_.size();
    for (Held& h : held_) {
      Promise<Status> done = h.done;
      inner_->Write(h.key, std::move(h.bytes), h.exec)
          .OnReady([done](Result<Status>&& r) mutable {
            done.SetValue(r.ok() ? r.value() : r.status());
          });
    }
    held_.clear();
    return n;
  }

  size_t held_count() const { return held_.size(); }

 private:
  struct Held {
    std::string key;
    std::string bytes;
    Executor* exec;
    Promise<Status> done;
  };
  std::shared_ptr<StateStorage> inner_;
  std::string held_key_;
  std::vector<Held> held_;
};

RuntimeOptions BaseOptions(int num_silos, int max_resident) {
  RuntimeOptions o;
  o.num_silos = num_silos;
  o.workers_per_silo = 1;  // Serialize turns: deterministic interleavings.
  o.seed = 42;
  o.max_resident_activations = max_resident;
  return o;
}

struct TestCluster {
  explicit TestCluster(const RuntimeOptions& options)
      : harness(options), cluster(harness.cluster()) {
    RegisterWireMethods();
    cluster.RegisterActorType<PgCounter>();
    hold = std::make_shared<HoldWriteStorage>(
        std::make_shared<KvStateStorage>(&kv));
    cluster.RegisterStateStorage("default", hold);
  }

  int64_t Metric(const std::string& name) {
    MetricsSnapshot snap = cluster.SnapshotMetrics();
    auto cit = snap.counters.find(name);
    if (cit != snap.counters.end()) return cit->second;
    auto git = snap.gauges.find(name);
    return git != snap.gauges.end() ? git->second : 0;
  }

  /// Adds 1 to `key` and waits for the ack.
  void Add1(const std::string& key) {
    auto f = cluster.Ref<PgCounter>(key).Call(&PgCounter::Add, int64_t{1});
    ASSERT_TRUE(RunUntilReady(harness, f, 10 * kMicrosPerSecond));
    ASSERT_TRUE(f.Get().ok()) << f.Get().status().ToString();
  }

  /// Creates `n` one-shot filler activations so the working-set cap evicts
  /// the least-recently-active resident actors.
  void Fill(const std::string& prefix, int n) {
    for (int i = 0; i < n; ++i) {
      Add1(prefix + std::to_string(i));
    }
    harness.RunFor(kMicrosPerSecond);  // Let the eviction passes land.
  }

  std::optional<Directory::Entry> Entry(const std::string& key) {
    return cluster.directory().LookupEntry(
        ActorId{PgCounter::kTypeName, key});
  }

  MemKvStore kv;
  std::shared_ptr<HoldWriteStorage> hold;
  SimHarness harness;
  Cluster& cluster;
};

// --- Fault-in preserves state and reminders ----------------------------------

/// An actor paged out by the working-set cap keeps its durable state AND its
/// registered reminder: the next reminder fire faults it back in and applies
/// against the flushed snapshot, not a fresh grain.
TEST(ScalePaging, FaultInPreservesStateAndReminders) {
  TestCluster tc(BaseOptions(1, /*max_resident=*/2));

  tc.Add1("keep");
  tc.Add1("keep");
  auto rem = tc.cluster.Ref<PgCounter>("keep").Call(
      &PgCounter::StartReminder, int64_t{2 * kMicrosPerSecond});
  ASSERT_TRUE(RunUntilReady(tc.harness, rem, 10 * kMicrosPerSecond));
  ASSERT_TRUE(rem.Get().ok());
  ASSERT_TRUE(rem.Get().value().ok());

  // Push "keep" out through the cap (it becomes the LRU-oldest entry).
  tc.Fill("f", 6);
  auto entry = tc.Entry("keep");
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->paged);
  EXPECT_EQ(entry->silo, 0);

  // The reminder service faults it back in.
  tc.harness.RunFor(5 * kMicrosPerSecond);
  auto fires = tc.cluster.Ref<PgCounter>("keep").Call(
      &PgCounter::ReminderFires);
  ASSERT_TRUE(RunUntilReady(tc.harness, fires, 10 * kMicrosPerSecond));
  ASSERT_TRUE(fires.Get().ok());
  EXPECT_GE(fires.Get().value(), 1);

  auto v = tc.cluster.Ref<PgCounter>("keep").Call(&PgCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 10 * kMicrosPerSecond));
  ASSERT_TRUE(v.Get().ok());
  EXPECT_EQ(v.Get().value(), 2);
}

// --- Directory entry, metrics, and flight events -----------------------------

/// A page-out KEEPS the directory registration (marked paged, same silo), a
/// later send faults the actor in on that silo, and the whole round-trip is
/// visible: activation.paged_out / activation.fault.count counters, the
/// fault queue-wait histogram, and paged_out/fault_in flight events.
TEST(ScalePaging, PageOutKeepsDirectoryEntryAndCountsFaults) {
  TestCluster tc(BaseOptions(1, /*max_resident=*/1));

  tc.Add1("a");
  tc.Fill("b", 3);

  auto entry = tc.Entry("a");
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->paged);
  EXPECT_EQ(entry->silo, 0);
  EXPECT_GE(tc.Metric("activation.paged_out"), 1);
  int64_t faults_before = tc.Metric("activation.fault.count");

  auto v = tc.cluster.Ref<PgCounter>("a").Call(&PgCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 10 * kMicrosPerSecond));
  ASSERT_TRUE(v.Get().ok());
  EXPECT_EQ(v.Get().value(), 1);  // Fault-in loaded the flushed snapshot.
  EXPECT_GE(tc.Metric("activation.fault.count"), faults_before + 1);

  auto fresh = tc.Entry("a");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->paged);  // Fault-in cleared the flag.

  MetricsSnapshot snap = tc.cluster.SnapshotMetrics();
  auto hit = snap.histograms.find("activation.fault.queue_wait_us");
  ASSERT_TRUE(hit != snap.histograms.end());
  EXPECT_GE(hit->second.count(), 1);

  bool saw_paged_out = false;
  bool saw_fault_in = false;
  for (const FlightRecord& e : tc.cluster.flight_recorder().Collect()) {
    if (std::string(e.actor) != "test.PgCounter/a") continue;
    if (e.type == FlightEventType::kPagedOut) saw_paged_out = true;
    if (e.type == FlightEventType::kFaultIn) saw_fault_in = true;
  }
  EXPECT_TRUE(saw_paged_out);
  EXPECT_TRUE(saw_fault_in);
}

// --- Paging vs migration -----------------------------------------------------

/// Paging and live migration share the kIdle -> kDeactivating claim, so they
/// can interleave but never double-claim: migrating a PAGED actor fails
/// cleanly (there is no activation to move), and after rounds of adds,
/// migrations, and eviction pressure no acked add is lost or double-applied.
TEST(ScalePaging, PagingComposesWithMigration) {
  TestCluster tc(BaseOptions(2, /*max_resident=*/1));

  int64_t adds = 0;
  for (int round = 0; round < 8; ++round) {
    tc.Add1("m");
    ++adds;
    // Racing initiator: shove it at the other silo. Any outcome is legal
    // (moved, refused because paged/deactivating); consistency is checked
    // at the end.
    tc.cluster.MigrateActivation(ActorId{PgCounter::kTypeName, "m"},
                                 round % 2);
    tc.Fill("r" + std::to_string(round) + "-", 3);
  }

  // Force the paged state explicitly, then show migration refuses it.
  tc.Fill("z", 4);
  auto entry = tc.Entry("m");
  ASSERT_TRUE(entry.has_value());
  if (entry->paged) {
    SiloId other = entry->silo == 0 ? 1 : 0;
    Status st = tc.cluster.MigrateActivation(
        ActorId{PgCounter::kTypeName, "m"}, other);
    EXPECT_FALSE(st.ok());
  }

  auto v = tc.cluster.Ref<PgCounter>("m").Call(&PgCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 10 * kMicrosPerSecond));
  ASSERT_TRUE(v.Get().ok());
  EXPECT_EQ(v.Get().value(), adds);
}

// --- Paging vs PurgeSilo -----------------------------------------------------

/// PurgeSilo must drop PAGED entries along with live ones: when the hosting
/// silo dies, the paged registration disappears, and the next call
/// re-places the actor on a survivor, loading the snapshot the page-out
/// flushed before the crash.
TEST(ScalePaging, PagedEntryPurgedWithDeadSilo) {
  TestCluster tc(BaseOptions(2, /*max_resident=*/1));

  tc.Add1("p");
  tc.Add1("p");
  tc.Fill("q", 6);  // Page "p" out (snapshot flushed by the page-out).

  auto entry = tc.Entry("p");
  ASSERT_TRUE(entry.has_value());
  ASSERT_TRUE(entry->paged);
  SiloId host = entry->silo;
  SiloId survivor = host == 0 ? 1 : 0;

  tc.cluster.KillSilo(host);
  tc.harness.RunFor(2 * kMicrosPerSecond);
  auto purged = tc.Entry("p");
  EXPECT_FALSE(purged.has_value());  // PurgeSilo dropped the paged entry.

  auto v = tc.cluster.Ref<PgCounter>("p").Call(&PgCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 20 * kMicrosPerSecond));
  ASSERT_TRUE(v.Get().ok()) << v.Get().status().ToString();
  EXPECT_EQ(v.Get().value(), 2);
  auto placed = tc.Entry("p");
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(placed->silo, survivor);
}

// --- Overloaded vs paging ----------------------------------------------------

/// A bounded mailbox and a working-set cap compose: the eviction pass never
/// claims an actor with queued mail (the claim requires kIdle AND an empty
/// mailbox), so backpressure rejections and paging account for every send —
/// accepted adds all land, rejected ones are cleanly Overloaded.
TEST(ScalePaging, OverloadedComposesWithPaging) {
  RuntimeOptions options = BaseOptions(1, /*max_resident=*/1);
  TestCluster tc(options);
  tc.cluster.SetTypeMailboxDepth(PgCounter::kTypeName, 2);

  CallOptions slow;
  slow.cost_us = 100 * kMicrosPerMilli;
  std::vector<Future<int64_t>> acks;
  for (int i = 0; i < 6; ++i) {
    acks.push_back(tc.cluster.Ref<PgCounter>("o").CallWith(
        slow, &PgCounter::Add, int64_t{1}));
  }
  // Eviction pressure while "o" still has queued mail.
  tc.Fill("e", 3);
  tc.harness.RunFor(2 * kMicrosPerSecond);

  int64_t acked = 0;
  int64_t overloaded = 0;
  for (auto& f : acks) {
    ASSERT_TRUE(f.Ready());
    if (f.Get().ok()) {
      ++acked;
    } else {
      EXPECT_TRUE(f.Get().status().IsOverloaded())
          << f.Get().status().ToString();
      ++overloaded;
    }
  }
  EXPECT_EQ(acked + overloaded, 6);
  EXPECT_GE(acked, 1);

  auto v = tc.cluster.Ref<PgCounter>("o").Call(&PgCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 10 * kMicrosPerSecond));
  ASSERT_TRUE(v.Get().ok());
  EXPECT_EQ(v.Get().value(), acked);
}

// --- Sweep cost regression ---------------------------------------------------

/// SweepIdle walks the intrusive LRU oldest-first and stops at the first
/// FRESH entry, so its cost is O(stale + 1) per sweep — independent of the
/// resident count. With ~1200 fresh residents, repeated sweeps examine a
/// handful of entries total; once everything goes stale, examined grows by
/// about one per eviction.
TEST(ScalePaging, SweepCostIndependentOfResidentCount) {
  RuntimeOptions options = BaseOptions(1, /*max_resident=*/0);
  options.lifecycle.enable_idle_deactivation = true;
  options.lifecycle.idle_timeout_us = 60 * kMicrosPerSecond;
  options.lifecycle.scan_interval_us = kMicrosPerSecond;
  TestCluster tc(options);
  tc.cluster.StartIdleScanner();

  constexpr int kResident = 1200;
  for (int i = 0; i < kResident; ++i) {
    tc.cluster.Ref<PgCounter>("s" + std::to_string(i))
        .Tell(&PgCounter::Add, int64_t{1});
  }
  tc.harness.RunFor(10 * kMicrosPerSecond);  // Drain + ~10 fresh sweeps.

  SiloStats fresh = tc.cluster.silo(0)->Stats();
  ASSERT_GE(fresh.activations_created, kResident);
  // The regression this guards: the old sweep scanned the whole catalog
  // every pass (~10 sweeps x 1200 residents > 10,000 examined).
  EXPECT_LE(fresh.sweep_examined, 100);

  // Let everything go stale; the sweeps now pay one examine per eviction.
  tc.harness.RunFor(70 * kMicrosPerSecond);
  SiloStats stale = tc.cluster.silo(0)->Stats();
  EXPECT_GE(stale.activations_removed, kResident);
  EXPECT_LE(stale.sweep_examined,
            fresh.sweep_examined + stale.activations_removed + 100);
}

// --- kHash placement determinism ---------------------------------------------

/// kHash placement is a pure function of (actor id, live membership): it
/// must not consume per-stripe RNG draws, so interleaving it with kRandom
/// placements — or changing the seed or the stripe count — never changes a
/// hash-placed actor's home. This is what keeps DST replays bit-identical
/// when paging churns placement order.
TEST(ScalePaging, HashPlacementIgnoresRngAndShardCount) {
  constexpr int kSilos = 4;
  constexpr int kIds = 64;

  auto run = [&](uint64_t seed, int shards,
                 int random_interleave) -> std::vector<SiloId> {
    Directory dir(kSilos, Placement::kRandom, seed, shards);
    dir.SetTypePlacement("h.Type", Placement::kHash);
    std::vector<SiloId> homes;
    for (int i = 0; i < kIds; ++i) {
      // Burn a varying number of RNG draws on random placements first.
      for (int r = 0; r < random_interleave * (i % 3 + 1); ++r) {
        dir.LookupOrPlace(
            ActorId{"r.Type", "r" + std::to_string(i) + "-" +
                                  std::to_string(r)},
            kClientSiloId);
      }
      homes.push_back(dir.LookupOrPlace(
          ActorId{"h.Type", "h" + std::to_string(i)}, kClientSiloId));
    }
    return homes;
  };

  std::vector<SiloId> baseline = run(/*seed=*/1, /*shards=*/1,
                                     /*random_interleave=*/0);
  for (int i = 0; i < kIds; ++i) {
    ActorId id{"h.Type", "h" + std::to_string(i)};
    EXPECT_EQ(baseline[i],
              static_cast<SiloId>(ActorIdHash()(id) % kSilos));
  }
  EXPECT_EQ(baseline, run(/*seed=*/1, /*shards=*/1, /*random_interleave=*/0));
  EXPECT_EQ(baseline, run(/*seed=*/99, /*shards=*/1, /*random_interleave=*/2));
  EXPECT_EQ(baseline, run(/*seed=*/1, /*shards=*/16, /*random_interleave=*/0));
  EXPECT_EQ(baseline, run(/*seed=*/7, /*shards=*/16, /*random_interleave=*/3));

  // Dead home silos probe deterministically to the next live one.
  Directory dir(kSilos, Placement::kRandom, /*seed=*/1, /*shards=*/8);
  dir.SetTypePlacement("h.Type", Placement::kHash);
  dir.SetSiloLive(2, false);
  for (int i = 0; i < kIds; ++i) {
    ActorId id{"h.Type", "d" + std::to_string(i)};
    SiloId home = static_cast<SiloId>(ActorIdHash()(id) % kSilos);
    SiloId expect = home == 2 ? 3 : home;
    EXPECT_EQ(dir.LookupOrPlace(id, kClientSiloId), expect);
  }
}

// --- Deactivation drains in-flight writes ------------------------------------

/// An idle activation with a state write still on the wire must NOT finish
/// paging out until the write lands. Deactivating early frees the successor
/// activation to load + write first; the predecessor's late write then rolls
/// the grain back and an acked update is silently lost (exactly the DST
/// conservation violation the low-cap sweep caught at seed 29 — writes are
/// only serialized within one activation's PersistCore, so ordering across
/// the activation boundary has to come from the deactivation drain).
TEST(ScalePaging, DeactivationDrainsInFlightWrites) {
  TestCluster tc(BaseOptions(1, /*max_resident=*/1));
  const std::string kKey = std::string(PgCounter::kTypeName) + "/w";

  tc.Add1("w");
  // Flush the dirty mark first, so the held write below is issued against
  // CLEAN state — exercising the pure drain path, not the dirty-flush path.
  auto flush = tc.cluster.Ref<PgCounter>("w").Call(&PgCounter::Persist);
  ASSERT_TRUE(RunUntilReady(tc.harness, flush, 10 * kMicrosPerSecond));
  ASSERT_TRUE(flush.Get().ok()) << flush.Get().status().ToString();

  tc.hold->HoldKey(kKey);
  auto pending = tc.cluster.Ref<PgCounter>("w").Call(&PgCounter::Persist);
  tc.harness.RunFor(100 * kMicrosPerMilli);
  ASSERT_EQ(tc.hold->held_count(), 1u);

  // Cap pressure (cap=1) claims "w" for page-out; the deactivation must
  // stall on the in-flight write, keeping the entry un-paged.
  tc.Fill("f", 3);
  auto e = tc.Entry("w");
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->paged) << "paged out with a write still on the wire";
  EXPECT_FALSE(pending.Ready());

  ASSERT_EQ(tc.hold->ReleaseAll(), 1u);
  tc.harness.RunFor(kMicrosPerSecond);
  EXPECT_TRUE(pending.Ready());
  e = tc.Entry("w");
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->paged) << "page-out did not resume after the drain";

  // Fault back in: the drained write's state survives.
  auto v = tc.cluster.Ref<PgCounter>("w").Call(&PgCounter::Value);
  ASSERT_TRUE(RunUntilReady(tc.harness, v, 10 * kMicrosPerSecond));
  ASSERT_EQ(v.Get().value(), 1);
}

// --- DST sweep with paging ---------------------------------------------------

/// 50 seeds of full fault exploration with a working-set cap of 2 against 8
/// oracle actors: every run pages constantly, so evictions, paged directory
/// entries, and fault-ins race crashes, partitions, and storage faults.
/// Every invariant (conservation, exactly-once, catalog/directory
/// coherence) must hold on every seed.
TEST(ScalePaging, DstPagingSweepFiftySeedsClean) {
  dst::ExploreConfig config;
  config.max_resident_activations = 2;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultPlan plan = dst::GeneratePlan(seed, config);
    dst::RunResult result = dst::RunScenario(plan, config);
    EXPECT_GT(result.checks_run, 0) << "seed " << seed;
    for (const std::string& v : result.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
}

}  // namespace
}  // namespace aodb
