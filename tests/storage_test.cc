// Storage-layer tests: in-memory KV, the persistent log-structured store
// (durability, crash recovery, torn-write tolerance, corruption detection,
// compaction), the simulated cloud store (latency, provisioned-capacity
// throttling), and grain-state persistence policies.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "sim/sim_harness.h"
#include "storage/cloud_kv.h"
#include "storage/faulty_storage.h"
#include "storage/file_kv.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("aodb_test_" + std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

// --- MemKvStore ---------------------------------------------------------------

TEST(MemKvTest, PutGetDeleteList) {
  MemKvStore kv;
  ASSERT_TRUE(kv.Put("a/1", "one").ok());
  ASSERT_TRUE(kv.Put("a/2", "two").ok());
  ASSERT_TRUE(kv.Put("b/1", "three").ok());
  EXPECT_EQ(kv.Get("a/1").value(), "one");
  EXPECT_TRUE(kv.Get("missing").status().IsNotFound());
  auto listed = kv.List("a/");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().size(), 2u);
  EXPECT_EQ(listed.value()[0].first, "a/1");
  ASSERT_TRUE(kv.Delete("a/1").ok());
  EXPECT_TRUE(kv.Get("a/1").status().IsNotFound());
  EXPECT_EQ(kv.Count().value(), 2);
}

TEST(MemKvTest, BatchApplies) {
  MemKvStore kv;
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Put("y", "2");
  batch.Delete("x");
  ASSERT_TRUE(kv.Apply(batch).ok());
  EXPECT_TRUE(kv.Get("x").status().IsNotFound());
  EXPECT_EQ(kv.Get("y").value(), "2");
}

// --- FileKvStore ----------------------------------------------------------------

TEST(FileKvTest, BasicOperations) {
  TempDir dir;
  auto opened = FileKvStore::Open(dir.str());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& kv = *opened.value();
  ASSERT_TRUE(kv.Put("k1", "v1").ok());
  ASSERT_TRUE(kv.Put("k2", "v2").ok());
  EXPECT_EQ(kv.Get("k1").value(), "v1");
  ASSERT_TRUE(kv.Delete("k1").ok());
  EXPECT_TRUE(kv.Get("k1").status().IsNotFound());
  EXPECT_EQ(kv.Count().value(), 1);
}

TEST(FileKvTest, StateSurvivesReopen) {
  TempDir dir;
  {
    auto kv = std::move(FileKvStore::Open(dir.str()).value());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          kv->Put("key" + std::to_string(i), "val" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(kv->Delete("key50").ok());
    kv->Close();
  }
  auto reopened = FileKvStore::Open(dir.str());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->Count().value(), 99);
  EXPECT_EQ(reopened.value()->Get("key7").value(), "val7");
  EXPECT_TRUE(reopened.value()->Get("key50").status().IsNotFound());
}

TEST(FileKvTest, TornTailIsDroppedOnRecovery) {
  TempDir dir;
  {
    auto kv = std::move(FileKvStore::Open(dir.str()).value());
    ASSERT_TRUE(kv->Put("good", "value").ok());
    kv->Close();
  }
  // Append garbage simulating a torn (partial) final record.
  std::string seg;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    seg = e.path().string();
  }
  {
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    const char torn[] = {0x12, 0x34, 0x56};
    out.write(torn, sizeof(torn));
  }
  auto reopened = FileKvStore::Open(dir.str());
  ASSERT_TRUE(reopened.ok()) << "torn tail must not fail recovery";
  EXPECT_EQ(reopened.value()->Get("good").value(), "value");
}

TEST(FileKvTest, CorruptedRecordStopsReplayAtCorruption) {
  TempDir dir;
  {
    auto kv = std::move(FileKvStore::Open(dir.str()).value());
    ASSERT_TRUE(kv->Put("first", "1").ok());
    ASSERT_TRUE(kv->Put("second", "2").ok());
    kv->Close();
  }
  std::string seg;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    seg = e.path().string();
  }
  // Flip a byte in the middle of the file (inside the second record's
  // payload region) — the CRC must catch it.
  auto size = fs::file_size(seg);
  {
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(size - 3));
    char c = 'X';
    f.write(&c, 1);
  }
  auto reopened = FileKvStore::Open(dir.str());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->Get("first").value(), "1");
  EXPECT_TRUE(reopened.value()->Get("second").status().IsNotFound())
      << "corrupted record must not replay";
}

TEST(FileKvTest, TruncatedMidRecordTailIsDroppedOnRecovery) {
  TempDir dir;
  {
    auto kv = std::move(FileKvStore::Open(dir.str()).value());
    ASSERT_TRUE(kv->Put("first", "1").ok());
    ASSERT_TRUE(kv->Put("second", std::string(64, 's')).ok());
    kv->Close();
  }
  std::string seg;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    seg = e.path().string();
  }
  // Crash mid-append: the file ends partway through the second record's
  // payload (a short write, not appended garbage). Recovery must keep the
  // first record, drop the torn tail, and leave a usable store.
  auto size = fs::file_size(seg);
  fs::resize_file(seg, size - 17);
  {
    auto reopened = FileKvStore::Open(dir.str());
    ASSERT_TRUE(reopened.ok()) << "short write must not fail recovery";
    auto& kv = *reopened.value();
    EXPECT_EQ(kv.Get("first").value(), "1");
    EXPECT_TRUE(kv.Get("second").status().IsNotFound())
        << "the torn record was never durable";
    ASSERT_TRUE(kv.Put("third", "3").ok()) << "store must accept new writes";
    kv.Close();
  }
  auto again = FileKvStore::Open(dir.str());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->Get("first").value(), "1");
  EXPECT_EQ(again.value()->Get("third").value(), "3")
      << "writes after torn-tail recovery must be durable";
}

TEST(FileKvTest, CompactionShrinksLogAndPreservesData) {
  TempDir dir;
  FileKvOptions opts;
  opts.min_compaction_bytes = 16 << 10;
  auto kv = std::move(FileKvStore::Open(dir.str(), opts).value());
  // Overwrite a small key set many times: mostly garbage.
  std::string value(256, 'x');
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 10; ++k) {
      ASSERT_TRUE(kv->Put("hot" + std::to_string(k), value).ok());
    }
  }
  EXPECT_GT(kv->Compactions(), 0) << "automatic compaction should trigger";
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(kv->Get("hot" + std::to_string(k)).value(), value);
  }
  // After an explicit compaction the directory holds one small segment.
  ASSERT_TRUE(kv->Compact().ok());
  int64_t total = 0;
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    total += static_cast<int64_t>(fs::file_size(e.path()));
    ++files;
  }
  EXPECT_EQ(files, 1);
  EXPECT_LT(total, 8 << 10);
}

TEST(FileKvTest, ReopenAfterCompactionKeepsLatestValues) {
  TempDir dir;
  FileKvOptions opts;
  opts.min_compaction_bytes = 4 << 10;
  {
    auto kv = std::move(FileKvStore::Open(dir.str(), opts).value());
    std::string value(128, 'y');
    for (int round = 0; round < 50; ++round) {
      ASSERT_TRUE(kv->Put("k", value + std::to_string(round)).ok());
    }
    kv->Close();
  }
  auto reopened = FileKvStore::Open(dir.str(), opts);
  ASSERT_TRUE(reopened.ok());
  std::string expect(128, 'y');
  EXPECT_EQ(reopened.value()->Get("k").value(), expect + "49");
}

// --- TokenBucket / CloudKvSim ---------------------------------------------------

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket bucket(100.0, 100.0);  // 100 units/s, 100 burst.
  // Burst absorbs the first 100 units.
  EXPECT_EQ(bucket.Reserve(0, 100.0), 0);
  // The next 50 units must wait 0.5s of refill.
  Micros wait = bucket.Reserve(0, 50.0);
  EXPECT_NEAR(static_cast<double>(wait), 500000.0, 1000.0);
  // After a refund the deficit shrinks.
  bucket.Refund(50.0);
  EXPECT_EQ(bucket.Reserve(kMicrosPerSecond, 50.0), 0);
}

TEST(CloudKvTest, ReadsAndWritesCompleteWithLatency) {
  SimHarness harness(RuntimeOptions{});
  MemKvStore backing;
  CloudKvOptions opts;
  CloudKvStateStorage cloud(&backing, opts);
  Executor* exec = harness.client_executor();
  auto w = cloud.Write("grain1", "state-bytes", exec);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(w.Ready());
  ASSERT_TRUE(w.Get().value().ok());
  EXPECT_GT(harness.Now(), 0) << "cloud write must take simulated time";
  auto r = cloud.Read("grain1", exec);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(r.Ready());
  EXPECT_EQ(r.Get().value(), "state-bytes");
  auto missing = cloud.Read("nope", exec);
  harness.RunFor(kMicrosPerSecond);
  EXPECT_TRUE(missing.Get().status().IsNotFound());
}

TEST(CloudKvTest, SustainedOverloadThrottles) {
  SimHarness harness(RuntimeOptions{});
  MemKvStore backing;
  CloudKvOptions opts;
  opts.write_units_per_sec = 10;  // Tiny provisioned capacity.
  opts.max_throttle_wait_us = 100 * kMicrosPerMilli;
  CloudKvStateStorage cloud(&backing, opts);
  Executor* exec = harness.client_executor();
  int rejected = 0;
  for (int i = 0; i < 100; ++i) {
    auto w = cloud.Write("g" + std::to_string(i), "x", exec);
    if (w.Ready() && !w.Get().ok()) ++rejected;
  }
  harness.RunFor(10 * kMicrosPerSecond);
  EXPECT_GT(rejected, 50) << "sustained 10x overload must throttle";
  EXPECT_GT(cloud.throttled(), 0);
}

TEST(CloudKvTest, RejectedWritesRefundCapacitySoItRecovers) {
  SimHarness harness(RuntimeOptions{});
  MemKvStore backing;
  CloudKvOptions opts;
  opts.write_units_per_sec = 10;
  opts.max_throttle_wait_us = 100 * kMicrosPerMilli;
  CloudKvStateStorage cloud(&backing, opts);
  Executor* exec = harness.client_executor();

  // Phase 1: sustained 10x overload. Rejected writes must Refund their
  // reservation — otherwise the bucket's deficit would grow by the full
  // offered load and never drain.
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 100; ++i) {
    auto w = cloud.Write("hot" + std::to_string(i), "x", exec);
    if (w.Ready() && !w.Get().ok()) {
      ++rejected;
    } else {
      ++accepted;
    }
  }
  harness.RunFor(10 * kMicrosPerSecond);
  EXPECT_GT(rejected, 50);
  EXPECT_EQ(cloud.throttled(), rejected);

  // Phase 2: after a quiet second the bucket must have recovered enough
  // for a fresh write to be admitted immediately. Without the refunds the
  // accumulated deficit (~90 units at 10 units/s) would throttle for
  // several more seconds.
  harness.RunFor(kMicrosPerSecond);
  int64_t throttled_before = cloud.throttled();
  auto recovered = cloud.Write("after-storm", "x", exec);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(recovered.Ready());
  EXPECT_TRUE(recovered.Get().value().ok())
      << "capacity must recover once rejected reservations are refunded";
  EXPECT_EQ(cloud.throttled(), throttled_before);
  EXPECT_EQ(backing.Get("grain/after-storm").value(), "x");
}

// --- Persistence policies --------------------------------------------------------

struct CounterState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

template <PersistPolicy kPolicy>
class PersistingCounter : public PersistentActor<CounterState> {
 public:
  PersistingCounter()
      : PersistentActor<CounterState>(PersistenceOptions{
            kPolicy, /*window_updates=*/5,
            /*window_interval_us=*/60 * kMicrosPerSecond, "default"}) {}
  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
};

class EveryUpdateCounter
    : public PersistingCounter<PersistPolicy::kOnEveryUpdate> {
 public:
  static constexpr char kTypeName[] = "test.EveryUpdate";
};
class WindowedCounter : public PersistingCounter<PersistPolicy::kWindowed> {
 public:
  static constexpr char kTypeName[] = "test.Windowed";
};
class DeactivateCounter
    : public PersistingCounter<PersistPolicy::kOnDeactivate> {
 public:
  static constexpr char kTypeName[] = "test.OnDeactivate";
};

class PersistencePolicyTest : public ::testing::Test {
 protected:
  PersistencePolicyTest() : harness_(RuntimeOptions{}) {
    harness_.cluster().RegisterActorType<EveryUpdateCounter>();
    harness_.cluster().RegisterActorType<WindowedCounter>();
    harness_.cluster().RegisterActorType<DeactivateCounter>();
    backing_ = std::make_shared<MemKvStore>();
    storage_ = std::make_shared<KvStateStorage>(backing_.get());
    harness_.cluster().RegisterStateStorage("default", storage_);
  }

  int64_t StoredKeys() { return backing_->Count().value(); }

  SimHarness harness_;
  std::shared_ptr<MemKvStore> backing_;
  std::shared_ptr<KvStateStorage> storage_;
};

TEST_F(PersistencePolicyTest, OnEveryUpdateWritesEachTime) {
  auto c = harness_.cluster().Ref<EveryUpdateCounter>("c");
  for (int i = 0; i < 3; ++i) c.Tell(&EveryUpdateCounter::Add, int64_t{1});
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(StoredKeys(), 1);
  // The stored snapshot is already current without any deactivation.
  auto stored = backing_->Get("grain/test.EveryUpdate/c");
  ASSERT_TRUE(stored.ok());
  BufReader r(stored.value());
  CounterState st;
  ASSERT_TRUE(st.Decode(&r).ok());
  EXPECT_EQ(st.value, 3);
}

TEST_F(PersistencePolicyTest, WindowedWritesAfterNUpdates) {
  auto c = harness_.cluster().Ref<WindowedCounter>("c");
  for (int i = 0; i < 4; ++i) c.Tell(&WindowedCounter::Add, int64_t{1});
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(StoredKeys(), 0) << "below the window threshold: no write";
  c.Tell(&WindowedCounter::Add, int64_t{1});  // 5th update hits the window.
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(StoredKeys(), 1);
}

TEST_F(PersistencePolicyTest, OnDeactivateWritesOnlyAtDeactivation) {
  auto c = harness_.cluster().Ref<DeactivateCounter>("c");
  for (int i = 0; i < 50; ++i) c.Tell(&DeactivateCounter::Add, int64_t{1});
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(StoredKeys(), 0);
  auto flushed = harness_.cluster().DeactivateAll();
  harness_.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(flushed.Get().value().ok());
  EXPECT_EQ(StoredKeys(), 1);
  // And the value survives reactivation.
  auto v = c.Call(&DeactivateCounter::Value);
  harness_.RunFor(kMicrosPerSecond);
  EXPECT_EQ(v.Get().value(), 50);
}

// --- FaultyStateStorage: torn writes -----------------------------------------

TEST(FaultyStorageTornWriteTest, TornWriteFailsUnackedAndKeepsPriorSnapshot) {
  SimHarness harness{RuntimeOptions{}};
  Executor* exec = harness.client_executor();
  auto backing = std::make_shared<MemKvStore>();
  auto inner = std::make_shared<KvStateStorage>(backing.get());

  // Establish a durable snapshot through the clean path.
  auto seeded = inner->Write("grain/dst/x", "v1", exec);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(seeded.Ready());
  ASSERT_TRUE(seeded.Get().ok() && seeded.Get().value().ok());

  FaultPlan plan;
  plan.storage.torn_write_prob = 1.0;
  FaultInjector injector(plan);
  FaultyStateStorage faulty(inner, &injector);

  // Every write tears: it must fail un-acked, with a non-transient error
  // (the persistence retry loop must not spin on it — the record is gone).
  auto torn = faulty.Write("grain/dst/x", "v2", exec);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(torn.Ready());
  Result<Status> r = torn.Get();
  Status st = r.ok() ? r.value() : r.status();
  ASSERT_FALSE(st.ok()) << "a torn write must never be acked";
  EXPECT_FALSE(IsTransient(st))
      << "torn writes are not retryable in place: " << st.ToString();
  EXPECT_EQ(injector.torn_writes(), 1);

  // The previous durable snapshot is untouched — recovery dropped only the
  // torn tail record, exactly FileKvStore's contract.
  auto read = faulty.Read("grain/dst/x", exec);
  harness.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(read.Ready());
  ASSERT_TRUE(read.Get().ok()) << read.Get().status().ToString();
  EXPECT_EQ(read.Get().value(), "v1");
}

}  // namespace
}  // namespace aodb
