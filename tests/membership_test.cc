// Membership & automatic failure recovery tests: lease renewal in the
// system store, suspicion votes and quorum eviction of wedged silos,
// gray-failure (suppressed heartbeat) detection, in-flight call failover
// (idempotent re-submission vs Unavailable), deadline propagation through
// nested calls, the caller-side watchdog against a wedged silo, reminder
// restoration after an automatic eviction, and the acceptance scenario —
// a silo wedged WITHOUT Cluster::KillSilo must be declared dead within the
// suspicion window, its actors must reactivate elsewhere with no acked
// write lost, no caller may block past its deadline, and a rerun with the
// same seed must reproduce the exact counters.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "actor/actor_ref.h"
#include "actor/fault.h"
#include "actor/membership.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace {

// --- Actors under test -------------------------------------------------------

struct MbrState {
  int64_t value = 0;
  int64_t reminder_fires = 0;
  void Encode(BufWriter* w) const {
    w->PutSigned(value);
    w->PutSigned(reminder_fires);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&value));
    return r->GetSigned(&reminder_fires);
  }
};

/// Durable counter persisting on every update; its wire-registered read is
/// idempotent (failover re-submits it) and its add is not.
class MbrCounter : public PersistentActor<MbrState> {
 public:
  static constexpr char kTypeName[] = "test.MbrCounter";

  MbrCounter()
      : PersistentActor<MbrState>(PersistenceOptions{
            PersistPolicy::kOnEveryUpdate, 100, 10 * kMicrosPerSecond,
            "default", MakeRetry()}) {}

  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
  int64_t ReminderFires() { return state().reminder_fires; }

  void ReceiveReminder(const std::string&) override {
    ++state().reminder_fires;
    MarkDirty();
  }

 private:
  static RetryPolicy MakeRetry() {
    RetryPolicy p;
    p.max_retries = 10;
    p.initial_backoff_us = 5 * kMicrosPerMilli;
    return p;
  }
};

/// Echoes the absolute deadline of the turn that runs it (0 = none).
class DeadlineEcho : public ActorBase {
 public:
  static constexpr char kTypeName[] = "test.DeadlineEcho";
  int64_t Echo() { return internal::CurrentTurnDeadline(); }
};

/// Relays to a DeadlineEcho, so the nested call must inherit this actor's
/// turn deadline.
class DeadlineRelay : public ActorBase {
 public:
  static constexpr char kTypeName[] = "test.DeadlineRelay";
  Future<int64_t> AskEcho(std::string key) {
    return ctx().Ref<DeadlineEcho>(key).Call(&DeadlineEcho::Echo);
  }
};

void RegisterWireMethods() {
  static const Status st = [] {
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        MbrCounter::kTypeName, &MbrCounter::Add, "MbrCounter.Add"));
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        MbrCounter::kTypeName, &MbrCounter::Value, "MbrCounter.Value",
        /*idempotent=*/true));
    return MethodRegistry::Global().Register(
        MbrCounter::kTypeName, &MbrCounter::ReminderFires,
        "MbrCounter.ReminderFires", /*idempotent=*/true);
  }();
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// --- Fixture -----------------------------------------------------------------

/// Membership config scaled down so the whole detect-and-recover cycle fits
/// a few virtual seconds. Probe ring: with 3 silos and fanout 2, every silo
/// is probed by both of its peers, so quorum 2 is reachable.
RuntimeOptions MembershipOptionsForTest(int num_silos,
                                        bool enable_membership = true) {
  RuntimeOptions o;
  o.num_silos = num_silos;
  o.workers_per_silo = 2;
  o.seed = 42;
  o.membership.enable = enable_membership;
  o.membership.lease_duration_us = kMicrosPerSecond;
  o.membership.heartbeat_period_us = 200 * kMicrosPerMilli;
  o.membership.probe_period_us = 250 * kMicrosPerMilli;
  o.membership.probe_timeout_us = 100 * kMicrosPerMilli;
  o.membership.probe_fanout = 2;
  o.membership.suspect_after_missed = 2;
  o.membership.eviction_quorum = 2;
  o.membership.failover.max_retries = 3;
  o.membership.failover.initial_backoff_us = 10 * kMicrosPerMilli;
  o.default_call_deadline_us = 2 * kMicrosPerSecond;
  return o;
}

class MembershipTest : public ::testing::Test {
 protected:
  explicit MembershipTest(RuntimeOptions options = MembershipOptionsForTest(3))
      : harness_(options, &system_kv_) {
    RegisterWireMethods();
    harness_.cluster().RegisterActorType<MbrCounter>();
    harness_.cluster().RegisterActorType<DeadlineEcho>();
    harness_.cluster().RegisterActorType<DeadlineRelay>();
    storage_ = std::make_shared<KvStateStorage>(&grain_kv_);
    harness_.cluster().RegisterStateStorage("default", storage_);
  }

  template <typename T>
  Result<T> Settle(Future<T> f, Micros run_for = 10 * kMicrosPerSecond) {
    RunUntilReady(harness_, f, run_for);
    EXPECT_TRUE(f.Ready());
    return f.Get();
  }

  /// Activates `count` counters with Add(i + 1) acked, returning their refs.
  std::vector<ActorRef<MbrCounter>> SeedCounters(int count) {
    std::vector<ActorRef<MbrCounter>> refs;
    for (int i = 0; i < count; ++i) {
      refs.push_back(
          harness_.cluster().Ref<MbrCounter>("c" + std::to_string(i)));
      auto v = Settle(refs.back().Call(&MbrCounter::Add, int64_t{i + 1}));
      EXPECT_TRUE(v.ok()) << v.status().ToString();
    }
    // Drain the kOnEveryUpdate storage writes so every ack is durable
    // before any test kills the hosting silo.
    harness_.RunFor(kMicrosPerSecond);
    return refs;
  }

  /// The silo currently hosting counter `key` (must be activated).
  SiloId HostOf(const std::string& key) {
    auto host = harness_.cluster().directory().Lookup(
        ActorId{MbrCounter::kTypeName, key});
    EXPECT_TRUE(host.has_value()) << key << " not activated";
    return host.value_or(0);
  }

  MemKvStore system_kv_;
  MemKvStore grain_kv_;
  SimHarness harness_;
  std::shared_ptr<KvStateStorage> storage_;
};

// --- Lease table -------------------------------------------------------------

TEST_F(MembershipTest, EverySiloMaintainsALiveLeaseRow) {
  harness_.RunFor(2 * kMicrosPerSecond);
  MembershipService* m = harness_.cluster().membership();
  ASSERT_NE(m, nullptr);
  auto rows = system_kv_.List("mbr/lease/");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 3u) << "one lease row per silo";
  for (SiloId i = 0; i < 3; ++i) {
    auto lease = m->ReadLease(i);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_GT(lease.value().expiry_us, harness_.Now())
        << "a heartbeating silo's lease never expires";
    EXPECT_EQ(lease.value().incarnation, 1u);
  }
  // Renewals beyond the initial write prove the heartbeat loops are alive.
  EXPECT_GT(m->stats().lease_renewals, 3);
  EXPECT_GT(m->stats().probes_sent, 0);
  EXPECT_EQ(m->stats().evictions, 0) << "healthy cluster, no suspicion";
}

// --- Directory sentinel (RandomLive regression) ------------------------------

TEST_F(MembershipTest, AllSilosDeadFailsNewPlacementUnavailable) {
  SimHarness dead(MembershipOptionsForTest(2, /*enable_membership=*/false));
  dead.cluster().RegisterActorType<MbrCounter>();
  dead.cluster().KillSilo(0);
  dead.cluster().KillSilo(1);
  // A NEVER-placed actor: placement must return the kNoSilo sentinel and
  // the cluster must convert it to Unavailable instead of indexing silos_[-2].
  auto f = dead.cluster().Ref<MbrCounter>("fresh").Call(&MbrCounter::Value);
  dead.RunFor(kMicrosPerSecond);
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Get().status().IsUnavailable())
      << f.Get().status().ToString();
  EXPECT_GE(dead.cluster().cluster_counters().no_live_silo_rejects, 1);
}

// --- In-flight call failover -------------------------------------------------

TEST_F(MembershipTest, IdempotentCallFailsOverAcrossEviction) {
  auto refs = SeedCounters(6);
  // Pick a counter on a condemned silo so its pending call must fail over.
  SiloId victim = HostOf("c0");
  int idx = 0;
  auto pre = harness_.cluster().cluster_counters();
  // The read is in flight (tracked as pending) when the silo is evicted.
  auto read = refs[idx].Call(&MbrCounter::Value);
  harness_.cluster().EvictSilo(victim, "test");
  auto v = Settle(read);
  ASSERT_TRUE(v.ok()) << v.status().ToString()
                      << " (idempotent reads must be re-submitted)";
  EXPECT_EQ(v.value(), idx + 1) << "re-read from persisted state elsewhere";
  auto post = harness_.cluster().cluster_counters();
  EXPECT_GE(post.failover_resubmitted - pre.failover_resubmitted, 1);
  EXPECT_GE(post.auto_evictions - pre.auto_evictions, 1);
}

TEST_F(MembershipTest, NonIdempotentCallFailsUnavailableOnEviction) {
  auto refs = SeedCounters(6);
  SiloId victim = HostOf("c1");
  auto pre = harness_.cluster().cluster_counters();
  auto add = refs[1].Call(&MbrCounter::Add, int64_t{100});
  harness_.cluster().EvictSilo(victim, "test");
  auto v = Settle(add);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsUnavailable()) << v.status().ToString();
  auto post = harness_.cluster().cluster_counters();
  EXPECT_GE(post.failover_failed - pre.failover_failed, 1);
  // The add did NOT run twice nor once-after-failure: the counter still
  // reads its seed value from persisted state on a live silo.
  auto value = Settle(refs[1].Call(&MbrCounter::Value));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 2);
}

TEST_F(MembershipTest, AnnouncedKillIsNotCountedAsAutoEviction) {
  SeedCounters(3);
  auto pre = harness_.cluster().cluster_counters();
  harness_.cluster().KillSilo(2);
  auto post = harness_.cluster().cluster_counters();
  EXPECT_EQ(post.auto_evictions, pre.auto_evictions)
      << "KillSilo is announced; only the failure detector bumps this";
}

// --- Deadlines ---------------------------------------------------------------

TEST_F(MembershipTest, CallAgainstWedgedSiloTimesOutAtDeadline) {
  // Membership disabled: nothing will ever evict the wedged silo, so ONLY
  // the caller-side watchdog can settle the promise.
  SimHarness wedged(MembershipOptionsForTest(2, /*enable_membership=*/false));
  wedged.cluster().RegisterActorType<MbrCounter>();
  MemKvStore grain_kv;
  wedged.cluster().RegisterStateStorage(
      "default", std::make_shared<KvStateStorage>(&grain_kv));
  auto c = wedged.cluster().Ref<MbrCounter>("c");
  auto warm = c.Call(&MbrCounter::Add, int64_t{1});
  RunUntilReady(wedged, warm, 10 * kMicrosPerSecond);
  ASSERT_TRUE(warm.Ready() && warm.Get().ok());

  SiloId victim = wedged.cluster()
                      .directory()
                      .Lookup(ActorId{MbrCounter::kTypeName, "c"})
                      .value_or(0);
  wedged.cluster().silo(victim)->SetWedged(true);
  CallOptions opts;
  opts.timeout_us = 500 * kMicrosPerMilli;
  Micros sent_at = wedged.Now();
  auto f = c.CallWith(opts, &MbrCounter::Value);
  RunUntilReady(wedged, f, 2 * kMicrosPerSecond);
  ASSERT_TRUE(f.Ready()) << "the watchdog must settle the promise";
  EXPECT_TRUE(f.Get().status().IsTimeout()) << f.Get().status().ToString();
  EXPECT_LE(wedged.Now(), sent_at + 600 * kMicrosPerMilli)
      << "settled at (about) the deadline, not later";
  EXPECT_GE(wedged.cluster().cluster_counters().deadline_timeouts, 1);
}

TEST_F(MembershipTest, NestedCallInheritsCallerDeadline) {
  CallOptions opts;
  opts.timeout_us = 5 * kMicrosPerSecond;
  Micros sent_at = harness_.Now();
  auto relay = harness_.cluster().Ref<DeadlineRelay>("relay");
  auto echoed = Settle(relay.CallWith(opts, &DeadlineRelay::AskEcho,
                                      std::string("echo")));
  ASSERT_TRUE(echoed.ok()) << echoed.status().ToString();
  EXPECT_EQ(echoed.value(), sent_at + opts.timeout_us)
      << "the inner turn runs under the outer call's absolute deadline";
}

TEST_F(MembershipTest, DefaultDeadlineAppliesWhenNoTimeoutGiven) {
  Micros sent_at = harness_.Now();
  auto echoed = Settle(harness_.cluster().Ref<DeadlineEcho>("e").Call(
      &DeadlineEcho::Echo));
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed.value(),
            sent_at + harness_.cluster().options().default_call_deadline_us);
}

// --- Reminder restoration ----------------------------------------------------

TEST_F(MembershipTest, ReminderSurvivesAutomaticEviction) {
  auto refs = SeedCounters(3);
  SiloId victim = HostOf("c0");
  ActorId id{MbrCounter::kTypeName, "c0"};
  ASSERT_TRUE(harness_.cluster()
                  .RegisterReminder(id, "tick", 300 * kMicrosPerMilli)
                  .ok());
  harness_.RunFor(2 * kMicrosPerSecond);
  auto before = Settle(refs[0].Call(&MbrCounter::ReminderFires));
  ASSERT_TRUE(before.ok());
  EXPECT_GT(before.value(), 0) << "reminder must fire while healthy";

  auto pre = harness_.cluster().cluster_counters();
  harness_.cluster().silo(victim)->SetWedged(true);
  ASSERT_TRUE(RunUntilTrue(
      harness_, [&] { return !harness_.cluster().SiloAlive(victim); },
      15 * kMicrosPerSecond))
      << "failure detector must evict the wedged silo";
  auto post = harness_.cluster().cluster_counters();
  EXPECT_GE(post.auto_evictions - pre.auto_evictions, 1);
  // Reminder ticks swallowed by the wedge had no failure hook: they are
  // the dead letters the eviction log line counts.
  EXPECT_GT(post.dead_letters, pre.dead_letters);

  // The reminder schedule outlives the silo: the next tick reactivates the
  // actor on a live node from its persisted snapshot and keeps counting.
  harness_.RunFor(3 * kMicrosPerSecond);
  auto after = Settle(refs[0].Call(&MbrCounter::ReminderFires));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GT(after.value(), before.value())
      << "reminder fires must resume after re-placement";
  auto value = Settle(refs[0].Call(&MbrCounter::Value));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 1) << "acked write survived the eviction";
}

// --- Gray failure ------------------------------------------------------------

TEST_F(MembershipTest, GrayFailingSiloIsEvictedWhileStillServing) {
  auto refs = SeedCounters(6);
  SiloId victim = HostOf("c3");
  MembershipService* m = harness_.cluster().membership();
  ASSERT_NE(m, nullptr);

  FaultPlan plan;
  plan.wedges.push_back(SiloWedgeEvent{/*at_us=*/100 * kMicrosPerMilli,
                                       victim, /*suppress_only=*/true});
  FaultInjector injector(plan);
  injector.Arm(&harness_.cluster());
  harness_.RunFor(300 * kMicrosPerMilli);
  ASSERT_TRUE(m->Suppressed(victim));

  // The defining property of a gray failure: the silo still answers
  // application calls even though its membership agent is dark.
  auto during = Settle(refs[3].Call(&MbrCounter::Value));
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_EQ(during.value(), 4);

  ASSERT_TRUE(RunUntilTrue(
      harness_, [&] { return !harness_.cluster().SiloAlive(victim); },
      15 * kMicrosPerSecond))
      << "silent membership agent must still get the silo evicted";
  EXPECT_GE(m->stats().suspicions_filed, 2);
  EXPECT_GT(m->LastEvictionAt(victim), 0);

  // And the actor lives on elsewhere.
  auto after = Settle(refs[3].Call(&MbrCounter::Value));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value(), 4);
}

// --- Asymmetric partition ----------------------------------------------------

TEST_F(MembershipTest, AsymmetricPartitionDoesNotEvictAHealthySilo) {
  auto refs = SeedCounters(6);
  MembershipService* m = harness_.cluster().membership();
  ASSERT_NE(m, nullptr);

  // Sever ONLY silo 0 -> silo 1: silo 0's probes (and probe acks riding the
  // reverse path) die, so silo 0 files a suspicion against silo 1. But
  // silo 1 is healthy — it heartbeats its lease, answers silo 2's probes,
  // and serves traffic. One gray link must not get it killed: eviction
  // needs a quorum of independent suspectors (or a dead lease), and this
  // view has exactly one.
  harness_.cluster().network().SetPartitioned(0, 1, true);
  harness_.RunFor(6 * kMicrosPerSecond);

  EXPECT_GT(m->stats().probes_missed, 0)
      << "the severed link must actually eat probes";
  EXPECT_GT(m->stats().suspicions_filed, 0)
      << "silo 0 must suspect the silo it cannot reach";
  EXPECT_EQ(m->stats().evictions, 0)
      << "a single suspector must never evict a lease-holding silo";
  for (SiloId i = 0; i < 3; ++i) {
    EXPECT_TRUE(harness_.cluster().SiloAlive(i))
        << "silo " << i << " wrongly declared dead — views diverged";
    auto lease = m->ReadLease(i);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_GT(lease.value().expiry_us, harness_.Now())
        << "silo " << i << " must still be renewing its lease";
  }

  // The partitioned link carries application traffic too, but every actor
  // stays reachable: calls route via the directory, and retries/failover
  // cover the severed pairs. Spot-check a few counters end to end.
  for (int i = 0; i < 6; ++i) {
    auto v = Settle(refs[i].Call(&MbrCounter::Value));
    ASSERT_TRUE(v.ok()) << "c" << i << ": " << v.status().ToString();
    EXPECT_EQ(v.value(), i + 1);
  }

  // Heal the link: the prober's standing vote is withdrawn, and the view
  // converges back to fully-healthy with no eviction ever having fired.
  harness_.cluster().network().SetPartitioned(0, 1, false);
  harness_.RunFor(4 * kMicrosPerSecond);
  EXPECT_GT(m->stats().suspicions_withdrawn, 0)
      << "healed link must retract the standing suspicion vote";
  EXPECT_EQ(m->stats().evictions, 0);
  for (SiloId i = 0; i < 3; ++i) {
    EXPECT_TRUE(harness_.cluster().SiloAlive(i));
  }
}

TEST_F(MembershipTest, RestartBumpsIncarnationAndRenewsLease) {
  MembershipService* m = harness_.cluster().membership();
  ASSERT_NE(m, nullptr);
  harness_.cluster().silo(1)->SetWedged(true);
  ASSERT_TRUE(RunUntilTrue(
      harness_, [&] { return !harness_.cluster().SiloAlive(1); },
      15 * kMicrosPerSecond));
  harness_.cluster().RestartSilo(1);
  EXPECT_TRUE(harness_.cluster().SiloAlive(1));
  EXPECT_EQ(m->Incarnation(1), 2u) << "a rejoin is a new incarnation";
  EXPECT_EQ(m->SuspicionCount(1), 0) << "rejoin starts with a clean slate";
  auto lease = m->ReadLease(1);
  ASSERT_TRUE(lease.ok());
  EXPECT_GT(lease.value().expiry_us, harness_.Now());
  // Healthy again: no further eviction within another suspicion window.
  Micros evicted_at = m->LastEvictionAt(1);
  harness_.RunFor(3 * kMicrosPerSecond);
  EXPECT_TRUE(harness_.cluster().SiloAlive(1));
  EXPECT_EQ(m->LastEvictionAt(1), evicted_at);
}

// --- The acceptance scenario -------------------------------------------------

/// Everything one wedge-convergence run produces that a rerun with the same
/// seed must reproduce exactly.
struct WedgeOutcome {
  Micros detection_latency_us = 0;
  int64_t auto_evictions = 0;
  int64_t dead_letters = 0;
  int64_t deadline_timeouts = 0;
  int64_t failover_resubmitted = 0;
  int64_t failover_failed = 0;
  int64_t suspicions_filed = 0;
  int64_t ok_during_outage = 0;
  int64_t timed_out_during_outage = 0;
  std::vector<int64_t> final_values;
};

WedgeOutcome RunWedgeConvergence() {
  MemKvStore system_kv;
  MemKvStore grain_kv;
  SimHarness harness(MembershipOptionsForTest(3), &system_kv);
  Cluster& cluster = harness.cluster();
  RegisterWireMethods();
  cluster.RegisterActorType<MbrCounter>();
  cluster.RegisterStateStorage(
      "default", std::make_shared<KvStateStorage>(&grain_kv));

  // Ack one durable write per counter on a healthy cluster.
  constexpr int kCounters = 9;
  std::vector<ActorRef<MbrCounter>> refs;
  for (int i = 0; i < kCounters; ++i) {
    refs.push_back(cluster.Ref<MbrCounter>("w" + std::to_string(i)));
    auto f = refs.back().Call(&MbrCounter::Add, int64_t{i + 1});
    RunUntilReady(harness, f, 10 * kMicrosPerSecond);
    EXPECT_TRUE(f.Ready() && f.Get().ok());
  }

  // The silo dies WITHOUT KillSilo: a wedge scheduled by the fault plan.
  constexpr SiloId kVictim = 1;
  const Micros wedge_at = harness.Now() + 500 * kMicrosPerMilli;
  FaultPlan plan;
  plan.seed = 7;
  plan.wedges.push_back(
      SiloWedgeEvent{500 * kMicrosPerMilli, kVictim, false});
  FaultInjector injector(plan);
  injector.Arm(&cluster);
  harness.RunFor(600 * kMicrosPerMilli);
  EXPECT_TRUE(cluster.silo(kVictim)->wedged());
  EXPECT_TRUE(cluster.SiloAlive(kVictim)) << "a wedge is unannounced";

  // Keep calling through the outage (default 2 s deadline). Reads against
  // the wedged silo either time out or fail over once the eviction lands;
  // nobody may block past the deadline.
  std::vector<Future<int64_t>> outage_reads;
  for (int i = 0; i < kCounters; ++i) {
    outage_reads.push_back(refs[i].Call(&MbrCounter::Value));
  }

  // Convergence: the detector must declare the silo dead on its own.
  WedgeOutcome out;
  EXPECT_TRUE(RunUntilTrue(
      harness, [&] { return !cluster.SiloAlive(kVictim); },
      15 * kMicrosPerSecond))
      << "wedged silo never evicted";
  MembershipService* m = cluster.membership();
  out.detection_latency_us = m->LastEvictionAt(kVictim) - wedge_at;
  EXPECT_GT(out.detection_latency_us, 0);
  EXPECT_LT(out.detection_latency_us, 5 * kMicrosPerSecond)
      << "detection must land within the suspicion window";

  // Every outage call settles by its deadline.
  harness.RunFor(3 * kMicrosPerSecond);
  for (auto& f : outage_reads) {
    EXPECT_TRUE(f.Ready()) << "caller blocked past its deadline";
    if (!f.Ready()) continue;
    if (f.Get().ok()) {
      ++out.ok_during_outage;
    } else {
      EXPECT_TRUE(f.Get().status().IsTimeout() ||
                  f.Get().status().IsUnavailable())
          << f.Get().status().ToString();
      ++out.timed_out_during_outage;
    }
  }

  // No acked write lost: every counter reads back its persisted value from
  // a live silo.
  for (int i = 0; i < kCounters; ++i) {
    auto f = refs[i].Call(&MbrCounter::Value);
    RunUntilReady(harness, f, 10 * kMicrosPerSecond);
    EXPECT_TRUE(f.Ready() && f.Get().ok())
        << (f.Ready() ? f.Get().status().ToString() : "pending");
    out.final_values.push_back(f.Ready() && f.Get().ok() ? f.Get().value()
                                                         : -1);
    EXPECT_EQ(out.final_values.back(), i + 1) << "acked write lost: w" << i;
  }

  auto counters = cluster.cluster_counters();
  out.auto_evictions = counters.auto_evictions;
  out.dead_letters = counters.dead_letters;
  out.deadline_timeouts = counters.deadline_timeouts;
  out.failover_resubmitted = counters.failover_resubmitted;
  out.failover_failed = counters.failover_failed;
  out.suspicions_filed = m->stats().suspicions_filed;
  return out;
}

TEST(MembershipAcceptanceTest, WedgedSiloConvergesAndRerunIsDeterministic) {
  WedgeOutcome first = RunWedgeConvergence();
  EXPECT_EQ(first.auto_evictions, 1);
  EXPECT_GE(first.suspicions_filed, 2) << "quorum needs two voters";
  EXPECT_EQ(static_cast<int>(first.final_values.size()), 9);
  EXPECT_EQ(first.ok_during_outage + first.timed_out_during_outage, 9);
  EXPECT_GT(first.ok_during_outage, 0)
      << "reads against live silos (and failed-over reads) succeed";

  WedgeOutcome second = RunWedgeConvergence();
  EXPECT_EQ(first.detection_latency_us, second.detection_latency_us);
  EXPECT_EQ(first.auto_evictions, second.auto_evictions);
  EXPECT_EQ(first.dead_letters, second.dead_letters);
  EXPECT_EQ(first.deadline_timeouts, second.deadline_timeouts);
  EXPECT_EQ(first.failover_resubmitted, second.failover_resubmitted);
  EXPECT_EQ(first.failover_failed, second.failover_failed);
  EXPECT_EQ(first.suspicions_filed, second.suspicions_filed);
  EXPECT_EQ(first.ok_during_outage, second.ok_during_outage);
  EXPECT_EQ(first.final_values, second.final_values);
}

// --- Real mode (thread pools; exercised under TSan) --------------------------

TEST(MembershipRealModeTest, WedgedSiloIsEvictedOnRealThreadPools) {
  RuntimeOptions o;
  o.num_silos = 3;
  o.workers_per_silo = 2;
  o.membership.enable = true;
  o.membership.lease_duration_us = 200 * kMicrosPerMilli;
  o.membership.heartbeat_period_us = 20 * kMicrosPerMilli;
  o.membership.probe_period_us = 20 * kMicrosPerMilli;
  o.membership.probe_timeout_us = 10 * kMicrosPerMilli;
  o.membership.suspect_after_missed = 2;
  o.membership.eviction_quorum = 2;
  // Keep the real-mode network fast so probes beat their timeout.
  o.network.silo_latency_us = 100;
  o.network.jitter_us = 50;
  MemKvStore system_kv;
  RealClusterHandle handle(o, &system_kv);
  Cluster& cluster = handle.cluster();

  // Let a few heartbeats land, then wedge one silo and wait for eviction.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(cluster.membership()->ReadLease(0).ok());
  cluster.silo(1)->SetWedged(true);
  bool evicted = false;
  for (int i = 0; i < 500; ++i) {
    if (!cluster.SiloAlive(1)) {
      evicted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(evicted) << "failure detector never evicted the wedged silo";
  EXPECT_GE(cluster.cluster_counters().auto_evictions, 1);
  handle.Shutdown();
}

}  // namespace
}  // namespace aodb
