// Tests of the future/promise machinery underpinning every actor call:
// fulfillment semantics, continuations, composition, error propagation,
// and multi-threaded races.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "actor/future.h"

namespace aodb {
namespace {

TEST(FutureTest, FromValueIsImmediatelyReady) {
  auto f = Future<int>::FromValue(7);
  EXPECT_TRUE(f.Ready());
  EXPECT_EQ(f.Get().value(), 7);
}

TEST(FutureTest, FromErrorCarriesStatus) {
  auto f = Future<int>::FromError(Status::NotFound("x"));
  ASSERT_TRUE(f.Ready());
  EXPECT_FALSE(f.Get().ok());
  EXPECT_TRUE(f.Get().status().IsNotFound());
}

TEST(FutureTest, PromiseFulfillsAllCopies) {
  Promise<std::string> p;
  Future<std::string> f1 = p.GetFuture();
  Future<std::string> f2 = f1;  // Copies share state.
  p.SetValue("hello");
  EXPECT_EQ(f1.Get().value(), "hello");
  EXPECT_EQ(f2.Get().value(), "hello");
}

TEST(FutureTest, FirstFulfillmentWins) {
  Promise<int> p;
  p.SetValue(1);
  p.SetValue(2);
  p.SetError(Status::Internal("late"));
  EXPECT_EQ(p.GetFuture().Get().value(), 1);
}

TEST(FutureTest, CallbackBeforeFulfillmentRunsOnSet) {
  Promise<int> p;
  int seen = 0;
  p.GetFuture().OnReady([&seen](Result<int>&& r) { seen = r.value(); });
  EXPECT_EQ(seen, 0);
  p.SetValue(42);
  EXPECT_EQ(seen, 42);
}

TEST(FutureTest, CallbackAfterFulfillmentRunsInline) {
  auto f = Future<int>::FromValue(9);
  int seen = 0;
  f.OnReady([&seen](Result<int>&& r) { seen = r.value(); });
  EXPECT_EQ(seen, 9);
}

TEST(FutureTest, MultipleCallbacksAllFire) {
  Promise<int> p;
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    p.GetFuture().OnReady([&count](Result<int>&&) { ++count; });
  }
  p.SetValue(1);
  EXPECT_EQ(count.load(), 10);
}

TEST(FutureTest, ThenMapsValues) {
  Promise<int> p;
  auto f = p.GetFuture()
               .Then([](int v) { return v * 2; })
               .Then([](int v) { return std::to_string(v); });
  p.SetValue(21);
  EXPECT_EQ(f.Get().value(), "42");
}

TEST(FutureTest, ThenPropagatesErrorsWithoutInvokingFn) {
  Promise<int> p;
  bool invoked = false;
  auto f = p.GetFuture().Then([&invoked](int v) {
    invoked = true;
    return v;
  });
  p.SetError(Status::Timeout("t"));
  EXPECT_FALSE(invoked);
  EXPECT_TRUE(f.Get().status().IsTimeout());
}

TEST(FutureTest, GetForTimesOut) {
  Promise<int> p;
  auto r = p.GetFuture().GetFor(2000);  // 2 ms.
  EXPECT_TRUE(r.status().IsTimeout());
  p.SetValue(5);
  EXPECT_EQ(p.GetFuture().GetFor(1000000).value(), 5);
}

TEST(FutureTest, UnitFuturesWork) {
  Promise<Unit> p;
  auto f = p.GetFuture();
  p.SetValue(Unit{});
  EXPECT_TRUE(f.Get().ok());
}

TEST(WhenAllTest, EmptyInputCompletesImmediately) {
  auto f = WhenAll(std::vector<Future<int>>{});
  ASSERT_TRUE(f.Ready());
  EXPECT_TRUE(f.Get().value().empty());
}

TEST(WhenAllTest, PreservesIndexAlignment) {
  std::vector<Promise<int>> promises(5);
  std::vector<Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.GetFuture());
  auto all = WhenAll(futures);
  // Fulfill out of order.
  promises[3].SetValue(3);
  promises[0].SetValue(0);
  promises[4].SetValue(4);
  promises[1].SetValue(1);
  EXPECT_FALSE(all.Ready());
  promises[2].SetValue(2);
  ASSERT_TRUE(all.Ready());
  auto results = all.Get().value();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i].value(), i);
  }
}

TEST(WhenAllTest, MixedSuccessAndErrorAreBothDelivered) {
  std::vector<Promise<int>> promises(3);
  std::vector<Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.GetFuture());
  auto all = WhenAll(futures);
  promises[0].SetValue(10);
  promises[1].SetError(Status::Aborted("boom"));
  promises[2].SetValue(30);
  auto results = all.Get().value();
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[1].status().IsAborted());
  EXPECT_TRUE(results[2].ok());
}

TEST(FutureThreadedTest, ConcurrentFulfillAndWait) {
  for (int round = 0; round < 50; ++round) {
    Promise<int> p;
    auto f = p.GetFuture();
    std::thread setter([&p, round] { p.SetValue(round); });
    EXPECT_EQ(f.Get().value(), round);
    setter.join();
  }
}

TEST(FutureThreadedTest, RacingSettersExactlyOneWins) {
  for (int round = 0; round < 20; ++round) {
    Promise<int> p;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&p, t] { p.SetValue(t); });
    }
    int v = p.GetFuture().Get().value();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
    for (auto& t : threads) t.join();
    // The winner's value must be stable afterwards.
    EXPECT_EQ(p.GetFuture().Get().value(), v);
  }
}

TEST(FutureThreadedTest, CallbacksFromManyThreadsAllFire) {
  Promise<int> p;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&p, &fired] {
      for (int i = 0; i < 100; ++i) {
        p.GetFuture().OnReady([&fired](Result<int>&&) { ++fired; });
      }
    });
  }
  p.SetValue(1);
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), 800);
}

// --- Promise-leak detection --------------------------------------------------

TEST(PromiseLeakTest, DroppedContinuationIsCounted) {
  const int64_t base = PromisesLeaked();
  {
    Promise<int> p;
    Future<int> f = p.GetFuture();
    f.OnReady([](Result<int>&&) { FAIL() << "never fulfilled"; });
    // p and f die here with a continuation attached and no result set:
    // someone was waiting and nobody ever answered.
  }
  EXPECT_EQ(PromisesLeaked() - base, 1);
}

TEST(PromiseLeakTest, FulfilledPromiseIsNotALeak) {
  const int64_t base = PromisesLeaked();
  {
    Promise<int> p;
    Future<int> f = p.GetFuture();
    int got = 0;
    f.OnReady([&got](Result<int>&& r) { got = r.value(); });
    p.SetValue(42);
    EXPECT_EQ(got, 42);
  }
  {
    // An error is still an answer — the waiter heard back.
    Promise<int> p;
    Future<int> f = p.GetFuture();
    f.OnReady([](Result<int>&&) {});
    p.SetError(Status::Timeout("late"));
  }
  EXPECT_EQ(PromisesLeaked() - base, 0);
}

TEST(PromiseLeakTest, AbandonedFutureWithoutWaiterIsNotALeak) {
  const int64_t base = PromisesLeaked();
  {
    // Futures are routinely dropped on purpose (fire-and-forget Tell
    // plumbing); with no continuation registered, nobody was waiting.
    Promise<int> p;
    Future<int> f = p.GetFuture();
  }
  EXPECT_EQ(PromisesLeaked() - base, 0);
}

}  // namespace
}  // namespace aodb
