// Micro-benchmarks of the storage substrate (real wall-clock time): KV
// stores, the persistent log-structured store, the binary codec, CRC32C,
// and the latency histogram.

#include <filesystem>

#include <benchmark/benchmark.h>

#include "common/codec.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "shm/channel_actor.h"
#include "storage/file_kv.h"
#include "storage/mem_kv.h"

namespace aodb {
namespace {

void BM_MemKvPut(benchmark::State& state) {
  MemKvStore kv;
  Rng rng(1);
  std::string value(128, 'v');
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv.Put("key" + std::to_string(i++ % 10000), value));
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_MemKvPut);

void BM_MemKvGet(benchmark::State& state) {
  MemKvStore kv;
  std::string value(128, 'v');
  for (int i = 0; i < 10000; ++i) {
    (void)kv.Put("key" + std::to_string(i), value);
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Get("key" + std::to_string(i++ % 10000)));
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_MemKvGet);

void BM_FileKvPut(benchmark::State& state) {
  auto dir = std::filesystem::temp_directory_path() / "aodb_bench_filekv";
  std::filesystem::remove_all(dir);
  auto kv = std::move(FileKvStore::Open(dir.string()).value());
  std::string value(static_cast<size_t>(state.range(0)), 'v');
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kv->Put("key" + std::to_string(i++ % 1000), value));
  }
  state.SetBytesProcessed(i * state.range(0));
  kv->Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FileKvPut)->Arg(128)->Arg(4096);

void BM_ChannelStateEncodeDecode(benchmark::State& state) {
  shm::ChannelState channel;
  channel.config.org_key = "org-1";
  channel.config.aggregator_key = "agg-1";
  Rng rng(3);
  for (int i = 0; i < 1024; ++i) {
    channel.window.push_back(
        shm::DataPoint{i * 1000, rng.Normal(0, 1)});
  }
  channel.accumulated_change = 123.0;
  channel.total_points = 99999;
  for (auto _ : state) {
    BufWriter w;
    channel.Encode(&w);
    shm::ChannelState decoded;
    BufReader r(w.data());
    benchmark::DoNotOptimize(decoded.Decode(&r));
  }
}
BENCHMARK(BM_ChannelStateEncodeDecode);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(9);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextBelow(10000000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(10000000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Percentile(99.9));
  }
}
BENCHMARK(BM_HistogramPercentile);

}  // namespace
}  // namespace aodb

BENCHMARK_MAIN();
