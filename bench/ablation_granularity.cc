// Ablation: meat cuts as actors vs non-actor object versions (paper §4.3).
//
// The paper's trade-off: modeling frequently-accessed inanimate entities
// (meat cuts) as actors makes every read a cross-actor message; modeling
// them as versioned objects embedded in the responsible actor obviates
// communication at the price of copying on transfer and data redundancy.
// This bench pushes N cows x 4 cuts through slaughter -> distributor ->
// retailer in both models, then audits (reads) every cut K times at the
// retailer, and reports virtual completion time and messages processed.

#include <cstdio>

#include "cattle/platform.h"
#include "common/table_printer.h"
#include "shm_bench_util.h"  // For BenchDurationUs-style env handling only.
#include "sim/sim_harness.h"

namespace aodb::bench {
namespace {

using namespace aodb::cattle;

struct ModelResult {
  Micros transfer_time = 0;
  Micros audit_time = 0;
  int64_t messages = 0;
  bool ok = false;
};

constexpr int kCows = 50;
constexpr int kCutsPerCow = 4;
constexpr int kAuditRounds = 20;

ModelResult RunActorModel() {
  ModelResult out;
  RuntimeOptions runtime;
  runtime.num_silos = 4;
  runtime.workers_per_silo = 2;
  runtime.seed = 31;
  SimHarness harness(runtime);
  CattlePlatform::RegisterTypes(harness.cluster());
  CattlePlatform platform(&harness.cluster());

  std::vector<std::string> all_cuts;
  for (int i = 0; i < kCows; ++i) {
    platform.RegisterCow(CattlePlatform::CowKey(i), "farm-0", "Angus");
  }
  harness.RunFor(60 * kMicrosPerSecond);
  Micros t0 = harness.Now();
  std::vector<Future<std::vector<std::string>>> cut_futures;
  for (int i = 0; i < kCows; ++i) {
    cut_futures.push_back(platform.SlaughterAndCut(
        "sh-0", CattlePlatform::CowKey(i), "farm-0", kCutsPerCow));
  }
  for (auto& f : cut_futures) {
    if (!RunUntilReady(harness, f, 600 * kMicrosPerSecond)) return out;
    auto r = f.Get();
    if (!r.ok()) return out;
    for (auto& k : r.value()) all_cuts.push_back(k);
  }
  // Ship everything to one retailer through one distributor.
  auto shipped = platform.ShipCuts("dist-0", "shop-0", all_cuts, "src",
                                   "dst");
  if (!RunUntilReady(harness, shipped, 600 * kMicrosPerSecond) ||
      !shipped.Get().value_or(Status::Internal("")).ok()) {
    return out;
  }
  out.transfer_time = harness.Now() - t0;

  int64_t msgs_before = harness.cluster().TotalMessagesProcessed();
  Micros a0 = harness.Now();
  auto audit = harness.cluster().Ref<RetailerActor>("shop-0").Call(
      &RetailerActor::AuditCutsRemote, all_cuts, kAuditRounds);
  if (!RunUntilReady(harness, audit, 600 * kMicrosPerSecond, kMicrosPerMilli)) {
    return out;
  }
  out.audit_time = harness.Now() - a0;
  out.messages = harness.cluster().TotalMessagesProcessed() - msgs_before;
  out.ok = true;
  return out;
}

ModelResult RunObjectModel() {
  ModelResult out;
  RuntimeOptions runtime;
  runtime.num_silos = 4;
  runtime.workers_per_silo = 2;
  runtime.seed = 31;
  SimHarness harness(runtime);
  CattlePlatform::RegisterTypes(harness.cluster());
  CattlePlatform platform(&harness.cluster());

  auto sh = harness.cluster().Ref<SlaughterhouseActor>("sh-0");
  for (int i = 0; i < kCows; ++i) {
    platform.RegisterCow(CattlePlatform::CowKey(i), "farm-0", "Angus");
  }
  harness.RunFor(60 * kMicrosPerSecond);
  Micros t0 = harness.Now();
  std::vector<std::string> all_cuts;
  std::vector<Future<std::vector<std::string>>> cut_futures;
  for (int i = 0; i < kCows; ++i) {
    sh.Call(&SlaughterhouseActor::Slaughter, CattlePlatform::CowKey(i));
    cut_futures.push_back(
        sh.Call(&SlaughterhouseActor::CreateCutsLocal,
                CattlePlatform::CowKey(i), std::string("farm-0"),
                kCutsPerCow));
  }
  for (auto& f : cut_futures) {
    if (!RunUntilReady(harness, f, 600 * kMicrosPerSecond)) return out;
    auto r = f.Get();
    if (!r.ok()) return out;
    for (auto& k : r.value()) all_cuts.push_back(k);
  }
  auto to_dist = sh.Call(&SlaughterhouseActor::TransferCutsTo,
                         std::string("dist-0"), all_cuts, std::string("src"));
  if (!RunUntilReady(harness, to_dist, 600 * kMicrosPerSecond) ||
      !to_dist.Get().value_or(Status::Internal("")).ok()) {
    return out;
  }
  auto to_shop = harness.cluster()
                     .Ref<DistributorActor>("dist-0")
                     .Call(&DistributorActor::TransferCutsToRetailer,
                           std::string("shop-0"), all_cuts,
                           std::string("dst"));
  if (!RunUntilReady(harness, to_shop, 600 * kMicrosPerSecond) ||
      !to_shop.Get().value_or(Status::Internal("")).ok()) {
    return out;
  }
  out.transfer_time = harness.Now() - t0;

  int64_t msgs_before = harness.cluster().TotalMessagesProcessed();
  Micros a0 = harness.Now();
  // Fair CPU accounting: the one local audit message is charged the same
  // per-read cost as the remote model's per-message cost floor.
  CallOptions opts;
  opts.cost_us = kCostLocalRead * kAuditRounds *
                 static_cast<Micros>(all_cuts.size());
  auto audit = harness.cluster().Ref<RetailerActor>("shop-0").CallWith(
      opts, &RetailerActor::AuditCutsLocal, all_cuts, kAuditRounds);
  if (!RunUntilReady(harness, audit, 600 * kMicrosPerSecond, kMicrosPerMilli)) {
    return out;
  }
  out.audit_time = harness.Now() - a0;
  out.messages = harness.cluster().TotalMessagesProcessed() - msgs_before;
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace aodb::bench

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf(
      "=== Ablation: meat cuts as actors vs non-actor object versions "
      "(paper §4.3) ===\n");
  std::printf("%d cows x %d cuts through the chain; %d audit reads per cut "
              "at the retailer\n\n",
              50, 4, 20);

  ModelResult actor_model = RunActorModel();
  ModelResult object_model = RunObjectModel();
  if (!actor_model.ok || !object_model.ok) {
    std::fprintf(stderr, "a model run failed\n");
    return 1;
  }
  TablePrinter table({"model", "chain transfer (ms)", "audit time (ms)",
                      "audit messages"});
  table.AddRow({"cuts as actors (Fig. 3)",
                TablePrinter::FmtMsFromUs(actor_model.transfer_time),
                TablePrinter::FmtMsFromUs(actor_model.audit_time),
                TablePrinter::Fmt(actor_model.messages)});
  table.AddRow({"cuts as object versions (Fig. 5)",
                TablePrinter::FmtMsFromUs(object_model.transfer_time),
                TablePrinter::FmtMsFromUs(object_model.audit_time),
                TablePrinter::Fmt(object_model.messages)});
  table.Print();
  std::printf(
      "\nShape check: the object-version model answers reads locally (a"
      "\nsingle message vs thousands) and audits far faster, at the price"
      "\nof copying records on every transfer — exactly the §4.3 "
      "trade-off.\n");
  return 0;
}
