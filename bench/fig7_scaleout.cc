// Figure 7 reproduction: scale-out over multiple servers.
//
// Paper setup: scale factor k in 1..8 maps to k m5.xlarge silos and
// 2,100 * k simulated sensors (the per-server baseline derived from the
// single-server experiment: ~1,800 req/s minus 20% headroom, rounded to
// 1,400, times the 1.5x m5.large -> m5.xlarge ECU ratio). Placement is the
// paper's: sensors random, channels and aggregators prefer-local. The paper
// observes throughput within a few percent of the offered load through
// scale factor 8 (e.g. >10,000 req/s at k=5, >16,000 at k=8) with no knee.
//
// We model the m5.xlarge as 3 virtual workers (the same 1.5x ECU ratio the
// paper itself uses to convert between instance types).

#include <cstdio>

#include "common/table_printer.h"
#include "shm_bench_util.h"

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  constexpr int kSensorsPerSilo = 2100;

  std::printf("=== Figure 7: scale-out (k silos x 3 vCPU m5.xlarge, %d "
              "sensors per silo) ===\n",
              kSensorsPerSilo);
  std::printf("Paper reference: near-linear scaling through scale factor 8\n\n");

  TablePrinter table({"scale", "silos", "sensors", "offered req/s",
                      "achieved req/s", "stddev", "efficiency%", "util%"});

  for (int k = 1; k <= 8; ++k) {
    ShmRunConfig config;
    config.runtime.num_silos = k;
    config.runtime.workers_per_silo = 3;  // m5.xlarge via the 1.5x ECU ratio.
    config.runtime.seed = 1000 + k;
    config.topology.sensors = kSensorsPerSilo * k;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = false;
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed at scale %d\n", k);
      return 1;
    }
    double offered = static_cast<double>(config.topology.sensors);
    double efficiency = 100.0 * r.report.achieved_insert_rps / offered;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(k)),
                  TablePrinter::Fmt(static_cast<int64_t>(k)),
                  TablePrinter::Fmt(
                      static_cast<int64_t>(config.topology.sensors)),
                  TablePrinter::Fmt(offered, 0),
                  TablePrinter::Fmt(r.report.achieved_insert_rps, 1),
                  TablePrinter::Fmt(r.report.achieved_rps_stddev, 1),
                  TablePrinter::Fmt(efficiency, 1),
                  TablePrinter::Fmt(r.utilization * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check: achieved tracks offered within a few percent at every"
      "\nscale factor (paper: >10k req/s at k=5, >16k at k=8, no knee).\n");

  // Registered-actor-count axis (beyond the paper): fixed k=4 cluster and
  // fixed offered load, growing the REGISTERED population with dormant
  // actors under a per-silo working-set cap. The dormant tail pages out to
  // storage, so achieved throughput should stay flat as registrations grow
  // — the bounded-memory claim of the sharded-directory + paging design.
  constexpr int kAxisScale = 4;
  constexpr int kResidentCap = 40000;  // Above the active SHM actor count.
  std::printf("\n=== Registered-actor axis (k=%d, cap=%d resident/silo) ===\n",
              kAxisScale, kResidentCap);
  TablePrinter axis({"dormant", "registered total", "achieved req/s",
                     "efficiency%", "paged_out", "faults", "errors",
                     "skipped"});
  for (int dormant : {0, 50000, 200000}) {
    ShmRunConfig config;
    config.runtime.num_silos = kAxisScale;
    config.runtime.workers_per_silo = 3;
    config.runtime.seed = 2000 + dormant;
    config.runtime.max_resident_activations = kResidentCap;
    config.topology.sensors = kSensorsPerSilo * kAxisScale;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = false;
    config.dormant_registered = dormant;
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed at dormant=%d\n", dormant);
      return 1;
    }
    double offered = static_cast<double>(config.topology.sensors);
    int64_t paged = 0;
    int64_t faults = 0;
    auto pit = r.metrics.counters.find("activation.paged_out");
    if (pit != r.metrics.counters.end()) paged = pit->second;
    auto fit = r.metrics.counters.find("activation.fault.count");
    if (fit != r.metrics.counters.end()) faults = fit->second;
    axis.AddRow({TablePrinter::Fmt(static_cast<int64_t>(dormant)),
                 TablePrinter::Fmt(static_cast<int64_t>(
                     dormant + config.topology.sensors)),
                 TablePrinter::Fmt(r.report.achieved_insert_rps, 1),
                 TablePrinter::Fmt(
                     100.0 * r.report.achieved_insert_rps / offered, 1),
                 TablePrinter::Fmt(paged), TablePrinter::Fmt(faults),
                 TablePrinter::Fmt(r.report.errors),
                 TablePrinter::Fmt(r.report.ticks_skipped)});
  }
  axis.Print();
  std::printf(
      "\nShape check: achieved req/s flat (within a few percent) as the\n"
      "registered population grows ~20x past the working-set cap.\n");
  return 0;
}
