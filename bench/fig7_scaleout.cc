// Figure 7 reproduction: scale-out over multiple servers.
//
// Paper setup: scale factor k in 1..8 maps to k m5.xlarge silos and
// 2,100 * k simulated sensors (the per-server baseline derived from the
// single-server experiment: ~1,800 req/s minus 20% headroom, rounded to
// 1,400, times the 1.5x m5.large -> m5.xlarge ECU ratio). Placement is the
// paper's: sensors random, channels and aggregators prefer-local. The paper
// observes throughput within a few percent of the offered load through
// scale factor 8 (e.g. >10,000 req/s at k=5, >16,000 at k=8) with no knee.
//
// We model the m5.xlarge as 3 virtual workers (the same 1.5x ECU ratio the
// paper itself uses to convert between instance types).

#include <cstdio>

#include "common/table_printer.h"
#include "shm_bench_util.h"

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  constexpr int kSensorsPerSilo = 2100;

  std::printf("=== Figure 7: scale-out (k silos x 3 vCPU m5.xlarge, %d "
              "sensors per silo) ===\n",
              kSensorsPerSilo);
  std::printf("Paper reference: near-linear scaling through scale factor 8\n\n");

  TablePrinter table({"scale", "silos", "sensors", "offered req/s",
                      "achieved req/s", "stddev", "efficiency%", "util%"});

  for (int k = 1; k <= 8; ++k) {
    ShmRunConfig config;
    config.runtime.num_silos = k;
    config.runtime.workers_per_silo = 3;  // m5.xlarge via the 1.5x ECU ratio.
    config.runtime.seed = 1000 + k;
    config.topology.sensors = kSensorsPerSilo * k;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = false;
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed at scale %d\n", k);
      return 1;
    }
    double offered = static_cast<double>(config.topology.sensors);
    double efficiency = 100.0 * r.report.achieved_insert_rps / offered;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(k)),
                  TablePrinter::Fmt(static_cast<int64_t>(k)),
                  TablePrinter::Fmt(
                      static_cast<int64_t>(config.topology.sensors)),
                  TablePrinter::Fmt(offered, 0),
                  TablePrinter::Fmt(r.report.achieved_insert_rps, 1),
                  TablePrinter::Fmt(r.report.achieved_rps_stddev, 1),
                  TablePrinter::Fmt(efficiency, 1),
                  TablePrinter::Fmt(r.utilization * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check: achieved tracks offered within a few percent at every"
      "\nscale factor (paper: >10k req/s at k=5, >16k at k=8, no knee).\n");
  return 0;
}
