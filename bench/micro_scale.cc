// Million-actor scale bench (ROADMAP item 1): per-message cost as the
// REGISTERED actor population grows 1000x while the RESIDENT working set
// stays bounded, plus raw directory throughput vs. lock-stripe count.
//
// Cluster mode (default) registers {1k, 100k, 1M} durable actors on one
// 8-worker silo with a fixed working-set cap, then drives a skewed traffic
// mix — 99% Zipfian(0.99) over a bounded active set, 1% uniform over the
// whole registered population (the uniform tail is what continuously faults
// paged-out actors back in). Reports per-message cost, the activation-fault
// count, and the fault p99 from the activation.fault.* series.
//
// Directory mode (--mode=directory) hammers a raw Directory from 8 threads
// with a lookup-heavy mix across stripe counts {1, 2, 4, 8, 16} — the
// lock-striping win as its own tracked number (bench_compare.sh snapshots
// the 8-vs-1 speedup).
//
// Env overrides: AODB_SCALE_ACTORS (max registered row, default 1000000),
// AODB_SCALE_MIN_ACTORS (first registered row, default 1000),
// AODB_SCALE_MESSAGES (drive-phase messages per row, default 1600000),
// AODB_SCALE_RESIDENT (working-set cap, default 131072),
// AODB_SCALE_REPEATS (min-of-N repeats, default 2),
// AODB_SCALE_TAIL_PER_MILLE (uniform cold-tail share, default 10 = 1%).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "common/codec.h"
#include "common/telemetry.h"
#include "common/zipf.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"
#include "storage/state_storage.h"

namespace aodb {
namespace {

struct ScaleState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

/// Durable counter flushed on deactivation — the paper's benchmark
/// configuration, and the one that makes paging do real storage work: every
/// page-out of a dirty actor writes its snapshot, every fault-in reads it.
class ScaleActor : public PersistentActor<ScaleState> {
 public:
  static constexpr char kTypeName[] = "scale.Counter";
  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
};

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atoll(v) : fallback;
}

std::string Key(int64_t i) { return "a" + std::to_string(i); }

int64_t Processed(Cluster& cluster) { return cluster.TotalMessagesProcessed(); }

/// Blocks until the cluster has processed `target` messages total.
void DrainTo(Cluster& cluster, int64_t target) {
  while (Processed(cluster) < target) {
    std::this_thread::yield();
  }
}

struct Row {
  int64_t registered = 0;
  int64_t messages = 0;
  double msgs_per_sec = 0;
  double ns_per_msg = 0;
  int64_t faults = 0;
  int64_t paged_out = 0;
  int64_t fault_p99_us = 0;
  int64_t directory_entries = 0;
};

Row RunClusterRow(int64_t registered, int64_t messages, int64_t resident_cap,
                  int64_t tail_per_mille) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 8;
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  options.max_resident_activations = static_cast<int>(resident_cap);
  RealClusterHandle handle(options);
  handle->RegisterActorType<ScaleActor>();
  MemKvStore backing;
  handle->RegisterStateStorage(
      "default", std::make_shared<KvStateStorage>(&backing));

  // Registration phase: touch every actor once so all `registered` ids hold
  // a directory entry. Past the cap the eviction loop pages the cold tail
  // out behind the writer; the throttle keeps the in-flight envelope count
  // (and thus memory) bounded.
  constexpr int64_t kThrottleWindow = 32768;
  int64_t base = Processed(handle.cluster());
  for (int64_t i = 0; i < registered; ++i) {
    handle->Ref<ScaleActor>(Key(i)).Tell(&ScaleActor::Add, int64_t{1});
    if ((i + 1) % kThrottleWindow == 0) {
      DrainTo(handle.cluster(), base + i + 1 - kThrottleWindow / 2);
    }
  }
  DrainTo(handle.cluster(), base + registered);

  // Drive phase: 99% of traffic is Zipfian(0.99) over a FIXED-SIZE active
  // set strided through the registered population (the hot set is the same
  // size on every row, so per-message cost differences isolate the cost of
  // the registered population, not of a bigger cache footprint); 1% is
  // uniform over everything registered, continuously faulting cold actors
  // in. Single producer, same send path as the TellDrain baseline.
  const int64_t active = std::min<int64_t>(registered, 1024);
  const int64_t stride = registered / active;
  ZipfGenerator zipf(static_cast<uint64_t>(active));
  Rng rng(0x5ca1ab1eULL + static_cast<uint64_t>(registered));
  auto draw = [&]() -> int64_t {
    if (tail_per_mille > 0 &&
        rng.NextBelow(1000) < static_cast<uint64_t>(tail_per_mille)) {
      return static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(registered)));
    }
    return static_cast<int64_t>(zipf.Next(&rng)) * stride;
  };

  // Warm-up: fault the strided active set back in (after registration the
  // resident survivors are the most recently REGISTERED ids, not the hot
  // ids) so the measured window sees steady state, with faults coming only
  // from the uniform tail.
  const int64_t warmup = std::min<int64_t>(messages / 4, 50000);
  int64_t warm_base = Processed(handle.cluster());
  for (int64_t m = 0; m < warmup; ++m) {
    handle->Ref<ScaleActor>(Key(draw())).Tell(&ScaleActor::Add, int64_t{1});
    if ((m + 1) % kThrottleWindow == 0) {
      DrainTo(handle.cluster(), warm_base + m + 1 - kThrottleWindow / 2);
    }
  }
  DrainTo(handle.cluster(), warm_base + warmup);

  MetricsSnapshot before = handle->SnapshotMetrics();
  int64_t drive_base = Processed(handle.cluster());
  auto t0 = std::chrono::steady_clock::now();
  for (int64_t m = 0; m < messages; ++m) {
    handle->Ref<ScaleActor>(Key(draw())).Tell(&ScaleActor::Add, int64_t{1});
    if ((m + 1) % kThrottleWindow == 0) {
      DrainTo(handle.cluster(), drive_base + m + 1 - kThrottleWindow / 2);
    }
  }
  DrainTo(handle.cluster(), drive_base + messages);
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();

  MetricsSnapshot after = handle->SnapshotMetrics();
  MetricsSnapshot delta = after.Delta(before);
  Row row;
  row.registered = registered;
  row.messages = messages;
  row.msgs_per_sec = static_cast<double>(messages) / secs;
  row.ns_per_msg = secs * 1e9 / static_cast<double>(messages);
  row.faults = delta.counters["activation.fault.count"];
  row.paged_out = delta.counters["activation.paged_out"];
  auto hit = delta.histograms.find("activation.fault.queue_wait_us");
  if (hit != delta.histograms.end() && hit->second.count() > 0) {
    row.fault_p99_us = hit->second.Percentile(99);
  }
  row.directory_entries =
      static_cast<int64_t>(handle->directory().Count());
  return row;
}

int RunClusterMode() {
  const int64_t max_actors = EnvInt("AODB_SCALE_ACTORS", 1000000);
  // The window must be long enough to amortize fixed post-registration
  // costs (first-touch page faults over the grown heap dominate a short
  // window and masquerade as per-message cost).
  const int64_t messages = EnvInt("AODB_SCALE_MESSAGES", 1600000);
  const int64_t resident = EnvInt("AODB_SCALE_RESIDENT", 131072);
  const int64_t repeats = EnvInt("AODB_SCALE_REPEATS", 2);
  const int64_t tail = EnvInt("AODB_SCALE_TAIL_PER_MILLE", 10);
  // AODB_SCALE_MIN_ACTORS skips the small rows (ratio_vs_1k then reads as
  // ratio-vs-first-row): the bench_compare fault leg uses it to re-run only
  // the 1M row with the cold tail enabled.
  const int64_t min_actors =
      std::max<int64_t>(EnvInt("AODB_SCALE_MIN_ACTORS", 1000), 1);
  std::vector<int64_t> rows;
  for (int64_t n = min_actors; n < max_actors; n *= 100) rows.push_back(n);
  rows.push_back(max_actors);

  std::printf("# micro_scale cluster mode: 1 silo x 8 workers, cap=%" PRId64
              ", Zipf(0.99) active set, %.1f%% uniform tail\n",
              resident, static_cast<double>(tail) / 10.0);
  std::printf("%-12s %-10s %-14s %-12s %-12s %-10s %-12s %-14s %s\n",
              "registered", "messages", "msgs_per_sec", "ns_per_msg",
              "ratio_vs_1k", "faults", "paged_out", "fault_p99_us",
              "dir_entries");
  // Min-of-N with INTERLEAVED sweeps: wall-clock throughput on a shared
  // host drifts over minutes, so running a full {1k, ..., 1M} sweep per
  // repeat (instead of N consecutive repeats per row) keeps a slow stretch
  // from landing entirely on one row and skewing the ratio; the fastest
  // repeat per row is the least-perturbed measurement (fault counters come
  // from that same repeat).
  std::vector<Row> best(rows.size());
  for (int64_t rep = 0; rep < repeats; ++rep) {
    for (size_t i = 0; i < rows.size(); ++i) {
      Row r = RunClusterRow(rows[i], messages, resident, tail);
      if (rep == 0 || r.ns_per_msg < best[i].ns_per_msg) best[i] = r;
    }
  }
  double baseline_ns = 0;
  for (const Row& r : best) {
    if (baseline_ns == 0) baseline_ns = r.ns_per_msg;
    std::printf("%-12" PRId64 " %-10" PRId64 " %-14.0f %-12.1f %-12.3f "
                "%-10" PRId64 " %-12" PRId64 " %-14" PRId64 " %" PRId64 "\n",
                r.registered, r.messages, r.msgs_per_sec, r.ns_per_msg,
                r.ns_per_msg / baseline_ns, r.faults, r.paged_out,
                r.fault_p99_us, r.directory_entries);
    std::fflush(stdout);
  }
  return 0;
}

/// One thread's share of the directory-throughput drive: a lookup-heavy mix
/// (~90% Lookup of a registered id, ~10% LookupOrPlace of a fresh id) over a
/// private key range, mimicking the silo hot path (every Send resolves the
/// target; placements are the cold tail).
void DirectoryWorker(Directory* dir, int thread, int64_t ops,
                     int64_t prefill) {
  Rng rng(0xd1eec7 + static_cast<uint64_t>(thread) * 7919);
  int64_t placed = prefill;
  for (int64_t i = 0; i < ops; ++i) {
    if (rng.NextBelow(10) == 0) {
      ActorId id{"scale.Dir",
                 "t" + std::to_string(thread) + "-" + std::to_string(placed)};
      dir->LookupOrPlace(id, kClientSiloId);
      ++placed;
    } else {
      ActorId id{"scale.Dir",
                 "t" + std::to_string(thread) + "-" +
                     std::to_string(rng.NextBelow(
                         static_cast<uint64_t>(placed)))};
      dir->Lookup(id);
    }
  }
}

int RunDirectoryMode(const std::vector<int>& shard_counts) {
  const int threads = 8;
  const int64_t ops = EnvInt("AODB_SCALE_DIR_OPS", 2000000);
  const int64_t prefill = 4096;
  std::printf("# micro_scale directory mode: %d threads, %" PRId64
              " ops/thread, 90/10 lookup/place\n",
              threads, ops);
  // Wall-clock speedup needs real cores; contended_per_kop (try_lock misses
  // per thousand ops, from the directory.partition.*.contention counters)
  // shows the serialization striping removes even on a 1-core host.
  std::printf("%-8s %-8s %-14s %-14s %s\n", "shards", "threads",
              "mops_per_sec", "speedup_vs_1", "contended_per_kop");
  double base = 0;
  for (int shards : shard_counts) {
    MetricsRegistry registry;
    Directory dir(/*num_silos=*/8, Placement::kRandom, /*seed=*/42, shards);
    dir.BindMetrics(&registry);
    for (int t = 0; t < threads; ++t) {
      for (int64_t i = 0; i < prefill; ++i) {
        dir.LookupOrPlace(
            ActorId{"scale.Dir",
                    "t" + std::to_string(t) + "-" + std::to_string(i)},
            kClientSiloId);
      }
    }
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(DirectoryWorker, &dir, t, ops, prefill);
    }
    for (auto& th : pool) th.join();
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    double mops = static_cast<double>(ops) * threads / secs / 1e6;
    if (base == 0) base = mops;
    int64_t contended = 0;
    MetricsSnapshot snap = registry.Snapshot();
    for (const auto& [name, v] : snap.counters) {
      if (name.rfind("directory.partition.", 0) == 0 &&
          name.size() > 11 &&
          name.compare(name.size() - 11, 11, ".contention") == 0) {
        contended += v;
      }
    }
    double per_kop =
        static_cast<double>(contended) * 1000.0 /
        (static_cast<double>(ops) * threads);
    std::printf("%-8d %-8d %-14.2f %-14.2f %.3f\n", shards, threads, mops,
                mops / base, per_kop);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace aodb

int main(int argc, char** argv) {
  // --mode=directory sweeps stripe counts {1, 2, 4, 8, 16}; --shards=N runs
  // directory mode at a single stripe count (implies --mode=directory).
  bool directory_mode = false;
  std::vector<int> shard_counts{1, 2, 4, 8, 16};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=directory") == 0) directory_mode = true;
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      int n = std::atoi(argv[i] + 9);
      if (n < 1) {
        std::fprintf(stderr, "bad --shards value: %s\n", argv[i]);
        return 2;
      }
      directory_mode = true;
      shard_counts = {n};
    }
  }
  return directory_mode ? aodb::RunDirectoryMode(shard_counts)
                        : aodb::RunClusterMode();
}
