// Figure 8 reproduction: latency percentiles of raw sensor-channel
// time-range requests, concurrent with data ingestion.
//
// Paper setup: one silo; sensors in {500, 1000, 1500, 2000} each inserting
// once per second; user queries mixed in at ~1% live-data and ~1% raw-range
// (one of each per organization per second). The paper reports latency
// percentiles (including the 99.9th) growing with offered load but staying
// interactive — raw-range requests "often substantially below 0.5 sec" at
// 2,000 sensors (the 80% utilization design point).

#include <cstdio>

#include "common/table_printer.h"
#include "shm_bench_util.h"

int main(int argc, char** argv) {
  using namespace aodb;
  using namespace aodb::bench;

  MetricsJsonWriter metrics_out(MetricsJsonPathFromArgs(argc, argv));
  std::printf(
      "=== Figure 8: raw time-range request latency under ingestion load "
      "===\n");
  std::printf(
      "Mix: 98%% inserts / ~1%% live / ~1%% raw; 1 silo x 3 vCPU m5.xlarge\n");
  std::printf("Paper reference: sub-0.5s raw latency at 2000 sensors; tail "
              "grows with load\n\n");

  TablePrinter table({"sensors", "raw_reqs", "mean_ms", "p50_ms", "p90_ms",
                      "p99_ms", "p99.9_ms", "max_ms", "util%", "req_B/op",
                      "rsp_B/op"});

  const int kSweep[] = {500, 1000, 1500, 2000};
  for (int sensors : kSweep) {
    ShmRunConfig config;
    config.runtime.num_silos = 1;
    config.runtime.workers_per_silo = 3;  // m5.xlarge.
    config.runtime.seed = 2000 + sensors;
    config.topology.sensors = sensors;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = true;
    config.runtime.trace.sample_every = TraceSampleFromEnv();
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed at %d sensors\n", sensors);
      return 1;
    }
    metrics_out.Add("sensors=" + std::to_string(sensors), r.metrics);
    const Histogram& h = r.report.raw_latency_us;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(sensors)),
                  TablePrinter::Fmt(h.count()),
                  TablePrinter::FmtMsFromUs(static_cast<int64_t>(h.Mean())),
                  TablePrinter::FmtMsFromUs(h.Percentile(50)),
                  TablePrinter::FmtMsFromUs(h.Percentile(90)),
                  TablePrinter::FmtMsFromUs(h.Percentile(99)),
                  TablePrinter::FmtMsFromUs(h.Percentile(99.9)),
                  TablePrinter::FmtMsFromUs(h.max()),
                  TablePrinter::Fmt(r.utilization * 100, 1),
                  // Measured mean encoded frame sizes (not the calibrated
                  // request_bytes/response_bytes constants): every client
                  // operation crosses the client->silo boundary on the wire
                  // lane, so per-op bytes are wire totals over wire counts.
                  TablePrinter::Fmt(
                      r.wire.wire_requests > 0
                          ? r.wire.wire_request_bytes / r.wire.wire_requests
                          : 0),
                  TablePrinter::Fmt(
                      r.wire.wire_replies > 0
                          ? r.wire.wire_reply_bytes / r.wire.wire_replies
                          : 0)});
  }
  table.Print();
  if (!metrics_out.Write()) return 1;
  std::printf(
      "\nShape check: monotone growth with load; pronounced 99.9th tail;"
      "\nwell under 1s at the 2,000-sensor / ~80%% utilization design "
      "point.\n");
  return 0;
}
