// Shared harness for the SHM figure benchmarks: builds a simulated cluster,
// sets up the §6.1 topology, drives the load generator, and reports
// throughput/latency/utilization. Experiment durations are virtual seconds
// (deterministic); override with AODB_BENCH_SECONDS.

#ifndef AODB_BENCH_SHM_BENCH_UTIL_H_
#define AODB_BENCH_SHM_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "actor/actor_ref.h"
#include "common/telemetry.h"
#include "loadgen/shm_loadgen.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/state_storage.h"

namespace aodb {
namespace bench {

/// Virtual-time measurement duration (default 30 s; the paper ran 10 min
/// per point — deterministic simulation does not need that much).
inline Micros BenchDurationUs() {
  const char* env = std::getenv("AODB_BENCH_SECONDS");
  int seconds = env != nullptr ? std::atoi(env) : 30;
  if (seconds < 5) seconds = 5;
  return static_cast<Micros>(seconds) * kMicrosPerSecond;
}

struct ShmRunConfig {
  RuntimeOptions runtime;
  shm::ShmTopology topology;
  LoadGenOptions load;
  /// Use the paper's placement (prefer-local channels). Disable to measure
  /// the random-placement baseline in the placement ablation.
  bool paper_placement = true;
  /// Extra REGISTERED-but-dormant actors touched once before the measured
  /// interval (fig7's registered-actor-count axis): they hold directory
  /// entries for the whole run but offer no load, so with a working-set cap
  /// (runtime.max_resident_activations) they page out and the measured
  /// interval shows whether throughput is flat in the registered count.
  int dormant_registered = 0;
};

/// A registered-but-idle actor for the dormant-population axis.
class DormantActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "bench.Dormant";
  void Ping() {}
};

/// Trace sampling for a bench run: AODB_TRACE_SAMPLE=N turns on 1-in-N root
/// sampling (0 / unset = tracing off), e.g. for the tracing-overhead
/// experiment in EXPERIMENTS.md.
inline int TraceSampleFromEnv() {
  const char* env = std::getenv("AODB_TRACE_SAMPLE");
  return env != nullptr ? std::atoi(env) : 0;
}

/// Parses --metrics-json=<path> from a bench binary's argv (empty when the
/// flag is absent).
inline std::string MetricsJsonPathFromArgs(int argc, char** argv) {
  const std::string prefix = "--metrics-json=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return std::string();
}

/// Collects one {"label", "metrics"} object per sweep point and writes the
/// array to the --metrics-json path. A no-op when the flag was absent.
class MetricsJsonWriter {
 public:
  explicit MetricsJsonWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& label, const MetricsSnapshot& snap) {
    if (!enabled()) return;
    if (!entries_.empty()) entries_ += ",\n";
    entries_ += "  {\"label\":\"" + label + "\",\"metrics\":" + snap.ToJson() +
                "}";
  }

  /// Writes the accumulated array; returns false (with a message on stderr)
  /// if the path is not writable.
  bool Write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics json to %s\n",
                   path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n%s\n]\n", entries_.c_str());
    std::fclose(f);
    return true;
  }

 private:
  std::string path_;
  std::string entries_;
};

struct ShmRunResult {
  LoadGenReport report;
  /// Mean CPU utilization across silos during the measurement interval.
  double utilization = 0;
  /// Wire-lane traffic (measured encoded frame sizes) over the load
  /// interval only; mean request/reply bytes per remote call follow from
  /// wire_request_bytes / wire_requests.
  WireStats wire;
  /// Full registry delta over the load interval (counters/histograms are
  /// interval rates, gauges are end-of-run levels) — what --metrics-json
  /// exports per sweep point.
  MetricsSnapshot metrics;
  bool setup_ok = false;
  bool drained = false;
};

/// Runs one complete experiment in virtual time.
inline ShmRunResult RunShmExperiment(const ShmRunConfig& config) {
  ShmRunResult result;
  MemKvStore state_backing;
  SimHarness harness(config.runtime);
  shm::ShmPlatform::RegisterTypes(harness.cluster());
  if (config.runtime.max_resident_activations > 0) {
    // A working-set cap deactivates actors mid-run, and SHM actors are
    // PersistentActors: without a backing provider they run volatile and a
    // page-out would silently drop sensor/channel configuration (fault-in
    // then fails every insert with "sensor not configured"). Register the
    // in-memory store only for capped runs so the historical uncapped
    // fig6/fig7 baselines keep their exact event schedules.
    harness.cluster().RegisterStateStorage(
        "default", std::make_shared<KvStateStorage>(&state_backing));
  }
  if (config.paper_placement) {
    shm::ShmPlatform::ApplyPaperPlacement(harness.cluster());
  }
  shm::ShmPlatform platform(&harness.cluster());

  auto setup = platform.Setup(config.topology);
  // Topology setup is sized ~10 messages per sensor; give it generous
  // virtual time, then verify.
  harness.RunFor(120 * kMicrosPerSecond);
  if (!setup.Ready() || !setup.Get().ok() || !setup.Get().value().ok()) {
    return result;
  }
  result.setup_ok = true;

  if (config.dormant_registered > 0) {
    // Register the dormant population before measurement: one touch per
    // actor creates its directory entry, chunked so the eviction loop pages
    // the cold tail out as the sweep proceeds instead of ballooning the
    // resident set.
    harness.cluster().RegisterActorType<DormantActor>();
    constexpr int kChunk = 8192;
    for (int i = 0; i < config.dormant_registered; ++i) {
      harness.cluster()
          .Ref<DormantActor>("dormant" + std::to_string(i))
          .Tell(&DormantActor::Ping);
      if ((i + 1) % kChunk == 0) harness.RunFor(200 * kMicrosPerMilli);
    }
    harness.RunFor(5 * kMicrosPerSecond);
  }

  // Measure utilization over the load interval only.
  std::vector<Micros> busy_before;
  for (int i = 0; i < config.runtime.num_silos; ++i) {
    busy_before.push_back(harness.silo_executor(i)->Stats().busy_us);
  }
  WireStats wire_before = harness.cluster().wire_stats();
  MetricsSnapshot metrics_before = harness.SnapshotMetrics();
  Micros load_start = harness.Now();

  ShmLoadGen gen(&platform, config.topology, harness.client_executor(),
                 config.load);
  gen.Start();
  harness.RunUntil(gen.end_time() + 30 * kMicrosPerSecond);
  result.drained = gen.Done();
  Micros load_end = gen.end_time();

  double total_busy = 0;
  for (int i = 0; i < config.runtime.num_silos; ++i) {
    total_busy += static_cast<double>(
        harness.silo_executor(i)->Stats().busy_us - busy_before[i]);
  }
  double capacity = static_cast<double>(load_end - load_start) *
                    config.runtime.workers_per_silo *
                    config.runtime.num_silos;
  // Tasks assigned near the horizon are charged in full, so the raw ratio
  // can slightly exceed 1 at saturation; clamp for reporting.
  result.utilization =
      capacity > 0 ? std::min(1.0, total_busy / capacity) : 0;
  WireStats wire_after = harness.cluster().wire_stats();
  result.wire.local_closure_sends =
      wire_after.local_closure_sends - wire_before.local_closure_sends;
  result.wire.wire_requests =
      wire_after.wire_requests - wire_before.wire_requests;
  result.wire.wire_request_bytes =
      wire_after.wire_request_bytes - wire_before.wire_request_bytes;
  result.wire.wire_replies = wire_after.wire_replies - wire_before.wire_replies;
  result.wire.wire_reply_bytes =
      wire_after.wire_reply_bytes - wire_before.wire_reply_bytes;
  result.wire.closure_fallbacks =
      wire_after.closure_fallbacks - wire_before.closure_fallbacks;
  result.wire.decode_failures =
      wire_after.decode_failures - wire_before.decode_failures;
  result.metrics = harness.SnapshotMetrics().Delta(metrics_before);
  result.report = gen.Finish();
  return result;
}

}  // namespace bench
}  // namespace aodb

#endif  // AODB_BENCH_SHM_BENCH_UTIL_H_
