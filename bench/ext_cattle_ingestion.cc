// Extension experiment (beyond the paper's evaluation): ingestion scaling
// of the *second* case study. The paper models the beef cattle platform
// (Figures 2, 3, 5) but only benchmarks the SHM platform; this bench
// closes that gap by driving collar telemetry at herd scale and verifying
// that the §3 scalability argument ("actors map naturally to dispersed
// entities such as sensors") holds for the cattle model too.
//
// Workload: H herds x 100 cows, every cow reports its collar once per
// second (closed loop, like the SHM sensor clients); 10% of cows have a
// pasture geo-fence and wander across it, generating alert traffic to
// their farmer actor.

#include <cstdio>

#include "cattle/platform.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "shm_bench_util.h"  // BenchDurationUs.
#include "sim/sim_harness.h"

namespace aodb::bench {
namespace {

using namespace aodb::cattle;

struct HerdRunResult {
  double achieved_rps = 0;
  int64_t reports_done = 0;
  int64_t alerts = 0;
  Micros p50 = 0, p99 = 0;
  double utilization = 0;
  bool ok = false;
};

/// Closed-loop collar driver: one report per cow per second.
class CollarLoad {
 public:
  CollarLoad(Cluster* cluster, int cows, Micros end, uint64_t seed)
      : cluster_(cluster),
        cows_(cows),
        end_(end),
        busy_(cows, false),
        rng_(seed) {}

  void Start() { Tick(); }

  int64_t done() const { return done_; }
  const Histogram& latency() const { return latency_; }
  bool Drained() const { return outstanding_ == 0; }

 private:
  void Tick() {
    Executor* exec = cluster_->client_executor();
    Micros now = exec->clock()->Now();
    if (now >= end_) return;
    for (int c = 0; c < cows_; ++c) {
      if (busy_[c]) continue;
      busy_[c] = true;
      ++outstanding_;
      // Cows with a fence (every 10th) drift outside it half the time.
      double lat = (c % 10 == 0 && rng_.Bernoulli(0.5)) ? 56.0
                                                        : 55.05;
      CollarReading reading{now, GeoPoint{lat, 12.05},
                            rng_.Uniform(0, 2), 38.5};
      CallOptions opts;
      opts.cost_us = kCostCollarReport;
      cluster_->Ref<CowActor>(CattlePlatform::CowKey(c))
          .CallWith(opts, &CowActor::ReportCollar, reading)
          .OnReady([this, c, now, exec](Result<Status>&& r) {
            busy_[c] = false;
            --outstanding_;
            if (r.ok() && r.value().ok()) {
              ++done_;
              latency_.Record(exec->clock()->Now() - now);
            }
          });
    }
    exec->PostAfter(kMicrosPerSecond, [this] { Tick(); });
  }

  Cluster* cluster_;
  int cows_;
  Micros end_;
  std::vector<bool> busy_;
  Rng rng_;
  int64_t outstanding_ = 0;
  int64_t done_ = 0;
  Histogram latency_;
};

HerdRunResult RunHerds(int cows, int silos) {
  HerdRunResult out;
  RuntimeOptions runtime;
  runtime.num_silos = silos;
  runtime.workers_per_silo = 2;
  runtime.seed = 500 + cows;
  SimHarness harness(runtime);
  CattlePlatform::RegisterTypes(harness.cluster());
  CattlePlatform platform(&harness.cluster());

  int farms = (cows + 99) / 100;
  std::vector<Future<Status>> setup;
  for (int c = 0; c < cows; ++c) {
    setup.push_back(platform.RegisterCow(CattlePlatform::CowKey(c),
                                         CattlePlatform::FarmerKey(c / 100),
                                         "Angus"));
  }
  // Fences for every 10th cow.
  for (int c = 0; c < cows; c += 10) {
    harness.cluster()
        .Ref<CowActor>(CattlePlatform::CowKey(c))
        .Tell(&CowActor::SetPasture,
              GeoFence::Rectangle(55.0, 12.0, 55.1, 12.1));
  }
  harness.RunFor(120 * kMicrosPerSecond);
  for (auto& f : setup) {
    if (!f.Ready() || !f.Get().ok() || !f.Get().value().ok()) return out;
  }

  Micros duration = BenchDurationUs();
  std::vector<Micros> busy_before;
  for (int i = 0; i < silos; ++i) {
    busy_before.push_back(harness.silo_executor(i)->Stats().busy_us);
  }
  Micros start = harness.Now();
  CollarLoad load(&harness.cluster(), cows, start + duration,
                  runtime.seed);
  load.Start();
  harness.RunUntil(start + duration + 30 * kMicrosPerSecond);
  if (!load.Drained()) return out;

  double busy = 0;
  for (int i = 0; i < silos; ++i) {
    busy += static_cast<double>(harness.silo_executor(i)->Stats().busy_us -
                                busy_before[i]);
  }
  out.achieved_rps = static_cast<double>(load.done()) /
                     (static_cast<double>(duration) / kMicrosPerSecond);
  out.reports_done = load.done();
  out.p50 = load.latency().Percentile(50);
  out.p99 = load.latency().Percentile(99);
  out.utilization = std::min(
      1.0, busy / (static_cast<double>(duration) * 2 * silos));
  // Alert deliveries: sum over farms.
  int64_t alerts = 0;
  for (int fm = 0; fm < farms; ++fm) {
    auto f = harness.cluster()
                 .Ref<FarmerActor>(CattlePlatform::FarmerKey(fm))
                 .Call(&FarmerActor::TotalAlerts);
    harness.RunFor(kMicrosPerSecond);
    if (f.Ready() && f.Get().ok()) alerts += f.Get().value();
  }
  out.alerts = alerts;
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace aodb::bench

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf(
      "=== Extension: cattle platform collar-telemetry ingestion ===\n");
  std::printf("1 report/cow/s; herds of 100 cows per farm; every 10th cow "
              "geo-fenced\n");
  std::printf("(the paper models this platform but benchmarks only the SHM "
              "one)\n\n");

  TablePrinter table({"cows", "silos", "achieved rep/s", "p50_ms", "p99_ms",
                      "geofence alerts", "util%"});
  struct Point {
    int cows;
    int silos;
  };
  const Point kSweep[] = {{500, 1}, {1000, 1}, {2000, 1},
                          {4000, 1}, {4000, 2}, {8000, 2}};
  for (const Point& p : kSweep) {
    HerdRunResult r = RunHerds(p.cows, p.silos);
    if (!r.ok) {
      std::fprintf(stderr, "run failed at %d cows\n", p.cows);
      return 1;
    }
    table.AddRow({TablePrinter::Fmt(int64_t{p.cows}),
                  TablePrinter::Fmt(int64_t{p.silos}),
                  TablePrinter::Fmt(r.achieved_rps, 1),
                  TablePrinter::FmtMsFromUs(r.p50),
                  TablePrinter::FmtMsFromUs(r.p99),
                  TablePrinter::Fmt(r.alerts),
                  TablePrinter::Fmt(r.utilization * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check: per-cow actor ingestion scales like the SHM sensors —"
      "\nlinear until CPU saturation, relieved by adding a silo; geo-fence"
      "\nalert traffic flows to farmer actors without disturbing "
      "ingestion.\n");
  return 0;
}
