// Micro-benchmarks of the actor runtime primitives (real wall-clock time,
// google-benchmark): future machinery, actor call round trips on real
// thread pools, fire-and-forget throughput, and the discrete-event
// simulator's event-processing rate (which bounds how fast the figure
// benches run).

#include <benchmark/benchmark.h>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

class BenchCounter : public ActorBase {
 public:
  static constexpr char kTypeName[] = "bench.Counter";
  int64_t Add(int64_t d) {
    value_ += d;
    return value_;
  }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

void BM_FutureCreateFulfill(benchmark::State& state) {
  for (auto _ : state) {
    Promise<int> p;
    Future<int> f = p.GetFuture();
    p.SetValue(42);
    benchmark::DoNotOptimize(f.Get().value());
  }
}
BENCHMARK(BM_FutureCreateFulfill);

void BM_FutureContinuationChain(benchmark::State& state) {
  for (auto _ : state) {
    Promise<int> p;
    auto f = p.GetFuture()
                 .Then([](int v) { return v + 1; })
                 .Then([](int v) { return v * 2; });
    p.SetValue(1);
    benchmark::DoNotOptimize(f.Get().value());
  }
}
BENCHMARK(BM_FutureContinuationChain);

void BM_WhenAllFanIn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<Promise<int>> promises(n);
    std::vector<Future<int>> futures;
    futures.reserve(n);
    for (auto& p : promises) futures.push_back(p.GetFuture());
    auto all = WhenAll(futures);
    for (int i = 0; i < n; ++i) promises[i].SetValue(i);
    benchmark::DoNotOptimize(all.Get().value().size());
  }
}
BENCHMARK(BM_WhenAllFanIn)->Arg(8)->Arg(64)->Arg(512);

/// Round-trip latency of one actor call on a real silo with `range(0)`
/// worker threads.
void BM_RealModeCallRoundTrip(benchmark::State& state) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = static_cast<int>(state.range(0));
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<BenchCounter>();
  auto ref = handle->Ref<BenchCounter>("c");
  ref.Call(&BenchCounter::Add, int64_t{1}).Get();  // Activate first.
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call(&BenchCounter::Add, int64_t{1}).Get());
  }
}
BENCHMARK(BM_RealModeCallRoundTrip)->Arg(2)->Arg(8);

/// Sustained fire-and-forget enqueue rate on a real silo: `range(0)` workers,
/// `range(1)` target actors, one producer thread. Measures the send-side cost
/// of the same-silo closure lane (drain happens after timing).
void BM_RealModeTellThroughput(benchmark::State& state) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = static_cast<int>(state.range(0));
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<BenchCounter>();
  const int actors = static_cast<int>(state.range(1));
  std::vector<ActorRef<BenchCounter>> refs;
  refs.reserve(actors);
  for (int i = 0; i < actors; ++i) {
    refs.push_back(handle->Ref<BenchCounter>("t" + std::to_string(i)));
    refs.back().Call(&BenchCounter::Value).Get();  // Activate first.
  }
  int64_t sent = 0;
  for (auto _ : state) {
    refs[sent % actors].Tell(&BenchCounter::Add, int64_t{1});
    ++sent;
  }
  // Drain so the counters match and no work leaks past timing.
  for (int i = 0; i < actors; ++i) {
    int64_t expect = sent / actors + (i < sent % actors ? 1 : 0);
    while (refs[i].Call(&BenchCounter::Value).Get().value() < expect) {
    }
  }
  state.SetItemsProcessed(sent);
}
BENCHMARK(BM_RealModeTellThroughput)
    ->Args({2, 1})
    ->Args({8, 16})
    ->UseRealTime();

/// End-to-end fire-and-forget throughput: each iteration sends a burst of
/// tells and waits for every one to be PROCESSED, so the rate includes the
/// full schedule/dispatch path, not just the enqueue. This is the headline
/// same-silo hot-path number (`range(0)` workers, `range(1)` actors).
/// `with_recorder` toggles the flight recorder so bench_compare.sh can
/// report its hot-path overhead (the recorder is on by default in
/// production, so the ON variant is the headline number).
void RunTellDrain(benchmark::State& state, bool with_recorder) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = static_cast<int>(state.range(0));
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  options.observability.enable_flight_recorder = with_recorder;
  RealClusterHandle handle(options);
  handle->RegisterActorType<BenchCounter>();
  const int actors = static_cast<int>(state.range(1));
  constexpr int kBurstPerActor = 512;
  std::vector<ActorRef<BenchCounter>> refs;
  refs.reserve(actors);
  for (int i = 0; i < actors; ++i) {
    refs.push_back(handle->Ref<BenchCounter>("d" + std::to_string(i)));
    refs.back().Call(&BenchCounter::Value).Get();  // Activate first.
  }
  int64_t rounds = 0;
  for (auto _ : state) {
    ++rounds;
    for (int b = 0; b < kBurstPerActor; ++b) {
      for (int i = 0; i < actors; ++i) {
        refs[i].Tell(&BenchCounter::Add, int64_t{1});
      }
    }
    for (int i = 0; i < actors; ++i) {
      while (refs[i].Call(&BenchCounter::Value).Get().value() <
             rounds * kBurstPerActor) {
      }
    }
  }
  state.SetItemsProcessed(rounds * kBurstPerActor * actors);
  // Scheduler behavior counters (whole-run totals from the silo executor):
  // how much work migrated between workers and how often workers parked.
  MetricsSnapshot snap = handle->SnapshotMetrics();
  state.counters["steals"] =
      static_cast<double>(snap.gauges.at("executor.steals"));
  state.counters["parks"] =
      static_cast<double>(snap.gauges.at("executor.parks"));
  state.counters["tasks_run"] =
      static_cast<double>(snap.gauges.at("executor.tasks_run"));
}

void BM_RealModeTellDrain(benchmark::State& state) {
  RunTellDrain(state, /*with_recorder=*/true);
}
BENCHMARK(BM_RealModeTellDrain)
    ->Args({2, 1})
    ->Args({8, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Recorder-off control for the flight_recorder_overhead ratio; compared
/// against BM_RealModeTellDrain/8/16 by bench_compare.sh.
void BM_RealModeTellDrainNoRecorder(benchmark::State& state) {
  RunTellDrain(state, /*with_recorder=*/false);
}
BENCHMARK(BM_RealModeTellDrainNoRecorder)
    ->Args({8, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Discrete-event engine rate: virtual actor messages simulated per real
/// second (the figure benches' speed limit).
void BM_SimulatorEventRate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    RuntimeOptions options;
    options.num_silos = 4;
    options.workers_per_silo = 2;
    SimHarness harness(options);
    harness.cluster().RegisterActorType<BenchCounter>();
    std::vector<ActorRef<BenchCounter>> refs;
    for (int i = 0; i < 64; ++i) {
      refs.push_back(
          harness.cluster().Ref<BenchCounter>("s" + std::to_string(i)));
    }
    state.ResumeTiming();
    constexpr int kMessages = 20000;
    for (int i = 0; i < kMessages; ++i) {
      refs[i % refs.size()].Tell(&BenchCounter::Add, int64_t{1});
    }
    harness.RunAll(kMessages * 4);
    state.SetItemsProcessed(state.items_processed() + kMessages);
  }
}
BENCHMARK(BM_SimulatorEventRate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aodb

BENCHMARK_MAIN();
