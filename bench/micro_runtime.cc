// Micro-benchmarks of the actor runtime primitives (real wall-clock time,
// google-benchmark): future machinery, actor call round trips on real
// thread pools, fire-and-forget throughput, and the discrete-event
// simulator's event-processing rate (which bounds how fast the figure
// benches run).

#include <benchmark/benchmark.h>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "sim/sim_harness.h"

namespace aodb {
namespace {

class BenchCounter : public ActorBase {
 public:
  static constexpr char kTypeName[] = "bench.Counter";
  int64_t Add(int64_t d) {
    value_ += d;
    return value_;
  }
  int64_t Value() { return value_; }

 private:
  int64_t value_ = 0;
};

void BM_FutureCreateFulfill(benchmark::State& state) {
  for (auto _ : state) {
    Promise<int> p;
    Future<int> f = p.GetFuture();
    p.SetValue(42);
    benchmark::DoNotOptimize(f.Get().value());
  }
}
BENCHMARK(BM_FutureCreateFulfill);

void BM_FutureContinuationChain(benchmark::State& state) {
  for (auto _ : state) {
    Promise<int> p;
    auto f = p.GetFuture()
                 .Then([](int v) { return v + 1; })
                 .Then([](int v) { return v * 2; });
    p.SetValue(1);
    benchmark::DoNotOptimize(f.Get().value());
  }
}
BENCHMARK(BM_FutureContinuationChain);

void BM_WhenAllFanIn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<Promise<int>> promises(n);
    std::vector<Future<int>> futures;
    futures.reserve(n);
    for (auto& p : promises) futures.push_back(p.GetFuture());
    auto all = WhenAll(futures);
    for (int i = 0; i < n; ++i) promises[i].SetValue(i);
    benchmark::DoNotOptimize(all.Get().value().size());
  }
}
BENCHMARK(BM_WhenAllFanIn)->Arg(8)->Arg(64)->Arg(512);

/// Round-trip latency of one actor call on a real 2-thread silo.
void BM_RealModeCallRoundTrip(benchmark::State& state) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 2;
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<BenchCounter>();
  auto ref = handle->Ref<BenchCounter>("c");
  ref.Call(&BenchCounter::Add, int64_t{1}).Get();  // Activate first.
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call(&BenchCounter::Add, int64_t{1}).Get());
  }
}
BENCHMARK(BM_RealModeCallRoundTrip);

/// Sustained fire-and-forget message throughput on a real silo.
void BM_RealModeTellThroughput(benchmark::State& state) {
  RuntimeOptions options;
  options.num_silos = 1;
  options.workers_per_silo = 2;
  options.network.client_latency_us = 0;
  options.network.jitter_us = 0;
  RealClusterHandle handle(options);
  handle->RegisterActorType<BenchCounter>();
  auto ref = handle->Ref<BenchCounter>("t");
  ref.Call(&BenchCounter::Value).Get();
  int64_t sent = 0;
  for (auto _ : state) {
    ref.Tell(&BenchCounter::Add, int64_t{1});
    ++sent;
  }
  // Drain so the counter matches and no work leaks past timing.
  while (ref.Call(&BenchCounter::Value).Get().value() < sent) {
  }
  state.SetItemsProcessed(sent);
}
BENCHMARK(BM_RealModeTellThroughput);

/// Discrete-event engine rate: virtual actor messages simulated per real
/// second (the figure benches' speed limit).
void BM_SimulatorEventRate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    RuntimeOptions options;
    options.num_silos = 4;
    options.workers_per_silo = 2;
    SimHarness harness(options);
    harness.cluster().RegisterActorType<BenchCounter>();
    std::vector<ActorRef<BenchCounter>> refs;
    for (int i = 0; i < 64; ++i) {
      refs.push_back(
          harness.cluster().Ref<BenchCounter>("s" + std::to_string(i)));
    }
    state.ResumeTiming();
    constexpr int kMessages = 20000;
    for (int i = 0; i < kMessages; ++i) {
      refs[i % refs.size()].Tell(&BenchCounter::Add, int64_t{1});
    }
    harness.RunAll(kMessages * 4);
    state.SetItemsProcessed(state.items_processed() + kMessages);
  }
}
BENCHMARK(BM_SimulatorEventRate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aodb

BENCHMARK_MAIN();
