// Figure 6 reproduction: single-server ingestion throughput.
//
// Paper setup: one Orleans silo on an m5.large (2 vCPU), simulated sensors
// offering 1 insert request/s each (20 points per request, 2 physical
// channels per sensor, every 10th sensor with a virtual channel). The paper
// observes throughput tracking the offered load up to a saturation plateau
// of roughly 1,800 requests/s.
//
// This binary sweeps the offered sensor count on one simulated 2-vCPU silo
// and prints achieved throughput (mean +- stddev over interior 1/10-run
// windows), CPU utilization, and insert latency percentiles. Expected
// shape: linear ramp, then a plateau near ~1,650 req/s (the calibrated
// capacity including the client-hop serialization cost; see
// src/shm/types.h).

#include <cstdio>

#include "shm_bench_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace aodb;
  using namespace aodb::bench;

  MetricsJsonWriter metrics_out(MetricsJsonPathFromArgs(argc, argv));
  std::printf(
      "=== Figure 6: single-server throughput (1 silo, 2 vCPU m5.large) "
      "===\n");
  std::printf("Offered load: 1 insert request/s per sensor, 20 points each\n");
  std::printf("Paper reference: saturation at ~1,800 requests/s\n\n");

  TablePrinter table({"sensors(=req/s offered)", "achieved req/s", "stddev",
                      "util%", "lat_mean_ms", "lat_p50_ms", "lat_p99_ms"});

  const int kSweep[] = {200, 400, 600, 800, 1000, 1200, 1400,
                        1600, 1800, 2000, 2400, 2800};
  for (int sensors : kSweep) {
    ShmRunConfig config;
    config.runtime.num_silos = 1;
    config.runtime.workers_per_silo = 2;  // m5.large.
    config.runtime.seed = 42 + sensors;
    config.topology.sensors = sensors;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = false;
    config.runtime.trace.sample_every = TraceSampleFromEnv();
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed at %d sensors\n", sensors);
      return 1;
    }
    metrics_out.Add("sensors=" + std::to_string(sensors), r.metrics);
    const LoadGenReport& rep = r.report;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(sensors)),
                  TablePrinter::Fmt(rep.achieved_insert_rps, 1),
                  TablePrinter::Fmt(rep.achieved_rps_stddev, 1),
                  TablePrinter::Fmt(r.utilization * 100, 1),
                  TablePrinter::FmtMsFromUs(
                      static_cast<int64_t>(rep.insert_latency_us.Mean())),
                  TablePrinter::FmtMsFromUs(rep.insert_latency_us.Percentile(50)),
                  TablePrinter::FmtMsFromUs(
                      rep.insert_latency_us.Percentile(99))});
  }
  table.Print();
  if (!metrics_out.Write()) return 1;
  std::printf(
      "\nShape check: throughput ~= offered up to saturation, then a plateau"
      "\nnear the calibrated ~1,650 req/s capacity (paper: ~1,800 req/s).\n");
  return 0;
}
