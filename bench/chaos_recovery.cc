// Chaos recovery: ingestion under the fault-injection subsystem.
//
// Part 1 runs the SHM ingestion workload through a seeded FaultPlan (one of
// three silos killed mid-run and restarted, 1% message drop, 0.5%
// duplication, 5% transient storage errors) under three client
// configurations, and reports how many acked packets the platform
// subsequently lost:
//
//   (a) no retries, fast acks     — the paper's implicit baseline
//   (b) client retries, fast acks — crashes heal but in-window acks can lie
//   (c) retries + durable acks    — the robustness contract: no acked write
//                                   is ever lost
//
// Every configuration uses the same fault seed, so the chaos the three modes
// face is identical and the table isolates the policy, not the luck.
//
// Part 2 measures the membership failure detector against UNANNOUNCED
// failures, where no KillSilo ever fires and only the lease/probe protocol
// can notice: a wedged executor (full hang) and a gray failure (membership
// agent dark, application traffic still served). Over seeded trials it
// reports detection latency (wedge -> declared dead) and recovery latency
// (wedge -> an in-flight idempotent read against the dead silo completes
// from re-placed state) as histogram percentiles.

#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/fault.h"
#include "actor/membership.h"
#include "common/histogram.h"
#include "common/table_printer.h"
#include "shm/platform.h"
#include "shm_bench_util.h"
#include "sim/sim_harness.h"
#include "storage/faulty_storage.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb::bench {
namespace {

constexpr int kSensors = 6;
constexpr int kRounds = 36;

struct ModeResult {
  int64_t acked = 0;
  int64_t failed = 0;
  int64_t lost_acked_points = 0;
  int64_t client_retries = 0;
  int64_t dropped = 0;
  int64_t storage_errors = 0;
  Micros total_time = 0;
  /// End-of-run registry snapshot (what --metrics-json exports per mode).
  MetricsSnapshot metrics;
  bool ok = false;
};

struct Mode {
  const char* name;
  bool retries;
  bool durable_acks;
};

ModeResult RunMode(const Mode& mode) {
  ModeResult out;
  RuntimeOptions options;
  options.num_silos = 3;
  options.workers_per_silo = 2;
  options.seed = 42;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();

  PersistenceOptions persistence;
  persistence.policy = PersistPolicy::kOnEveryUpdate;
  if (mode.retries) {
    persistence.retry.max_retries = 10;
    persistence.retry.initial_backoff_us = 5 * kMicrosPerMilli;
  } else {
    persistence.retry = RetryPolicy::None();
  }
  shm::ShmPlatform::RegisterTypes(cluster, persistence);
  shm::ShmPlatform::ApplyPaperPlacement(cluster);

  FaultPlan plan;
  plan.seed = 7;
  plan.crashes.push_back(SiloCrashEvent{/*at_us=*/3 * kMicrosPerSecond,
                                        /*silo=*/1,
                                        /*restart_after_us=*/3 *
                                            kMicrosPerSecond});
  plan.message.drop_prob = 0.01;
  plan.message.duplicate_prob = 0.005;
  plan.storage.error_prob = 0.05;
  plan.storage.latency_spike_prob = 0.02;
  FaultInjector injector(plan);

  MemKvStore backing;
  auto faulty = std::make_shared<FaultyStateStorage>(
      std::make_shared<KvStateStorage>(&backing), &injector);
  cluster.RegisterStateStorage("default", faulty);

  shm::ShmClientOptions client;
  client.durable_acks = mode.durable_acks;
  if (mode.retries) {
    client.retry.max_retries = 12;
    client.retry.initial_backoff_us = 50 * kMicrosPerMilli;
    client.retry.max_backoff_us = kMicrosPerSecond;
  }
  shm::ShmPlatform platform(&cluster, client);

  shm::ShmTopology topo;
  topo.sensors = kSensors;
  topo.sensors_per_org = kSensors;
  topo.channels_per_sensor = 2;
  topo.virtual_every = 0;
  topo.window_capacity = 4096;

  auto setup = platform.Setup(topo);
  harness.RunFor(10 * kMicrosPerSecond);
  if (!setup.Ready() || !setup.Get().value().ok()) return out;
  injector.Arm(&cluster);

  Micros t0 = harness.Now();
  struct AckedPoint {
    std::string channel_key;
    Micros ts;
    double value;
  };
  struct PendingInsert {
    Future<Status> ack;
    std::vector<AckedPoint> points;
  };
  std::vector<PendingInsert> inserts;
  for (int round = 0; round < kRounds; ++round) {
    Micros ts = harness.Now();
    for (int s = 0; s < kSensors; ++s) {
      double base = s * 1e6 + round;
      std::vector<shm::DataPoint> pts = {{ts, base}, {ts, base + 0.5}};
      PendingInsert pi;
      pi.points = {
          {shm::ShmPlatform::ChannelKey(s, 0), ts, base},
          {shm::ShmPlatform::ChannelKey(s, 1), ts, base + 0.5},
      };
      pi.ack = platform.Insert(topo, s, std::move(pts));
      inserts.push_back(std::move(pi));
    }
    harness.RunFor(250 * kMicrosPerMilli);
  }
  harness.RunFor(120 * kMicrosPerSecond);
  out.total_time = harness.Now() - t0;

  std::map<std::string, std::vector<AckedPoint>> acked_by_channel;
  for (auto& pi : inserts) {
    if (pi.ack.Ready() && pi.ack.Get().ok() && pi.ack.Get().value().ok()) {
      ++out.acked;
      for (const AckedPoint& p : pi.points) {
        acked_by_channel[p.channel_key].push_back(p);
      }
    } else {
      ++out.failed;
    }
  }

  // Kill the ingest-era cluster state the hard way: what does a read after
  // full recovery actually return, and does it contain every acked point?
  for (int s = 0; s < kSensors; ++s) {
    for (int c = 0; c < topo.channels_per_sensor; ++c) {
      auto range = platform.RawRange(topo, s, c, 0,
                                     std::numeric_limits<Micros>::max());
      harness.RunFor(30 * kMicrosPerSecond);
      std::set<std::pair<Micros, double>> present;
      if (range.Ready()) {
        Result<shm::RangeReply> rr = range.Get();
        if (rr.ok()) {
          for (const shm::DataPoint& p : rr.value().points) {
            present.insert({p.ts, p.value});
          }
        }
      }
      for (const AckedPoint& p :
           acked_by_channel[shm::ShmPlatform::ChannelKey(s, c)]) {
        if (!present.count({p.ts, p.value})) ++out.lost_acked_points;
      }
    }
  }

  out.client_retries = platform.insert_retries();
  out.dropped = injector.messages_dropped();
  out.storage_errors = injector.storage_errors();
  out.metrics = harness.SnapshotMetrics();
  out.ok = true;
  return out;
}

// --- Part 2: unannounced failures vs the membership detector ----------------

struct BenchState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

class BenchCounter : public PersistentActor<BenchState> {
 public:
  static constexpr char kTypeName[] = "bench.MbrCounter";

  BenchCounter()
      : PersistentActor<BenchState>(PersistenceOptions{
            PersistPolicy::kOnEveryUpdate, 100, 10 * kMicrosPerSecond,
            "default", RetryPolicy{}}) {}

  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
};

struct DetectorResult {
  int trials = 0;
  int evictions = 0;
  /// wedge -> declared dead, one sample per trial.
  Histogram detect_us;
  /// wedge -> an affected in-flight read completes OK, one sample per read
  /// that was pending against the failed silo.
  Histogram recover_us;
  int64_t dead_letters = 0;
  int64_t deadline_timeouts = 0;
  int64_t failover_resubmitted = 0;
  /// Last trial's end-of-run registry snapshot (--metrics-json export).
  MetricsSnapshot metrics;
};

/// One seeded trial: wedge (or gray-fail) silo 1 with reads in flight and
/// measure how long detection and recovery take. Returns false on a trial
/// that never converged.
bool RunDetectorTrial(bool suppress_only, uint64_t seed, DetectorResult* out) {
  RuntimeOptions options;
  options.num_silos = 3;
  options.workers_per_silo = 2;
  options.seed = seed;
  options.membership.enable = true;
  options.membership.lease_duration_us = kMicrosPerSecond;
  options.membership.heartbeat_period_us = 200 * kMicrosPerMilli;
  options.membership.probe_period_us = 250 * kMicrosPerMilli;
  options.membership.probe_timeout_us = 100 * kMicrosPerMilli;
  options.membership.suspect_after_missed = 2;
  options.membership.eviction_quorum = 2;
  options.membership.failover.max_retries = 3;
  options.membership.failover.initial_backoff_us = 10 * kMicrosPerMilli;
  options.default_call_deadline_us = 5 * kMicrosPerSecond;

  MemKvStore system_kv;
  MemKvStore grain_kv;
  SimHarness harness(options, &system_kv);
  Cluster& cluster = harness.cluster();
  static const Status registered = [] {
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        BenchCounter::kTypeName, &BenchCounter::Add, "BenchCounter.Add"));
    return MethodRegistry::Global().Register(
        BenchCounter::kTypeName, &BenchCounter::Value, "BenchCounter.Value",
        /*idempotent=*/true);
  }();
  if (!registered.ok()) return false;
  cluster.RegisterActorType<BenchCounter>();
  cluster.RegisterStateStorage(
      "default", std::make_shared<KvStateStorage>(&grain_kv));

  constexpr int kCounters = 12;
  constexpr SiloId kVictim = 1;
  std::vector<ActorRef<BenchCounter>> refs;
  for (int i = 0; i < kCounters; ++i) {
    refs.push_back(cluster.Ref<BenchCounter>("b" + std::to_string(i)));
    auto f = refs.back().Call(&BenchCounter::Add, int64_t{i + 1});
    if (!RunUntilReady(harness, f, 10 * kMicrosPerSecond) || !f.Get().ok()) {
      return false;
    }
  }
  harness.RunFor(kMicrosPerSecond);  // Drain storage writes.

  std::vector<int> on_victim;
  for (int i = 0; i < kCounters; ++i) {
    auto host = cluster.directory().Lookup(
        ActorId{BenchCounter::kTypeName, "b" + std::to_string(i)});
    if (host.has_value() && host.value() == kVictim) on_victim.push_back(i);
  }

  const Micros wedge_at = harness.Now();
  if (suppress_only) {
    cluster.membership()->SuppressSilo(kVictim, true);
  } else {
    cluster.silo(kVictim)->SetWedged(true);
  }
  // In-flight reads against the failing silo: under a full wedge these ride
  // the failover path once the eviction lands; under a gray failure the
  // silo still answers them directly.
  std::vector<std::pair<int, Future<int64_t>>> reads;
  for (int i : on_victim) {
    reads.emplace_back(i, refs[i].Call(&BenchCounter::Value));
  }
  // Advance in 1 ms steps so each read's completion time (and the eviction
  // itself) is observed at millisecond resolution.
  const Micros give_up = harness.Now() + 20 * kMicrosPerSecond;
  Micros evicted_at = 0;
  std::vector<char> done(reads.size(), 0);
  size_t remaining = reads.size();
  while (harness.Now() < give_up && (evicted_at == 0 || remaining > 0)) {
    harness.RunFor(kMicrosPerMilli);
    if (evicted_at == 0 && !cluster.SiloAlive(kVictim)) {
      evicted_at = cluster.membership()->LastEvictionAt(kVictim);
    }
    for (size_t k = 0; k < reads.size(); ++k) {
      if (done[k] || !reads[k].second.Ready()) continue;
      done[k] = 1;
      --remaining;
      auto r = reads[k].second.Get();
      if (r.ok() && r.value() == reads[k].first + 1) {
        out->recover_us.Record(harness.Now() - wedge_at);
      }
    }
  }
  if (evicted_at == 0) return false;
  out->detect_us.Record(evicted_at - wedge_at);
  ++out->evictions;
  auto counters = cluster.cluster_counters();
  out->dead_letters += counters.dead_letters;
  out->deadline_timeouts += counters.deadline_timeouts;
  out->failover_resubmitted += counters.failover_resubmitted;
  out->metrics = harness.SnapshotMetrics();
  ++out->trials;
  return true;
}

}  // namespace
}  // namespace aodb::bench

int main(int argc, char** argv) {
  using namespace aodb;
  using namespace aodb::bench;

  MetricsJsonWriter metrics_json(MetricsJsonPathFromArgs(argc, argv));

  std::printf("=== Chaos recovery: SHM ingestion through silo crash ===\n");
  std::printf(
      "%d sensors x %d rounds; seed-42 cluster, seed-7 fault plan:\n"
      "silo 1 killed at t+3s (restarts 3s later), 1%% message drop,\n"
      "0.5%% duplication, 5%% transient storage errors.\n\n",
      kSensors, kRounds);

  const Mode kModes[] = {
      {"no retries, fast acks", false, false},
      {"retries, fast acks", true, false},
      {"retries + durable acks", true, true},
  };
  TablePrinter table({"client mode", "acked", "failed", "acked pts lost",
                      "retries", "drops", "st.errors", "wall (ms)"});
  for (const Mode& mode : kModes) {
    ModeResult r = RunMode(mode);
    if (!r.ok) {
      std::fprintf(stderr, "mode %s failed setup\n", mode.name);
      return 1;
    }
    metrics_json.Add(std::string("chaos:") + mode.name, r.metrics);
    table.AddRow({mode.name, TablePrinter::Fmt(r.acked),
                  TablePrinter::Fmt(r.failed),
                  TablePrinter::Fmt(r.lost_acked_points),
                  TablePrinter::Fmt(r.client_retries),
                  TablePrinter::Fmt(r.dropped),
                  TablePrinter::Fmt(r.storage_errors),
                  TablePrinter::FmtMsFromUs(r.total_time)});
  }
  table.Print();
  std::printf(
      "\nShape check: without retries, crash-window inserts fail outright"
      "\n(and any fast ack issued before persistence can be lost). Client"
      "\nretries recover the failures; durable acks additionally guarantee"
      "\nzero acked-point loss — the chaos acceptance contract.\n");

  std::printf(
      "\n=== Membership detector: unannounced crash & gray failure ===\n"
      "3 silos, heartbeat 200ms / probe 250ms (timeout 100ms), suspect\n"
      "after 2 missed probes, quorum 2, lease 1s. Silo 1 fails WITHOUT\n"
      "KillSilo; only the lease/probe protocol can notice.\n\n");

  constexpr int kTrials = 12;
  struct Scenario {
    const char* name;
    bool suppress_only;
  };
  const Scenario kScenarios[] = {
      {"wedged executor (hang)", false},
      {"gray failure (silent agent)", true},
  };
  TablePrinter det_table({"scenario", "trials", "evicted", "detect p50 (ms)",
                          "detect p99 (ms)", "recover p50 (ms)",
                          "recover p99 (ms)", "failovers", "dead letters"});
  for (const Scenario& sc : kScenarios) {
    DetectorResult r;
    for (int t = 0; t < kTrials; ++t) {
      if (!RunDetectorTrial(sc.suppress_only, /*seed=*/100 + t * 17, &r)) {
        std::fprintf(stderr, "detector trial %d (%s) never converged\n", t,
                     sc.name);
        return 1;
      }
    }
    metrics_json.Add(std::string("detector:") + sc.name, r.metrics);
    det_table.AddRow(
        {sc.name, TablePrinter::Fmt(static_cast<int64_t>(r.trials)),
         TablePrinter::Fmt(static_cast<int64_t>(r.evictions)),
         TablePrinter::FmtMsFromUs(r.detect_us.Percentile(50)),
         TablePrinter::FmtMsFromUs(r.detect_us.Percentile(99)),
         TablePrinter::FmtMsFromUs(r.recover_us.Percentile(50)),
         TablePrinter::FmtMsFromUs(r.recover_us.Percentile(99)),
         TablePrinter::Fmt(r.failover_resubmitted),
         TablePrinter::Fmt(r.dead_letters)});
  }
  det_table.Print();
  std::printf(
      "\nShape check: detection lands within the suspicion window (~2 probe"
      "\nperiods + timeout) in both scenarios. A full wedge recovers via"
      "\nfailover shortly after eviction; a gray failure 'recovers'"
      "\nimmediately because the silo never stopped serving reads.\n");
  if (!metrics_json.Write()) return 1;
  return 0;
}
