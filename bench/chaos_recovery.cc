// Chaos recovery: ingestion under the fault-injection subsystem.
//
// Runs the SHM ingestion workload through a seeded FaultPlan (one of three
// silos killed mid-run and restarted, 1% message drop, 0.5% duplication, 5%
// transient storage errors) under three client configurations, and reports
// how many acked packets the platform subsequently lost:
//
//   (a) no retries, fast acks     — the paper's implicit baseline
//   (b) client retries, fast acks — crashes heal but in-window acks can lie
//   (c) retries + durable acks    — the robustness contract: no acked write
//                                   is ever lost
//
// Every configuration uses the same fault seed, so the chaos the three modes
// face is identical and the table isolates the policy, not the luck.

#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "actor/fault.h"
#include "common/table_printer.h"
#include "shm/platform.h"
#include "sim/sim_harness.h"
#include "storage/faulty_storage.h"
#include "storage/mem_kv.h"

namespace aodb::bench {
namespace {

constexpr int kSensors = 6;
constexpr int kRounds = 36;

struct ModeResult {
  int64_t acked = 0;
  int64_t failed = 0;
  int64_t lost_acked_points = 0;
  int64_t client_retries = 0;
  int64_t dropped = 0;
  int64_t storage_errors = 0;
  Micros total_time = 0;
  bool ok = false;
};

struct Mode {
  const char* name;
  bool retries;
  bool durable_acks;
};

ModeResult RunMode(const Mode& mode) {
  ModeResult out;
  RuntimeOptions options;
  options.num_silos = 3;
  options.workers_per_silo = 2;
  options.seed = 42;
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();

  PersistenceOptions persistence;
  persistence.policy = PersistPolicy::kOnEveryUpdate;
  if (mode.retries) {
    persistence.retry.max_retries = 10;
    persistence.retry.initial_backoff_us = 5 * kMicrosPerMilli;
  } else {
    persistence.retry = RetryPolicy::None();
  }
  shm::ShmPlatform::RegisterTypes(cluster, persistence);
  shm::ShmPlatform::ApplyPaperPlacement(cluster);

  FaultPlan plan;
  plan.seed = 7;
  plan.crashes.push_back(SiloCrashEvent{/*at_us=*/3 * kMicrosPerSecond,
                                        /*silo=*/1,
                                        /*restart_after_us=*/3 *
                                            kMicrosPerSecond});
  plan.message.drop_prob = 0.01;
  plan.message.duplicate_prob = 0.005;
  plan.storage.error_prob = 0.05;
  plan.storage.latency_spike_prob = 0.02;
  FaultInjector injector(plan);

  MemKvStore backing;
  auto faulty = std::make_shared<FaultyStateStorage>(
      std::make_shared<KvStateStorage>(&backing), &injector);
  cluster.RegisterStateStorage("default", faulty);

  shm::ShmClientOptions client;
  client.durable_acks = mode.durable_acks;
  if (mode.retries) {
    client.retry.max_retries = 12;
    client.retry.initial_backoff_us = 50 * kMicrosPerMilli;
    client.retry.max_backoff_us = kMicrosPerSecond;
  }
  shm::ShmPlatform platform(&cluster, client);

  shm::ShmTopology topo;
  topo.sensors = kSensors;
  topo.sensors_per_org = kSensors;
  topo.channels_per_sensor = 2;
  topo.virtual_every = 0;
  topo.window_capacity = 4096;

  auto setup = platform.Setup(topo);
  harness.RunFor(10 * kMicrosPerSecond);
  if (!setup.Ready() || !setup.Get().value().ok()) return out;
  injector.Arm(&cluster);

  Micros t0 = harness.Now();
  struct AckedPoint {
    std::string channel_key;
    Micros ts;
    double value;
  };
  struct PendingInsert {
    Future<Status> ack;
    std::vector<AckedPoint> points;
  };
  std::vector<PendingInsert> inserts;
  for (int round = 0; round < kRounds; ++round) {
    Micros ts = harness.Now();
    for (int s = 0; s < kSensors; ++s) {
      double base = s * 1e6 + round;
      std::vector<shm::DataPoint> pts = {{ts, base}, {ts, base + 0.5}};
      PendingInsert pi;
      pi.points = {
          {shm::ShmPlatform::ChannelKey(s, 0), ts, base},
          {shm::ShmPlatform::ChannelKey(s, 1), ts, base + 0.5},
      };
      pi.ack = platform.Insert(topo, s, std::move(pts));
      inserts.push_back(std::move(pi));
    }
    harness.RunFor(250 * kMicrosPerMilli);
  }
  harness.RunFor(120 * kMicrosPerSecond);
  out.total_time = harness.Now() - t0;

  std::map<std::string, std::vector<AckedPoint>> acked_by_channel;
  for (auto& pi : inserts) {
    if (pi.ack.Ready() && pi.ack.Get().ok() && pi.ack.Get().value().ok()) {
      ++out.acked;
      for (const AckedPoint& p : pi.points) {
        acked_by_channel[p.channel_key].push_back(p);
      }
    } else {
      ++out.failed;
    }
  }

  // Kill the ingest-era cluster state the hard way: what does a read after
  // full recovery actually return, and does it contain every acked point?
  for (int s = 0; s < kSensors; ++s) {
    for (int c = 0; c < topo.channels_per_sensor; ++c) {
      auto range = platform.RawRange(topo, s, c, 0,
                                     std::numeric_limits<Micros>::max());
      harness.RunFor(30 * kMicrosPerSecond);
      std::set<std::pair<Micros, double>> present;
      if (range.Ready()) {
        Result<shm::RangeReply> rr = range.Get();
        if (rr.ok()) {
          for (const shm::DataPoint& p : rr.value().points) {
            present.insert({p.ts, p.value});
          }
        }
      }
      for (const AckedPoint& p :
           acked_by_channel[shm::ShmPlatform::ChannelKey(s, c)]) {
        if (!present.count({p.ts, p.value})) ++out.lost_acked_points;
      }
    }
  }

  out.client_retries = platform.insert_retries();
  out.dropped = injector.messages_dropped();
  out.storage_errors = injector.storage_errors();
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace aodb::bench

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf("=== Chaos recovery: SHM ingestion through silo crash ===\n");
  std::printf(
      "%d sensors x %d rounds; seed-42 cluster, seed-7 fault plan:\n"
      "silo 1 killed at t+3s (restarts 3s later), 1%% message drop,\n"
      "0.5%% duplication, 5%% transient storage errors.\n\n",
      kSensors, kRounds);

  const Mode kModes[] = {
      {"no retries, fast acks", false, false},
      {"retries, fast acks", true, false},
      {"retries + durable acks", true, true},
  };
  TablePrinter table({"client mode", "acked", "failed", "acked pts lost",
                      "retries", "drops", "st.errors", "wall (ms)"});
  for (const Mode& mode : kModes) {
    ModeResult r = RunMode(mode);
    if (!r.ok) {
      std::fprintf(stderr, "mode %s failed setup\n", mode.name);
      return 1;
    }
    table.AddRow({mode.name, TablePrinter::Fmt(r.acked),
                  TablePrinter::Fmt(r.failed),
                  TablePrinter::Fmt(r.lost_acked_points),
                  TablePrinter::Fmt(r.client_retries),
                  TablePrinter::Fmt(r.dropped),
                  TablePrinter::Fmt(r.storage_errors),
                  TablePrinter::FmtMsFromUs(r.total_time)});
  }
  table.Print();
  std::printf(
      "\nShape check: without retries, crash-window inserts fail outright"
      "\n(and any fast ack issued before persistence can be lost). Client"
      "\nretries recover the failures; durable acks additionally guarantee"
      "\nzero acked-point loss — the chaos acceptance contract.\n");
  return 0;
}
