// Ablation: enforcing cross-actor relationship constraints (paper §4.4).
//
// The ownership relation between cows and farmers spans actors. The paper's
// options: (a) transactions, (b) a multi-actor update workflow, (c) naive
// uncoordinated updates (what you get with neither). This bench races two
// concurrent transfers per cow to different buyers and reports latency,
// messages, and — the §4.4 point — consistency violations: cows whose
// recorded owner disagrees with the farmers' herd sets afterwards.

#include <cstdio>
#include <set>

#include "cattle/platform.h"
#include "common/table_printer.h"
#include "sim/sim_harness.h"

namespace aodb::bench {
namespace {

using namespace aodb::cattle;

constexpr int kCowsPerMode = 60;

struct ModeResult {
  Micros total_time = 0;
  int committed = 0;
  int violations = 0;
  bool ok = false;
};

enum class Mode { kTxn, kWorkflow, kDirect };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kTxn: return "2PC transaction";
    case Mode::kWorkflow: return "saga workflow";
    case Mode::kDirect: return "uncoordinated tells";
  }
  return "?";
}

ModeResult RunMode(Mode mode) {
  ModeResult out;
  RuntimeOptions runtime;
  runtime.num_silos = 3;
  runtime.workers_per_silo = 2;
  runtime.seed = 17;
  SimHarness harness(runtime);
  CattlePlatform::RegisterTypes(harness.cluster());
  CattlePlatform platform(&harness.cluster());

  // Every cow starts at farm-src; two buyers race for it.
  for (int i = 0; i < kCowsPerMode; ++i) {
    platform.RegisterCow(CattlePlatform::CowKey(i), "farm-src", "Angus");
  }
  harness.RunFor(60 * kMicrosPerSecond);

  Micros t0 = harness.Now();
  // A dedicated coordinator with a larger retry budget: all transfers
  // contend on the single seller actor's lock.
  RetryPolicy txn_retry;
  txn_retry.max_retries = 60;
  txn_retry.initial_backoff_us = 5 * kMicrosPerMilli;
  TxnManager txn(&harness.cluster(), TxnOptions{txn_retry});
  std::vector<Future<Status>> transfers;
  for (int i = 0; i < kCowsPerMode; ++i) {
    std::string cow = CattlePlatform::CowKey(i);
    for (const char* buyer : {"farm-buy-a", "farm-buy-b"}) {
      switch (mode) {
        case Mode::kTxn:
          transfers.push_back(txn.Run({
              TxnOp{CowActor::kTypeName, cow, CowActor::kOpSetOwner, buyer},
              TxnOp{FarmerActor::kTypeName, "farm-src",
                    FarmerActor::kOpRemoveCow, cow},
              TxnOp{FarmerActor::kTypeName, buyer, FarmerActor::kOpAddCow,
                    cow},
          }));
          break;
        case Mode::kWorkflow:
          transfers.push_back(
              platform.TransferOwnershipWorkflow(cow, "farm-src", buyer));
          break;
        case Mode::kDirect: {
          // No coordination: three independent fire-and-forget updates.
          auto& cluster = harness.cluster();
          cluster.Ref<CowActor>(cow).Tell(&CowActor::ExecuteOp,
                                          std::string(CowActor::kOpSetOwner),
                                          std::string(buyer));
          cluster.Ref<FarmerActor>("farm-src")
              .Tell(&FarmerActor::ExecuteOp,
                    std::string(FarmerActor::kOpRemoveCow), cow);
          cluster.Ref<FarmerActor>(buyer).Tell(
              &FarmerActor::ExecuteOp, std::string(FarmerActor::kOpAddCow),
              cow);
          break;
        }
      }
    }
  }
  if (transfers.empty()) {
    // Uncoordinated tells: run until the message flow quiesces.
    int64_t prev = -1;
    while (harness.cluster().TotalMessagesProcessed() != prev) {
      prev = harness.cluster().TotalMessagesProcessed();
      harness.RunFor(kMicrosPerSecond);
    }
  } else {
    for (auto& f : transfers) {
      if (!RunUntilReady(harness, f, 600 * kMicrosPerSecond)) break;
    }
  }
  for (auto& f : transfers) {
    if (f.Ready() && f.Get().ok() && f.Get().value().ok()) ++out.committed;
  }
  out.total_time = harness.Now() - t0;

  // Consistency audit: exactly one farmer must hold each cow, and it must
  // be the cow's recorded owner.
  auto src = harness.cluster().Ref<FarmerActor>("farm-src").Call(
      &FarmerActor::Herd);
  auto a = harness.cluster().Ref<FarmerActor>("farm-buy-a").Call(
      &FarmerActor::Herd);
  auto b = harness.cluster().Ref<FarmerActor>("farm-buy-b").Call(
      &FarmerActor::Herd);
  harness.RunFor(10 * kMicrosPerSecond);
  if (!src.Ready() || !a.Ready() || !b.Ready()) return out;
  std::map<std::string, std::set<std::string>> holders;
  for (const auto& [farm, herd] :
       {std::pair<std::string, std::vector<std::string>>{
            "farm-src", src.Get().value()},
        {"farm-buy-a", a.Get().value()},
        {"farm-buy-b", b.Get().value()}}) {
    for (const std::string& cow : herd) holders[cow].insert(farm);
  }
  for (int i = 0; i < kCowsPerMode; ++i) {
    std::string cow = CattlePlatform::CowKey(i);
    auto info_f = harness.cluster().Ref<CowActor>(cow).Call(&CowActor::Info);
    harness.RunFor(2 * kMicrosPerSecond);
    if (!info_f.Ready()) return out;
    std::string owner = info_f.Get().value().owner_farmer;
    const auto& hs = holders[cow];
    bool consistent = hs.size() == 1 && *hs.begin() == owner;
    if (!consistent) ++out.violations;
  }
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace aodb::bench

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf(
      "=== Ablation: cross-actor constraint enforcement (paper §4.4) ===\n");
  std::printf(
      "%d cows, 2 racing transfers each (to different buyers) per mode\n\n",
      kCowsPerMode);

  TablePrinter table({"mechanism", "committed", "violations",
                      "wall time (ms)"});
  for (Mode mode : {Mode::kTxn, Mode::kWorkflow, Mode::kDirect}) {
    ModeResult r = RunMode(mode);
    if (!r.ok) {
      std::fprintf(stderr, "mode %s failed\n", ModeName(mode));
      return 1;
    }
    table.AddRow({ModeName(mode), TablePrinter::Fmt(int64_t{r.committed}),
                  TablePrinter::Fmt(int64_t{r.violations}),
                  TablePrinter::FmtMsFromUs(r.total_time)});
  }
  table.Print();
  std::printf(
      "\nShape check: transactions serialize the racing transfers (one"
      "\ncommit per cow, zero violations). The workflow also converges but"
      "\nadmits transient intermediate states. Uncoordinated updates leave"
      "\npermanent violations — the paper's argument for §4.4's principle.\n");
  return 0;
}
