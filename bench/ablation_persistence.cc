// Ablation: grain-state durability policy (paper §5).
//
// "If we wrote state to persistent storage after each request, we would
// need 200 write requests every second to the cloud storage system."
// The paper therefore recommends collecting a window of updates before
// forcing them to storage (and its benchmarks only write at shutdown).
// This bench runs the ingestion workload against the simulated DynamoDB
// (200 provisioned write units/s, as in the paper's setup) under all three
// policies and reports storage traffic and throttling.

#include <cstdio>

#include "common/table_printer.h"
#include "shm_bench_util.h"
#include "storage/cloud_kv.h"
#include "storage/mem_kv.h"

namespace aodb::bench {
namespace {

struct PolicyResult {
  ShmRunResult run;
  int64_t cloud_writes = 0;
  int64_t throttled = 0;
};

PolicyResult RunWithPolicy(PersistPolicy policy) {
  PolicyResult out;
  RuntimeOptions runtime;
  runtime.num_silos = 1;
  runtime.workers_per_silo = 2;
  runtime.seed = 99;

  SimHarness harness(runtime);
  auto backing = std::make_shared<MemKvStore>();
  CloudKvOptions cloud_opts;
  cloud_opts.write_units_per_sec = 200;  // The paper's provisioning.
  // Reads burst only during setup (one state read per activation); keep
  // them out of the picture so the bench isolates write behaviour.
  cloud_opts.read_units_per_sec = 5000;
  cloud_opts.max_throttle_wait_us = 2 * kMicrosPerSecond;
  auto cloud =
      std::make_shared<CloudKvStateStorage>(backing.get(), cloud_opts);
  harness.cluster().RegisterStateStorage("default", cloud);

  PersistenceOptions persistence;
  persistence.policy = policy;
  persistence.window_updates = 60;  // ~1 write/channel/minute.
  persistence.window_interval_us = 60 * kMicrosPerSecond;
  shm::ShmPlatform::RegisterTypes(harness.cluster(), persistence);
  shm::ShmPlatform::ApplyPaperPlacement(harness.cluster());
  shm::ShmPlatform platform(&harness.cluster());

  shm::ShmTopology topology;
  topology.sensors = 200;  // 200 req/s -> 400+ state updates/s offered.
  topology.window_capacity = 128;
  auto setup = platform.Setup(topology);
  harness.RunFor(120 * kMicrosPerSecond);
  if (!setup.Ready() || !setup.Get().value_or(Status::Internal("")).ok()) {
    return out;
  }
  int64_t writes_before = cloud->writes();

  LoadGenOptions load;
  load.duration_us = BenchDurationUs();
  ShmLoadGen gen(&platform, topology, harness.client_executor(), load);
  gen.Start();
  harness.RunUntil(gen.end_time() + 30 * kMicrosPerSecond);

  out.run.setup_ok = true;
  out.run.report = gen.Finish();
  out.cloud_writes = cloud->writes() - writes_before;
  out.throttled = cloud->throttled();
  return out;
}

}  // namespace
}  // namespace aodb::bench

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf(
      "=== Ablation: durability policy vs provisioned cloud capacity "
      "(paper §5) ===\n");
  std::printf(
      "200 sensors (420 channel updates/s offered) vs 200 provisioned write "
      "units/s\n\n");

  TablePrinter table({"policy", "achieved req/s", "cloud writes",
                      "writes/s", "throttled"});
  struct Named {
    PersistPolicy policy;
    const char* name;
  };
  const Named kPolicies[] = {
      {PersistPolicy::kOnEveryUpdate, "write-per-update"},
      {PersistPolicy::kWindowed, "windowed (60 updates)"},
      {PersistPolicy::kOnDeactivate, "on-deactivate (paper bench)"},
  };
  double seconds =
      static_cast<double>(BenchDurationUs()) / kMicrosPerSecond;
  for (const Named& p : kPolicies) {
    PolicyResult r = RunWithPolicy(p.policy);
    if (!r.run.setup_ok) {
      std::fprintf(stderr, "setup failed for %s\n", p.name);
      return 1;
    }
    table.AddRow({p.name,
                  TablePrinter::Fmt(r.run.report.achieved_insert_rps, 1),
                  TablePrinter::Fmt(r.cloud_writes),
                  TablePrinter::Fmt(
                      static_cast<double>(r.cloud_writes) / seconds, 1),
                  TablePrinter::Fmt(r.throttled)});
  }
  table.Print();
  std::printf(
      "\nShape check: write-per-update exceeds the provisioned 200 units/s"
      "\nand throttles heavily; the windowed policy reduces storage traffic"
      "\nby ~the window factor; on-deactivate writes nothing during steady"
      "\nstate. Ingestion throughput is unaffected (write-behind).\n");
  return 0;
}
