// Ablation: activation placement strategy (paper §5).
//
// The paper reports having to change Orleans' default random placement to
// prefer-local for sensor channels and aggregators, "minimizing the need to
// perform remote procedure calls when processing incoming requests". This
// bench quantifies that decision on a 4-silo cluster: with random placement
// most sensor->channel->aggregator hops cross silos and pay network latency
// and remote queueing; with prefer-local the whole per-sensor pipeline is
// co-located.

#include <cstdio>

#include "common/table_printer.h"
#include "shm_bench_util.h"

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf("=== Ablation: channel/aggregator placement (paper §5) ===\n");
  std::printf("4 silos x 3 vCPU, 4,200 sensors (~45%% utilization)\n\n");

  TablePrinter table({"placement", "achieved req/s", "insert_mean_ms",
                      "insert_p99_ms", "util%"});

  for (bool paper_placement : {false, true}) {
    ShmRunConfig config;
    config.runtime.num_silos = 4;
    config.runtime.workers_per_silo = 3;
    config.runtime.seed = 77;
    config.topology.sensors = 4200;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = false;
    config.paper_placement = paper_placement;
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    table.AddRow(
        {paper_placement ? "prefer-local (paper)" : "random (default)",
         TablePrinter::Fmt(r.report.achieved_insert_rps, 1),
         TablePrinter::FmtMsFromUs(
             static_cast<int64_t>(r.report.insert_latency_us.Mean())),
         TablePrinter::FmtMsFromUs(r.report.insert_latency_us.Percentile(99)),
         TablePrinter::Fmt(r.utilization * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check: prefer-local placement lowers insert latency (no"
      "\ncross-silo hop inside the ingestion pipeline), matching the"
      "\npaper's deployment decision.\n");
  return 0;
}
