// Figure 9 reproduction: latency percentiles of organization live-data
// requests, concurrent with data ingestion.
//
// Same setup as Figure 8; a live-data request fans out to all ~210 channels
// of one organization and gathers their latest values, which is why the
// paper observes it slower than the single-actor raw-range request ("often
// below 1 sec" at 2,000 sensors, with a visible 99.9th-percentile tail).

#include <cstdio>

#include "common/table_printer.h"
#include "shm_bench_util.h"

int main() {
  using namespace aodb;
  using namespace aodb::bench;

  std::printf(
      "=== Figure 9: organization live-data request latency under ingestion "
      "load ===\n");
  std::printf(
      "A live request gathers the latest value of all ~210 channels of one "
      "organization\n");
  std::printf("Paper reference: <1s at 2000 sensors; slower than raw-range "
              "(Figure 8)\n\n");

  TablePrinter table({"sensors", "live_reqs", "mean_ms", "p50_ms", "p90_ms",
                      "p99_ms", "p99.9_ms", "max_ms", "util%"});

  const int kSweep[] = {500, 1000, 1500, 2000};
  for (int sensors : kSweep) {
    ShmRunConfig config;
    config.runtime.num_silos = 1;
    config.runtime.workers_per_silo = 3;  // m5.xlarge.
    config.runtime.seed = 3000 + sensors;
    config.topology.sensors = sensors;
    config.load.duration_us = BenchDurationUs();
    config.load.user_queries = true;
    ShmRunResult r = RunShmExperiment(config);
    if (!r.setup_ok) {
      std::fprintf(stderr, "setup failed at %d sensors\n", sensors);
      return 1;
    }
    const Histogram& h = r.report.live_latency_us;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(sensors)),
                  TablePrinter::Fmt(h.count()),
                  TablePrinter::FmtMsFromUs(static_cast<int64_t>(h.Mean())),
                  TablePrinter::FmtMsFromUs(h.Percentile(50)),
                  TablePrinter::FmtMsFromUs(h.Percentile(90)),
                  TablePrinter::FmtMsFromUs(h.Percentile(99)),
                  TablePrinter::FmtMsFromUs(h.Percentile(99.9)),
                  TablePrinter::FmtMsFromUs(h.max()),
                  TablePrinter::Fmt(r.utilization * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check: monotone growth with load; live-data latency exceeds"
      "\nFigure 8's raw-range latency at equal load (fan-out of ~210 actors"
      "\nvs 1); still interactive (<~1s) at the design point.\n");
  return 0;
}
