// Flash crowd: overload management under heavy key skew.
//
// 400 persistent counter actors on a 4-silo cluster (1 worker each, 400us
// per write => 10k writes/s cluster capacity), driven at 6,000 writes/s.
// Three phases, same seed:
//
//   (a) uniform, managed    — every actor gets an equal share; overload
//                             management on. The latency baseline.
//   (b) skewed, unmanaged   — 1% of the actors (4, deliberately co-located
//                             on one silo) receive 90% of the traffic with
//                             no mailbox bounds, shedding, or migration.
//                             The hot silo's queue grows without bound.
//   (c) skewed, managed     — same skew with bounded mailboxes (callers see
//                             Overloaded and retry with backoff), the silo
//                             load shedder, and the hot-actor migration
//                             controller enabled.
//
// The acceptance shape: phase (c) p99 lands within 2x of phase (a) p99 —
// the controller spreads the hot actors across silos and backpressure
// absorbs the transient — while phase (b) p99 collapses into queueing
// delay. Every phase also proves write conservation: the sum of final
// counter values must equal warmup + acked writes exactly, so migration
// (deactivate -> directory move -> reactivate from persisted state) loses
// no acked write and backpressure retries double-apply none.
//
// Latency is recorded for requests fired after a warm-in of 1/5 of the run,
// so phase (c)'s percentiles describe the managed steady state, not the
// pre-migration transient it exists to fix.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/retry_async.h"
#include "shm_bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "sim/sim_harness.h"
#include "storage/mem_kv.h"
#include "storage/persistent_actor.h"

namespace aodb::bench {
namespace {

constexpr int kActors = 400;
constexpr int kHotActors = 4;  // 1% of the population...
constexpr double kHotShare = 0.9;  // ...receiving 90% of the traffic.
// 60% of cluster capacity. The skew then makes the hot silo's inflow
// (90% of this + its uniform share) more than 2x its capacity, so the
// controller must spread ALL the hot actors before the silo is healthy —
// after which every silo runs at the same 60% the uniform phase does.
constexpr int kWritesPerSec = 6000;
constexpr Micros kWriteCostUs = 400;

struct FcState {
  int64_t value = 0;
  void Encode(BufWriter* w) const { w->PutSigned(value); }
  Status Decode(BufReader* r) { return r->GetSigned(&value); }
};

class FcCounter : public PersistentActor<FcState> {
 public:
  static constexpr char kTypeName[] = "bench.FcCounter";

  // Persist on deactivation only: migration's deactivate-side flush is then
  // the ONLY thing standing between an acked write and loss, which is
  // exactly the contract this bench checks.
  FcCounter()
      : PersistentActor<FcState>(PersistenceOptions{
            PersistPolicy::kOnDeactivate, 100, 10 * kMicrosPerSecond,
            "default", RetryPolicy{}}) {}

  int64_t Add(int64_t d) {
    state().value += d;
    MarkDirty();
    return state().value;
  }
  int64_t Value() { return state().value; }
};

struct PhaseResult {
  int64_t offered = 0;
  int64_t acked = 0;
  int64_t failed = 0;
  int64_t retries = 0;
  Histogram latency;
  int64_t migrations = 0;
  int64_t mailbox_rejects = 0;
  int64_t shed = 0;
  bool conserved = false;
  int64_t counter_sum = 0;
  int64_t expected_sum = 0;
  MetricsSnapshot metrics;
  bool ok = false;
};

int64_t CounterOr0(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

struct Agg {
  int64_t acked = 0;
  int64_t failed = 0;
  int64_t retries = 0;
  int64_t outstanding = 0;
  Micros measure_from = 0;
  Histogram latency;
};

PhaseResult RunPhase(bool skewed, bool managed, Micros duration) {
  PhaseResult out;
  RuntimeOptions options;
  options.num_silos = 4;
  options.workers_per_silo = 1;
  options.seed = 42;
  if (managed) {
    options.overload.max_mailbox_depth = 64;
    options.overload.shed_watermark = 200;  // Hard watermark defaults to 2x.
    options.overload.enable_hot_migration = true;
    // A fast scan lets the controller finish the full spread (3 moves, one
    // per scan) within ~300ms of onset, so the backlog is drained well
    // before the warm-in window ends and the measured tail reflects the
    // post-adaptation steady state.
    options.overload.scan_interval_us = 100 * kMicrosPerMilli;
    options.overload.hot_actor_min_depth = 8;
    options.overload.min_load_delta = 32;
  }
  SimHarness harness(options);
  Cluster& cluster = harness.cluster();

  static const Status registered = [] {
    AODB_RETURN_NOT_OK(MethodRegistry::Global().Register(
        FcCounter::kTypeName, &FcCounter::Add, "FcCounter.Add"));
    return MethodRegistry::Global().Register(
        FcCounter::kTypeName, &FcCounter::Value, "FcCounter.Value",
        /*idempotent=*/true);
  }();
  if (!registered.ok()) return out;
  cluster.RegisterActorType<FcCounter>();
  MemKvStore kv;
  cluster.RegisterStateStorage("default",
                               std::make_shared<KvStateStorage>(&kv));
  if (managed) cluster.StartOverloadController();

  // Warm up every actor sequentially so random placement is identical in
  // every phase (same seed, same activation order).
  std::vector<std::string> keys;
  keys.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    keys.push_back("c" + std::to_string(i));
    auto f = cluster.Ref<FcCounter>(keys.back()).Call(&FcCounter::Add,
                                                      int64_t{1});
    if (!RunUntilReady(harness, f, 10 * kMicrosPerSecond) || !f.Get().ok()) {
      return out;
    }
  }

  // The hot set: the first kHotActors actors that share actor c0's silo.
  // Co-locating them makes one silo carry ~90% of the offered load until
  // (in managed phases) the controller spreads them out.
  auto host0 =
      cluster.directory().Lookup(ActorId{FcCounter::kTypeName, keys[0]});
  if (!host0.has_value()) return out;
  std::vector<int> hot;
  for (int i = 0; i < kActors && static_cast<int>(hot.size()) < kHotActors;
       ++i) {
    auto host =
        cluster.directory().Lookup(ActorId{FcCounter::kTypeName, keys[i]});
    if (host.has_value() && host.value() == host0.value()) hot.push_back(i);
  }
  if (static_cast<int>(hot.size()) < kHotActors) return out;
  std::vector<char> is_hot(kActors, 0);
  for (int i : hot) is_hot[i] = 1;

  Executor* exec = cluster.client_executor();
  Cluster* cl = &cluster;
  auto agg = std::make_shared<Agg>();
  const Micros t0 = harness.Now();
  agg->measure_from = t0 + duration / 5;

  RetryPolicy retry;
  retry.max_retries = 12;
  retry.initial_backoff_us = 10 * kMicrosPerMilli;
  retry.max_backoff_us = 160 * kMicrosPerMilli;

  const int seconds = static_cast<int>(duration / kMicrosPerSecond);
  Rng rng(2024);
  int64_t req_id = 0;
  for (int sec = 0; sec < seconds; ++sec) {
    for (int k = 0; k < kWritesPerSec; ++k) {
      int target;
      if (skewed && rng.NextDouble() < kHotShare) {
        target = hot[rng.NextBelow(kHotActors)];
      } else {
        do {
          target = static_cast<int>(rng.NextBelow(kActors));
        } while (skewed && is_hot[target]);
      }
      Micros fire_at = static_cast<Micros>(sec) * kMicrosPerSecond +
                       static_cast<Micros>(rng.NextBelow(kMicrosPerSecond));
      uint64_t seed = 0xf1a5'0000u + static_cast<uint64_t>(req_id++);
      std::string key = keys[target];
      exec->PostAfter(fire_at, [cl, exec, agg, key, seed, retry] {
        Micros sent = exec->clock()->Now();
        ++agg->outstanding;
        RetryAsync<int64_t>(
            exec, retry, seed,
            [cl, key] {
              CallOptions opts;
              opts.cost_us = kWriteCostUs;
              // Telemetry-class traffic: first to be shed, and subject to
              // the bounded mailbox; Overloaded is transient, so the retry
              // loop backs off and re-sends to the same placement.
              opts.priority = MessagePriority::kTelemetry;
              return cl->Ref<FcCounter>(key).CallWith(opts, &FcCounter::Add,
                                                      int64_t{1});
            },
            IsTransient, [agg](const Status&) { ++agg->retries; })
            .OnReady([agg, sent, exec](Result<int64_t>&& r) {
              --agg->outstanding;
              if (r.ok()) {
                ++agg->acked;
                if (sent >= agg->measure_from) {
                  agg->latency.Record(exec->clock()->Now() - sent);
                }
              } else {
                ++agg->failed;
              }
            });
      });
    }
  }
  out.offered = req_id;

  harness.RunFor(duration + kMicrosPerSecond);
  // Unmanaged skew leaves a deep backlog on the hot silo; give it time to
  // drain so every request resolves and conservation is checkable.
  const Micros give_up = harness.Now() + 120 * kMicrosPerSecond;
  while (agg->outstanding > 0 && harness.Now() < give_up) {
    harness.RunFor(100 * kMicrosPerMilli);
  }
  if (agg->outstanding > 0) return out;

  // Conservation: each acked write applied exactly once, surviving any
  // migration. Verification reads travel as control traffic (never shed).
  int64_t sum = 0;
  for (const std::string& key : keys) {
    CallOptions vopts;
    vopts.priority = MessagePriority::kControl;
    auto f = cluster.Ref<FcCounter>(key).CallWith(vopts, &FcCounter::Value);
    if (!RunUntilReady(harness, f, 10 * kMicrosPerSecond) || !f.Get().ok()) {
      return out;
    }
    sum += f.Get().value();
  }

  out.acked = agg->acked;
  out.failed = agg->failed;
  out.retries = agg->retries;
  out.latency = agg->latency;
  out.counter_sum = sum;
  out.expected_sum = kActors + agg->acked;  // Warmup + acked load writes.
  out.conserved = sum == out.expected_sum;
  out.metrics = harness.SnapshotMetrics();
  out.migrations = CounterOr0(out.metrics, "overload.migrations");
  out.mailbox_rejects = CounterOr0(out.metrics, "overload.mailbox_rejects");
  out.shed = CounterOr0(out.metrics, "overload.shed.telemetry") +
             CounterOr0(out.metrics, "overload.shed.query");
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace aodb::bench

int main(int argc, char** argv) {
  using namespace aodb;
  using namespace aodb::bench;

  Micros duration = BenchDurationUs();
  std::printf("=== Flash crowd: skewed load vs overload management ===\n");
  std::printf(
      "%d counter actors, 4 silos x 1 worker, %dus/write, %d writes/s for"
      " %llds;\nskewed phases send %.0f%% of traffic to %d co-located"
      " actors (1%%).\nLatency window excludes the first 1/5 warm-in.\n\n",
      kActors, static_cast<int>(kWriteCostUs), kWritesPerSec,
      static_cast<long long>(duration / kMicrosPerSecond), kHotShare * 100,
      kHotActors);

  MetricsJsonWriter metrics_out(MetricsJsonPathFromArgs(argc, argv));
  struct Phase {
    const char* name;
    const char* label;
    bool skewed;
    bool managed;
  };
  const Phase kPhases[] = {
      {"uniform, managed", "uniform_managed", false, true},
      {"skewed, unmanaged", "skewed_unmanaged", true, false},
      {"skewed, managed", "skewed_managed", true, true},
  };
  PhaseResult results[3];
  TablePrinter table({"phase", "offered", "acked", "failed", "retries",
                      "p50 (ms)", "p99 (ms)", "migr", "mbox rej", "shed",
                      "conserved"});
  for (int i = 0; i < 3; ++i) {
    results[i] = RunPhase(kPhases[i].skewed, kPhases[i].managed, duration);
    const PhaseResult& r = results[i];
    if (!r.ok) {
      std::fprintf(stderr, "phase '%s' failed to converge\n",
                   kPhases[i].name);
      return 1;
    }
    table.AddRow({kPhases[i].name, TablePrinter::Fmt(r.offered),
                  TablePrinter::Fmt(r.acked), TablePrinter::Fmt(r.failed),
                  TablePrinter::Fmt(r.retries),
                  TablePrinter::FmtMsFromUs(r.latency.Percentile(50)),
                  TablePrinter::FmtMsFromUs(r.latency.Percentile(99)),
                  TablePrinter::Fmt(r.migrations),
                  TablePrinter::Fmt(r.mailbox_rejects),
                  TablePrinter::Fmt(r.shed),
                  r.conserved ? "yes" : "NO"});
    metrics_out.Add(kPhases[i].label, r.metrics);
  }
  table.Print();

  double base_p99 = static_cast<double>(results[0].latency.Percentile(99));
  double unmanaged_p99 =
      static_cast<double>(results[1].latency.Percentile(99));
  double managed_p99 = static_cast<double>(results[2].latency.Percentile(99));
  double ratio = base_p99 > 0 ? managed_p99 / base_p99 : 0;
  std::printf(
      "\nShape check: unmanaged skew queues without bound on the hot silo"
      "\n(p99 %.1f ms vs uniform %.1f ms). With bounded mailboxes,"
      "\nbackpressure retries and hot-actor migration, skewed p99 is"
      "\n%.1f ms = %.2fx the uniform baseline (acceptance: within 2x,"
      "\n%s), and every phase conserves acked writes exactly —"
      "\nmigration loses nothing, retries double-apply nothing.\n",
      unmanaged_p99 / 1000.0, base_p99 / 1000.0, managed_p99 / 1000.0, ratio,
      ratio <= 2.0 ? "met" : "NOT met");
  metrics_out.Write();
  return 0;
}
