// Secondary indexes over actor state, maintained as partitioned index
// actors (the indexing design proposed for AODBs, which the paper cites as
// a core database feature an actor runtime must gain). An index maps an
// attribute value (e.g. farmer id, organization id) to the set of actor
// keys whose state carries that value; application actors update the index
// when the attribute changes.

#ifndef AODB_AODB_INDEX_H_
#define AODB_AODB_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"

namespace aodb {

/// Number of partitions per index.
constexpr int kIndexPartitions = 8;

/// One partition of a hash index: value -> set of actor keys.
class IndexActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "aodb.Index";

  void Insert(std::string value, std::string actor_key) {
    entries_[std::move(value)].insert(std::move(actor_key));
  }
  void Erase(std::string value, std::string actor_key) {
    auto it = entries_.find(value);
    if (it == entries_.end()) return;
    it->second.erase(actor_key);
    if (it->second.empty()) entries_.erase(it);
  }
  std::vector<std::string> Lookup(std::string value) {
    auto it = entries_.find(value);
    if (it == entries_.end()) return {};
    return std::vector<std::string>(it->second.begin(), it->second.end());
  }
  int64_t DistinctValues() { return static_cast<int64_t>(entries_.size()); }

 private:
  std::map<std::string, std::set<std::string>> entries_;
};

/// Handle to a named, partitioned index. Copyable.
///
/// Updates are asynchronous messages to index actors, exactly as the AODB
/// indexing proposal maintains indexes via actor messaging; they are
/// eventually consistent with the indexed actor's state unless enclosed in
/// a transaction (see aodb/txn.h).
class ActorIndex {
 public:
  explicit ActorIndex(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Index-actor key of the partition owning `value`.
  std::string PartitionKey(const std::string& value) const {
    size_t h = ActorIdHash()(ActorId{name_, value});
    return name_ + "#" + std::to_string(h % kIndexPartitions);
  }

  /// Adds (value -> actor_key). `sender` is an ActorContext or Cluster.
  template <typename Sender>
  void Insert(Sender&& sender, const std::string& value,
              const std::string& actor_key) const {
    sender.template Ref<IndexActor>(PartitionKey(value))
        .Tell(&IndexActor::Insert, value, actor_key);
  }

  /// Removes (value -> actor_key).
  template <typename Sender>
  void Erase(Sender&& sender, const std::string& value,
             const std::string& actor_key) const {
    sender.template Ref<IndexActor>(PartitionKey(value))
        .Tell(&IndexActor::Erase, value, actor_key);
  }

  /// Re-indexes a changed attribute (old value -> new value).
  template <typename Sender>
  void Update(Sender&& sender, const std::string& old_value,
              const std::string& new_value,
              const std::string& actor_key) const {
    if (old_value == new_value) return;
    if (!old_value.empty()) Erase(sender, old_value, actor_key);
    if (!new_value.empty()) Insert(sender, new_value, actor_key);
  }

  /// Looks up all actor keys with the given attribute value.
  template <typename Sender>
  Future<std::vector<std::string>> Lookup(Sender&& sender,
                                          const std::string& value) const {
    return sender.template Ref<IndexActor>(PartitionKey(value))
        .Call(&IndexActor::Lookup, value);
  }

 private:
  std::string name_;
};

}  // namespace aodb

#endif  // AODB_AODB_INDEX_H_
