// Multi-actor query helpers: type-wide scans (via the type registry) and
// indexed lookups followed by per-actor projection. The paper notes that
// declarative multi-actor querying is the least mature AODB feature and
// that developers decompose queries by hand; these helpers are that
// decomposition, packaged.

#ifndef AODB_AODB_QUERY_H_
#define AODB_AODB_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "aodb/index.h"
#include "aodb/registry.h"

namespace aodb {

/// Calls projection method `m` on every registered actor of type TActor and
/// returns the collected values (order unspecified). Delivery failures fail
/// the whole query.
template <typename TActor, typename R, typename C, typename... MArgs,
          typename... Args>
Future<std::vector<typename internal::CallResult<R>::type>> QueryAll(
    Cluster& cluster, R (C::*m)(MArgs...), Args... args) {
  using RT = typename internal::CallResult<R>::type;
  Promise<std::vector<RT>> out;
  TypeRegistry::ListAll(cluster, TActor::kTypeName)
      .OnReady([&cluster, m, out,
                args...](Result<std::vector<std::string>>&& keys) mutable {
        if (!keys.ok()) {
          out.SetError(keys.status());
          return;
        }
        std::vector<Future<RT>> calls;
        calls.reserve(keys.value().size());
        for (const std::string& key : keys.value()) {
          calls.push_back(cluster.Ref<TActor>(key).Call(m, args...));
        }
        WhenAll(calls).OnReady([out](Result<std::vector<Result<RT>>>&& rs) {
          if (!rs.ok()) {
            out.SetError(rs.status());
            return;
          }
          std::vector<RT> values;
          values.reserve(rs.value().size());
          for (auto& r : rs.value()) {
            if (!r.ok()) {
              out.SetError(r.status());
              return;
            }
            values.push_back(std::move(r).value());
          }
          out.SetValue(std::move(values));
        });
      });
  return out.GetFuture();
}

/// QueryAll with a client-side predicate applied to each projected value.
template <typename TActor, typename R, typename C, typename... MArgs>
Future<std::vector<typename internal::CallResult<R>::type>> QueryWhere(
    Cluster& cluster, R (C::*m)(MArgs...),
    std::function<bool(const typename internal::CallResult<R>::type&)>
        predicate) {
  using RT = typename internal::CallResult<R>::type;
  return QueryAll<TActor>(cluster, m)
      .Then([predicate = std::move(predicate)](std::vector<RT>&& values) {
        std::vector<RT> kept;
        for (auto& v : values) {
          if (predicate(v)) kept.push_back(std::move(v));
        }
        return kept;
      });
}

/// Indexed query: looks up actor keys by attribute value in `index`, then
/// calls projection `m` on each hit.
template <typename TActor, typename R, typename C, typename... MArgs,
          typename... Args>
Future<std::vector<typename internal::CallResult<R>::type>> QueryByIndex(
    Cluster& cluster, const ActorIndex& index, const std::string& value,
    R (C::*m)(MArgs...), Args... args) {
  using RT = typename internal::CallResult<R>::type;
  Promise<std::vector<RT>> out;
  index.Lookup(cluster, value)
      .OnReady([&cluster, m, out,
                args...](Result<std::vector<std::string>>&& keys) mutable {
        if (!keys.ok()) {
          out.SetError(keys.status());
          return;
        }
        std::vector<Future<RT>> calls;
        calls.reserve(keys.value().size());
        for (const std::string& key : keys.value()) {
          calls.push_back(cluster.Ref<TActor>(key).Call(m, args...));
        }
        WhenAll(calls).OnReady([out](Result<std::vector<Result<RT>>>&& rs) {
          if (!rs.ok()) {
            out.SetError(rs.status());
            return;
          }
          std::vector<RT> values;
          for (auto& r : rs.value()) {
            if (!r.ok()) {
              out.SetError(r.status());
              return;
            }
            values.push_back(std::move(r).value());
          }
          out.SetValue(std::move(values));
        });
      });
  return out.GetFuture();
}

}  // namespace aodb

#endif  // AODB_AODB_QUERY_H_
