#include "aodb/txn.h"

#include "actor/retry_async.h"

namespace aodb {

Status TransactionalActor::TxnPrepare(std::string txn_id, std::string op,
                                      std::string arg) {
  Micros now = ctx().Now();
  if (!lock_txn_.empty() && lock_txn_ != txn_id) {
    if (now - lock_since_ < kLockTimeoutUs) {
      return Status::Aborted("lock held by " + lock_txn_);
    }
    // Stale lock from a failed coordinator: break it.
    for (const StagedOp& s : staged_) UnstageOp(s.op, s.arg);
    staged_.clear();
    lock_txn_.clear();
  }
  Status st = ValidateOp(op, arg);
  if (!st.ok()) return st;
  if (lock_txn_.empty()) {
    lock_txn_ = txn_id;
    lock_since_ = now;
  }
  staged_.push_back(StagedOp{std::move(op), std::move(arg)});
  return Status::OK();
}

void TransactionalActor::TxnCommit(std::string txn_id) {
  if (lock_txn_ != txn_id) return;  // Already broken or never prepared.
  for (const StagedOp& s : staged_) ApplyOp(s.op, s.arg);
  staged_.clear();
  lock_txn_.clear();
}

void TransactionalActor::TxnAbort(std::string txn_id) {
  if (lock_txn_ != txn_id) return;
  for (const StagedOp& s : staged_) UnstageOp(s.op, s.arg);
  staged_.clear();
  lock_txn_.clear();
}

Status TransactionalActor::ExecuteOp(std::string op, std::string arg) {
  if (!lock_txn_.empty()) {
    if (ctx().Now() - lock_since_ < kLockTimeoutUs) {
      return Status::Aborted("actor locked by transaction " + lock_txn_);
    }
    // Stale lock: break it, releasing any reservations.
    for (const StagedOp& s : staged_) UnstageOp(s.op, s.arg);
    staged_.clear();
    lock_txn_.clear();
  }
  Status st = ValidateOp(op, arg);
  if (!st.ok()) return st;
  ApplyOp(op, arg);
  return Status::OK();
}

bool TransactionalActor::TxnLocked() { return !lock_txn_.empty(); }

TxnManager::TxnManager(Cluster* cluster, TxnOptions options)
    : cluster_(cluster), options_(options) {
  attempts_ = cluster->metrics().GetCounter("txn.attempts");
  aborts_ = cluster->metrics().GetCounter("txn.aborts");
}

std::string TxnManager::NextTxnId() {
  return "txn-" + std::to_string(seq_.fetch_add(1) + 1);
}

Future<Status> TxnManager::RunOnce(std::vector<TxnOp> ops) {
  if (ops.empty()) return Future<Status>::FromValue(Status::OK());
  attempts_->Add();
  std::string txn_id = NextTxnId();
  // Trace: each attempt is one "txn" span; prepares and the phase-2 tells
  // all send under it, so participant turns parent under the attempt.
  TraceContext txn_ctx = CurrentTraceContext();
  Tracer& tracer = cluster_->tracer();
  if (!txn_ctx.valid() && tracer.enabled()) {
    txn_ctx = tracer.MaybeStartTrace();
  }
  uint64_t parent_span = txn_ctx.span_id;
  if (txn_ctx.sampled) txn_ctx.span_id = tracer.NewSpanId();
  std::vector<Future<Status>> prepares;
  prepares.reserve(ops.size());
  // 2PC steps are control traffic: the load shedder never rejects them —
  // shedding a prepare or phase-2 decision would strand participant locks.
  CallOptions txn_opts;
  txn_opts.priority = MessagePriority::kControl;
  {
    ScopedTraceContext scope(txn_ctx);
    for (const TxnOp& op : ops) {
      prepares.push_back(
          cluster_->RefAs<TransactionalActor>(op.actor_type, op.actor_key)
              .CallWith(txn_opts, &TransactionalActor::TxnPrepare, txn_id,
                        op.op, op.arg));
    }
  }
  Promise<Status> done;
  Cluster* cluster = cluster_;
  Counter* aborts = aborts_;
  Micros start_us = cluster_->client_executor()->clock()->Now();
  WhenAll(prepares).OnReady([cluster, ops = std::move(ops), txn_id, done,
                             aborts, txn_ctx, parent_span, start_us](
                                Result<std::vector<Result<Status>>>&& r) {
    Status outcome = Status::OK();
    if (!r.ok()) {
      outcome = r.status();
    } else {
      for (const auto& p : r.value()) {
        Status st = p.ok() ? p.value() : p.status();
        if (!st.ok()) {
          outcome = st;
          break;
        }
      }
    }
    // Phase 2: commit everywhere on success, abort everywhere otherwise.
    // Abort is also sent to participants whose prepare failed; they ignore
    // it (lock not held by this txn), which keeps the protocol simple.
    {
      ScopedTraceContext scope(txn_ctx);
      CallOptions phase2_opts;
      phase2_opts.priority = MessagePriority::kControl;
      for (const TxnOp& op : ops) {
        auto ref =
            cluster->RefAs<TransactionalActor>(op.actor_type, op.actor_key);
        if (outcome.ok()) {
          ref.TellWith(phase2_opts, &TransactionalActor::TxnCommit, txn_id);
        } else {
          ref.TellWith(phase2_opts, &TransactionalActor::TxnAbort, txn_id);
        }
      }
    }
    if (!outcome.ok()) aborts->Add();
    if (txn_ctx.sampled) {
      SpanRecord rec;
      rec.trace_id = txn_ctx.trace_id;
      rec.span_id = txn_ctx.span_id;
      rec.parent_span_id = parent_span;
      rec.name = txn_id;
      rec.kind = "txn";
      rec.silo = kClientSiloId;
      rec.start_us = start_us;
      rec.end_us = cluster->client_executor()->clock()->Now();
      cluster->tracer().Record(std::move(rec));
    }
    done.SetValue(outcome);
  });
  return done.GetFuture();
}

Future<Status> TxnManager::Run(std::vector<TxnOp> ops) {
  uint64_t seed =
      cluster_->options().seed ^ (0x74786e5aULL + seed_seq_.fetch_add(1));
  TxnManager* self = this;
  auto shared_ops = std::make_shared<std::vector<TxnOp>>(std::move(ops));
  return RetryAsync<Status>(
      cluster_->client_executor(), options_.retry, seed,
      [self, shared_ops] { return self->RunOnce(*shared_ops); },
      // Lock conflicts (Aborted) and crashed/unreachable participants
      // (Unavailable) are worth another round; everything else — including
      // validation failures — is final.
      [](const Status& st) { return st.IsAborted() || st.IsUnavailable(); });
}

}  // namespace aodb
