#include "aodb/txn.h"

#include <algorithm>

namespace aodb {

Status TransactionalActor::TxnPrepare(std::string txn_id, std::string op,
                                      std::string arg) {
  Micros now = ctx().Now();
  if (!lock_txn_.empty() && lock_txn_ != txn_id) {
    if (now - lock_since_ < kLockTimeoutUs) {
      return Status::Aborted("lock held by " + lock_txn_);
    }
    // Stale lock from a failed coordinator: break it.
    for (const StagedOp& s : staged_) UnstageOp(s.op, s.arg);
    staged_.clear();
    lock_txn_.clear();
  }
  Status st = ValidateOp(op, arg);
  if (!st.ok()) return st;
  if (lock_txn_.empty()) {
    lock_txn_ = txn_id;
    lock_since_ = now;
  }
  staged_.push_back(StagedOp{std::move(op), std::move(arg)});
  return Status::OK();
}

void TransactionalActor::TxnCommit(std::string txn_id) {
  if (lock_txn_ != txn_id) return;  // Already broken or never prepared.
  for (const StagedOp& s : staged_) ApplyOp(s.op, s.arg);
  staged_.clear();
  lock_txn_.clear();
}

void TransactionalActor::TxnAbort(std::string txn_id) {
  if (lock_txn_ != txn_id) return;
  for (const StagedOp& s : staged_) UnstageOp(s.op, s.arg);
  staged_.clear();
  lock_txn_.clear();
}

Status TransactionalActor::ExecuteOp(std::string op, std::string arg) {
  if (!lock_txn_.empty()) {
    if (ctx().Now() - lock_since_ < kLockTimeoutUs) {
      return Status::Aborted("actor locked by transaction " + lock_txn_);
    }
    // Stale lock: break it, releasing any reservations.
    for (const StagedOp& s : staged_) UnstageOp(s.op, s.arg);
    staged_.clear();
    lock_txn_.clear();
  }
  Status st = ValidateOp(op, arg);
  if (!st.ok()) return st;
  ApplyOp(op, arg);
  return Status::OK();
}

bool TransactionalActor::TxnLocked() { return !lock_txn_.empty(); }

std::string TxnManager::NextTxnId() {
  return "txn-" + std::to_string(seq_.fetch_add(1) + 1);
}

Future<Status> TxnManager::RunOnce(std::vector<TxnOp> ops) {
  if (ops.empty()) return Future<Status>::FromValue(Status::OK());
  attempts_.fetch_add(1);
  std::string txn_id = NextTxnId();
  std::vector<Future<Status>> prepares;
  prepares.reserve(ops.size());
  for (const TxnOp& op : ops) {
    prepares.push_back(
        cluster_->RefAs<TransactionalActor>(op.actor_type, op.actor_key)
            .Call(&TransactionalActor::TxnPrepare, txn_id, op.op, op.arg));
  }
  Promise<Status> done;
  Cluster* cluster = cluster_;
  auto* aborts = &aborts_;
  WhenAll(prepares).OnReady([cluster, ops = std::move(ops), txn_id, done,
                             aborts](
                                Result<std::vector<Result<Status>>>&& r) {
    Status outcome = Status::OK();
    if (!r.ok()) {
      outcome = r.status();
    } else {
      for (const auto& p : r.value()) {
        Status st = p.ok() ? p.value() : p.status();
        if (!st.ok()) {
          outcome = st;
          break;
        }
      }
    }
    // Phase 2: commit everywhere on success, abort everywhere otherwise.
    // Abort is also sent to participants whose prepare failed; they ignore
    // it (lock not held by this txn), which keeps the protocol simple.
    for (const TxnOp& op : ops) {
      auto ref =
          cluster->RefAs<TransactionalActor>(op.actor_type, op.actor_key);
      if (outcome.ok()) {
        ref.Tell(&TransactionalActor::TxnCommit, txn_id);
      } else {
        ref.Tell(&TransactionalActor::TxnAbort, txn_id);
      }
    }
    if (!outcome.ok()) aborts->fetch_add(1);
    done.SetValue(outcome);
  });
  return done.GetFuture();
}

Future<Status> TxnManager::Run(std::vector<TxnOp> ops) {
  Promise<Status> done;
  RunWithRetry(std::move(ops), options_.max_retries,
               options_.initial_backoff_us, done);
  return done.GetFuture();
}

void TxnManager::RunWithRetry(std::vector<TxnOp> ops, int retries_left,
                              Micros backoff_us, Promise<Status> done) {
  std::vector<TxnOp> ops_copy = ops;
  RunOnce(std::move(ops_copy))
      .OnReady([this, ops = std::move(ops), retries_left, backoff_us,
                done](Result<Status>&& r) mutable {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok() || !st.IsAborted() || retries_left <= 0) {
          done.SetValue(st);
          return;
        }
        constexpr Micros kMaxBackoffUs = kMicrosPerSecond;
        Micros next_backoff = std::min(backoff_us * 2, kMaxBackoffUs);
        cluster_->client_executor()->PostAfter(
            backoff_us,
            [this, ops = std::move(ops), retries_left, next_backoff, done] {
              RunWithRetry(ops, retries_left - 1, next_backoff, done);
            });
      });
}

}  // namespace aodb
