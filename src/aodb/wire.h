// Wire-method registration for the aodb core actors (registry, index) and
// for the TransactionalActor protocol messages. Platforms call these from
// their RegisterTypes so that cross-silo transaction traffic — prepare /
// commit / abort votes and single-actor ops — travels the serialized wire
// lane instead of the closure fallback.

#ifndef AODB_AODB_WIRE_H_
#define AODB_AODB_WIRE_H_

#include <string>

#include "common/status.h"

namespace aodb {

/// Registers the wire methods of RegistryActor and IndexActor. Idempotent.
Status RegisterAodbCoreWireMethods();

/// Registers the TransactionalActor protocol methods (TxnPrepare, TxnCommit,
/// TxnAbort, ExecuteOp, TxnLocked) under the given concrete actor type name.
/// The registry dispatches by (type name, method id), so each transactional
/// actor type must register the shared base-class methods under its own
/// name. Idempotent.
Status RegisterTransactionalWireMethods(const std::string& type_name);

}  // namespace aodb

#endif  // AODB_AODB_WIRE_H_
