#include "aodb/workflow.h"

#include <algorithm>

namespace aodb {

namespace {

bool IsTransient(const Status& st) {
  return st.IsUnavailable() || st.IsTimeout() || st.IsAborted();
}

}  // namespace

Future<Status> WorkflowEngine::Run(std::vector<WorkflowStep> steps) {
  auto state = std::make_shared<RunState>();
  state->steps = std::move(steps);
  if (state->steps.empty()) {
    return Future<Status>::FromValue(Status::OK());
  }
  Future<Status> out = state->done.GetFuture();
  RunStep(state, options_.max_retries_per_step, options_.initial_backoff_us);
  return out;
}

void WorkflowEngine::RunStep(std::shared_ptr<RunState> state,
                             int retries_left, Micros backoff_us) {
  if (state->next >= state->steps.size()) {
    state->done.SetValue(Status::OK());
    return;
  }
  const WorkflowStep& step = state->steps[state->next];
  cluster_->RefAs<TransactionalActor>(step.actor_type, step.actor_key)
      .Call(&TransactionalActor::ExecuteOp, step.op, step.arg)
      .OnReady([this, state, retries_left,
                backoff_us](Result<Status>&& r) mutable {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok()) {
          steps_executed_.fetch_add(1);
          ++state->next;
          RunStep(std::move(state), options_.max_retries_per_step,
                  options_.initial_backoff_us);
          return;
        }
        if (IsTransient(st) && retries_left > 0) {
          retries_.fetch_add(1);
          constexpr Micros kMaxBackoffUs = kMicrosPerSecond;
          Micros next_backoff = std::min(backoff_us * 2, kMaxBackoffUs);
          cluster_->client_executor()->PostAfter(
              backoff_us, [this, state = std::move(state), retries_left,
                           next_backoff]() mutable {
                RunStep(std::move(state), retries_left - 1, next_backoff);
              });
          return;
        }
        // Permanent failure: compensate what already ran, then report.
        Compensate(state, state->next);
        state->done.SetValue(st);
      });
}

void WorkflowEngine::Compensate(const std::shared_ptr<RunState>& state,
                                size_t completed) {
  for (size_t i = completed; i-- > 0;) {
    const WorkflowStep& step = state->steps[i];
    if (step.compensate_op.empty()) continue;
    compensations_.fetch_add(1);
    cluster_->RefAs<TransactionalActor>(step.actor_type, step.actor_key)
        .Tell(&TransactionalActor::ExecuteOp, step.compensate_op,
              step.compensate_arg);
  }
}

}  // namespace aodb
