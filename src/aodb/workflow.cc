#include "aodb/workflow.h"

#include "actor/retry_async.h"
#include "common/logging.h"

namespace aodb {

Future<Status> WorkflowEngine::Run(std::vector<WorkflowStep> steps) {
  auto state = std::make_shared<RunState>();
  state->steps = std::move(steps);
  if (state->steps.empty()) {
    return Future<Status>::FromValue(Status::OK());
  }
  Future<Status> out = state->done.GetFuture();
  RunStep(state);
  return out;
}

uint64_t WorkflowEngine::NextSeed() {
  return cluster_->options().seed ^
         (0x77666c6f77ULL + seed_seq_.fetch_add(1));
}

void WorkflowEngine::RunStep(std::shared_ptr<RunState> state) {
  if (state->next >= state->steps.size()) {
    state->done.SetValue(Status::OK());
    return;
  }
  Cluster* cluster = cluster_;
  WorkflowStep step = state->steps[state->next];
  RetryAsync<Status>(
      cluster_->client_executor(), options_.retry, NextSeed(),
      [cluster, step] {
        return cluster
            ->RefAs<TransactionalActor>(step.actor_type, step.actor_key)
            .Call(&TransactionalActor::ExecuteOp, step.op, step.arg);
      },
      IsTransient, [this](const Status&) { retries_.fetch_add(1); })
      .OnReady([this, state](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok()) {
          steps_executed_.fetch_add(1);
          ++state->next;
          RunStep(state);
          return;
        }
        // Permanent failure: compensate what already ran, then report.
        Compensate(state, state->next);
        state->done.SetValue(st);
      });
}

void WorkflowEngine::Compensate(const std::shared_ptr<RunState>& state,
                                size_t completed) {
  for (size_t i = completed; i-- > 0;) {
    const WorkflowStep& step = state->steps[i];
    if (step.compensate_op.empty()) continue;
    compensations_.fetch_add(1);
    Cluster* cluster = cluster_;
    WorkflowStep comp = step;
    RetryAsync<Status>(
        cluster_->client_executor(), options_.retry, NextSeed(),
        [cluster, comp] {
          return cluster
              ->RefAs<TransactionalActor>(comp.actor_type, comp.actor_key)
              .Call(&TransactionalActor::ExecuteOp, comp.compensate_op,
                    comp.compensate_arg);
        },
        IsTransient, [this](const Status&) { retries_.fetch_add(1); })
        .OnReady([this, comp](Result<Status>&& r) {
          Status st = r.ok() ? r.value() : r.status();
          if (!st.ok()) {
            compensation_failures_.fetch_add(1);
            AODB_LOG(Error, "compensation %s on %s/%s failed permanently: %s",
                     comp.compensate_op.c_str(), comp.actor_type.c_str(),
                     comp.actor_key.c_str(), st.ToString().c_str());
          }
        });
  }
}

}  // namespace aodb
