#include "aodb/workflow.h"

#include "actor/retry_async.h"
#include "common/logging.h"

namespace aodb {

WorkflowEngine::WorkflowEngine(Cluster* cluster, WorkflowOptions options)
    : cluster_(cluster), options_(options) {
  MetricsRegistry& reg = cluster->metrics();
  steps_executed_ = reg.GetCounter("workflow.steps_executed");
  retries_ = reg.GetCounter("workflow.retries");
  compensations_ = reg.GetCounter("workflow.compensations");
  compensation_failures_ = reg.GetCounter("workflow.compensation_failures");
}

Future<Status> WorkflowEngine::Run(std::vector<WorkflowStep> steps) {
  auto state = std::make_shared<RunState>();
  state->steps = std::move(steps);
  if (state->steps.empty()) {
    return Future<Status>::FromValue(Status::OK());
  }
  Future<Status> out = state->done.GetFuture();
  // Trace: inherit the caller's context (the workflow becomes a child span)
  // or, at an untraced root, take the tracer's sampling decision.
  state->trace = CurrentTraceContext();
  Tracer& tracer = cluster_->tracer();
  if (!state->trace.valid() && tracer.enabled()) {
    state->trace = tracer.MaybeStartTrace();
  }
  if (state->trace.sampled) {
    uint64_t parent = state->trace.span_id;
    state->trace.span_id = tracer.NewSpanId();
    Clock* clk = cluster_->client_executor()->clock();
    Micros start_us = clk->Now();
    Tracer* tp = &tracer;
    TraceContext tc = state->trace;
    out.OnReady([tp, clk, tc, parent, start_us](Result<Status>&&) {
      SpanRecord rec;
      rec.trace_id = tc.trace_id;
      rec.span_id = tc.span_id;
      rec.parent_span_id = parent;
      rec.name = "workflow";
      rec.kind = "workflow";
      rec.silo = kClientSiloId;
      rec.start_us = start_us;
      rec.end_us = clk->Now();
      tp->Record(std::move(rec));
    });
  }
  RunStep(state);
  return out;
}

uint64_t WorkflowEngine::NextSeed() {
  return cluster_->options().seed ^
         (0x77666c6f77ULL + seed_seq_.fetch_add(1));
}

void WorkflowEngine::RunStep(std::shared_ptr<RunState> state) {
  if (state->next >= state->steps.size()) {
    state->done.SetValue(Status::OK());
    return;
  }
  Cluster* cluster = cluster_;
  WorkflowStep step = state->steps[state->next];
  // Install the workflow's context so the retry loop (and through it every
  // step send, including retried ones) parents under the workflow span.
  ScopedTraceContext scope(state->trace);
  RetryAsync<Status>(
      cluster_->client_executor(), options_.retry, NextSeed(),
      [cluster, step] {
        // Workflow steps are control traffic: never load-shed.
        CallOptions opts;
        opts.priority = MessagePriority::kControl;
        return cluster
            ->RefAs<TransactionalActor>(step.actor_type, step.actor_key)
            .CallWith(opts, &TransactionalActor::ExecuteOp, step.op,
                      step.arg);
      },
      IsTransient, [this](const Status&) { retries_->Add(); })
      .OnReady([this, state](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok()) {
          steps_executed_->Add();
          ++state->next;
          RunStep(state);
          return;
        }
        // Permanent failure: compensate what already ran, then report.
        Compensate(state, state->next);
        state->done.SetValue(st);
      });
}

void WorkflowEngine::Compensate(const std::shared_ptr<RunState>& state,
                                size_t completed) {
  for (size_t i = completed; i-- > 0;) {
    const WorkflowStep& step = state->steps[i];
    if (step.compensate_op.empty()) continue;
    compensations_->Add();
    Cluster* cluster = cluster_;
    WorkflowStep comp = step;
    ScopedTraceContext scope(state->trace);
    RetryAsync<Status>(
        cluster_->client_executor(), options_.retry, NextSeed(),
        [cluster, comp] {
          CallOptions opts;
          opts.priority = MessagePriority::kControl;
          return cluster
              ->RefAs<TransactionalActor>(comp.actor_type, comp.actor_key)
              .CallWith(opts, &TransactionalActor::ExecuteOp,
                        comp.compensate_op, comp.compensate_arg);
        },
        IsTransient, [this](const Status&) { retries_->Add(); })
        .OnReady([this, comp](Result<Status>&& r) {
          Status st = r.ok() ? r.value() : r.status();
          if (!st.ok()) {
            compensation_failures_->Add();
            AODB_LOG(Error, "compensation %s on %s/%s failed permanently: %s",
                     comp.compensate_op.c_str(), comp.actor_type.c_str(),
                     comp.actor_key.c_str(), st.ToString().c_str());
          }
        });
  }
}

}  // namespace aodb
