// Saga-style multi-actor update workflows — the paper's §4.4 alternative to
// transactions for enforcing cross-actor constraints when a transaction
// facility is unavailable: "design a multi-actor workflow for updates".
//
// A workflow executes its steps sequentially. Each step is a single-actor
// atomic ExecuteOp; transient failures (Unavailable, Timeout, Aborted lock
// collisions) are retried with backoff. On a permanent step failure the
// compensation ops of already-completed steps run in reverse order (best
// effort), leaving the system consistent under eventual consistency.

#ifndef AODB_AODB_WORKFLOW_H_
#define AODB_AODB_WORKFLOW_H_

#include <atomic>
#include <string>
#include <vector>

#include "aodb/txn.h"

namespace aodb {

/// One workflow step: an op on a TransactionalActor-derived target, plus an
/// optional compensating op run if a later step permanently fails.
struct WorkflowStep {
  std::string actor_type;
  std::string actor_key;
  std::string op;
  std::string arg;
  /// Compensation; empty means this step cannot be undone.
  std::string compensate_op;
  std::string compensate_arg;
};

/// Per-step retry policy.
struct WorkflowOptions {
  int max_retries_per_step = 5;
  Micros initial_backoff_us = 10 * kMicrosPerMilli;
};

/// Executes workflows against a cluster. Thread-safe.
class WorkflowEngine {
 public:
  explicit WorkflowEngine(Cluster* cluster,
                          WorkflowOptions options = WorkflowOptions())
      : cluster_(cluster), options_(options) {}

  /// Runs the steps in order. The returned status is OK only if every step
  /// applied. On permanent failure, compensations of completed steps are
  /// issued (fire-and-forget) before the failure is reported.
  Future<Status> Run(std::vector<WorkflowStep> steps);

  int64_t steps_executed() const { return steps_executed_.load(); }
  int64_t retries() const { return retries_.load(); }
  int64_t compensations() const { return compensations_.load(); }

 private:
  struct RunState {
    std::vector<WorkflowStep> steps;
    size_t next = 0;
    Promise<Status> done;
  };

  void RunStep(std::shared_ptr<RunState> state, int retries_left,
               Micros backoff_us);
  void Compensate(const std::shared_ptr<RunState>& state, size_t completed);

  Cluster* cluster_;
  const WorkflowOptions options_;
  std::atomic<int64_t> steps_executed_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> compensations_{0};
};

}  // namespace aodb

#endif  // AODB_AODB_WORKFLOW_H_
