// Saga-style multi-actor update workflows — the paper's §4.4 alternative to
// transactions for enforcing cross-actor constraints when a transaction
// facility is unavailable: "design a multi-actor workflow for updates".
//
// A workflow executes its steps sequentially. Each step is a single-actor
// atomic ExecuteOp; transient failures (Unavailable, Timeout, Aborted lock
// collisions) are retried under the shared RetryPolicy. On a permanent step
// failure the compensation ops of already-completed steps run in reverse
// order (best effort, also retried), leaving the system consistent under
// eventual consistency. Compensations that still fail after retries are
// counted and logged — they are the residue an operator must repair.

#ifndef AODB_AODB_WORKFLOW_H_
#define AODB_AODB_WORKFLOW_H_

#include <atomic>
#include <string>
#include <vector>

#include "actor/trace.h"
#include "aodb/txn.h"
#include "common/retry.h"
#include "common/telemetry.h"

namespace aodb {

/// One workflow step: an op on a TransactionalActor-derived target, plus an
/// optional compensating op run if a later step permanently fails.
struct WorkflowStep {
  std::string actor_type;
  std::string actor_key;
  std::string op;
  std::string arg;
  /// Compensation; empty means this step cannot be undone.
  std::string compensate_op;
  std::string compensate_arg;
};

/// Engine configuration: one shared per-step retry policy (applied to both
/// forward steps and compensations).
struct WorkflowOptions {
  RetryPolicy retry;
};

/// Executes workflows against a cluster. Thread-safe. Counters live in the
/// cluster's unified registry ("workflow.*" series).
class WorkflowEngine {
 public:
  explicit WorkflowEngine(Cluster* cluster,
                          WorkflowOptions options = WorkflowOptions());

  /// Runs the steps in order. The returned status is OK only if every step
  /// applied. On permanent failure, compensations of completed steps are
  /// issued (asynchronously, with retries) before the failure is reported.
  /// When invoked inside a traced scope the whole workflow becomes one
  /// child span and every step turn links under it; at an untraced root the
  /// tracer's sampling decision applies.
  Future<Status> Run(std::vector<WorkflowStep> steps);

  int64_t steps_executed() const { return steps_executed_->value(); }
  int64_t retries() const { return retries_->value(); }
  int64_t compensations() const { return compensations_->value(); }
  /// Compensations that failed permanently (after retries). Non-zero means
  /// manual repair is needed; each is also logged at Error.
  int64_t compensation_failures() const {
    return compensation_failures_->value();
  }

 private:
  struct RunState {
    std::vector<WorkflowStep> steps;
    size_t next = 0;
    Promise<Status> done;
    /// Context installed around every step send (span_id = the workflow's
    /// own span once sampled), so step turns parent under the workflow.
    TraceContext trace;
  };

  void RunStep(std::shared_ptr<RunState> state);
  void Compensate(const std::shared_ptr<RunState>& state, size_t completed);
  /// Deterministic per-operation jitter seed.
  uint64_t NextSeed();

  Cluster* cluster_;
  const WorkflowOptions options_;
  std::atomic<uint64_t> seed_seq_{0};
  Counter* steps_executed_;
  Counter* retries_;
  Counter* compensations_;
  Counter* compensation_failures_;
};

}  // namespace aodb

#endif  // AODB_AODB_WORKFLOW_H_
