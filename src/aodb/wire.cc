#include "aodb/wire.h"

#include "actor/method_registry.h"
#include "aodb/index.h"
#include "aodb/registry.h"
#include "aodb/txn.h"

namespace aodb {

Status RegisterAodbCoreWireMethods() {
  MethodRegistry& reg = MethodRegistry::Global();
  AODB_RETURN_NOT_OK(
      reg.Register(RegistryActor::kTypeName, &RegistryActor::Add, "Add"));
  AODB_RETURN_NOT_OK(reg.Register(RegistryActor::kTypeName,
                                  &RegistryActor::Remove, "Remove"));
  AODB_RETURN_NOT_OK(reg.Register(RegistryActor::kTypeName,
                                  &RegistryActor::Contains, "Contains"));
  AODB_RETURN_NOT_OK(
      reg.Register(RegistryActor::kTypeName, &RegistryActor::List, "List"));
  AODB_RETURN_NOT_OK(
      reg.Register(RegistryActor::kTypeName, &RegistryActor::Size, "Size"));
  AODB_RETURN_NOT_OK(
      reg.Register(IndexActor::kTypeName, &IndexActor::Insert, "Insert"));
  AODB_RETURN_NOT_OK(
      reg.Register(IndexActor::kTypeName, &IndexActor::Erase, "Erase"));
  AODB_RETURN_NOT_OK(
      reg.Register(IndexActor::kTypeName, &IndexActor::Lookup, "Lookup"));
  AODB_RETURN_NOT_OK(reg.Register(IndexActor::kTypeName,
                                  &IndexActor::DistinctValues,
                                  "DistinctValues"));
  return Status::OK();
}

Status RegisterTransactionalWireMethods(const std::string& type_name) {
  MethodRegistry& reg = MethodRegistry::Global();
  AODB_RETURN_NOT_OK(
      reg.Register(type_name, &TransactionalActor::TxnPrepare, "TxnPrepare"));
  AODB_RETURN_NOT_OK(
      reg.Register(type_name, &TransactionalActor::TxnCommit, "TxnCommit"));
  AODB_RETURN_NOT_OK(
      reg.Register(type_name, &TransactionalActor::TxnAbort, "TxnAbort"));
  AODB_RETURN_NOT_OK(
      reg.Register(type_name, &TransactionalActor::ExecuteOp, "ExecuteOp"));
  AODB_RETURN_NOT_OK(
      reg.Register(type_name, &TransactionalActor::TxnLocked, "TxnLocked"));
  return Status::OK();
}

}  // namespace aodb
