// Multi-actor ACID transactions via two-phase commit with per-actor locks —
// the paper's §4.4 first option for enforcing relationship constraints that
// span actors ("Employ transactions to update data across actors
// consistently").
//
// Participating actor classes derive from TransactionalActor and implement
// ValidateOp/ApplyOp for their named operations (e.g. a Cow actor's
// "set_owner", a Farmer actor's "remove_cow"). The coordinator prepares all
// participants (acquiring each actor's single transaction lock), then
// commits or aborts. Lock conflicts abort with Status::Aborted, which
// callers may retry with backoff.

#ifndef AODB_AODB_TXN_H_
#define AODB_AODB_TXN_H_

#include <atomic>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "common/retry.h"
#include "common/telemetry.h"

namespace aodb {

/// Base class of actors that can take part in 2PC transactions.
///
/// The turn-based execution of actors makes the lock protocol trivially
/// safe: Prepare/Commit/Abort are ordinary messages, processed one at a
/// time. A stale lock (coordinator failure) is broken after
/// `kLockTimeoutUs` by the next Prepare.
class TransactionalActor : public ActorBase {
 public:
  static constexpr Micros kLockTimeoutUs = 5 * kMicrosPerSecond;

  /// Phase 1: validates `op` and stages it under `txn_id`, acquiring this
  /// actor's transaction lock. Returns Aborted on lock conflict.
  Status TxnPrepare(std::string txn_id, std::string op, std::string arg);

  /// Phase 2 (success): applies every staged op and releases the lock.
  void TxnCommit(std::string txn_id);

  /// Phase 2 (failure): discards staged ops and releases the lock.
  void TxnAbort(std::string txn_id);

  /// Non-transactional single-actor execution of the same op vocabulary
  /// (used by workflows and by callers that accept per-actor atomicity).
  Status ExecuteOp(std::string op, std::string arg);

  /// True while a transaction holds this actor's lock.
  bool TxnLocked();

 protected:
  /// Checks that `op` with `arg` can be applied to the current state.
  /// May reserve resources against double-staging (e.g. track staged
  /// debits); reservations are released through UnstageOp on abort and
  /// through ApplyOp on commit.
  virtual Status ValidateOp(const std::string& op,
                            const std::string& arg) = 0;
  /// Applies `op`. Called only after a successful ValidateOp.
  virtual void ApplyOp(const std::string& op, const std::string& arg) = 0;
  /// Releases any reservation ValidateOp made for `op`; called once per
  /// staged op when the transaction aborts (or a stale lock is broken).
  virtual void UnstageOp(const std::string& op, const std::string& arg) {
    (void)op;
    (void)arg;
  }

 private:
  struct StagedOp {
    std::string op;
    std::string arg;
  };
  std::string lock_txn_;
  Micros lock_since_ = 0;
  std::vector<StagedOp> staged_;
};

/// One participant of a transaction: the target actor (by registered type
/// name and key) and the operation to apply there.
struct TxnOp {
  std::string actor_type;
  std::string actor_key;
  std::string op;
  std::string arg;
};

/// Coordinator retry policy. Retries fire on Aborted (lock conflicts) and
/// Unavailable (silo crash / message loss during prepare); the policy's
/// deadline bounds total coordination time, after which the transaction
/// fails with its last error.
struct TxnOptions {
  RetryPolicy retry;
};

/// Client-side 2PC coordinator. Counters live in the cluster's unified
/// registry ("txn.*" series).
class TxnManager {
 public:
  explicit TxnManager(Cluster* cluster, TxnOptions options = TxnOptions());

  /// Runs one transaction attempt: prepare all, then commit or abort. Each
  /// attempt is one "txn" span; prepare/commit/abort turns link under it.
  Future<Status> RunOnce(std::vector<TxnOp> ops);

  /// Runs with retries on Aborted / Unavailable under options().retry.
  Future<Status> Run(std::vector<TxnOp> ops);

  /// Transactions coordinated (attempts) and aborts observed, for tests
  /// and the consistency ablation bench.
  int64_t attempts() const { return attempts_->value(); }
  int64_t aborts() const { return aborts_->value(); }

 private:
  std::string NextTxnId();

  Cluster* cluster_;
  const TxnOptions options_;
  std::atomic<int64_t> seq_{0};
  std::atomic<uint64_t> seed_seq_{0};
  Counter* attempts_;
  Counter* aborts_;
};

}  // namespace aodb

#endif  // AODB_AODB_TXN_H_
