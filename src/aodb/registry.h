// Type registry: partitioned registry actors tracking which keys of an
// application actor type exist. This is the AODB metadata that makes
// type-wide declarative queries possible (the Bernstein et al. vision the
// paper builds on): actors register on creation, and the query engine
// enumerates them without a table scan over storage.

#ifndef AODB_AODB_REGISTRY_H_
#define AODB_AODB_REGISTRY_H_

#include <set>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"

namespace aodb {

/// Number of registry partitions per actor type. Partitioning avoids a
/// single registry actor becoming a hotspot under concurrent creation.
constexpr int kRegistryPartitions = 8;

/// One registry partition: a set of registered actor keys.
class RegistryActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "aodb.Registry";

  void Add(std::string actor_key) { keys_.insert(std::move(actor_key)); }
  void Remove(std::string actor_key) { keys_.erase(actor_key); }
  bool Contains(std::string actor_key) { return keys_.count(actor_key) > 0; }
  std::vector<std::string> List() {
    return std::vector<std::string>(keys_.begin(), keys_.end());
  }
  int64_t Size() { return static_cast<int64_t>(keys_.size()); }

 private:
  std::set<std::string> keys_;
};

/// Client/actor-side helper for a type's partitioned registry.
class TypeRegistry {
 public:
  /// Partition key for an instance of `type` with key `actor_key`.
  static std::string PartitionKey(const std::string& type,
                                  const std::string& actor_key) {
    size_t h = ActorIdHash()(ActorId{type, actor_key});
    return type + "#" + std::to_string(h % kRegistryPartitions);
  }

  /// Registers an instance (call on first activation or on creation).
  template <typename Sender>
  static void Add(Sender&& sender, const std::string& type,
                  const std::string& actor_key) {
    sender.template Ref<RegistryActor>(PartitionKey(type, actor_key))
        .Tell(&RegistryActor::Add, actor_key);
  }

  /// Removes an instance (on logical deletion).
  template <typename Sender>
  static void Remove(Sender&& sender, const std::string& type,
                     const std::string& actor_key) {
    sender.template Ref<RegistryActor>(PartitionKey(type, actor_key))
        .Tell(&RegistryActor::Remove, actor_key);
  }

  /// Lists all registered keys of `type` (fans out over all partitions).
  static Future<std::vector<std::string>> ListAll(Cluster& cluster,
                                                  const std::string& type) {
    std::vector<Future<std::vector<std::string>>> parts;
    parts.reserve(kRegistryPartitions);
    for (int p = 0; p < kRegistryPartitions; ++p) {
      parts.push_back(
          cluster.Ref<RegistryActor>(type + "#" + std::to_string(p))
              .Call(&RegistryActor::List));
    }
    Promise<std::vector<std::string>> out;
    WhenAll(parts).OnReady(
        [out](Result<std::vector<Result<std::vector<std::string>>>>&& r) {
          if (!r.ok()) {
            out.SetError(r.status());
            return;
          }
          std::vector<std::string> all;
          for (auto& part : r.value()) {
            if (!part.ok()) {
              out.SetError(part.status());
              return;
            }
            for (auto& k : part.value()) all.push_back(std::move(k));
          }
          out.SetValue(std::move(all));
        });
    return out.GetFuture();
  }
};

}  // namespace aodb

#endif  // AODB_AODB_REGISTRY_H_
