// Configuration of the actor runtime: cluster shape, placement, network
// model, and activation lifecycle.

#ifndef AODB_ACTOR_RUNTIME_OPTIONS_H_
#define AODB_ACTOR_RUNTIME_OPTIONS_H_

#include <cstdint>

#include "common/clock.h"

namespace aodb {

/// Strategy for choosing the silo of a new activation (Orleans-style).
enum class Placement {
  /// Uniform random silo: spreads load; the Orleans default.
  kRandom,
  /// The silo of the calling actor (random for external callers). The paper
  /// uses this for sensor channels and aggregators to avoid remote calls.
  kPreferLocal,
  /// Deterministic hash of the actor key.
  kHash,
};

/// Parameters of the simulated datacenter network (cross-silo and
/// client-to-silo messaging). Latencies are one-way.
struct NetworkOptions {
  /// Base one-way latency between two silos (same-AZ TCP hop).
  Micros silo_latency_us = 500;
  /// Base one-way latency between the client node and any silo.
  Micros client_latency_us = 300;
  /// Uniform jitter added on top of the base latency, [0, jitter_us).
  Micros jitter_us = 200;
  /// Serialization/wire throughput in bytes per microsecond (~1 GB/s).
  double bytes_per_us = 1000.0;
  /// Extra CPU charged on the receiving silo for each remote message
  /// (serialization/deserialization and RPC dispatch). Local messages pass
  /// pointers and pay nothing — this asymmetry is what the paper's
  /// prefer-local placement exploits.
  Micros serialization_cost_us = 40;
};

/// Configuration of the wire (serialized invocation) lane.
struct WireOptions {
  /// When true, a cross-silo send of a method with no MethodRegistry
  /// registration fails fast with FailedPrecondition naming the actor type,
  /// instead of falling back to the closure lane. Test fixtures enable this
  /// so unregistered methods are caught at their first remote use.
  bool require_wire = false;
};

/// Activation lifecycle management (idle deactivation scanner).
struct LifecycleOptions {
  /// When true, silos periodically deactivate idle actors (persisting their
  /// state first). The paper's evaluation keeps grains resident and writes
  /// state only at shutdown, so benchmarks leave this off.
  bool enable_idle_deactivation = false;
  Micros idle_timeout_us = 60 * kMicrosPerSecond;
  Micros scan_interval_us = 10 * kMicrosPerSecond;
};

/// Top-level runtime configuration.
struct RuntimeOptions {
  int num_silos = 1;
  /// vCPUs per silo. 2 models the paper's m5.large; 3 models the m5.xlarge
  /// via the paper's own 1.5x ECU ratio.
  int workers_per_silo = 2;
  Placement default_placement = Placement::kRandom;
  NetworkOptions network;
  WireOptions wire;
  LifecycleOptions lifecycle;
  uint64_t seed = 42;
};

}  // namespace aodb

#endif  // AODB_ACTOR_RUNTIME_OPTIONS_H_
