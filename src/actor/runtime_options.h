// Configuration of the actor runtime: cluster shape, placement, network
// model, and activation lifecycle.

#ifndef AODB_ACTOR_RUNTIME_OPTIONS_H_
#define AODB_ACTOR_RUNTIME_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/retry.h"

namespace aodb {

/// Strategy for choosing the silo of a new activation (Orleans-style).
enum class Placement {
  /// Uniform random silo: spreads load; the Orleans default.
  kRandom,
  /// The silo of the calling actor (random for external callers). The paper
  /// uses this for sensor channels and aggregators to avoid remote calls.
  kPreferLocal,
  /// Deterministic hash of the actor key.
  kHash,
};

/// Parameters of the simulated datacenter network (cross-silo and
/// client-to-silo messaging). Latencies are one-way.
struct NetworkOptions {
  /// Base one-way latency between two silos (same-AZ TCP hop).
  Micros silo_latency_us = 500;
  /// Base one-way latency between the client node and any silo.
  Micros client_latency_us = 300;
  /// Uniform jitter added on top of the base latency, [0, jitter_us).
  Micros jitter_us = 200;
  /// Serialization/wire throughput in bytes per microsecond (~1 GB/s).
  double bytes_per_us = 1000.0;
  /// Extra CPU charged on the receiving silo for each remote message
  /// (serialization/deserialization and RPC dispatch). Local messages pass
  /// pointers and pay nothing — this asymmetry is what the paper's
  /// prefer-local placement exploits.
  Micros serialization_cost_us = 40;
};

/// Configuration of the wire (serialized invocation) lane.
struct WireOptions {
  /// When true, a cross-silo send of a method with no MethodRegistry
  /// registration fails fast with FailedPrecondition naming the actor type,
  /// instead of falling back to the closure lane. Test fixtures enable this
  /// so unregistered methods are caught at their first remote use.
  bool require_wire = false;
};

/// Cluster membership & automatic failure detection (Orleans-style lease
/// table + heartbeat ring). Off by default: without it, silo death is only
/// handled when announced via Cluster::KillSilo.
struct MembershipOptions {
  /// Master switch. When enabled each silo maintains a lease row in the
  /// system store, renews it on a heartbeat timer, and probes a ring of
  /// peers; a quorum of suspecting silos (or an expired lease plus one
  /// suspector) evicts the target automatically.
  bool enable = false;
  /// Lifetime of one lease renewal; a row older than this is expired.
  Micros lease_duration_us = 5 * kMicrosPerSecond;
  /// Period of lease renewal. Must be well under lease_duration_us.
  Micros heartbeat_period_us = kMicrosPerSecond;
  /// Period of ring probes.
  Micros probe_period_us = kMicrosPerSecond;
  /// A probe unanswered after this long counts as missed.
  Micros probe_timeout_us = 400 * kMicrosPerMilli;
  /// Number of ring successors each silo probes.
  int probe_fanout = 2;
  /// Consecutive missed probes before the prober suspects the target.
  int suspect_after_missed = 3;
  /// Distinct suspecting silos required to declare a target dead. Clamped
  /// to the number of potential voters (live silos minus the target).
  int eviction_quorum = 2;
  /// Failover policy for in-flight wire calls pending against an evicted
  /// silo: idempotent methods are re-submitted under this policy's attempt
  /// cap and backoff; non-idempotent calls fail with Unavailable.
  RetryPolicy failover;
};

/// Distributed tracing (actor/trace.h). Off by default: benchmarks opt in
/// with a sampling rate, tests with sample_every = 1.
struct TraceOptions {
  /// 1-in-N root sampling; <= 0 disables tracing entirely (no ids are
  /// allocated, no spans recorded, and envelopes carry an invalid context).
  int sample_every = 0;
  /// Span slots per silo ring (rounded up to a power of two). Oldest spans
  /// are overwritten on wrap.
  int ring_capacity = 4096;
};

/// Adaptive overload management: bounded mailboxes with caller-visible
/// backpressure, silo-level priority shedding, and hot-activation migration.
/// Everything off by default — the seed benchmarks accept unbounded work.
struct OverloadOptions {
  /// Per-activation mailbox cap (0 = unbounded). A delivery that would
  /// exceed it is rejected with Status::Overloaded instead of queued; the
  /// sender's retry policy treats that as retryable-with-backoff (see
  /// IsTransient). Override per actor type with
  /// Cluster::SetTypeMailboxDepth.
  int max_mailbox_depth = 0;
  /// Silo-level shed watermark over the TOTAL queued envelopes on a silo
  /// (0 = shedding off). At or past it, kTelemetry messages are rejected
  /// with Status::Overloaded; kQuery messages are rejected past
  /// shed_hard_watermark (defaults to 2x the watermark when 0). kControl
  /// traffic is never shed.
  int64_t shed_watermark = 0;
  int64_t shed_hard_watermark = 0;
  /// Master switch of the hot-activation migration controller: a periodic
  /// sampler that flags the hottest activation of the most loaded silo (by
  /// queued-envelope counts) and live-migrates it to the least loaded silo
  /// (deactivate → directory move → reactivate from persisted state).
  bool enable_hot_migration = false;
  /// Controller sampling period.
  Micros scan_interval_us = kMicrosPerSecond;
  /// An activation is migration-eligible only with at least this many
  /// queued envelopes at sampling time (filters out merely-busy actors).
  int hot_actor_min_depth = 16;
  /// The source silo must have at least this many more queued envelopes
  /// than the destination, or the move is not worth the reactivation cost.
  int64_t min_load_delta = 32;
  /// Anti-churn guard: after a migration, the moved actor cannot be picked
  /// again and the destination silo cannot receive another migration until
  /// this much time passes. Queued-envelope counts lag a move (a silo that
  /// just received a hot actor still samples as cool), so without the
  /// cooldown the controller re-co-locates hot actors and ping-pongs them
  /// between silos — each move pauses the actor, making churn itself an
  /// overload source.
  Micros migration_cooldown_us = 2 * kMicrosPerSecond;
};

/// Observability plane: the black-box flight recorder, the background
/// metrics time-series sampler, and postmortem bundles (see DESIGN.md
/// "Observability plane"). The recorder is ON by default — recording is a
/// relaxed fetch_add plus a fixed-size slot store, cheap enough to stay
/// enabled in production (see EXPERIMENTS.md overhead table).
struct ObservabilityOptions {
  /// Master switch of the flight recorder. Off → Record is a branch.
  bool enable_flight_recorder = true;
  /// Flight-record slots per silo ring (rounded up to a power of two).
  /// Oldest events are overwritten on wrap.
  int flight_ring_capacity = 1024;
  /// Cadence of the background metrics sampler (0 = sampler off, the
  /// default — figure benches must stay bit-identical). When set,
  /// Cluster::StartMetricsSampler records a MetricsSnapshot delta into the
  /// timeline every interval.
  Micros metrics_sample_interval_us = 0;
  /// Bounded length of the metrics timeline (oldest samples fall off).
  int metrics_timeline_capacity = 256;
  /// When non-empty, Cluster::Stop writes a postmortem bundle here if the
  /// run leaked promises (the hang-forever bug class); explicit
  /// Cluster::DumpPostmortem(path) works regardless.
  std::string postmortem_path;
};

/// Activation lifecycle management (idle deactivation scanner).
struct LifecycleOptions {
  /// When true, silos periodically deactivate idle actors (persisting their
  /// state first). The paper's evaluation keeps grains resident and writes
  /// state only at shutdown, so benchmarks leave this off.
  bool enable_idle_deactivation = false;
  Micros idle_timeout_us = 60 * kMicrosPerSecond;
  Micros scan_interval_us = 10 * kMicrosPerSecond;
};

/// Top-level runtime configuration.
struct RuntimeOptions {
  int num_silos = 1;
  /// vCPUs per silo. 2 models the paper's m5.large; 3 models the m5.xlarge
  /// via the paper's own 1.5x ECU ratio.
  int workers_per_silo = 2;
  Placement default_placement = Placement::kRandom;
  /// Default absolute deadline budget for calls that do not set one
  /// explicitly (0 = calls may wait forever). When set, every call's
  /// promise is completed with Status::Timeout no later than its deadline,
  /// and nested calls inherit the caller's remaining deadline.
  Micros default_call_deadline_us = 0;
  /// Max envelopes one scheduled turn may drain from an activation's mailbox
  /// before re-posting (real executor only; the simulator always runs one
  /// envelope per task because it charges each task's declared cost up
  /// front). Batching amortizes executor queue round-trips for hot actors;
  /// the cap bounds how long one actor can monopolize a worker. 1 disables.
  int max_turn_batch = 16;
  /// Lock stripes of the actor directory (rounded up to a power of two,
  /// minimum 1). Each stripe owns its own mutex, hash partition, and
  /// placement RNG, so concurrent lookups/placements on different stripes
  /// never contend. 16 keeps per-stripe metrics readable while removing the
  /// global-mutex wall on multi-worker configs.
  int directory_shards = 16;
  /// Per-silo working-set cap on resident activations (0 = unbounded, the
  /// default). Past the cap the silo pages the least-recently-active idle
  /// activations out to storage — their directory registration is KEPT and
  /// marked paged, so the next message faults the actor back in on the same
  /// silo instead of re-placing it. Busy actors are never paged mid-turn
  /// (same kIdle -> kDeactivating claim as the idle sweeper). Override per
  /// actor type with Cluster::SetTypeMaxResident.
  int max_resident_activations = 0;
  NetworkOptions network;
  WireOptions wire;
  MembershipOptions membership;
  LifecycleOptions lifecycle;
  OverloadOptions overload;
  TraceOptions trace;
  ObservabilityOptions observability;
  /// Turns whose measured execution time exceeds this are logged at WARN
  /// with their actor, duration, and trace id (0 = never). Only meaningful
  /// under the real executor; the simulator charges cost up front, so
  /// measured execution inside a turn is ~0 there.
  Micros slow_turn_threshold_us = 0;
  uint64_t seed = 42;
};

}  // namespace aodb

#endif  // AODB_ACTOR_RUNTIME_OPTIONS_H_
