// Identity of virtual actors. A virtual actor is addressed by (type, key)
// and is logically always existent (Orleans-style); the runtime activates an
// in-memory instance on demand.

#ifndef AODB_ACTOR_ACTOR_ID_H_
#define AODB_ACTOR_ACTOR_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace aodb {

/// Logical id of the silo (server process) hosting an activation.
/// kClientSiloId denotes an external client node (the benchmarking tool /
/// stateless front-end), which can send messages but hosts no actors.
using SiloId = int32_t;
constexpr SiloId kClientSiloId = -1;
/// Sentinel returned by placement when no live silo exists. Never a valid
/// routing target: the cluster converts it to Status::Unavailable.
constexpr SiloId kNoSilo = -2;

/// Address of a virtual actor: actor type name plus a string key.
struct ActorId {
  std::string type;
  std::string key;

  bool operator==(const ActorId& other) const {
    return type == other.type && key == other.key;
  }
  bool operator!=(const ActorId& other) const { return !(*this == other); }

  std::string ToString() const { return type + "/" + key; }
};

/// FNV-1a hash over type and key; used by the directory and hash placement.
struct ActorIdHash {
  size_t operator()(const ActorId& id) const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](const std::string& s) {
      for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ULL;
      }
      h ^= 0xff;
      h *= 1099511628211ULL;
    };
    mix(id.type);
    mix(id.key);
    return static_cast<size_t>(h);
  }
};

/// Authenticated caller identity attached to every message; the basis for
/// application-level access control (multi-tenancy requirement 7 of the
/// paper). Empty tenant means "system / unauthenticated".
struct Principal {
  std::string tenant;
  std::string role;

  bool empty() const { return tenant.empty() && role.empty(); }
};

}  // namespace aodb

#endif  // AODB_ACTOR_ACTOR_ID_H_
