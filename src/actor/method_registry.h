// Per-actor-type registry of wire-invokable methods — the receiving half of
// the serialized invocation boundary (the moral equivalent of Orleans'
// generated grain invokers).
//
// Registration happens once per process, keyed by (actor type name, method
// id). The method id is a stable FNV-1a hash of the registered method name;
// see DESIGN.md "Invocation boundary & wire format" for the stability rules.
// The send side resolves a member-function pointer to its WireMethodInfo via
// per-signature tables; the receive side resolves (type, id) to an invoker
// that decodes the argument tuple, runs the method on the activation, and
// encodes the Result<T> reply.

#ifndef AODB_ACTOR_METHOD_REGISTRY_H_
#define AODB_ACTOR_METHOD_REGISTRY_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "actor/actor.h"
#include "actor/future.h"
#include "common/wire.h"

namespace aodb {

/// Unit results travel as zero bytes.
template <>
struct WireCodec<Unit> {
  static void Encode(BufWriter*, const Unit&) {}
  static Status Decode(BufReader*, Unit*) { return Status::OK(); }
};

/// Identity of one registered wire method. Stable for the process lifetime;
/// envelopes hold pointers into the registry.
struct WireMethodInfo {
  std::string name;
  uint64_t id = 0;
  /// Declared safe to execute more than once (reads, set-style writes).
  /// In-flight failover re-submits only idempotent calls after a silo
  /// eviction; everything else completes with Unavailable.
  bool idempotent = false;
  /// Codec self-check: round-trips a default argument tuple and result and
  /// verifies byte-exact re-encoding. Run by tests over every registration.
  std::function<Status()> self_check;
};

/// Receive-side reply hook: takes the encoded Result<T> payload (unsealed).
/// Empty for fire-and-forget tells.
using WireReplyFn = std::function<void(std::string)>;

/// Decodes arguments from the reader, invokes the method on the activation,
/// and (if a reply hook is present) encodes the result.
using WireInvoker =
    std::function<void(ActorBase&, BufReader&, const WireReplyFn&)>;

struct WireMethodEntry {
  WireMethodInfo info;
  WireInvoker invoke;
};

namespace internal {

/// Maps an actor method's return type R to the value type of the Future
/// returned by Call (shared with ActorRef).
template <typename R>
struct CallResult {
  using type = R;
};
template <>
struct CallResult<void> {
  using type = Unit;
};
template <typename U>
struct CallResult<Future<U>> {
  using type = U;
};

/// Guards all per-signature send-side tables (defined in the .cc).
std::shared_mutex& SigTableMutex();

/// Send-side lookup table for one member-function-pointer signature:
/// member pointers cannot be hashed, so each signature gets its own small
/// linear table (a handful of methods per signature in practice).
template <typename R, typename C, typename... MArgs>
struct SigTable {
  using MPtr = R (C::*)(MArgs...);
  struct Row {
    MPtr ptr;
    const WireMethodInfo* info;
  };
  static std::vector<Row>& Rows() {
    static std::vector<Row> rows;
    return rows;
  }
};

/// Codec self-check for one method signature: encode a default argument
/// tuple, decode it, re-encode, and require byte equality; same for a
/// default and an error Result<RT>.
template <typename RT, typename... DArgs>
Status WireSelfCheck(const std::string& name) {
  std::tuple<DArgs...> args{};
  BufWriter w;
  WireEncodeTuple(&w, args);
  std::string encoded = w.Release();
  std::tuple<DArgs...> decoded{};
  BufReader r(encoded);
  Status st = WireDecodeTuple(&r, &decoded);
  if (!st.ok()) {
    return Status::Internal(name + ": arg decode failed: " + st.ToString());
  }
  if (!r.AtEnd()) return Status::Internal(name + ": trailing arg bytes");
  BufWriter w2;
  WireEncodeTuple(&w2, decoded);
  if (w2.data() != encoded) {
    return Status::Internal(name + ": arg re-encode mismatch");
  }
  BufWriter rw;
  WireEncodeResult<RT>(&rw, Result<RT>(RT{}));
  std::string rbuf = rw.Release();
  BufReader rr(rbuf);
  Result<RT> rres = WireDecodeResult<RT>(&rr);
  if (!rres.ok() || !rr.AtEnd()) {
    return Status::Internal(name + ": result round-trip failed");
  }
  BufWriter ew;
  WireEncodeResult<RT>(&ew, Result<RT>::FromError(Status::Aborted("probe")));
  BufReader er(ew.data());
  Result<RT> eres = WireDecodeResult<RT>(&er);
  if (eres.ok() || eres.status().code() != StatusCode::kAborted) {
    return Status::Internal(name + ": error result round-trip failed");
  }
  return Status::OK();
}

/// Builds the receive-side invoker for one method.
template <typename R, typename C, typename... MArgs>
WireInvoker MakeWireInvoker(R (C::*method)(MArgs...)) {
  using RT = typename CallResult<R>::type;
  return [method](ActorBase& base, BufReader& r, const WireReplyFn& reply) {
    std::tuple<std::decay_t<MArgs>...> args{};
    Status st = WireDecodeTuple(&r, &args);
    if (st.ok() && !r.AtEnd()) {
      st = Status::Corruption("trailing bytes after wire arguments");
    }
    if (!st.ok()) {
      if (reply) {
        BufWriter w;
        WireEncodeResult<RT>(
            &w, Result<RT>::FromError(
                    st.IsCorruption() ? st : Status::Corruption(st.ToString())));
        reply(w.Release());
      }
      return;
    }
    C& obj = static_cast<C&>(base);
    if constexpr (IsFuture<R>::value) {
      Future<RT> f = std::apply(
          [&](auto&... a) { return (obj.*method)(a...); }, args);
      if (reply) {
        f.OnReady([reply](Result<RT>&& res) {
          BufWriter w;
          WireEncodeResult<RT>(&w, res);
          reply(w.Release());
        });
      }
    } else if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&... a) { (obj.*method)(a...); }, args);
      if (reply) {
        BufWriter w;
        WireEncodeResult<RT>(&w, Result<RT>(Unit{}));
        reply(w.Release());
      }
    } else {
      R value = std::apply(
          [&](auto&... a) { return (obj.*method)(a...); }, args);
      if (reply) {
        BufWriter w;
        WireEncodeResult<RT>(&w, Result<RT>(std::move(value)));
        reply(w.Release());
      }
    }
  };
}

}  // namespace internal

/// Process-wide registry of wire-invokable actor methods.
class MethodRegistry {
 public:
  static MethodRegistry& Global();

  /// Stable method id: FNV-1a over the registered method name.
  static uint64_t MethodId(const std::string& method_name);

  /// Registers `method` of actor type `type_name` under `method_name`.
  /// Idempotent for repeated identical registrations; fails on a method-id
  /// collision within the type. The method's full signature (arguments and
  /// result) must be wire-encodable — enforced at compile time. Pass
  /// `idempotent = true` to declare the method safe to run more than once
  /// (enables transparent re-submission by in-flight failover).
  template <typename R, typename C, typename... MArgs>
  Status Register(const std::string& type_name, R (C::*method)(MArgs...),
                  const std::string& method_name, bool idempotent = false) {
    using RT = typename internal::CallResult<R>::type;
    static_assert(WireSupported<RT, std::decay_t<MArgs>...>::value,
                  "method signature is not wire-encodable; add a WireCodec "
                  "specialization (or Encode/Decode members) for every "
                  "argument and the result type");
    auto entry = std::make_unique<WireMethodEntry>();
    entry->info.name = method_name;
    entry->info.id = MethodId(method_name);
    entry->info.idempotent = idempotent;
    entry->info.self_check = [method_name] {
      return internal::WireSelfCheck<RT, std::decay_t<MArgs>...>(method_name);
    };
    entry->invoke = internal::MakeWireInvoker<R, C, MArgs...>(method);
    const WireMethodEntry* installed = nullptr;
    AODB_RETURN_NOT_OK(AddEntry(type_name, std::move(entry), &installed));
    std::unique_lock<std::shared_mutex> lock(internal::SigTableMutex());
    auto& rows = internal::SigTable<R, C, MArgs...>::Rows();
    for (const auto& row : rows) {
      if (row.ptr == method) return Status::OK();
    }
    rows.push_back({method, &installed->info});
    return Status::OK();
  }

  /// Send-side lookup: the registration for a member-function pointer, or
  /// nullptr if the method was never registered (callers fall back to the
  /// closure lane, or fail fast under WireOptions::require_wire).
  template <typename R, typename C, typename... MArgs>
  const WireMethodInfo* Find(R (C::*method)(MArgs...)) const {
    std::shared_lock<std::shared_mutex> lock(internal::SigTableMutex());
    for (const auto& row : internal::SigTable<R, C, MArgs...>::Rows()) {
      if (row.ptr == method) return row.info;
    }
    return nullptr;
  }

  /// Receive-side lookup, or nullptr.
  const WireMethodEntry* FindEntry(const std::string& type_name,
                                   uint64_t method_id) const;

  /// Number of methods registered for a type (0 for unknown types).
  size_t MethodCount(const std::string& type_name) const;

  /// Runs every registered method's codec self-check; returns the first
  /// failure, naming the offending method.
  Status SelfCheckAll() const;

  /// Total registrations across all types.
  size_t TotalMethods() const;

 private:
  Status AddEntry(const std::string& type_name,
                  std::unique_ptr<WireMethodEntry> entry,
                  const WireMethodEntry** installed);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string,
                     std::unordered_map<uint64_t,
                                        std::unique_ptr<WireMethodEntry>>>
      types_;
};

/// Decodes a sealed wire reply frame into the caller's typed result.
template <typename RT>
Result<RT> DecodeWireReply(Result<std::string>&& frame) {
  if (!frame.ok()) return Result<RT>::FromError(frame.status());
  std::string_view payload;
  Status st = WireOpen(frame.value(), &payload);
  if (!st.ok()) return Result<RT>::FromError(st);
  BufReader r(payload);
  Result<RT> res = WireDecodeResult<RT>(&r);
  if (res.ok() && !r.AtEnd()) {
    return Result<RT>::FromError(
        Status::Corruption("trailing bytes in wire reply"));
  }
  return res;
}

}  // namespace aodb

#endif  // AODB_ACTOR_METHOD_REGISTRY_H_
