#include "actor/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/telemetry.h"

namespace aodb {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// --- SpanRing ----------------------------------------------------------------

SpanRing::SpanRing(size_t capacity)
    : mask_(RoundUpPow2(std::max<size_t>(capacity, 8)) - 1),
      slots_(new Slot[mask_ + 1]) {}

bool SpanRing::Push(SpanRecord rec) {
  size_t i = cursor_.fetch_add(1, std::memory_order_relaxed) & mask_;
  Slot& slot = slots_[i];
  bool expected = false;
  if (!slot.busy.compare_exchange_strong(expected, true,
                                         std::memory_order_acquire)) {
    return false;  // Another writer (or a reader) holds the slot: drop.
  }
  slot.rec = std::move(rec);
  slot.used = true;
  slot.busy.store(false, std::memory_order_release);
  return true;
}

void SpanRing::Collect(std::vector<SpanRecord>* out) const {
  for (size_t i = 0; i <= mask_; ++i) {
    Slot& slot = slots_[i];
    bool expected = false;
    if (!slot.busy.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      continue;  // A writer is mid-store; skip this slot.
    }
    if (slot.used) out->push_back(slot.rec);
    slot.busy.store(false, std::memory_order_release);
  }
}

// --- Tracer ------------------------------------------------------------------

Tracer::Tracer(int num_silos, int sample_every, int ring_capacity,
               MetricsRegistry* metrics)
    : num_silos_(num_silos), sample_every_(sample_every) {
  rings_.reserve(static_cast<size_t>(num_silos) + 1);
  for (int i = 0; i <= num_silos; ++i) {
    rings_.push_back(std::make_unique<SpanRing>(
        static_cast<size_t>(std::max(ring_capacity, 8))));
  }
  if (metrics != nullptr) {
    spans_recorded_ = metrics->GetCounter("trace.spans_recorded");
    spans_dropped_ = metrics->GetCounter("trace.spans_dropped");
    traces_started_ = metrics->GetCounter("trace.traces_started");
  }
}

TraceContext Tracer::MaybeStartTrace() {
  if (sample_every_ <= 0) return {};
  uint64_t draw = root_draw_.fetch_add(1, std::memory_order_relaxed);
  if (draw % static_cast<uint64_t>(sample_every_) != 0) return {};
  TraceContext ctx;
  ctx.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = 0;  // The caller opens the root span itself.
  ctx.sampled = true;
  if (traces_started_ != nullptr) traces_started_->Add();
  return ctx;
}

size_t Tracer::RingIndex(SiloId silo) const {
  if (silo >= 0 && silo < num_silos_) return static_cast<size_t>(silo);
  return static_cast<size_t>(num_silos_);  // Client (and unknown) ring.
}

void Tracer::Record(SpanRecord rec) {
  if (rec.trace_id == 0) return;
  size_t idx = RingIndex(rec.silo);
  if (rings_[idx]->Push(std::move(rec))) {
    if (spans_recorded_ != nullptr) spans_recorded_->Add();
  } else {
    if (spans_dropped_ != nullptr) spans_dropped_->Add();
  }
}

std::vector<SpanRecord> Tracer::Collect() const {
  std::vector<SpanRecord> out;
  for (const auto& ring : rings_) ring->Collect(&out);
  return out;
}

std::vector<SpanRecord> Tracer::CollectTrace(uint64_t trace_id) const {
  std::vector<SpanRecord> all = Collect();
  std::vector<SpanRecord> out;
  for (auto& rec : all) {
    if (rec.trace_id == trace_id) out.push_back(std::move(rec));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.span_id < b.span_id;
            });
  return out;
}

namespace {

void AppendSpanJson(const SpanRecord& s, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"span\":%llu,\"parent\":%llu,",
                static_cast<unsigned long long>(s.span_id),
                static_cast<unsigned long long>(s.parent_span_id));
  *out += buf;
  // Name/actor/kind come from user-registered actor types and keys: escape,
  // or a hostile name breaks every consumer of the dump.
  *out += "\"name\":\"" + JsonEscape(s.name) + "\",\"actor\":\"" +
          JsonEscape(s.actor) + "\",\"kind\":\"" + JsonEscape(s.kind) + "\",";
  std::snprintf(buf, sizeof(buf), "\"silo\":%d,", s.silo);
  *out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"start_us\":%lld,\"end_us\":%lld,\"queue_wait_us\":%lld}",
                static_cast<long long>(s.start_us),
                static_cast<long long>(s.end_us),
                static_cast<long long>(s.queue_wait_us));
  *out += buf;
}

}  // namespace

std::string Tracer::DumpJson() const {
  std::vector<SpanRecord> all = Collect();
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.span_id < b.span_id;
            });
  std::string out = "{\"traces\":[";
  uint64_t current = 0;
  bool first_trace = true;
  bool first_span = true;
  for (const auto& s : all) {
    if (s.trace_id != current) {
      if (current != 0) out += "]}";
      if (!first_trace) out += ',';
      first_trace = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "{\"trace_id\":%llu,\"spans\":[",
                    static_cast<unsigned long long>(s.trace_id));
      out += buf;
      current = s.trace_id;
      first_span = true;
    }
    if (!first_span) out += ',';
    first_span = false;
    AppendSpanJson(s, &out);
  }
  if (current != 0) out += "]}";
  out += "]}";
  return out;
}

}  // namespace aodb
