#include "actor/actor.h"

#include "actor/cluster.h"

namespace aodb {

ActorContext::ActorContext(ActorId self, SiloId silo, Cluster* cluster,
                           Executor* executor)
    : self_(std::move(self)),
      silo_(silo),
      cluster_(cluster),
      executor_(executor),
      rng_(ActorIdHash()(self_) ^ cluster->options().seed) {}

Micros ActorContext::Now() const { return executor_->clock()->Now(); }

void ActorContext::SetTimer(const std::string& name, Micros period_us,
                            Micros tick_cost_us) {
  CancelTimer(name);
  auto alive = std::make_shared<bool>(true);
  timers_[name] = alive;
  Cluster* cluster = cluster_;
  Executor* exec = executor_;
  ActorId self = self_;
  SiloId silo = silo_;
  auto fire = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_fire = fire;
  *fire = [cluster, exec, self, silo, name, period_us, tick_cost_us, alive,
           weak_fire]() {
    if (!*alive) return;
    Envelope env;
    env.target = self;
    env.caller_silo = silo;
    env.cost_us = tick_cost_us;
    env.fn = [name](ActorBase& a) { a.OnTimer(name); };
    cluster->Send(std::move(env));
    if (auto next = weak_fire.lock()) {
      exec->PostAfter(period_us, [next] { (*next)(); });
    }
  };
  exec->PostAfter(period_us, [fire] { (*fire)(); });
}

void ActorContext::CancelTimer(const std::string& name) {
  auto it = timers_.find(name);
  if (it == timers_.end()) return;
  *it->second = false;
  timers_.erase(it);
}

void ActorContext::CancelAllTimers() {
  for (auto& [name, alive] : timers_) *alive = false;
  timers_.clear();
}

Status ActorContext::RegisterReminder(const std::string& name,
                                      Micros period_us) {
  return cluster_->RegisterReminder(self_, name, period_us);
}

Status ActorContext::UnregisterReminder(const std::string& name) {
  return cluster_->UnregisterReminder(self_, name);
}

StateStorage* ActorContext::storage(const std::string& provider) const {
  return cluster_->GetStateStorage(provider);
}

}  // namespace aodb
