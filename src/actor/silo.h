// A silo hosts activations of virtual actors: it owns the activation catalog
// for its node, drives turn-based message processing on its executor, and
// performs idle deactivation. One silo models one server (the paper deploys
// one Orleans silo per EC2 instance).

#ifndef AODB_ACTOR_SILO_H_
#define AODB_ACTOR_SILO_H_

#include <atomic>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "actor/actor.h"
#include "actor/envelope.h"
#include "actor/executor.h"

namespace aodb {

class Cluster;
class Gauge;

/// Counters exposed for tests and benchmark reporting.
struct SiloStats {
  int64_t messages_processed = 0;
  int64_t activations_created = 0;
  int64_t activations_removed = 0;
  /// Activations deactivated by the working-set limit (directory entry kept
  /// and marked paged).
  int64_t activations_paged_out = 0;
  /// LRU entries examined across all SweepIdle calls. The sweep walks the
  /// LRU oldest-first and stops at the first fresh entry, so this grows with
  /// the number of STALE activations, not the resident count — the
  /// regression test in scale_paging asserts exactly that.
  int64_t sweep_examined = 0;
};

/// Hosts and executes actor activations on one executor.
///
/// Thread-safe: Deliver may be called from any thread; actor turns are
/// serialized per activation (at most one in flight), so actor code itself
/// never needs locks.
class Silo {
 public:
  Silo(SiloId id, Cluster* cluster, Executor* executor);

  SiloId id() const { return id_; }
  Executor* executor() const { return executor_; }

  /// Enqueues a message for its target activation, creating (activating)
  /// the actor if needed. Re-routes through the cluster if the activation
  /// is closing. Under overload the message may instead be rejected with
  /// Status::Overloaded: silo-wide shedding by MessagePriority past the
  /// configured watermarks, and per-activation bounded mailboxes
  /// (OverloadOptions / Cluster::SetTypeMailboxDepth).
  void Deliver(Envelope env);

  /// Total envelopes currently queued across this silo's mailboxes (the
  /// shed watermarks and the hot-actor controller read this).
  int64_t QueuedEnvelopes() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// The deepest migration-eligible activation (queue depth >= min_depth;
  /// not loading, closing, or already marked for migration), or nullopt.
  struct HotActivation {
    ActorId id;
    int64_t depth = 0;
  };
  std::optional<HotActivation> HottestActivation(int min_depth) const;

  /// The `n` deepest live activations (by current mailbox depth), deepest
  /// first — the postmortem bundle's per-silo hot-actor summary. Empty on a
  /// dead silo.
  std::vector<HotActivation> TopActivations(size_t n) const;

  /// Initiates live migration of an activation to silo `to`: the current
  /// turn (if any) finishes, OnDeactivate flushes state, the directory
  /// entry moves to `to`, and queued + subsequent messages re-route there,
  /// re-activating the actor from persisted state. Returns false when the
  /// actor is not activated here or is loading / already closing (the
  /// controller simply retries on a later scan).
  bool RequestMigration(const ActorId& id, SiloId to);

  /// Deactivates activations idle for at least `idle_timeout_us`.
  /// Returns the number of deactivations initiated.
  int SweepIdle(Micros idle_timeout_us);

  /// Initiates deactivation of every idle activation (used at shutdown to
  /// flush persistent state). Completes when all initiated deactivations
  /// have finished. Activations with queued work are skipped.
  Future<Status> DeactivateAll();

  /// Crashes this silo: every activation is closed WITHOUT running
  /// OnDeactivate (no state flush — that is the point of the fault), queued
  /// messages fail with Unavailable, and subsequent deliveries are rejected
  /// until Restart. Use Cluster::KillSilo, which also purges the directory.
  /// Returns the number of dead letters: discarded envelopes (mailbox and
  /// wedge backlog) that had no failure hook to notify anyone with.
  int64_t Kill();

  /// Brings a killed silo back as an empty node; actors placed here after
  /// restart activate fresh from persisted state. Clears any wedge.
  void Restart();

  /// False between Kill() and Restart().
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Chaos hook modeling an unannounced hang (GC death spiral, wedged
  /// executor): a wedged silo accepts deliveries but never processes them —
  /// neither `fn` nor `fail` runs, so without failure detection callers
  /// block forever. The membership subsystem must notice (the wedged silo
  /// stops acking probes and renewing its lease) and evict it; eviction
  /// fails the backlog like a crash. Cleared by Restart().
  void SetWedged(bool wedged) {
    wedged_.store(wedged, std::memory_order_release);
  }
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }

  size_t ActivationCount() const;
  SiloStats Stats() const;

  /// Ids of activations that currently CLAIM this actor's single-activation
  /// slot: loading, idle, scheduled, or running. Closing activations
  /// (kDeactivating/kClosed) are excluded — their directory entry may
  /// legitimately already point at a migration target. Empty on a dead
  /// silo. Used by the DST invariant checkers (sim/explore) to assert
  /// exactly one live activation per actor id across the cluster.
  std::vector<ActorId> LiveActivations() const;

 private:
  enum class ActState {
    kLoading,       // OnActivate in progress; messages queue up.
    kIdle,          // No message in flight.
    kScheduled,     // A turn has been posted to the executor.
    kRunning,       // A turn is executing.
    kDeactivating,  // OnDeactivate in progress; messages queue for re-route.
    kClosed,        // Removed; queued messages get re-routed.
  };

  struct Activation {
    explicit Activation(ActorId id_in) : id(std::move(id_in)) {}
    const ActorId id;
    std::mutex mu;
    std::unique_ptr<ActorBase> actor;
    std::deque<Envelope> mailbox;
    ActState state = ActState::kLoading;
    /// Mailbox cap (0 = unbounded) and the cluster-wide per-type depth
    /// gauge, both resolved once at creation so enqueue stays lock-free
    /// beyond the activation's own mu.
    int mailbox_limit = 0;
    Gauge* depth_gauge = nullptr;
    /// Migration target (kNoSilo = none), guarded by mu. Set by
    /// RequestMigration; a running/scheduled activation transitions to
    /// kDeactivating at the end of its current turn — directly from
    /// kRunning, never through kIdle, so the idle sweeper cannot race the
    /// move (both initiators require a specific prior state under mu).
    SiloId migrate_to = kNoSilo;
    /// Last turn-completion time. Atomic (relaxed) so the idle sweeper can
    /// pre-filter candidates without taking every activation's mu.
    std::atomic<Micros> last_active{0};
    /// Per-type residency cap this activation counts against (0 = only the
    /// silo-wide cap applies). Resolved once at creation like mailbox_limit.
    int resident_limit = 0;
    /// True while this activation is deactivating because the working-set
    /// limit evicted it (as opposed to idle timeout / migration / shutdown):
    /// FinishDeactivation then KEEPS the directory entry and marks it paged.
    /// Guarded by mu (set only under a successful kIdle claim).
    bool page_out = false;
    /// True from creation until the first turn when this activation was
    /// created for a message to a paged-out (registered but cold) actor.
    /// BeginActivate measures the storage-load latency; the first
    /// ProcessEnvelope measures the end-to-end queue wait. Both fields are
    /// only touched on the activation's serialized create/turn path.
    bool fault_in = false;
    Micros fault_start_us = 0;
    /// Position in the silo's recency list (valid iff in_lru). Guarded by
    /// the SILO's mu_, not this mu — the list is silo state.
    std::list<std::shared_ptr<Activation>>::iterator lru_it;
    bool in_lru = false;
    /// When this activation last moved to the recent end of the list.
    /// Advisory (relaxed): read without mu_ to skip the lock + splice for
    /// activations touched within the throttle window, so hot actors do
    /// not serialize every turn on the silo-wide mutex. Written under mu_.
    std::atomic<Micros> lru_stamp{0};
  };
  using ActivationPtr = std::shared_ptr<Activation>;

  void BeginActivate(const ActivationPtr& act);
  void PostTurn(const ActivationPtr& act, Micros cost_us);
  /// One scheduled turn: drains up to turn_batch_ envelopes from the
  /// activation's mailbox (each via ProcessEnvelope), then either goes idle
  /// or re-posts.
  void RunTurn(const ActivationPtr& act);
  /// Applies a single dequeued envelope to the activation: deadline-expiry
  /// drop, tracing, deadline propagation, profiling, slow-turn logging.
  void ProcessEnvelope(const ActivationPtr& act, Envelope& env);
  /// Runs OnDeactivate and removes the activation. Precondition: state was
  /// transitioned to kDeactivating by the caller. When the activation was
  /// marked for migration, the directory entry is moved to the target silo
  /// instead of removed, so the rerouted mailbox and all subsequent sends
  /// re-activate the actor there.
  void FinishDeactivation(const ActivationPtr& act,
                          std::function<void(Status)> done);
  void Reroute(Envelope env);
  /// --- Working-set (LRU) maintenance. All *Locked helpers require mu_. ---
  /// Appends a new activation at the most-recent end.
  void LruPushBackLocked(const ActivationPtr& act);
  /// Moves an existing entry to the most-recent end (O(1) splice).
  void LruTouchLocked(const ActivationPtr& act);
  /// Throttled touch for the per-turn hot path: recency only needs to be
  /// accurate to within the throttle window (idle timeouts and eviction
  /// decisions work on much coarser scales), so activations spliced within
  /// the last 100ms skip the silo-wide lock entirely.
  void LruTouchThrottled(const ActivationPtr& act, Micros now);
  /// Removes an entry (claimed for deactivation, failed load, or kill).
  void LruUnlinkLocked(const ActivationPtr& act);
  /// True when the silo-wide or `act`'s per-type residency cap is exceeded,
  /// counting activations already claimed for page-out as gone.
  bool OverResidencyLocked(const ActivationPtr& act) const;
  /// Posts one eviction pass to the executor unless one is already pending.
  void MaybeScheduleEviction();
  /// Evicts least-recently-active idle activations (kIdle + empty mailbox,
  /// claimed under each victim's mu exactly like the idle sweeper) until the
  /// caps are satisfied or nothing is claimable. Busy entries are re-queued
  /// at the recent end so the pass is O(evicted + skipped-this-pass), never
  /// O(catalog).
  void RunEvictionPass();
  /// Current mailbox depth of one activation (takes its lock briefly; only
  /// called on rare warn/flight-event paths, never per message).
  static int64_t MailboxDepth(const ActivationPtr& act);
  /// Settles the silo queued-envelope count and the per-type depth gauge
  /// for `n` envelopes drained from an activation's mailbox in bulk
  /// (deactivation re-route, activation failure, kill).
  void DrainQueueAccounting(const ActivationPtr& act, size_t n);

  const SiloId id_;
  Cluster* const cluster_;
  Executor* const executor_;
  /// Envelopes one turn may drain (>= 1; 1 under the simulator — see
  /// RuntimeOptions::max_turn_batch).
  const int turn_batch_;
  /// Shed watermarks resolved from OverloadOptions at construction
  /// (hard watermark defaults to 2x the soft one). 0 = shedding off.
  const int64_t shed_watermark_;
  const int64_t shed_hard_watermark_;
  /// Silo-wide resident-activation cap (0 = unbounded) from
  /// RuntimeOptions::max_resident_activations.
  const int max_resident_;
  std::atomic<bool> alive_{true};
  std::atomic<bool> wedged_{false};
  /// Off the silo lock: bumped once per turn batch, not under mu_.
  std::atomic<int64_t> messages_processed_{0};
  /// Envelopes queued across all mailboxes on this silo; the shed decision
  /// reads it without any lock.
  std::atomic<int64_t> queued_{0};

  mutable std::mutex mu_;
  /// Envelopes swallowed while wedged; failed en masse by Kill().
  std::deque<Envelope> wedge_backlog_;
  std::unordered_map<ActorId, ActivationPtr, ActorIdHash> catalog_;
  /// Recency list over catalog_ entries: least-recently-active at the front.
  /// Maintained from turn completions (splice-to-back), so both the idle
  /// sweep and paging eviction pop victims from the front in O(1) instead of
  /// scanning the catalog. Guarded by mu_.
  std::list<ActivationPtr> lru_;
  /// Activations claimed for page-out whose FinishDeactivation has not yet
  /// erased them from catalog_. Subtracted from the resident count so one
  /// eviction pass doesn't over-evict while deactivations are in flight.
  int64_t pending_page_outs_ = 0;
  /// Per-type residency accounting, only for types with a per-type cap
  /// (Cluster::SetTypeMaxResident). Guarded by mu_.
  struct TypeResidency {
    int64_t resident = 0;
    int64_t pending_out = 0;
  };
  std::unordered_map<std::string, TypeResidency> type_residency_;
  /// Collapses bursts of over-cap inserts into one posted eviction pass.
  std::atomic<bool> eviction_scheduled_{false};
  /// Activations closed by Kill(). Retained (not destroyed) because
  /// in-flight turns, timers, and storage completions may still hold raw
  /// pointers into them; they are inert (kClosed) and are released when the
  /// silo itself is destroyed. This mirrors a crashed process whose memory
  /// simply ceases to matter.
  std::vector<ActivationPtr> zombies_;
  SiloStats stats_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_SILO_H_
