// A silo hosts activations of virtual actors: it owns the activation catalog
// for its node, drives turn-based message processing on its executor, and
// performs idle deactivation. One silo models one server (the paper deploys
// one Orleans silo per EC2 instance).

#ifndef AODB_ACTOR_SILO_H_
#define AODB_ACTOR_SILO_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "actor/actor.h"
#include "actor/envelope.h"
#include "actor/executor.h"

namespace aodb {

class Cluster;

/// Counters exposed for tests and benchmark reporting.
struct SiloStats {
  int64_t messages_processed = 0;
  int64_t activations_created = 0;
  int64_t activations_removed = 0;
};

/// Hosts and executes actor activations on one executor.
///
/// Thread-safe: Deliver may be called from any thread; actor turns are
/// serialized per activation (at most one in flight), so actor code itself
/// never needs locks.
class Silo {
 public:
  Silo(SiloId id, Cluster* cluster, Executor* executor);

  SiloId id() const { return id_; }
  Executor* executor() const { return executor_; }

  /// Enqueues a message for its target activation, creating (activating)
  /// the actor if needed. Re-routes through the cluster if the activation
  /// is closing.
  void Deliver(Envelope env);

  /// Deactivates activations idle for at least `idle_timeout_us`.
  /// Returns the number of deactivations initiated.
  int SweepIdle(Micros idle_timeout_us);

  /// Initiates deactivation of every idle activation (used at shutdown to
  /// flush persistent state). Completes when all initiated deactivations
  /// have finished. Activations with queued work are skipped.
  Future<Status> DeactivateAll();

  /// Crashes this silo: every activation is closed WITHOUT running
  /// OnDeactivate (no state flush — that is the point of the fault), queued
  /// messages fail with Unavailable, and subsequent deliveries are rejected
  /// until Restart. Use Cluster::KillSilo, which also purges the directory.
  /// Returns the number of dead letters: discarded envelopes (mailbox and
  /// wedge backlog) that had no failure hook to notify anyone with.
  int64_t Kill();

  /// Brings a killed silo back as an empty node; actors placed here after
  /// restart activate fresh from persisted state. Clears any wedge.
  void Restart();

  /// False between Kill() and Restart().
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Chaos hook modeling an unannounced hang (GC death spiral, wedged
  /// executor): a wedged silo accepts deliveries but never processes them —
  /// neither `fn` nor `fail` runs, so without failure detection callers
  /// block forever. The membership subsystem must notice (the wedged silo
  /// stops acking probes and renewing its lease) and evict it; eviction
  /// fails the backlog like a crash. Cleared by Restart().
  void SetWedged(bool wedged) {
    wedged_.store(wedged, std::memory_order_release);
  }
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }

  size_t ActivationCount() const;
  SiloStats Stats() const;

 private:
  enum class ActState {
    kLoading,       // OnActivate in progress; messages queue up.
    kIdle,          // No message in flight.
    kScheduled,     // A turn has been posted to the executor.
    kRunning,       // A turn is executing.
    kDeactivating,  // OnDeactivate in progress; messages queue for re-route.
    kClosed,        // Removed; queued messages get re-routed.
  };

  struct Activation {
    explicit Activation(ActorId id_in) : id(std::move(id_in)) {}
    const ActorId id;
    std::mutex mu;
    std::unique_ptr<ActorBase> actor;
    std::deque<Envelope> mailbox;
    ActState state = ActState::kLoading;
    /// Last turn-completion time. Atomic (relaxed) so the idle sweeper can
    /// pre-filter candidates without taking every activation's mu.
    std::atomic<Micros> last_active{0};
  };
  using ActivationPtr = std::shared_ptr<Activation>;

  void BeginActivate(const ActivationPtr& act);
  void PostTurn(const ActivationPtr& act, Micros cost_us);
  /// One scheduled turn: drains up to turn_batch_ envelopes from the
  /// activation's mailbox (each via ProcessEnvelope), then either goes idle
  /// or re-posts.
  void RunTurn(const ActivationPtr& act);
  /// Applies a single dequeued envelope to the activation: deadline-expiry
  /// drop, tracing, deadline propagation, profiling, slow-turn logging.
  void ProcessEnvelope(const ActivationPtr& act, Envelope& env);
  /// Runs OnDeactivate and removes the activation. Precondition: state was
  /// transitioned to kDeactivating by the caller.
  void FinishDeactivation(const ActivationPtr& act,
                          std::function<void(Status)> done);
  void Reroute(Envelope env);

  const SiloId id_;
  Cluster* const cluster_;
  Executor* const executor_;
  /// Envelopes one turn may drain (>= 1; 1 under the simulator — see
  /// RuntimeOptions::max_turn_batch).
  const int turn_batch_;
  std::atomic<bool> alive_{true};
  std::atomic<bool> wedged_{false};
  /// Off the silo lock: bumped once per turn batch, not under mu_.
  std::atomic<int64_t> messages_processed_{0};

  mutable std::mutex mu_;
  /// Envelopes swallowed while wedged; failed en masse by Kill().
  std::deque<Envelope> wedge_backlog_;
  std::unordered_map<ActorId, ActivationPtr, ActorIdHash> catalog_;
  /// Activations closed by Kill(). Retained (not destroyed) because
  /// in-flight turns, timers, and storage completions may still hold raw
  /// pointers into them; they are inert (kClosed) and are released when the
  /// silo itself is destroyed. This mirrors a crashed process whose memory
  /// simply ceases to matter.
  std::vector<ActivationPtr> zombies_;
  SiloStats stats_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_SILO_H_
