// Black-box flight recorder: a per-silo lock-free ring of fixed-size binary
// records capturing lifecycle and anomaly events — activation, deactivation,
// migration, eviction, failover, retry exhaustion, mailbox reject/shed,
// deadline timeout, slow turn, dead letter. Each record is stamped with the
// event time, actor id, silo, and the envelope's trace id, so a postmortem
// bundle can cross-correlate flight events with sampled spans.
//
// Recording discipline matches SpanRing (actor/trace.h): writers claim a
// slot with a relaxed fetch_add cursor and take a per-slot atomic try-lock;
// a contended slot drops the event (counted). No mutex is ever taken on the
// hot path, so the recorder stays enabled in production and under TSan.

#ifndef AODB_ACTOR_FLIGHT_RECORDER_H_
#define AODB_ACTOR_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "actor/actor_id.h"
#include "common/clock.h"

namespace aodb {

class Counter;
class MetricsRegistry;

/// Taxonomy of recorded events. Names (FlightEventName) are stable strings
/// used in bundle JSON; add new kinds at the end.
enum class FlightEventType : uint8_t {
  kActivate = 0,        ///< OnActivate completed OK (detail: 0).
  kDeactivate,          ///< Idle/shutdown deactivation (detail: rerouted msgs).
  kMigrate,             ///< Live migration out (detail: target silo).
  kEvict,               ///< Silo evicted/killed (detail: 1 = auto-eviction).
  kRestart,             ///< Silo rejoined after a kill.
  kFailoverResubmit,    ///< In-flight call re-submitted (detail: attempt #).
  kFailoverFailed,      ///< In-flight call failed Unavailable on eviction.
  kRetryExhausted,      ///< A RetryAsync loop gave up (detail: attempts).
  kMailboxReject,       ///< Bounded-mailbox rejection (detail: depth).
  kShed,                ///< Priority shed (detail: silo queued total).
  kDeadlineTimeout,     ///< Expired envelope dropped (detail: lateness us).
  kSlowTurn,            ///< Turn over threshold (detail: exec us).
  kDeadLetter,          ///< Envelope dropped with nobody to notify.
  kPagedOut,            ///< Cold activation paged to storage; directory entry
                        ///< kept and marked paged (detail: rerouted msgs).
  kFaultIn,             ///< Paged actor re-activated on a message (detail:
                        ///< storage-load latency us).
};

/// Stable lower_snake_case name of an event type ("slow_turn", ...).
const char* FlightEventName(FlightEventType type);

/// One fixed-size flight record. Trivially copyable: slot stores never
/// allocate, so a wrap-around overwrite costs a memcpy.
struct FlightRecord {
  /// Actor id ("Type/key") storage; longer ids are truncated.
  static constexpr size_t kActorBytes = 48;

  Micros at_us = 0;
  /// Global record sequence (relaxed fetch_add): orders events that share a
  /// timestamp when rings are merged.
  uint64_t seq = 0;
  uint64_t trace_id = 0;
  /// Event-specific detail (see FlightEventType comments).
  int64_t detail = 0;
  SiloId silo = kClientSiloId;
  FlightEventType type = FlightEventType::kActivate;
  char actor[kActorBytes] = {0};  ///< NUL-terminated.
};

/// Fixed-capacity lossy record sink, one per silo; same per-slot try-lock
/// discipline as SpanRing so writers never block and dumps are safe while
/// the runtime is hot.
class FlightRing {
 public:
  explicit FlightRing(size_t capacity);

  /// Attempts to store the record; returns false if the slot was contended
  /// (event dropped).
  bool Push(const FlightRecord& rec);

  /// Appends every stored record to `out` (unordered; at most `capacity`
  /// newest records survive wrap-around).
  void Collect(std::vector<FlightRecord>* out) const;

 private:
  struct Slot {
    std::atomic<bool> busy{false};
    bool used = false;
    FlightRecord rec;
  };

  const size_t mask_;
  std::atomic<uint64_t> cursor_{0};
  std::unique_ptr<Slot[]> slots_;
};

/// Per-cluster flight recorder: one ring per silo plus a client/runtime ring
/// (index num_silos), a global sequence counter, and "flight.recorded" /
/// "flight.dropped" counters. Disabled → Record is a branch and a return.
class FlightRecorder {
 public:
  FlightRecorder(int num_silos, bool enabled, int ring_capacity,
                 MetricsRegistry* metrics);

  bool enabled() const { return enabled_; }

  /// Records one event at `at_us` (caller supplies the clock reading it
  /// already has — keeps the recorder clock-agnostic and deterministic
  /// under the simulator). Lock-free; safe from any thread.
  void Record(FlightEventType type, SiloId silo, std::string_view actor,
              uint64_t trace_id, int64_t detail, Micros at_us);

  /// All buffered records across every ring, sorted by (at_us, seq) — the
  /// merged cluster-wide timeline.
  std::vector<FlightRecord> Collect() const;

  /// {"flight_events":[{"at_us":..,"seq":..,"type":"..","silo":..,
  /// "actor":"..","trace":..,"detail":..},...]} — actor names are
  /// JSON-escaped.
  std::string DumpJson() const;

  /// Appends just the JSON array of `events` (the bundle writer embeds it).
  static void AppendEventsJson(const std::vector<FlightRecord>& events,
                               std::string* out);

 private:
  size_t RingIndex(SiloId silo) const;

  const int num_silos_;
  const bool enabled_;
  std::atomic<uint64_t> next_seq_{1};
  std::vector<std::unique_ptr<FlightRing>> rings_;
  Counter* recorded_ = nullptr;
  Counter* dropped_ = nullptr;
};

namespace internal {

/// Flight recorder (and hosting silo) of the actor turn currently running
/// on this thread. RetryAsync loops capture it at construction so retry
/// exhaustion inside actor code is attributable to the silo that ran it;
/// client-side loops see a null recorder and record nothing. Mirrors
/// CurrentTraceContextSlot (actor/trace.h).
struct FlightScope {
  FlightRecorder* recorder = nullptr;
  SiloId silo = kClientSiloId;
};

inline FlightScope& CurrentFlightScopeSlot() {
  thread_local FlightScope scope;
  return scope;
}

}  // namespace internal

/// Recorder scope inherited by code on this thread (null recorder outside
/// any actor turn).
inline const internal::FlightScope& CurrentFlightScope() {
  return internal::CurrentFlightScopeSlot();
}

/// RAII scope installing a flight recorder + silo as the thread's current
/// scope (the silo wraps turn execution and lifecycle hooks with this).
class ScopedFlightScope {
 public:
  ScopedFlightScope(FlightRecorder* recorder, SiloId silo)
      : saved_(internal::CurrentFlightScopeSlot()) {
    internal::CurrentFlightScopeSlot() = {recorder, silo};
  }
  ~ScopedFlightScope() { internal::CurrentFlightScopeSlot() = saved_; }
  ScopedFlightScope(const ScopedFlightScope&) = delete;
  ScopedFlightScope& operator=(const ScopedFlightScope&) = delete;

 private:
  internal::FlightScope saved_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_FLIGHT_RECORDER_H_
