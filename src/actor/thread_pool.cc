#include "actor/thread_pool.h"

namespace aodb {

ThreadPoolExecutor::ThreadPoolExecutor(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() { Shutdown(); }

void ThreadPoolExecutor::Post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPoolExecutor::PostAfter(Micros delay_us, std::function<void()> fn) {
  PostAt(clock()->Now() + (delay_us < 0 ? 0 : delay_us), std::move(fn));
}

void ThreadPoolExecutor::PostAt(Micros due, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (shutdown_) return;
    timer_queue_.push(Timed{due, timer_seq_++, std::move(fn)});
  }
  timer_cv_.notify_one();
}

ExecutorStats ThreadPoolExecutor::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ThreadPoolExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock1(mu_);
    std::lock_guard<std::mutex> lock2(timer_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  timer_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

void ThreadPoolExecutor::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Micros start = clock()->Now();
    task.fn();
    Micros elapsed = clock()->Now() - start;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.tasks_run;
      stats_.busy_us += elapsed;
    }
  }
}

void ThreadPoolExecutor::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  for (;;) {
    if (shutdown_) return;
    if (timer_queue_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    Micros now = clock()->Now();
    const Timed& next = timer_queue_.top();
    if (next.due <= now) {
      std::function<void()> fn = next.fn;
      timer_queue_.pop();
      lock.unlock();
      // Delayed callbacks (network delivery, storage completions, timers)
      // run on the timer thread itself; they are expected to be cheap
      // enqueue operations.
      fn();
      lock.lock();
      continue;
    }
    timer_cv_.wait_for(lock, std::chrono::microseconds(next.due - now));
  }
}

}  // namespace aodb
