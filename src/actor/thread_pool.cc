#include "actor/thread_pool.h"

#include <algorithm>
#include <array>

namespace aodb {

namespace {

/// Consecutive LIFO-slot pops before a worker must take from its FIFO queue
/// (keeps a post-happy task chain from starving queued work).
constexpr int kMaxLifoStreak = 16;
/// Max tasks taken from a victim in one steal (half the queue, capped).
constexpr size_t kStealBatch = 8;
/// Steal-retry rounds (with yields) before a worker parks.
constexpr int kSpinRounds = 2;

/// Identifies the pool worker running on this thread, so Post can use the
/// zero-contention local path.
struct TlsWorker {
  const void* pool = nullptr;
  void* worker = nullptr;
};
thread_local TlsWorker tls_worker;

}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->rng = (0x9e3779b97f4a7c15ULL * (i + 1)) | 1;
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() { Shutdown(); }

void ThreadPoolExecutor::Post(Task task) {
  if (shutdown_.load(std::memory_order_acquire)) return;
  Worker* own = tls_worker.pool == this
                    ? static_cast<Worker*>(tls_worker.worker)
                    : nullptr;
  if (own != nullptr) {
    // Local post: the new task takes the LIFO slot (it is cache-hot — a
    // follow-on turn of the envelope just processed); the displaced slot
    // occupant moves to the queue.
    std::lock_guard<std::mutex> lock(own->mu);
    if (own->has_lifo) own->queue.push_back(std::move(own->lifo));
    own->lifo = std::move(task);
    own->has_lifo = true;
    own->size.fetch_add(1);
  } else {
    // External post (client threads, timer callbacks): round-robin across
    // worker queues so producers do not all serialize on one lock.
    size_t i = rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    Worker& w = *workers_[i];
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(task));
    w.size.fetch_add(1);
  }
  // Only signal when some worker is actually parked. At saturation this
  // branch is never taken, so a post is lock+push and nothing else.
  if (num_idle_.load() > 0) UnparkOne();
}

void ThreadPoolExecutor::PostAfter(Micros delay_us, std::function<void()> fn) {
  PostAt(clock()->Now() + (delay_us < 0 ? 0 : delay_us), std::move(fn));
}

void ThreadPoolExecutor::PostAt(Micros due, std::function<void()> fn) {
  bool wake;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    if (shutdown_.load(std::memory_order_acquire)) return;
    // Only wake the timer thread when this entry becomes the new earliest
    // deadline; otherwise the thread's current wait already covers it.
    wake = timer_queue_.empty() || due < timer_queue_.top().due;
    timer_queue_.push(Timed{due, timer_seq_++, std::move(fn)});
  }
  if (wake) timer_cv_.notify_one();
}

ExecutorStats ThreadPoolExecutor::Stats() const {
  ExecutorStats s;
  for (const auto& w : workers_) {
    s.tasks_run += w->tasks_run.load(std::memory_order_relaxed);
    s.busy_us += w->busy_us.load(std::memory_order_relaxed);
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.parks += w->parks.load(std::memory_order_relaxed);
    s.queue_depth += std::max<int64_t>(0, w->size.load());
  }
  return s;
}

void ThreadPoolExecutor::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
  }
  timer_cv_.notify_all();
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->notified = true;
    }
    w->cv.notify_all();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

int64_t ThreadPoolExecutor::TotalQueued() const {
  int64_t total = 0;
  for (const auto& w : workers_) total += w->size.load();
  return total;
}

void ThreadPoolExecutor::UnparkOne() {
  int index;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (idle_stack_.empty()) return;
    index = idle_stack_.back();
    idle_stack_.pop_back();
    num_idle_.fetch_sub(1);
  }
  Worker& w = *workers_[index];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.notified = true;
  }
  w.cv.notify_one();
}

bool ThreadPoolExecutor::TryGetLocal(Worker& me, Task* out) {
  std::lock_guard<std::mutex> lock(me.mu);
  if (me.has_lifo && me.lifo_streak < kMaxLifoStreak) {
    *out = std::move(me.lifo);
    me.has_lifo = false;
    ++me.lifo_streak;
    me.size.fetch_sub(1);
    return true;
  }
  if (!me.queue.empty()) {
    *out = std::move(me.queue.front());
    me.queue.pop_front();
    me.lifo_streak = 0;
    me.size.fetch_sub(1);
    return true;
  }
  if (me.has_lifo) {  // Streak cap hit but the queue is empty anyway.
    *out = std::move(me.lifo);
    me.has_lifo = false;
    me.lifo_streak = 0;
    me.size.fetch_sub(1);
    return true;
  }
  return false;
}

bool ThreadPoolExecutor::TrySteal(int thief, Task* out) {
  const size_t n = workers_.size();
  if (n <= 1) return false;
  Worker& me = *workers_[thief];
  // xorshift64 for a cheap random victim starting point.
  me.rng ^= me.rng << 13;
  me.rng ^= me.rng >> 7;
  me.rng ^= me.rng << 17;
  const size_t start = static_cast<size_t>(me.rng % n);
  for (size_t k = 0; k < n; ++k) {
    const size_t v = (start + k) % n;
    if (v == static_cast<size_t>(thief)) continue;
    Worker& victim = *workers_[v];
    if (victim.size.load() <= 0) continue;  // Cheap pre-screen, no lock.
    std::array<Task, kStealBatch> grabbed;
    size_t took = 0;
    {
      std::unique_lock<std::mutex> lock(victim.mu, std::try_to_lock);
      if (!lock.owns_lock()) continue;  // Contended: move on, don't wait.
      // The LIFO slot is never stolen — it is the victim's cache-hot next
      // task. Steal the OLDEST queued tasks (front), which both preserves
      // rough global FIFO and leaves the victim its freshest work.
      size_t avail = victim.queue.size();
      if (avail == 0) continue;
      size_t take = std::min((avail + 1) / 2, kStealBatch);
      for (; took < take; ++took) {
        grabbed[took] = std::move(victim.queue.front());
        victim.queue.pop_front();
      }
      victim.size.fetch_sub(static_cast<int64_t>(took));
    }
    me.steals.fetch_add(static_cast<int64_t>(took),
                        std::memory_order_relaxed);
    *out = std::move(grabbed[0]);
    if (took > 1) {
      std::lock_guard<std::mutex> lock(me.mu);
      for (size_t i = 1; i < took; ++i) {
        me.queue.push_back(std::move(grabbed[i]));
      }
      me.size.fetch_add(static_cast<int64_t>(took - 1));
    }
    return true;
  }
  return false;
}

void ThreadPoolExecutor::RunTask(Worker& me, Task& task) {
  Micros start = clock()->Now();
  task.fn();
  Micros elapsed = clock()->Now() - start;
  task.fn = nullptr;  // Release captures before the next blocking wait.
  me.tasks_run.fetch_add(1, std::memory_order_relaxed);
  me.busy_us.fetch_add(elapsed, std::memory_order_relaxed);
}

void ThreadPoolExecutor::WorkerLoop(int index) {
  Worker& me = *workers_[index];
  tls_worker.pool = this;
  tls_worker.worker = &me;
  Task task;
  for (;;) {
    if (TryGetLocal(me, &task) || TrySteal(index, &task)) {
      RunTask(me, task);
      continue;
    }
    // Lightly spin before parking: a burst is often right behind.
    bool got = false;
    for (int spin = 0; spin < kSpinRounds && !got; ++spin) {
      std::this_thread::yield();
      got = TryGetLocal(me, &task) || TrySteal(index, &task);
    }
    if (got) {
      RunTask(me, task);
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      // Drain: no new work can be posted once shutdown_ is set, so the
      // total is monotonically decreasing; leave only when it hits zero
      // (another worker may still hold tasks we failed to steal above).
      if (TotalQueued() == 0) {
        tls_worker = TlsWorker{};
        return;
      }
      std::this_thread::yield();
      continue;
    }
    // Park. Register as idle FIRST, then re-check for work: a poster either
    // sees us on the idle stack (and unparks us) or we see its queue
    // increment here — never neither (both sides use seq-cst accesses).
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      idle_stack_.push_back(index);
      num_idle_.fetch_add(1);
    }
    if (TotalQueued() > 0 || shutdown_.load(std::memory_order_acquire)) {
      bool removed = false;
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        auto it = std::find(idle_stack_.begin(), idle_stack_.end(), index);
        if (it != idle_stack_.end()) {
          idle_stack_.erase(it);
          num_idle_.fetch_sub(1);
          removed = true;
        }
      }
      if (removed) continue;
      // Already popped by an unparker: its notification is in flight, fall
      // through and consume it so the token is not left dangling.
    }
    me.parks.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(me.mu);
    me.cv.wait(lock, [this, &me] {
      return me.notified || me.has_lifo || !me.queue.empty() ||
             shutdown_.load(std::memory_order_acquire);
    });
    me.notified = false;
  }
}

void ThreadPoolExecutor::TimerLoop() {
  std::unique_lock<std::mutex> lock(timer_mu_);
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    if (timer_queue_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    Micros now = clock()->Now();
    const Timed& next = timer_queue_.top();
    if (next.due <= now) {
      std::function<void()> fn = next.fn;
      timer_queue_.pop();
      lock.unlock();
      // Delayed callbacks (network delivery, storage completions, timers)
      // run on the timer thread itself; they are expected to be cheap
      // enqueue operations.
      fn();
      lock.lock();
      continue;
    }
    timer_cv_.wait_for(lock, std::chrono::microseconds(next.due - now));
  }
}

}  // namespace aodb
