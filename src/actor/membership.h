// Cluster membership & automatic failure detection, modeled on the Orleans
// membership protocol the paper's deployment relies on: every silo keeps a
// lease row in the system store (the role Amazon RDS plays for Orleans),
// renews it on a heartbeat timer, and probes a ring of peer silos. Missed
// probes accrue suspicion votes in the shared table; once a quorum of
// distinct silos suspects a target — or its lease has expired and at least
// one silo suspects it — the target is declared dead and evicted through
// Cluster::EvictSilo, with no fault-plan involvement.
//
// The point of this subsystem is the *unannounced* failure: a wedged
// executor or suppressed heartbeat that Cluster::KillSilo never announces.
// Detection latency is bounded by the probe cadence (probe_period_us *
// suspect_after_missed + probe_timeout_us per voter) with the lease
// expiry as the backstop. See DESIGN.md "Membership & failure detection".

#ifndef AODB_ACTOR_MEMBERSHIP_H_
#define AODB_ACTOR_MEMBERSHIP_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "actor/actor_id.h"
#include "actor/executor.h"
#include "actor/runtime_options.h"
#include "actor/system_kv.h"
#include "common/clock.h"
#include "common/status.h"

namespace aodb {

class Cluster;

/// One silo's decoded lease row (`mbr/lease/<silo>` in the system store).
struct LeaseRow {
  /// Bumped on every restart, so stale suspicion of a previous incarnation
  /// never counts against the rejoined silo.
  uint64_t incarnation = 0;
  /// Absolute expiry on the cluster clock; a row past this is expired.
  Micros expiry_us = 0;
};

/// Monotonic failure-detector counters (tests, bench reporting).
struct MembershipStats {
  int64_t lease_renewals = 0;
  int64_t probes_sent = 0;
  int64_t probes_missed = 0;
  int64_t suspicions_filed = 0;
  int64_t suspicions_withdrawn = 0;
  /// Automatic declare-dead decisions made by this detector.
  int64_t evictions = 0;
};

/// The failure detector: one heartbeat agent and one probe agent per silo,
/// scheduled on that silo's own executor (so a wedged silo convincingly
/// stops heartbeating), sharing a lease/suspicion table in the system
/// store. Falls back to an in-process table when no SystemKv is wired.
///
/// Thread-safe; deterministic under the discrete-event simulator (agent
/// timers are plain executor events, probe delays come from the seeded
/// network model).
class MembershipService {
 public:
  MembershipService(Cluster* cluster, SystemKv* kv);

  /// Writes the initial lease rows and starts every silo's heartbeat and
  /// probe loops. Call once.
  void Start();
  /// Permanently stops all agent loops (idempotent).
  void Stop();

  // --- Cluster lifecycle hooks --------------------------------------------

  /// A silo left the cluster (announced kill or automatic eviction): its
  /// suspicion votes are cleared so a later rejoin starts clean.
  void NoteEvicted(SiloId id);
  /// A silo rejoined: bump its incarnation, renew its lease, clear all
  /// suspicion state involving it (as voter and as target).
  void NoteRestarted(SiloId id);

  // --- Chaos hooks ---------------------------------------------------------

  /// Gray failure: a suppressed silo keeps serving application traffic but
  /// its membership agent goes dark — no lease renewals, no probe acks, no
  /// outgoing probes. The detector must evict it anyway. Cleared by
  /// NoteRestarted.
  void SuppressSilo(SiloId id, bool suppressed);
  bool Suppressed(SiloId id) const;

  // --- Introspection -------------------------------------------------------

  /// Decoded lease row, or NotFound.
  Result<LeaseRow> ReadLease(SiloId id) const;
  /// Distinct silos currently suspecting `id` in the table.
  int SuspicionCount(SiloId id) const;
  uint64_t Incarnation(SiloId id) const;
  /// Time this detector last declared `id` dead (0 = never). Used by the
  /// chaos bench to measure detection latency.
  Micros LastEvictionAt(SiloId id) const;
  MembershipStats stats() const;

 private:
  // Agent bodies (run on the owning silo's executor).
  void HeartbeatTick(SiloId id);
  void ProbeTick(SiloId id);
  void SendProbe(SiloId from, SiloId to);
  void OnProbeAck(SiloId from, SiloId to);
  void OnProbeMissed(SiloId from, SiloId to);
  /// Applies the declare-dead rule for `target`; evicts when it fires.
  void EvaluateEviction(SiloId target);

  void RenewLease(SiloId id);
  void ClearSuspicions(SiloId target);
  void ScheduleLoop(Executor* exec, Micros period, std::function<void()> body);

  static std::string LeaseKey(SiloId id);
  static std::string SuspectKey(SiloId target, SiloId by);
  static std::string SuspectPrefix(SiloId target);

  // Table access, routed to the system store or the in-process fallback.
  void TablePut(const std::string& key, const std::string& value);
  Result<std::string> TableGet(const std::string& key) const;
  void TableDelete(const std::string& key);
  Result<std::vector<std::pair<std::string, std::string>>> TableList(
      const std::string& prefix) const;

  Cluster* const cluster_;
  SystemKv* const kv_;
  const MembershipOptions opts_;
  const int num_silos_;

  /// Master liveness switch for all agent loops; shared with the loop
  /// closures so Stop() works even while ticks are in flight.
  std::shared_ptr<std::atomic<bool>> running_;

  mutable std::mutex mu_;
  /// In-process fallback table (kv_ == nullptr).
  std::map<std::string, std::string> local_table_;
  std::vector<uint64_t> incarnation_;
  std::vector<char> suppressed_;
  /// missed_[prober][target]: consecutive missed probes.
  std::vector<std::vector<int>> missed_;
  /// suspected_[prober][target]: this prober has a vote filed in the table.
  std::vector<std::vector<char>> suspected_;
  std::vector<Micros> eviction_at_;

  std::atomic<int64_t> lease_renewals_{0};
  std::atomic<int64_t> probes_sent_{0};
  std::atomic<int64_t> probes_missed_{0};
  std::atomic<int64_t> suspicions_filed_{0};
  std::atomic<int64_t> suspicions_withdrawn_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace aodb

#endif  // AODB_ACTOR_MEMBERSHIP_H_
