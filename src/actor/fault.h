// Fault-injection subsystem: a seeded FaultPlan describing scheduled silo
// crashes/restarts, per-channel message loss and duplication, and storage
// error/latency-spike injection, executed by a FaultInjector. The injector
// is deterministic under the discrete-event simulator (same seed, same
// fault sequence) and thread-safe in real mode, so the same chaos scenario
// can be replayed exactly or run against live thread pools.
//
// The paper takes robustness on faith — perpetual virtual actors reactivate
// from persisted state after node failure — and this layer lets the
// reproduction actually exercise that path: kill a silo mid-run, drop and
// duplicate messages, make the cloud store fail transiently, and verify
// acknowledged writes survive.

#ifndef AODB_ACTOR_FAULT_H_
#define AODB_ACTOR_FAULT_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "actor/actor_id.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/telemetry.h"

namespace aodb {

class Cluster;

/// One scheduled silo failure. Times are relative to FaultInjector::Arm.
struct SiloCrashEvent {
  Micros at_us = 0;
  SiloId silo = 0;
  /// Delay after the crash until the silo rejoins placement; 0 means it
  /// never restarts (permanent loss of the node).
  Micros restart_after_us = 0;
};

/// One scheduled unannounced failure: the silo is never killed through the
/// cluster — it just goes quiet, and only the membership failure detector
/// (MembershipOptions::enable) can notice and evict it. Times are relative
/// to FaultInjector::Arm.
struct SiloWedgeEvent {
  Micros at_us = 0;
  SiloId silo = 0;
  /// false: the silo's executor wedges (Silo::SetWedged) — deliveries are
  /// swallowed and nothing runs. true: gray failure — the silo keeps
  /// serving application traffic but its membership agent goes dark
  /// (MembershipService::SuppressSilo), so probes and lease renewals stop.
  bool suppress_only = false;
};

/// One scheduled link-level partition: the directed silo->silo link is
/// severed at `at_us` and (optionally) healed after `heal_after_us`.
/// Partitions are asymmetric by default — severing A -> B leaves B -> A
/// intact — which is the failure shape whole-silo wedges cannot express:
/// A times out probing B while B (and everyone else) still sees A as
/// healthy. Times are relative to FaultInjector::Arm.
struct LinkPartitionEvent {
  Micros at_us = 0;
  SiloId from = 0;
  SiloId to = 0;
  /// Delay after the sever until the link heals; 0 means it never heals.
  Micros heal_after_us = 0;
  /// Also sever (and heal) the reverse direction.
  bool symmetric = false;
};

/// Loss model of the messaging substrate, applied to every remote
/// (cross-node) send. A dropped request surfaces at the sender as
/// Unavailable — the transport noticing the broken connection — so callers
/// exercise their retry path instead of hanging on a silent void.
struct MessageFaults {
  double drop_prob = 0;
  /// Probability a delivered message is delivered twice (at-least-once
  /// semantics under retransmission).
  double duplicate_prob = 0;
  /// Probability a wire frame (request or reply) is corrupted in flight —
  /// a flipped bit or a truncated tail. The CRC seal guarantees corruption
  /// surfaces as Status::Corruption at the decoding end, never as undefined
  /// behavior in a decoder.
  double corrupt_prob = 0;
  /// Probability a delivered message is held back by an extra uniform
  /// delay in [0, reorder_max_delay_us), letting later sends on the same
  /// channel overtake it (a retransmitted packet arriving after fresher
  /// traffic). Breaks the network model's per-channel FIFO guarantee on
  /// purpose.
  double reorder_prob = 0;
  Micros reorder_max_delay_us = 20 * kMicrosPerMilli;
};

/// Transient-failure model of the storage tier, consumed by
/// FaultyStateStorage.
struct StorageFaults {
  /// Probability an operation fails with `error` before reaching the
  /// backing store.
  double error_prob = 0;
  /// Probability a (successful or failed) operation is delayed by
  /// `spike_latency_us` (a degraded replica / retried RPC inside the
  /// storage service).
  double latency_spike_prob = 0;
  Micros spike_latency_us = 50 * kMicrosPerMilli;
  StatusCode error = StatusCode::kUnavailable;
  /// Probability a Write is torn: the process "crashes" mid-append and the
  /// store's log recovery discards the partial tail record (the semantics
  /// FileKvStore's replay guarantees — see the torn-tail recovery tests),
  /// so the caller sees IoError, the write was never acked, and the
  /// previous durable snapshot remains readable.
  double torn_write_prob = 0;
};

/// The full seeded chaos scenario.
struct FaultPlan {
  uint64_t seed = 1;
  std::vector<SiloCrashEvent> crashes;
  /// Unannounced hangs / gray failures; require membership to recover.
  std::vector<SiloWedgeEvent> wedges;
  /// Directed link severs/heals (NetworkModel partition matrix).
  std::vector<LinkPartitionEvent> partitions;
  MessageFaults message;
  StorageFaults storage;
};

/// Executes a FaultPlan against a cluster. Hooked into Cluster::Send (drops
/// and duplication), queried by FaultyStateStorage (storage faults), and —
/// once Arm()ed — drives the crash/restart schedule through
/// Cluster::KillSilo / RestartSilo. All counters are monotonic and
/// deterministic for a given seed in simulation mode.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Schedules the plan's crash/restart events on the cluster's client
  /// executor (virtual time in simulation). Also registers this injector on
  /// the cluster so the message hooks fire.
  void Arm(Cluster* cluster);

  // --- Message-path hooks (called by Cluster::Send for remote sends) ------

  /// True if this remote message should be lost.
  bool ShouldDropMessage();
  /// True if this remote message should additionally be delivered twice.
  bool ShouldDuplicateMessage();
  /// Possibly corrupts an encoded wire frame in place (flips one bit or
  /// truncates the tail). Returns true if the frame was mutated.
  bool MaybeCorruptFrame(std::string* frame);
  /// Extra hold-back delay for this delivery (0 most of the time); nonzero
  /// lets later messages on the same channel overtake this one.
  Micros NextReorderDelay();

  /// Retransmission lag for a duplicated message: uniform in
  /// [0, reorder_max_delay_us), drawn unconditionally (a retransmission
  /// implies the sender already waited out a timeout, so duplicates are
  /// inherently late). This is the injector's stale-mail generator: a dup
  /// landing after its actor idle-deactivated probes the resurrection /
  /// split-brain guards.
  Micros NextDuplicateLag();

  // --- Storage hooks (called by FaultyStateStorage) -----------------------

  /// OK, or the transient error this operation must fail with.
  Status NextStorageFault();
  /// Extra latency to charge this storage operation (0 most of the time).
  Micros NextStorageDelay();
  /// True if this Write is torn (crash mid-append; the tail record is
  /// discarded by log recovery, so the write fails un-acked and the prior
  /// durable value survives).
  bool NextTornWrite();

  /// Called by Cluster when a kill / restart actually executes.
  void RecordKill() {
    silo_kills_.fetch_add(1);
    Mirror(kills_metric_);
  }
  void RecordRestart() {
    silo_restarts_.fetch_add(1);
    Mirror(restarts_metric_);
  }

  // --- Counters (for tests and deterministic-replay assertions) -----------

  int64_t messages_dropped() const { return messages_dropped_.load(); }
  int64_t messages_duplicated() const { return messages_duplicated_.load(); }
  int64_t messages_corrupted() const { return messages_corrupted_.load(); }
  int64_t messages_reordered() const { return messages_reordered_.load(); }
  int64_t storage_errors() const { return storage_errors_.load(); }
  int64_t storage_spikes() const { return storage_spikes_.load(); }
  int64_t torn_writes() const { return torn_writes_.load(); }
  int64_t link_severs() const { return link_severs_.load(); }
  int64_t silo_kills() const { return silo_kills_.load(); }
  int64_t silo_restarts() const { return silo_restarts_.load(); }

 private:
  /// Adds 1 to a registry mirror if Arm bound one (null before Arm — the
  /// injector is constructible without a cluster).
  static void Mirror(const std::atomic<Counter*>& c) {
    if (Counter* counter = c.load(std::memory_order_acquire)) counter->Add();
  }

  const FaultPlan plan_;

  // Independent deterministic streams so message and storage decisions do
  // not perturb each other's sequences.
  std::mutex message_mu_;
  Rng message_rng_;
  std::mutex storage_mu_;
  Rng storage_rng_;

  std::atomic<int64_t> messages_dropped_{0};
  std::atomic<int64_t> messages_duplicated_{0};
  std::atomic<int64_t> messages_corrupted_{0};
  std::atomic<int64_t> messages_reordered_{0};
  std::atomic<int64_t> storage_errors_{0};
  std::atomic<int64_t> storage_spikes_{0};
  std::atomic<int64_t> torn_writes_{0};
  std::atomic<int64_t> link_severs_{0};
  std::atomic<int64_t> silo_kills_{0};
  std::atomic<int64_t> silo_restarts_{0};

  // Unified-registry mirrors ("fault.*" series), bound by Arm.
  std::atomic<Counter*> dropped_metric_{nullptr};
  std::atomic<Counter*> duplicated_metric_{nullptr};
  std::atomic<Counter*> corrupted_metric_{nullptr};
  std::atomic<Counter*> reordered_metric_{nullptr};
  std::atomic<Counter*> storage_errors_metric_{nullptr};
  std::atomic<Counter*> storage_spikes_metric_{nullptr};
  std::atomic<Counter*> torn_writes_metric_{nullptr};
  std::atomic<Counter*> link_severs_metric_{nullptr};
  std::atomic<Counter*> kills_metric_{nullptr};
  std::atomic<Counter*> restarts_metric_{nullptr};
};

}  // namespace aodb

#endif  // AODB_ACTOR_FAULT_H_
