#include "actor/membership.h"

#include <algorithm>

#include "actor/cluster.h"
#include "common/codec.h"
#include "common/logging.h"

namespace aodb {

namespace {
/// Wire size charged for one probe or ack (a tiny UDP-style datagram).
constexpr int64_t kProbeBytes = 32;
}  // namespace

MembershipService::MembershipService(Cluster* cluster, SystemKv* kv)
    : cluster_(cluster),
      kv_(kv),
      opts_(cluster->options().membership),
      num_silos_(cluster->num_silos()),
      running_(std::make_shared<std::atomic<bool>>(false)),
      incarnation_(static_cast<size_t>(num_silos_), 1),
      suppressed_(static_cast<size_t>(num_silos_), 0),
      missed_(static_cast<size_t>(num_silos_),
              std::vector<int>(static_cast<size_t>(num_silos_), 0)),
      suspected_(static_cast<size_t>(num_silos_),
                 std::vector<char>(static_cast<size_t>(num_silos_), 0)),
      eviction_at_(static_cast<size_t>(num_silos_), 0) {}

// --- Keys & table access -----------------------------------------------------

std::string MembershipService::LeaseKey(SiloId id) {
  return "mbr/lease/" + std::to_string(id);
}

std::string MembershipService::SuspectKey(SiloId target, SiloId by) {
  return SuspectPrefix(target) + std::to_string(by);
}

std::string MembershipService::SuspectPrefix(SiloId target) {
  return "mbr/suspect/" + std::to_string(target) + "/";
}

void MembershipService::TablePut(const std::string& key,
                                 const std::string& value) {
  if (kv_ != nullptr) {
    Status st = kv_->Put(key, value);
    // Table unavailability must not crash the detector; the next tick
    // retries (the lease just looks a little staler in the meantime).
    if (!st.ok()) {
      AODB_LOG(Warn, "membership table put %s failed: %s", key.c_str(),
               st.ToString().c_str());
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  local_table_[key] = value;
}

Result<std::string> MembershipService::TableGet(const std::string& key) const {
  if (kv_ != nullptr) return kv_->Get(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = local_table_.find(key);
  if (it == local_table_.end()) {
    return Result<std::string>::FromError(Status::NotFound(key));
  }
  return Result<std::string>(it->second);
}

void MembershipService::TableDelete(const std::string& key) {
  if (kv_ != nullptr) {
    (void)kv_->Delete(key);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  local_table_.erase(key);
}

Result<std::vector<std::pair<std::string, std::string>>>
MembershipService::TableList(const std::string& prefix) const {
  if (kv_ != nullptr) return kv_->List(prefix);
  std::vector<std::pair<std::string, std::string>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = local_table_.lower_bound(prefix); it != local_table_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return Result<std::vector<std::pair<std::string, std::string>>>(
      std::move(out));
}

// --- Lifecycle ---------------------------------------------------------------

void MembershipService::Start() {
  bool expected = false;
  if (!running_->compare_exchange_strong(expected, true)) return;
  for (SiloId i = 0; i < num_silos_; ++i) {
    RenewLease(i);
    Executor* exec = cluster_->ExecutorFor(i);
    ScheduleLoop(exec, opts_.heartbeat_period_us,
                 [this, i] { HeartbeatTick(i); });
    ScheduleLoop(exec, opts_.probe_period_us, [this, i] { ProbeTick(i); });
  }
}

void MembershipService::Stop() { running_->store(false); }

void MembershipService::ScheduleLoop(Executor* exec, Micros period,
                                     std::function<void()> body) {
  auto running = running_;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [running, exec, period, body = std::move(body), weak_tick]() {
    if (!running->load(std::memory_order_acquire)) return;
    body();
    if (auto next = weak_tick.lock()) {
      exec->PostAfter(period, [next] { (*next)(); });
    }
  };
  exec->PostAfter(period, [tick] { (*tick)(); });
}

// --- Heartbeats --------------------------------------------------------------

void MembershipService::HeartbeatTick(SiloId id) {
  Silo* silo = cluster_->silo(id);
  // A dead, wedged, or suppressed silo does not renew its lease — that
  // silence is exactly what the lease-expiry backstop detects.
  if (!silo->alive() || silo->wedged() || Suppressed(id)) return;
  RenewLease(id);
}

void MembershipService::RenewLease(SiloId id) {
  Micros now = cluster_->ExecutorFor(id)->clock()->Now();
  LeaseRow row;
  {
    std::lock_guard<std::mutex> lock(mu_);
    row.incarnation = incarnation_[id];
  }
  row.expiry_us = now + opts_.lease_duration_us;
  BufWriter w;
  w.PutVarint(row.incarnation);
  w.PutVarint(static_cast<uint64_t>(row.expiry_us));
  TablePut(LeaseKey(id), w.Release());
  lease_renewals_.fetch_add(1, std::memory_order_relaxed);
}

Result<LeaseRow> MembershipService::ReadLease(SiloId id) const {
  auto raw = TableGet(LeaseKey(id));
  if (!raw.ok()) return Result<LeaseRow>::FromError(raw.status());
  BufReader r(raw.value());
  LeaseRow row;
  uint64_t expiry = 0;
  Status st = r.GetVarint(&row.incarnation);
  if (st.ok()) st = r.GetVarint(&expiry);
  if (!st.ok()) return Result<LeaseRow>::FromError(st);
  row.expiry_us = static_cast<Micros>(expiry);
  return Result<LeaseRow>(row);
}

// --- Probing -----------------------------------------------------------------

void MembershipService::ProbeTick(SiloId id) {
  Silo* silo = cluster_->silo(id);
  // Wedged/suppressed silos stop probing too: the whole membership agent is
  // what hung, not just the ack path.
  if (!silo->alive() || silo->wedged() || Suppressed(id)) return;
  int fanout = std::max(1, opts_.probe_fanout);
  std::vector<SiloId> targets;
  for (int k = 1; k < num_silos_ &&
                  static_cast<int>(targets.size()) < fanout;
       ++k) {
    SiloId t = static_cast<SiloId>((id + k) % num_silos_);
    if (cluster_->directory().SiloLive(t)) targets.push_back(t);
  }
  for (SiloId t : targets) SendProbe(id, t);
}

void MembershipService::SendProbe(SiloId from, SiloId to) {
  probes_sent_.fetch_add(1, std::memory_order_relaxed);
  auto acked = std::make_shared<std::atomic<bool>>(false);
  Cluster* c = cluster_;
  MembershipService* self = this;
  auto running = running_;
  Executor* from_exec = c->ExecutorFor(from);
  Executor* to_exec = c->ExecutorFor(to);
  // The probe rides the same network model as application traffic — which
  // includes the partition matrix: a severed from -> to link eats the probe,
  // and a severed to -> from link eats the ack. Either half produces a
  // missed probe at the prober, so asymmetric partitions surface as
  // one-sided suspicion that the quorum rule must refuse to act on alone.
  if (!c->network().Partitioned(from, to)) {
    Micros arrive = c->network().FifoArrival(from, to, kProbeBytes,
                                             to_exec->clock()->Now());
    to_exec->PostAt(arrive, [self, c, running, from, to, acked] {
      if (!running->load(std::memory_order_acquire)) return;
      Silo* target = c->silo(to);
      // Only a healthy membership agent acks: dead and wedged silos are
      // silent, and a suppressed (gray-failing) silo is silent here even
      // though it still serves application calls.
      if (!target->alive() || target->wedged() || self->Suppressed(to)) return;
      if (c->network().Partitioned(to, from)) return;  // Ack path severed.
      Executor* back = c->ExecutorFor(from);
      Micros back_arrive = c->network().FifoArrival(to, from, kProbeBytes,
                                                    back->clock()->Now());
      back->PostAt(back_arrive, [acked] {
        acked->store(true, std::memory_order_release);
      });
    });
  }
  from_exec->PostAfter(opts_.probe_timeout_us,
                       [self, running, from, to, acked] {
                         if (!running->load(std::memory_order_acquire)) return;
                         if (acked->load(std::memory_order_acquire)) {
                           self->OnProbeAck(from, to);
                         } else {
                           self->OnProbeMissed(from, to);
                         }
                       });
}

void MembershipService::OnProbeAck(SiloId from, SiloId to) {
  bool withdraw = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    missed_[from][to] = 0;
    if (suspected_[from][to]) {
      suspected_[from][to] = 0;
      withdraw = true;
    }
  }
  if (withdraw) {
    // The target recovered before eviction: retract this prober's vote so a
    // transient stall does not linger toward a later quorum.
    TableDelete(SuspectKey(to, from));
    suspicions_withdrawn_.fetch_add(1, std::memory_order_relaxed);
    AODB_LOG(Info, "silo %d withdrew suspicion of silo %d",
             static_cast<int>(from), static_cast<int>(to));
  }
}

void MembershipService::OnProbeMissed(SiloId from, SiloId to) {
  probes_missed_.fetch_add(1, std::memory_order_relaxed);
  bool file_vote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int misses = ++missed_[from][to];
    if (misses >= opts_.suspect_after_missed && !suspected_[from][to]) {
      suspected_[from][to] = 1;
      file_vote = true;
    }
  }
  if (file_vote) {
    TablePut(SuspectKey(to, from), "1");
    suspicions_filed_.fetch_add(1, std::memory_order_relaxed);
    AODB_LOG(Warn, "silo %d suspects silo %d (missed probes >= %d)",
             static_cast<int>(from), static_cast<int>(to),
             opts_.suspect_after_missed);
  }
  // Re-evaluate on every miss, not only on a fresh vote: the lease-expiry
  // arm of the declare-dead rule can become true long after the vote was
  // filed.
  EvaluateEviction(to);
}

void MembershipService::EvaluateEviction(SiloId target) {
  if (!cluster_->directory().SiloLive(target)) return;  // Already out.
  auto votes_listed = TableList(SuspectPrefix(target));
  int votes = votes_listed.ok()
                  ? static_cast<int>(votes_listed.value().size())
                  : 0;
  if (votes == 0) return;
  int live_voters = 0;
  for (SiloId i = 0; i < num_silos_; ++i) {
    if (i != target && cluster_->directory().SiloLive(i)) ++live_voters;
  }
  // Quorum can never exceed the silos able to vote (otherwise a two-silo
  // cluster could never evict anyone).
  int quorum = std::max(1, std::min(opts_.eviction_quorum, live_voters));
  bool lease_expired = true;  // A missing/corrupt row counts as expired.
  auto lease = ReadLease(target);
  Micros now = cluster_->ExecutorFor(target)->clock()->Now();
  if (lease.ok()) lease_expired = lease.value().expiry_us < now;
  if (votes < quorum && !lease_expired) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    eviction_at_[target] = now;
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
  AODB_LOG(Warn,
           "membership: declaring silo %d dead (%d/%d suspicion votes, "
           "lease %s)",
           static_cast<int>(target), votes, quorum,
           lease_expired ? "expired" : "current");
  cluster_->EvictSilo(target, "failure detector");
}

// --- Cluster hooks -----------------------------------------------------------

void MembershipService::NoteEvicted(SiloId id) {
  ClearSuspicions(id);
  std::lock_guard<std::mutex> lock(mu_);
  for (SiloId i = 0; i < num_silos_; ++i) {
    missed_[i][id] = 0;
    suspected_[i][id] = 0;
  }
}

void MembershipService::NoteRestarted(SiloId id) {
  ClearSuspicions(id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++incarnation_[id];
    suppressed_[id] = 0;
    for (SiloId i = 0; i < num_silos_; ++i) {
      missed_[i][id] = 0;
      suspected_[i][id] = 0;
      missed_[id][i] = 0;
      suspected_[id][i] = 0;
    }
  }
  // Rejoin with a fresh lease immediately; the heartbeat loop (which never
  // stopped ticking) takes over from here.
  if (running_->load(std::memory_order_acquire)) RenewLease(id);
}

void MembershipService::ClearSuspicions(SiloId target) {
  auto listed = TableList(SuspectPrefix(target));
  if (!listed.ok()) return;
  for (const auto& [key, value] : listed.value()) TableDelete(key);
}

// --- Chaos & introspection ---------------------------------------------------

void MembershipService::SuppressSilo(SiloId id, bool suppressed) {
  std::lock_guard<std::mutex> lock(mu_);
  suppressed_[id] = suppressed ? 1 : 0;
}

bool MembershipService::Suppressed(SiloId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_[id] != 0;
}

int MembershipService::SuspicionCount(SiloId id) const {
  auto listed = TableList(SuspectPrefix(id));
  return listed.ok() ? static_cast<int>(listed.value().size()) : 0;
}

uint64_t MembershipService::Incarnation(SiloId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return incarnation_[id];
}

Micros MembershipService::LastEvictionAt(SiloId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return eviction_at_[id];
}

MembershipStats MembershipService::stats() const {
  MembershipStats s;
  s.lease_renewals = lease_renewals_.load(std::memory_order_relaxed);
  s.probes_sent = probes_sent_.load(std::memory_order_relaxed);
  s.probes_missed = probes_missed_.load(std::memory_order_relaxed);
  s.suspicions_filed = suspicions_filed_.load(std::memory_order_relaxed);
  s.suspicions_withdrawn =
      suspicions_withdrawn_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aodb
