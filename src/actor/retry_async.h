// RetryAsync: runs a Future-producing operation under a RetryPolicy,
// scheduling backoff delays on an Executor (real timers or virtual time).
// This is the one retry loop shared by the workflow engine, the transaction
// coordinator, persistent-actor state I/O, and the platform client paths.

#ifndef AODB_ACTOR_RETRY_ASYNC_H_
#define AODB_ACTOR_RETRY_ASYNC_H_

#include <functional>
#include <memory>
#include <utility>

#include "actor/executor.h"
#include "actor/flight_recorder.h"
#include "actor/future.h"
#include "actor/trace.h"
#include "common/retry.h"

namespace aodb {

namespace internal {

/// The failure status carried by a Result. For Result<Status> the payload
/// itself is the outcome; for other types only the error channel can fail.
inline Status FailureOf(const Result<Status>& r) {
  return r.ok() ? r.value() : r.status();
}
template <typename T>
Status FailureOf(const Result<T>& r) {
  return r.ok() ? Status::OK() : r.status();
}

template <typename T>
struct RetryLoop {
  Executor* exec;
  RetryState retry;
  Micros start_us;
  /// Trace context active when the loop was created; re-installed around
  /// every attempt so retries (which run from backoff timers, off the
  /// original thread context) stay in the caller's trace.
  TraceContext trace_ctx;
  /// Flight-recorder scope captured at creation: a loop constructed inside
  /// an actor turn (or lifecycle hook) records a "retry_exhausted" flight
  /// event against the hosting silo when it gives up. Client-side loops
  /// capture a null recorder and record nothing.
  FlightScope flight;
  std::function<Future<T>()> op;
  std::function<bool(const Status&)> retryable;
  std::function<void(const Status&)> on_retry;
  Promise<T> promise;

  RetryLoop(Executor* e, const RetryPolicy& policy, uint64_t seed)
      : exec(e),
        retry(policy, seed),
        start_us(e->clock()->Now()),
        trace_ctx(CurrentTraceContext()),
        flight(CurrentFlightScopeSlot()) {}

  static void Attempt(std::shared_ptr<RetryLoop<T>> loop) {
    Future<T> attempt = [&loop] {
      ScopedTraceContext scope(loop->trace_ctx);
      return loop->op();
    }();
    attempt.OnReady([loop](Result<T>&& r) {
      Status st = FailureOf(r);
      if (st.ok() || !loop->retryable(st)) {
        loop->promise.SetResult(std::move(r));
        return;
      }
      Micros elapsed = loop->exec->clock()->Now() - loop->start_us;
      std::optional<Micros> backoff = loop->retry.NextBackoff(elapsed);
      if (!backoff.has_value()) {
        if (loop->flight.recorder != nullptr) {
          loop->flight.recorder->Record(
              FlightEventType::kRetryExhausted, loop->flight.silo,
              /*actor=*/"", loop->trace_ctx.trace_id, loop->retry.attempts(),
              loop->exec->clock()->Now());
        }
        loop->promise.SetResult(std::move(r));
        return;
      }
      if (loop->on_retry) loop->on_retry(st);
      loop->exec->PostAfter(*backoff, [loop] { Attempt(loop); });
    });
  }
};

}  // namespace internal

/// Runs `op` until it succeeds, fails non-retryably, or exhausts `policy`.
/// `retryable` classifies failure statuses (defaults to IsTransient);
/// `on_retry` is invoked before each backoff sleep (for counters/logs). The
/// jittered backoff sequence is derived from `seed`, so simulation-mode
/// callers get reproducible schedules.
template <typename T>
Future<T> RetryAsync(Executor* exec, const RetryPolicy& policy, uint64_t seed,
                     std::function<Future<T>()> op,
                     std::function<bool(const Status&)> retryable = IsTransient,
                     std::function<void(const Status&)> on_retry = nullptr) {
  auto loop = std::make_shared<internal::RetryLoop<T>>(exec, policy, seed);
  loop->op = std::move(op);
  loop->retryable = std::move(retryable);
  loop->on_retry = std::move(on_retry);
  Future<T> out = loop->promise.GetFuture();
  internal::RetryLoop<T>::Attempt(std::move(loop));
  return out;
}

}  // namespace aodb

#endif  // AODB_ACTOR_RETRY_ASYNC_H_
