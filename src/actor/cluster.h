// The cluster: a set of silos, the actor directory, the network model,
// actor type and storage-provider registries, and persistent reminders.
// This is the top-level runtime object applications interact with.

#ifndef AODB_ACTOR_CLUSTER_H_
#define AODB_ACTOR_CLUSTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "actor/actor.h"
#include "actor/directory.h"
#include "actor/envelope.h"
#include "actor/flight_recorder.h"
#include "actor/network.h"
#include "actor/runtime_options.h"
#include "actor/silo.h"
#include "actor/system_kv.h"
#include "actor/trace.h"
#include "common/telemetry.h"

namespace aodb {

template <typename T>
class ActorRef;
class FaultInjector;
class MembershipService;
class StateStorage;
struct WireMethodEntry;

/// Snapshot of the cluster's invocation-lane counters. Request/reply byte
/// totals are measured encoded frame sizes, not estimates — the same
/// numbers the network model charges transfer time for.
struct WireStats {
  int64_t local_closure_sends = 0;  ///< Same-silo sends (zero-copy lane).
  int64_t wire_requests = 0;        ///< Remote sends on the wire lane.
  int64_t wire_request_bytes = 0;
  int64_t wire_replies = 0;
  int64_t wire_reply_bytes = 0;
  /// Remote sends of methods without a wire registration that used the
  /// closure lane (zero when all remotely invoked methods are registered).
  int64_t closure_fallbacks = 0;
  /// Received wire frames rejected before dispatch (corruption, unknown
  /// method).
  int64_t decode_failures = 0;
};

/// Cluster-level robustness counters (monotonic), reported alongside
/// WireStats. These count membership/deadline/failover events, not lane
/// traffic.
struct ClusterCounters {
  /// Envelopes dropped on a silo eviction with nobody to notify (tells in
  /// the dead silo's mailboxes or wedge backlog, tells routed to it
  /// mid-flight).
  int64_t dead_letters = 0;
  /// Silos declared dead by the failure detector (announced KillSilo calls
  /// are not counted here).
  int64_t auto_evictions = 0;
  /// In-flight idempotent calls transparently re-submitted after their
  /// target silo was evicted.
  int64_t failover_resubmitted = 0;
  /// In-flight calls completed with Unavailable on eviction
  /// (non-idempotent, or failover attempts exhausted).
  int64_t failover_failed = 0;
  /// Deadline enforcement events: watchdog completions plus expired
  /// envelopes dropped before dispatch (one call can contribute to both).
  int64_t deadline_timeouts = 0;
  /// Sends rejected because no live silo existed to place the target on.
  int64_t no_live_silo_rejects = 0;
};

/// A running actor-oriented database cluster.
///
/// Construction wires together externally owned executors (one per silo plus
/// one client-node executor), so the same Cluster code runs on real thread
/// pools or on the discrete-event simulator. See MakeRealCluster (below) and
/// sim::SimHarness for the two canonical wirings.
class Cluster {
 public:
  using Factory = std::function<std::unique_ptr<ActorBase>(const ActorId&)>;

  /// `silo_executors` must have options.num_silos entries. `system_kv` is
  /// optional; without it reminders are volatile (in-memory only).
  Cluster(const RuntimeOptions& options, std::vector<Executor*> silo_executors,
          Executor* client_executor, SystemKv* system_kv = nullptr);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Registration -------------------------------------------------------

  /// Registers actor type T (default-constructible, with
  /// `static constexpr char kTypeName[]`).
  template <typename T>
  void RegisterActorType() {
    RegisterActorType(T::kTypeName,
                      [](const ActorId&) { return std::make_unique<T>(); });
  }

  /// Registers an actor type with an explicit factory.
  void RegisterActorType(const std::string& type, Factory factory);

  /// Overrides placement for one actor type (e.g. prefer-local for sensor
  /// channels and aggregators, as in the paper's deployment).
  void SetTypePlacement(const std::string& type, Placement placement);

  /// Overrides the bounded-mailbox depth for one actor type (0 restores
  /// OverloadOptions::max_mailbox_depth). Takes effect for activations
  /// created afterwards — the limit is resolved once at activation time.
  void SetTypeMailboxDepth(const std::string& type, int depth);

  /// Overrides the per-silo resident-activation cap for one actor type
  /// (0 removes the override; the silo-wide
  /// RuntimeOptions::max_resident_activations still applies). Takes effect
  /// for activations created afterwards — the limit is resolved once at
  /// activation time, like the mailbox depth.
  void SetTypeMaxResident(const std::string& type, int limit);

  /// Registers a named grain-state storage provider.
  void RegisterStateStorage(const std::string& name,
                            std::shared_ptr<StateStorage> storage);
  /// Returns the provider or nullptr.
  StateStorage* GetStateStorage(const std::string& name) const;

  // --- Messaging ----------------------------------------------------------

  /// Routes a message to its target's activation, placing/activating as
  /// needed and charging network delay for remote hops.
  void Send(Envelope env);

  /// Runs `fn` on the `to` node after the network delay from `from`
  /// (response path of a call). Zero delay when from == to.
  void SendReply(SiloId from, SiloId to, int64_t bytes,
                 std::function<void()> fn);

  /// Typed client-side reference (caller is the external client node).
  /// Defined in actor/actor_ref.h.
  template <typename T>
  ActorRef<T> Ref(const std::string& key);

  /// Client-side reference through a base interface T addressing a concrete
  /// registered type name. Defined in actor/actor_ref.h.
  template <typename T>
  ActorRef<T> RefAs(const std::string& type, const std::string& key);

  // --- Reminders (persistent timers) --------------------------------------

  /// Registers a periodic reminder for an actor; persisted in the system
  /// store when available. Fires ActorBase::ReceiveReminder(name), (re-)
  /// activating the target if needed.
  Status RegisterReminder(const ActorId& id, const std::string& name,
                          Micros period_us);
  Status UnregisterReminder(const ActorId& id, const std::string& name);
  /// Restores reminders from the system store (after a restart).
  Status LoadReminders();
  /// Number of live reminder schedules.
  size_t ActiveReminders() const;

  // --- Lifecycle ----------------------------------------------------------

  /// Starts periodic idle-deactivation sweeps on every silo (no-op unless
  /// options.lifecycle.enable_idle_deactivation).
  void StartIdleScanner();

  /// Starts the hot-actor controller (no-op unless
  /// options.overload.enable_hot_migration): a periodic scan that compares
  /// per-silo queued-envelope totals and live-migrates the deepest eligible
  /// activation of the most loaded silo to the least loaded one.
  void StartOverloadController();

  /// Live-migrates one activation to silo `to` (the deterministic handle
  /// tests drive instead of waiting for the controller). NotFound when the
  /// actor has no activation; Aborted when it is loading or already
  /// deactivating. OK also covers "already there".
  Status MigrateActivation(const ActorId& id, SiloId to);

  /// Deactivates all idle actors on all silos, flushing persistent state.
  Future<Status> DeactivateAll();

  /// Stops reminder and scanner scheduling. Called by the destructor.
  void Stop();

  // --- Fault injection ----------------------------------------------------

  /// Crashes a silo: its activations are dropped without flushing state,
  /// queued and newly routed messages fail with Unavailable, and its
  /// directory entries are purged so actors reactivate elsewhere from
  /// persisted state on the next call. Idempotent on a dead silo.
  void KillSilo(SiloId id);

  /// Rejoins a killed silo as an empty placement candidate. Idempotent on
  /// a live silo.
  void RestartSilo(SiloId id);

  /// False between KillSilo and RestartSilo.
  bool SiloAlive(SiloId id) const;

  // --- Membership & failure recovery --------------------------------------

  /// Removes a silo that failed WITHOUT announcing it (the failure-detector
  /// path; KillSilo shares the same internals). Stops placement, purges its
  /// directory registrations, fails over its pending in-flight calls
  /// (idempotent wire calls are re-submitted, everything else completes
  /// with Unavailable), and drops its queued work. Idempotent on a dead
  /// silo.
  void EvictSilo(SiloId id, const std::string& reason);

  /// The failure detector, or nullptr when options.membership.enable is
  /// false.
  MembershipService* membership() { return membership_.get(); }

  /// Counts one deadline enforcement event (called by the silo when it
  /// drops an expired envelope and by the caller-side watchdog).
  void NoteDeadlineExpired() { deadline_timeouts_->Add(); }
  /// Counts one load-shed rejection by priority class ("overload.shed.*").
  void NoteShed(MessagePriority priority) {
    (priority == MessagePriority::kTelemetry ? overload_shed_telemetry_
                                             : overload_shed_query_)
        ->Add();
  }
  /// Counts one bounded-mailbox rejection ("overload.mailbox_rejects").
  void NoteMailboxReject() { overload_mailbox_rejects_->Add(); }
  /// Counts one completed hot-actor migration ("overload.migrations").
  void NoteMigration() { overload_migrations_->Add(); }
  /// Effective mailbox cap for an actor type: the per-type override, else
  /// OverloadOptions::max_mailbox_depth (0 = unbounded). Resolved once per
  /// activation by the hosting silo.
  int MailboxLimitFor(const std::string& type) const;
  /// The cluster-wide "mailbox.depth.<type>" gauge, cached per type so the
  /// silo resolves it once per activation.
  Gauge* MailboxDepthGauge(const std::string& type);
  /// Per-type resident-activation cap for an actor type (0 = only the
  /// silo-wide cap applies). Resolved once per activation.
  int ResidentLimitFor(const std::string& type) const;
  /// Counts one working-set page-out ("activation.paged_out").
  void NotePagedOut() { activation_paged_out_->Add(); }
  /// Counts one activation fault ("activation.fault.count"): a message hit
  /// a registered-but-paged actor and is re-creating it.
  void NoteFaultIn() { activation_faults_->Add(); }
  /// Records the storage-load leg of one fault (enqueue -> OnActivate
  /// complete), "activation.fault.load_us".
  void NoteFaultLoad(Micros load_us);
  /// Records the end-to-end queue wait of the faulting message (enqueue ->
  /// first turn dispatch), "activation.fault.queue_wait_us".
  void NoteFaultWait(Micros wait_us);
  /// Counts envelopes dropped with nobody to notify (see
  /// ClusterCounters::dead_letters).
  void NoteDeadLetters(int64_t n) {
    if (n > 0) dead_letters_->Add(n);
  }

  /// Installs the injector whose message-fault hooks Send consults. Not
  /// owned; pass nullptr to detach. Usually called via FaultInjector::Arm.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

  // --- Introspection ------------------------------------------------------

  const RuntimeOptions& options() const { return options_; }
  int num_silos() const { return static_cast<int>(silos_.size()); }
  Silo* silo(SiloId id) { return silos_[id].get(); }
  Executor* ExecutorFor(SiloId id) {
    return id == kClientSiloId ? client_executor_
                               : silo_executors_[id];
  }
  Executor* client_executor() { return client_executor_; }
  Clock* clock() { return client_executor_->clock(); }
  Directory& directory() { return directory_; }
  NetworkModel& network() { return network_; }
  /// Registered factory for a type, or nullptr.
  const Factory* GetFactory(const std::string& type) const;
  size_t TotalActivations() const;
  int64_t TotalMessagesProcessed() const;

  /// Current invocation-lane counters (monotonic).
  WireStats wire_stats() const;

  /// Current robustness counters (monotonic).
  ClusterCounters cluster_counters() const;

  // --- Telemetry ----------------------------------------------------------

  /// The unified metrics registry every subsystem records into. Resolve a
  /// metric pointer once; record through it lock-free thereafter.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The trace collector (enabled iff options.trace.sample_every > 0).
  Tracer& tracer() { return tracer_; }

  /// The black-box flight recorder (enabled by default; see
  /// ObservabilityOptions::enable_flight_recorder).
  FlightRecorder& flight_recorder() { return flight_; }
  const FlightRecorder& flight_recorder() const { return flight_; }

  /// All buffered flight events, merged and time-ordered across silos, as
  /// JSON (see FlightRecorder::DumpJson).
  std::string DumpFlightJson() const { return flight_.DumpJson(); }

  /// The metrics time-series the background sampler records into (tests and
  /// benches may also Record explicit samples).
  MetricsTimeline& metrics_timeline() { return timeline_; }

  /// Starts the background metrics sampler on the client-node executor
  /// (no-op unless options.observability.metrics_sample_interval_us > 0):
  /// every interval it records a SnapshotMetrics() delta into the timeline.
  void StartMetricsSampler();

  /// One self-describing postmortem bundle: recent flight events (merged,
  /// time-ordered), the metrics timeline, a final metrics snapshot, sampled
  /// spans, per-silo hot-actor summaries (queue depth, top activations),
  /// and the membership view. Deterministic under the simulator, so DST
  /// replays produce bit-identical bundles.
  std::string BuildPostmortemJson(const std::string& reason) const;

  /// Writes BuildPostmortemJson(reason) to `path` (logged at Warn so the
  /// bundle is discoverable next to the failure that triggered it).
  Status DumpPostmortem(const std::string& path,
                        const std::string& reason) const;

  /// Registry snapshot with point-in-time runtime gauges (activation and
  /// message totals) refreshed first.
  MetricsSnapshot SnapshotMetrics() const;

  /// SnapshotMetrics as an aligned text table / as one JSON object.
  std::string DumpMetrics() const { return SnapshotMetrics().ToTable(); }
  std::string DumpMetricsJson() const { return SnapshotMetrics().ToJson(); }

  /// All buffered traces, parent-linked, as JSON (see Tracer::DumpJson).
  std::string DumpTraceJson() const { return tracer_.DumpJson(); }

  /// Records one turn's mailbox wait and measured execution time into the
  /// per-actor-type profile histograms ("turn.queue_wait_us.<type>",
  /// "turn.exec_us.<type>"). Called by the silo after every turn; the
  /// per-type pointers are cached so the hot path takes a shared lock and
  /// no allocation.
  void RecordTurnProfile(const std::string& type, Micros queue_wait_us,
                         Micros exec_us);

  /// Registry completeness check for fail-fast startup: every registered
  /// actor type must have at least one wire-registered method. Returns
  /// FailedPrecondition naming the uncovered types otherwise. Test fixtures
  /// assert this at cluster start.
  Status CheckWireRegistry() const;

 private:
  struct ReminderEntry {
    std::shared_ptr<bool> alive;
    Micros period_us = 0;
  };

  using WireReplyHandler = std::function<void(Result<std::string>&&)>;

  /// One wire call in flight against a remote silo, tracked (only when
  /// membership is enabled) so eviction can fail it over. `env` is a copy
  /// of the pre-send envelope with the original (unwrapped) reply handler,
  /// re-submittable through Send as-is.
  struct PendingCall {
    Envelope env;
    SiloId target = 0;
    uint64_t call_id = 0;
    bool idempotent = false;
  };

  /// Shared implementation of KillSilo (announced) and EvictSilo
  /// (failure-detector).
  void EvictInternal(SiloId id, const std::string& reason, bool automatic);
  /// Removes and returns true if the call was still pending. The wrapped
  /// reply handler calls this first and becomes a no-op when failover
  /// already took ownership of the call.
  bool TakePendingCall(uint64_t call_id);
  /// Re-submits or fails every pending call whose target is `dead`. Runs
  /// BEFORE the silo's queues are failed, so those Unavailable completions
  /// find their pending entries already taken and cannot race a
  /// re-submission for the caller's promise.
  void FailoverPendingCalls(SiloId dead);

  /// One controller scan: compare per-silo queued totals and migrate the
  /// hottest eligible activation when the imbalance justifies it.
  void RebalanceHotActors();

  /// Remote send on the wire lane: encodes the request frame, charges the
  /// network model the measured byte count, and schedules decode + dispatch
  /// on the target silo.
  void SendWire(Envelope env, SiloId from, SiloId target, bool duplicate);
  /// Runs on the target executor: verifies and decodes the frame, resolves
  /// the method in the registry, and delivers a dispatch envelope.
  void DeliverWireFrame(SiloId target, SiloId caller_silo,
                        std::shared_ptr<const std::string> frame,
                        WireReplyHandler reply);
  /// Seals and ships an encoded Result payload back to the caller node.
  void SendWireReply(SiloId from, SiloId to, const WireReplyHandler& reply,
                     std::string result_payload);

  void ScheduleReminder(const ActorId& id, const std::string& name,
                        Micros period_us, std::shared_ptr<bool> alive);
  static std::string ReminderKey(const ActorId& id, const std::string& name);

  const RuntimeOptions options_;
  std::vector<Executor*> silo_executors_;
  Executor* client_executor_;
  SystemKv* system_kv_;

  /// Declared before every subsystem that registers metrics or records
  /// spans/flight events, so it outlives all of them.
  MetricsRegistry metrics_;
  Tracer tracer_;
  FlightRecorder flight_;
  MetricsTimeline timeline_;

  Directory directory_;
  NetworkModel network_;
  std::vector<std::unique_ptr<Silo>> silos_;
  std::unique_ptr<MembershipService> membership_;
  std::atomic<FaultInjector*> fault_injector_{nullptr};

  /// Serializes evictions (the failure detector may fire on several silo
  /// executors at once) and makes KillSilo/EvictSilo idempotent.
  std::mutex evict_mu_;
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, PendingCall> pending_calls_;
  std::atomic<uint64_t> next_call_id_{0};

  // Robustness and wire-lane counters, registry-backed ("cluster.*" /
  // "wire.*" series); bound once in the constructor.
  Counter* dead_letters_;
  Counter* auto_evictions_;
  Counter* failover_resubmitted_;
  Counter* failover_failed_;
  Counter* deadline_timeouts_;
  Counter* no_live_silo_rejects_;

  // Overload-management counters ("overload.*" series).
  Counter* overload_shed_telemetry_;
  Counter* overload_shed_query_;
  Counter* overload_mailbox_rejects_;
  Counter* overload_migrations_;

  // Activation-paging counters and fault-latency histograms
  // ("activation.*" series).
  Counter* activation_paged_out_;
  Counter* activation_faults_;
  ConcurrentHistogram* activation_fault_load_;
  ConcurrentHistogram* activation_fault_wait_;

  Counter* local_closure_sends_;
  Counter* wire_requests_;
  Counter* wire_request_bytes_;
  Counter* wire_replies_;
  Counter* wire_reply_bytes_;
  Counter* closure_fallbacks_;
  Counter* wire_decode_failures_;

  /// Per-actor-type turn-profile histograms (see RecordTurnProfile).
  struct TurnProfile {
    ConcurrentHistogram* queue_wait = nullptr;
    ConcurrentHistogram* exec = nullptr;
  };
  mutable std::shared_mutex turn_profile_mu_;
  std::unordered_map<std::string, TurnProfile> turn_profiles_;

  /// Per-actor-type mailbox-depth gauges (see MailboxDepthGauge).
  mutable std::shared_mutex mailbox_gauge_mu_;
  std::unordered_map<std::string, Gauge*> mailbox_gauges_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Factory> factories_;
  std::unordered_map<std::string, std::shared_ptr<StateStorage>> storages_;
  std::unordered_map<std::string, int> type_mailbox_depth_;
  std::unordered_map<std::string, int> type_max_resident_;
  std::unordered_map<std::string, ReminderEntry> reminders_;
  std::shared_ptr<bool> scanner_alive_;
  std::shared_ptr<bool> overload_alive_;
  std::shared_ptr<bool> sampler_alive_;
  /// Process-wide PromisesLeaked() at construction; Stop() publishes the
  /// lifetime delta as the "runtime.leaked_promises" gauge, so a run that
  /// dropped a continuation on the floor is visible in the registry.
  const int64_t promise_leak_baseline_ = PromisesLeaked();
  /// Overload-controller private state, touched ONLY from RebalanceHotActors
  /// (ticks are serialized on the client executor, so no lock): smoothed
  /// per-silo queued-envelope loads plus the cooldown bookkeeping for
  /// recently migrated actors and recently targeted destination silos.
  std::vector<double> overload_ewma_;
  std::unordered_map<std::string, Micros> overload_actor_cooldown_;
  std::unordered_map<int, Micros> overload_dest_cooldown_;
  bool stopped_ = false;
};

/// Convenience owner of a real-mode cluster: thread-pool executors (one per
/// silo plus a client pool) and the Cluster itself.
class RealClusterHandle {
 public:
  explicit RealClusterHandle(const RuntimeOptions& options,
                             SystemKv* system_kv = nullptr);
  ~RealClusterHandle();

  Cluster& cluster() { return *cluster_; }
  Cluster* operator->() { return cluster_.get(); }

  /// Stops the cluster and joins all threads.
  void Shutdown();

 private:
  std::vector<std::unique_ptr<Executor>> executors_;
  std::unique_ptr<Executor> client_executor_;
  std::unique_ptr<Cluster> cluster_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_CLUSTER_H_
