#include "actor/wire_format.h"

#include "common/codec.h"
#include "common/wire.h"

namespace aodb {

std::string WireEncodeRequest(const WireRequest& req) {
  // Request frames on one thread are near-uniform in size (same methods,
  // same id widths); seeding the buffer with the previous frame's size
  // collapses the string's grow-by-doubling into a single allocation.
  thread_local size_t last_frame_size = 0;
  BufWriter w;
  w.Reserve(last_frame_size);
  w.PutString(req.target.type);
  w.PutString(req.target.key);
  w.PutString(req.principal.tenant);
  w.PutString(req.principal.role);
  w.PutFixed64(req.method_id);
  w.PutVarint(static_cast<uint64_t>(req.cost_us));
  w.PutVarint(static_cast<uint64_t>(req.deadline_us));
  w.PutVarint(req.priority);
  w.PutVarint(req.trace_id);
  w.PutVarint(req.parent_span_id);
  w.PutVarint(req.trace_sampled ? 1 : 0);
  w.PutString(req.args);
  last_frame_size = w.size();
  return WireSeal(w.Release());
}

Status WireDecodeRequest(std::string_view frame, WireRequest* out) {
  std::string_view payload;
  AODB_RETURN_NOT_OK(WireOpen(frame, &payload));
  BufReader r(payload);
  AODB_RETURN_NOT_OK(r.GetString(&out->target.type));
  AODB_RETURN_NOT_OK(r.GetString(&out->target.key));
  AODB_RETURN_NOT_OK(r.GetString(&out->principal.tenant));
  AODB_RETURN_NOT_OK(r.GetString(&out->principal.role));
  AODB_RETURN_NOT_OK(r.GetFixed64(&out->method_id));
  uint64_t cost = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&cost));
  out->cost_us = static_cast<Micros>(cost);
  uint64_t deadline = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&deadline));
  out->deadline_us = static_cast<Micros>(deadline);
  uint64_t priority = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&priority));
  out->priority = priority > 2 ? 2 : static_cast<uint8_t>(priority);
  AODB_RETURN_NOT_OK(r.GetVarint(&out->trace_id));
  AODB_RETURN_NOT_OK(r.GetVarint(&out->parent_span_id));
  uint64_t sampled = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&sampled));
  out->trace_sampled = sampled != 0;
  AODB_RETURN_NOT_OK(r.GetString(&out->args));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in wire request");
  return Status::OK();
}

std::string WireEncodeReply(std::string result_payload) {
  return WireSeal(std::move(result_payload));
}

}  // namespace aodb
