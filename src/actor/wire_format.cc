#include "actor/wire_format.h"

#include "common/codec.h"
#include "common/wire.h"

namespace aodb {

std::string WireEncodeRequest(const WireRequest& req) {
  BufWriter w;
  w.PutString(req.target.type);
  w.PutString(req.target.key);
  w.PutString(req.principal.tenant);
  w.PutString(req.principal.role);
  w.PutFixed64(req.method_id);
  w.PutVarint(static_cast<uint64_t>(req.cost_us));
  w.PutVarint(static_cast<uint64_t>(req.deadline_us));
  w.PutVarint(req.trace_id);
  w.PutVarint(req.parent_span_id);
  w.PutVarint(req.trace_sampled ? 1 : 0);
  w.PutString(req.args);
  return WireSeal(w.Release());
}

Status WireDecodeRequest(std::string_view frame, WireRequest* out) {
  std::string_view payload;
  AODB_RETURN_NOT_OK(WireOpen(frame, &payload));
  BufReader r(payload);
  AODB_RETURN_NOT_OK(r.GetString(&out->target.type));
  AODB_RETURN_NOT_OK(r.GetString(&out->target.key));
  AODB_RETURN_NOT_OK(r.GetString(&out->principal.tenant));
  AODB_RETURN_NOT_OK(r.GetString(&out->principal.role));
  AODB_RETURN_NOT_OK(r.GetFixed64(&out->method_id));
  uint64_t cost = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&cost));
  out->cost_us = static_cast<Micros>(cost);
  uint64_t deadline = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&deadline));
  out->deadline_us = static_cast<Micros>(deadline);
  AODB_RETURN_NOT_OK(r.GetVarint(&out->trace_id));
  AODB_RETURN_NOT_OK(r.GetVarint(&out->parent_span_id));
  uint64_t sampled = 0;
  AODB_RETURN_NOT_OK(r.GetVarint(&sampled));
  out->trace_sampled = sampled != 0;
  AODB_RETURN_NOT_OK(r.GetString(&out->args));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in wire request");
  return Status::OK();
}

std::string WireEncodeReply(std::string result_payload) {
  return WireSeal(std::move(result_payload));
}

}  // namespace aodb
