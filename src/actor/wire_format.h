// On-the-wire encoding of cross-silo invocations: a request frame carries
// (target actor, principal, method id, simulated cost, encoded arguments),
// a reply frame carries an encoded Result<T>. Both are sealed with a CRC32C
// trailer (common/wire.h), so corrupted frames decode to Status::Corruption.

#ifndef AODB_ACTOR_WIRE_FORMAT_H_
#define AODB_ACTOR_WIRE_FORMAT_H_

#include <string>
#include <string_view>

#include "actor/actor_id.h"
#include "common/clock.h"
#include "common/status.h"

namespace aodb {

/// Decoded header + argument payload of one cross-silo invocation.
struct WireRequest {
  ActorId target;
  Principal principal;
  uint64_t method_id = 0;
  Micros cost_us = 0;
  /// Absolute call deadline on the cluster clock (0 = none); propagated so
  /// the receiving silo can drop expired work before dispatch.
  Micros deadline_us = 0;
  /// Shed class under overload (MessagePriority as its underlying integer;
  /// out-of-range values clamp to the highest class rather than failing the
  /// frame). Propagated because the load shedder runs on the RECEIVING
  /// silo.
  uint8_t priority = 1;
  /// Trace context of the caller's active span (all zero when the request is
  /// untraced). Varint-encoded: cluster-local counter ids cost ~1-3 bytes
  /// each, and an untraced request pays 3 zero bytes.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool trace_sampled = false;
  std::string args;  ///< WireEncodeTuple of the decayed argument pack.
};

/// Encodes and seals a request frame. The frame's size is the measured
/// `Envelope.approx_bytes` charged by the network model.
std::string WireEncodeRequest(const WireRequest& req);

/// Verifies the seal and decodes the header + args. Corrupted or truncated
/// frames return Status::Corruption; `out` may hold partially decoded
/// fields, which the caller must discard.
Status WireDecodeRequest(std::string_view frame, WireRequest* out);

/// Seals an encoded Result<T> payload into a reply frame.
std::string WireEncodeReply(std::string result_payload);

}  // namespace aodb

#endif  // AODB_ACTOR_WIRE_FORMAT_H_
