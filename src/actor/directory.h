// Cluster-wide actor directory: the authoritative mapping from virtual actor
// identity to the silo hosting its current activation. Placement decisions
// are made here on first reference.

#ifndef AODB_ACTOR_DIRECTORY_H_
#define AODB_ACTOR_DIRECTORY_H_

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "actor/actor_id.h"
#include "actor/runtime_options.h"
#include "common/rng.h"

namespace aodb {

/// Thread-safe directory with per-type placement policies.
class Directory {
 public:
  Directory(int num_silos, Placement default_placement, uint64_t seed);

  /// Overrides the placement policy for one actor type.
  void SetTypePlacement(const std::string& type, Placement placement);

  /// Returns the hosting silo for `id`, placing the actor if it has no
  /// activation yet. `caller` is used by prefer-local placement; external
  /// callers (kClientSiloId) fall back to random. Returns kNoSilo (and
  /// registers nothing) when every silo is dead: the cluster converts the
  /// sentinel to Status::Unavailable instead of routing to a corpse.
  SiloId LookupOrPlace(const ActorId& id, SiloId caller);

  /// Returns the hosting silo, or nullopt if not activated.
  std::optional<SiloId> Lookup(const ActorId& id) const;

  /// Removes the entry if it currently maps to `expected` (deactivation).
  /// Returns true if removed.
  bool Remove(const ActorId& id, SiloId expected);

  /// Re-points the entry at `to` if it currently maps to `from` and `to` is
  /// live (hot-actor migration: the actor keeps its registration across the
  /// move, so in-flight re-routes land on the new silo instead of
  /// re-placing). Returns false — and changes nothing — on a stale `from`
  /// or a dead target; the caller falls back to Remove + fresh placement.
  bool Move(const ActorId& id, SiloId from, SiloId to);

  /// Marks a silo as live (placement candidate) or dead. New placements
  /// only consider live silos; entries pointing at dead silos are purged by
  /// PurgeSilo and treated as stale by the cluster.
  void SetSiloLive(SiloId silo, bool live);
  bool SiloLive(SiloId silo) const;

  /// Drops every entry hosted on `silo` (silo crash) and bumps the
  /// directory epoch. Returns the number of activations whose registrations
  /// were purged.
  size_t PurgeSilo(SiloId silo);

  /// Monotonic epoch, bumped on every membership-visible change (a silo
  /// marked dead/live or purged). Observers use it to detect that routes
  /// resolved under an older epoch may be stale.
  uint64_t epoch() const;

  /// Number of registered activations.
  size_t Count() const;

  /// Point-in-time copy of every registration (id -> hosting silo). Used by
  /// the DST invariant checkers to cross-check silo catalogs against the
  /// directory's view of ownership.
  std::vector<std::pair<ActorId, SiloId>> Snapshot() const;

 private:
  SiloId Place(const ActorId& id, SiloId caller);
  /// Uniformly random live silo, or kNoSilo when none is live.
  SiloId RandomLive();

  const int num_silos_;
  const Placement default_placement_;

  mutable std::mutex mu_;
  std::unordered_map<ActorId, SiloId, ActorIdHash> entries_;
  std::unordered_map<std::string, Placement> type_placement_;
  std::vector<char> live_;
  uint64_t epoch_ = 0;
  Rng rng_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_DIRECTORY_H_
