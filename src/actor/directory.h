// Cluster-wide actor directory: the authoritative mapping from virtual actor
// identity to the silo hosting its current activation. Placement decisions
// are made here on first reference.
//
// The directory is sharded into N lock-striped partitions keyed by
// ActorIdHash: each stripe owns its own mutex, hash map, and placement RNG,
// so the hot lookup/place path only ever touches one stripe's lock.
// Membership state (live flags, epoch) lives OUTSIDE the stripes as atomics:
// lookups read it lock-free, and SetSiloLive/PurgeSilo serialize on a
// separate membership mutex that the hot path never takes.

#ifndef AODB_ACTOR_DIRECTORY_H_
#define AODB_ACTOR_DIRECTORY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "actor/actor_id.h"
#include "actor/runtime_options.h"
#include "common/rng.h"

namespace aodb {

class Counter;
class Gauge;
class MetricsRegistry;

/// Thread-safe sharded directory with per-type placement policies.
class Directory {
 public:
  Directory(int num_silos, Placement default_placement, uint64_t seed,
            int num_shards = 16);

  /// One registration. `paged` means the hosting silo deactivated the
  /// activation to storage under its working-set limit but KEPT the
  /// registration: the actor is registered-but-not-resident, and the next
  /// message delivered to `silo` faults it back in from persisted state.
  struct Entry {
    SiloId silo = kNoSilo;
    bool paged = false;
  };

  /// Binds the per-stripe "directory.partition.<i>.*" metric series
  /// (entries gauge, lock-contention counter). Called once by the Cluster
  /// constructor; the directory works without it (metrics just stay
  /// unbound).
  void BindMetrics(MetricsRegistry* metrics);

  /// Overrides the placement policy for one actor type.
  void SetTypePlacement(const std::string& type, Placement placement);

  /// Returns the hosting silo for `id`, placing the actor if it has no
  /// activation yet. `caller` is used by prefer-local placement; external
  /// callers (kClientSiloId) fall back to random. Returns kNoSilo (and
  /// registers nothing) when every silo is dead: the cluster converts the
  /// sentinel to Status::Unavailable instead of routing to a corpse.
  SiloId LookupOrPlace(const ActorId& id, SiloId caller);

  /// Returns the hosting silo, or nullopt if not activated.
  std::optional<SiloId> Lookup(const ActorId& id) const;

  /// Returns the full entry (silo + paged flag), or nullopt. The hosting
  /// silo's delivery path uses the paged flag to tell an activation fault
  /// (registered cold actor) from ordinary stale mail.
  std::optional<Entry> LookupEntry(const ActorId& id) const;

  /// Removes the entry if it currently maps to `expected` (deactivation).
  /// Returns true if removed.
  bool Remove(const ActorId& id, SiloId expected);

  /// Re-points the entry at `to` if it currently maps to `from` and `to` is
  /// live (hot-actor migration: the actor keeps its registration across the
  /// move, so in-flight re-routes land on the new silo instead of
  /// re-placing). Returns false — and changes nothing — on a stale `from`
  /// or a dead target; the caller falls back to Remove + fresh placement.
  bool Move(const ActorId& id, SiloId from, SiloId to);

  /// Marks the entry paged-out if it currently maps to `expected` (the
  /// hosting silo evicted the activation under its working-set limit but
  /// keeps the registration). Returns false on a stale mapping — the caller
  /// then removes the entry instead, as for a plain deactivation.
  bool MarkPaged(const ActorId& id, SiloId expected);

  /// Clears the paged flag if the entry currently maps to `expected`
  /// (fault-in: the silo re-created the activation). Returns false on a
  /// stale mapping.
  bool ClearPaged(const ActorId& id, SiloId expected);

  /// Marks a silo as live (placement candidate) or dead. New placements
  /// only consider live silos; entries pointing at dead silos are purged by
  /// PurgeSilo and treated as stale by the cluster.
  void SetSiloLive(SiloId silo, bool live);
  bool SiloLive(SiloId silo) const;

  /// Drops every entry hosted on `silo` (silo crash) and bumps the
  /// directory epoch. Returns the number of activations whose registrations
  /// were purged. The epoch bumps before the stripes are purged one by one;
  /// epoch semantics are unchanged — it only promises "routes resolved
  /// under an older epoch may be stale", never the converse.
  size_t PurgeSilo(SiloId silo);

  /// Monotonic epoch, bumped on every membership-visible change (a silo
  /// marked dead/live or purged). Observers use it to detect that routes
  /// resolved under an older epoch may be stale. Lock-free read.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Number of registered activations (sums the stripes; each is locked
  /// briefly in turn, so the count is a moment-in-time-ish total, exact
  /// when nothing is concurrently registering).
  size_t Count() const;

  /// Point-in-time copy of every registration (id -> hosting silo). Copied
  /// per-partition — lock, copy, unlock each stripe — so a million-entry
  /// directory never stalls placements behind one global copy. Used by the
  /// DST invariant checkers to cross-check silo catalogs against the
  /// directory's view of ownership.
  std::vector<std::pair<ActorId, SiloId>> Snapshot() const;

  /// Stripe count (power of two).
  int num_shards() const { return num_shards_; }

  /// Refreshes the per-stripe "directory.partition.<i>.entries" gauges (one
  /// short lock per stripe). Called from Cluster::SnapshotMetrics; no-op
  /// before BindMetrics.
  void PublishPartitionGauges() const;

 private:
  struct Partition {
    mutable std::mutex mu;
    std::unordered_map<ActorId, Entry, ActorIdHash> entries;
    /// Stripe-private placement RNG (seeded seed ^ stripe index): random
    /// placements on different stripes never serialize on a shared stream.
    Rng rng{0};
    Counter* contention = nullptr;
    Gauge* entries_gauge = nullptr;
  };

  Partition& PartitionFor(const ActorId& id) const;
  /// Locks one stripe, counting a failed try_lock as contention.
  std::unique_lock<std::mutex> LockPartition(const Partition& part) const;
  /// Placement decision for a fresh registration. Caller holds part.mu
  /// (the RNG belongs to the stripe); membership is read lock-free.
  SiloId Place(Partition& part, const ActorId& id, SiloId caller);
  /// Uniformly random live silo from the stripe's RNG, or kNoSilo when
  /// none is live.
  SiloId RandomLive(Partition& part);
  bool LiveFlag(SiloId silo) const {
    return live_[static_cast<size_t>(silo)].load(std::memory_order_acquire) !=
           0;
  }

  const int num_silos_;
  const Placement default_placement_;
  const int num_shards_;
  const size_t shard_mask_;

  std::unique_ptr<Partition[]> parts_;

  /// Membership state, off the stripe locks: the hot lookup path reads the
  /// live flags and epoch as atomics; writers serialize on membership_mu_.
  std::unique_ptr<std::atomic<uint32_t>[]> live_;
  std::atomic<uint64_t> epoch_{0};
  std::mutex membership_mu_;

  /// Per-type placement policies: read on placement (entry miss) only,
  /// written by setup code.
  mutable std::shared_mutex placement_mu_;
  std::unordered_map<std::string, Placement> type_placement_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_DIRECTORY_H_
