// Umbrella header for the virtual-actor runtime. Applications normally
// include only this.

#ifndef AODB_ACTOR_RUNTIME_H_
#define AODB_ACTOR_RUNTIME_H_

#include "actor/actor.h"       // IWYU pragma: export
#include "actor/actor_id.h"    // IWYU pragma: export
#include "actor/actor_ref.h"   // IWYU pragma: export
#include "actor/cluster.h"     // IWYU pragma: export
#include "actor/envelope.h"    // IWYU pragma: export
#include "actor/executor.h"    // IWYU pragma: export
#include "actor/future.h"      // IWYU pragma: export
#include "actor/runtime_options.h"  // IWYU pragma: export
#include "actor/silo.h"        // IWYU pragma: export
#include "actor/thread_pool.h" // IWYU pragma: export

#endif  // AODB_ACTOR_RUNTIME_H_
