// Actor base class and the per-activation runtime context.
//
// Actors encapsulate private state and interact only via asynchronous
// messages; the runtime guarantees turn-based execution (at most one message
// being processed per activation at any time). Actor classes derive from
// ActorBase (or storage::PersistentActor for durable state), declare a
// `static constexpr char kTypeName[]`, and expose public methods invoked
// through ActorRef<T>::Call / Tell.

#ifndef AODB_ACTOR_ACTOR_H_
#define AODB_ACTOR_ACTOR_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "actor/actor_id.h"
#include "actor/executor.h"
#include "actor/future.h"
#include "common/rng.h"
#include "common/status.h"

namespace aodb {

class ActorBase;
class Cluster;
class StateStorage;
template <typename T>
class ActorRef;

/// Runtime services available to an activated actor: identity, time,
/// messaging to other actors, timers, and storage providers.
class ActorContext {
 public:
  ActorContext(ActorId self, SiloId silo, Cluster* cluster,
               Executor* executor);

  const ActorId& self() const { return self_; }
  SiloId silo() const { return silo_; }
  Cluster* cluster() const { return cluster_; }
  Executor* executor() const { return executor_; }

  /// Current time (virtual time in simulation mode).
  Micros Now() const;

  /// Typed reference to another virtual actor (activating it on first use).
  /// Defined in actor/actor_ref.h.
  template <typename T>
  ActorRef<T> Ref(const std::string& key) const;

  /// Reference viewed through a base interface T (e.g. TransactionalActor)
  /// while addressing the concrete registered type name. Defined in
  /// actor/actor_ref.h.
  template <typename T>
  ActorRef<T> RefAs(const std::string& type, const std::string& key) const;

  /// The principal attached to the message currently being processed.
  /// Application access-control checks read this.
  const Principal& caller() const { return caller_; }

  /// Starts a periodic timer; each tick delivers a message to this actor
  /// invoking ActorBase::OnTimer(name). Timers die with the activation.
  void SetTimer(const std::string& name, Micros period_us,
                Micros tick_cost_us = 50);
  void CancelTimer(const std::string& name);
  void CancelAllTimers();

  /// Registers a persistent reminder (survives deactivation and, with a
  /// durable system store, restarts). Fires ActorBase::ReceiveReminder.
  Status RegisterReminder(const std::string& name, Micros period_us);
  Status UnregisterReminder(const std::string& name);

  /// Named grain-state storage provider registered on the cluster, or
  /// nullptr if absent.
  StateStorage* storage(const std::string& provider) const;

  /// Deterministic per-activation RNG.
  Rng& rng() { return rng_; }

 private:
  friend class Silo;

  ActorId self_;
  SiloId silo_;
  Cluster* cluster_;
  Executor* executor_;
  Principal caller_;
  Rng rng_;
  std::unordered_map<std::string, std::shared_ptr<bool>> timers_;
};

/// Base class of all virtual actors.
class ActorBase {
 public:
  virtual ~ActorBase() = default;

  /// Called once when the activation is created, before any message is
  /// processed. Returns asynchronously (persistent actors load state here).
  /// A non-OK result fails all pending messages and closes the activation.
  virtual Future<Status> OnActivate() {
    return Future<Status>::FromValue(Status::OK());
  }

  /// Called when the runtime deactivates the actor (idle collection or
  /// shutdown). Persistent actors flush state here.
  virtual Future<Status> OnDeactivate() {
    return Future<Status>::FromValue(Status::OK());
  }

  /// Periodic timer callback (see ActorContext::SetTimer).
  virtual void OnTimer(const std::string& name) { (void)name; }

  /// Persistent reminder callback (see ActorContext::RegisterReminder).
  virtual void ReceiveReminder(const std::string& name) { (void)name; }

  /// The activation's runtime context. Valid from just before OnActivate
  /// until destruction.
  ActorContext& ctx() {
    return *context_;
  }
  const ActorContext& ctx() const { return *context_; }

  /// Runtime wiring; called by the silo during activation.
  void BindContext(std::unique_ptr<ActorContext> context) {
    context_ = std::move(context);
  }
  bool HasContext() const { return context_ != nullptr; }

 private:
  std::unique_ptr<ActorContext> context_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_ACTOR_H_
