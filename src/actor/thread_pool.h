// Real-mode executor: a fixed pool of worker threads with per-worker run
// queues, a LIFO slot for cache-hot continuations, and work stealing, plus a
// dedicated timer thread for delayed callbacks.
//
// Scalability notes (the fig6/fig7 hot path runs through Post):
//  * No global run-queue lock: a post from a worker thread touches only that
//    worker's own queue; an external post round-robins across workers. Two
//    threads only contend when one steals from the other.
//  * No condvar signal per Post: a post only notifies when some worker is
//    actually parked (num_idle_ > 0). At saturation — the regime throughput
//    benchmarks measure — posts are silent.
//  * No stats lock: counters live in per-worker shards (relaxed atomics)
//    and are merged by Stats().

#ifndef AODB_ACTOR_THREAD_POOL_H_
#define AODB_ACTOR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "actor/executor.h"

namespace aodb {

/// Work-stealing thread-pool executor over the wall clock. One instance per
/// silo in real mode (its thread count models the silo's vCPUs).
class ThreadPoolExecutor final : public Executor {
 public:
  /// Starts `num_threads` workers plus one timer thread.
  explicit ThreadPoolExecutor(int num_threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void Post(Task task) override;
  void PostAfter(Micros delay_us, std::function<void()> fn) override;
  void PostAt(Micros due, std::function<void()> fn) override;
  Clock* clock() override { return RealClock::Instance(); }
  int workers() const override { return static_cast<int>(threads_.size()); }
  /// Merged view of the per-worker stat shards.
  ExecutorStats Stats() const override;
  bool SupportsTurnBatching() const override { return true; }

  /// Stops accepting work and joins all threads. Pending immediate tasks are
  /// drained; pending delayed tasks are dropped. Idempotent.
  void Shutdown();

 private:
  struct Timed {
    Micros due;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timed& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  /// One worker's scheduling state and stat shard. Cache-line aligned so
  /// shards of neighboring workers do not false-share.
  struct alignas(64) Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;  ///< Guarded by mu.
    Task lifo;               ///< Guarded by mu. Most-recent local post.
    bool has_lifo = false;   ///< Guarded by mu.
    bool notified = false;   ///< Guarded by mu. Unpark token.
    /// queue.size() + has_lifo, maintained alongside the guarded fields.
    /// Read without mu by stealers (victim pre-screen), by the idle
    /// protocol's cross-check, and by Stats(). Seq-cst: the post-then-check-
    /// idle / register-idle-then-check-queues handshake needs store/load
    /// ordering (see WorkerLoop).
    std::atomic<int64_t> size{0};

    // Stat shard (relaxed; merged on read).
    std::atomic<int64_t> tasks_run{0};
    std::atomic<int64_t> busy_us{0};
    std::atomic<int64_t> steals{0};
    std::atomic<int64_t> parks{0};

    // Owner-thread-only scheduling state.
    int lifo_streak = 0;  ///< Consecutive LIFO-slot pops (fairness cap).
    uint64_t rng = 0;     ///< xorshift state for steal-victim selection.
  };

  void WorkerLoop(int index);
  void TimerLoop();
  void RunTask(Worker& me, Task& task);
  /// Pops from the LIFO slot (subject to the streak cap) or the own queue.
  bool TryGetLocal(Worker& me, Task* out);
  /// Steals a batch from some other worker's queue; returns one task to run
  /// and appends the rest to the thief's queue.
  bool TrySteal(int thief, Task* out);
  /// Sum of all workers' size counters (queued, not yet started).
  int64_t TotalQueued() const;
  /// Wakes one parked worker, if any.
  void UnparkOne();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> rr_{0};        ///< Round-robin for external posts.
  std::atomic<int> num_idle_{0};       ///< Mirrors idle_stack_.size().
  std::mutex idle_mu_;
  std::vector<int> idle_stack_;        ///< Indices of parked workers.
  std::atomic<bool> shutdown_{false};

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<Timed>>
      timer_queue_;
  uint64_t timer_seq_ = 0;

  std::vector<std::thread> threads_;
  std::thread timer_thread_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_THREAD_POOL_H_
