// Real-mode executor: a fixed pool of worker threads with a shared FIFO
// task queue and a dedicated timer thread for delayed callbacks.

#ifndef AODB_ACTOR_THREAD_POOL_H_
#define AODB_ACTOR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "actor/executor.h"

namespace aodb {

/// Thread-pool executor over the wall clock. One instance per silo in real
/// mode (its thread count models the silo's vCPUs).
class ThreadPoolExecutor final : public Executor {
 public:
  /// Starts `num_threads` workers plus one timer thread.
  explicit ThreadPoolExecutor(int num_threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void Post(Task task) override;
  void PostAfter(Micros delay_us, std::function<void()> fn) override;
  void PostAt(Micros due, std::function<void()> fn) override;
  Clock* clock() override { return RealClock::Instance(); }
  int workers() const override { return static_cast<int>(threads_.size()); }
  ExecutorStats Stats() const override;

  /// Stops accepting work and joins all threads. Pending immediate tasks are
  /// drained; pending delayed tasks are dropped. Idempotent.
  void Shutdown();

 private:
  struct Timed {
    Micros due;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timed& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  void WorkerLoop();
  void TimerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<Timed>>
      timer_queue_;
  uint64_t timer_seq_ = 0;

  std::vector<std::thread> threads_;
  std::thread timer_thread_;

  mutable std::mutex stats_mu_;
  ExecutorStats stats_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_THREAD_POOL_H_
