#include "actor/cluster.h"

#include <cassert>

#include "actor/fault.h"
#include "actor/thread_pool.h"
#include "common/codec.h"
#include "common/logging.h"

namespace aodb {

Cluster::Cluster(const RuntimeOptions& options,
                 std::vector<Executor*> silo_executors,
                 Executor* client_executor, SystemKv* system_kv)
    : options_(options),
      silo_executors_(std::move(silo_executors)),
      client_executor_(client_executor),
      system_kv_(system_kv),
      directory_(options.num_silos, options.default_placement,
                 options.seed ^ 0x5a5a5a5aULL),
      network_(options.network, options.seed ^ 0xc3c3c3c3ULL) {
  assert(static_cast<int>(silo_executors_.size()) == options.num_silos);
  silos_.reserve(options.num_silos);
  for (int i = 0; i < options.num_silos; ++i) {
    silos_.push_back(
        std::make_unique<Silo>(static_cast<SiloId>(i), this,
                               silo_executors_[i]));
  }
}

Cluster::~Cluster() { Stop(); }

void Cluster::RegisterActorType(const std::string& type, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[type] = std::move(factory);
}

void Cluster::SetTypePlacement(const std::string& type, Placement placement) {
  directory_.SetTypePlacement(type, placement);
}

void Cluster::RegisterStateStorage(const std::string& name,
                                   std::shared_ptr<StateStorage> storage) {
  std::lock_guard<std::mutex> lock(mu_);
  storages_[name] = std::move(storage);
}

StateStorage* Cluster::GetStateStorage(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = storages_.find(name);
  return it == storages_.end() ? nullptr : it->second.get();
}

void Cluster::Send(Envelope env) {
  SiloId target = directory_.LookupOrPlace(env.target, env.caller_silo);
  SiloId from = env.caller_silo;
  Silo* silo = silos_[target].get();
  if (!silo->alive()) {
    // Stale route to a crashed silo: drop the registration so the next
    // attempt re-places on a live node, and fail fast like a refused
    // connection so the caller's retry policy can kick in.
    directory_.Remove(env.target, target);
    if (env.fail) env.fail(Status::Unavailable("silo down"));
    return;
  }
  if (from == target) {
    silo->Deliver(std::move(env));
    return;
  }
  FaultInjector* injector = fault_injector();
  if (injector != nullptr && injector->ShouldDropMessage()) {
    // Lost on the wire. The sender sees the transport-level failure
    // (Unavailable) rather than hanging forever; fire-and-forget tells
    // vanish silently, as on a real network.
    if (env.fail) env.fail(Status::Unavailable("message lost"));
    return;
  }
  bool duplicate =
      injector != nullptr && injector->ShouldDuplicateMessage();
  env.cost_us += options_.network.serialization_cost_us;
  Executor* exec = silo_executors_[target];
  if (duplicate) {
    // At-least-once delivery under retransmission: the same envelope
    // arrives twice. Calls resolve with the first reply (promises are
    // first-fulfillment-wins); non-idempotent tells observe the anomaly.
    Envelope copy = env;
    Micros dup_arrival = network_.FifoArrival(from, target, copy.approx_bytes,
                                              exec->clock()->Now());
    exec->PostAt(dup_arrival, [silo, copy = std::move(copy)]() mutable {
      silo->Deliver(std::move(copy));
    });
  }
  Micros arrival = network_.FifoArrival(from, target, env.approx_bytes,
                                        exec->clock()->Now());
  exec->PostAt(arrival, [silo, env = std::move(env)]() mutable {
    silo->Deliver(std::move(env));
  });
}

void Cluster::SendReply(SiloId from, SiloId to, int64_t bytes,
                        std::function<void()> fn) {
  if (from == to) {
    fn();
    return;
  }
  Executor* exec = ExecutorFor(to);
  Micros arrival = network_.FifoArrival(from, to, bytes, exec->clock()->Now());
  exec->PostAt(arrival, std::move(fn));
}

const Cluster::Factory* Cluster::GetFactory(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(type);
  return it == factories_.end() ? nullptr : &it->second;
}

// --- Reminders -------------------------------------------------------------

std::string Cluster::ReminderKey(const ActorId& id, const std::string& name) {
  return "rem/" + id.type + "/" + id.key + "/" + name;
}

Status Cluster::RegisterReminder(const ActorId& id, const std::string& name,
                                 Micros period_us) {
  if (period_us <= 0) return Status::InvalidArgument("period must be > 0");
  auto alive = std::make_shared<bool>(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = reminders_[ReminderKey(id, name)];
    if (entry.alive) *entry.alive = false;  // Replace existing schedule.
    entry.alive = alive;
    entry.period_us = period_us;
  }
  if (system_kv_ != nullptr) {
    BufWriter w;
    w.PutVarint(static_cast<uint64_t>(period_us));
    AODB_RETURN_NOT_OK(system_kv_->Put(ReminderKey(id, name), w.Release()));
  }
  ScheduleReminder(id, name, period_us, std::move(alive));
  return Status::OK();
}

Status Cluster::UnregisterReminder(const ActorId& id,
                                   const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = reminders_.find(ReminderKey(id, name));
    if (it == reminders_.end()) return Status::NotFound("no such reminder");
    if (it->second.alive) *it->second.alive = false;
    reminders_.erase(it);
  }
  if (system_kv_ != nullptr) {
    AODB_RETURN_NOT_OK(system_kv_->Delete(ReminderKey(id, name)));
  }
  return Status::OK();
}

Status Cluster::LoadReminders() {
  if (system_kv_ == nullptr) return Status::OK();
  auto listed = system_kv_->List("rem/");
  if (!listed.ok()) return listed.status();
  for (const auto& [key, value] : listed.value()) {
    // Key layout: rem/<type>/<key>/<name>.
    size_t p1 = key.find('/', 4);
    if (p1 == std::string::npos) continue;
    size_t p2 = key.rfind('/');
    if (p2 == std::string::npos || p2 <= p1) continue;
    ActorId id{key.substr(4, p1 - 4), key.substr(p1 + 1, p2 - p1 - 1)};
    std::string name = key.substr(p2 + 1);
    BufReader r(value);
    uint64_t period = 0;
    if (!r.GetVarint(&period).ok()) continue;
    auto alive = std::make_shared<bool>(true);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto& entry = reminders_[key];
      if (entry.alive) *entry.alive = false;
      entry.alive = alive;
      entry.period_us = static_cast<Micros>(period);
    }
    ScheduleReminder(id, name, static_cast<Micros>(period), std::move(alive));
  }
  return Status::OK();
}

size_t Cluster::ActiveReminders() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reminders_.size();
}

void Cluster::ScheduleReminder(const ActorId& id, const std::string& name,
                               Micros period_us,
                               std::shared_ptr<bool> alive) {
  // Reminder ticks originate from the runtime (client node executor) and
  // are delivered as regular messages, re-activating the target if needed.
  auto fire = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_fire = fire;
  Cluster* self = this;
  Executor* exec = client_executor_;
  *fire = [self, exec, id, name, period_us, alive, weak_fire]() {
    if (!*alive) return;
    Envelope env;
    env.target = id;
    env.caller_silo = kClientSiloId;
    env.cost_us = kDefaultMessageCostUs;
    env.fn = [name](ActorBase& a) { a.ReceiveReminder(name); };
    self->Send(std::move(env));
    if (auto next = weak_fire.lock()) {
      exec->PostAfter(period_us, [next] { (*next)(); });
    }
  };
  exec->PostAfter(period_us, [fire] { (*fire)(); });
}

// --- Lifecycle ---------------------------------------------------------------

void Cluster::StartIdleScanner() {
  if (!options_.lifecycle.enable_idle_deactivation) return;
  auto alive = std::make_shared<bool>(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (scanner_alive_) *scanner_alive_ = false;
    scanner_alive_ = alive;
  }
  for (auto& silo : silos_) {
    Silo* s = silo.get();
    Executor* exec = s->executor();
    Micros interval = options_.lifecycle.scan_interval_us;
    Micros timeout = options_.lifecycle.idle_timeout_us;
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    *tick = [s, exec, interval, timeout, alive, weak_tick]() {
      if (!*alive) return;
      s->SweepIdle(timeout);
      if (auto next = weak_tick.lock()) {
        exec->PostAfter(interval, [next] { (*next)(); });
      }
    };
    exec->PostAfter(interval, [tick] { (*tick)(); });
  }
}

Future<Status> Cluster::DeactivateAll() {
  std::vector<Future<Status>> futures;
  futures.reserve(silos_.size());
  for (auto& silo : silos_) futures.push_back(silo->DeactivateAll());
  Promise<Status> done;
  WhenAll(futures).OnReady(
      [done](Result<std::vector<Result<Status>>>&& r) {
        if (!r.ok()) {
          done.SetValue(r.status());
          return;
        }
        for (auto& st : r.value()) {
          Status s = st.ok() ? st.value() : st.status();
          if (!s.ok()) {
            done.SetValue(s);
            return;
          }
        }
        done.SetValue(Status::OK());
      });
  return done.GetFuture();
}

// --- Fault injection ---------------------------------------------------------

void Cluster::KillSilo(SiloId id) {
  if (id < 0 || id >= num_silos() || !silos_[id]->alive()) return;
  AODB_LOG(Warn, "killing silo %d", static_cast<int>(id));
  // Order matters: stop placing on the silo, then purge its registrations,
  // then fail its queued work — so no new route can observe the dead silo
  // through a fresh directory entry.
  directory_.SetSiloLive(id, false);
  directory_.PurgeSilo(id);
  silos_[id]->Kill();
  if (FaultInjector* injector = fault_injector()) injector->RecordKill();
}

void Cluster::RestartSilo(SiloId id) {
  if (id < 0 || id >= num_silos() || silos_[id]->alive()) return;
  AODB_LOG(Info, "restarting silo %d", static_cast<int>(id));
  silos_[id]->Restart();
  directory_.SetSiloLive(id, true);
  if (FaultInjector* injector = fault_injector()) injector->RecordRestart();
}

bool Cluster::SiloAlive(SiloId id) const {
  return id >= 0 && id < static_cast<int>(silos_.size()) &&
         silos_[id]->alive();
}

void Cluster::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  stopped_ = true;
  if (scanner_alive_) *scanner_alive_ = false;
  for (auto& [key, entry] : reminders_) {
    if (entry.alive) *entry.alive = false;
  }
}

size_t Cluster::TotalActivations() const {
  size_t total = 0;
  for (const auto& silo : silos_) total += silo->ActivationCount();
  return total;
}

int64_t Cluster::TotalMessagesProcessed() const {
  int64_t total = 0;
  for (const auto& silo : silos_) total += silo->Stats().messages_processed;
  return total;
}

// --- RealClusterHandle -------------------------------------------------------

RealClusterHandle::RealClusterHandle(const RuntimeOptions& options,
                                     SystemKv* system_kv) {
  std::vector<Executor*> execs;
  for (int i = 0; i < options.num_silos; ++i) {
    executors_.push_back(
        std::make_unique<ThreadPoolExecutor>(options.workers_per_silo));
    execs.push_back(executors_.back().get());
  }
  client_executor_ = std::make_unique<ThreadPoolExecutor>(2);
  cluster_ = std::make_unique<Cluster>(options, std::move(execs),
                                       client_executor_.get(), system_kv);
}

RealClusterHandle::~RealClusterHandle() { Shutdown(); }

void RealClusterHandle::Shutdown() {
  if (cluster_) cluster_->Stop();
  for (auto& e : executors_) {
    static_cast<ThreadPoolExecutor*>(e.get())->Shutdown();
  }
  if (client_executor_) {
    static_cast<ThreadPoolExecutor*>(client_executor_.get())->Shutdown();
  }
}

}  // namespace aodb
