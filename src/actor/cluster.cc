#include "actor/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "actor/fault.h"
#include "actor/membership.h"
#include "actor/method_registry.h"
#include "actor/thread_pool.h"
#include "actor/wire_format.h"
#include "common/codec.h"
#include "storage/state_storage.h"
#include "common/logging.h"
#include "common/retry.h"

namespace aodb {

Cluster::Cluster(const RuntimeOptions& options,
                 std::vector<Executor*> silo_executors,
                 Executor* client_executor, SystemKv* system_kv)
    : options_(options),
      silo_executors_(std::move(silo_executors)),
      client_executor_(client_executor),
      system_kv_(system_kv),
      tracer_(options.num_silos, options.trace.sample_every,
              options.trace.ring_capacity, &metrics_),
      flight_(options.num_silos, options.observability.enable_flight_recorder,
              options.observability.flight_ring_capacity, &metrics_),
      timeline_(static_cast<size_t>(
          std::max(1, options.observability.metrics_timeline_capacity))),
      directory_(options.num_silos, options.default_placement,
                 options.seed ^ 0x5a5a5a5aULL, options.directory_shards),
      network_(options.network, options.seed ^ 0xc3c3c3c3ULL) {
  assert(static_cast<int>(silo_executors_.size()) == options.num_silos);
  dead_letters_ = metrics_.GetCounter("cluster.dead_letters");
  auto_evictions_ = metrics_.GetCounter("cluster.auto_evictions");
  failover_resubmitted_ = metrics_.GetCounter("cluster.failover_resubmitted");
  failover_failed_ = metrics_.GetCounter("cluster.failover_failed");
  deadline_timeouts_ = metrics_.GetCounter("cluster.deadline_timeouts");
  no_live_silo_rejects_ = metrics_.GetCounter("cluster.no_live_silo_rejects");
  overload_shed_telemetry_ = metrics_.GetCounter("overload.shed.telemetry");
  overload_shed_query_ = metrics_.GetCounter("overload.shed.query");
  overload_mailbox_rejects_ = metrics_.GetCounter("overload.mailbox_rejects");
  overload_migrations_ = metrics_.GetCounter("overload.migrations");
  local_closure_sends_ = metrics_.GetCounter("wire.local_closure_sends");
  wire_requests_ = metrics_.GetCounter("wire.requests");
  wire_request_bytes_ = metrics_.GetCounter("wire.request_bytes");
  wire_replies_ = metrics_.GetCounter("wire.replies");
  wire_reply_bytes_ = metrics_.GetCounter("wire.reply_bytes");
  closure_fallbacks_ = metrics_.GetCounter("wire.closure_fallbacks");
  wire_decode_failures_ = metrics_.GetCounter("wire.decode_failures");
  activation_paged_out_ = metrics_.GetCounter("activation.paged_out");
  activation_faults_ = metrics_.GetCounter("activation.fault.count");
  activation_fault_load_ = metrics_.GetHistogram("activation.fault.load_us");
  activation_fault_wait_ =
      metrics_.GetHistogram("activation.fault.queue_wait_us");
  directory_.BindMetrics(&metrics_);
  silos_.reserve(options.num_silos);
  for (int i = 0; i < options.num_silos; ++i) {
    silos_.push_back(
        std::make_unique<Silo>(static_cast<SiloId>(i), this,
                               silo_executors_[i]));
  }
  if (options_.membership.enable) {
    membership_ = std::make_unique<MembershipService>(this, system_kv_);
    membership_->Start();
  }
}

Cluster::~Cluster() { Stop(); }

void Cluster::RegisterActorType(const std::string& type, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[type] = std::move(factory);
}

void Cluster::SetTypePlacement(const std::string& type, Placement placement) {
  directory_.SetTypePlacement(type, placement);
}

void Cluster::SetTypeMailboxDepth(const std::string& type, int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth <= 0) {
    type_mailbox_depth_.erase(type);
  } else {
    type_mailbox_depth_[type] = depth;
  }
}

int Cluster::MailboxLimitFor(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = type_mailbox_depth_.find(type);
  return it != type_mailbox_depth_.end() ? it->second
                                         : options_.overload.max_mailbox_depth;
}

void Cluster::SetTypeMaxResident(const std::string& type, int limit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (limit <= 0) {
    type_max_resident_.erase(type);
  } else {
    type_max_resident_[type] = limit;
  }
}

int Cluster::ResidentLimitFor(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = type_max_resident_.find(type);
  return it != type_max_resident_.end() ? it->second : 0;
}

void Cluster::NoteFaultLoad(Micros load_us) {
  activation_fault_load_->Record(load_us);
}

void Cluster::NoteFaultWait(Micros wait_us) {
  activation_fault_wait_->Record(wait_us);
}

Gauge* Cluster::MailboxDepthGauge(const std::string& type) {
  {
    std::shared_lock<std::shared_mutex> lock(mailbox_gauge_mu_);
    auto it = mailbox_gauges_.find(type);
    if (it != mailbox_gauges_.end()) return it->second;
  }
  Gauge* gauge = metrics_.GetGauge("mailbox.depth." + type);
  std::unique_lock<std::shared_mutex> lock(mailbox_gauge_mu_);
  return mailbox_gauges_.emplace(type, gauge).first->second;
}

void Cluster::RegisterStateStorage(const std::string& name,
                                   std::shared_ptr<StateStorage> storage) {
  storage->BindMetrics(&metrics_);
  std::lock_guard<std::mutex> lock(mu_);
  storages_[name] = std::move(storage);
}

StateStorage* Cluster::GetStateStorage(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = storages_.find(name);
  return it == storages_.end() ? nullptr : it->second.get();
}

void Cluster::Send(Envelope env) {
  SiloId from = env.caller_silo;
  Micros now = ExecutorFor(from)->clock()->Now();
  if (env.deadline_us > 0 && now > env.deadline_us) {
    // Already past its deadline (e.g. a failover re-submission after a long
    // backoff): don't put it on the wire at all.
    NoteDeadlineExpired();
    flight_.Record(FlightEventType::kDeadlineTimeout, from,
                   env.target.ToString(), env.trace.trace_id,
                   now - env.deadline_us, now);
    if (env.trace.sampled) {
      AODB_LOG(Warn, "dropping expired send to %s (trace %llu)",
               env.target.ToString().c_str(),
               static_cast<unsigned long long>(env.trace.trace_id));
    }
    if (env.fail) env.fail(Status::Timeout("deadline expired before send"));
    return;
  }
  SiloId target = directory_.LookupOrPlace(env.target, env.caller_silo);
  if (target == kNoSilo) {
    // Placement found no live silo anywhere. Fail fast (retries may find a
    // rejoined cluster); nothing was cached, so the next attempt re-places.
    no_live_silo_rejects_->Add();
    AODB_LOG(Warn, "no live silo to place %s on",
             env.target.ToString().c_str());
    if (env.fail) {
      env.fail(Status::Unavailable("no live silo in cluster"));
    } else {
      NoteDeadLetters(1);
    }
    return;
  }
  Silo* silo = silos_[target].get();
  if (!silo->alive()) {
    // Stale route to a crashed silo: drop the registration so the next
    // attempt re-places on a live node, and fail fast like a refused
    // connection so the caller's retry policy can kick in.
    directory_.Remove(env.target, target);
    if (env.fail) env.fail(Status::Unavailable("silo down"));
    return;
  }
  if (from == target) {
    // Same-silo fast path: the closure lane passes pointers — no
    // serialization, no network model.
    local_closure_sends_->Add();
    silo->Deliver(std::move(env));
    return;
  }
  if (network_.Partitioned(from, target)) {
    // The directed link is severed: the connection attempt fails at the
    // sender. Callers retry (and may be re-placed); tells are lost, as on a
    // black-holing route.
    if (env.fail) env.fail(Status::Unavailable("link partitioned"));
    return;
  }
  FaultInjector* injector = fault_injector();
  if (injector != nullptr && injector->ShouldDropMessage()) {
    // Lost on the wire. The sender sees the transport-level failure
    // (Unavailable) rather than hanging forever; fire-and-forget tells
    // vanish silently, as on a real network.
    if (env.fail) env.fail(Status::Unavailable("message lost"));
    return;
  }
  bool duplicate =
      injector != nullptr && injector->ShouldDuplicateMessage();
  if (env.wire != nullptr && env.wire_encode_args) {
    SendWire(std::move(env), from, target, duplicate);
    return;
  }
  // Closure lane for a remote send: only legal when the method has no wire
  // registration (tests and ad-hoc actors). A real network cannot ship
  // closures, so strict deployments fail fast instead.
  if (options_.wire.require_wire) {
    AODB_LOG(Error, "cross-silo send to %s has no wire registration",
             env.target.ToString().c_str());
    if (env.fail) {
      env.fail(Status::FailedPrecondition(
          "no wire registration for cross-silo call to actor type " +
          env.target.type));
    }
    return;
  }
  closure_fallbacks_->Add();
  env.cost_us += options_.network.serialization_cost_us;
  Executor* exec = silo_executors_[target];
  // A reorder hold-back lands AFTER the FIFO arrival slot is claimed, so
  // later sends on the channel overtake this message.
  Micros reorder_us = injector != nullptr ? injector->NextReorderDelay() : 0;
  if (duplicate) {
    // At-least-once delivery under retransmission: the same envelope
    // arrives twice. Calls resolve with the first reply (promises are
    // first-fulfillment-wins); non-idempotent tells observe the anomaly.
    // The duplicate draws its OWN hold-back: a real retransmission can
    // surface long after the original (and after the actor it re-targets
    // has idled out) — the nastiest stale-mail shape.
    Envelope copy = env;
    Micros dup_reorder_us =
        injector != nullptr ? injector->NextDuplicateLag() : 0;
    Micros dup_arrival = network_.FifoArrival(from, target, copy.approx_bytes,
                                              exec->clock()->Now());
    exec->PostAt(dup_arrival + dup_reorder_us,
                 [silo, copy = std::move(copy)]() mutable {
                   silo->Deliver(std::move(copy));
                 });
  }
  Micros arrival = network_.FifoArrival(from, target, env.approx_bytes,
                                        exec->clock()->Now());
  exec->PostAt(arrival + reorder_us, [silo, env = std::move(env)]() mutable {
    silo->Deliver(std::move(env));
  });
}

void Cluster::SendWire(Envelope env, SiloId from, SiloId target,
                       bool duplicate) {
  if (options_.membership.enable && env.on_wire_reply) {
    // Track the call so eviction of the target silo can fail it over. The
    // stored copy keeps the ORIGINAL reply handler: a re-submission goes
    // through SendWire again and is wrapped with a fresh call id.
    uint64_t call_id =
        next_call_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    PendingCall pending;
    pending.env = env;
    pending.target = target;
    pending.call_id = call_id;
    pending.idempotent = env.wire->idempotent;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_calls_.emplace(call_id, std::move(pending));
    }
    WireReplyHandler inner = std::move(env.on_wire_reply);
    Cluster* self = this;
    env.on_wire_reply = [self, call_id, inner](Result<std::string>&& r) {
      // No-op if failover already took ownership of this call (the target
      // was evicted and the call re-submitted or failed).
      if (!self->TakePendingCall(call_id)) return;
      inner(std::move(r));
    };
  }
  WireRequest req;
  req.target = env.target;
  req.principal = env.principal;
  req.method_id = env.wire->id;
  req.cost_us = env.cost_us;
  req.deadline_us = env.deadline_us;
  req.priority = static_cast<uint8_t>(env.priority);
  req.trace_id = env.trace.trace_id;
  req.parent_span_id = env.trace.span_id;
  req.trace_sampled = env.trace.sampled;
  req.args = env.wire_encode_args();
  auto frame = std::make_shared<std::string>(WireEncodeRequest(req));
  if (FaultInjector* injector = fault_injector()) {
    injector->MaybeCorruptFrame(frame.get());
  }
  int64_t bytes = static_cast<int64_t>(frame->size());
  // The measured frame size — not an estimate — is what the network model
  // charges transfer time for.
  env.approx_bytes = bytes;
  wire_requests_->Add();
  wire_request_bytes_->Add(bytes);
  Executor* exec = silo_executors_[target];
  Cluster* self = this;
  WireReplyHandler reply = std::move(env.on_wire_reply);
  auto deliver = [self, target, from, frame, reply] {
    self->DeliverWireFrame(target, from, frame, reply);
  };
  // As in the closure lane: a reorder hold-back is added after the FIFO
  // slot is claimed, so fresher frames overtake this one.
  FaultInjector* injector = fault_injector();
  Micros reorder_us = injector != nullptr ? injector->NextReorderDelay() : 0;
  if (duplicate) {
    // Retransmission anomaly: the same frame arrives twice, the method runs
    // twice, and the duplicate reply is dropped by the caller's promise
    // (first fulfillment wins; see PromiseDuplicatesDropped). As in the
    // closure lane, the duplicate draws its own hold-back so it can arrive
    // well after the original — stale mail against a moved-on directory.
    Micros dup_reorder_us =
        injector != nullptr ? injector->NextDuplicateLag() : 0;
    Micros dup_arrival =
        network_.FifoArrival(from, target, bytes, exec->clock()->Now());
    exec->PostAt(dup_arrival + dup_reorder_us, deliver);
  }
  Micros arrival =
      network_.FifoArrival(from, target, bytes, exec->clock()->Now());
  exec->PostAt(arrival + reorder_us, deliver);
}

void Cluster::DeliverWireFrame(SiloId target, SiloId caller_silo,
                               std::shared_ptr<const std::string> frame,
                               WireReplyHandler reply) {
  auto req = std::make_shared<WireRequest>();
  Status st = WireDecodeRequest(*frame, req.get());
  const WireMethodEntry* entry = nullptr;
  if (st.ok()) {
    entry = MethodRegistry::Global().FindEntry(req->target.type,
                                               req->method_id);
    if (entry == nullptr) {
      st = Status::FailedPrecondition(
          "no wire method registered for type " + req->target.type + " (id " +
          std::to_string(req->method_id) + ")");
    }
  }
  if (!st.ok()) {
    wire_decode_failures_->Add();
    AODB_LOG(Warn, "wire request rejected: %s", st.ToString().c_str());
    if (reply) {
      // The receiver cannot even parse the request, so the error reply is
      // the type-erased branch of the Result encoding.
      BufWriter w;
      WireEncodeResult<Unit>(&w, Result<Unit>::FromError(st));
      SendWireReply(target, caller_silo, reply, w.Release());
    }
    return;
  }
  Silo* silo = silos_[target].get();
  Envelope env;
  env.target = req->target;
  env.caller_silo = caller_silo;
  env.principal = req->principal;
  env.cost_us = req->cost_us + options_.network.serialization_cost_us;
  env.deadline_us = req->deadline_us;
  env.priority = static_cast<MessagePriority>(req->priority);
  env.trace.trace_id = req->trace_id;
  env.trace.span_id = req->parent_span_id;
  env.trace.sampled = req->trace_sampled;
  env.approx_bytes = static_cast<int64_t>(frame->size());
  // Keep the wire capability on the dispatch envelope: if the silo reroutes
  // it (deactivation race, crash), the resend stays on the wire lane with
  // the cached argument payload instead of silently upgrading to closures.
  env.wire = &entry->info;
  auto args = std::make_shared<const std::string>(std::move(req->args));
  env.wire_encode_args = [args] { return *args; };
  env.on_wire_reply = reply;
  Cluster* self = this;
  env.fn = [self, entry, args, reply, caller_silo](ActorBase& base) {
    SiloId here = base.ctx().silo();
    WireReplyFn send_reply;
    if (reply) {
      send_reply = [self, here, caller_silo, reply](std::string payload) {
        self->SendWireReply(here, caller_silo, reply, std::move(payload));
      };
    }
    BufReader r(*args);
    entry->invoke(base, r, send_reply);
  };
  if (reply) {
    env.fail = [reply](const Status& fail_st) {
      reply(Result<std::string>::FromError(fail_st));
    };
  }
  silo->Deliver(std::move(env));
}

void Cluster::SendWireReply(SiloId from, SiloId to,
                            const WireReplyHandler& reply,
                            std::string result_payload) {
  std::string frame = WireEncodeReply(std::move(result_payload));
  if (FaultInjector* injector = fault_injector()) {
    if (from != to) injector->MaybeCorruptFrame(&frame);
  }
  int64_t bytes = static_cast<int64_t>(frame.size());
  wire_replies_->Add();
  wire_reply_bytes_->Add(bytes);
  SendReply(from, to, bytes, [reply, frame = std::move(frame)]() mutable {
    reply(Result<std::string>(std::move(frame)));
  });
}

void Cluster::SendReply(SiloId from, SiloId to, int64_t bytes,
                        std::function<void()> fn) {
  if (from == to) {
    fn();
    return;
  }
  if (network_.Partitioned(from, to)) {
    // Asymmetric partition: the request got through but the reply path is
    // severed, so the reply vanishes silently and the caller's deadline
    // watchdog is what surfaces the failure — exactly the half-open
    // connection shape symmetric faults cannot produce.
    return;
  }
  Executor* exec = ExecutorFor(to);
  Micros arrival = network_.FifoArrival(from, to, bytes, exec->clock()->Now());
  exec->PostAt(arrival, std::move(fn));
}

WireStats Cluster::wire_stats() const {
  WireStats s;
  s.local_closure_sends = local_closure_sends_->value();
  s.wire_requests = wire_requests_->value();
  s.wire_request_bytes = wire_request_bytes_->value();
  s.wire_replies = wire_replies_->value();
  s.wire_reply_bytes = wire_reply_bytes_->value();
  s.closure_fallbacks = closure_fallbacks_->value();
  s.decode_failures = wire_decode_failures_->value();
  return s;
}

ClusterCounters Cluster::cluster_counters() const {
  ClusterCounters c;
  c.dead_letters = dead_letters_->value();
  c.auto_evictions = auto_evictions_->value();
  c.failover_resubmitted = failover_resubmitted_->value();
  c.failover_failed = failover_failed_->value();
  c.deadline_timeouts = deadline_timeouts_->value();
  c.no_live_silo_rejects = no_live_silo_rejects_->value();
  return c;
}

MetricsSnapshot Cluster::SnapshotMetrics() const {
  // Refresh point-in-time runtime gauges before exporting. GetGauge is
  // logically const registration (the registry is this cluster's own).
  MetricsRegistry& reg = const_cast<MetricsRegistry&>(metrics_);
  reg.GetGauge("cluster.activations")
      ->Set(static_cast<int64_t>(TotalActivations()));
  reg.GetGauge("cluster.messages_processed")->Set(TotalMessagesProcessed());
  ExecutorStats ex;
  for (Executor* e : silo_executors_) {
    ExecutorStats s = e->Stats();
    ex.tasks_run += s.tasks_run;
    ex.busy_us += s.busy_us;
    ex.steals += s.steals;
    ex.parks += s.parks;
    ex.queue_depth += s.queue_depth;
  }
  reg.GetGauge("executor.tasks_run")->Set(ex.tasks_run);
  reg.GetGauge("executor.busy_us")->Set(ex.busy_us);
  reg.GetGauge("executor.steals")->Set(ex.steals);
  reg.GetGauge("executor.parks")->Set(ex.parks);
  reg.GetGauge("executor.queue_depth")->Set(ex.queue_depth);
  directory_.PublishPartitionGauges();
  return metrics_.Snapshot();
}

void Cluster::RecordTurnProfile(const std::string& type, Micros queue_wait_us,
                                Micros exec_us) {
  TurnProfile prof;
  {
    std::shared_lock<std::shared_mutex> lock(turn_profile_mu_);
    auto it = turn_profiles_.find(type);
    if (it != turn_profiles_.end()) prof = it->second;
  }
  if (prof.queue_wait == nullptr) {
    TurnProfile fresh;
    fresh.queue_wait = metrics_.GetHistogram("turn.queue_wait_us." + type);
    fresh.exec = metrics_.GetHistogram("turn.exec_us." + type);
    std::unique_lock<std::shared_mutex> lock(turn_profile_mu_);
    prof = turn_profiles_.emplace(type, fresh).first->second;
  }
  prof.queue_wait->Record(queue_wait_us);
  prof.exec->Record(exec_us);
}

Status Cluster::CheckWireRegistry() const {
  std::vector<std::string> uncovered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [type, factory] : factories_) {
      if (MethodRegistry::Global().MethodCount(type) == 0) {
        uncovered.push_back(type);
      }
    }
  }
  if (uncovered.empty()) return Status::OK();
  std::sort(uncovered.begin(), uncovered.end());
  std::string joined;
  for (const std::string& type : uncovered) {
    if (!joined.empty()) joined += ", ";
    joined += type;
  }
  return Status::FailedPrecondition(
      "actor types with no wire-registered methods: " + joined);
}

const Cluster::Factory* Cluster::GetFactory(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(type);
  return it == factories_.end() ? nullptr : &it->second;
}

// --- Reminders -------------------------------------------------------------

std::string Cluster::ReminderKey(const ActorId& id, const std::string& name) {
  return "rem/" + id.type + "/" + id.key + "/" + name;
}

Status Cluster::RegisterReminder(const ActorId& id, const std::string& name,
                                 Micros period_us) {
  if (period_us <= 0) return Status::InvalidArgument("period must be > 0");
  auto alive = std::make_shared<bool>(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = reminders_[ReminderKey(id, name)];
    if (entry.alive) *entry.alive = false;  // Replace existing schedule.
    entry.alive = alive;
    entry.period_us = period_us;
  }
  if (system_kv_ != nullptr) {
    BufWriter w;
    w.PutVarint(static_cast<uint64_t>(period_us));
    AODB_RETURN_NOT_OK(system_kv_->Put(ReminderKey(id, name), w.Release()));
  }
  ScheduleReminder(id, name, period_us, std::move(alive));
  return Status::OK();
}

Status Cluster::UnregisterReminder(const ActorId& id,
                                   const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = reminders_.find(ReminderKey(id, name));
    if (it == reminders_.end()) return Status::NotFound("no such reminder");
    if (it->second.alive) *it->second.alive = false;
    reminders_.erase(it);
  }
  if (system_kv_ != nullptr) {
    AODB_RETURN_NOT_OK(system_kv_->Delete(ReminderKey(id, name)));
  }
  return Status::OK();
}

Status Cluster::LoadReminders() {
  if (system_kv_ == nullptr) return Status::OK();
  auto listed = system_kv_->List("rem/");
  if (!listed.ok()) return listed.status();
  for (const auto& [key, value] : listed.value()) {
    // Key layout: rem/<type>/<key>/<name>.
    size_t p1 = key.find('/', 4);
    if (p1 == std::string::npos) continue;
    size_t p2 = key.rfind('/');
    if (p2 == std::string::npos || p2 <= p1) continue;
    ActorId id{key.substr(4, p1 - 4), key.substr(p1 + 1, p2 - p1 - 1)};
    std::string name = key.substr(p2 + 1);
    BufReader r(value);
    uint64_t period = 0;
    if (!r.GetVarint(&period).ok()) continue;
    auto alive = std::make_shared<bool>(true);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto& entry = reminders_[key];
      if (entry.alive) *entry.alive = false;
      entry.alive = alive;
      entry.period_us = static_cast<Micros>(period);
    }
    ScheduleReminder(id, name, static_cast<Micros>(period), std::move(alive));
  }
  return Status::OK();
}

size_t Cluster::ActiveReminders() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reminders_.size();
}

void Cluster::ScheduleReminder(const ActorId& id, const std::string& name,
                               Micros period_us,
                               std::shared_ptr<bool> alive) {
  // Reminder ticks originate from the runtime (client node executor) and
  // are delivered as regular messages, re-activating the target if needed.
  auto fire = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_fire = fire;
  Cluster* self = this;
  Executor* exec = client_executor_;
  *fire = [self, exec, id, name, period_us, alive, weak_fire]() {
    if (!*alive) return;
    Envelope env;
    env.target = id;
    env.caller_silo = kClientSiloId;
    env.cost_us = kDefaultMessageCostUs;
    env.fn = [name](ActorBase& a) { a.ReceiveReminder(name); };
    self->Send(std::move(env));
    if (auto next = weak_fire.lock()) {
      exec->PostAfter(period_us, [next] { (*next)(); });
    }
  };
  exec->PostAfter(period_us, [fire] { (*fire)(); });
}

// --- Lifecycle ---------------------------------------------------------------

void Cluster::StartIdleScanner() {
  if (!options_.lifecycle.enable_idle_deactivation) return;
  auto alive = std::make_shared<bool>(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (scanner_alive_) *scanner_alive_ = false;
    scanner_alive_ = alive;
  }
  for (auto& silo : silos_) {
    Silo* s = silo.get();
    Executor* exec = s->executor();
    Micros interval = options_.lifecycle.scan_interval_us;
    Micros timeout = options_.lifecycle.idle_timeout_us;
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    *tick = [s, exec, interval, timeout, alive, weak_tick]() {
      if (!*alive) return;
      s->SweepIdle(timeout);
      if (auto next = weak_tick.lock()) {
        exec->PostAfter(interval, [next] { (*next)(); });
      }
    };
    exec->PostAfter(interval, [tick] { (*tick)(); });
  }
}

void Cluster::StartOverloadController() {
  if (!options_.overload.enable_hot_migration) return;
  auto alive = std::make_shared<bool>(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (overload_alive_) *overload_alive_ = false;
    overload_alive_ = alive;
  }
  // The controller ticks on the client-node executor (it is cluster-wide,
  // not per-silo) with the same weak-self periodic-loop shape as reminders.
  Executor* exec = client_executor_;
  Micros interval = options_.overload.scan_interval_us;
  Cluster* self = this;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [self, exec, interval, alive, weak_tick]() {
    if (!*alive) return;
    self->RebalanceHotActors();
    if (auto next = weak_tick.lock()) {
      exec->PostAfter(interval, [next] { (*next)(); });
    }
  };
  exec->PostAfter(interval, [tick] { (*tick)(); });
}

void Cluster::StartMetricsSampler() {
  Micros interval = options_.observability.metrics_sample_interval_us;
  if (interval <= 0) return;
  auto alive = std::make_shared<bool>(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sampler_alive_) *sampler_alive_ = false;
    sampler_alive_ = alive;
  }
  // Same weak-self periodic-loop shape as reminders: the sampler ticks on
  // the client-node executor (cluster-wide, off the silo hot paths).
  Executor* exec = client_executor_;
  Cluster* self = this;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [self, exec, interval, alive, weak_tick]() {
    if (!*alive) return;
    self->timeline_.Record(exec->clock()->Now(), self->SnapshotMetrics());
    if (auto next = weak_tick.lock()) {
      exec->PostAfter(interval, [next] { (*next)(); });
    }
  };
  exec->PostAfter(interval, [tick] { (*tick)(); });
}

std::string Cluster::BuildPostmortemJson(const std::string& reason) const {
  Micros now = client_executor_->clock()->Now();
  std::string out = "{\"schema\":\"aodb.postmortem.v1\",";
  out += "\"reason\":\"" + JsonEscape(reason) + "\",";
  out += "\"at_us\":" + std::to_string(now) + ",";
  out += "\"membership\":[";
  for (int i = 0; i < static_cast<int>(silos_.size()); ++i) {
    if (i > 0) out += ',';
    Silo* s = silos_[i].get();
    out += "{\"silo\":" + std::to_string(i);
    out += std::string(",\"alive\":") + (s->alive() ? "true" : "false");
    out += std::string(",\"wedged\":") + (s->wedged() ? "true" : "false");
    if (membership_) {
      out += ",\"incarnation\":" + std::to_string(membership_->Incarnation(i));
      out +=
          ",\"suspicions\":" + std::to_string(membership_->SuspicionCount(i));
      auto lease = membership_->ReadLease(i);
      if (lease.ok()) {
        out +=
            ",\"lease_expiry_us\":" + std::to_string(lease.value().expiry_us);
      }
    }
    out += '}';
  }
  out += "],\"hot_actors\":[";
  for (int i = 0; i < static_cast<int>(silos_.size()); ++i) {
    if (i > 0) out += ',';
    Silo* s = silos_[i].get();
    out += "{\"silo\":" + std::to_string(i);
    out += ",\"queued\":" + std::to_string(s->QueuedEnvelopes());
    out += ",\"activations\":" + std::to_string(s->ActivationCount());
    out += ",\"top\":[";
    std::vector<Silo::HotActivation> top = s->TopActivations(8);
    for (size_t k = 0; k < top.size(); ++k) {
      if (k > 0) out += ',';
      out += "{\"actor\":\"" + JsonEscape(top[k].id.ToString()) +
             "\",\"depth\":" + std::to_string(top[k].depth) + "}";
    }
    out += "]}";
  }
  out += "],\"flight_events\":";
  FlightRecorder::AppendEventsJson(flight_.Collect(), &out);
  out += ",\"metrics_timeline\":" + timeline_.ToJson();
  out += ",\"metrics\":" + SnapshotMetrics().ToJson();
  out += ",\"traces\":" + tracer_.DumpJson();
  out += '}';
  return out;
}

Status Cluster::DumpPostmortem(const std::string& path,
                               const std::string& reason) const {
  std::string bundle = BuildPostmortemJson(reason);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write postmortem bundle to " + path);
  }
  size_t n = std::fwrite(bundle.data(), 1, bundle.size(), f);
  std::fclose(f);
  if (n != bundle.size()) {
    return Status::IoError("short write of postmortem bundle to " + path);
  }
  AODB_LOG(Warn, "postmortem bundle written to %s (%s)", path.c_str(),
           reason.c_str());
  return Status::OK();
}

void Cluster::RebalanceHotActors() {
  // Instantaneous queued counts are noisy — one arrival burst can make the
  // steady-state-coolest silo sample as the hottest for a single scan — so
  // the hottest/coolest decision runs on an EWMA across scans instead of the
  // raw sample.
  const Micros now = client_executor_->clock()->Now();
  const Micros cooldown = options_.overload.migration_cooldown_us;
  if (overload_ewma_.size() != silos_.size()) {
    overload_ewma_.assign(silos_.size(), 0.0);
  }
  SiloId hottest = kNoSilo;
  SiloId coolest = kNoSilo;
  double max_load = -1.0;
  double min_load = 0.0;
  for (int i = 0; i < num_silos(); ++i) {
    if (!silos_[i]->alive()) continue;
    auto queued = static_cast<double>(silos_[i]->QueuedEnvelopes());
    double load = 0.5 * overload_ewma_[i] + 0.5 * queued;
    overload_ewma_[i] = load;
    if (load > max_load) {
      max_load = load;
      hottest = static_cast<SiloId>(i);
    }
    // A silo that just received a migration still samples as cool (the
    // moved actor's traffic has not reached it yet); excluding it as a
    // destination for the cooldown keeps the controller from piling
    // several hot actors onto one silo and ping-ponging them afterwards.
    auto dest_it = overload_dest_cooldown_.find(i);
    if (dest_it != overload_dest_cooldown_.end() &&
        now - dest_it->second < cooldown) {
      continue;
    }
    if (coolest == kNoSilo || load < min_load) {
      min_load = load;
      coolest = static_cast<SiloId>(i);
    }
  }
  if (hottest == kNoSilo || coolest == kNoSilo || hottest == coolest) return;
  if (max_load - min_load <
      static_cast<double>(options_.overload.min_load_delta)) {
    return;
  }
  auto hot =
      silos_[hottest]->HottestActivation(options_.overload.hot_actor_min_depth);
  if (!hot) return;
  // The same actor cannot be moved twice in quick succession: every move
  // pauses the actor and reroutes its mail, so re-migrating on residual
  // backlog turns the controller itself into an overload source.
  const std::string key = hot->id.ToString();
  auto moved_it = overload_actor_cooldown_.find(key);
  if (moved_it != overload_actor_cooldown_.end() &&
      now - moved_it->second < cooldown) {
    return;
  }
  if (silos_[hottest]->RequestMigration(hot->id, coolest)) {
    overload_actor_cooldown_[key] = now;
    overload_dest_cooldown_[coolest] = now;
    AODB_LOG(Info,
             "overload controller migrating hot actor %s: silo %d (%.0f "
             "load) -> silo %d (%.0f load), mailbox depth %lld",
             key.c_str(), static_cast<int>(hottest), max_load,
             static_cast<int>(coolest), min_load,
             static_cast<long long>(hot->depth));
    // Drop expired cooldown entries so the maps stay proportional to the
    // set of recently moved actors, not every actor ever moved.
    for (auto it = overload_actor_cooldown_.begin();
         it != overload_actor_cooldown_.end();) {
      if (now - it->second >= cooldown) {
        it = overload_actor_cooldown_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Status Cluster::MigrateActivation(const ActorId& id, SiloId to) {
  if (to < 0 || to >= num_silos() || !silos_[to]->alive()) {
    return Status::InvalidArgument("migration target silo is not live");
  }
  std::optional<SiloId> hosted = directory_.Lookup(id);
  if (!hosted) return Status::NotFound("actor has no activation");
  if (*hosted == to) return Status::OK();
  if (!silos_[*hosted]->RequestMigration(id, to)) {
    return Status::Aborted("activation is loading or already deactivating");
  }
  return Status::OK();
}

Future<Status> Cluster::DeactivateAll() {
  std::vector<Future<Status>> futures;
  futures.reserve(silos_.size());
  for (auto& silo : silos_) futures.push_back(silo->DeactivateAll());
  Promise<Status> done;
  WhenAll(futures).OnReady(
      [done](Result<std::vector<Result<Status>>>&& r) {
        if (!r.ok()) {
          done.SetValue(r.status());
          return;
        }
        for (auto& st : r.value()) {
          Status s = st.ok() ? st.value() : st.status();
          if (!s.ok()) {
            done.SetValue(s);
            return;
          }
        }
        done.SetValue(Status::OK());
      });
  return done.GetFuture();
}

// --- Fault injection ---------------------------------------------------------

void Cluster::KillSilo(SiloId id) {
  if (id < 0 || id >= num_silos()) return;
  EvictInternal(id, "announced kill", /*automatic=*/false);
}

void Cluster::EvictSilo(SiloId id, const std::string& reason) {
  if (id < 0 || id >= num_silos()) return;
  EvictInternal(id, reason, /*automatic=*/true);
}

void Cluster::EvictInternal(SiloId id, const std::string& reason,
                            bool automatic) {
  std::lock_guard<std::mutex> lock(evict_mu_);
  if (!silos_[id]->alive()) return;
  AODB_LOG(Warn, "%s silo %d (%s)", automatic ? "evicting" : "killing",
           static_cast<int>(id), reason.c_str());
  flight_.Record(FlightEventType::kEvict, id, reason, /*trace_id=*/0,
                 /*detail=*/automatic ? 1 : 0, clock()->Now());
  // Order matters: stop placing on the silo, then purge its registrations
  // (so no new route can observe the dead silo through a fresh directory
  // entry), then fail over pending calls, and only THEN fail its queued
  // work — the queued-work Unavailable completions find their pending
  // entries already taken and cannot race the failover re-submissions for
  // the callers' promises.
  directory_.SetSiloLive(id, false);
  directory_.PurgeSilo(id);
  FailoverPendingCalls(id);
  int64_t dead = silos_[id]->Kill();
  if (dead > 0) {
    NoteDeadLetters(dead);
    AODB_LOG(Warn,
             "silo %d eviction dropped %lld envelope(s) with no failure "
             "hook (dead letters)",
             static_cast<int>(id), static_cast<long long>(dead));
  }
  if (automatic) {
    auto_evictions_->Add();
  } else if (FaultInjector* injector = fault_injector()) {
    injector->RecordKill();
  }
  if (membership_) membership_->NoteEvicted(id);
}

bool Cluster::TakePendingCall(uint64_t call_id) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_calls_.erase(call_id) > 0;
}

void Cluster::FailoverPendingCalls(SiloId dead) {
  std::vector<PendingCall> victims;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_calls_.begin(); it != pending_calls_.end();) {
      if (it->second.target == dead) {
        victims.push_back(std::move(it->second));
        it = pending_calls_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const RetryPolicy& policy = options_.membership.failover;
  for (auto& pc : victims) {
    Envelope env = std::move(pc.env);
    std::optional<Micros> backoff;
    if (pc.idempotent) {
      ++env.failover_attempts;
      // Replay the policy's (seeded, jittered) backoff sequence up to this
      // attempt; nullopt once the attempt cap is hit.
      RetryState retry(policy, options_.seed ^ (pc.call_id * 0x9e3779b97fULL));
      for (int a = 0; a < env.failover_attempts; ++a) {
        backoff = retry.NextBackoff(0);
        if (!backoff) break;
      }
    }
    Executor* exec = ExecutorFor(env.caller_silo);
    if (backoff) {
      failover_resubmitted_->Add();
      flight_.Record(FlightEventType::kFailoverResubmit, dead,
                     env.target.ToString(), env.trace.trace_id,
                     env.failover_attempts, clock()->Now());
      AODB_LOG(Info,
               "failing over idempotent call to %s (attempt %d, backoff "
               "%lld us, trace %llu)",
               env.target.ToString().c_str(), env.failover_attempts,
               static_cast<long long>(*backoff),
               static_cast<unsigned long long>(env.trace.trace_id));
      Cluster* self = this;
      exec->PostAfter(*backoff, [self, env = std::move(env)]() mutable {
        self->Send(std::move(env));
      });
    } else {
      failover_failed_->Add();
      flight_.Record(FlightEventType::kFailoverFailed, dead,
                     env.target.ToString(), env.trace.trace_id,
                     env.failover_attempts, clock()->Now());
      Status st = Status::Unavailable(
          pc.idempotent
              ? "silo evicted; failover retries exhausted"
              : "silo evicted with non-idempotent call in flight");
      // Fail on the caller's executor, not inline: promise continuations
      // run arbitrary user code that must not execute under evict_mu_.
      auto fail = std::move(env.fail);
      if (fail) {
        exec->Post(Task{[fail = std::move(fail), st] { fail(st); }, 0});
      }
    }
  }
}

void Cluster::RestartSilo(SiloId id) {
  if (id < 0 || id >= num_silos() || silos_[id]->alive()) return;
  AODB_LOG(Info, "restarting silo %d", static_cast<int>(id));
  flight_.Record(FlightEventType::kRestart, id, "", /*trace_id=*/0,
                 /*detail=*/0, clock()->Now());
  silos_[id]->Restart();
  directory_.SetSiloLive(id, true);
  if (membership_) membership_->NoteRestarted(id);
  if (FaultInjector* injector = fault_injector()) injector->RecordRestart();
}

bool Cluster::SiloAlive(SiloId id) const {
  return id >= 0 && id < static_cast<int>(silos_.size()) &&
         silos_[id]->alive();
}

void Cluster::Stop() {
  int64_t leaked = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Promise-leak audit: promises that died unfulfilled with a waiting
    // continuation during this cluster's lifetime. Non-zero means some path
    // dropped a reply handler without completing it — the hang-forever bug
    // class the deadline watchdogs exist to paper over.
    leaked = PromisesLeaked() - promise_leak_baseline_;
    metrics_.GetGauge("runtime.leaked_promises")->Set(leaked);
    if (leaked > 0) {
      AODB_LOG(Warn, "%lld promise(s) leaked during this cluster's lifetime",
               static_cast<long long>(leaked));
    }
    if (scanner_alive_) *scanner_alive_ = false;
    if (overload_alive_) *overload_alive_ = false;
    if (sampler_alive_) *sampler_alive_ = false;
    for (auto& [key, entry] : reminders_) {
      if (entry.alive) *entry.alive = false;
    }
  }
  if (membership_) membership_->Stop();
  if (leaked > 0 && !options_.observability.postmortem_path.empty()) {
    // A leak is exactly the failure the flight recorder exists for: ship
    // the black box. Runs after mu_ is released (bundle building takes
    // silo/activation locks) and after background agents are stopped.
    Status st = DumpPostmortem(
        options_.observability.postmortem_path,
        "cluster stopped with " + std::to_string(leaked) +
            " leaked promise(s)");
    if (!st.ok()) {
      AODB_LOG(Warn, "postmortem dump failed: %s", st.ToString().c_str());
    }
  }
}

size_t Cluster::TotalActivations() const {
  size_t total = 0;
  for (const auto& silo : silos_) total += silo->ActivationCount();
  return total;
}

int64_t Cluster::TotalMessagesProcessed() const {
  int64_t total = 0;
  for (const auto& silo : silos_) total += silo->Stats().messages_processed;
  return total;
}

// --- RealClusterHandle -------------------------------------------------------

RealClusterHandle::RealClusterHandle(const RuntimeOptions& options,
                                     SystemKv* system_kv) {
  std::vector<Executor*> execs;
  for (int i = 0; i < options.num_silos; ++i) {
    executors_.push_back(
        std::make_unique<ThreadPoolExecutor>(options.workers_per_silo));
    execs.push_back(executors_.back().get());
  }
  client_executor_ = std::make_unique<ThreadPoolExecutor>(2);
  cluster_ = std::make_unique<Cluster>(options, std::move(execs),
                                       client_executor_.get(), system_kv);
}

RealClusterHandle::~RealClusterHandle() { Shutdown(); }

void RealClusterHandle::Shutdown() {
  if (cluster_) cluster_->Stop();
  for (auto& e : executors_) {
    static_cast<ThreadPoolExecutor*>(e.get())->Shutdown();
  }
  if (client_executor_) {
    static_cast<ThreadPoolExecutor*>(client_executor_.get())->Shutdown();
  }
}

}  // namespace aodb
