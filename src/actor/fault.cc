#include "actor/fault.h"

#include "actor/cluster.h"
#include "actor/membership.h"
#include "common/logging.h"

namespace aodb {

namespace {
// Distinct seed perturbations so the message and storage decision streams
// are independent of each other and of the directory/network Rngs.
constexpr uint64_t kMessageStream = 0x6d7367646f70ULL;   // "msgdrop"
constexpr uint64_t kStorageStream = 0x73746f726661ULL;   // "storfa"
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      message_rng_(plan_.seed ^ kMessageStream),
      storage_rng_(plan_.seed ^ kStorageStream) {}

void FaultInjector::Arm(Cluster* cluster) {
  cluster->SetFaultInjector(this);
  MetricsRegistry& reg = cluster->metrics();
  dropped_metric_.store(reg.GetCounter("fault.messages_dropped"),
                        std::memory_order_release);
  duplicated_metric_.store(reg.GetCounter("fault.messages_duplicated"),
                           std::memory_order_release);
  corrupted_metric_.store(reg.GetCounter("fault.messages_corrupted"),
                          std::memory_order_release);
  reordered_metric_.store(reg.GetCounter("fault.messages_reordered"),
                          std::memory_order_release);
  storage_errors_metric_.store(reg.GetCounter("fault.storage_errors"),
                               std::memory_order_release);
  storage_spikes_metric_.store(reg.GetCounter("fault.storage_spikes"),
                               std::memory_order_release);
  torn_writes_metric_.store(reg.GetCounter("fault.torn_writes"),
                            std::memory_order_release);
  link_severs_metric_.store(reg.GetCounter("fault.link_severs"),
                            std::memory_order_release);
  kills_metric_.store(reg.GetCounter("fault.silo_kills"),
                      std::memory_order_release);
  restarts_metric_.store(reg.GetCounter("fault.silo_restarts"),
                         std::memory_order_release);
  Executor* exec = cluster->client_executor();
  for (const SiloCrashEvent& ev : plan_.crashes) {
    SiloId silo = ev.silo;
    exec->PostAfter(ev.at_us, [cluster, silo] { cluster->KillSilo(silo); });
    if (ev.restart_after_us > 0) {
      exec->PostAfter(ev.at_us + ev.restart_after_us,
                      [cluster, silo] { cluster->RestartSilo(silo); });
    }
  }
  for (const LinkPartitionEvent& ev : plan_.partitions) {
    SiloId from = ev.from;
    SiloId to = ev.to;
    bool symmetric = ev.symmetric;
    FaultInjector* self = this;
    exec->PostAfter(ev.at_us, [cluster, self, from, to, symmetric] {
      AODB_LOG(Warn, "severing link %d -> %d%s", static_cast<int>(from),
               static_cast<int>(to), symmetric ? " (both directions)" : "");
      cluster->network().SetPartitioned(from, to, true);
      if (symmetric) cluster->network().SetPartitioned(to, from, true);
      self->link_severs_.fetch_add(1);
      self->Mirror(self->link_severs_metric_);
    });
    if (ev.heal_after_us > 0) {
      exec->PostAfter(ev.at_us + ev.heal_after_us,
                      [cluster, from, to, symmetric] {
                        AODB_LOG(Info, "healing link %d -> %d%s",
                                 static_cast<int>(from), static_cast<int>(to),
                                 symmetric ? " (both directions)" : "");
                        cluster->network().SetPartitioned(from, to, false);
                        if (symmetric) {
                          cluster->network().SetPartitioned(to, from, false);
                        }
                      });
    }
  }
  for (const SiloWedgeEvent& ev : plan_.wedges) {
    SiloId silo = ev.silo;
    if (ev.suppress_only) {
      exec->PostAfter(ev.at_us, [cluster, silo] {
        if (MembershipService* m = cluster->membership()) {
          AODB_LOG(Warn, "gray failure: suppressing silo %d's heartbeats",
                   static_cast<int>(silo));
          m->SuppressSilo(silo, true);
        }
      });
    } else {
      exec->PostAfter(ev.at_us, [cluster, silo] {
        AODB_LOG(Warn, "wedging silo %d (unannounced hang)",
                 static_cast<int>(silo));
        cluster->silo(silo)->SetWedged(true);
      });
    }
  }
}

bool FaultInjector::ShouldDropMessage() {
  if (plan_.message.drop_prob <= 0) return false;
  bool drop;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    drop = message_rng_.Bernoulli(plan_.message.drop_prob);
  }
  if (drop) {
    messages_dropped_.fetch_add(1);
    Mirror(dropped_metric_);
  }
  return drop;
}

bool FaultInjector::ShouldDuplicateMessage() {
  if (plan_.message.duplicate_prob <= 0) return false;
  bool dup;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    dup = message_rng_.Bernoulli(plan_.message.duplicate_prob);
  }
  if (dup) {
    messages_duplicated_.fetch_add(1);
    Mirror(duplicated_metric_);
  }
  return dup;
}

bool FaultInjector::MaybeCorruptFrame(std::string* frame) {
  if (plan_.message.corrupt_prob <= 0 || frame->empty()) return false;
  bool corrupt;
  uint64_t pick = 0;
  uint64_t bit = 0;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    corrupt = message_rng_.Bernoulli(plan_.message.corrupt_prob);
    if (corrupt) {
      // One draw covers both mutation kinds: values below the frame size
      // flip a bit at that offset, values at or above it truncate the frame
      // to (pick - size) bytes.
      pick = message_rng_.NextBelow(frame->size() * 2);
      bit = message_rng_.NextBelow(8);
    }
  }
  if (!corrupt) return false;
  if (pick < frame->size()) {
    (*frame)[pick] = static_cast<char>(
        static_cast<uint8_t>((*frame)[pick]) ^ (1u << bit));
  } else {
    frame->resize(pick - frame->size());
  }
  messages_corrupted_.fetch_add(1);
  Mirror(corrupted_metric_);
  return true;
}

Micros FaultInjector::NextReorderDelay() {
  if (plan_.message.reorder_prob <= 0 ||
      plan_.message.reorder_max_delay_us <= 0) {
    return 0;
  }
  Micros delay = 0;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    if (message_rng_.Bernoulli(plan_.message.reorder_prob)) {
      delay = static_cast<Micros>(message_rng_.NextBelow(
          static_cast<uint64_t>(plan_.message.reorder_max_delay_us)));
    }
  }
  if (delay > 0) {
    messages_reordered_.fetch_add(1);
    Mirror(reordered_metric_);
  }
  return delay;
}

Micros FaultInjector::NextDuplicateLag() {
  if (plan_.message.reorder_max_delay_us <= 0) return 0;
  std::lock_guard<std::mutex> lock(message_mu_);
  return static_cast<Micros>(message_rng_.NextBelow(
      static_cast<uint64_t>(plan_.message.reorder_max_delay_us)));
}

Status FaultInjector::NextStorageFault() {
  if (plan_.storage.error_prob <= 0) return Status::OK();
  bool fail;
  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    fail = storage_rng_.Bernoulli(plan_.storage.error_prob);
  }
  if (!fail) return Status::OK();
  storage_errors_.fetch_add(1);
  Mirror(storage_errors_metric_);
  return Status(plan_.storage.error, "injected storage fault");
}

bool FaultInjector::NextTornWrite() {
  if (plan_.storage.torn_write_prob <= 0) return false;
  bool torn;
  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    torn = storage_rng_.Bernoulli(plan_.storage.torn_write_prob);
  }
  if (!torn) return false;
  torn_writes_.fetch_add(1);
  Mirror(torn_writes_metric_);
  return true;
}

Micros FaultInjector::NextStorageDelay() {
  if (plan_.storage.latency_spike_prob <= 0) return 0;
  bool spike;
  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    spike = storage_rng_.Bernoulli(plan_.storage.latency_spike_prob);
  }
  if (!spike) return 0;
  storage_spikes_.fetch_add(1);
  Mirror(storage_spikes_metric_);
  return plan_.storage.spike_latency_us;
}

}  // namespace aodb
