#include "actor/fault.h"

#include "actor/cluster.h"
#include "actor/membership.h"
#include "common/logging.h"

namespace aodb {

namespace {
// Distinct seed perturbations so the message and storage decision streams
// are independent of each other and of the directory/network Rngs.
constexpr uint64_t kMessageStream = 0x6d7367646f70ULL;   // "msgdrop"
constexpr uint64_t kStorageStream = 0x73746f726661ULL;   // "storfa"
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      message_rng_(plan_.seed ^ kMessageStream),
      storage_rng_(plan_.seed ^ kStorageStream) {}

void FaultInjector::Arm(Cluster* cluster) {
  cluster->SetFaultInjector(this);
  MetricsRegistry& reg = cluster->metrics();
  dropped_metric_.store(reg.GetCounter("fault.messages_dropped"),
                        std::memory_order_release);
  duplicated_metric_.store(reg.GetCounter("fault.messages_duplicated"),
                           std::memory_order_release);
  corrupted_metric_.store(reg.GetCounter("fault.messages_corrupted"),
                          std::memory_order_release);
  storage_errors_metric_.store(reg.GetCounter("fault.storage_errors"),
                               std::memory_order_release);
  storage_spikes_metric_.store(reg.GetCounter("fault.storage_spikes"),
                               std::memory_order_release);
  kills_metric_.store(reg.GetCounter("fault.silo_kills"),
                      std::memory_order_release);
  restarts_metric_.store(reg.GetCounter("fault.silo_restarts"),
                         std::memory_order_release);
  Executor* exec = cluster->client_executor();
  for (const SiloCrashEvent& ev : plan_.crashes) {
    SiloId silo = ev.silo;
    exec->PostAfter(ev.at_us, [cluster, silo] { cluster->KillSilo(silo); });
    if (ev.restart_after_us > 0) {
      exec->PostAfter(ev.at_us + ev.restart_after_us,
                      [cluster, silo] { cluster->RestartSilo(silo); });
    }
  }
  for (const SiloWedgeEvent& ev : plan_.wedges) {
    SiloId silo = ev.silo;
    if (ev.suppress_only) {
      exec->PostAfter(ev.at_us, [cluster, silo] {
        if (MembershipService* m = cluster->membership()) {
          AODB_LOG(Warn, "gray failure: suppressing silo %d's heartbeats",
                   static_cast<int>(silo));
          m->SuppressSilo(silo, true);
        }
      });
    } else {
      exec->PostAfter(ev.at_us, [cluster, silo] {
        AODB_LOG(Warn, "wedging silo %d (unannounced hang)",
                 static_cast<int>(silo));
        cluster->silo(silo)->SetWedged(true);
      });
    }
  }
}

bool FaultInjector::ShouldDropMessage() {
  if (plan_.message.drop_prob <= 0) return false;
  bool drop;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    drop = message_rng_.Bernoulli(plan_.message.drop_prob);
  }
  if (drop) {
    messages_dropped_.fetch_add(1);
    Mirror(dropped_metric_);
  }
  return drop;
}

bool FaultInjector::ShouldDuplicateMessage() {
  if (plan_.message.duplicate_prob <= 0) return false;
  bool dup;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    dup = message_rng_.Bernoulli(plan_.message.duplicate_prob);
  }
  if (dup) {
    messages_duplicated_.fetch_add(1);
    Mirror(duplicated_metric_);
  }
  return dup;
}

bool FaultInjector::MaybeCorruptFrame(std::string* frame) {
  if (plan_.message.corrupt_prob <= 0 || frame->empty()) return false;
  bool corrupt;
  uint64_t pick = 0;
  uint64_t bit = 0;
  {
    std::lock_guard<std::mutex> lock(message_mu_);
    corrupt = message_rng_.Bernoulli(plan_.message.corrupt_prob);
    if (corrupt) {
      // One draw covers both mutation kinds: values below the frame size
      // flip a bit at that offset, values at or above it truncate the frame
      // to (pick - size) bytes.
      pick = message_rng_.NextBelow(frame->size() * 2);
      bit = message_rng_.NextBelow(8);
    }
  }
  if (!corrupt) return false;
  if (pick < frame->size()) {
    (*frame)[pick] = static_cast<char>(
        static_cast<uint8_t>((*frame)[pick]) ^ (1u << bit));
  } else {
    frame->resize(pick - frame->size());
  }
  messages_corrupted_.fetch_add(1);
  Mirror(corrupted_metric_);
  return true;
}

Status FaultInjector::NextStorageFault() {
  if (plan_.storage.error_prob <= 0) return Status::OK();
  bool fail;
  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    fail = storage_rng_.Bernoulli(plan_.storage.error_prob);
  }
  if (!fail) return Status::OK();
  storage_errors_.fetch_add(1);
  Mirror(storage_errors_metric_);
  return Status(plan_.storage.error, "injected storage fault");
}

Micros FaultInjector::NextStorageDelay() {
  if (plan_.storage.latency_spike_prob <= 0) return 0;
  bool spike;
  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    spike = storage_rng_.Bernoulli(plan_.storage.latency_spike_prob);
  }
  if (!spike) return 0;
  storage_spikes_.fetch_add(1);
  Mirror(storage_spikes_metric_);
  return plan_.storage.spike_latency_us;
}

}  // namespace aodb
