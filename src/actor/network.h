// Datacenter network model: computes the one-way delay of a message between
// nodes (silos or the client). Used in both modes — in real mode the delay
// is realized by the timer thread, in simulation by virtual-time events.

#ifndef AODB_ACTOR_NETWORK_H_
#define AODB_ACTOR_NETWORK_H_

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "actor/actor_id.h"
#include "actor/runtime_options.h"
#include "common/rng.h"

namespace aodb {

/// Thread-safe latency model. Local (same-silo) messages have zero network
/// delay; remote messages pay base latency + transfer time + jitter.
/// Delivery is FIFO per (from, to) channel, like messages multiplexed over
/// one TCP connection: jitter never reorders messages between the same pair
/// of nodes.
class NetworkModel {
 public:
  NetworkModel(const NetworkOptions& options, uint64_t seed)
      : options_(options), jitter_seed_(seed) {}

  /// Raw one-way delay in microseconds for a message of `bytes` from node
  /// `from` to node `to` (no FIFO clamping). Either may be kClientSiloId.
  Micros Delay(SiloId from, SiloId to, int64_t bytes) {
    if (from == to) return 0;
    Micros base = (from == kClientSiloId || to == kClientSiloId)
                      ? options_.client_latency_us
                      : options_.silo_latency_us;
    Micros transfer = static_cast<Micros>(
        static_cast<double>(bytes) / options_.bytes_per_us);
    return base + transfer + NextJitter();
  }

  /// Absolute arrival time of a message sent at `now`, clamped strictly
  /// increasing per (from, to) channel so delivery is FIFO regardless of
  /// jitter. Use with Executor::PostAt.
  Micros FifoArrival(SiloId from, SiloId to, int64_t bytes, Micros now) {
    if (from == to) return now;
    Micros arrival = now + Delay(from, to, bytes);
    std::lock_guard<std::mutex> lock(fifo_mu_);
    Micros& last = last_arrival_[Channel(from, to)];
    if (arrival <= last) arrival = last + 1;
    last = arrival;
    return arrival;
  }

  /// Severs (or heals) the directed link from -> to. Partitions are
  /// asymmetric: severing A -> B leaves B -> A intact, modeling one-way
  /// reachability loss (a misconfigured route, an overloaded NIC queue).
  /// The cluster and the membership prober consult Partitioned() before
  /// putting anything on a remote link; a severed link silently eats
  /// traffic the way a black-holing route does.
  void SetPartitioned(SiloId from, SiloId to, bool severed) {
    std::lock_guard<std::mutex> lock(part_mu_);
    if (severed) {
      if (severed_.insert(Channel(from, to)).second) {
        partition_count_.fetch_add(1, std::memory_order_release);
      }
    } else if (severed_.erase(Channel(from, to)) > 0) {
      partition_count_.fetch_sub(1, std::memory_order_release);
    }
  }

  /// True if the directed link from -> to is currently severed. Lock-free
  /// when no partition is active (the common case on the send hot path).
  bool Partitioned(SiloId from, SiloId to) const {
    if (partition_count_.load(std::memory_order_acquire) == 0) return false;
    if (from == to) return false;
    std::lock_guard<std::mutex> lock(part_mu_);
    return severed_.count(Channel(from, to)) > 0;
  }

 private:
  static uint64_t Channel(SiloId from, SiloId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  /// Per-message jitter derived by hashing a relaxed atomic sequence number
  /// (one SplitMix64 step), so the hot send path takes only the FIFO lock —
  /// not a second mutex around a shared RNG. Deterministic under the
  /// single-threaded simulator.
  Micros NextJitter() {
    if (options_.jitter_us <= 0) return 0;
    uint64_t n = jitter_seq_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<Micros>(Rng(jitter_seed_ + n).NextU64() %
                               static_cast<uint64_t>(options_.jitter_us));
  }

  const NetworkOptions options_;
  const uint64_t jitter_seed_;
  std::atomic<uint64_t> jitter_seq_{0};
  std::mutex fifo_mu_;
  std::unordered_map<uint64_t, Micros> last_arrival_;
  /// Directed severed links (Channel-packed). The atomic count lets the
  /// un-partitioned hot path skip the lock entirely.
  std::atomic<int> partition_count_{0};
  mutable std::mutex part_mu_;
  std::unordered_set<uint64_t> severed_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_NETWORK_H_
