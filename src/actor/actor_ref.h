// Typed references to virtual actors: the client- and actor-side API for
// asynchronous method invocation.
//
//   ActorRef<CowActor> cow = cluster.Ref<CowActor>("cow-42");
//   Future<GeoPoint> loc = cow.Call(&CowActor::Location);
//   cow.Tell(&CowActor::ReportReading, reading);   // fire-and-forget
//
// Methods may return plain values, Status, Result<T>, or Future<T> (for
// actor methods that themselves await other actors). Arguments are copied
// into the message (messages are immutable values, per the actor model).

#ifndef AODB_ACTOR_ACTOR_REF_H_
#define AODB_ACTOR_ACTOR_REF_H_

#include <tuple>
#include <utility>

#include "actor/actor.h"
#include "actor/cluster.h"
#include "actor/envelope.h"
#include "actor/future.h"
#include "actor/method_registry.h"
#include "common/wire.h"

namespace aodb {

/// Per-call overrides: simulated CPU cost, wire size of the request, and
/// deadline budget.
struct CallOptions {
  Micros cost_us = kDefaultMessageCostUs;
  int64_t request_bytes = 128;
  int64_t response_bytes = 128;
  /// Relative deadline for this call (0 = inherit). Resolution: an explicit
  /// timeout here wins (clamped by any inherited turn deadline); otherwise
  /// the caller's turn deadline is inherited; otherwise
  /// RuntimeOptions::default_call_deadline_us applies. A call with a
  /// deadline is guaranteed to complete by it — with Status::Timeout if no
  /// real result arrived first.
  Micros timeout_us = 0;
  /// Shed class under overload: which watermark may reject this message
  /// with Status::Overloaded (see MessagePriority). Telemetry ingest marks
  /// itself kTelemetry; workflow/2PC traffic kControl.
  MessagePriority priority = MessagePriority::kQuery;
};

/// A typed handle to a virtual actor of type TActor. Cheap to copy. The
/// referenced actor is activated on first message.
template <typename TActor>
class ActorRef {
 public:
  ActorRef() : cluster_(nullptr), caller_silo_(kClientSiloId) {}
  ActorRef(Cluster* cluster, ActorId id, SiloId caller_silo,
           Principal principal = {})
      : cluster_(cluster),
        id_(std::move(id)),
        caller_silo_(caller_silo),
        principal_(std::move(principal)) {}

  const ActorId& id() const { return id_; }
  const std::string& key() const { return id_.key; }
  bool valid() const { return cluster_ != nullptr; }

  /// Returns a copy of this ref that sends with the given principal
  /// (tenant identity for access control).
  ActorRef WithPrincipal(Principal p) const {
    ActorRef copy = *this;
    copy.principal_ = std::move(p);
    return copy;
  }

  /// Asynchronously invokes an actor method, returning a future of its
  /// result. The request and the response each pay network delay if caller
  /// and target are on different nodes.
  template <typename R, typename C, typename... MArgs, typename... Args>
  Future<typename internal::CallResult<R>::type> Call(R (C::*method)(MArgs...),
                                                      Args&&... args) const {
    return CallWith(CallOptions{}, method, std::forward<Args>(args)...);
  }

  /// Call with explicit cost/size options (used by the calibrated workloads).
  template <typename R, typename C, typename... MArgs, typename... Args>
  Future<typename internal::CallResult<R>::type> CallWith(
      const CallOptions& opts, R (C::*method)(MArgs...),
      Args&&... args) const {
    static_assert(std::is_base_of_v<C, TActor>,
                  "method must belong to the referenced actor type");
    using RT = typename internal::CallResult<R>::type;
    Promise<RT> promise;
    Envelope env;
    env.target = id_;
    env.caller_silo = caller_silo_;
    env.principal = principal_;
    env.cost_us = opts.cost_us;
    env.approx_bytes = opts.request_bytes;
    env.priority = opts.priority;
    SiloId caller = caller_silo_;
    Cluster* cluster = cluster_;
    int64_t response_bytes = opts.response_bytes;
    auto args_tuple =
        std::make_shared<std::tuple<std::decay_t<MArgs>...>>(
            std::forward<Args>(args)...);
    env.fn = [method, args_tuple, promise, caller, cluster,
              response_bytes](ActorBase& base) {
      TActor& actor = static_cast<TActor&>(base);
      SiloId here = actor.ctx().silo();
      auto deliver = [cluster, promise, caller, here,
                      response_bytes](Result<RT>&& r) {
        cluster->SendReply(here, caller, response_bytes,
                           [promise, r = std::move(r)]() mutable {
                             promise.SetResult(std::move(r));
                           });
      };
      if constexpr (IsFuture<R>::value) {
        std::apply(
            [&](auto&... unpacked) {
              (actor.*method)(unpacked...)
                  .OnReady([deliver](Result<RT>&& r) mutable {
                    deliver(std::move(r));
                  });
            },
            *args_tuple);
      } else if constexpr (std::is_void_v<R>) {
        std::apply([&](auto&... unpacked) { (actor.*method)(unpacked...); },
                   *args_tuple);
        deliver(Result<RT>(Unit{}));
      } else {
        R value = std::apply(
            [&](auto&... unpacked) { return (actor.*method)(unpacked...); },
            *args_tuple);
        deliver(Result<RT>(std::move(value)));
      }
    };
    env.fail = [promise](const Status& st) { promise.SetError(st); };
    env.deadline_us = ResolveDeadline(opts.timeout_us);
    // Trace propagation: inside a traced turn the active span becomes the
    // parent of this call; at an untraced root the tracer makes the
    // sampling decision and this call opens the root span (completed when
    // the reply settles, below).
    env.trace = CurrentTraceContext();
    bool trace_root = false;
    if (!env.trace.valid() && cluster_->tracer().enabled()) {
      env.trace = cluster_->tracer().MaybeStartTrace();
      if (env.trace.sampled) {
        env.trace.span_id = cluster_->tracer().NewSpanId();
        trace_root = true;
      }
    }
    TraceContext trace = env.trace;
    // Wire lane: only when the full signature is wire-encodable (checked at
    // compile time — unserializable test actors simply never take it) AND
    // the method is registered. Cluster::Send picks the lane after
    // placement; arguments are encoded lazily on an actual remote hop.
    if constexpr (WireSupported<RT, std::decay_t<MArgs>...>::value) {
      if (const WireMethodInfo* info =
              MethodRegistry::Global().Find(method)) {
        env.wire = info;
        env.wire_encode_args = [args_tuple] {
          // Per-(thread, argument-shape) size hint: repeated calls of the
          // same method encode into a right-sized buffer, no regrowth.
          thread_local size_t last_args_size = 0;
          BufWriter w;
          w.Reserve(last_args_size);
          WireEncodeTuple(&w, *args_tuple);
          last_args_size = w.size();
          return w.Release();
        };
        env.on_wire_reply = [promise](Result<std::string>&& frame) {
          promise.SetResult(DecodeWireReply<RT>(std::move(frame)));
        };
      }
    }
    Micros deadline = env.deadline_us;
    const WireMethodInfo* wire_info = env.wire;
    cluster_->Send(std::move(env));
    Future<RT> future = promise.GetFuture();
    if (trace_root) {
      Tracer* tracer = &cluster->tracer();
      Clock* clk = cluster->ExecutorFor(caller)->clock();
      Micros start_us = clk->Now();
      ActorId target = id_;
      std::string name =
          wire_info != nullptr ? std::string(wire_info->name) : id_.type;
      future.OnReady([tracer, clk, trace, start_us, caller, target,
                      name](Result<RT>&&) {
        SpanRecord rec;
        rec.trace_id = trace.trace_id;
        rec.span_id = trace.span_id;
        rec.parent_span_id = 0;
        rec.name = name;
        rec.actor = target.ToString();
        rec.kind = "client";
        rec.silo = caller;
        rec.start_us = start_us;
        rec.end_us = clk->Now();
        tracer->Record(std::move(rec));
      });
    }
    if (deadline > 0) {
      // Caller-side watchdog: whatever happens to the request (wedged silo,
      // lost reply, slow actor), the promise settles by the deadline.
      cluster->ExecutorFor(caller)->PostAt(
          deadline, [cluster, promise, future] {
            if (future.Ready()) return;
            cluster->NoteDeadlineExpired();
            promise.SetError(Status::Timeout("call deadline exceeded"));
          });
    }
    return future;
  }

  /// Fire-and-forget invocation: no reply, failures are dropped.
  template <typename R, typename C, typename... MArgs, typename... Args>
  void Tell(R (C::*method)(MArgs...), Args&&... args) const {
    TellWith(CallOptions{}, method, std::forward<Args>(args)...);
  }

  /// Tell with explicit cost/size options.
  template <typename R, typename C, typename... MArgs, typename... Args>
  void TellWith(const CallOptions& opts, R (C::*method)(MArgs...),
                Args&&... args) const {
    static_assert(std::is_base_of_v<C, TActor>,
                  "method must belong to the referenced actor type");
    Envelope env;
    env.target = id_;
    env.caller_silo = caller_silo_;
    env.principal = principal_;
    env.cost_us = opts.cost_us;
    env.approx_bytes = opts.request_bytes;
    env.priority = opts.priority;
    auto args_tuple =
        std::make_shared<std::tuple<std::decay_t<MArgs>...>>(
            std::forward<Args>(args)...);
    env.fn = [method, args_tuple](ActorBase& base) {
      TActor& actor = static_cast<TActor&>(base);
      std::apply([&](auto&... unpacked) { (void)(actor.*method)(unpacked...); },
                 *args_tuple);
    };
    // Tells carry the deadline (expired ones are dropped before dispatch)
    // but get no watchdog: there is no promise to settle.
    env.deadline_us = ResolveDeadline(opts.timeout_us);
    // Trace propagation mirrors CallWith; a root tell has no reply to wait
    // for, so its root span is recorded immediately (zero duration).
    env.trace = CurrentTraceContext();
    if (!env.trace.valid() && cluster_->tracer().enabled()) {
      env.trace = cluster_->tracer().MaybeStartTrace();
      if (env.trace.sampled) {
        env.trace.span_id = cluster_->tracer().NewSpanId();
        Micros now = cluster_->ExecutorFor(caller_silo_)->clock()->Now();
        SpanRecord rec;
        rec.trace_id = env.trace.trace_id;
        rec.span_id = env.trace.span_id;
        rec.parent_span_id = 0;
        rec.name = id_.type;
        rec.actor = id_.ToString();
        rec.kind = "tell";
        rec.silo = caller_silo_;
        rec.start_us = now;
        rec.end_us = now;
        cluster_->tracer().Record(std::move(rec));
      }
    }
    // Wire lane for tells: no reply handler — the receive-side invoker
    // skips result encoding when the reply hook is empty.
    if constexpr (WireSupported<std::decay_t<MArgs>...>::value) {
      if (const WireMethodInfo* info =
              MethodRegistry::Global().Find(method)) {
        env.wire = info;
        env.wire_encode_args = [args_tuple] {
          thread_local size_t last_args_size = 0;
          BufWriter w;
          w.Reserve(last_args_size);
          WireEncodeTuple(&w, *args_tuple);
          last_args_size = w.size();
          return w.Release();
        };
      }
    }
    cluster_->Send(std::move(env));
  }

 private:
  /// Absolute deadline for a call sent now: explicit timeout, clamped by
  /// the inherited turn deadline, falling back to the cluster default (see
  /// CallOptions::timeout_us). Returns 0 for "no deadline".
  Micros ResolveDeadline(Micros timeout_us) const {
    Micros deadline = 0;
    if (timeout_us > 0) {
      deadline = cluster_->ExecutorFor(caller_silo_)->clock()->Now() +
                 timeout_us;
    }
    Micros inherited = internal::CurrentTurnDeadline();
    if (inherited > 0 && (deadline == 0 || inherited < deadline)) {
      deadline = inherited;
    }
    if (deadline == 0) {
      Micros def = cluster_->options().default_call_deadline_us;
      if (def > 0) {
        deadline =
            cluster_->ExecutorFor(caller_silo_)->clock()->Now() + def;
      }
    }
    return deadline;
  }

  Cluster* cluster_;
  ActorId id_;
  SiloId caller_silo_;
  Principal principal_;
};

// Out-of-line definitions of the templated reference factories declared in
// actor.h / cluster.h (they need the complete ActorRef type).

template <typename T>
ActorRef<T> ActorContext::Ref(const std::string& key) const {
  return ActorRef<T>(cluster_, ActorId{T::kTypeName, key}, silo_);
}

template <typename T>
ActorRef<T> Cluster::Ref(const std::string& key) {
  return ActorRef<T>(this, ActorId{T::kTypeName, key}, kClientSiloId);
}

template <typename T>
ActorRef<T> ActorContext::RefAs(const std::string& type,
                                const std::string& key) const {
  return ActorRef<T>(cluster_, ActorId{type, key}, silo_);
}

template <typename T>
ActorRef<T> Cluster::RefAs(const std::string& type, const std::string& key) {
  return ActorRef<T>(this, ActorId{type, key}, kClientSiloId);
}

}  // namespace aodb

#endif  // AODB_ACTOR_ACTOR_REF_H_
