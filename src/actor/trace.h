// Distributed tracing for the actor runtime: a TraceContext rides on every
// Envelope, crosses the wire boundary inside the sealed frame, survives
// retries/failover and workflow steps, and every traced actor turn records a
// span into a lock-free per-silo ring buffer. Cluster::DumpTraceJson exports
// the rings as parent-linked traces.
//
// Id format: trace ids and span ids are small monotonically increasing
// integers drawn from per-cluster atomic counters (not random 128-bit ids).
// This keeps the wire overhead to a couple of varint bytes, makes dumps
// deterministic under the simulator, and is sufficient because traces never
// leave one cluster. Span id 0 is reserved for "no span" (a root).
//
// Sampling: the root-creation site (an external client call with no active
// trace) samples 1-in-N via TraceOptions::sample_every; everything caused by
// a sampled root inherits the sampled bit, so traces are always complete.

#ifndef AODB_ACTOR_TRACE_H_
#define AODB_ACTOR_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "actor/actor_id.h"
#include "common/clock.h"

namespace aodb {

class MetricsRegistry;

/// Causality context carried on every envelope. `span_id` is the span that
/// caused the message (the parent of any span the receiver opens).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

/// One completed unit of traced work (an actor turn, a client call, a
/// workflow step). Parent-linked via `parent_span_id`.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  /// Method name for wire calls, actor type for closure turns, or a logical
  /// label ("client", "workflow", "txn").
  std::string name;
  /// Target actor ("Type/key"), empty for non-turn spans.
  std::string actor;
  /// "turn" | "client" | "tell" | "workflow" | "txn".
  std::string kind;
  SiloId silo = kClientSiloId;
  Micros start_us = 0;
  Micros end_us = 0;
  /// Time the envelope waited in the mailbox before this turn (turn spans).
  Micros queue_wait_us = 0;
};

/// Fixed-capacity lossy span sink, one per silo. Writers claim a slot with a
/// fetch_add cursor and take a per-slot atomic try-lock before touching the
/// record, so concurrent writers that wrap onto the same slot never race:
/// the loser drops its span (counted by the tracer). Readers (Collect) take
/// the same per-slot lock, so a dump is safe while the runtime is hot.
class SpanRing {
 public:
  explicit SpanRing(size_t capacity);

  /// Attempts to store the span; returns false if the slot was contended
  /// (span dropped).
  bool Push(SpanRecord rec);

  /// Appends every stored span to `out` (unordered; at most `capacity`
  /// newest spans survive wrap-around).
  void Collect(std::vector<SpanRecord>* out) const;

 private:
  struct Slot {
    std::atomic<bool> busy{false};
    bool used = false;
    SpanRecord rec;
  };

  const size_t mask_;
  std::atomic<uint64_t> cursor_{0};
  std::unique_ptr<Slot[]> slots_;
};

/// Per-cluster trace collector: id allocation, sampling decisions, and the
/// per-silo span rings (index num_silos holds client-side spans).
class Tracer {
 public:
  /// `sample_every` <= 0 disables tracing (no roots are ever started);
  /// 1 samples everything, N samples one root in N. Metrics (spans
  /// recorded/dropped, traces started) are registered on `metrics`.
  Tracer(int num_silos, int sample_every, int ring_capacity,
         MetricsRegistry* metrics);

  bool enabled() const { return sample_every_ > 0; }

  /// Root-creation decision for an external call with no active trace.
  /// Returns an invalid context when tracing is off or this root lost the
  /// 1-in-N draw.
  TraceContext MaybeStartTrace();

  /// Allocates a fresh span id (callers build child contexts with it).
  uint64_t NewSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a completed span into the ring of `rec.silo`
  /// (kClientSiloId → the client ring). No-op for unsampled records.
  void Record(SpanRecord rec);

  /// All spans currently buffered, across every ring (unordered).
  std::vector<SpanRecord> Collect() const;

  /// Spans of one trace, sorted by start time.
  std::vector<SpanRecord> CollectTrace(uint64_t trace_id) const;

  /// Every buffered trace as JSON:
  /// {"traces":[{"trace_id":N,"spans":[{...parent-linked...}]}]}.
  std::string DumpJson() const;

 private:
  size_t RingIndex(SiloId silo) const;

  const int num_silos_;
  const int sample_every_;
  std::atomic<uint64_t> root_draw_{0};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::vector<std::unique_ptr<SpanRing>> rings_;
  class Counter* spans_recorded_ = nullptr;
  class Counter* spans_dropped_ = nullptr;
  class Counter* traces_started_ = nullptr;
};

namespace internal {

/// Trace context of the actor turn (or client scope) currently running on
/// this thread; sends made inside it inherit the context, which is how
/// causality propagates without any plumbing in actor method signatures.
/// Mirrors CurrentTurnDeadline (envelope.h).
inline TraceContext& CurrentTraceContextSlot() {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace internal

/// Context inherited by sends on this thread (invalid outside any traced
/// scope).
inline const TraceContext& CurrentTraceContext() {
  return internal::CurrentTraceContextSlot();
}

/// RAII scope installing `ctx` as the current trace context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(internal::CurrentTraceContextSlot()) {
    internal::CurrentTraceContextSlot() = ctx;
  }
  ~ScopedTraceContext() { internal::CurrentTraceContextSlot() = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace aodb

#endif  // AODB_ACTOR_TRACE_H_
