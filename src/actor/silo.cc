#include "actor/silo.h"

#include <algorithm>
#include <cassert>

#include "actor/cluster.h"
#include "actor/method_registry.h"
#include "common/logging.h"

namespace aodb {

namespace {
/// Simulated CPU cost of constructing an activation / running lifecycle
/// hooks (state I/O is charged separately by the storage provider).
constexpr Micros kLifecycleCostUs = 50;
/// Back-off before re-routing a message that raced with a deactivation.
constexpr Micros kRerouteDelayUs = 50;
}  // namespace

Silo::Silo(SiloId id, Cluster* cluster, Executor* executor)
    : id_(id),
      cluster_(cluster),
      executor_(executor),
      // The simulator charges each task's declared cost up front, so one
      // task must stay one envelope there or virtual-time results change.
      turn_batch_(executor->SupportsTurnBatching()
                      ? std::max(1, cluster->options().max_turn_batch)
                      : 1),
      shed_watermark_(cluster->options().overload.shed_watermark),
      shed_hard_watermark_(
          cluster->options().overload.shed_hard_watermark > 0
              ? cluster->options().overload.shed_hard_watermark
              : 2 * cluster->options().overload.shed_watermark),
      max_resident_(cluster->options().max_resident_activations) {}

void Silo::Deliver(Envelope env) {
  if (!alive()) {
    // Message raced with (or arrived after) a crash: the sender observes a
    // broken connection. Calls fail fast and may retry; tells are lost.
    if (env.fail) env.fail(Status::Unavailable("silo down"));
    return;
  }
  env.enqueue_us = executor_->clock()->Now();
  if (wedged()) {
    // Unannounced hang: the message is accepted and then nothing happens.
    // The caller sees pure silence — exactly the partial failure that
    // lease-based membership exists to bound.
    std::lock_guard<std::mutex> lock(mu_);
    wedge_backlog_.push_back(std::move(env));
    return;
  }
  if (shed_watermark_ > 0 && env.priority != MessagePriority::kControl) {
    // Silo-wide load shedding, lowest priority class first: telemetry
    // ingest at the soft watermark, interactive queries only past the hard
    // one, control traffic (workflows, 2PC, lifecycle) never. The sender
    // sees Overloaded — retryable with backoff, no failover re-placement.
    int64_t queued = queued_.load(std::memory_order_relaxed);
    int64_t mark = env.priority == MessagePriority::kTelemetry
                       ? shed_watermark_
                       : shed_hard_watermark_;
    if (queued >= mark) {
      cluster_->NoteShed(env.priority);
      cluster_->flight_recorder().Record(FlightEventType::kShed, id_,
                                         env.target.ToString(),
                                         env.trace.trace_id, queued,
                                         env.enqueue_us);
      if (env.trace.sampled) {
        AODB_LOG(Warn,
                 "silo %d shedding %s send to %s (%lld queued, trace %llu)",
                 static_cast<int>(id_),
                 env.priority == MessagePriority::kTelemetry ? "telemetry"
                                                             : "query",
                 env.target.ToString().c_str(),
                 static_cast<long long>(queued),
                 static_cast<unsigned long long>(env.trace.trace_id));
      }
      if (env.fail) {
        env.fail(Status::Overloaded("silo " + std::to_string(id_) +
                                    " shedding load"));
      }
      return;
    }
  }
  ActivationPtr act;
  bool is_new = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(env.target);
    if (it != catalog_.end()) act = it->second;
  }
  if (!act) {
    // No activation here: only create one if the directory still says this
    // silo owns the actor. Mail can arrive after a migration or idle
    // deactivation already erased the activation (it was routed before the
    // directory moved); resurrecting a second activation here would
    // split-brain the actor's state, so stale mail re-routes instead. A
    // PAGED entry pointing here is the exception: the actor is registered
    // but cold (working-set eviction kept its registration), so this create
    // is a measured activation fault, not stale mail.
    auto owner = cluster_->directory().LookupEntry(env.target);
    if (!owner.has_value() || owner->silo != id_) {
      Reroute(std::move(env));
      return;
    }
    // Resolve the mailbox cap and per-type depth gauge outside mu_ (both
    // take cluster/registry locks); the emplace re-checks for a racing
    // creator.
    auto fresh = std::make_shared<Activation>(env.target);
    fresh->mailbox_limit = cluster_->MailboxLimitFor(env.target.type);
    fresh->depth_gauge = cluster_->MailboxDepthGauge(env.target.type);
    fresh->resident_limit = cluster_->ResidentLimitFor(env.target.type);
    if (owner->paged) {
      fresh->fault_in = true;
      fresh->fault_start_us = env.enqueue_us;
    }
    bool evict_needed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = catalog_.emplace(env.target, fresh);
      act = it->second;
      if (inserted) {
        ++stats_.activations_created;
        is_new = true;
        LruPushBackLocked(act);
        if (act->resident_limit > 0) {
          ++type_residency_[act->id.type].resident;
        }
        evict_needed = OverResidencyLocked(act);
      }
    }
    if (is_new) {
      if (owner->paged) {
        // Only the winning creator clears the paged flag and counts the
        // fault; BeginActivate stamps the load latency once OnActivate's
        // storage read completes.
        cluster_->directory().ClearPaged(env.target, id_);
        cluster_->NoteFaultIn();
      }
      if (evict_needed) MaybeScheduleEviction();
    }
  }
  bool schedule = false;
  bool reroute = false;
  bool mailbox_full = false;
  int64_t depth = 0;
  Micros cost = 0;
  {
    std::lock_guard<std::mutex> lock(act->mu);
    switch (act->state) {
      case ActState::kClosed:
        reroute = true;
        break;
      case ActState::kDeactivating:
        // Queued; re-routed when the deactivation completes. Falls under
        // the same bound as the live states below.
      case ActState::kLoading:
      case ActState::kScheduled:
      case ActState::kRunning:
        if (act->mailbox_limit > 0 &&
            static_cast<int>(act->mailbox.size()) >= act->mailbox_limit) {
          // Bounded mailbox: reject instead of queueing without limit. The
          // caller's retry policy backs off and re-sends to the SAME
          // placement once the actor drains.
          mailbox_full = true;
          depth = static_cast<int64_t>(act->mailbox.size());
          break;
        }
        act->mailbox.push_back(std::move(env));
        queued_.fetch_add(1, std::memory_order_relaxed);
        act->depth_gauge->Add(1);
        break;
      case ActState::kIdle:
        assert(act->mailbox.empty());
        cost = env.cost_us;
        act->mailbox.push_back(std::move(env));
        queued_.fetch_add(1, std::memory_order_relaxed);
        act->depth_gauge->Add(1);
        act->state = ActState::kScheduled;
        schedule = true;
        break;
    }
  }
  if (mailbox_full) {
    cluster_->NoteMailboxReject();
    cluster_->flight_recorder().Record(FlightEventType::kMailboxReject, id_,
                                       env.target.ToString(),
                                       env.trace.trace_id, depth,
                                       env.enqueue_us);
    if (env.trace.sampled) {
      AODB_LOG(Warn,
               "mailbox full for %s on silo %d (depth %lld, trace %llu)",
               env.target.ToString().c_str(), static_cast<int>(id_),
               static_cast<long long>(depth),
               static_cast<unsigned long long>(env.trace.trace_id));
    }
    if (env.fail) {
      env.fail(Status::Overloaded("mailbox full for " +
                                  env.target.ToString()));
    }
    return;
  }
  if (reroute) {
    Reroute(std::move(env));
    return;
  }
  if (is_new) BeginActivate(act);
  if (schedule) PostTurn(act, cost);
}

void Silo::BeginActivate(const ActivationPtr& act) {
  executor_->Post(Task{
      [this, act] {
        const Cluster::Factory* factory = cluster_->GetFactory(act->id.type);
        auto fail_all = [this, act](const Status& st) {
          std::deque<Envelope> pending;
          {
            std::lock_guard<std::mutex> lock(act->mu);
            act->state = ActState::kClosed;
            pending.swap(act->mailbox);
          }
          DrainQueueAccounting(act, pending.size());
          cluster_->directory().Remove(act->id, id_);
          {
            std::lock_guard<std::mutex> lock(mu_);
            catalog_.erase(act->id);
            LruUnlinkLocked(act);
            if (act->resident_limit > 0) {
              --type_residency_[act->id.type].resident;
            }
            ++stats_.activations_removed;
          }
          for (auto& e : pending) {
            if (e.fail) e.fail(st);
          }
        };
        if (factory == nullptr) {
          AODB_LOG(Error, "no factory for actor type %s",
                   act->id.type.c_str());
          fail_all(Status::InvalidArgument("unregistered actor type: " +
                                           act->id.type));
          return;
        }
        std::unique_ptr<ActorBase> actor = (*factory)(act->id);
        actor->BindContext(std::make_unique<ActorContext>(
            act->id, id_, cluster_, executor_));
        {
          std::lock_guard<std::mutex> lock(act->mu);
          act->actor = std::move(actor);
        }
        // State I/O inside OnActivate retries under RetryAsync; the flight
        // scope makes an exhausted retry attributable to this silo.
        ScopedFlightScope fscope(&cluster_->flight_recorder(), id_);
        act->actor->OnActivate().OnReady(
            [this, act, fail_all](Result<Status>&& r) {
              Status st = r.ok() ? r.value() : r.status();
              if (!st.ok()) {
                AODB_LOG(Warn, "activation of %s failed: %s",
                         act->id.ToString().c_str(), st.ToString().c_str());
                fail_all(st);
                return;
              }
              bool schedule = false;
              Micros cost = 0;
              Micros now = executor_->clock()->Now();
              {
                std::lock_guard<std::mutex> lock(act->mu);
                // A crash may have closed the activation while OnActivate
                // was in flight; leave it closed (its mailbox was failed).
                if (act->state == ActState::kClosed) return;
                act->last_active.store(now, std::memory_order_relaxed);
                if (!act->mailbox.empty()) {
                  act->state = ActState::kScheduled;
                  cost = act->mailbox.front().cost_us;
                  schedule = true;
                } else {
                  act->state = ActState::kIdle;
                }
              }
              cluster_->flight_recorder().Record(FlightEventType::kActivate,
                                                 id_, act->id.ToString(),
                                                 /*trace_id=*/0, /*detail=*/0,
                                                 now);
              if (act->fault_in) {
                // Cold hit -> storage load complete: the fault's load leg.
                // (The end-to-end queue wait is stamped by the first turn.)
                Micros load_us = now - act->fault_start_us;
                cluster_->NoteFaultLoad(load_us);
                cluster_->flight_recorder().Record(FlightEventType::kFaultIn,
                                                   id_, act->id.ToString(),
                                                   /*trace_id=*/0, load_us,
                                                   now);
              }
              // Loading is over: the activation's recency rank starts now.
              LruTouchThrottled(act, now);
              if (schedule) PostTurn(act, cost);
            });
      },
      kLifecycleCostUs});
}

void Silo::PostTurn(const ActivationPtr& act, Micros cost_us) {
  executor_->Post(Task{[this, act] { RunTurn(act); }, cost_us});
}

void Silo::RunTurn(const ActivationPtr& act) {
  // One posted task drains up to turn_batch_ envelopes: a hot actor pays
  // the executor round-trip (queue push, possible wakeup, dequeue) once per
  // batch rather than once per message. The cap keeps a flooded actor from
  // monopolizing its worker; per-envelope deadline, tracing, and profiling
  // semantics are identical to unbatched processing.
  int64_t processed = 0;
  bool closed = false;
  for (int n = 0; n < turn_batch_; ++n) {
    Envelope env;
    {
      std::lock_guard<std::mutex> lock(act->mu);
      if (n == 0) {
        if (act->state != ActState::kScheduled || act->mailbox.empty()) return;
        act->state = ActState::kRunning;
      } else {
        // Kill() may have closed the activation between envelopes; stop —
        // the mailbox was already failed/drained by the closer.
        if (act->state != ActState::kRunning || act->mailbox.empty()) {
          closed = act->state != ActState::kRunning;
          break;
        }
      }
      env = std::move(act->mailbox.front());
      act->mailbox.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      act->depth_gauge->Add(-1);
    }
    ProcessEnvelope(act, env);
    ++processed;
  }
  messages_processed_.fetch_add(processed, std::memory_order_relaxed);
  if (closed) return;
  bool schedule = false;
  bool migrate = false;
  Micros cost = 0;
  {
    std::lock_guard<std::mutex> lock(act->mu);
    // Kill() may have closed the activation while this turn ran (real
    // mode); do not resurrect it to idle.
    if (act->state == ActState::kClosed) return;
    act->last_active.store(executor_->clock()->Now(),
                           std::memory_order_relaxed);
    if (act->migrate_to != kNoSilo) {
      // A migration was requested mid-turn: transition straight from
      // kRunning to kDeactivating (never passing kIdle, so the idle
      // sweeper cannot claim the activation in between). Remaining mailbox
      // entries re-route to the new placement in FinishDeactivation.
      act->state = ActState::kDeactivating;
      migrate = true;
    } else if (!act->mailbox.empty()) {
      act->state = ActState::kScheduled;
      cost = act->mailbox.front().cost_us;
      schedule = true;
    } else {
      act->state = ActState::kIdle;
    }
  }
  if (migrate) {
    FinishDeactivation(act, nullptr);
    return;
  }
  // Splice to the recent end of the LRU; throttled so hot actors do not
  // take the silo-wide lock every turn. The sweep and the paging eviction
  // pass pop victims from the stale front.
  LruTouchThrottled(act, executor_->clock()->Now());
  if (schedule) PostTurn(act, cost);
}

void Silo::ProcessEnvelope(const ActivationPtr& act, Envelope& env) {
  Micros turn_start = executor_->clock()->Now();
  Micros queue_wait = env.enqueue_us > 0 ? turn_start - env.enqueue_us : 0;
  if (act->fault_in) {
    // First turn after an activation fault: this envelope's queue wait is
    // the full caller-visible fault penalty (enqueue -> storage load ->
    // dispatch). Plain field: set before the activation was published,
    // cleared here on the serialized turn path.
    act->fault_in = false;
    cluster_->NoteFaultWait(queue_wait);
  }
  bool expired = env.deadline_us > 0 && turn_start > env.deadline_us;
  if (expired) {
    // Too late to be useful: don't burn a turn on work whose caller has
    // already been timed out by the deadline watchdog.
    cluster_->NoteDeadlineExpired();
    int64_t depth = MailboxDepth(act);
    cluster_->flight_recorder().Record(
        FlightEventType::kDeadlineTimeout, id_, env.target.ToString(),
        env.trace.trace_id, turn_start - env.deadline_us, turn_start);
    if (env.trace.sampled) {
      AODB_LOG(Warn,
               "dropping expired turn for %s on silo %d (mailbox depth %lld, "
               "trace %llu)",
               env.target.ToString().c_str(), static_cast<int>(id_),
               static_cast<long long>(depth),
               static_cast<unsigned long long>(env.trace.trace_id));
    }
    if (env.fail) env.fail(Status::Timeout("deadline expired before dispatch"));
  } else {
    act->actor->ctx().caller_ = env.principal;
    // Expose the turn's deadline so nested calls made inside `fn` inherit
    // the caller's remaining budget (save/restore for reentrancy).
    Micros saved_deadline = internal::CurrentTurnDeadline();
    internal::CurrentTurnDeadline() = env.deadline_us;
    // Open a turn span when the message is traced; sends made inside `fn`
    // inherit it as their parent through the thread-local context.
    TraceContext turn_ctx;
    if (env.trace.sampled) {
      turn_ctx.trace_id = env.trace.trace_id;
      turn_ctx.span_id = cluster_->tracer().NewSpanId();
      turn_ctx.sampled = true;
    }
    {
      ScopedTraceContext scope(turn_ctx);
      ScopedFlightScope fscope(&cluster_->flight_recorder(), id_);
      if (env.fn) env.fn(*act->actor);
    }
    internal::CurrentTurnDeadline() = saved_deadline;
    Micros turn_end = executor_->clock()->Now();
    Micros exec_us = turn_end - turn_start;
    cluster_->RecordTurnProfile(env.target.type, queue_wait, exec_us);
    if (turn_ctx.sampled) {
      SpanRecord rec;
      rec.trace_id = turn_ctx.trace_id;
      rec.span_id = turn_ctx.span_id;
      rec.parent_span_id = env.trace.span_id;
      rec.name = env.wire != nullptr ? env.wire->name : env.target.type;
      rec.actor = env.target.ToString();
      rec.kind = "turn";
      rec.silo = id_;
      rec.start_us = turn_start;
      rec.end_us = turn_end;
      rec.queue_wait_us = queue_wait;
      cluster_->tracer().Record(std::move(rec));
    }
    Micros slow = cluster_->options().slow_turn_threshold_us;
    if (slow > 0 && exec_us >= slow) {
      int64_t depth = MailboxDepth(act);
      cluster_->flight_recorder().Record(FlightEventType::kSlowTurn, id_,
                                         env.target.ToString(),
                                         env.trace.trace_id, exec_us,
                                         turn_end);
      AODB_LOG(Warn,
               "slow turn: %s ran %lld us (threshold %lld us) on silo %d "
               "(mailbox depth %lld, trace %llu)",
               env.target.ToString().c_str(),
               static_cast<long long>(exec_us), static_cast<long long>(slow),
               static_cast<int>(id_), static_cast<long long>(depth),
               static_cast<unsigned long long>(env.trace.trace_id));
    }
  }
}

int Silo::SweepIdle(Micros idle_timeout_us) {
  // The LRU list orders activations by recency (stalest at the front), so
  // the sweep walks from the front and stops at the first fresh entry: cost
  // is O(stale candidates), independent of how many activations are
  // resident. The atomic last-active stamp pre-filters without taking any
  // activation's lock.
  Micros now = executor_->clock()->Now();
  std::vector<ActivationPtr> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& act : lru_) {
      ++stats_.sweep_examined;
      if (now - act->last_active.load(std::memory_order_relaxed) <
          idle_timeout_us) {
        break;
      }
      candidates.push_back(act);
    }
  }
  int initiated = 0;
  for (auto& act : candidates) {
    bool victim = false;
    {
      // Authoritative re-check under the activation's own lock: it may have
      // become active (or started closing) since the snapshot.
      std::lock_guard<std::mutex> lock(act->mu);
      if (act->state == ActState::kIdle && act->mailbox.empty() &&
          now - act->last_active.load(std::memory_order_relaxed) >=
              idle_timeout_us) {
        act->state = ActState::kDeactivating;
        victim = true;
      }
    }
    if (victim) {
      FinishDeactivation(act, nullptr);
      ++initiated;
    }
  }
  return initiated;
}

void Silo::LruTouchThrottled(const ActivationPtr& act, Micros now) {
  constexpr Micros kLruTouchIntervalUs = 100 * kMicrosPerMilli;
  if (now - act->lru_stamp.load(std::memory_order_relaxed) <
      kLruTouchIntervalUs) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  LruTouchLocked(act);
}

void Silo::LruPushBackLocked(const ActivationPtr& act) {
  lru_.push_back(act);
  act->lru_it = std::prev(lru_.end());
  act->in_lru = true;
  act->lru_stamp.store(executor_->clock()->Now(), std::memory_order_relaxed);
}

void Silo::LruTouchLocked(const ActivationPtr& act) {
  if (!act->in_lru) return;
  lru_.splice(lru_.end(), lru_, act->lru_it);
  act->lru_stamp.store(executor_->clock()->Now(), std::memory_order_relaxed);
}

void Silo::LruUnlinkLocked(const ActivationPtr& act) {
  if (!act->in_lru) return;
  lru_.erase(act->lru_it);
  act->in_lru = false;
}

bool Silo::OverResidencyLocked(const ActivationPtr& act) const {
  if (max_resident_ > 0 &&
      static_cast<int64_t>(catalog_.size()) - pending_page_outs_ >
          max_resident_) {
    return true;
  }
  if (act->resident_limit > 0) {
    auto it = type_residency_.find(act->id.type);
    if (it != type_residency_.end() &&
        it->second.resident - it->second.pending_out > act->resident_limit) {
      return true;
    }
  }
  return false;
}

void Silo::MaybeScheduleEviction() {
  if (eviction_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
  // Cost 0: the pass is bookkeeping, not simulated actor work — and paging
  // is off (max_resident_activations = 0) in the virtual-time figure
  // benches, so no eviction task ever posts there.
  executor_->Post(Task{[this] { RunEvictionPass(); }, 0});
}

void Silo::RunEvictionPass() {
  // Re-arm before working: an insert racing this pass either sees the flag
  // still set (this pass will observe its activation) or schedules a fresh
  // pass. Missing a trigger entirely is not possible.
  eviction_scheduled_.store(false, std::memory_order_release);
  if (!alive()) return;
  // Over-cap types whose oldest entry hides deep behind fresh silo-wide
  // entries are found within this bound per pass; the next over-cap insert
  // re-triggers, so enforcement converges without an O(resident) walk.
  constexpr int kTypeScanBound = 128;
  // Each round either pages one victim out or rotates one busy entry to the
  // recent end; the guard bounds a pass where everything stale is busy.
  constexpr int kMaxRounds = 1024;
  // Hysteresis: once the hard cap trips, drain to a low-water mark a bit
  // below it so one pass (one executor wakeup, one LRU walk) absorbs a
  // burst of faults instead of re-arming per over-cap insert. Zero slack
  // for small caps — tests and DST sweeps keep exact-cap semantics.
  const int64_t slack =
      max_resident_ > 0 ? std::min<int64_t>(max_resident_ / 64, 4096) : 0;
  const int64_t low_water = max_resident_ - slack;
  bool draining = false;
  for (int round = 0; round < kMaxRounds; ++round) {
    ActivationPtr victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      int64_t resident =
          static_cast<int64_t>(catalog_.size()) - pending_page_outs_;
      if (max_resident_ > 0 && resident > max_resident_) draining = true;
      if (draining && resident <= low_water) draining = false;
      if (draining) {
        if (!lru_.empty()) victim = lru_.front();
      } else {
        int scanned = 0;
        for (const auto& act : lru_) {
          if (++scanned > kTypeScanBound) break;
          if (act->resident_limit <= 0) continue;
          auto it = type_residency_.find(act->id.type);
          if (it != type_residency_.end() &&
              it->second.resident - it->second.pending_out >
                  act->resident_limit) {
            victim = act;
            break;
          }
        }
      }
    }
    if (!victim) return;  // Caps satisfied (or no eligible entry in bound).
    bool claimed = false;
    {
      // Same claim as the idle sweeper: only a quiescent activation pages
      // out, so a busy actor is never interrupted mid-turn and the
      // migration/sweep initiators stay mutually exclusive with paging.
      std::lock_guard<std::mutex> lock(victim->mu);
      if (victim->state == ActState::kIdle && victim->mailbox.empty()) {
        victim->state = ActState::kDeactivating;
        victim->page_out = true;
        claimed = true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (claimed) {
        LruUnlinkLocked(victim);
        ++pending_page_outs_;
        if (victim->resident_limit > 0) {
          ++type_residency_[victim->id.type].pending_out;
        }
        ++stats_.activations_paged_out;
      } else {
        // Busy (or already closing): rotate it to the recent end so the
        // next round looks at the next-oldest instead of spinning here.
        LruTouchLocked(victim);
      }
    }
    if (claimed) FinishDeactivation(victim, nullptr);
  }
}

Future<Status> Silo::DeactivateAll() {
  std::vector<ActivationPtr> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    victims.reserve(catalog_.size());
    for (auto& [id, act] : catalog_) victims.push_back(act);
  }
  std::vector<ActivationPtr> initiated;
  for (auto& act : victims) {
    std::lock_guard<std::mutex> lock(act->mu);
    if (act->state == ActState::kIdle && act->mailbox.empty()) {
      act->state = ActState::kDeactivating;
      initiated.push_back(act);
    }
  }
  if (initiated.empty()) return Future<Status>::FromValue(Status::OK());
  struct Gate {
    std::mutex mu;
    size_t pending;
    Status first_error;
  };
  auto gate = std::make_shared<Gate>();
  gate->pending = initiated.size();
  Promise<Status> done;
  for (auto& act : initiated) {
    FinishDeactivation(act, [gate, done](Status st) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(gate->mu);
        if (!st.ok() && gate->first_error.ok()) gate->first_error = st;
        last = (--gate->pending == 0);
      }
      if (last) done.SetValue(gate->first_error);
    });
  }
  return done.GetFuture();
}

int64_t Silo::Kill() {
  alive_.store(false, std::memory_order_release);
  std::vector<ActivationPtr> victims;
  std::deque<Envelope> backlog;
  {
    std::lock_guard<std::mutex> lock(mu_);
    victims.reserve(catalog_.size());
    for (auto& [id, act] : catalog_) victims.push_back(act);
    catalog_.clear();
    for (auto& act : lru_) act->in_lru = false;
    lru_.clear();
    type_residency_.clear();
    pending_page_outs_ = 0;
    stats_.activations_removed += static_cast<int64_t>(victims.size());
    zombies_.insert(zombies_.end(), victims.begin(), victims.end());
    backlog.swap(wedge_backlog_);
  }
  Status down = Status::Unavailable("silo down");
  int64_t dead_letters = 0;
  Micros now = executor_->clock()->Now();
  // Per-envelope WARNs only for traced drops: the trace id makes the lost
  // work attributable without flooding the log during chaos runs. Flight
  // records are always-on — the postmortem bundle names every dead letter.
  auto drop = [this, &down, &dead_letters, now](Envelope& e, int64_t depth) {
    if (e.fail) {
      e.fail(down);
      return;
    }
    ++dead_letters;
    cluster_->flight_recorder().Record(FlightEventType::kDeadLetter, id_,
                                       e.target.ToString(), e.trace.trace_id,
                                       depth, now);
    if (e.trace.sampled) {
      AODB_LOG(Warn,
               "dead letter: %s dropped by kill of silo %d (mailbox depth "
               "%lld, trace %llu)",
               e.target.ToString().c_str(), static_cast<int>(id_),
               static_cast<long long>(depth),
               static_cast<unsigned long long>(e.trace.trace_id));
    }
  };
  auto backlog_depth = static_cast<int64_t>(backlog.size());
  for (auto& e : backlog) drop(e, backlog_depth);
  for (auto& act : victims) {
    std::deque<Envelope> pending;
    {
      std::lock_guard<std::mutex> lock(act->mu);
      act->state = ActState::kClosed;
      pending.swap(act->mailbox);
    }
    DrainQueueAccounting(act, pending.size());
    if (act->actor) act->actor->ctx().CancelAllTimers();
    auto depth = static_cast<int64_t>(pending.size());
    for (auto& e : pending) drop(e, depth);
  }
  return dead_letters;
}

void Silo::Restart() {
  // Zombies stay parked (see zombies_); the catalog is already empty, so
  // the node rejoins as a fresh, empty silo.
  wedged_.store(false, std::memory_order_release);
  alive_.store(true, std::memory_order_release);
}

void Silo::FinishDeactivation(const ActivationPtr& act,
                              std::function<void(Status)> done) {
  executor_->Post(Task{
      [this, act, done = std::move(done)] {
        act->actor->ctx().CancelAllTimers();
        ScopedFlightScope fscope(&cluster_->flight_recorder(), id_);
        act->actor->OnDeactivate().OnReady(
            [this, act, done](Result<Status>&& r) {
              Status st = r.ok() ? r.value() : r.status();
              std::deque<Envelope> pending;
              SiloId migrate_to = kNoSilo;
              bool page_out = false;
              {
                std::lock_guard<std::mutex> lock(act->mu);
                act->state = ActState::kClosed;
                migrate_to = act->migrate_to;
                page_out = act->page_out;
                pending.swap(act->mailbox);
              }
              DrainQueueAccounting(act, pending.size());
              // Migration: move the directory entry to the target instead
              // of removing it, so the rerouted mailbox and every later
              // send land there and re-activate from persisted state. Move
              // refuses a dead target (races with eviction); the entry is
              // then removed and the next send re-places normally.
              bool moved =
                  migrate_to != kNoSilo &&
                  cluster_->directory().Move(act->id, id_, migrate_to);
              // Page-out: KEEP the registration, flagged paged, so the next
              // message faults the actor back in here instead of
              // re-placing. MarkPaged refuses a stale mapping (e.g. a
              // PurgeSilo raced the eviction) — then remove as for a plain
              // deactivation.
              bool paged = !moved && page_out &&
                           cluster_->directory().MarkPaged(act->id, id_);
              if (!moved && !paged) cluster_->directory().Remove(act->id, id_);
              {
                std::lock_guard<std::mutex> lock(mu_);
                catalog_.erase(act->id);
                LruUnlinkLocked(act);
                if (act->resident_limit > 0) {
                  --type_residency_[act->id.type].resident;
                  if (page_out) --type_residency_[act->id.type].pending_out;
                }
                if (page_out) --pending_page_outs_;
                ++stats_.activations_removed;
              }
              Micros now = executor_->clock()->Now();
              if (paged) {
                cluster_->NotePagedOut();
                cluster_->flight_recorder().Record(
                    FlightEventType::kPagedOut, id_, act->id.ToString(),
                    /*trace_id=*/0,
                    /*detail=*/static_cast<int64_t>(pending.size()), now);
              } else if (moved) {
                cluster_->NoteMigration();
                cluster_->flight_recorder().Record(
                    FlightEventType::kMigrate, id_, act->id.ToString(),
                    /*trace_id=*/0, /*detail=*/migrate_to, now);
                AODB_LOG(Info,
                         "migrated %s from silo %d to silo %d (%zu queued "
                         "message(s) re-routed)",
                         act->id.ToString().c_str(), static_cast<int>(id_),
                         static_cast<int>(migrate_to), pending.size());
              } else {
                cluster_->flight_recorder().Record(
                    FlightEventType::kDeactivate, id_, act->id.ToString(),
                    /*trace_id=*/0,
                    /*detail=*/static_cast<int64_t>(pending.size()), now);
              }
              for (auto& e : pending) cluster_->Send(std::move(e));
              if (done) done(st);
            });
      },
      kLifecycleCostUs});
}

void Silo::DrainQueueAccounting(const ActivationPtr& act, size_t n) {
  if (n == 0) return;
  queued_.fetch_sub(static_cast<int64_t>(n), std::memory_order_relaxed);
  act->depth_gauge->Add(-static_cast<int64_t>(n));
}

int64_t Silo::MailboxDepth(const ActivationPtr& act) {
  std::lock_guard<std::mutex> lock(act->mu);
  return static_cast<int64_t>(act->mailbox.size());
}

std::vector<Silo::HotActivation> Silo::TopActivations(size_t n) const {
  std::vector<HotActivation> out;
  if (!alive() || n == 0) return out;
  std::vector<ActivationPtr> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(catalog_.size());
    for (const auto& [id, act] : catalog_) snapshot.push_back(act);
  }
  out.reserve(snapshot.size());
  for (const auto& act : snapshot) {
    std::lock_guard<std::mutex> lock(act->mu);
    if (act->state == ActState::kClosed) continue;
    out.push_back({act->id, static_cast<int64_t>(act->mailbox.size())});
  }
  std::sort(out.begin(), out.end(),
            [](const HotActivation& a, const HotActivation& b) {
              if (a.depth != b.depth) return a.depth > b.depth;
              return a.id.ToString() < b.id.ToString();
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::optional<Silo::HotActivation> Silo::HottestActivation(
    int min_depth) const {
  std::vector<ActivationPtr> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(catalog_.size());
    for (const auto& [id, act] : catalog_) snapshot.push_back(act);
  }
  std::optional<HotActivation> best;
  for (const auto& act : snapshot) {
    std::lock_guard<std::mutex> lock(act->mu);
    if (act->state == ActState::kLoading ||
        act->state == ActState::kDeactivating ||
        act->state == ActState::kClosed || act->migrate_to != kNoSilo) {
      continue;
    }
    auto depth = static_cast<int64_t>(act->mailbox.size());
    if (depth < min_depth) continue;
    if (!best || depth > best->depth) best = HotActivation{act->id, depth};
  }
  return best;
}

bool Silo::RequestMigration(const ActorId& id, SiloId to) {
  if (to == id_ || !alive()) return false;
  ActivationPtr act;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = catalog_.find(id);
    if (it == catalog_.end()) return false;
    act = it->second;
  }
  bool immediate = false;
  {
    std::lock_guard<std::mutex> lock(act->mu);
    switch (act->state) {
      case ActState::kIdle:
        // No turn in flight: deactivate now. The same state precondition
        // the idle sweeper uses makes the two initiators mutually
        // exclusive — whoever transitions to kDeactivating first wins, the
        // other sees a non-kIdle state and backs off.
        act->migrate_to = to;
        act->state = ActState::kDeactivating;
        immediate = true;
        break;
      case ActState::kScheduled:
      case ActState::kRunning:
        // Mark only; the in-flight turn's completion block performs the
        // kRunning -> kDeactivating transition itself.
        act->migrate_to = to;
        break;
      case ActState::kLoading:
      case ActState::kDeactivating:
      case ActState::kClosed:
        return false;
    }
  }
  if (immediate) FinishDeactivation(act, nullptr);
  return true;
}

void Silo::Reroute(Envelope env) {
  Cluster* cluster = cluster_;
  executor_->PostAfter(kRerouteDelayUs,
                       [cluster, env = std::move(env)]() mutable {
                         cluster->Send(std::move(env));
                       });
}

std::vector<ActorId> Silo::LiveActivations() const {
  std::vector<ActorId> out;
  if (!alive()) return out;
  std::vector<ActivationPtr> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(catalog_.size());
    for (const auto& [id, act] : catalog_) snapshot.push_back(act);
  }
  out.reserve(snapshot.size());
  for (const auto& act : snapshot) {
    std::lock_guard<std::mutex> lock(act->mu);
    if (act->state == ActState::kDeactivating ||
        act->state == ActState::kClosed) {
      continue;
    }
    out.push_back(act->id);
  }
  return out;
}

size_t Silo::ActivationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.size();
}

SiloStats Silo::Stats() const {
  SiloStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  s.messages_processed = messages_processed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aodb
