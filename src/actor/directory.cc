#include "actor/directory.h"

#include <utility>

#include "common/telemetry.h"

namespace aodb {

namespace {

int RoundUpPow2(int n) {
  if (n < 1) return 1;
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Stripe index from the actor-id hash. kHash placement consumes the LOW bits
// of the same hash (home silo = h % num_silos), so the stripe index folds the
// high half in first — raw low bits would correlate stripe with home silo and
// pile one silo's hash-placed actors onto a few stripes.
size_t StripeOf(size_t h, size_t mask) {
  uint64_t v = static_cast<uint64_t>(h);
  return static_cast<size_t>(((v >> 32) ^ v) & mask);
}

}  // namespace

Directory::Directory(int num_silos, Placement default_placement, uint64_t seed,
                     int num_shards)
    : num_silos_(num_silos),
      default_placement_(default_placement),
      num_shards_(RoundUpPow2(num_shards)),
      shard_mask_(static_cast<size_t>(num_shards_) - 1),
      parts_(new Partition[num_shards_]),
      live_(new std::atomic<uint32_t>[static_cast<size_t>(num_silos)]) {
  for (int i = 0; i < num_shards_; ++i) {
    // Distinct deterministic stream per stripe; the golden-ratio multiply
    // decorrelates adjacent stripe seeds.
    parts_[i].rng =
        Rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1)));
  }
  for (int i = 0; i < num_silos_; ++i) {
    live_[i].store(1, std::memory_order_relaxed);
  }
}

void Directory::BindMetrics(MetricsRegistry* metrics) {
  for (int i = 0; i < num_shards_; ++i) {
    const std::string prefix = "directory.partition." + std::to_string(i);
    parts_[i].contention = metrics->GetCounter(prefix + ".contention");
    parts_[i].entries_gauge = metrics->GetGauge(prefix + ".entries");
  }
}

void Directory::SetTypePlacement(const std::string& type,
                                 Placement placement) {
  std::unique_lock<std::shared_mutex> lock(placement_mu_);
  type_placement_[type] = placement;
}

Directory::Partition& Directory::PartitionFor(const ActorId& id) const {
  return parts_[StripeOf(ActorIdHash()(id), shard_mask_)];
}

std::unique_lock<std::mutex> Directory::LockPartition(
    const Partition& part) const {
  std::unique_lock<std::mutex> lock(part.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (part.contention != nullptr) part.contention->Add();
    lock.lock();
  }
  return lock;
}

SiloId Directory::LookupOrPlace(const ActorId& id, SiloId caller) {
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it != part.entries.end()) return it->second.silo;
  SiloId silo = Place(part, id, caller);
  // Never cache the no-live-silo sentinel: the next attempt re-places, so
  // the actor comes back as soon as any silo rejoins.
  if (silo != kNoSilo) part.entries.emplace(id, Entry{silo, false});
  return silo;
}

std::optional<SiloId> Directory::Lookup(const ActorId& id) const {
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it == part.entries.end()) return std::nullopt;
  return it->second.silo;
}

std::optional<Directory::Entry> Directory::LookupEntry(
    const ActorId& id) const {
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it == part.entries.end()) return std::nullopt;
  return it->second;
}

bool Directory::Remove(const ActorId& id, SiloId expected) {
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it == part.entries.end() || it->second.silo != expected) return false;
  part.entries.erase(it);
  return true;
}

bool Directory::Move(const ActorId& id, SiloId from, SiloId to) {
  if (to < 0 || to >= num_silos_ || !LiveFlag(to)) return false;
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it == part.entries.end() || it->second.silo != from) return false;
  it->second.silo = to;
  it->second.paged = false;
  return true;
}

bool Directory::MarkPaged(const ActorId& id, SiloId expected) {
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it == part.entries.end() || it->second.silo != expected) return false;
  it->second.paged = true;
  return true;
}

bool Directory::ClearPaged(const ActorId& id, SiloId expected) {
  Partition& part = PartitionFor(id);
  auto lock = LockPartition(part);
  auto it = part.entries.find(id);
  if (it == part.entries.end() || it->second.silo != expected) return false;
  it->second.paged = false;
  return true;
}

void Directory::SetSiloLive(SiloId silo, bool live) {
  if (silo < 0 || silo >= num_silos_) return;
  std::lock_guard<std::mutex> lock(membership_mu_);
  uint32_t next = live ? 1u : 0u;
  uint32_t prev = live_[static_cast<size_t>(silo)].exchange(
      next, std::memory_order_acq_rel);
  if (prev != next) epoch_.fetch_add(1, std::memory_order_acq_rel);
}

bool Directory::SiloLive(SiloId silo) const {
  return silo >= 0 && silo < num_silos_ && LiveFlag(silo);
}

size_t Directory::PurgeSilo(SiloId silo) {
  std::lock_guard<std::mutex> lock(membership_mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  size_t purged = 0;
  for (int i = 0; i < num_shards_; ++i) {
    Partition& part = parts_[i];
    auto plock = LockPartition(part);
    for (auto it = part.entries.begin(); it != part.entries.end();) {
      if (it->second.silo == silo) {
        it = part.entries.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
  }
  return purged;
}

size_t Directory::Count() const {
  size_t total = 0;
  for (int i = 0; i < num_shards_; ++i) {
    auto lock = LockPartition(parts_[i]);
    total += parts_[i].entries.size();
  }
  return total;
}

std::vector<std::pair<ActorId, SiloId>> Directory::Snapshot() const {
  std::vector<std::pair<ActorId, SiloId>> out;
  out.reserve(Count());
  for (int i = 0; i < num_shards_; ++i) {
    auto lock = LockPartition(parts_[i]);
    for (const auto& [id, entry] : parts_[i].entries) {
      out.emplace_back(id, entry.silo);
    }
  }
  return out;
}

void Directory::PublishPartitionGauges() const {
  for (int i = 0; i < num_shards_; ++i) {
    Partition& part = parts_[i];
    if (part.entries_gauge == nullptr) continue;
    size_t n;
    {
      auto lock = LockPartition(part);
      n = part.entries.size();
    }
    part.entries_gauge->Set(static_cast<int64_t>(n));
  }
}

SiloId Directory::Place(Partition& part, const ActorId& id, SiloId caller) {
  Placement p = default_placement_;
  {
    std::shared_lock<std::shared_mutex> plock(placement_mu_);
    auto it = type_placement_.find(id.type);
    if (it != type_placement_.end()) p = it->second;
  }
  switch (p) {
    case Placement::kPreferLocal:
      if (caller != kClientSiloId && caller >= 0 && caller < num_silos_ &&
          LiveFlag(caller)) {
        return caller;
      }
      [[fallthrough]];
    case Placement::kRandom:
      return RandomLive(part);
    case Placement::kHash: {
      // Pure function of the id — no RNG draw, so hash placement lands
      // identically across replay runs and shard counts regardless of what
      // random placements interleave on this stripe. Linear-probe past dead
      // silos so hashed actors fail over (and fail back once their home
      // restarts).
      SiloId home = static_cast<SiloId>(ActorIdHash()(id) %
                                        static_cast<size_t>(num_silos_));
      for (int i = 0; i < num_silos_; ++i) {
        SiloId candidate = static_cast<SiloId>((home + i) % num_silos_);
        if (LiveFlag(candidate)) return candidate;
      }
      return kNoSilo;
    }
  }
  return 0;
}

SiloId Directory::RandomLive(Partition& part) {
  int live_count = 0;
  for (int i = 0; i < num_silos_; ++i) live_count += LiveFlag(i) ? 1 : 0;
  if (live_count == 0) return kNoSilo;
  int pick = static_cast<int>(part.rng.NextBelow(live_count));
  for (int i = 0; i < num_silos_; ++i) {
    if (LiveFlag(i) && pick-- == 0) return static_cast<SiloId>(i);
  }
  return 0;
}

}  // namespace aodb
