#include "actor/directory.h"

namespace aodb {

Directory::Directory(int num_silos, Placement default_placement, uint64_t seed)
    : num_silos_(num_silos),
      default_placement_(default_placement),
      rng_(seed) {}

void Directory::SetTypePlacement(const std::string& type,
                                 Placement placement) {
  std::lock_guard<std::mutex> lock(mu_);
  type_placement_[type] = placement;
}

SiloId Directory::LookupOrPlace(const ActorId& id, SiloId caller) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) return it->second;
  SiloId silo = Place(id, caller);
  entries_.emplace(id, silo);
  return silo;
}

std::optional<SiloId> Directory::Lookup(const ActorId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool Directory::Remove(const ActorId& id, SiloId expected) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second != expected) return false;
  entries_.erase(it);
  return true;
}

size_t Directory::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

SiloId Directory::Place(const ActorId& id, SiloId caller) {
  Placement p = default_placement_;
  auto it = type_placement_.find(id.type);
  if (it != type_placement_.end()) p = it->second;
  switch (p) {
    case Placement::kPreferLocal:
      if (caller != kClientSiloId) return caller;
      [[fallthrough]];
    case Placement::kRandom:
      return static_cast<SiloId>(rng_.NextBelow(num_silos_));
    case Placement::kHash:
      return static_cast<SiloId>(ActorIdHash()(id) % num_silos_);
  }
  return 0;
}

}  // namespace aodb
