#include "actor/directory.h"

namespace aodb {

Directory::Directory(int num_silos, Placement default_placement, uint64_t seed)
    : num_silos_(num_silos),
      default_placement_(default_placement),
      live_(static_cast<size_t>(num_silos), 1),
      rng_(seed) {}

void Directory::SetTypePlacement(const std::string& type,
                                 Placement placement) {
  std::lock_guard<std::mutex> lock(mu_);
  type_placement_[type] = placement;
}

SiloId Directory::LookupOrPlace(const ActorId& id, SiloId caller) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) return it->second;
  SiloId silo = Place(id, caller);
  // Never cache the no-live-silo sentinel: the next attempt re-places, so
  // the actor comes back as soon as any silo rejoins.
  if (silo != kNoSilo) entries_.emplace(id, silo);
  return silo;
}

std::optional<SiloId> Directory::Lookup(const ActorId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool Directory::Remove(const ActorId& id, SiloId expected) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second != expected) return false;
  entries_.erase(it);
  return true;
}

bool Directory::Move(const ActorId& id, SiloId from, SiloId to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (to < 0 || to >= num_silos_ || live_[to] == 0) return false;
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second != from) return false;
  it->second = to;
  return true;
}

void Directory::SetSiloLive(SiloId silo, bool live) {
  std::lock_guard<std::mutex> lock(mu_);
  if (silo >= 0 && silo < num_silos_) {
    if ((live_[silo] != 0) != live) ++epoch_;
    live_[silo] = live ? 1 : 0;
  }
}

bool Directory::SiloLive(SiloId silo) const {
  std::lock_guard<std::mutex> lock(mu_);
  return silo >= 0 && silo < num_silos_ && live_[silo] != 0;
}

size_t Directory::PurgeSilo(SiloId silo) {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second == silo) {
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

uint64_t Directory::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t Directory::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<ActorId, SiloId>> Directory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ActorId, SiloId>> out;
  out.reserve(entries_.size());
  for (const auto& [id, silo] : entries_) out.emplace_back(id, silo);
  return out;
}

SiloId Directory::Place(const ActorId& id, SiloId caller) {
  Placement p = default_placement_;
  auto it = type_placement_.find(id.type);
  if (it != type_placement_.end()) p = it->second;
  switch (p) {
    case Placement::kPreferLocal:
      if (caller != kClientSiloId && live_[caller]) return caller;
      [[fallthrough]];
    case Placement::kRandom:
      return RandomLive();
    case Placement::kHash: {
      // Deterministic home silo; linear-probe past dead silos so hashed
      // actors fail over (and fail back once their home restarts).
      SiloId home = static_cast<SiloId>(ActorIdHash()(id) % num_silos_);
      for (int i = 0; i < num_silos_; ++i) {
        SiloId candidate = static_cast<SiloId>((home + i) % num_silos_);
        if (live_[candidate]) return candidate;
      }
      return kNoSilo;
    }
  }
  return 0;
}

SiloId Directory::RandomLive() {
  int live_count = 0;
  for (char l : live_) live_count += (l != 0);
  if (live_count == 0) return kNoSilo;
  int pick = static_cast<int>(rng_.NextBelow(live_count));
  for (int i = 0; i < num_silos_; ++i) {
    if (live_[i] != 0 && pick-- == 0) return static_cast<SiloId>(i);
  }
  return 0;
}

}  // namespace aodb
