// Synchronous key-value interface for cluster *system* state (membership,
// reminders) — the role Amazon RDS plays for Orleans in the paper's setup.
// Implementations live in src/storage/.

#ifndef AODB_ACTOR_SYSTEM_KV_H_
#define AODB_ACTOR_SYSTEM_KV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace aodb {

/// Minimal synchronous KV used by the runtime itself (not by actor state,
/// which goes through the asynchronous StateStorage providers).
class SystemKv {
 public:
  virtual ~SystemKv() = default;
  virtual Status Put(const std::string& key, const std::string& value) = 0;
  virtual Result<std::string> Get(const std::string& key) = 0;
  virtual Status Delete(const std::string& key) = 0;
  /// All (key, value) pairs whose key starts with `prefix`, in key order.
  virtual Result<std::vector<std::pair<std::string, std::string>>> List(
      const std::string& prefix) = 0;
};

}  // namespace aodb

#endif  // AODB_ACTOR_SYSTEM_KV_H_
