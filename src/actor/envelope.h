// The unit of communication between actors: an immutable, asynchronous
// message bound for a virtual actor, carrying the closure that applies it
// to the target activation.

#ifndef AODB_ACTOR_ENVELOPE_H_
#define AODB_ACTOR_ENVELOPE_H_

#include <functional>
#include <string>

#include "actor/actor_id.h"
#include "actor/trace.h"
#include "common/clock.h"
#include "common/small_function.h"
#include "common/status.h"

namespace aodb {

class ActorBase;
struct WireMethodInfo;

/// The dispatch closure of one message. Sized so the typed-call capture —
/// member-function pointer, argument tuple, promise, reply routing — stays
/// inline: the same-silo closure lane then sends a message without a single
/// std::function heap allocation.
using EnvelopeFn = SmallFunction<void(ActorBase&), 96>;

/// Default simulated CPU cost of applying one message, when the caller does
/// not specify one. Calibration notes live in src/actor/cost_model.h.
constexpr Micros kDefaultMessageCostUs = 50;

/// Shed class of a message under overload. When a silo's queued-envelope
/// total passes the shed watermark (OverloadOptions), lower classes are
/// rejected with Status::Overloaded first — telemetry inserts before
/// queries, and control traffic (workflow / 2PC steps, lifecycle) never:
/// graceful degradation sacrifices the most replaceable data first.
enum class MessagePriority : uint8_t {
  kTelemetry = 0,  ///< High-volume ingest (sensor inserts); shed first.
  kQuery = 1,      ///< Interactive reads; shed only past the hard watermark.
  kControl = 2,    ///< Workflow/2PC/lifecycle traffic; never shed.
};

/// A message in flight. `fn` runs on the target activation with exclusive
/// access to the actor (turn-based concurrency).
struct Envelope {
  ActorId target;
  SiloId caller_silo = kClientSiloId;
  Principal principal;
  /// Simulated CPU service time of processing this message.
  Micros cost_us = kDefaultMessageCostUs;
  /// Absolute deadline on the caller's clock (0 = none). Expired messages
  /// are failed with Status::Timeout instead of dispatched; the caller-side
  /// watchdog guarantees the promise settles by this time regardless.
  Micros deadline_us = 0;
  /// Times this call has been re-submitted by in-flight failover after a
  /// silo eviction (bounded by MembershipOptions::failover.max_retries).
  int failover_attempts = 0;
  /// Shed class under overload (see MessagePriority).
  MessagePriority priority = MessagePriority::kQuery;
  /// Approximate serialized size, charged by the network model for
  /// cross-silo sends.
  int64_t approx_bytes = 128;
  /// Causality context of the send (invalid when the caller's request was
  /// not sampled). Propagated across the wire, retries, and failover.
  TraceContext trace;
  /// Silo-local receive time, stamped by Silo::Deliver; the turn's queue
  /// wait is measured against it.
  Micros enqueue_us = 0;
  EnvelopeFn fn;
  /// Invoked instead of `fn` if the message can never be delivered (e.g.
  /// the target type is unregistered or activation failed). Calls created
  /// through ActorRef wire this to the caller's promise.
  std::function<void(const Status&)> fail;

  // --- Wire lane (cross-silo serialized dispatch) ---------------------------
  //
  // Both lanes ride in the envelope because the send side cannot know the
  // target silo before placement: Cluster::Send picks the closure lane for
  // same-silo delivery (zero-copy fast path) and the wire lane for remote
  // delivery. Arguments are encoded lazily — only when a remote hop actually
  // happens — so local sends never pay for serialization.

  /// Registration of the invoked method, or nullptr if the method has no
  /// wire registration (remote sends then fall back to the closure lane,
  /// or fail fast under WireOptions::require_wire).
  const WireMethodInfo* wire = nullptr;
  /// Lazily encodes the argument tuple (WireEncodeTuple of the decayed
  /// argument pack).
  std::function<std::string()> wire_encode_args;
  /// Caller-side completion for wire calls: receives the sealed reply frame
  /// or a transport error, decodes Result<T>, and settles the promise.
  /// Empty for tells.
  std::function<void(Result<std::string>&&)> on_wire_reply;
};

namespace internal {

/// Absolute deadline of the actor turn currently running on this thread
/// (0 outside a turn or when the turn has no deadline). Written by the silo
/// around each turn; read by ActorRef so nested calls inherit the caller's
/// remaining deadline. Thread-local, so it is correct both under the
/// single-threaded simulator and on real worker threads (nested sends
/// happen synchronously inside the method body).
inline Micros& CurrentTurnDeadline() {
  thread_local Micros deadline = 0;
  return deadline;
}

}  // namespace internal

}  // namespace aodb

#endif  // AODB_ACTOR_ENVELOPE_H_
