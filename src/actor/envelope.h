// The unit of communication between actors: an immutable, asynchronous
// message bound for a virtual actor, carrying the closure that applies it
// to the target activation.

#ifndef AODB_ACTOR_ENVELOPE_H_
#define AODB_ACTOR_ENVELOPE_H_

#include <functional>

#include "actor/actor_id.h"
#include "common/clock.h"

namespace aodb {

class ActorBase;

/// Default simulated CPU cost of applying one message, when the caller does
/// not specify one. Calibration notes live in src/actor/cost_model.h.
constexpr Micros kDefaultMessageCostUs = 50;

/// A message in flight. `fn` runs on the target activation with exclusive
/// access to the actor (turn-based concurrency).
struct Envelope {
  ActorId target;
  SiloId caller_silo = kClientSiloId;
  Principal principal;
  /// Simulated CPU service time of processing this message.
  Micros cost_us = kDefaultMessageCostUs;
  /// Approximate serialized size, charged by the network model for
  /// cross-silo sends.
  int64_t approx_bytes = 128;
  std::function<void(ActorBase&)> fn;
  /// Invoked instead of `fn` if the message can never be delivered (e.g.
  /// the target type is unregistered or activation failed). Calls created
  /// through ActorRef wire this to the caller's promise.
  std::function<void(const Status&)> fail;
};

}  // namespace aodb

#endif  // AODB_ACTOR_ENVELOPE_H_
