#include "actor/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/telemetry.h"

namespace aodb {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* FlightEventName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kActivate: return "activate";
    case FlightEventType::kDeactivate: return "deactivate";
    case FlightEventType::kMigrate: return "migrate";
    case FlightEventType::kEvict: return "evict";
    case FlightEventType::kRestart: return "restart";
    case FlightEventType::kFailoverResubmit: return "failover_resubmit";
    case FlightEventType::kFailoverFailed: return "failover_failed";
    case FlightEventType::kRetryExhausted: return "retry_exhausted";
    case FlightEventType::kMailboxReject: return "mailbox_reject";
    case FlightEventType::kShed: return "shed";
    case FlightEventType::kDeadlineTimeout: return "deadline_timeout";
    case FlightEventType::kSlowTurn: return "slow_turn";
    case FlightEventType::kDeadLetter: return "dead_letter";
    case FlightEventType::kPagedOut: return "paged_out";
    case FlightEventType::kFaultIn: return "fault_in";
  }
  return "unknown";
}

// --- FlightRing --------------------------------------------------------------

FlightRing::FlightRing(size_t capacity)
    : mask_(RoundUpPow2(std::max<size_t>(capacity, 8)) - 1),
      slots_(new Slot[mask_ + 1]) {}

bool FlightRing::Push(const FlightRecord& rec) {
  size_t i = cursor_.fetch_add(1, std::memory_order_relaxed) & mask_;
  Slot& slot = slots_[i];
  bool expected = false;
  if (!slot.busy.compare_exchange_strong(expected, true,
                                         std::memory_order_acquire)) {
    return false;  // Another writer (or a reader) holds the slot: drop.
  }
  slot.rec = rec;
  slot.used = true;
  slot.busy.store(false, std::memory_order_release);
  return true;
}

void FlightRing::Collect(std::vector<FlightRecord>* out) const {
  for (size_t i = 0; i <= mask_; ++i) {
    Slot& slot = slots_[i];
    bool expected = false;
    if (!slot.busy.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      continue;  // A writer is mid-store; skip this slot.
    }
    if (slot.used) out->push_back(slot.rec);
    slot.busy.store(false, std::memory_order_release);
  }
}

// --- FlightRecorder ----------------------------------------------------------

FlightRecorder::FlightRecorder(int num_silos, bool enabled, int ring_capacity,
                               MetricsRegistry* metrics)
    : num_silos_(num_silos), enabled_(enabled) {
  if (!enabled_) return;
  rings_.reserve(static_cast<size_t>(num_silos) + 1);
  for (int i = 0; i <= num_silos; ++i) {
    rings_.push_back(std::make_unique<FlightRing>(
        static_cast<size_t>(std::max(ring_capacity, 8))));
  }
  if (metrics != nullptr) {
    recorded_ = metrics->GetCounter("flight.recorded");
    dropped_ = metrics->GetCounter("flight.dropped");
  }
}

size_t FlightRecorder::RingIndex(SiloId silo) const {
  if (silo >= 0 && silo < num_silos_) return static_cast<size_t>(silo);
  return static_cast<size_t>(num_silos_);  // Client (and unknown) ring.
}

void FlightRecorder::Record(FlightEventType type, SiloId silo,
                            std::string_view actor, uint64_t trace_id,
                            int64_t detail, Micros at_us) {
  if (!enabled_) return;
  FlightRecord rec;
  rec.at_us = at_us;
  rec.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  rec.trace_id = trace_id;
  rec.detail = detail;
  rec.silo = silo;
  rec.type = type;
  size_t n = std::min(actor.size(), FlightRecord::kActorBytes - 1);
  std::memcpy(rec.actor, actor.data(), n);
  rec.actor[n] = '\0';
  if (rings_[RingIndex(silo)]->Push(rec)) {
    if (recorded_ != nullptr) recorded_->Add();
  } else {
    if (dropped_ != nullptr) dropped_->Add();
  }
}

std::vector<FlightRecord> FlightRecorder::Collect() const {
  std::vector<FlightRecord> out;
  for (const auto& ring : rings_) ring->Collect(&out);
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.at_us != b.at_us ? a.at_us < b.at_us : a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::AppendEventsJson(const std::vector<FlightRecord>& events,
                                      std::string* out) {
  *out += '[';
  bool first = true;
  char buf[192];
  for (const FlightRecord& e : events) {
    if (!first) *out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"at_us\":%lld,\"seq\":%llu,\"type\":\"%s\",\"silo\":%d,",
                  static_cast<long long>(e.at_us),
                  static_cast<unsigned long long>(e.seq),
                  FlightEventName(e.type), static_cast<int>(e.silo));
    *out += buf;
    *out += "\"actor\":\"" + JsonEscape(e.actor) + "\",";
    std::snprintf(buf, sizeof(buf), "\"trace\":%llu,\"detail\":%lld}",
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<long long>(e.detail));
    *out += buf;
  }
  *out += ']';
}

std::string FlightRecorder::DumpJson() const {
  std::string out = "{\"flight_events\":";
  AppendEventsJson(Collect(), &out);
  out += '}';
  return out;
}

}  // namespace aodb
