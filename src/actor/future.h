// Futures and promises for asynchronous actor calls.
//
// Continuations run inline on the thread that fulfills the promise (in
// simulation mode, at the virtual time of fulfillment). Blocking Get() is
// for external clients in real (thread-pool) mode only; actor code and
// simulation-mode code must use OnReady/Then.

#ifndef AODB_ACTOR_FUTURE_H_
#define AODB_ACTOR_FUTURE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/small_function.h"
#include "common/status.h"

namespace aodb {

/// Unit type standing in for `void` results of actor methods.
struct Unit {
  bool operator==(const Unit&) const { return true; }
};

namespace internal {

/// Process-wide count of promise completions dropped because a result was
/// already set — duplicate message delivery under fault injection, timeout
/// races. Observable via PromiseDuplicatesDropped().
inline std::atomic<int64_t>& DuplicateCompletions() {
  static std::atomic<int64_t> counter{0};
  return counter;
}

/// Process-wide count of promises that died unfulfilled WITH a continuation
/// registered: someone was waiting and nobody ever answered — a dropped
/// reply handler, an envelope destroyed without running its fail hook. A
/// promise with no waiter that dies unfulfilled is not counted (futures are
/// routinely abandoned on purpose). Observable via PromisesLeaked(); the
/// cluster exposes its lifetime delta as the "runtime.leaked_promises"
/// gauge at Stop().
inline std::atomic<int64_t>& LeakedPromises() {
  static std::atomic<int64_t> counter{0};
  return counter;
}

/// Continuation callable. Small-buffer sized for the runtime's own reply
/// handlers so registering the (almost always single) continuation does not
/// heap-allocate.
template <typename T>
using FutureCallback = SmallFunction<void(Result<T>&&), 64>;

template <typename T>
struct FutureState {
  ~FutureState() {
    // No lock needed: the last owner is tearing the state down, so nobody
    // else can be registering callbacks or setting results concurrently.
    if (!result.has_value() &&
        (has_first_callback || !more_callbacks.empty())) {
      LeakedPromises().fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<T>> result;
  /// First continuation inline (the overwhelmingly common case: one
  /// OnReady per future); later registrations overflow to the vector.
  FutureCallback<T> first_callback;
  bool has_first_callback = false;
  std::vector<FutureCallback<T>> more_callbacks;

  void Set(Result<T>&& r) {
    FutureCallback<T> first;
    bool has_first = false;
    std::vector<FutureCallback<T>> rest;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (result.has_value()) {
        // First fulfillment wins; the duplicate is counted and dropped.
        DuplicateCompletions().fetch_add(1, std::memory_order_relaxed);
        return;
      }
      result.emplace(std::move(r));
      if (has_first_callback) {
        first = std::move(first_callback);
        first_callback = nullptr;
        has_first_callback = false;
        has_first = true;
      }
      rest.swap(more_callbacks);
      cv.notify_all();
    }
    if (has_first) {
      Result<T> copy = *result;
      first(std::move(copy));
    }
    for (auto& cb : rest) {
      Result<T> copy = *result;
      cb(std::move(copy));
    }
  }
};

}  // namespace internal

/// Number of promise completions dropped so far in this process because the
/// promise was already fulfilled (monotonic).
inline int64_t PromiseDuplicatesDropped() {
  return internal::DuplicateCompletions().load(std::memory_order_relaxed);
}

/// Number of promises destroyed unfulfilled with a waiting continuation so
/// far in this process (monotonic). See internal::LeakedPromises.
inline int64_t PromisesLeaked() {
  return internal::LeakedPromises().load(std::memory_order_relaxed);
}

template <typename T>
class Promise;

/// Read side of an asynchronous result. Copyable; all copies share state.
template <typename T>
class Future {
 public:
  using ValueType = T;

  Future() : state_(std::make_shared<internal::FutureState<T>>()) {}

  /// A future already fulfilled with `value`.
  static Future<T> FromValue(T value) {
    Future<T> f;
    f.state_->Set(Result<T>(std::move(value)));
    return f;
  }

  /// A future already failed with `status` (must be non-OK).
  static Future<T> FromError(Status status) {
    Future<T> f;
    f.state_->Set(Result<T>::FromError(std::move(status)));
    return f;
  }

  /// True once a result (value or error) is available.
  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.has_value();
  }

  /// Registers a continuation; runs inline immediately if already ready.
  void OnReady(internal::FutureCallback<T> cb) const {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->result.has_value()) {
        if (!state_->has_first_callback) {
          state_->first_callback = std::move(cb);
          state_->has_first_callback = true;
        } else {
          state_->more_callbacks.push_back(std::move(cb));
        }
        return;
      }
    }
    Result<T> copy = *state_->result;
    cb(std::move(copy));
  }

  /// Blocks until ready. Real mode, external clients only: must never be
  /// called from an actor thread (can deadlock the pool) nor in simulation.
  Result<T> Get() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->result.has_value(); });
    return *state_->result;
  }

  /// Blocks up to `timeout_us` microseconds; returns Timeout on expiry.
  Result<T> GetFor(int64_t timeout_us) const {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->cv.wait_for(lock, std::chrono::microseconds(timeout_us),
                             [this] { return state_->result.has_value(); })) {
      return Result<T>::FromError(Status::Timeout("future wait timed out"));
    }
    return *state_->result;
  }

  /// Maps the value through `fn`; errors propagate unchanged.
  template <typename Fn, typename U = std::invoke_result_t<Fn, T&&>>
  Future<U> Then(Fn fn) const {
    Future<U> out;
    auto st = out.state_;
    OnReady([st, fn = std::move(fn)](Result<T>&& r) mutable {
      if (!r.ok()) {
        st->Set(Result<U>::FromError(r.status()));
      } else {
        st->Set(Result<U>(fn(std::move(r).value())));
      }
    });
    return out;
  }

 private:
  friend class Promise<T>;
  template <typename U>
  friend class Future;  // Then() builds futures of other value types.
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Write side of a Future. Copyable; first Set wins, later Sets are ignored
/// (used by timeout racing).
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> GetFuture() const {
    Future<T> f;
    f.state_ = state_;
    return f;
  }

  void SetValue(T value) const { state_->Set(Result<T>(std::move(value))); }
  void SetError(Status status) const {
    state_->Set(Result<T>::FromError(std::move(status)));
  }
  void SetResult(Result<T> r) const { state_->Set(std::move(r)); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Completes when all inputs complete, with the vector of all results
/// (values or errors, index-aligned with the inputs).
template <typename T>
Future<std::vector<Result<T>>> WhenAll(const std::vector<Future<T>>& futures) {
  struct Gather {
    std::mutex mu;
    std::vector<std::optional<Result<T>>> slots;
    size_t pending;
  };
  auto gather = std::make_shared<Gather>();
  gather->slots.resize(futures.size());
  gather->pending = futures.size();
  Promise<std::vector<Result<T>>> promise;
  if (futures.empty()) {
    promise.SetValue({});
    return promise.GetFuture();
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    futures[i].OnReady([gather, promise, i](Result<T>&& r) {
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(gather->mu);
        gather->slots[i].emplace(std::move(r));
        done = (--gather->pending == 0);
      }
      if (done) {
        std::vector<Result<T>> out;
        out.reserve(gather->slots.size());
        for (auto& s : gather->slots) out.push_back(std::move(*s));
        promise.SetValue(std::move(out));
      }
    });
  }
  return promise.GetFuture();
}

/// Detects Future specializations (used by the typed call dispatcher).
template <typename T>
struct IsFuture : std::false_type {};
template <typename U>
struct IsFuture<Future<U>> : std::true_type {
  using Inner = U;
};

}  // namespace aodb

#endif  // AODB_ACTOR_FUTURE_H_
