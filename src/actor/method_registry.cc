#include "actor/method_registry.h"

namespace aodb {

namespace internal {

std::shared_mutex& SigTableMutex() {
  static std::shared_mutex mu;
  return mu;
}

}  // namespace internal

MethodRegistry& MethodRegistry::Global() {
  static MethodRegistry registry;
  return registry;
}

uint64_t MethodRegistry::MethodId(const std::string& method_name) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : method_name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Status MethodRegistry::AddEntry(const std::string& type_name,
                                std::unique_ptr<WireMethodEntry> entry,
                                const WireMethodEntry** installed) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& methods = types_[type_name];
  auto it = methods.find(entry->info.id);
  if (it != methods.end()) {
    if (it->second->info.name != entry->info.name) {
      return Status::AlreadyExists(
          "wire method id collision in type " + type_name + ": \"" +
          it->second->info.name + "\" vs \"" + entry->info.name + "\"");
    }
    // Idempotent re-registration; a later declaration of idempotency
    // upgrades the existing entry (registration happens at startup).
    it->second->info.idempotent |= entry->info.idempotent;
    *installed = it->second.get();
    return Status::OK();
  }
  *installed = entry.get();
  methods.emplace(entry->info.id, std::move(entry));
  return Status::OK();
}

const WireMethodEntry* MethodRegistry::FindEntry(const std::string& type_name,
                                                 uint64_t method_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto tit = types_.find(type_name);
  if (tit == types_.end()) return nullptr;
  auto mit = tit->second.find(method_id);
  return mit == tit->second.end() ? nullptr : mit->second.get();
}

size_t MethodRegistry::MethodCount(const std::string& type_name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = types_.find(type_name);
  return it == types_.end() ? 0 : it->second.size();
}

Status MethodRegistry::SelfCheckAll() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [type, methods] : types_) {
    for (const auto& [id, entry] : methods) {
      if (!entry->info.self_check) continue;
      Status st = entry->info.self_check();
      if (!st.ok()) {
        return Status::Internal("wire self-check failed for " + type + "." +
                                entry->info.name + ": " + st.ToString());
      }
    }
  }
  return Status::OK();
}

size_t MethodRegistry::TotalMethods() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [type, methods] : types_) n += methods.size();
  return n;
}

}  // namespace aodb
