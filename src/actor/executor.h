// Execution abstraction decoupling the actor runtime from its scheduling
// substrate. Two implementations exist:
//  * ThreadPoolExecutor (src/actor/thread_pool.h) — real threads, wall clock.
//  * SimExecutor (src/sim/sim_executor.h) — discrete-event simulation with
//    virtual CPU workers and virtual time, used by the figure benchmarks.

#ifndef AODB_ACTOR_EXECUTOR_H_
#define AODB_ACTOR_EXECUTOR_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"

namespace aodb {

/// A schedulable unit of actor work. `cost_us` is the CPU service time
/// charged in simulation mode (ignored — i.e., measured for real — in
/// thread-pool mode).
struct Task {
  std::function<void()> fn;
  Micros cost_us = 0;
};

/// Aggregate executor counters, used to report CPU utilization (the paper's
/// "80% utilization" design point).
struct ExecutorStats {
  int64_t tasks_run = 0;
  Micros busy_us = 0;
};

/// A serial-or-parallel task executor with its own clock.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules a task to run as soon as a worker is free. Tasks posted from
  /// the same thread are started in post order.
  virtual void Post(Task task) = 0;

  /// Schedules `fn` to run `delay_us` from now on this executor's clock.
  /// Unlike Post, the callback occupies no CPU worker (used for timers,
  /// network delivery, and storage completion events).
  virtual void PostAfter(Micros delay_us, std::function<void()> fn) = 0;

  /// Schedules `fn` at an absolute time on this executor's clock. The
  /// message-delivery path uses this (rather than PostAfter) so that
  /// per-channel FIFO arrival times computed by the network model are
  /// honored exactly, independent of when the sending thread gets to run.
  virtual void PostAt(Micros due, std::function<void()> fn) = 0;

  /// The clock that timestamps and delays on this executor refer to.
  virtual Clock* clock() = 0;

  /// Number of CPU workers (vCPUs) this executor models or owns.
  virtual int workers() const = 0;

  virtual ExecutorStats Stats() const = 0;
};

}  // namespace aodb

#endif  // AODB_ACTOR_EXECUTOR_H_
