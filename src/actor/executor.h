// Execution abstraction decoupling the actor runtime from its scheduling
// substrate. Two implementations exist:
//  * ThreadPoolExecutor (src/actor/thread_pool.h) — real threads, wall clock,
//    per-worker run queues with work stealing.
//  * SimExecutor (src/sim/sim_executor.h) — discrete-event simulation with
//    virtual CPU workers and virtual time, used by the figure benchmarks.

#ifndef AODB_ACTOR_EXECUTOR_H_
#define AODB_ACTOR_EXECUTOR_H_

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "common/small_function.h"

namespace aodb {

/// The callable of one schedulable unit of work. Small-buffer optimized so
/// the runtime's own task closures (actor turn dispatches, activation
/// lifecycle steps) never heap-allocate on the hot path.
using TaskFn = SmallFunction<void(), 64>;

/// A schedulable unit of actor work. `cost_us` is the CPU service time
/// charged in simulation mode (ignored — i.e., measured for real — in
/// thread-pool mode).
struct Task {
  TaskFn fn;
  Micros cost_us = 0;
};

/// Aggregate executor counters, used to report CPU utilization (the paper's
/// "80% utilization" design point) and scheduler health. Real-mode executors
/// keep these in per-worker shards and merge on read; the simulator fills in
/// only tasks_run/busy_us (it has no queues to steal from or workers to
/// park).
struct ExecutorStats {
  int64_t tasks_run = 0;
  Micros busy_us = 0;
  /// Tasks a worker took from another worker's run queue.
  int64_t steals = 0;
  /// Times a worker parked (went to sleep) for lack of work.
  int64_t parks = 0;
  /// Tasks queued but not yet started, at the moment of the snapshot.
  int64_t queue_depth = 0;
};

/// A serial-or-parallel task executor with its own clock.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules a task to run as soon as a worker is free. No relative order
  /// is guaranteed between distinct tasks (work stealing and per-worker LIFO
  /// slots may start them out of post order); ordered delivery is the silo
  /// mailbox's job — per-actor turns are serialized by the activation state
  /// machine, and a sender's messages to one actor are enqueued in send
  /// order. SimExecutor, being single-threaded, still starts same-cost tasks
  /// in post order.
  virtual void Post(Task task) = 0;

  /// Schedules `fn` to run `delay_us` from now on this executor's clock.
  /// Unlike Post, the callback occupies no CPU worker (used for timers,
  /// network delivery, and storage completion events).
  virtual void PostAfter(Micros delay_us, std::function<void()> fn) = 0;

  /// Schedules `fn` at an absolute time on this executor's clock. The
  /// message-delivery path uses this (rather than PostAfter) so that
  /// per-channel FIFO arrival times computed by the network model are
  /// honored exactly, independent of when the sending thread gets to run.
  virtual void PostAt(Micros due, std::function<void()> fn) = 0;

  /// The clock that timestamps and delays on this executor refer to.
  virtual Clock* clock() = 0;

  /// Number of CPU workers (vCPUs) this executor models or owns.
  virtual int workers() const = 0;

  virtual ExecutorStats Stats() const = 0;

  /// True when this executor measures task cost for real instead of charging
  /// the declared `Task::cost_us` up front. Only then may the silo drain
  /// several mailbox envelopes inside one scheduled turn
  /// (RuntimeOptions::max_turn_batch): under the simulator, batching would
  /// let every envelope after the first run free of charge and change the
  /// figure benchmarks' virtual-time results.
  virtual bool SupportsTurnBatching() const { return false; }
};

}  // namespace aodb

#endif  // AODB_ACTOR_EXECUTOR_H_
