// Distributor and Delivery actors (Figure 3): a logistics company is a
// Distributor actor managing multiple Delivery actors, each tracking one
// transport of meat cuts from a source to a destination with a vehicle at
// a given time. Also hosts the object-cut model's embedded records
// (Figure 5 variant).

#ifndef AODB_CATTLE_DISTRIBUTOR_ACTOR_H_
#define AODB_CATTLE_DISTRIBUTOR_ACTOR_H_

#include <map>
#include <string>
#include <vector>

#include "aodb/txn.h"
#include "cattle/meat_cut_actor.h"
#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// One transport process of one or more meat cuts.
class DeliveryActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "cattle.Delivery";

  /// Plans the delivery.
  Status Plan(std::string distributor_key, std::vector<std::string> cut_keys,
              std::string source, std::string destination,
              std::string vehicle);

  /// Marks departure and stamps every cut's itinerary with the transport
  /// leg (actor-cut model). Completes when every cut acknowledged.
  Future<Status> Depart();

  /// Marks arrival, stamping the destination hop on every cut.
  Future<Status> Arrive(std::string receiver_type, std::string receiver_key);

  bool InTransit();
  std::vector<std::string> CutKeys();

 private:
  Future<Status> StampAll(ItineraryEntry entry);

  std::string distributor_key_;
  std::vector<std::string> cut_keys_;
  std::string source_;
  std::string destination_;
  std::string vehicle_;
  bool planned_ = false;
  bool in_transit_ = false;
};

/// One logistics company.
class DistributorActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "cattle.Distributor";

  // --- Actor-cut model ------------------------------------------------------

  /// Creates and plans a Delivery actor named "<self>.d<N>"; returns its
  /// key. The delivery is a separate actor because transports run
  /// concurrently (paper §4.1).
  Future<std::string> PlanDelivery(std::vector<std::string> cut_keys,
                                   std::string source,
                                   std::string destination,
                                   std::string vehicle);

  std::vector<std::string> Deliveries();

  // --- Object-cut model (Figure 5) -------------------------------------------

  /// Receives copied cut records from upstream.
  Status ReceiveCuts(std::vector<MeatCutRecord> cuts);

  /// Copies the named records onward to a retailer.
  Future<Status> TransferCutsToRetailer(std::string retailer_key,
                                        std::vector<std::string> cut_keys,
                                        std::string location);

  /// Local read (no message round trip).
  MeatCutRecord ReadCutLocal(std::string cut_key);
  int64_t LocalCutCount();

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override;
  void ApplyOp(const std::string& op, const std::string& arg) override;

 private:
  int64_t delivery_seq_ = 0;
  std::vector<std::string> deliveries_;
  std::map<std::string, MeatCutRecord> local_cuts_;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_DISTRIBUTOR_ACTOR_H_
