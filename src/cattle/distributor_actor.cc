#include "cattle/distributor_actor.h"

#include "cattle/retailer_actor.h"

namespace aodb {
namespace cattle {

namespace {

/// Collapses a WhenAll of Status calls into a single Status future.
Future<Status> AllOk(std::vector<Future<Status>> acks) {
  Promise<Status> done;
  WhenAll(acks).OnReady([done](Result<std::vector<Result<Status>>>&& r) {
    if (!r.ok()) {
      done.SetValue(r.status());
      return;
    }
    for (const auto& ack : r.value()) {
      Status st = ack.ok() ? ack.value() : ack.status();
      if (!st.ok()) {
        done.SetValue(st);
        return;
      }
    }
    done.SetValue(Status::OK());
  });
  return done.GetFuture();
}

}  // namespace

// --- DeliveryActor -----------------------------------------------------------

Status DeliveryActor::Plan(std::string distributor_key,
                           std::vector<std::string> cut_keys,
                           std::string source, std::string destination,
                           std::string vehicle) {
  if (planned_) return Status::AlreadyExists("delivery already planned");
  planned_ = true;
  distributor_key_ = std::move(distributor_key);
  cut_keys_ = std::move(cut_keys);
  source_ = std::move(source);
  destination_ = std::move(destination);
  vehicle_ = std::move(vehicle);
  return Status::OK();
}

Future<Status> DeliveryActor::StampAll(ItineraryEntry entry) {
  CallOptions opts;
  opts.cost_us = kCostTransfer;
  // Workflow steps mutate traceability state: never shed under overload.
  opts.priority = MessagePriority::kControl;
  std::vector<Future<Status>> acks;
  acks.reserve(cut_keys_.size());
  for (const std::string& key : cut_keys_) {
    acks.push_back(ctx().Ref<MeatCutActor>(key).CallWith(
        opts, &MeatCutActor::AddItinerary, entry));
  }
  return AllOk(std::move(acks));
}

Future<Status> DeliveryActor::Depart() {
  if (!planned_) {
    return Future<Status>::FromError(
        Status::FailedPrecondition("delivery not planned"));
  }
  if (in_transit_) {
    return Future<Status>::FromError(
        Status::FailedPrecondition("already in transit"));
  }
  in_transit_ = true;
  return StampAll(ItineraryEntry{ctx().Now(), "Distributor",
                                 distributor_key_, source_, vehicle_});
}

Future<Status> DeliveryActor::Arrive(std::string receiver_type,
                                     std::string receiver_key) {
  if (!in_transit_) {
    return Future<Status>::FromError(
        Status::FailedPrecondition("not in transit"));
  }
  in_transit_ = false;
  return StampAll(ItineraryEntry{ctx().Now(), std::move(receiver_type),
                                 std::move(receiver_key), destination_, ""});
}

bool DeliveryActor::InTransit() { return in_transit_; }

std::vector<std::string> DeliveryActor::CutKeys() { return cut_keys_; }

// --- DistributorActor --------------------------------------------------------

Future<std::string> DistributorActor::PlanDelivery(
    std::vector<std::string> cut_keys, std::string source,
    std::string destination, std::string vehicle) {
  std::string key =
      ctx().self().key + ".d" + std::to_string(delivery_seq_++);
  deliveries_.push_back(key);
  Promise<std::string> done;
  ctx().Ref<DeliveryActor>(key)
      .Call(&DeliveryActor::Plan, ctx().self().key, std::move(cut_keys),
            std::move(source), std::move(destination), std::move(vehicle))
      .OnReady([done, key](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok()) {
          done.SetValue(key);
        } else {
          done.SetError(st);
        }
      });
  return done.GetFuture();
}

std::vector<std::string> DistributorActor::Deliveries() {
  return deliveries_;
}

Status DistributorActor::ReceiveCuts(std::vector<MeatCutRecord> cuts) {
  for (MeatCutRecord& cut : cuts) {
    local_cuts_[cut.cut_key] = std::move(cut);
  }
  return Status::OK();
}

Future<Status> DistributorActor::TransferCutsToRetailer(
    std::string retailer_key, std::vector<std::string> cut_keys,
    std::string location) {
  std::vector<MeatCutRecord> copies;
  Micros now = ctx().Now();
  for (const std::string& key : cut_keys) {
    auto it = local_cuts_.find(key);
    if (it == local_cuts_.end()) {
      return Future<Status>::FromError(
          Status::NotFound("cut not held here: " + key));
    }
    MeatCutRecord copy = it->second;
    ++copy.version;
    copy.itinerary.push_back(
        ItineraryEntry{now, "Retailer", retailer_key, location, ""});
    copies.push_back(std::move(copy));
    local_cuts_.erase(it);
  }
  CallOptions opts;
  opts.cost_us = kCostTransfer;
  opts.request_bytes = static_cast<int64_t>(copies.size()) * 256;
  opts.priority = MessagePriority::kControl;
  return ctx().Ref<RetailerActor>(retailer_key)
      .CallWith(opts, &RetailerActor::ReceiveCuts, std::move(copies));
}

MeatCutRecord DistributorActor::ReadCutLocal(std::string cut_key) {
  auto it = local_cuts_.find(cut_key);
  if (it == local_cuts_.end()) return MeatCutRecord{};
  return it->second;
}

int64_t DistributorActor::LocalCutCount() {
  return static_cast<int64_t>(local_cuts_.size());
}

Status DistributorActor::ValidateOp(const std::string& op,
                                    const std::string&) {
  return Status::InvalidArgument("unknown distributor op: " + op);
}

void DistributorActor::ApplyOp(const std::string&, const std::string&) {}

}  // namespace cattle
}  // namespace aodb
