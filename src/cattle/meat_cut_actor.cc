#include "cattle/meat_cut_actor.h"

namespace aodb {
namespace cattle {

Status MeatCutActor::Create(std::string cow_key, std::string farmer_key,
                            std::string slaughterhouse_key,
                            Micros slaughtered_at, std::string location) {
  if (created_) return Status::AlreadyExists("meat cut exists");
  created_ = true;
  cow_key_ = std::move(cow_key);
  farmer_key_ = std::move(farmer_key);
  slaughterhouse_key_ = std::move(slaughterhouse_key);
  slaughtered_at_ = slaughtered_at;
  holder_ = "Slaughterhouse/" + slaughterhouse_key_;
  itinerary_.push_back(ItineraryEntry{slaughtered_at, "Slaughterhouse",
                                      slaughterhouse_key_,
                                      std::move(location), ""});
  return Status::OK();
}

Status MeatCutActor::AddItinerary(ItineraryEntry entry) {
  if (!created_) return Status::FailedPrecondition("meat cut not created");
  holder_ = entry.holder_type + "/" + entry.holder_key;
  itinerary_.push_back(std::move(entry));
  return Status::OK();
}

CutTrace MeatCutActor::Trace() {
  CutTrace trace;
  trace.cut_key = ctx().self().key;
  trace.cow_key = cow_key_;
  trace.farmer_key = farmer_key_;
  trace.slaughterhouse_key = slaughterhouse_key_;
  trace.slaughtered_at = slaughtered_at_;
  trace.itinerary = itinerary_;
  return trace;
}

std::string MeatCutActor::Holder() { return holder_; }

Status MeatCutActor::ValidateOp(const std::string& op,
                                const std::string& arg) {
  if (op == kOpSetHolder) {
    if (!created_) return Status::FailedPrecondition("meat cut not created");
    if (arg.empty()) return Status::InvalidArgument("empty holder");
    return Status::OK();
  }
  return Status::InvalidArgument("unknown meat cut op: " + op);
}

void MeatCutActor::ApplyOp(const std::string& op, const std::string& arg) {
  if (op == kOpSetHolder) holder_ = arg;
}

}  // namespace cattle
}  // namespace aodb
