#include "cattle/farmer_actor.h"

namespace aodb {
namespace cattle {

Status FarmerActor::RegisterCow(std::string cow_key) {
  auto [it, inserted] = herd_.insert(std::move(cow_key));
  if (!inserted) return Status::AlreadyExists("cow already in herd");
  return Status::OK();
}

std::vector<std::string> FarmerActor::Herd() {
  return std::vector<std::string>(herd_.begin(), herd_.end());
}

int64_t FarmerActor::HerdSize() { return static_cast<int64_t>(herd_.size()); }

bool FarmerActor::Owns(std::string cow_key) {
  return herd_.count(cow_key) > 0;
}

void FarmerActor::GeofenceAlertReceived(GeofenceAlert alert) {
  alerts_.push_back(std::move(alert));
  if (alerts_.size() > 1000) alerts_.pop_front();
  ++total_alerts_;
}

std::vector<GeofenceAlert> FarmerActor::DrainAlerts() {
  std::vector<GeofenceAlert> out(alerts_.begin(), alerts_.end());
  alerts_.clear();
  return out;
}

int64_t FarmerActor::TotalAlerts() { return total_alerts_; }

Status FarmerActor::ValidateOp(const std::string& op,
                               const std::string& arg) {
  if (op == kOpAddCow) {
    if (arg.empty()) return Status::InvalidArgument("empty cow key");
    if (herd_.count(arg) > 0) {
      return Status::FailedPrecondition("cow already in herd: " + arg);
    }
    return Status::OK();
  }
  if (op == kOpRemoveCow) {
    if (herd_.count(arg) == 0) {
      return Status::FailedPrecondition("cow not in herd: " + arg);
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown farmer op: " + op);
}

void FarmerActor::ApplyOp(const std::string& op, const std::string& arg) {
  if (op == kOpAddCow) {
    herd_.insert(arg);
  } else if (op == kOpRemoveCow) {
    herd_.erase(arg);
  }
}

}  // namespace cattle
}  // namespace aodb
