// Slaughterhouse actors: record the slaughter of cows and their
// transformation into meat cuts (Figure 3). Supports both meat-cut models:
// actor cuts (CreateCuts spawns MeatCutActors) and object cuts
// (SlaughterLocal keeps MeatCutRecords embedded; Figure 5 / §4.3).

#ifndef AODB_CATTLE_SLAUGHTERHOUSE_ACTOR_H_
#define AODB_CATTLE_SLAUGHTERHOUSE_ACTOR_H_

#include <map>
#include <string>
#include <vector>

#include "aodb/txn.h"
#include "cattle/cow_actor.h"
#include "cattle/meat_cut_actor.h"
#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// One physical slaughterhouse.
class SlaughterhouseActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "cattle.Slaughterhouse";

  // --- Common -------------------------------------------------------------

  /// Slaughters `cow_key` (marks the cow via its transactional op) and
  /// returns the provenance needed to derive cuts. Fails if the cow is
  /// already slaughtered.
  Future<Status> Slaughter(std::string cow_key);

  /// Cows processed by this slaughterhouse.
  std::vector<std::string> ProcessedCows();

  // --- Actor-cut model (Figure 3) ------------------------------------------

  /// Derives `num_cuts` MeatCutActors from a slaughtered cow. The cut keys
  /// are "<cow_key>.cut<i>". Returns the created keys via the future.
  Future<std::vector<std::string>> CreateCuts(std::string cow_key,
                                              std::string farmer_key,
                                              int num_cuts);

  // --- Object-cut model (Figure 5, §4.3) ------------------------------------

  /// Derives `num_cuts` embedded MeatCutRecords from a slaughtered cow.
  std::vector<std::string> CreateCutsLocal(std::string cow_key,
                                           std::string farmer_key,
                                           int num_cuts);

  /// Copies the named local cut records to a distributor (object-version
  /// transfer: the records are duplicated, the local ones marked moved).
  Future<Status> TransferCutsTo(std::string distributor_key,
                                std::vector<std::string> cut_keys,
                                std::string location);

  /// Local read of an embedded cut record (no cross-actor message).
  MeatCutRecord ReadCutLocal(std::string cut_key);

  int64_t LocalCutCount();

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override;
  void ApplyOp(const std::string& op, const std::string& arg) override;

 private:
  std::vector<std::string> processed_cows_;
  std::map<std::string, MeatCutRecord> local_cuts_;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_SLAUGHTERHOUSE_ACTOR_H_
