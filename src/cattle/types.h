// Shared value types of the beef cattle tracking & tracing platform (case
// study 2, Figures 2, 3 and 5 of the paper): GS1-style identifiers, collar
// readings, itineraries, and trace records.

#ifndef AODB_CATTLE_TYPES_H_
#define AODB_CATTLE_TYPES_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/status.h"

namespace aodb {
namespace cattle {

/// WGS84-ish coordinate (degrees). Precision is irrelevant to the model.
struct GeoPoint {
  double lat = 0;
  double lon = 0;

  void Encode(BufWriter* w) const {
    w->PutDouble(lat);
    w->PutDouble(lon);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetDouble(&lat));
    return r->GetDouble(&lon);
  }
};

/// One reading from a cow's collar sensor: position plus motion metrics
/// (functional requirements 1-2: store animal sensor data, track
/// trajectory and behavior).
struct CollarReading {
  Micros ts = 0;
  GeoPoint position;
  double speed_mps = 0;
  double temperature_c = 38.5;

  void Encode(BufWriter* w) const {
    w->PutSigned(ts);
    position.Encode(w);
    w->PutDouble(speed_mps);
    w->PutDouble(temperature_c);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&ts));
    AODB_RETURN_NOT_OK(position.Decode(r));
    AODB_RETURN_NOT_OK(r->GetDouble(&speed_mps));
    return r->GetDouble(&temperature_c);
  }
};

/// A rumen/bolus sensor reading (the paper notes cattle often carry
/// internal digestive-tract sensors with different sampling rates).
struct BolusReading {
  Micros ts = 0;
  double rumen_temperature_c = 39.0;
  double ph = 6.5;

  void Encode(BufWriter* w) const {
    w->PutSigned(ts);
    w->PutDouble(rumen_temperature_c);
    w->PutDouble(ph);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&ts));
    AODB_RETURN_NOT_OK(r->GetDouble(&rumen_temperature_c));
    return r->GetDouble(&ph);
  }
};

/// Life status of a cow.
enum class CowStatus : int { kAlive = 0, kSlaughtered = 1 };

/// One hop in a meat cut's journey through the supply chain (functional
/// requirements 3-4: tracking of cut transfers).
struct ItineraryEntry {
  Micros ts = 0;
  std::string holder_type;  ///< "Slaughterhouse" / "Distributor" / "Retailer".
  std::string holder_key;
  std::string location;
  std::string vehicle;  ///< Empty except for transport legs.

  void Encode(BufWriter* w) const {
    w->PutSigned(ts);
    w->PutString(holder_type);
    w->PutString(holder_key);
    w->PutString(location);
    w->PutString(vehicle);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&ts));
    AODB_RETURN_NOT_OK(r->GetString(&holder_type));
    AODB_RETURN_NOT_OK(r->GetString(&holder_key));
    AODB_RETURN_NOT_OK(r->GetString(&location));
    return r->GetString(&vehicle);
  }
};

/// Provenance + journey of one meat cut, as returned by tracing queries.
struct CutTrace {
  std::string cut_key;
  std::string cow_key;
  std::string farmer_key;        ///< Owner at slaughter time.
  std::string slaughterhouse_key;
  Micros slaughtered_at = 0;
  std::vector<ItineraryEntry> itinerary;

  void Encode(BufWriter* w) const {
    w->PutString(cut_key);
    w->PutString(cow_key);
    w->PutString(farmer_key);
    w->PutString(slaughterhouse_key);
    w->PutSigned(slaughtered_at);
    w->PutVector(itinerary, [](BufWriter& bw, const ItineraryEntry& e) {
      e.Encode(&bw);
    });
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&cut_key));
    AODB_RETURN_NOT_OK(r->GetString(&cow_key));
    AODB_RETURN_NOT_OK(r->GetString(&farmer_key));
    AODB_RETURN_NOT_OK(r->GetString(&slaughterhouse_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&slaughtered_at));
    return r->GetVector(&itinerary, [](BufReader& br, ItineraryEntry* e) {
      return e->Decode(&br);
    });
  }
};

/// Full trace of a consumer product back to the animals (functional
/// requirement 6: consumers trace meat products over the whole chain).
struct ProductTrace {
  std::string product_key;
  std::string retailer_key;
  Micros created_at = 0;
  std::vector<CutTrace> cuts;

  void Encode(BufWriter* w) const {
    w->PutString(product_key);
    w->PutString(retailer_key);
    w->PutSigned(created_at);
    w->PutVector(cuts, [](BufWriter& bw, const CutTrace& c) {
      c.Encode(&bw);
    });
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&product_key));
    AODB_RETURN_NOT_OK(r->GetString(&retailer_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&created_at));
    return r->GetVector(&cuts, [](BufReader& br, CutTrace* c) {
      return c->Decode(&br);
    });
  }
};

/// The non-actor object version of a meat cut used by the paper's
/// alternative model (Figure 5, §4.3): inanimate, frequently accessed
/// entities held as versioned objects *inside* the responsible actor and
/// copied on transfer.
struct MeatCutRecord {
  std::string cut_key;
  int32_t version = 0;  ///< Incremented on every inter-actor copy.
  std::string cow_key;
  std::string farmer_key;
  std::string slaughterhouse_key;
  Micros slaughtered_at = 0;
  std::vector<ItineraryEntry> itinerary;

  void Encode(BufWriter* w) const {
    w->PutString(cut_key);
    w->PutSigned(version);
    w->PutString(cow_key);
    w->PutString(farmer_key);
    w->PutString(slaughterhouse_key);
    w->PutSigned(slaughtered_at);
    w->PutVector(itinerary, [](BufWriter& bw, const ItineraryEntry& e) {
      e.Encode(&bw);
    });
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&cut_key));
    int64_t v = 0;
    AODB_RETURN_NOT_OK(r->GetSigned(&v));
    version = static_cast<int32_t>(v);
    AODB_RETURN_NOT_OK(r->GetString(&cow_key));
    AODB_RETURN_NOT_OK(r->GetString(&farmer_key));
    AODB_RETURN_NOT_OK(r->GetString(&slaughterhouse_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&slaughtered_at));
    return r->GetVector(&itinerary, [](BufReader& br, ItineraryEntry* e) {
      return e->Decode(&br);
    });
  }
};

// Simulated CPU costs of cattle-platform messages (same calibration scale
// as the SHM platform).
constexpr Micros kCostCollarReport = 120;
constexpr Micros kCostTraceHop = 80;
constexpr Micros kCostTransfer = 150;
constexpr Micros kCostLocalRead = 1;    ///< Reading an embedded object.
constexpr Micros kCostRemoteRead = 60;  ///< Projection call on an actor.

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_TYPES_H_
