// Farmer actors (paper §4.1): one actor per farm unit ("one farmer or
// several farmers who work together, e.g. a cooperative, as one single
// Farmer actor because the state of this farm unit is organized as a
// unit"). Holds the herd, pasture fences (non-actor objects), and the
// geo-fence alert inbox. Participates in ownership-transfer transactions
// with ops {add_cow, remove_cow}.

#ifndef AODB_CATTLE_FARMER_ACTOR_H_
#define AODB_CATTLE_FARMER_ACTOR_H_

#include <deque>
#include <set>
#include <string>
#include <vector>

#include "aodb/txn.h"
#include "cattle/geofence.h"
#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// Escape notification sent by a cow that left its pasture.
struct GeofenceAlert {
  std::string cow_key;
  Micros ts = 0;
  GeoPoint position;

  void Encode(BufWriter* w) const {
    w->PutString(cow_key);
    w->PutSigned(ts);
    position.Encode(w);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&cow_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&ts));
    return position.Decode(r);
  }
};

/// One farm unit.
class FarmerActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "cattle.Farmer";

  static constexpr char kOpAddCow[] = "add_cow";
  static constexpr char kOpRemoveCow[] = "remove_cow";

  /// Direct herd registration (initial intake, not a transfer).
  Status RegisterCow(std::string cow_key);

  /// The keys of all cows this farm currently owns.
  std::vector<std::string> Herd();
  int64_t HerdSize();
  bool Owns(std::string cow_key);

  /// Geo-fence alert delivery (from CowActor).
  void GeofenceAlertReceived(GeofenceAlert alert);
  std::vector<GeofenceAlert> DrainAlerts();
  int64_t TotalAlerts();

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override;
  void ApplyOp(const std::string& op, const std::string& arg) override;

 private:
  std::set<std::string> herd_;
  std::deque<GeofenceAlert> alerts_;
  int64_t total_alerts_ = 0;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_FARMER_ACTOR_H_
