#include "cattle/platform.h"

#include <cstdlib>
#include <memory>

#include "actor/method_registry.h"
#include "actor/retry_async.h"
#include "aodb/wire.h"
#include "common/logging.h"

namespace aodb {
namespace cattle {

namespace {

// Registers every cross-silo-callable cattle method with the process-global
// MethodRegistry. The transactional protocol methods are registered once per
// concrete type name because receive-side dispatch is per (type, method id).
void RegisterCattleWireMethods() {
  MethodRegistry& reg = MethodRegistry::Global();
  Status st = Status::OK();
  auto add = [&st](Status s) {
    if (st.ok()) st = std::move(s);
  };
  add(reg.Register(CowActor::kTypeName, &CowActor::Register, "Register"));
  add(reg.Register(CowActor::kTypeName, &CowActor::ReportCollar,
                   "ReportCollar"));
  add(reg.Register(CowActor::kTypeName, &CowActor::ReportBolus,
                   "ReportBolus"));
  add(reg.Register(CowActor::kTypeName, &CowActor::SetPasture, "SetPasture"));
  add(reg.Register(CowActor::kTypeName, &CowActor::Trajectory, "Trajectory"));
  add(reg.Register(CowActor::kTypeName, &CowActor::Info, "Info"));
  add(reg.Register(CowActor::kTypeName, &CowActor::MeanRumenTemperature,
                   "MeanRumenTemperature"));
  add(reg.Register(CowActor::kTypeName, &CowActor::GeofenceBreaches,
                   "GeofenceBreaches"));
  add(reg.Register(FarmerActor::kTypeName, &FarmerActor::RegisterCow,
                   "RegisterCow"));
  add(reg.Register(FarmerActor::kTypeName, &FarmerActor::Herd, "Herd"));
  add(reg.Register(FarmerActor::kTypeName, &FarmerActor::HerdSize,
                   "HerdSize"));
  add(reg.Register(FarmerActor::kTypeName, &FarmerActor::Owns, "Owns"));
  add(reg.Register(FarmerActor::kTypeName,
                   &FarmerActor::GeofenceAlertReceived,
                   "GeofenceAlertReceived"));
  add(reg.Register(FarmerActor::kTypeName, &FarmerActor::DrainAlerts,
                   "DrainAlerts"));
  add(reg.Register(FarmerActor::kTypeName, &FarmerActor::TotalAlerts,
                   "TotalAlerts"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::Slaughter, "Slaughter"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::ProcessedCows, "ProcessedCows"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::CreateCuts, "CreateCuts"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::CreateCutsLocal, "CreateCutsLocal"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::TransferCutsTo, "TransferCutsTo"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::ReadCutLocal, "ReadCutLocal"));
  add(reg.Register(SlaughterhouseActor::kTypeName,
                   &SlaughterhouseActor::LocalCutCount, "LocalCutCount"));
  add(reg.Register(MeatCutActor::kTypeName, &MeatCutActor::Create, "Create"));
  add(reg.Register(MeatCutActor::kTypeName, &MeatCutActor::AddItinerary,
                   "AddItinerary"));
  add(reg.Register(MeatCutActor::kTypeName, &MeatCutActor::Trace, "Trace"));
  add(reg.Register(MeatCutActor::kTypeName, &MeatCutActor::Holder, "Holder"));
  add(reg.Register(DeliveryActor::kTypeName, &DeliveryActor::Plan, "Plan"));
  add(reg.Register(DeliveryActor::kTypeName, &DeliveryActor::Depart,
                   "Depart"));
  add(reg.Register(DeliveryActor::kTypeName, &DeliveryActor::Arrive,
                   "Arrive"));
  add(reg.Register(DeliveryActor::kTypeName, &DeliveryActor::InTransit,
                   "InTransit"));
  add(reg.Register(DeliveryActor::kTypeName, &DeliveryActor::CutKeys,
                   "CutKeys"));
  add(reg.Register(DistributorActor::kTypeName,
                   &DistributorActor::PlanDelivery, "PlanDelivery"));
  add(reg.Register(DistributorActor::kTypeName, &DistributorActor::Deliveries,
                   "Deliveries"));
  add(reg.Register(DistributorActor::kTypeName, &DistributorActor::ReceiveCuts,
                   "ReceiveCuts"));
  add(reg.Register(DistributorActor::kTypeName,
                   &DistributorActor::TransferCutsToRetailer,
                   "TransferCutsToRetailer"));
  add(reg.Register(DistributorActor::kTypeName,
                   &DistributorActor::ReadCutLocal, "ReadCutLocal"));
  add(reg.Register(DistributorActor::kTypeName,
                   &DistributorActor::LocalCutCount, "LocalCutCount"));
  add(reg.Register(RetailerActor::kTypeName,
                   &RetailerActor::RegisterCutArrival, "RegisterCutArrival"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::CreateProduct,
                   "CreateProduct"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::ReceiveCuts,
                   "ReceiveCuts"));
  add(reg.Register(RetailerActor::kTypeName,
                   &RetailerActor::CreateProductLocal, "CreateProductLocal"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::ReadCutLocal,
                   "ReadCutLocal"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::LocalCutCount,
                   "LocalCutCount"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::AuditCutsRemote,
                   "AuditCutsRemote"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::AuditCutsLocal,
                   "AuditCutsLocal"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::Products,
                   "Products"));
  add(reg.Register(RetailerActor::kTypeName, &RetailerActor::AvailableCuts,
                   "AvailableCuts"));
  add(reg.Register(MeatProductActor::kTypeName, &MeatProductActor::Create,
                   "Create"));
  add(reg.Register(MeatProductActor::kTypeName,
                   &MeatProductActor::CreateWithRecords, "CreateWithRecords"));
  add(reg.Register(MeatProductActor::kTypeName, &MeatProductActor::Trace,
                   "Trace"));
  add(reg.Register(MeatProductActor::kTypeName, &MeatProductActor::CutKeys,
                   "CutKeys"));
  // Transactional protocol under every transactional cattle type.
  add(RegisterTransactionalWireMethods(CowActor::kTypeName));
  add(RegisterTransactionalWireMethods(FarmerActor::kTypeName));
  add(RegisterTransactionalWireMethods(SlaughterhouseActor::kTypeName));
  add(RegisterTransactionalWireMethods(MeatCutActor::kTypeName));
  add(RegisterTransactionalWireMethods(DistributorActor::kTypeName));
  add(RegisterTransactionalWireMethods(RetailerActor::kTypeName));
  if (!st.ok()) {
    AODB_LOG(Error, "cattle wire registration failed: %s",
             st.ToString().c_str());
    std::abort();
  }
}

}  // namespace

void CattlePlatform::RegisterTypes(Cluster& cluster) {
  RegisterCattleWireMethods();
  cluster.RegisterActorType<CowActor>();
  cluster.RegisterActorType<FarmerActor>();
  cluster.RegisterActorType<SlaughterhouseActor>();
  cluster.RegisterActorType<MeatCutActor>();
  cluster.RegisterActorType<DistributorActor>();
  cluster.RegisterActorType<DeliveryActor>();
  cluster.RegisterActorType<RetailerActor>();
  cluster.RegisterActorType<MeatProductActor>();
}

Future<Status> CattlePlatform::RegisterCow(const std::string& cow_key,
                                           const std::string& farmer_key,
                                           const std::string& breed) {
  Cluster* cluster = cluster_;
  Micros now = cluster_->clock()->Now();
  // Each side retried independently. Registration is not idempotent at the
  // actor (re-execution answers AlreadyExists), so when a retried attempt
  // reports AlreadyExists the earlier attempt actually applied and only its
  // ack was lost — treat that as success.
  auto side = [this](std::function<Future<Status>()> op) {
    auto retried = std::make_shared<std::atomic<bool>>(false);
    Promise<Status> settled;
    RetryAsync<Status>(cluster_->client_executor(), options_.client_retry,
                       NextSeed(), std::move(op), IsTransient,
                       [retried](const Status&) { retried->store(true); })
        .OnReady([retried, settled](Result<Status>&& r) {
          Status st = r.ok() ? r.value() : r.status();
          if (st.code() == StatusCode::kAlreadyExists && retried->load()) {
            st = Status::OK();
          }
          settled.SetValue(st);
        });
    return settled.GetFuture();
  };
  auto cow_ack = side([cluster, cow_key, farmer_key, breed, now] {
    return cluster->Ref<CowActor>(cow_key).Call(&CowActor::Register,
                                                farmer_key, breed, now);
  });
  auto farmer_ack = side([cluster, cow_key, farmer_key] {
    return cluster->Ref<FarmerActor>(farmer_key)
        .Call(&FarmerActor::RegisterCow, cow_key);
  });
  Promise<Status> done;
  WhenAll(std::vector<Future<Status>>{cow_ack, farmer_ack})
      .OnReady([done](Result<std::vector<Result<Status>>>&& r) {
        if (!r.ok()) {
          done.SetValue(r.status());
          return;
        }
        for (const auto& ack : r.value()) {
          Status st = ack.ok() ? ack.value() : ack.status();
          if (!st.ok()) {
            done.SetValue(st);
            return;
          }
        }
        done.SetValue(Status::OK());
      });
  return done.GetFuture();
}

Future<Status> CattlePlatform::TransferOwnershipTxn(
    const std::string& cow_key, const std::string& from_farmer,
    const std::string& to_farmer) {
  return txn_.Run({
      TxnOp{CowActor::kTypeName, cow_key, CowActor::kOpSetOwner, to_farmer},
      TxnOp{FarmerActor::kTypeName, from_farmer, FarmerActor::kOpRemoveCow,
            cow_key},
      TxnOp{FarmerActor::kTypeName, to_farmer, FarmerActor::kOpAddCow,
            cow_key},
  });
}

Future<Status> CattlePlatform::TransferOwnershipWorkflow(
    const std::string& cow_key, const std::string& from_farmer,
    const std::string& to_farmer) {
  return workflows_.Run({
      WorkflowStep{FarmerActor::kTypeName, from_farmer,
                   FarmerActor::kOpRemoveCow, cow_key,
                   FarmerActor::kOpAddCow, cow_key},
      WorkflowStep{FarmerActor::kTypeName, to_farmer, FarmerActor::kOpAddCow,
                   cow_key, FarmerActor::kOpRemoveCow, cow_key},
      WorkflowStep{CowActor::kTypeName, cow_key, CowActor::kOpSetOwner,
                   to_farmer, CowActor::kOpSetOwner, from_farmer},
  });
}

Future<std::vector<std::string>> CattlePlatform::SlaughterAndCut(
    const std::string& slaughterhouse_key, const std::string& cow_key,
    const std::string& farmer_key, int num_cuts) {
  auto sh = cluster_->Ref<SlaughterhouseActor>(slaughterhouse_key);
  Promise<std::vector<std::string>> done;
  sh.Call(&SlaughterhouseActor::Slaughter, cow_key)
      .OnReady([sh, cow_key, farmer_key, num_cuts,
                done](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        if (!st.ok()) {
          done.SetError(st);
          return;
        }
        sh.Call(&SlaughterhouseActor::CreateCuts, cow_key, farmer_key,
                num_cuts)
            .OnReady([done](Result<std::vector<std::string>>&& keys) {
              if (!keys.ok()) {
                done.SetError(keys.status());
                return;
              }
              done.SetValue(std::move(keys).value());
            });
      });
  return done.GetFuture();
}

Future<Status> CattlePlatform::ShipCuts(const std::string& distributor_key,
                                        const std::string& retailer_key,
                                        std::vector<std::string> cut_keys,
                                        const std::string& source,
                                        const std::string& destination) {
  auto dist = cluster_->Ref<DistributorActor>(distributor_key);
  Cluster* cluster = cluster_;
  Promise<Status> done;
  dist.Call(&DistributorActor::PlanDelivery, cut_keys, source, destination,
            std::string("truck-1"))
      .OnReady([cluster, retailer_key, cut_keys,
                done](Result<std::string>&& delivery_key) {
        if (!delivery_key.ok()) {
          done.SetValue(delivery_key.status());
          return;
        }
        auto delivery =
            cluster->Ref<DeliveryActor>(delivery_key.value());
        delivery.Call(&DeliveryActor::Depart)
            .OnReady([cluster, delivery, retailer_key, cut_keys,
                      done](Result<Status>&& dep) {
              Status st = dep.ok() ? dep.value() : dep.status();
              if (!st.ok()) {
                done.SetValue(st);
                return;
              }
              delivery
                  .Call(&DeliveryActor::Arrive, std::string("Retailer"),
                        retailer_key)
                  .OnReady([cluster, retailer_key, cut_keys,
                            done](Result<Status>&& arr) {
                    Status st = arr.ok() ? arr.value() : arr.status();
                    if (!st.ok()) {
                      done.SetValue(st);
                      return;
                    }
                    cluster->Ref<RetailerActor>(retailer_key)
                        .Call(&RetailerActor::RegisterCutArrival, cut_keys)
                        .OnReady([done](Result<Status>&& reg) {
                          done.SetValue(reg.ok() ? reg.value()
                                                 : reg.status());
                        });
                  });
            });
      });
  return done.GetFuture();
}

Future<ProductTrace> CattlePlatform::TraceProduct(
    const std::string& product_key) {
  Cluster* cluster = cluster_;
  return RetryAsync<ProductTrace>(
      cluster_->client_executor(), options_.client_retry, NextSeed(),
      [cluster, product_key] {
        return cluster->Ref<MeatProductActor>(product_key)
            .Call(&MeatProductActor::Trace);
      });
}

}  // namespace cattle
}  // namespace aodb
