#include "cattle/cow_actor.h"

#include "actor/actor_ref.h"
#include "cattle/farmer_actor.h"

namespace aodb {
namespace cattle {

Status CowActor::Register(std::string farmer_key, std::string breed,
                          Micros born_at) {
  if (!owner_farmer_.empty()) {
    return Status::AlreadyExists("cow already registered to " +
                                 owner_farmer_);
  }
  owner_farmer_ = std::move(farmer_key);
  owner_history_.push_back(owner_farmer_);
  breed_ = std::move(breed);
  born_at_ = born_at;
  return Status::OK();
}

Status CowActor::ReportCollar(CollarReading reading) {
  if (status_ == CowStatus::kSlaughtered) {
    return Status::FailedPrecondition("cow is slaughtered");
  }
  trajectory_.push_back(reading);
  if (trajectory_.size() > kTrajectoryCapacity) trajectory_.pop_front();
  if (!pasture_.empty() && !pasture_.Contains(reading.position)) {
    ++geofence_breaches_;
    if (!owner_farmer_.empty()) {
      ctx().Ref<FarmerActor>(owner_farmer_)
          .Tell(&FarmerActor::GeofenceAlertReceived,
                GeofenceAlert{ctx().self().key, reading.ts,
                              reading.position});
    }
  }
  return Status::OK();
}

Status CowActor::ReportBolus(BolusReading reading) {
  if (status_ == CowStatus::kSlaughtered) {
    return Status::FailedPrecondition("cow is slaughtered");
  }
  bolus_window_.push_back(reading);
  if (bolus_window_.size() > kTrajectoryCapacity) bolus_window_.pop_front();
  return Status::OK();
}

Status CowActor::SetPasture(GeoFence fence) {
  pasture_ = std::move(fence);
  return Status::OK();
}

bool CowActor::CallerMayRead() const {
  const Principal& p = ctx().caller();
  if (p.tenant.empty()) return true;
  if (p.tenant == owner_farmer_) return true;
  // Slaughterhouses and admins may read provenance (requirement 3).
  return p.role == "slaughterhouse" || p.role == "admin";
}

std::vector<CollarReading> CowActor::Trajectory(Micros from, Micros to) {
  std::vector<CollarReading> out;
  if (!CallerMayRead()) return out;
  for (const CollarReading& r : trajectory_) {
    if (r.ts >= from && r.ts < to) out.push_back(r);
  }
  return out;
}

CowInfo CowActor::Info() {
  CowInfo info;
  info.cow_key = ctx().self().key;
  if (!CallerMayRead()) return info;
  info.owner_farmer = owner_farmer_;
  info.owner_history = owner_history_;
  info.status = status_;
  info.breed = breed_;
  info.born_at = born_at_;
  if (!trajectory_.empty()) {
    info.has_location = true;
    info.location = trajectory_.back().position;
  }
  return info;
}

double CowActor::MeanRumenTemperature() {
  if (bolus_window_.empty()) return 0;
  double sum = 0;
  for (const BolusReading& r : bolus_window_) sum += r.rumen_temperature_c;
  return sum / static_cast<double>(bolus_window_.size());
}

int64_t CowActor::GeofenceBreaches() { return geofence_breaches_; }

Status CowActor::ValidateOp(const std::string& op, const std::string& arg) {
  if (op == kOpSetOwner) {
    if (arg.empty()) return Status::InvalidArgument("empty new owner");
    if (status_ == CowStatus::kSlaughtered) {
      return Status::FailedPrecondition("cannot transfer a slaughtered cow");
    }
    return Status::OK();
  }
  if (op == kOpSlaughter) {
    if (status_ == CowStatus::kSlaughtered) {
      return Status::FailedPrecondition("cow already slaughtered");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown cow op: " + op);
}

void CowActor::ApplyOp(const std::string& op, const std::string& arg) {
  if (op == kOpSetOwner) {
    owner_farmer_ = arg;
    owner_history_.push_back(arg);
  } else if (op == kOpSlaughter) {
    status_ = CowStatus::kSlaughtered;
  }
}

}  // namespace cattle
}  // namespace aodb
