// Geo-fencing support (functional requirement 2: identify whether a cow is
// in an appropriate area, e.g. when rotating pasture grounds).

#ifndef AODB_CATTLE_GEOFENCE_H_
#define AODB_CATTLE_GEOFENCE_H_

#include <vector>

#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// A simple polygon fence (vertices in order, implicitly closed).
struct GeoFence {
  std::vector<GeoPoint> vertices;

  bool empty() const { return vertices.size() < 3; }

  void Encode(BufWriter* w) const {
    w->PutVector(vertices, [](BufWriter& bw, const GeoPoint& p) {
      p.Encode(&bw);
    });
  }
  Status Decode(BufReader* r) {
    return r->GetVector(&vertices, [](BufReader& br, GeoPoint* p) {
      return p->Decode(&br);
    });
  }

  /// Even-odd (ray casting) point-in-polygon test. Points exactly on an
  /// edge may land on either side; fences are not adjudication devices.
  bool Contains(const GeoPoint& p) const {
    if (empty()) return true;  // No fence: everywhere is fine.
    bool inside = false;
    size_t n = vertices.size();
    for (size_t i = 0, j = n - 1; i < n; j = i++) {
      const GeoPoint& a = vertices[i];
      const GeoPoint& b = vertices[j];
      bool crosses = (a.lat > p.lat) != (b.lat > p.lat);
      if (crosses) {
        double x_at =
            (b.lon - a.lon) * (p.lat - a.lat) / (b.lat - a.lat) + a.lon;
        if (p.lon < x_at) inside = !inside;
      }
    }
    return inside;
  }

  /// Axis-aligned rectangular fence helper.
  static GeoFence Rectangle(double lat_min, double lon_min, double lat_max,
                            double lon_max) {
    GeoFence f;
    f.vertices = {GeoPoint{lat_min, lon_min}, GeoPoint{lat_min, lon_max},
                  GeoPoint{lat_max, lon_max}, GeoPoint{lat_max, lon_min}};
    return f;
  }
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_GEOFENCE_H_
