#include "cattle/slaughterhouse_actor.h"

#include "cattle/distributor_actor.h"

namespace aodb {
namespace cattle {

Future<Status> SlaughterhouseActor::Slaughter(std::string cow_key) {
  Promise<Status> done;
  std::string self_key = ctx().self().key;
  auto cow = ctx().Ref<CowActor>(cow_key);
  std::vector<std::string>* processed = &processed_cows_;
  cow.Call(&CowActor::ExecuteOp, std::string(CowActor::kOpSlaughter),
           std::string())
      .OnReady([done, processed, cow_key](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        // Note: `processed` stays valid — the activation outlives its
        // pending calls, and the continuation runs as part of message
        // processing on this silo.
        if (st.ok()) processed->push_back(cow_key);
        done.SetValue(st);
      });
  return done.GetFuture();
}

std::vector<std::string> SlaughterhouseActor::ProcessedCows() {
  return processed_cows_;
}

Future<std::vector<std::string>> SlaughterhouseActor::CreateCuts(
    std::string cow_key, std::string farmer_key, int num_cuts) {
  std::vector<std::string> keys;
  std::vector<Future<Status>> acks;
  Micros now = ctx().Now();
  std::string self_key = ctx().self().key;
  CallOptions opts;
  opts.cost_us = kCostTransfer;
  // Workflow steps mutate traceability state: never shed under overload.
  opts.priority = MessagePriority::kControl;
  for (int i = 0; i < num_cuts; ++i) {
    std::string key = cow_key + ".cut" + std::to_string(i);
    keys.push_back(key);
    acks.push_back(ctx().Ref<MeatCutActor>(key).CallWith(
        opts, &MeatCutActor::Create, cow_key, farmer_key, self_key, now,
        std::string("slaughterhouse floor")));
  }
  Promise<std::vector<std::string>> done;
  WhenAll(acks).OnReady(
      [done, keys](Result<std::vector<Result<Status>>>&& r) {
        if (!r.ok()) {
          done.SetError(r.status());
          return;
        }
        for (const auto& ack : r.value()) {
          Status st = ack.ok() ? ack.value() : ack.status();
          if (!st.ok()) {
            done.SetError(st);
            return;
          }
        }
        done.SetValue(keys);
      });
  return done.GetFuture();
}

std::vector<std::string> SlaughterhouseActor::CreateCutsLocal(
    std::string cow_key, std::string farmer_key, int num_cuts) {
  std::vector<std::string> keys;
  Micros now = ctx().Now();
  for (int i = 0; i < num_cuts; ++i) {
    MeatCutRecord rec;
    rec.cut_key = cow_key + ".cut" + std::to_string(i);
    rec.version = 1;
    rec.cow_key = cow_key;
    rec.farmer_key = farmer_key;
    rec.slaughterhouse_key = ctx().self().key;
    rec.slaughtered_at = now;
    rec.itinerary.push_back(ItineraryEntry{
        now, "Slaughterhouse", ctx().self().key, "slaughterhouse floor", ""});
    keys.push_back(rec.cut_key);
    local_cuts_[rec.cut_key] = std::move(rec);
  }
  return keys;
}

Future<Status> SlaughterhouseActor::TransferCutsTo(
    std::string distributor_key, std::vector<std::string> cut_keys,
    std::string location) {
  std::vector<MeatCutRecord> copies;
  Micros now = ctx().Now();
  for (const std::string& key : cut_keys) {
    auto it = local_cuts_.find(key);
    if (it == local_cuts_.end()) {
      return Future<Status>::FromError(
          Status::NotFound("cut not held here: " + key));
    }
    MeatCutRecord copy = it->second;
    ++copy.version;
    copy.itinerary.push_back(
        ItineraryEntry{now, "Distributor", distributor_key, location, ""});
    copies.push_back(std::move(copy));
    local_cuts_.erase(it);
  }
  CallOptions opts;
  opts.cost_us = kCostTransfer;
  // Object copies travel in the message (the §4.3 copying overhead).
  opts.request_bytes = static_cast<int64_t>(copies.size()) * 256;
  opts.priority = MessagePriority::kControl;
  return ctx().Ref<DistributorActor>(distributor_key)
      .CallWith(opts, &DistributorActor::ReceiveCuts, std::move(copies));
}

MeatCutRecord SlaughterhouseActor::ReadCutLocal(std::string cut_key) {
  auto it = local_cuts_.find(cut_key);
  if (it == local_cuts_.end()) return MeatCutRecord{};
  return it->second;
}

int64_t SlaughterhouseActor::LocalCutCount() {
  return static_cast<int64_t>(local_cuts_.size());
}

Status SlaughterhouseActor::ValidateOp(const std::string& op,
                                       const std::string&) {
  return Status::InvalidArgument("unknown slaughterhouse op: " + op);
}

void SlaughterhouseActor::ApplyOp(const std::string&, const std::string&) {}

}  // namespace cattle
}  // namespace aodb
