// Retailer and MeatProduct actors (Figure 3): retailers receive meat cuts
// and transform them into consumer products by disaggregating or combining
// cuts (many-to-many between products and cuts). Tracing a product walks
// product -> cuts -> cow -> farmer. Object-cut records (Figure 5) are also
// supported: products then embed provenance copies directly.

#ifndef AODB_CATTLE_RETAILER_ACTOR_H_
#define AODB_CATTLE_RETAILER_ACTOR_H_

#include <map>
#include <string>
#include <vector>

#include "aodb/txn.h"
#include "cattle/meat_cut_actor.h"
#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// A consumer-facing meat product derived from one or more cuts.
class MeatProductActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "cattle.MeatProduct";

  /// Created by a retailer from a set of cut keys (actor-cut model).
  Status Create(std::string retailer_key, std::vector<std::string> cut_keys);

  /// Created by a retailer with embedded provenance (object-cut model); no
  /// further messages are needed to trace.
  Status CreateWithRecords(std::string retailer_key,
                           std::vector<MeatCutRecord> records);

  /// Full supply-chain trace (requirement 6: consumer tracing). In the
  /// actor-cut model this fans out to the cut actors; in the object-cut
  /// model it is answered from embedded state.
  Future<ProductTrace> Trace();

  std::vector<std::string> CutKeys();

 private:
  bool created_ = false;
  std::string retailer_key_;
  Micros created_at_ = 0;
  std::vector<std::string> cut_keys_;
  std::vector<MeatCutRecord> embedded_records_;
};

/// One retailer (e.g. a supermarket chain).
class RetailerActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "cattle.Retailer";

  // --- Actor-cut model ------------------------------------------------------

  /// Registers arrival of actor-model cuts at this retailer.
  Status RegisterCutArrival(std::vector<std::string> cut_keys);

  /// Builds a MeatProduct actor "<self>.p<N>" from the given cuts.
  Future<std::string> CreateProduct(std::vector<std::string> cut_keys);

  // --- Object-cut model -------------------------------------------------------

  Status ReceiveCuts(std::vector<MeatCutRecord> cuts);

  /// Builds a product embedding copies of the named local records.
  Future<std::string> CreateProductLocal(std::vector<std::string> cut_keys);

  MeatCutRecord ReadCutLocal(std::string cut_key);
  int64_t LocalCutCount();

  // --- Granularity ablation probes (§4.3) -----------------------------------

  /// Reads the trace of every listed cut `rounds` times through cross-actor
  /// calls (actor-cut model). Returns the number of itinerary hops seen.
  Future<int64_t> AuditCutsRemote(std::vector<std::string> cut_keys,
                                  int rounds);

  /// The same audit over embedded records: no messages leave this actor
  /// (object-cut model). Returns the number of itinerary hops seen.
  int64_t AuditCutsLocal(std::vector<std::string> cut_keys, int rounds);

  std::vector<std::string> Products();
  std::vector<std::string> AvailableCuts();

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override;
  void ApplyOp(const std::string& op, const std::string& arg) override;

 private:
  int64_t product_seq_ = 0;
  std::vector<std::string> products_;
  std::vector<std::string> arrived_cuts_;
  std::map<std::string, MeatCutRecord> local_cuts_;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_RETAILER_ACTOR_H_
