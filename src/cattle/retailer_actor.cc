#include "cattle/retailer_actor.h"

namespace aodb {
namespace cattle {

// --- MeatProductActor --------------------------------------------------------

Status MeatProductActor::Create(std::string retailer_key,
                                std::vector<std::string> cut_keys) {
  if (created_) return Status::AlreadyExists("product exists");
  if (cut_keys.empty()) {
    return Status::InvalidArgument("product needs at least one cut");
  }
  created_ = true;
  retailer_key_ = std::move(retailer_key);
  cut_keys_ = std::move(cut_keys);
  created_at_ = ctx().Now();
  return Status::OK();
}

Status MeatProductActor::CreateWithRecords(
    std::string retailer_key, std::vector<MeatCutRecord> records) {
  if (created_) return Status::AlreadyExists("product exists");
  if (records.empty()) {
    return Status::InvalidArgument("product needs at least one cut");
  }
  created_ = true;
  retailer_key_ = std::move(retailer_key);
  for (const MeatCutRecord& r : records) cut_keys_.push_back(r.cut_key);
  embedded_records_ = std::move(records);
  created_at_ = ctx().Now();
  return Status::OK();
}

Future<ProductTrace> MeatProductActor::Trace() {
  ProductTrace trace;
  trace.product_key = ctx().self().key;
  trace.retailer_key = retailer_key_;
  trace.created_at = created_at_;
  if (!created_) {
    return Future<ProductTrace>::FromError(
        Status::NotFound("product not created"));
  }
  if (!embedded_records_.empty()) {
    // Object-cut model: answer locally, no messages (the §4.3 win).
    for (const MeatCutRecord& r : embedded_records_) {
      trace.cuts.push_back(CutTrace{r.cut_key, r.cow_key, r.farmer_key,
                                    r.slaughterhouse_key, r.slaughtered_at,
                                    r.itinerary});
    }
    return Future<ProductTrace>::FromValue(std::move(trace));
  }
  // Actor-cut model: gather from the cut actors.
  CallOptions opts;
  opts.cost_us = kCostRemoteRead;
  std::vector<Future<CutTrace>> calls;
  calls.reserve(cut_keys_.size());
  for (const std::string& key : cut_keys_) {
    calls.push_back(
        ctx().Ref<MeatCutActor>(key).CallWith(opts, &MeatCutActor::Trace));
  }
  Promise<ProductTrace> done;
  WhenAll(calls).OnReady(
      [done, trace](Result<std::vector<Result<CutTrace>>>&& r) mutable {
        if (!r.ok()) {
          done.SetError(r.status());
          return;
        }
        for (auto& c : r.value()) {
          if (!c.ok()) {
            done.SetError(c.status());
            return;
          }
          trace.cuts.push_back(std::move(c).value());
        }
        done.SetValue(std::move(trace));
      });
  return done.GetFuture();
}

std::vector<std::string> MeatProductActor::CutKeys() { return cut_keys_; }

// --- RetailerActor -----------------------------------------------------------

Status RetailerActor::RegisterCutArrival(std::vector<std::string> cut_keys) {
  for (std::string& key : cut_keys) {
    arrived_cuts_.push_back(std::move(key));
  }
  return Status::OK();
}

Future<std::string> RetailerActor::CreateProduct(
    std::vector<std::string> cut_keys) {
  std::string key = ctx().self().key + ".p" + std::to_string(product_seq_++);
  products_.push_back(key);
  Promise<std::string> done;
  ctx().Ref<MeatProductActor>(key)
      .Call(&MeatProductActor::Create, ctx().self().key, std::move(cut_keys))
      .OnReady([done, key](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok()) {
          done.SetValue(key);
        } else {
          done.SetError(st);
        }
      });
  return done.GetFuture();
}

Status RetailerActor::ReceiveCuts(std::vector<MeatCutRecord> cuts) {
  for (MeatCutRecord& cut : cuts) {
    arrived_cuts_.push_back(cut.cut_key);
    local_cuts_[cut.cut_key] = std::move(cut);
  }
  return Status::OK();
}

Future<std::string> RetailerActor::CreateProductLocal(
    std::vector<std::string> cut_keys) {
  std::vector<MeatCutRecord> records;
  for (const std::string& key : cut_keys) {
    auto it = local_cuts_.find(key);
    if (it == local_cuts_.end()) {
      return Future<std::string>::FromError(
          Status::NotFound("cut not held here: " + key));
    }
    MeatCutRecord copy = it->second;
    ++copy.version;
    records.push_back(std::move(copy));
  }
  std::string key = ctx().self().key + ".p" + std::to_string(product_seq_++);
  products_.push_back(key);
  Promise<std::string> done;
  ctx().Ref<MeatProductActor>(key)
      .Call(&MeatProductActor::CreateWithRecords, ctx().self().key,
            std::move(records))
      .OnReady([done, key](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        if (st.ok()) {
          done.SetValue(key);
        } else {
          done.SetError(st);
        }
      });
  return done.GetFuture();
}

MeatCutRecord RetailerActor::ReadCutLocal(std::string cut_key) {
  auto it = local_cuts_.find(cut_key);
  if (it == local_cuts_.end()) return MeatCutRecord{};
  return it->second;
}

int64_t RetailerActor::LocalCutCount() {
  return static_cast<int64_t>(local_cuts_.size());
}

Future<int64_t> RetailerActor::AuditCutsRemote(
    std::vector<std::string> cut_keys, int rounds) {
  CallOptions opts;
  opts.cost_us = kCostRemoteRead;
  std::vector<Future<CutTrace>> calls;
  calls.reserve(cut_keys.size() * static_cast<size_t>(rounds));
  for (int round = 0; round < rounds; ++round) {
    for (const std::string& key : cut_keys) {
      calls.push_back(
          ctx().Ref<MeatCutActor>(key).CallWith(opts, &MeatCutActor::Trace));
    }
  }
  Promise<int64_t> done;
  WhenAll(calls).OnReady([done](Result<std::vector<Result<CutTrace>>>&& r) {
    if (!r.ok()) {
      done.SetError(r.status());
      return;
    }
    int64_t hops = 0;
    for (auto& c : r.value()) {
      if (!c.ok()) {
        done.SetError(c.status());
        return;
      }
      hops += static_cast<int64_t>(c.value().itinerary.size());
    }
    done.SetValue(hops);
  });
  return done.GetFuture();
}

int64_t RetailerActor::AuditCutsLocal(std::vector<std::string> cut_keys,
                                      int rounds) {
  int64_t hops = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const std::string& key : cut_keys) {
      auto it = local_cuts_.find(key);
      if (it != local_cuts_.end()) {
        hops += static_cast<int64_t>(it->second.itinerary.size());
      }
    }
  }
  return hops;
}

std::vector<std::string> RetailerActor::Products() { return products_; }

std::vector<std::string> RetailerActor::AvailableCuts() {
  return arrived_cuts_;
}

Status RetailerActor::ValidateOp(const std::string& op, const std::string&) {
  return Status::InvalidArgument("unknown retailer op: " + op);
}

void RetailerActor::ApplyOp(const std::string&, const std::string&) {}

}  // namespace cattle
}  // namespace aodb
