// Cattle platform facade: type registration and the cross-actor operations
// of the case study — cow registration, ownership transfer (via 2PC
// transaction OR saga workflow, the paper's §4.4 options), the slaughter-
// to-product pipeline in both meat-cut models, and consumer tracing.

#ifndef AODB_CATTLE_PLATFORM_H_
#define AODB_CATTLE_PLATFORM_H_

#include <atomic>
#include <string>
#include <vector>

#include "aodb/txn.h"
#include "aodb/workflow.h"
#include "cattle/cow_actor.h"
#include "cattle/distributor_actor.h"
#include "cattle/farmer_actor.h"
#include "cattle/meat_cut_actor.h"
#include "cattle/retailer_actor.h"
#include "cattle/slaughterhouse_actor.h"

namespace aodb {
namespace cattle {

/// Client-side behaviour of the cattle facade under faults.
struct CattleClientOptions {
  /// Retry policy for direct client calls (RegisterCow, TraceProduct).
  /// Transactions and workflows carry their own policies below.
  RetryPolicy client_retry = RetryPolicy::None();
  TxnOptions txn;
  WorkflowOptions workflow;
};

/// Client-side facade over the cattle actor database.
class CattlePlatform {
 public:
  explicit CattlePlatform(Cluster* cluster, CattleClientOptions options = {})
      : cluster_(cluster),
        options_(options),
        txn_(cluster, options.txn),
        workflows_(cluster, options.workflow) {}

  /// Registers every cattle actor type on the cluster.
  static void RegisterTypes(Cluster& cluster);

  // --- Key naming -----------------------------------------------------------
  static std::string CowKey(int i) { return "cow-" + std::to_string(i); }
  static std::string FarmerKey(int i) { return "farm-" + std::to_string(i); }
  static std::string SlaughterhouseKey(int i) {
    return "sh-" + std::to_string(i);
  }
  static std::string DistributorKey(int i) {
    return "dist-" + std::to_string(i);
  }
  static std::string RetailerKey(int i) {
    return "shop-" + std::to_string(i);
  }

  // --- Herd management -------------------------------------------------------

  /// Registers a new cow under a farmer (both sides updated).
  Future<Status> RegisterCow(const std::string& cow_key,
                             const std::string& farmer_key,
                             const std::string& breed);

  /// Ownership transfer as an ACID 2PC transaction across the cow and both
  /// farmers (the paper's preferred option when transactions exist).
  Future<Status> TransferOwnershipTxn(const std::string& cow_key,
                                      const std::string& from_farmer,
                                      const std::string& to_farmer);

  /// The same transfer as a compensating saga workflow (the paper's
  /// fallback when the runtime lacks transactions).
  Future<Status> TransferOwnershipWorkflow(const std::string& cow_key,
                                           const std::string& from_farmer,
                                           const std::string& to_farmer);

  // --- Supply chain (actor-cut model, Figure 3) --------------------------------

  /// Slaughters a cow and derives `num_cuts` MeatCutActors. Returns the
  /// cut keys.
  Future<std::vector<std::string>> SlaughterAndCut(
      const std::string& slaughterhouse_key, const std::string& cow_key,
      const std::string& farmer_key, int num_cuts);

  /// Ships cuts via a new delivery of `distributor_key` and registers their
  /// arrival at the retailer.
  Future<Status> ShipCuts(const std::string& distributor_key,
                          const std::string& retailer_key,
                          std::vector<std::string> cut_keys,
                          const std::string& source,
                          const std::string& destination);

  /// Consumer tracing of a product back to the animals.
  Future<ProductTrace> TraceProduct(const std::string& product_key);

  TxnManager& txn() { return txn_; }
  WorkflowEngine& workflows() { return workflows_; }
  Cluster& cluster() { return *cluster_; }

 private:
  /// Deterministic per-request seed for retry jitter.
  uint64_t NextSeed() {
    return cluster_->options().seed ^ (0x63617474ULL + seed_seq_.fetch_add(1));
  }

  Cluster* cluster_;
  const CattleClientOptions options_;
  std::atomic<uint64_t> seed_seq_{0};
  TxnManager txn_;
  WorkflowEngine workflows_;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_PLATFORM_H_
