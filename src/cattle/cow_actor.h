// Cow actors (paper §4.1): one actor per cow. The collar sensor is NOT a
// separate actor — its readings are non-actor state encapsulated inside the
// cow ("Since each collar is bound to a cow, we encapsulate this sensor
// information inside cow actors"). Cows take part in ownership-transfer
// transactions and in slaughter, so they are TransactionalActors with the
// op vocabulary {set_owner, slaughter}.

#ifndef AODB_CATTLE_COW_ACTOR_H_
#define AODB_CATTLE_COW_ACTOR_H_

#include <deque>
#include <string>
#include <vector>

#include "aodb/txn.h"
#include "cattle/geofence.h"
#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// Snapshot of a cow's identity and status, used by farmer/slaughterhouse
/// service queries (requirement 3: provenance of the cows).
struct CowInfo {
  std::string cow_key;
  std::string owner_farmer;
  std::vector<std::string> owner_history;
  CowStatus status = CowStatus::kAlive;
  std::string breed;
  Micros born_at = 0;
  bool has_location = false;
  GeoPoint location;

  void Encode(BufWriter* w) const {
    w->PutString(cow_key);
    w->PutString(owner_farmer);
    w->PutVector(owner_history,
                 [](BufWriter& bw, const std::string& s) { bw.PutString(s); });
    w->PutSigned(static_cast<int64_t>(status));
    w->PutString(breed);
    w->PutSigned(born_at);
    w->PutBool(has_location);
    location.Encode(w);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&cow_key));
    AODB_RETURN_NOT_OK(r->GetString(&owner_farmer));
    AODB_RETURN_NOT_OK(r->GetVector(
        &owner_history,
        [](BufReader& br, std::string* s) { return br.GetString(s); }));
    int64_t st = 0;
    AODB_RETURN_NOT_OK(r->GetSigned(&st));
    status = static_cast<CowStatus>(st);
    AODB_RETURN_NOT_OK(r->GetString(&breed));
    AODB_RETURN_NOT_OK(r->GetSigned(&born_at));
    AODB_RETURN_NOT_OK(r->GetBool(&has_location));
    return location.Decode(r);
  }
};

/// One cow. Keys look like "cow-123" (a GS1 ear-tag id in production).
class CowActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "cattle.Cow";
  static constexpr size_t kTrajectoryCapacity = 4096;

  // Transaction op vocabulary.
  static constexpr char kOpSetOwner[] = "set_owner";
  static constexpr char kOpSlaughter[] = "slaughter";

  /// Initial registration by the owning farmer.
  Status Register(std::string farmer_key, std::string breed, Micros born_at);

  /// Collar sensor report: appends to the trajectory window and checks the
  /// assigned pasture geo-fence, alerting the owner on escape.
  Status ReportCollar(CollarReading reading);

  /// Bolus (internal) sensor report — heterogeneous second stream with its
  /// own sampling rate.
  Status ReportBolus(BolusReading reading);

  /// Assigns the pasture fence (requirement 2: pasture rotation).
  Status SetPasture(GeoFence fence);

  /// Trajectory points with ts in [from, to), oldest first, visible only to
  /// the owner tenant / authorized roles.
  std::vector<CollarReading> Trajectory(Micros from, Micros to);

  CowInfo Info();

  /// Latest internal-sensor state (mean rumen temperature over the window).
  double MeanRumenTemperature();

  int64_t GeofenceBreaches();

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override;
  void ApplyOp(const std::string& op, const std::string& arg) override;

 private:
  bool CallerMayRead() const;

  std::string owner_farmer_;
  std::vector<std::string> owner_history_;
  CowStatus status_ = CowStatus::kAlive;
  std::string breed_;
  Micros born_at_ = 0;
  std::deque<CollarReading> trajectory_;
  std::deque<BolusReading> bolus_window_;
  GeoFence pasture_;
  int64_t geofence_breaches_ = 0;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_COW_ACTOR_H_
