// Meat cut actors: the Figure 3 model's representation of the inanimate
// meat-cut entity as a full actor. The alternative Figure 5 model (§4.3)
// instead embeds MeatCutRecord objects inside the responsible actors; both
// are implemented, and bench/ablation_granularity compares them.

#ifndef AODB_CATTLE_MEAT_CUT_ACTOR_H_
#define AODB_CATTLE_MEAT_CUT_ACTOR_H_

#include <string>
#include <vector>

#include "aodb/txn.h"
#include "cattle/types.h"

namespace aodb {
namespace cattle {

/// One unit of beef distributed as a whole (actor variant).
class MeatCutActor : public TransactionalActor {
 public:
  static constexpr char kTypeName[] = "cattle.MeatCut";

  static constexpr char kOpSetHolder[] = "set_holder";

  /// Created by the slaughterhouse with full provenance.
  Status Create(std::string cow_key, std::string farmer_key,
                std::string slaughterhouse_key, Micros slaughtered_at,
                std::string location);

  /// Appends a journey hop (transfer or transport leg).
  Status AddItinerary(ItineraryEntry entry);

  /// Provenance + full itinerary (tracing, requirements 4-6).
  CutTrace Trace();

  /// The current holder ("<type>/<key>").
  std::string Holder();

 protected:
  Status ValidateOp(const std::string& op, const std::string& arg) override;
  void ApplyOp(const std::string& op, const std::string& arg) override;

 private:
  bool created_ = false;
  std::string cow_key_;
  std::string farmer_key_;
  std::string slaughterhouse_key_;
  Micros slaughtered_at_ = 0;
  std::string holder_;
  std::vector<ItineraryEntry> itinerary_;
};

}  // namespace cattle
}  // namespace aodb

#endif  // AODB_CATTLE_MEAT_CUT_ACTOR_H_
