// Aggregator actors: one per (channel, level), computing statistical
// aggregates over fixed windows and feeding the next level (hour -> day ->
// month). Modeled as actors because levels can aggregate in parallel
// (paper §4.2); placed prefer-local next to their channel (paper §5).

#ifndef AODB_SHM_AGGREGATOR_ACTOR_H_
#define AODB_SHM_AGGREGATOR_ACTOR_H_

#include <map>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "common/stats.h"
#include "shm/types.h"

namespace aodb {
namespace shm {

/// Windowed statistics aggregator. Keeps a bounded map of recent windows
/// (Welford per window); when a window closes (a point arrives beyond its
/// end), its mean is forwarded to the parent aggregator as a data point.
class AggregatorActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "shm.Aggregator";
  static constexpr size_t kMaxWindows = 512;

  /// Sets the window length and optional next-level aggregator.
  void Configure(Micros window_len_us, std::string parent_key) {
    window_len_us_ = window_len_us;
    parent_key_ = std::move(parent_key);
  }

  /// Adds a batch of points (from the channel or from the child level).
  void Update(std::vector<DataPoint> points);

  /// Aggregates whose window overlaps [from, to), ascending.
  std::vector<AggregateView> Query(Micros from, Micros to);

  int64_t WindowCount() { return static_cast<int64_t>(windows_.size()); }

 private:
  void CloseWindowsBefore(int64_t window_idx);

  Micros window_len_us_ = kMicrosPerSecond;  // Overridden by Configure.
  std::string parent_key_;
  std::map<int64_t, Welford> windows_;
  int64_t highest_seen_window_ = -1;
  int64_t last_forwarded_ = -1;
};

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_AGGREGATOR_ACTOR_H_
