#include "shm/channel_actor.h"

#include "aodb/index.h"
#include "aodb/registry.h"

#include "shm/aggregator_actor.h"
#include "shm/user_actor.h"

namespace aodb {
namespace shm {

namespace {

/// Wires up an hour->day->month aggregator chain from the caller's silo.
void ConfigureAggChain(ActorContext& ctx, const AggChainSpec& aggs) {
  CallOptions opts;
  opts.cost_us = kCostConfigure;
  opts.priority = MessagePriority::kControl;
  if (!aggs.hour_key.empty()) {
    ctx.Ref<AggregatorActor>(aggs.hour_key)
        .TellWith(opts, &AggregatorActor::Configure, aggs.hour_len_us,
                  aggs.day_key);
  }
  if (!aggs.day_key.empty()) {
    ctx.Ref<AggregatorActor>(aggs.day_key)
        .TellWith(opts, &AggregatorActor::Configure, aggs.day_len_us,
                  aggs.month_key);
  }
  if (!aggs.month_key.empty()) {
    ctx.Ref<AggregatorActor>(aggs.month_key)
        .TellWith(opts, &AggregatorActor::Configure, aggs.month_len_us,
                  std::string());
  }
}

}  // namespace

// --- Codec -------------------------------------------------------------------

void ChannelConfig::Encode(BufWriter* w) const {
  w->PutString(org_key);
  w->PutString(aggregator_key);
  w->PutString(virtual_key);
  w->PutString(alert_user_key);
  w->PutDouble(threshold_low);
  w->PutDouble(threshold_high);
  w->PutBool(has_threshold_low);
  w->PutBool(has_threshold_high);
  w->PutVarint(static_cast<uint64_t>(window_capacity));
  w->PutBool(indexed);
}

Status ChannelConfig::Decode(BufReader* r) {
  AODB_RETURN_NOT_OK(r->GetString(&org_key));
  AODB_RETURN_NOT_OK(r->GetString(&aggregator_key));
  AODB_RETURN_NOT_OK(r->GetString(&virtual_key));
  AODB_RETURN_NOT_OK(r->GetString(&alert_user_key));
  AODB_RETURN_NOT_OK(r->GetDouble(&threshold_low));
  AODB_RETURN_NOT_OK(r->GetDouble(&threshold_high));
  AODB_RETURN_NOT_OK(r->GetBool(&has_threshold_low));
  AODB_RETURN_NOT_OK(r->GetBool(&has_threshold_high));
  uint64_t cap = 0;
  AODB_RETURN_NOT_OK(r->GetVarint(&cap));
  window_capacity = static_cast<int>(cap);
  return r->GetBool(&indexed);
}

void ChannelState::Encode(BufWriter* w) const {
  config.Encode(w);
  w->PutVarint(window.size());
  for (const DataPoint& p : window) p.Encode(w);
  w->PutDouble(accumulated_change);
  w->PutVarint(static_cast<uint64_t>(total_points));
}

Status ChannelState::Decode(BufReader* r) {
  AODB_RETURN_NOT_OK(config.Decode(r));
  uint64_t n = 0;
  AODB_RETURN_NOT_OK(r->GetVarint(&n));
  window.clear();
  for (uint64_t i = 0; i < n; ++i) {
    DataPoint p;
    AODB_RETURN_NOT_OK(DataPoint::DecodeInto(r, &p));
    window.push_back(p);
  }
  AODB_RETURN_NOT_OK(r->GetDouble(&accumulated_change));
  uint64_t total = 0;
  AODB_RETURN_NOT_OK(r->GetVarint(&total));
  total_points = static_cast<int64_t>(total);
  return Status::OK();
}

void VirtualChannelConfig::Encode(BufWriter* w) const {
  w->PutString(org_key);
  w->PutString(aggregator_key);
  w->PutVector(source_keys,
               [](BufWriter& bw, const std::string& s) { bw.PutString(s); });
  w->PutVarint(static_cast<uint64_t>(window_capacity));
}

Status VirtualChannelConfig::Decode(BufReader* r) {
  AODB_RETURN_NOT_OK(r->GetString(&org_key));
  AODB_RETURN_NOT_OK(r->GetString(&aggregator_key));
  AODB_RETURN_NOT_OK(r->GetVector(
      &source_keys,
      [](BufReader& br, std::string* s) { return br.GetString(s); }));
  uint64_t cap = 0;
  AODB_RETURN_NOT_OK(r->GetVarint(&cap));
  window_capacity = static_cast<int>(cap);
  return Status::OK();
}

void VirtualChannelState::Encode(BufWriter* w) const {
  config.Encode(w);
  w->PutVarint(latest_by_source.size());
  for (const auto& [k, v] : latest_by_source) {
    w->PutString(k);
    w->PutDouble(v);
  }
  w->PutVarint(window.size());
  for (const DataPoint& p : window) p.Encode(w);
  w->PutVarint(static_cast<uint64_t>(total_points));
}

Status VirtualChannelState::Decode(BufReader* r) {
  AODB_RETURN_NOT_OK(config.Decode(r));
  uint64_t n = 0;
  AODB_RETURN_NOT_OK(r->GetVarint(&n));
  latest_by_source.clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string k;
    double v = 0;
    AODB_RETURN_NOT_OK(r->GetString(&k));
    AODB_RETURN_NOT_OK(r->GetDouble(&v));
    latest_by_source[k] = v;
  }
  AODB_RETURN_NOT_OK(r->GetVarint(&n));
  window.clear();
  for (uint64_t i = 0; i < n; ++i) {
    DataPoint p;
    AODB_RETURN_NOT_OK(DataPoint::DecodeInto(r, &p));
    window.push_back(p);
  }
  uint64_t total = 0;
  AODB_RETURN_NOT_OK(r->GetVarint(&total));
  total_points = static_cast<int64_t>(total);
  return Status::OK();
}

// --- PhysicalChannelActor ----------------------------------------------------

Status PhysicalChannelActor::Configure(ChannelConfig config) {
  state().config = std::move(config);
  if (state().config.indexed) {
    TypeRegistry::Add(ctx(), kTypeName, ctx().self().key);
    ActorIndex(kChannelsByOrgIndex)
        .Insert(ctx(), state().config.org_key, ctx().self().key);
  }
  MarkDirty();
  return Status::OK();
}

Status PhysicalChannelActor::ConfigureFull(ChannelConfig config,
                                           AggChainSpec aggs) {
  ConfigureAggChain(ctx(), aggs);
  return Configure(std::move(config));
}

bool PhysicalChannelActor::CallerMayRead() const {
  const Principal& p = ctx().caller();
  if (p.tenant.empty()) return true;  // System / internal caller.
  return p.tenant == state().config.org_key || p.role == "admin";
}

Status PhysicalChannelActor::Append(std::vector<DataPoint> points) {
  ChannelState& st = state();
  const ChannelConfig& cfg = st.config;
  for (const DataPoint& p : points) {
    if (!st.window.empty()) {
      st.accumulated_change += std::fabs(p.value - st.window.back().value);
    }
    st.window.push_back(p);
    if (static_cast<int>(st.window.size()) > cfg.window_capacity) {
      st.window.pop_front();
    }
    ++st.total_points;
    // Threshold alerts (requirement 5): one alert per crossing point.
    if (!cfg.alert_user_key.empty()) {
      if (cfg.has_threshold_high && p.value > cfg.threshold_high) {
        ctx().Ref<UserActor>(cfg.alert_user_key)
            .Tell(&UserActor::Notify,
                  AlertEvent{ctx().self().key, p.ts, p.value,
                             cfg.threshold_high, true});
      } else if (cfg.has_threshold_low && p.value < cfg.threshold_low) {
        ctx().Ref<UserActor>(cfg.alert_user_key)
            .Tell(&UserActor::Notify,
                  AlertEvent{ctx().self().key, p.ts, p.value,
                             cfg.threshold_low, false});
      }
    }
  }
  int64_t batch_bytes = static_cast<int64_t>(points.size()) * kBytesPerPoint;
  if (!cfg.aggregator_key.empty()) {
    CallOptions opts;
    opts.cost_us = kCostAggUpdate;
    opts.request_bytes = batch_bytes;
    // Interior fan-out of admitted data (see SensorActor): never shed.
    opts.priority = MessagePriority::kControl;
    ctx().Ref<AggregatorActor>(cfg.aggregator_key)
        .TellWith(opts, &AggregatorActor::Update, points);
  }
  if (!cfg.virtual_key.empty()) {
    CallOptions opts;
    opts.cost_us = kCostVirtualCompute;
    opts.request_bytes = batch_bytes;
    opts.priority = MessagePriority::kControl;
    ctx().Ref<VirtualChannelActor>(cfg.virtual_key)
        .TellWith(opts, &VirtualChannelActor::SourceUpdate, ctx().self().key,
                  std::move(points));
  }
  MarkDirty();
  return Status::OK();
}

Future<Status> PhysicalChannelActor::AppendDurable(
    std::vector<DataPoint> points) {
  Status st = Append(std::move(points));
  if (!st.ok()) return Future<Status>::FromValue(st);
  return WriteStateAsync();
}

LiveDataEntry PhysicalChannelActor::Latest() {
  const ChannelState& st = state();
  if (st.window.empty() || !CallerMayRead()) {
    return LiveDataEntry{ctx().self().key, 0, 0, false};
  }
  const DataPoint& p = st.window.back();
  return LiveDataEntry{ctx().self().key, p.ts, p.value, true};
}

RangeReply PhysicalChannelActor::Range(Micros from, Micros to) {
  RangeReply reply;
  if (!CallerMayRead()) {
    reply.authorized = false;
    return reply;
  }
  for (const DataPoint& p : state().window) {
    if (p.ts >= from && p.ts < to) reply.points.push_back(p);
  }
  return reply;
}

double PhysicalChannelActor::AccumulatedChange() {
  return state().accumulated_change;
}

int64_t PhysicalChannelActor::TotalPoints() { return state().total_points; }

// --- VirtualChannelActor -----------------------------------------------------

Status VirtualChannelActor::Configure(VirtualChannelConfig config) {
  state().config = std::move(config);
  MarkDirty();
  return Status::OK();
}

Status VirtualChannelActor::ConfigureFull(VirtualChannelConfig config,
                                          AggChainSpec aggs) {
  ConfigureAggChain(ctx(), aggs);
  return Configure(std::move(config));
}

bool VirtualChannelActor::CallerMayRead() const {
  const Principal& p = ctx().caller();
  if (p.tenant.empty()) return true;
  return p.tenant == state().config.org_key || p.role == "admin";
}

Status VirtualChannelActor::SourceUpdate(std::string source_key,
                                         std::vector<DataPoint> points) {
  VirtualChannelState& st = state();
  std::vector<DataPoint> derived;
  derived.reserve(points.size());
  for (const DataPoint& p : points) {
    st.latest_by_source[source_key] = p.value;
    double sum = 0;
    for (const auto& [k, v] : st.latest_by_source) sum += v;
    DataPoint d{p.ts, sum};
    st.window.push_back(d);
    if (static_cast<int>(st.window.size()) > st.config.window_capacity) {
      st.window.pop_front();
    }
    ++st.total_points;
    derived.push_back(d);
  }
  if (!st.config.aggregator_key.empty() && !derived.empty()) {
    CallOptions opts;
    opts.cost_us = kCostAggUpdate;
    opts.request_bytes =
        static_cast<int64_t>(derived.size()) * kBytesPerPoint;
    opts.priority = MessagePriority::kControl;
    ctx().Ref<AggregatorActor>(st.config.aggregator_key)
        .TellWith(opts, &AggregatorActor::Update, std::move(derived));
  }
  MarkDirty();
  return Status::OK();
}

LiveDataEntry VirtualChannelActor::Latest() {
  const VirtualChannelState& st = state();
  if (st.window.empty() || !CallerMayRead()) {
    return LiveDataEntry{ctx().self().key, 0, 0, false};
  }
  const DataPoint& p = st.window.back();
  return LiveDataEntry{ctx().self().key, p.ts, p.value, true};
}

RangeReply VirtualChannelActor::Range(Micros from, Micros to) {
  RangeReply reply;
  if (!CallerMayRead()) {
    reply.authorized = false;
    return reply;
  }
  for (const DataPoint& p : state().window) {
    if (p.ts >= from && p.ts < to) reply.points.push_back(p);
  }
  return reply;
}

int64_t VirtualChannelActor::TotalPoints() { return state().total_points; }

}  // namespace shm
}  // namespace aodb
