// Sensor actors: one per physical sensor (paper §4.2 models Sensor and
// Sensor Channel as separate actors because sensors are active entities
// that own multiple channels). The sensor actor receives logger packets
// and splits them across its channels, awaiting their acknowledgements.

#ifndef AODB_SHM_SENSOR_ACTOR_H_
#define AODB_SHM_SENSOR_ACTOR_H_

#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "shm/channel_actor.h"
#include "shm/types.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace shm {

/// Durable state of a sensor: its position and the keys of its channels.
struct SensorState {
  std::string org_key;
  std::vector<std::string> channel_keys;
  double position_x = 0;
  double position_y = 0;
  int64_t packets = 0;

  void Encode(BufWriter* w) const {
    w->PutString(org_key);
    w->PutVector(channel_keys,
                 [](BufWriter& bw, const std::string& s) { bw.PutString(s); });
    w->PutDouble(position_x);
    w->PutDouble(position_y);
    w->PutVarint(static_cast<uint64_t>(packets));
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&org_key));
    AODB_RETURN_NOT_OK(r->GetVector(
        &channel_keys,
        [](BufReader& br, std::string* s) { return br.GetString(s); }));
    AODB_RETURN_NOT_OK(r->GetDouble(&position_x));
    AODB_RETURN_NOT_OK(r->GetDouble(&position_y));
    uint64_t p = 0;
    AODB_RETURN_NOT_OK(r->GetVarint(&p));
    packets = static_cast<int64_t>(p);
    return Status::OK();
  }
};

/// Everything a sensor needs to configure one of its physical channels.
struct ChannelSpec {
  std::string key;
  ChannelConfig config;
  AggChainSpec aggs;

  void Encode(BufWriter* w) const {
    w->PutString(key);
    config.Encode(w);
    aggs.Encode(w);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&key));
    AODB_RETURN_NOT_OK(config.Decode(r));
    return aggs.Decode(r);
  }
};

/// Configuration of a sensor's virtual channel.
struct VirtualSpec {
  std::string key;
  VirtualChannelConfig config;
  AggChainSpec aggs;

  void Encode(BufWriter* w) const {
    w->PutString(key);
    config.Encode(w);
    aggs.Encode(w);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&key));
    AODB_RETURN_NOT_OK(config.Decode(r));
    return aggs.Decode(r);
  }
};

/// Physical sensor (data logger endpoint) actor.
class SensorActor : public PersistentActor<SensorState> {
 public:
  static constexpr char kTypeName[] = "shm.Sensor";

  explicit SensorActor(PersistenceOptions persistence = {})
      : PersistentActor<SensorState>(std::move(persistence)) {}

  /// Installs the sensor's organization and channel wiring.
  Status Configure(std::string org_key, std::vector<std::string> channel_keys);

  /// Configures the sensor AND its channels / virtual channel / aggregator
  /// chains, issuing the channel configuration calls from this sensor's
  /// silo so that prefer-local placement co-locates the whole pipeline
  /// (paper §5). Completes when all channels acknowledged.
  Future<Status> SetupChannels(std::string org_key,
                               std::vector<ChannelSpec> channels,
                               bool has_virtual, VirtualSpec virtual_spec);

  /// Relocation of the physical sensor (sensors are active entities that
  /// may be moved; §4.2).
  void SetPosition(double x, double y);

  /// Ingests one logger packet: `points` are distributed round-robin-block
  /// across the sensor's channels (with 2 channels and 20 points, the first
  /// 10 go to channel 0, the rest to channel 1 — the paper's layout).
  /// Completes when every channel has acknowledged its sub-batch.
  Future<Status> Insert(std::vector<DataPoint> points);

  /// Insert with write-through acknowledgement: completes OK only after
  /// every channel has made its updated state durable (AppendDurable), so
  /// an acked packet survives a subsequent silo crash.
  Future<Status> InsertDurable(std::vector<DataPoint> points);

  int64_t Packets();
  std::vector<std::string> ChannelKeys();

 private:
  Future<Status> InsertImpl(std::vector<DataPoint> points, bool durable);

  friend class ShmPlatform;
};

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_SENSOR_ACTOR_H_
