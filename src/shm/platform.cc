#include "shm/platform.h"

#include <cstdlib>

#include "actor/method_registry.h"
#include "actor/retry_async.h"
#include "common/logging.h"
#include "aodb/index.h"
#include "aodb/registry.h"
#include "aodb/wire.h"

namespace aodb {
namespace shm {

namespace {

// Registers every cross-silo-callable SHM method with the process-global
// MethodRegistry so remote sends use the serialized wire lane. Idempotent;
// a failure here is a programming error (method-id collision), so abort
// loudly rather than run with silently closure-only dispatch.
void RegisterShmWireMethods() {
  MethodRegistry& reg = MethodRegistry::Global();
  Status st = Status::OK();
  auto add = [&st](Status s) {
    if (st.ok()) st = std::move(s);
  };
  add(reg.Register(OrganizationActor::kTypeName, &OrganizationActor::SetName,
                   "SetName"));
  add(reg.Register(OrganizationActor::kTypeName,
                   &OrganizationActor::AddProject, "AddProject"));
  add(reg.Register(OrganizationActor::kTypeName, &OrganizationActor::AddSensor,
                   "AddSensor"));
  add(reg.Register(OrganizationActor::kTypeName, &OrganizationActor::AddUser,
                   "AddUser"));
  add(reg.Register(OrganizationActor::kTypeName, &OrganizationActor::LiveData,
                   "LiveData"));
  add(reg.Register(OrganizationActor::kTypeName,
                   &OrganizationActor::ChannelKeys, "ChannelKeys"));
  add(reg.Register(OrganizationActor::kTypeName, &OrganizationActor::Projects,
                   "Projects"));
  add(reg.Register(OrganizationActor::kTypeName,
                   &OrganizationActor::SensorCount, "SensorCount"));
  add(reg.Register(UserActor::kTypeName, &UserActor::Notify, "Notify"));
  add(reg.Register(UserActor::kTypeName, &UserActor::DrainAlerts,
                   "DrainAlerts"));
  add(reg.Register(UserActor::kTypeName, &UserActor::TotalAlerts,
                   "TotalAlerts"));
  add(reg.Register(AggregatorActor::kTypeName, &AggregatorActor::Configure,
                   "Configure"));
  add(reg.Register(AggregatorActor::kTypeName, &AggregatorActor::Update,
                   "Update"));
  add(reg.Register(AggregatorActor::kTypeName, &AggregatorActor::Query,
                   "Query"));
  add(reg.Register(AggregatorActor::kTypeName, &AggregatorActor::WindowCount,
                   "WindowCount"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::Configure,
                   "Configure"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::SetupChannels,
                   "SetupChannels"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::SetPosition,
                   "SetPosition"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::Insert, "Insert"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::InsertDurable,
                   "InsertDurable"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::Packets, "Packets"));
  add(reg.Register(SensorActor::kTypeName, &SensorActor::ChannelKeys,
                   "ChannelKeys"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::Configure, "Configure"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::ConfigureFull, "ConfigureFull"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::Append, "Append"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::AppendDurable, "AppendDurable"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::Latest, "Latest"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::Range, "Range"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::AccumulatedChange,
                   "AccumulatedChange"));
  add(reg.Register(PhysicalChannelActor::kTypeName,
                   &PhysicalChannelActor::TotalPoints, "TotalPoints"));
  add(reg.Register(VirtualChannelActor::kTypeName,
                   &VirtualChannelActor::Configure, "Configure"));
  add(reg.Register(VirtualChannelActor::kTypeName,
                   &VirtualChannelActor::ConfigureFull, "ConfigureFull"));
  add(reg.Register(VirtualChannelActor::kTypeName,
                   &VirtualChannelActor::SourceUpdate, "SourceUpdate"));
  add(reg.Register(VirtualChannelActor::kTypeName,
                   &VirtualChannelActor::Latest, "Latest"));
  add(reg.Register(VirtualChannelActor::kTypeName, &VirtualChannelActor::Range,
                   "Range"));
  add(reg.Register(VirtualChannelActor::kTypeName,
                   &VirtualChannelActor::TotalPoints, "TotalPoints"));
  add(RegisterAodbCoreWireMethods());
  if (!st.ok()) {
    AODB_LOG(Error, "SHM wire registration failed: %s", st.ToString().c_str());
    std::abort();
  }
}

}  // namespace

void ShmPlatform::RegisterTypes(Cluster& cluster,
                                PersistenceOptions channel_persistence) {
  RegisterShmWireMethods();
  cluster.RegisterActorType<OrganizationActor>();
  cluster.RegisterActorType<UserActor>();
  cluster.RegisterActorType<AggregatorActor>();
  cluster.RegisterActorType<RegistryActor>();
  cluster.RegisterActorType<IndexActor>();
  cluster.RegisterActorType(
      SensorActor::kTypeName, [channel_persistence](const ActorId&) {
        return std::make_unique<SensorActor>(channel_persistence);
      });
  cluster.RegisterActorType(
      PhysicalChannelActor::kTypeName, [channel_persistence](const ActorId&) {
        return std::make_unique<PhysicalChannelActor>(channel_persistence);
      });
  cluster.RegisterActorType(
      VirtualChannelActor::kTypeName, [channel_persistence](const ActorId&) {
        return std::make_unique<VirtualChannelActor>(channel_persistence);
      });
}

void ShmPlatform::ApplyPaperPlacement(Cluster& cluster) {
  cluster.SetTypePlacement(OrganizationActor::kTypeName, Placement::kRandom);
  cluster.SetTypePlacement(UserActor::kTypeName, Placement::kRandom);
  cluster.SetTypePlacement(SensorActor::kTypeName, Placement::kRandom);
  cluster.SetTypePlacement(PhysicalChannelActor::kTypeName,
                           Placement::kPreferLocal);
  cluster.SetTypePlacement(VirtualChannelActor::kTypeName,
                           Placement::kPreferLocal);
  cluster.SetTypePlacement(AggregatorActor::kTypeName,
                           Placement::kPreferLocal);
}

Future<Status> ShmPlatform::Setup(const ShmTopology& t) {
  std::vector<Future<Status>> acks;
  int orgs = NumOrgs(t);
  CallOptions cfg;
  cfg.cost_us = kCostConfigure;
  // Topology setup is control traffic: never shed under overload.
  cfg.priority = MessagePriority::kControl;
  for (int o = 0; o < orgs; ++o) {
    auto org = cluster_->Ref<OrganizationActor>(OrgKey(o));
    acks.push_back(
        org.CallWith(cfg, &OrganizationActor::SetName, "Organization " +
                                                            std::to_string(o)));
    acks.push_back(org.CallWith(cfg, &OrganizationActor::AddProject,
                                std::string("p0"),
                                std::string("Monitoring project")));
    acks.push_back(
        org.CallWith(cfg, &OrganizationActor::AddUser, UserKey(o)));
  }
  for (int s = 0; s < t.sensors; ++s) {
    int org = OrgOf(t, s);
    std::vector<ChannelSpec> specs;
    std::vector<std::string> org_channel_keys;
    bool has_virtual = HasVirtual(t, s);
    std::string virtual_key = has_virtual ? VirtualKey(s) : std::string();
    for (int c = 0; c < t.channels_per_sensor; ++c) {
      ChannelSpec spec;
      spec.key = ChannelKey(s, c);
      spec.config.org_key = OrgKey(org);
      spec.config.aggregator_key = HourAggKey(spec.key);
      spec.config.virtual_key = virtual_key;
      spec.config.window_capacity = t.window_capacity;
      if (t.enable_alerts) {
        spec.config.alert_user_key = UserKey(org);
        spec.config.threshold_high = t.threshold_high;
        spec.config.has_threshold_high = true;
      }
      spec.config.indexed = t.enable_indexing;
      spec.aggs = AggChainSpec{HourAggKey(spec.key), DayAggKey(spec.key),
                               MonthAggKey(spec.key), t.hour_window_us,
                               t.day_window_us, t.month_window_us};
      org_channel_keys.push_back(spec.key);
      specs.push_back(std::move(spec));
    }
    VirtualSpec vspec;
    if (has_virtual) {
      vspec.key = virtual_key;
      vspec.config.org_key = OrgKey(org);
      vspec.config.aggregator_key = HourAggKey(virtual_key);
      for (int c = 0; c < t.channels_per_sensor; ++c) {
        vspec.config.source_keys.push_back(ChannelKey(s, c));
      }
      vspec.config.window_capacity = t.window_capacity;
      vspec.aggs = AggChainSpec{HourAggKey(virtual_key), DayAggKey(virtual_key),
                                MonthAggKey(virtual_key), t.hour_window_us,
                                t.day_window_us, t.month_window_us};
      org_channel_keys.push_back(virtual_key);
    }
    acks.push_back(cluster_->Ref<SensorActor>(SensorKey(s))
                       .CallWith(cfg, &SensorActor::SetupChannels, OrgKey(org),
                                 std::move(specs), has_virtual,
                                 std::move(vspec)));
    acks.push_back(cluster_->Ref<OrganizationActor>(OrgKey(org))
                       .CallWith(cfg, &OrganizationActor::AddSensor,
                                 std::string("p0"), SensorKey(s),
                                 std::move(org_channel_keys)));
  }
  Promise<Status> done;
  WhenAll(acks).OnReady([done](Result<std::vector<Result<Status>>>&& r) {
    if (!r.ok()) {
      done.SetValue(r.status());
      return;
    }
    for (const auto& ack : r.value()) {
      Status st = ack.ok() ? ack.value() : ack.status();
      if (!st.ok()) {
        done.SetValue(st);
        return;
      }
    }
    done.SetValue(Status::OK());
  });
  return done.GetFuture();
}

Future<Status> ShmPlatform::Insert(const ShmTopology& t, int sensor,
                                   std::vector<DataPoint> points) {
  CallOptions opts;
  opts.cost_us = kCostSensorInsert;
  opts.request_bytes = static_cast<int64_t>(points.size()) * kBytesPerPoint;
  // Sensor ingest is the first traffic shed when a silo saturates; the
  // retry policy backs off on the resulting Overloaded and re-sends.
  opts.priority = MessagePriority::kTelemetry;
  Cluster* cluster = cluster_;
  bool durable = client_options_.durable_acks;
  Principal tenant = TenantOf(t, sensor, false);
  std::string key = SensorKey(sensor);
  auto shared_points = std::make_shared<std::vector<DataPoint>>(
      std::move(points));
  return RetryAsync<Status>(
      cluster_->client_executor(), client_options_.retry, NextSeed(),
      [cluster, opts, durable, tenant, key, shared_points] {
        auto ref =
            cluster->Ref<SensorActor>(key).WithPrincipal(tenant);
        std::vector<DataPoint> batch = *shared_points;
        return durable ? ref.CallWith(opts, &SensorActor::InsertDurable,
                                      std::move(batch))
                       : ref.CallWith(opts, &SensorActor::Insert,
                                      std::move(batch));
      },
      IsTransient,
      [this](const Status&) { insert_retries_.fetch_add(1); });
}

Future<std::vector<LiveDataEntry>> ShmPlatform::LiveData(const ShmTopology& t,
                                                         int org) {
  CallOptions opts;
  opts.cost_us = kCostOrgLiveFanout;
  opts.priority = MessagePriority::kQuery;
  // Response carries one entry per channel of the organization.
  opts.response_bytes =
      static_cast<int64_t>(t.sensors_per_org) * t.channels_per_sensor * 24;
  Cluster* cluster = cluster_;
  Principal tenant = TenantOf(t, org, true);
  std::string key = OrgKey(org);
  return RetryAsync<std::vector<LiveDataEntry>>(
      cluster_->client_executor(), client_options_.retry, NextSeed(),
      [cluster, opts, tenant, key] {
        return cluster->Ref<OrganizationActor>(key)
            .WithPrincipal(tenant)
            .CallWith(opts, &OrganizationActor::LiveData);
      },
      IsTransient,
      [this](const Status&) { insert_retries_.fetch_add(1); });
}

Future<RangeReply> ShmPlatform::RawRange(const ShmTopology& t, int sensor,
                                         int channel, Micros from, Micros to) {
  CallOptions opts;
  opts.cost_us = kCostChannelRange;
  opts.response_bytes = 100 * kBytesPerPoint;
  opts.priority = MessagePriority::kQuery;
  Cluster* cluster = cluster_;
  Principal tenant = TenantOf(t, sensor, false);
  std::string key = ChannelKey(sensor, channel);
  return RetryAsync<RangeReply>(
      cluster_->client_executor(), client_options_.retry, NextSeed(),
      [cluster, opts, tenant, key, from, to] {
        return cluster->Ref<PhysicalChannelActor>(key)
            .WithPrincipal(tenant)
            .CallWith(opts, &PhysicalChannelActor::Range, from, to);
      },
      IsTransient,
      [this](const Status&) { insert_retries_.fetch_add(1); });
}

Future<std::vector<AggregateView>> ShmPlatform::HourAggregates(
    const ShmTopology& t, int sensor, int channel, Micros from, Micros to) {
  CallOptions opts;
  opts.cost_us = kCostChannelRange;
  return cluster_
      ->Ref<AggregatorActor>(HourAggKey(ChannelKey(sensor, channel)))
      .WithPrincipal(TenantOf(t, sensor, false))
      .CallWith(opts, &AggregatorActor::Query, from, to);
}

}  // namespace shm
}  // namespace aodb
