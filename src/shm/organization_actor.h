// Organization actors: the multi-tenancy root of the SHM platform. Per the
// paper's granularity principle (§4.2), organizations are actors while
// their projects are passive non-actor objects encapsulated inside the
// organization's state.

#ifndef AODB_SHM_ORGANIZATION_ACTOR_H_
#define AODB_SHM_ORGANIZATION_ACTOR_H_

#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "shm/channel_actor.h"
#include "shm/types.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace shm {

/// A construction project (e.g. one bridge) — a non-actor object owned by
/// its organization (aggregation relationship in Figure 4).
struct Project {
  std::string id;
  std::string name;
  std::vector<std::string> sensor_keys;

  void Encode(BufWriter* w) const;
  Status Decode(BufReader* r);
};

/// Durable organization state: projects, users, and the flat channel list
/// used by live-data fan-out.
struct OrganizationState {
  std::string name;
  std::vector<Project> projects;
  std::vector<std::string> user_keys;
  std::vector<std::string> channel_keys;

  void Encode(BufWriter* w) const;
  Status Decode(BufReader* r);
};

/// Organization (tenant) actor.
class OrganizationActor : public PersistentActor<OrganizationState> {
 public:
  static constexpr char kTypeName[] = "shm.Organization";

  explicit OrganizationActor(PersistenceOptions persistence = {})
      : PersistentActor<OrganizationState>(std::move(persistence)) {}

  Status SetName(std::string name);
  Status AddProject(std::string id, std::string name);
  /// Registers a sensor under a project and its channels for live fan-out.
  Status AddSensor(std::string project_id, std::string sensor_key,
                   std::vector<std::string> channel_keys);
  Status AddUser(std::string user_key);

  /// Live-data query (functional requirement 7): the latest value of every
  /// channel of this organization. Requires the caller principal's tenant
  /// to be this organization (or role "admin"); violations fail with
  /// Unauthorized.
  Future<std::vector<LiveDataEntry>> LiveData();

  /// Introspection for tests and examples.
  std::vector<std::string> ChannelKeys();
  std::vector<Project> Projects();
  int64_t SensorCount();

 private:
  bool CallerMayRead() const;
};

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_ORGANIZATION_ACTOR_H_
