// User actors: recipients of customized threshold alerts (functional
// requirement 5). One actor per platform user; the alert inbox is capped.

#ifndef AODB_SHM_USER_ACTOR_H_
#define AODB_SHM_USER_ACTOR_H_

#include <deque>
#include <vector>

#include "actor/runtime.h"
#include "shm/types.h"

namespace aodb {
namespace shm {

/// A platform user (engineer / analyst / maintenance staff of an
/// organization). Receives alerts from sensor channels it subscribes to.
class UserActor : public ActorBase {
 public:
  static constexpr char kTypeName[] = "shm.User";
  static constexpr size_t kMaxInbox = 1000;

  /// Appends an alert to the inbox (oldest dropped beyond the cap).
  void Notify(AlertEvent alert) {
    if (inbox_.size() >= kMaxInbox) inbox_.pop_front();
    inbox_.push_back(std::move(alert));
    ++total_alerts_;
  }

  /// Returns and clears the unread alerts.
  std::vector<AlertEvent> DrainAlerts() {
    std::vector<AlertEvent> out(inbox_.begin(), inbox_.end());
    inbox_.clear();
    return out;
  }

  /// Alerts received over this activation's lifetime.
  int64_t TotalAlerts() { return total_alerts_; }

 private:
  std::deque<AlertEvent> inbox_;
  int64_t total_alerts_ = 0;
};

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_USER_ACTOR_H_
