// Sensor channel actors: the per-stream heart of the SHM platform (paper
// §4.2). A physical channel holds the in-memory window of raw data points
// from one logger stream, maintains the accumulated change (functional
// requirement 4), raises threshold alerts (requirement 5), and feeds its
// hour-level aggregator and optionally a virtual channel. A virtual channel
// derives a computed stream (an "equation") from several physical channels.

#ifndef AODB_SHM_CHANNEL_ACTOR_H_
#define AODB_SHM_CHANNEL_ACTOR_H_

#include <cmath>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "shm/types.h"
#include "storage/persistent_actor.h"

namespace aodb {
namespace shm {

/// The statistics chain attached to a channel: hour feeds day feeds month
/// (paper §4.2's hierarchy of Aggregator actors). Empty keys disable a
/// level.
struct AggChainSpec {
  std::string hour_key;
  std::string day_key;
  std::string month_key;
  Micros hour_len_us = 0;
  Micros day_len_us = 0;
  Micros month_len_us = 0;

  void Encode(BufWriter* w) const {
    w->PutString(hour_key);
    w->PutString(day_key);
    w->PutString(month_key);
    w->PutSigned(hour_len_us);
    w->PutSigned(day_len_us);
    w->PutSigned(month_len_us);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&hour_key));
    AODB_RETURN_NOT_OK(r->GetString(&day_key));
    AODB_RETURN_NOT_OK(r->GetString(&month_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&hour_len_us));
    AODB_RETURN_NOT_OK(r->GetSigned(&day_len_us));
    return r->GetSigned(&month_len_us);
  }
};

/// Name of the channel-by-organization secondary index (see aodb/index.h)
/// maintained when ChannelConfig::indexed is set.
inline constexpr char kChannelsByOrgIndex[] = "shm.channels_by_org";

/// Static configuration of a physical channel.
struct ChannelConfig {
  std::string org_key;
  std::string aggregator_key;     ///< Hour-level aggregator (may be empty).
  std::string virtual_key;        ///< Virtual channel fed by this one.
  std::string alert_user_key;     ///< User notified on threshold crossings.
  double threshold_low = 0;
  double threshold_high = 0;
  bool has_threshold_low = false;
  bool has_threshold_high = false;
  int window_capacity = 1024;
  /// When true the channel registers itself in the AODB type registry and
  /// the channels-by-organization index on configuration, enabling
  /// declarative multi-actor queries (aodb/query.h) over channels.
  bool indexed = false;

  void Encode(BufWriter* w) const;
  Status Decode(BufReader* r);
};

/// Durable state of a physical channel.
struct ChannelState {
  ChannelConfig config;
  std::deque<DataPoint> window;
  double accumulated_change = 0;
  int64_t total_points = 0;

  void Encode(BufWriter* w) const;
  Status Decode(BufReader* r);
};

/// Reply of a raw time-range query; carries the access-control verdict.
struct RangeReply {
  bool authorized = true;
  std::vector<DataPoint> points;

  void Encode(BufWriter* w) const {
    w->PutBool(authorized);
    w->PutVector(points, [](BufWriter& bw, const DataPoint& p) {
      p.Encode(&bw);
    });
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetBool(&authorized));
    return r->GetVector(&points, [](BufReader& br, DataPoint* p) {
      return DataPoint::DecodeInto(&br, p);
    });
  }
};

/// Physical sensor channel actor.
class PhysicalChannelActor : public PersistentActor<ChannelState> {
 public:
  static constexpr char kTypeName[] = "shm.Channel";

  explicit PhysicalChannelActor(PersistenceOptions persistence = {})
      : PersistentActor<ChannelState>(std::move(persistence)) {}

  /// Installs the channel's configuration (idempotent).
  Status Configure(ChannelConfig config);

  /// Configure plus wiring of the channel's aggregation chain. Issued by
  /// the owning sensor so that prefer-local placement co-locates the
  /// channel and its aggregators with the sensor (paper §5).
  Status ConfigureFull(ChannelConfig config, AggChainSpec aggs);

  /// Ingests a batch of raw points: updates the window and accumulated
  /// change, raises alerts, and forwards downstream (aggregator, virtual
  /// channel). The returned OK acknowledges only the in-memory update.
  Status Append(std::vector<DataPoint> points);

  /// Append with a write-through acknowledgement: completes OK only after
  /// the updated channel state is durable in the storage provider (with the
  /// persistence retry policy applied). This is the ingestion path whose
  /// acks survive a silo crash.
  Future<Status> AppendDurable(std::vector<DataPoint> points);

  /// Most recent value.
  LiveDataEntry Latest();

  /// Raw points with ts in [from, to), oldest first, subject to tenant
  /// access control: a non-empty caller tenant must match the channel's
  /// organization.
  RangeReply Range(Micros from, Micros to);

  /// Sum of |delta| over the stream's lifetime (how far the element moved).
  double AccumulatedChange();

  int64_t TotalPoints();

 private:
  bool CallerMayRead() const;
};

/// Static configuration of a virtual channel.
struct VirtualChannelConfig {
  std::string org_key;
  std::string aggregator_key;
  std::vector<std::string> source_keys;
  int window_capacity = 1024;

  void Encode(BufWriter* w) const;
  Status Decode(BufReader* r);
};

/// Durable state of a virtual channel.
struct VirtualChannelState {
  VirtualChannelConfig config;
  std::map<std::string, double> latest_by_source;
  std::deque<DataPoint> window;
  int64_t total_points = 0;

  void Encode(BufWriter* w) const;
  Status Decode(BufReader* r);
};

/// Virtual sensor channel actor: computes the derived stream
/// value(t) = sum of the latest values of its source channels (the paper's
/// experiments use exactly this summation equation).
class VirtualChannelActor : public PersistentActor<VirtualChannelState> {
 public:
  static constexpr char kTypeName[] = "shm.VirtualChannel";

  explicit VirtualChannelActor(PersistenceOptions persistence = {})
      : PersistentActor<VirtualChannelState>(std::move(persistence)) {}

  Status Configure(VirtualChannelConfig config);

  /// Configure plus aggregation-chain wiring (see PhysicalChannelActor).
  Status ConfigureFull(VirtualChannelConfig config, AggChainSpec aggs);

  /// Called by a source physical channel with its fresh batch; produces one
  /// derived point per input point.
  Status SourceUpdate(std::string source_key, std::vector<DataPoint> points);

  LiveDataEntry Latest();
  RangeReply Range(Micros from, Micros to);
  int64_t TotalPoints();

 private:
  bool CallerMayRead() const;
};

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_CHANNEL_ACTOR_H_
