#include "shm/sensor_actor.h"

namespace aodb {
namespace shm {

Status SensorActor::Configure(std::string org_key,
                              std::vector<std::string> channel_keys) {
  if (channel_keys.empty()) {
    return Status::InvalidArgument("sensor needs at least one channel");
  }
  state().org_key = std::move(org_key);
  state().channel_keys = std::move(channel_keys);
  MarkDirty();
  return Status::OK();
}

Future<Status> SensorActor::SetupChannels(std::string org_key,
                                          std::vector<ChannelSpec> channels,
                                          bool has_virtual,
                                          VirtualSpec virtual_spec) {
  if (channels.empty()) {
    return Future<Status>::FromValue(
        Status::InvalidArgument("sensor needs at least one channel"));
  }
  state().org_key = org_key;
  state().channel_keys.clear();
  CallOptions opts;
  opts.cost_us = kCostConfigure;
  opts.priority = MessagePriority::kControl;
  std::vector<Future<Status>> acks;
  for (ChannelSpec& spec : channels) {
    state().channel_keys.push_back(spec.key);
    acks.push_back(ctx()
                       .Ref<PhysicalChannelActor>(spec.key)
                       .CallWith(opts, &PhysicalChannelActor::ConfigureFull,
                                 std::move(spec.config), spec.aggs));
  }
  if (has_virtual) {
    acks.push_back(ctx()
                       .Ref<VirtualChannelActor>(virtual_spec.key)
                       .CallWith(opts, &VirtualChannelActor::ConfigureFull,
                                 std::move(virtual_spec.config),
                                 virtual_spec.aggs));
  }
  MarkDirty();
  Promise<Status> done;
  WhenAll(acks).OnReady([done](Result<std::vector<Result<Status>>>&& r) {
    if (!r.ok()) {
      done.SetValue(r.status());
      return;
    }
    for (const auto& ack : r.value()) {
      Status st = ack.ok() ? ack.value() : ack.status();
      if (!st.ok()) {
        done.SetValue(st);
        return;
      }
    }
    done.SetValue(Status::OK());
  });
  return done.GetFuture();
}

void SensorActor::SetPosition(double x, double y) {
  state().position_x = x;
  state().position_y = y;
  MarkDirty();
}

Future<Status> SensorActor::Insert(std::vector<DataPoint> points) {
  return InsertImpl(std::move(points), /*durable=*/false);
}

Future<Status> SensorActor::InsertDurable(std::vector<DataPoint> points) {
  return InsertImpl(std::move(points), /*durable=*/true);
}

Future<Status> SensorActor::InsertImpl(std::vector<DataPoint> points,
                                       bool durable) {
  SensorState& st = state();
  if (st.channel_keys.empty()) {
    return Future<Status>::FromValue(
        Status::FailedPrecondition("sensor not configured"));
  }
  ++st.packets;
  size_t channels = st.channel_keys.size();
  size_t per_channel = (points.size() + channels - 1) / channels;
  std::vector<Future<Status>> acks;
  acks.reserve(channels);
  for (size_t c = 0; c < channels; ++c) {
    size_t begin = c * per_channel;
    if (begin >= points.size()) break;
    size_t end = std::min(points.size(), begin + per_channel);
    std::vector<DataPoint> batch(points.begin() + begin,
                                 points.begin() + end);
    CallOptions opts;
    opts.cost_us = kCostChannelAppend;
    opts.request_bytes = static_cast<int64_t>(batch.size()) * kBytesPerPoint;
    // Interior pipeline hop of already-admitted data: never shed — data
    // accepted at the edge must reach its channels, or the sensor's ack
    // would lie. Shedding happens at the sensor-insert edge only.
    opts.priority = MessagePriority::kControl;
    auto ref = ctx().Ref<PhysicalChannelActor>(st.channel_keys[c]);
    acks.push_back(
        durable ? ref.CallWith(opts, &PhysicalChannelActor::AppendDurable,
                               std::move(batch))
                : ref.CallWith(opts, &PhysicalChannelActor::Append,
                               std::move(batch)));
  }
  Promise<Status> done;
  WhenAll(acks).OnReady([done](Result<std::vector<Result<Status>>>&& r) {
    if (!r.ok()) {
      done.SetValue(r.status());
      return;
    }
    for (const auto& ack : r.value()) {
      Status st = ack.ok() ? ack.value() : ack.status();
      if (!st.ok()) {
        done.SetValue(st);
        return;
      }
    }
    done.SetValue(Status::OK());
  });
  return done.GetFuture();
}

int64_t SensorActor::Packets() { return state().packets; }

std::vector<std::string> SensorActor::ChannelKeys() {
  return state().channel_keys;
}

}  // namespace shm
}  // namespace aodb
