// Shared value types of the Structural Health Monitoring data platform
// (case study 1, the platform the paper prototypes on Orleans and
// transitions to SenMoS).

#ifndef AODB_SHM_TYPES_H_
#define AODB_SHM_TYPES_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/status.h"

namespace aodb {
namespace shm {

/// One sensor reading: timestamp and value (e.g. extension in mm, wind in
/// m/s). Data loggers convert the analog signal and ship packets of these.
struct DataPoint {
  Micros ts = 0;
  double value = 0;

  void Encode(BufWriter* w) const {
    w->PutSigned(ts);
    w->PutDouble(value);
  }
  static Status DecodeInto(BufReader* r, DataPoint* out) {
    AODB_RETURN_NOT_OK(r->GetSigned(&out->ts));
    return r->GetDouble(&out->value);
  }
  Status Decode(BufReader* r) { return DecodeInto(r, this); }
};

/// Most recent value of one channel, as returned by live-data queries
/// (functional requirement 7: browse live data from sensors).
struct LiveDataEntry {
  std::string channel_key;
  Micros ts = 0;
  double value = 0;
  bool has_data = false;

  void Encode(BufWriter* w) const {
    w->PutString(channel_key);
    w->PutSigned(ts);
    w->PutDouble(value);
    w->PutBool(has_data);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&channel_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&ts));
    AODB_RETURN_NOT_OK(r->GetDouble(&value));
    return r->GetBool(&has_data);
  }
};

/// Summarized statistics of one aggregation window (functional requirement
/// 6: plots of statistical aggregates at several levels of detail).
struct AggregateView {
  Micros window_start = 0;
  Micros window_len = 0;
  int64_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;

  void Encode(BufWriter* w) const {
    w->PutSigned(window_start);
    w->PutSigned(window_len);
    w->PutSigned(count);
    w->PutDouble(min);
    w->PutDouble(max);
    w->PutDouble(mean);
    w->PutDouble(stddev);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetSigned(&window_start));
    AODB_RETURN_NOT_OK(r->GetSigned(&window_len));
    AODB_RETURN_NOT_OK(r->GetSigned(&count));
    AODB_RETURN_NOT_OK(r->GetDouble(&min));
    AODB_RETURN_NOT_OK(r->GetDouble(&max));
    AODB_RETURN_NOT_OK(r->GetDouble(&mean));
    return r->GetDouble(&stddev);
  }
};

/// Threshold-crossing alert delivered to users (functional requirement 5).
struct AlertEvent {
  std::string channel_key;
  Micros ts = 0;
  double value = 0;
  double threshold = 0;
  bool above = true;  ///< true: crossed upper threshold; false: lower.

  void Encode(BufWriter* w) const {
    w->PutString(channel_key);
    w->PutSigned(ts);
    w->PutDouble(value);
    w->PutDouble(threshold);
    w->PutBool(above);
  }
  Status Decode(BufReader* r) {
    AODB_RETURN_NOT_OK(r->GetString(&channel_key));
    AODB_RETURN_NOT_OK(r->GetSigned(&ts));
    AODB_RETURN_NOT_OK(r->GetDouble(&value));
    AODB_RETURN_NOT_OK(r->GetDouble(&threshold));
    return r->GetBool(&above);
  }
};

/// Aggregation levels of the statistics hierarchy. In production these are
/// hour/day/month; experiments compress them (they only need the hierarchy
/// shape).
enum class AggLevel : int { kHour = 0, kDay = 1, kMonth = 2 };

inline const char* AggLevelName(AggLevel level) {
  switch (level) {
    case AggLevel::kHour: return "hour";
    case AggLevel::kDay: return "day";
    case AggLevel::kMonth: return "month";
  }
  return "?";
}

// --- Simulated CPU cost calibration -----------------------------------------
//
// Virtual service times per message kind, chosen so that one 2-vCPU silo
// (m5.large) saturates near the paper's measured ~1,800 insert requests/s
// (Figure 6) and the m5.xlarge baseline of 2,100 sensors runs at the
// paper's ~80% utilization design point:
//
//   CPU per insert request =
//     sensor dispatch (100) + 2 channel appends (2 x 440) +
//     2+0.1 aggregator updates (2.1 x 60) + 0.1 virtual computes (0.1 x 250)
//     + remote-hop serialization for the client->sensor message (40)
//     ~= 1171 us
//   Saturation on 2 vCPUs ~= 2 / 1171us ~= 1708 req/s, measured ~1650
//   with runtime overheads (paper: ~1800).
//   Utilization at 2100 req/s on 3 vCPUs ~= 2100 * 1171us / 3 ~= 82%
//   (the paper's ~80% design point).

constexpr Micros kCostSensorInsert = 100;
constexpr Micros kCostChannelAppend = 440;
constexpr Micros kCostAggUpdate = 60;
constexpr Micros kCostVirtualCompute = 250;
constexpr Micros kCostChannelLatest = 30;
constexpr Micros kCostChannelRange = 200;
constexpr Micros kCostOrgLiveFanout = 50;
constexpr Micros kCostConfigure = 50;

/// Approximate wire size of a data point on the network.
constexpr int64_t kBytesPerPoint = 16;

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_TYPES_H_
