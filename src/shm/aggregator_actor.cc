#include "shm/aggregator_actor.h"

namespace aodb {
namespace shm {

void AggregatorActor::Update(std::vector<DataPoint> points) {
  for (const DataPoint& p : points) {
    int64_t idx = p.ts / window_len_us_;
    if (idx > highest_seen_window_) {
      CloseWindowsBefore(idx);
      highest_seen_window_ = idx;
    }
    windows_[idx].Add(p.value);
  }
  while (windows_.size() > kMaxWindows) windows_.erase(windows_.begin());
}

void AggregatorActor::CloseWindowsBefore(int64_t window_idx) {
  if (parent_key_.empty()) return;
  std::vector<DataPoint> closed;
  for (auto& [idx, agg] : windows_) {
    if (idx >= window_idx) break;
    if (idx <= last_forwarded_) continue;
    closed.push_back(
        DataPoint{idx * window_len_us_ + window_len_us_ / 2, agg.mean()});
    last_forwarded_ = idx;
  }
  if (closed.empty()) return;
  CallOptions opts;
  opts.cost_us = kCostAggUpdate;
  opts.request_bytes = static_cast<int64_t>(closed.size()) * kBytesPerPoint;
  opts.priority = MessagePriority::kControl;
  ctx()
      .Ref<AggregatorActor>(parent_key_)
      .TellWith(opts, &AggregatorActor::Update, std::move(closed));
}

std::vector<AggregateView> AggregatorActor::Query(Micros from, Micros to) {
  std::vector<AggregateView> out;
  int64_t from_idx = from / window_len_us_;
  for (auto it = windows_.lower_bound(from_idx); it != windows_.end(); ++it) {
    Micros start = it->first * window_len_us_;
    if (start >= to) break;
    const Welford& w = it->second;
    out.push_back(AggregateView{start, window_len_us_, w.count(), w.min(),
                                w.max(), w.mean(), w.StdDev()});
  }
  return out;
}

}  // namespace shm
}  // namespace aodb
