// SHM platform facade: registers the actor types, applies the paper's
// placement policy (random for organizations/sensors, prefer-local for
// channels and aggregators — §5 "Virtual actor durability and deployment"),
// builds the experiment topology of §6.1 (100 sensors -> 1 organization,
// 2 physical channels per sensor, every 10th sensor a virtual channel
// summing its two channels), and exposes the three client operations the
// benchmark exercises: data insertion, organization live data, raw range.

#ifndef AODB_SHM_PLATFORM_H_
#define AODB_SHM_PLATFORM_H_

#include <atomic>
#include <string>
#include <vector>

#include "actor/actor_ref.h"
#include "actor/runtime.h"
#include "common/retry.h"
#include "shm/aggregator_actor.h"
#include "shm/channel_actor.h"
#include "shm/organization_actor.h"
#include "shm/sensor_actor.h"
#include "shm/types.h"
#include "shm/user_actor.h"

namespace aodb {
namespace shm {

/// Topology parameters; defaults reproduce the paper's §6.1 environment.
struct ShmTopology {
  int sensors = 100;
  int sensors_per_org = 100;
  int channels_per_sensor = 2;
  /// Every Nth sensor additionally has a virtual channel summing its
  /// physical channels. 0 disables virtual channels.
  int virtual_every = 10;
  int window_capacity = 1024;
  /// Statistical aggregation hierarchy (compressed from hour/day/month so
  /// short experiments exercise all levels).
  Micros hour_window_us = 10 * kMicrosPerSecond;
  Micros day_window_us = 60 * kMicrosPerSecond;
  Micros month_window_us = 600 * kMicrosPerSecond;
  /// Alerting: when enabled, each channel alerts its organization's user
  /// above this value.
  bool enable_alerts = false;
  double threshold_high = 0;
  /// Register physical channels in the AODB type registry and the
  /// channels-by-organization index, enabling declarative queries
  /// (aodb/query.h) over channel state.
  bool enable_indexing = false;
};

/// Client-side behaviour of the SHM facade under faults.
struct ShmClientOptions {
  /// When set, Insert uses the write-through path: the ack is issued only
  /// after every channel has persisted its updated state, so acked packets
  /// survive silo crashes (required by the chaos acceptance test).
  bool durable_acks = false;
  /// Client retry policy for inserts and reads (heals Unavailable from
  /// crashed silos and dropped messages). Defaults to no retries.
  RetryPolicy retry = RetryPolicy::None();
};

/// Client-side facade over the SHM actor database.
class ShmPlatform {
 public:
  explicit ShmPlatform(Cluster* cluster, ShmClientOptions client_options = {})
      : cluster_(cluster), client_options_(client_options) {}

  /// Registers every SHM actor type. `channel_persistence` configures the
  /// durability policy of sensors/channels (the §5 spectrum).
  static void RegisterTypes(Cluster& cluster,
                            PersistenceOptions channel_persistence = {});

  /// Applies the paper's placement: channels and aggregators prefer-local,
  /// everything else random.
  static void ApplyPaperPlacement(Cluster& cluster);

  // --- Key naming scheme ---------------------------------------------------
  static std::string OrgKey(int org) { return "org-" + std::to_string(org); }
  static std::string UserKey(int org) { return "user-" + std::to_string(org); }
  static std::string SensorKey(int sensor) {
    return "s" + std::to_string(sensor);
  }
  static std::string ChannelKey(int sensor, int channel) {
    return SensorKey(sensor) + ".c" + std::to_string(channel);
  }
  static std::string VirtualKey(int sensor) { return SensorKey(sensor) + ".v"; }
  static std::string HourAggKey(const std::string& channel_key) {
    return channel_key + ".h";
  }
  static std::string DayAggKey(const std::string& channel_key) {
    return channel_key + ".d";
  }
  static std::string MonthAggKey(const std::string& channel_key) {
    return channel_key + ".m";
  }

  /// Creates the whole topology. Completes when every organization, user,
  /// sensor, channel, virtual channel, and aggregator is configured.
  Future<Status> Setup(const ShmTopology& topology);

  /// True if `sensor` has a virtual channel under `topology`.
  static bool HasVirtual(const ShmTopology& t, int sensor) {
    return t.virtual_every > 0 && sensor % t.virtual_every == 0;
  }

  // --- Client operations (the benchmark's three request kinds) -------------

  /// Inserts one logger packet for `sensor` (tenant-stamped).
  Future<Status> Insert(const ShmTopology& t, int sensor,
                        std::vector<DataPoint> points);

  /// Live data of all channels of organization `org`.
  Future<std::vector<LiveDataEntry>> LiveData(const ShmTopology& t, int org);

  /// Raw window of one physical channel in [from, to).
  Future<RangeReply> RawRange(const ShmTopology& t, int sensor, int channel,
                              Micros from, Micros to);

  /// Hour-level aggregates of a channel in [from, to).
  Future<std::vector<AggregateView>> HourAggregates(const ShmTopology& t,
                                                    int sensor, int channel,
                                                    Micros from, Micros to);

  Cluster& cluster() { return *cluster_; }

  /// Client-side retries performed across all operations (inserts and
  /// reads), for fault-injection tests and deterministic-replay checks.
  int64_t insert_retries() const { return insert_retries_.load(); }

  /// Organization index owning `sensor`.
  static int OrgOf(const ShmTopology& t, int sensor) {
    return sensor / t.sensors_per_org;
  }
  static int NumOrgs(const ShmTopology& t) {
    return (t.sensors + t.sensors_per_org - 1) / t.sensors_per_org;
  }

 private:
  Principal TenantOf(const ShmTopology& t, int sensor_or_org,
                     bool is_org) const {
    int org = is_org ? sensor_or_org : OrgOf(t, sensor_or_org);
    return Principal{OrgKey(org), "user"};
  }

  /// Deterministic per-request seed for retry jitter.
  uint64_t NextSeed() {
    return cluster_->options().seed ^ (0x73686d63ULL + seed_seq_.fetch_add(1));
  }

  Cluster* cluster_;
  ShmClientOptions client_options_;
  std::atomic<uint64_t> seed_seq_{0};
  std::atomic<int64_t> insert_retries_{0};
};

}  // namespace shm
}  // namespace aodb

#endif  // AODB_SHM_PLATFORM_H_
