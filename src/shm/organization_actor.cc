#include "shm/organization_actor.h"

namespace aodb {
namespace shm {

void Project::Encode(BufWriter* w) const {
  w->PutString(id);
  w->PutString(name);
  w->PutVector(sensor_keys,
               [](BufWriter& bw, const std::string& s) { bw.PutString(s); });
}

Status Project::Decode(BufReader* r) {
  AODB_RETURN_NOT_OK(r->GetString(&id));
  AODB_RETURN_NOT_OK(r->GetString(&name));
  return r->GetVector(
      &sensor_keys,
      [](BufReader& br, std::string* s) { return br.GetString(s); });
}

void OrganizationState::Encode(BufWriter* w) const {
  w->PutString(name);
  w->PutVector(projects,
               [](BufWriter& bw, const Project& p) { p.Encode(&bw); });
  w->PutVector(user_keys,
               [](BufWriter& bw, const std::string& s) { bw.PutString(s); });
  w->PutVector(channel_keys,
               [](BufWriter& bw, const std::string& s) { bw.PutString(s); });
}

Status OrganizationState::Decode(BufReader* r) {
  AODB_RETURN_NOT_OK(r->GetString(&name));
  AODB_RETURN_NOT_OK(r->GetVector(
      &projects, [](BufReader& br, Project* p) { return p->Decode(&br); }));
  AODB_RETURN_NOT_OK(r->GetVector(
      &user_keys,
      [](BufReader& br, std::string* s) { return br.GetString(s); }));
  return r->GetVector(
      &channel_keys,
      [](BufReader& br, std::string* s) { return br.GetString(s); });
}

Status OrganizationActor::SetName(std::string name) {
  state().name = std::move(name);
  MarkDirty();
  return Status::OK();
}

Status OrganizationActor::AddProject(std::string id, std::string name) {
  for (const Project& p : state().projects) {
    if (p.id == id) return Status::AlreadyExists("project " + id);
  }
  state().projects.push_back(Project{std::move(id), std::move(name), {}});
  MarkDirty();
  return Status::OK();
}

Status OrganizationActor::AddSensor(std::string project_id,
                                    std::string sensor_key,
                                    std::vector<std::string> channel_keys) {
  Project* project = nullptr;
  for (Project& p : state().projects) {
    if (p.id == project_id) {
      project = &p;
      break;
    }
  }
  if (project == nullptr) return Status::NotFound("project " + project_id);
  project->sensor_keys.push_back(std::move(sensor_key));
  for (std::string& c : channel_keys) {
    state().channel_keys.push_back(std::move(c));
  }
  MarkDirty();
  return Status::OK();
}

Status OrganizationActor::AddUser(std::string user_key) {
  state().user_keys.push_back(std::move(user_key));
  MarkDirty();
  return Status::OK();
}

bool OrganizationActor::CallerMayRead() const {
  const Principal& p = ctx().caller();
  if (p.tenant.empty()) return true;  // Internal caller.
  return p.tenant == ctx().self().key || p.role == "admin";
}

Future<std::vector<LiveDataEntry>> OrganizationActor::LiveData() {
  if (!CallerMayRead()) {
    return Future<std::vector<LiveDataEntry>>::FromError(
        Status::Unauthorized("tenant " + ctx().caller().tenant +
                             " cannot read " + ctx().self().key));
  }
  std::vector<Future<LiveDataEntry>> calls;
  calls.reserve(state().channel_keys.size());
  CallOptions opts;
  opts.cost_us = kCostChannelLatest;
  for (const std::string& key : state().channel_keys) {
    // The flat key list does not distinguish physical from virtual
    // channels; both expose Latest with the same semantics, and virtual
    // channel keys are tagged with a ".v" suffix by the platform.
    if (key.size() > 2 && key.compare(key.size() - 2, 2, ".v") == 0) {
      calls.push_back(ctx().Ref<VirtualChannelActor>(key).CallWith(
          opts, &VirtualChannelActor::Latest));
    } else {
      calls.push_back(ctx().Ref<PhysicalChannelActor>(key).CallWith(
          opts, &PhysicalChannelActor::Latest));
    }
  }
  Promise<std::vector<LiveDataEntry>> done;
  WhenAll(calls).OnReady(
      [done](Result<std::vector<Result<LiveDataEntry>>>&& r) {
        if (!r.ok()) {
          done.SetError(r.status());
          return;
        }
        std::vector<LiveDataEntry> out;
        out.reserve(r.value().size());
        for (auto& e : r.value()) {
          if (!e.ok()) {
            done.SetError(e.status());
            return;
          }
          out.push_back(std::move(e).value());
        }
        done.SetValue(std::move(out));
      });
  return done.GetFuture();
}

std::vector<std::string> OrganizationActor::ChannelKeys() {
  return state().channel_keys;
}

std::vector<Project> OrganizationActor::Projects() {
  return state().projects;
}

int64_t OrganizationActor::SensorCount() {
  int64_t n = 0;
  for (const Project& p : state().projects) {
    n += static_cast<int64_t>(p.sensor_keys.size());
  }
  return n;
}

}  // namespace shm
}  // namespace aodb
