// The benchmarking tool (paper §6.1): simulates sensors and users against
// the SHM data platform. Faithful to the paper's design:
//  * each simulated sensor sends one insertion request per second carrying
//    20 data points (10 per physical channel, i.e. 10 Hz sampling);
//  * the procedure repeats each second per sensor, only if that sensor's
//    previous call has finished (closed loop; at saturation each sensor has
//    exactly one request outstanding and throughput plateaus at capacity);
//  * per organization and second, at most one live-data and one raw-range
//    user request (~1% + 1% of traffic at 100 sensors/org);
//  * every request's latency is logged; results are windowed, the first and
//    last windows dropped, and mean/percentiles reported.
//
// Works in both execution modes: pacing uses the client executor's clock
// (virtual time under the simulator).

#ifndef AODB_LOADGEN_SHM_LOADGEN_H_
#define AODB_LOADGEN_SHM_LOADGEN_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/histogram.h"
#include "loadgen/signal.h"
#include "shm/platform.h"
#include "storage/cloud_kv.h"

namespace aodb {

/// Load profile. Defaults mirror §6.1.
struct LoadGenOptions {
  /// Total driving time; measurement uses interior windows only.
  Micros duration_us = 60 * kMicrosPerSecond;
  /// Reporting window (the paper uses 1 minute of its 10-minute runs; scaled
  /// runs use duration/10 by default — 0 means that default).
  Micros window_us = 0;
  int points_per_request = 20;
  double sample_rate_hz = 10.0;
  /// Enable the 1-per-org-per-second user queries (off for pure-ingestion
  /// experiments like Figures 6 and 7).
  bool user_queries = false;
  /// Gateway admission control: token-bucket cap on telemetry insertions
  /// admitted per second across all sensors (0 = off). Insertions beyond
  /// the rate are refused at the edge — counted in admission_rejected,
  /// never put on the cluster — modeling an ingress gateway that sheds
  /// flash-crowd excess before it becomes queued work.
  double admission_rate_rps = 0;
  /// Bucket burst capacity in requests (defaults to one second's worth of
  /// rate when 0). Sensors fire in per-second waves, so the default admits
  /// a full wave at the admitted rate.
  double admission_burst = 0;
  uint64_t seed = 1234;
};

/// Aggregated measurement of one run.
struct LoadGenReport {
  Histogram insert_latency_us;
  Histogram live_latency_us;
  Histogram raw_latency_us;
  int64_t inserts_sent = 0;
  int64_t inserts_done = 0;
  int64_t live_done = 0;
  int64_t raw_done = 0;
  int64_t errors = 0;
  int64_t waves_fired = 0;
  int64_t ticks_skipped = 0;  ///< Per-sensor skips (previous call running).
  /// Insertions refused by the gateway token bucket (admission control on;
  /// these never reached the cluster and are not errors).
  int64_t admission_rejected = 0;
  /// Completed insertion requests per interior window -> achieved req/s.
  double achieved_insert_rps = 0;
  double achieved_rps_stddev = 0;
  double offered_insert_rps = 0;
};

/// Closed-loop driver for one experiment run.
class ShmLoadGen {
 public:
  ShmLoadGen(shm::ShmPlatform* platform, const shm::ShmTopology& topology,
             Executor* client_executor, LoadGenOptions options);

  /// Schedules the wave driver; returns immediately. Under simulation, run
  /// the scheduler past `end_time()` plus drain slack, then Finish().
  void Start();

  /// True once the horizon passed and no request is outstanding.
  bool Done() const;

  Micros end_time() const { return end_time_; }

  /// Computes windowed throughput and returns the report. Call after the
  /// run drained.
  const LoadGenReport& Finish();

 private:
  void Wave();
  void FireWave(Micros now);
  void FireInsert(int sensor, Micros now);
  void FireUserQueries(int org, Micros now);
  void RecordInsertDone(int sensor, Micros sent_at, bool ok);

  shm::ShmPlatform* platform_;
  const shm::ShmTopology topology_;
  Executor* exec_;
  LoadGenOptions options_;

  std::vector<SignalGenerator> signals_;  // One per sensor.
  /// Gateway admission bucket (null when admission control is off).
  std::unique_ptr<TokenBucket> admission_;
  Rng rng_;
  Micros start_time_ = 0;
  Micros end_time_ = 0;
  Micros window_us_ = 0;

  mutable std::mutex mu_;
  int64_t outstanding_ = 0;
  std::vector<bool> sensor_busy_;
  std::vector<bool> live_busy_;
  std::vector<bool> raw_busy_;
  bool finished_ = false;
  LoadGenReport report_;
  // Completed-insert counts per window index.
  std::vector<int64_t> window_completions_;
};

}  // namespace aodb

#endif  // AODB_LOADGEN_SHM_LOADGEN_H_
