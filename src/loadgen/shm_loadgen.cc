#include "loadgen/shm_loadgen.h"

#include <cmath>

namespace aodb {

ShmLoadGen::ShmLoadGen(shm::ShmPlatform* platform,
                       const shm::ShmTopology& topology,
                       Executor* client_executor, LoadGenOptions options)
    : platform_(platform),
      topology_(topology),
      exec_(client_executor),
      options_(options),
      rng_(options.seed) {
  if (options_.admission_rate_rps > 0) {
    admission_ = std::make_unique<TokenBucket>(
        options_.admission_rate_rps,
        options_.admission_burst > 0 ? options_.admission_burst
                                     : options_.admission_rate_rps);
  }
  signals_.reserve(topology_.sensors);
  for (int s = 0; s < topology_.sensors; ++s) {
    signals_.emplace_back(options.seed * 7919 + s);
  }
  window_us_ = options_.window_us > 0 ? options_.window_us
                                      : options_.duration_us / 10;
  // Round the window to whole seconds: waves fire on second boundaries, so
  // fractional windows would alternate between catching 1 and 2 waves and
  // inflate the reported stddev artificially.
  window_us_ =
      ((window_us_ + kMicrosPerSecond - 1) / kMicrosPerSecond) *
      kMicrosPerSecond;
  if (window_us_ <= 0) window_us_ = kMicrosPerSecond;
  sensor_busy_.assign(topology_.sensors, false);
  int orgs = shm::ShmPlatform::NumOrgs(topology_);
  live_busy_.assign(orgs, false);
  raw_busy_.assign(orgs, false);
}

void ShmLoadGen::Start() {
  start_time_ = exec_->clock()->Now();
  end_time_ = start_time_ + options_.duration_us;
  window_completions_.assign(
      static_cast<size_t>(options_.duration_us / window_us_) + 2, 0);
  Wave();
}

void ShmLoadGen::Wave() {
  Micros now = exec_->clock()->Now();
  if (now >= end_time_) return;  // Horizon reached; let requests drain.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++report_.waves_fired;
  }
  FireWave(now);
  exec_->PostAfter(kMicrosPerSecond, [this] { Wave(); });
}

void ShmLoadGen::FireWave(Micros now) {
  // Insertions: one packet per sensor whose previous call has finished.
  for (int s = 0; s < topology_.sensors; ++s) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (sensor_busy_[s]) {
        ++report_.ticks_skipped;
        continue;
      }
    }
    if (admission_ != nullptr && admission_->Reserve(now, 1.0) > 0) {
      // Over the admitted rate this second: refuse at the gateway instead
      // of queueing. The bucket reserves unconditionally, so the refused
      // token is returned; the sensor stays eligible next wave.
      admission_->Refund(1.0);
      std::lock_guard<std::mutex> lock(mu_);
      ++report_.admission_rejected;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      sensor_busy_[s] = true;
    }
    FireInsert(s, now);
  }
  if (!options_.user_queries) return;
  // User queries: per organization, one live-data and one raw-range request
  // per second (the paper's "at most one person looking at live data for
  // each organization requesting data once every second, and at most one
  // request for raw data a second for each organization").
  int orgs = shm::ShmPlatform::NumOrgs(topology_);
  for (int o = 0; o < orgs; ++o) FireUserQueries(o, now);
}

void ShmLoadGen::FireInsert(int sensor, Micros now) {
  auto packet = signals_[sensor].Packet(now, options_.points_per_request,
                                        options_.sample_rate_hz);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    ++report_.inserts_sent;
  }
  platform_->Insert(topology_, sensor, std::move(packet))
      .OnReady([this, sensor, now](Result<Status>&& r) {
        Status st = r.ok() ? r.value() : r.status();
        RecordInsertDone(sensor, now, st.ok());
      });
}

void ShmLoadGen::FireUserQueries(int org, Micros now) {
  // User requests are not phase-locked to the sensor second: each is issued
  // at a uniformly random offset within the second. (Sensors burst at the
  // second boundary, as in the paper's tool; users sample the resulting
  // queue at random phases, which is what gives Figures 8 and 9 their
  // percentile spread.)
  bool fire_live = false;
  bool fire_raw = false;
  Micros live_jitter = 0;
  Micros raw_jitter = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!live_busy_[org]) {
      live_busy_[org] = true;
      ++outstanding_;
      fire_live = true;
      live_jitter = static_cast<Micros>(rng_.NextBelow(kMicrosPerSecond));
    }
    if (!raw_busy_[org]) {
      raw_busy_[org] = true;
      ++outstanding_;
      fire_raw = true;
      raw_jitter = static_cast<Micros>(rng_.NextBelow(kMicrosPerSecond));
    }
  }
  (void)now;
  if (fire_live) {
    exec_->PostAfter(live_jitter, [this, org] {
      Micros sent = exec_->clock()->Now();
      platform_->LiveData(topology_, org)
          .OnReady(
              [this, org, sent](Result<std::vector<shm::LiveDataEntry>>&& r) {
                Micros latency = exec_->clock()->Now() - sent;
                std::lock_guard<std::mutex> lock(mu_);
                --outstanding_;
                live_busy_[org] = false;
                if (r.ok()) {
                  report_.live_latency_us.Record(latency);
                  ++report_.live_done;
                } else {
                  ++report_.errors;
                }
              });
    });
  }
  if (fire_raw) {
    // Raw range over a random channel of a random sensor of this org.
    int sensor_in_org = static_cast<int>(
        rng_.NextBelow(static_cast<uint64_t>(topology_.sensors_per_org)));
    int sensor = std::min(org * topology_.sensors_per_org + sensor_in_org,
                          topology_.sensors - 1);
    int channel = static_cast<int>(rng_.NextBelow(
        static_cast<uint64_t>(topology_.channels_per_sensor)));
    exec_->PostAfter(raw_jitter, [this, org, sensor, channel] {
      Micros sent = exec_->clock()->Now();
      platform_
          ->RawRange(topology_, sensor, channel, sent - 30 * kMicrosPerSecond,
                     sent + kMicrosPerSecond)
          .OnReady([this, org, sent](Result<shm::RangeReply>&& r) {
            Micros latency = exec_->clock()->Now() - sent;
            std::lock_guard<std::mutex> lock(mu_);
            --outstanding_;
            raw_busy_[org] = false;
            if (r.ok() && r.value().authorized) {
              report_.raw_latency_us.Record(latency);
              ++report_.raw_done;
            } else {
              ++report_.errors;
            }
          });
    });
  }
}

void ShmLoadGen::RecordInsertDone(int sensor, Micros sent_at, bool ok) {
  Micros now = exec_->clock()->Now();
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  sensor_busy_[sensor] = false;
  if (!ok) {
    ++report_.errors;
    return;
  }
  ++report_.inserts_done;
  report_.insert_latency_us.Record(now - sent_at);
  size_t window = static_cast<size_t>((now - start_time_) / window_us_);
  if (window < window_completions_.size()) {
    ++window_completions_[window];
  }
}

bool ShmLoadGen::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exec_->clock()->Now() >= end_time_ && outstanding_ == 0;
}

const LoadGenReport& ShmLoadGen::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return report_;
  finished_ = true;
  // Interior windows: drop the first and last, as in the paper.
  size_t full_windows = static_cast<size_t>(options_.duration_us / window_us_);
  double sum = 0, sum_sq = 0;
  int n = 0;
  for (size_t w = 1; w + 1 < full_windows; ++w) {
    double rps = static_cast<double>(window_completions_[w]) /
                 (static_cast<double>(window_us_) / kMicrosPerSecond);
    sum += rps;
    sum_sq += rps * rps;
    ++n;
  }
  if (n > 0) {
    report_.achieved_insert_rps = sum / n;
    double var = sum_sq / n - report_.achieved_insert_rps *
                                  report_.achieved_insert_rps;
    report_.achieved_rps_stddev = var > 0 ? std::sqrt(var) : 0;
  }
  report_.offered_insert_rps = static_cast<double>(topology_.sensors);
  return report_;
}

}  // namespace aodb
