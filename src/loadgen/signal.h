// Synthetic sensor signal generator: trend + periodic component + noise,
// standing in for the Great Belt Bridge feeds (the paper's own evaluation
// also simulated its sensors; values only need to exercise the accumulated-
// change / threshold / aggregate code paths).

#ifndef AODB_LOADGEN_SIGNAL_H_
#define AODB_LOADGEN_SIGNAL_H_

#include <cmath>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "shm/types.h"

namespace aodb {

/// Deterministic per-channel signal.
class SignalGenerator {
 public:
  /// `channel_seed` individualizes phase and noise per channel.
  explicit SignalGenerator(uint64_t channel_seed)
      : rng_(channel_seed),
        phase_(rng_.Uniform(0, 2 * kPi)),
        base_(rng_.Uniform(-5, 5)),
        amplitude_(rng_.Uniform(0.5, 2.0)),
        period_us_(static_cast<Micros>(rng_.Uniform(20, 120)) *
                   kMicrosPerSecond) {}

  /// Value of the signal at time `ts`.
  double At(Micros ts) {
    double angle =
        2 * kPi * static_cast<double>(ts) / static_cast<double>(period_us_) +
        phase_;
    return base_ + amplitude_ * std::sin(angle) + rng_.Normal(0, 0.05);
  }

  /// A packet of `n` points sampled at `rate_hz` ending at `now`.
  std::vector<shm::DataPoint> Packet(Micros now, int n, double rate_hz) {
    std::vector<shm::DataPoint> points;
    points.reserve(n);
    Micros step = static_cast<Micros>(1e6 / rate_hz);
    Micros first = now - step * (n - 1);
    for (int i = 0; i < n; ++i) {
      Micros ts = first + i * step;
      points.push_back(shm::DataPoint{ts, At(ts)});
    }
    return points;
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  Rng rng_;
  double phase_;
  double base_;
  double amplitude_;
  Micros period_us_;
};

}  // namespace aodb

#endif  // AODB_LOADGEN_SIGNAL_H_
