// Durable virtual actors: PersistentActor<TState> mirrors Orleans' grain
// state model. State is an application struct with Encode/Decode methods;
// the actor reads its latest snapshot on activation and writes it back
// according to a configurable durability policy — the spectrum discussed in
// the paper's §5 (write per update, windowed, or only on deactivation).

#ifndef AODB_STORAGE_PERSISTENT_ACTOR_H_
#define AODB_STORAGE_PERSISTENT_ACTOR_H_

#include <mutex>
#include <string>

#include "actor/actor.h"
#include "common/codec.h"
#include "common/logging.h"
#include "storage/state_storage.h"

namespace aodb {

/// When actor state is written to the storage provider.
enum class PersistPolicy {
  /// Every MarkDirty() triggers a write (strongest durability, highest
  /// storage load — the paper's "200 write requests every second" case).
  kOnEveryUpdate,
  /// Write after `window_updates` dirty marks or `window_interval_us`,
  /// whichever first (the paper's recommended windowed collection).
  kWindowed,
  /// Write only when the activation is deactivated / at shutdown (the
  /// configuration used in the paper's benchmarks).
  kOnDeactivate,
};

/// Per-actor-class persistence configuration.
struct PersistenceOptions {
  PersistPolicy policy = PersistPolicy::kOnDeactivate;
  int window_updates = 100;
  Micros window_interval_us = 10 * kMicrosPerSecond;
  /// Name of the storage provider registered on the cluster. If the
  /// provider is missing the actor runs volatile (logged once).
  std::string provider = "default";
};

/// Base class for actors with durable state.
///
/// TState requirements:
///   void Encode(BufWriter* w) const;
///   Status Decode(BufReader* r);
/// and default-constructibility (the state of a never-persisted grain).
template <typename TState>
class PersistentActor : public ActorBase {
 public:
  explicit PersistentActor(PersistenceOptions options = {})
      : options_(std::move(options)) {}

  /// Loads the latest snapshot (NotFound means a fresh grain).
  Future<Status> OnActivate() override {
    StateStorage* ss = provider();
    if (ss == nullptr) return Future<Status>::FromValue(Status::OK());
    if (options_.policy == PersistPolicy::kWindowed) {
      ctx().SetTimer(kPersistTimerName, options_.window_interval_us);
    }
    Promise<Status> done;
    ss->Read(ctx().self().ToString(), ctx().executor())
        .OnReady([this, done](Result<std::string>&& r) {
          if (!r.ok()) {
            if (r.status().IsNotFound()) {
              done.SetValue(Status::OK());  // Fresh grain.
            } else {
              done.SetValue(r.status());
            }
            return;
          }
          BufReader reader(r.value());
          done.SetValue(state_.Decode(&reader));
        });
    return done.GetFuture();
  }

  /// Flushes dirty state before the activation is destroyed.
  Future<Status> OnDeactivate() override {
    bool need_flush;
    {
      std::lock_guard<std::mutex> lock(persist_mu_);
      need_flush = dirty_count_ > 0;
    }
    if (!need_flush) return Future<Status>::FromValue(Status::OK());
    return WriteStateAsync();
  }

  /// Dispatches the internal persistence timer; application timers are
  /// forwarded to OnAppTimer.
  void OnTimer(const std::string& name) override {
    if (name == kPersistTimerName) {
      bool need_flush;
      {
        std::lock_guard<std::mutex> lock(persist_mu_);
        need_flush = dirty_count_ > 0 && !write_pending_;
      }
      if (need_flush) WriteStateAsync();
      return;
    }
    OnAppTimer(name);
  }

  /// Override instead of OnTimer in subclasses of PersistentActor.
  virtual void OnAppTimer(const std::string& name) { (void)name; }

 protected:
  static constexpr char kPersistTimerName[] = "__persist__";

  TState& state() { return state_; }
  const TState& state() const { return state_; }

  const PersistenceOptions& persistence_options() const { return options_; }

  /// Records a state mutation; may trigger a write per the policy. Must be
  /// called from within an actor turn (it snapshots state synchronously).
  void MarkDirty() {
    bool flush = false;
    {
      std::lock_guard<std::mutex> lock(persist_mu_);
      ++dirty_count_;
      switch (options_.policy) {
        case PersistPolicy::kOnEveryUpdate:
          flush = !write_pending_;
          break;
        case PersistPolicy::kWindowed:
          flush = dirty_count_ >= options_.window_updates && !write_pending_;
          break;
        case PersistPolicy::kOnDeactivate:
          break;
      }
    }
    if (flush) WriteStateAsync();
  }

  /// Serializes the current state and writes it to the provider. Call from
  /// within a turn. Returns the storage acknowledgement.
  Future<Status> WriteStateAsync() {
    StateStorage* ss = provider();
    if (ss == nullptr) {
      std::lock_guard<std::mutex> lock(persist_mu_);
      dirty_count_ = 0;
      return Future<Status>::FromValue(Status::OK());
    }
    BufWriter w;
    state_.Encode(&w);
    int64_t flushed_marks;
    {
      std::lock_guard<std::mutex> lock(persist_mu_);
      write_pending_ = true;
      flushed_marks = dirty_count_;
    }
    Promise<Status> done;
    ss->Write(ctx().self().ToString(), w.Release(), ctx().executor())
        .OnReady([this, done, flushed_marks](Result<Status>&& r) {
          Status st = r.ok() ? r.value() : r.status();
          {
            std::lock_guard<std::mutex> lock(persist_mu_);
            write_pending_ = false;
            if (st.ok()) dirty_count_ -= flushed_marks;
          }
          if (!st.ok()) {
            AODB_LOG(Debug, "state write failed: %s", st.ToString().c_str());
          }
          done.SetValue(st);
        });
    return done.GetFuture();
  }

  /// Number of storage writes this activation has acknowledged as clean
  /// (diagnostic; dirty_count()==0 means fully persisted).
  int64_t dirty_count() const {
    std::lock_guard<std::mutex> lock(persist_mu_);
    return dirty_count_;
  }

 private:
  StateStorage* provider() const {
    if (!HasContext()) return nullptr;
    StateStorage* ss = ctx().storage(options_.provider);
    return ss;
  }

  const PersistenceOptions options_;
  TState state_;

  mutable std::mutex persist_mu_;
  int64_t dirty_count_ = 0;
  bool write_pending_ = false;
};

}  // namespace aodb

#endif  // AODB_STORAGE_PERSISTENT_ACTOR_H_
