// Durable virtual actors: PersistentActor<TState> mirrors Orleans' grain
// state model. State is an application struct with Encode/Decode methods;
// the actor reads its latest snapshot on activation and writes it back
// according to a configurable durability policy — the spectrum discussed in
// the paper's §5 (write per update, windowed, or only on deactivation).
//
// State reads and writes run under the shared RetryPolicy, so transient
// storage failures (throttling, injected faults, flaky backends) are healed
// transparently. Storage completion callbacks deliberately capture a shared
// PersistCore — never the actor itself — so a write still in flight when
// the hosting silo crashes (or the activation is reclaimed) completes
// harmlessly against the detached core.

#ifndef AODB_STORAGE_PERSISTENT_ACTOR_H_
#define AODB_STORAGE_PERSISTENT_ACTOR_H_

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "actor/actor.h"
#include "actor/retry_async.h"
#include "common/codec.h"
#include "common/logging.h"
#include "common/retry.h"
#include "storage/state_storage.h"

namespace aodb {

/// When actor state is written to the storage provider.
enum class PersistPolicy {
  /// Every MarkDirty() triggers a write (strongest durability, highest
  /// storage load — the paper's "200 write requests every second" case).
  kOnEveryUpdate,
  /// Write after `window_updates` dirty marks or `window_interval_us`,
  /// whichever first (the paper's recommended windowed collection).
  kWindowed,
  /// Write only when the activation is deactivated / at shutdown (the
  /// configuration used in the paper's benchmarks).
  kOnDeactivate,
};

/// Per-actor-class persistence configuration.
struct PersistenceOptions {
  PersistPolicy policy = PersistPolicy::kOnDeactivate;
  int window_updates = 100;
  Micros window_interval_us = 10 * kMicrosPerSecond;
  /// Name of the storage provider registered on the cluster. If the
  /// provider is missing the actor runs volatile (logged once).
  std::string provider = "default";
  /// Retry policy for snapshot loads and writes (transient storage errors
  /// only; NotFound and Corruption surface immediately).
  RetryPolicy retry;
};

/// Base class for actors with durable state.
///
/// TState requirements:
///   void Encode(BufWriter* w) const;
///   Status Decode(BufReader* r);
/// and default-constructibility (the state of a never-persisted grain).
template <typename TState>
class PersistentActor : public ActorBase {
 public:
  explicit PersistentActor(PersistenceOptions options = {})
      : options_(std::move(options)),
        core_(std::make_shared<PersistCore>()) {}

  /// Loads the latest snapshot (NotFound means a fresh grain).
  Future<Status> OnActivate() override {
    StateStorage* ss = provider();
    if (ss == nullptr) return Future<Status>::FromValue(Status::OK());
    if (options_.policy == PersistPolicy::kWindowed) {
      ctx().SetTimer(kPersistTimerName, options_.window_interval_us);
    }
    std::string key = ctx().self().ToString();
    Executor* exec = ctx().executor();
    auto core = core_;
    Promise<Status> done;
    RetryAsync<std::string>(
        exec, options_.retry, NextOpSeed(),
        [ss, key, exec] { return ss->Read(key, exec); }, IsTransient,
        [core](const Status&) { core->BumpRetries(); })
        .OnReady([this, done](Result<std::string>&& r) {
          // Safe to touch the actor here: the activation is pinned
          // (kLoading) until OnActivate's future — completed below —
          // resolves, and crashed silos park activations instead of
          // destroying them.
          if (!r.ok()) {
            if (r.status().IsNotFound()) {
              done.SetValue(Status::OK());  // Fresh grain.
            } else {
              done.SetValue(r.status());
            }
            return;
          }
          BufReader reader(r.value());
          done.SetValue(state_.Decode(&reader));
        });
    return done.GetFuture();
  }

  /// Flushes dirty state before the activation is destroyed — and drains
  /// writes already on the wire even when the state is clean. The drain is
  /// a correctness requirement, not a courtesy: an actor turn ends when
  /// WriteStateAsync is *issued*, so an idle activation can be reclaimed
  /// (idle sweep, paging, migration) while its last write is still in
  /// flight. Writes are only serialized within one activation's core; if
  /// the successor activation loads and writes before the predecessor's
  /// write lands, the late write silently rolls the key back — an acked
  /// update lost (caught by the DST conservation checker under
  /// low-cap paging, seed 29). Holding deactivation until the queue is
  /// empty orders every successor load after every predecessor write.
  Future<Status> OnDeactivate() override {
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      if (core_->dirty_count == 0 && !core_->write_pending) {
        return Future<Status>::FromValue(Status::OK());
      }
      if (core_->dirty_count == 0) {
        // Clean state, write(s) still on the wire: hold deactivation until
        // the last one lands.
        Promise<Status> done;
        core_->drain_waiters.push_back(done);
        return done.GetFuture();
      }
    }
    // Dirty: the flush snapshot queues behind every in-flight write, so its
    // completion implies the full drain.
    return WriteStateAsync();
  }

  /// Dispatches the internal persistence timer; application timers are
  /// forwarded to OnAppTimer.
  void OnTimer(const std::string& name) override {
    if (name == kPersistTimerName) {
      bool need_flush;
      {
        std::lock_guard<std::mutex> lock(core_->mu);
        need_flush = core_->dirty_count > 0 && !core_->write_pending;
      }
      if (need_flush) WriteStateAsync();
      return;
    }
    OnAppTimer(name);
  }

  /// Override instead of OnTimer in subclasses of PersistentActor.
  virtual void OnAppTimer(const std::string& name) { (void)name; }

 protected:
  static constexpr char kPersistTimerName[] = "__persist__";

  TState& state() { return state_; }
  const TState& state() const { return state_; }

  const PersistenceOptions& persistence_options() const { return options_; }

  /// Records a state mutation; may trigger a write per the policy. Must be
  /// called from within an actor turn (it snapshots state synchronously).
  void MarkDirty() {
    bool flush = false;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      ++core_->dirty_count;
      switch (options_.policy) {
        case PersistPolicy::kOnEveryUpdate:
          flush = !core_->write_pending;
          break;
        case PersistPolicy::kWindowed:
          flush = core_->dirty_count >= options_.window_updates &&
                  !core_->write_pending;
          break;
        case PersistPolicy::kOnDeactivate:
          break;
      }
    }
    if (flush) WriteStateAsync();
  }

  /// Serializes the current state and writes it to the provider (with
  /// retries). Call from within a turn. Returns the storage
  /// acknowledgement: OK means the snapshot is durable.
  ///
  /// Writes of one activation are serialized: a snapshot taken while an
  /// earlier write is still in flight is queued and issued after it, so a
  /// stale snapshot can never land on top of a newer one (which would
  /// silently lose acknowledged updates).
  Future<Status> WriteStateAsync() {
    StateStorage* ss = provider();
    if (ss == nullptr) {
      std::lock_guard<std::mutex> lock(core_->mu);
      core_->dirty_count = 0;
      return Future<Status>::FromValue(Status::OK());
    }
    BufWriter w;
    state_.Encode(&w);
    QueuedWrite qw;
    qw.bytes = w.Release();
    qw.seed = NextOpSeed();
    Future<Status> out = qw.done.GetFuture();
    bool issue = false;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      qw.marks = core_->dirty_count - core_->marks_in_flight;
      core_->marks_in_flight += qw.marks;
      if (core_->write_pending) {
        core_->queue.push_back(std::move(qw));
      } else {
        core_->write_pending = true;
        issue = true;
      }
    }
    if (issue) {
      IssueWrite(core_, ss, ctx().executor(), options_.retry,
                 ctx().self().ToString(), std::move(qw));
    }
    return out;
  }

  /// Unflushed dirty marks (diagnostic; 0 means fully persisted).
  int64_t dirty_count() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->dirty_count;
  }

  /// Storage operations retried by this activation (loads and writes).
  int64_t storage_retries() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->retries;
  }

 private:
  /// One serialized state snapshot awaiting its turn on the wire. Snapshots
  /// are encoded inside the actor turn that created them; everything after
  /// that runs against the core only.
  struct QueuedWrite {
    std::string bytes;
    int64_t marks = 0;
    uint64_t seed = 0;
    Promise<Status> done;
  };

  /// Persistence bookkeeping shared with in-flight storage callbacks, so
  /// completions never dereference a possibly-reclaimed actor.
  struct PersistCore {
    mutable std::mutex mu;
    int64_t dirty_count = 0;
    /// Dirty marks claimed by the in-flight and queued writes.
    int64_t marks_in_flight = 0;
    bool write_pending = false;
    std::deque<QueuedWrite> queue;
    /// Deactivations waiting for the in-flight write queue to drain (see
    /// OnDeactivate). Completed OK once write_pending clears; the write's
    /// own status went to its caller.
    std::vector<Promise<Status>> drain_waiters;
    int64_t retries = 0;
    uint64_t op_seq = 0;

    void BumpRetries() {
      std::lock_guard<std::mutex> lock(mu);
      ++retries;
    }
  };

  /// Issues one write (with retries) and, on completion, drains the next
  /// queued snapshot. Static: captures no actor state.
  static void IssueWrite(std::shared_ptr<PersistCore> core, StateStorage* ss,
                         Executor* exec, RetryPolicy policy, std::string key,
                         QueuedWrite qw) {
    auto bytes = std::make_shared<std::string>(std::move(qw.bytes));
    int64_t marks = qw.marks;
    Promise<Status> done = qw.done;
    RetryAsync<Status>(
        exec, policy, qw.seed,
        [ss, key, bytes, exec] { return ss->Write(key, *bytes, exec); },
        IsTransient, [core](const Status&) { core->BumpRetries(); })
        .OnReady([core, ss, exec, policy, key, marks,
                  done](Result<Status>&& r) {
          Status st = r.ok() ? r.value() : r.status();
          std::optional<QueuedWrite> next;
          std::vector<Promise<Status>> drained;
          {
            std::lock_guard<std::mutex> lock(core->mu);
            core->marks_in_flight -= marks;
            if (st.ok()) core->dirty_count -= marks;
            if (!core->queue.empty()) {
              next.emplace(std::move(core->queue.front()));
              core->queue.pop_front();
            } else {
              core->write_pending = false;
              drained.swap(core->drain_waiters);
            }
          }
          if (!st.ok()) {
            AODB_LOG(Warn, "state write for %s failed permanently: %s",
                     key.c_str(), st.ToString().c_str());
          }
          done.SetValue(st);
          for (Promise<Status>& waiter : drained) {
            waiter.SetValue(Status::OK());
          }
          if (next.has_value()) {
            IssueWrite(std::move(core), ss, exec, policy, std::move(key),
                       std::move(*next));
          }
        });
  }

  StateStorage* provider() const {
    if (!HasContext()) return nullptr;
    StateStorage* ss = ctx().storage(options_.provider);
    return ss;
  }

  /// Deterministic per-operation seed for retry jitter.
  uint64_t NextOpSeed() {
    std::lock_guard<std::mutex> lock(core_->mu);
    return ActorIdHash()(ctx().self()) ^ (0x70657273ULL + ++core_->op_seq);
  }

  const PersistenceOptions options_;
  TState state_;
  std::shared_ptr<PersistCore> core_;
};

}  // namespace aodb

#endif  // AODB_STORAGE_PERSISTENT_ACTOR_H_
