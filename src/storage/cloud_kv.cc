#include "storage/cloud_kv.h"

#include <algorithm>
#include <cmath>

namespace aodb {

Micros TokenBucket::Reserve(Micros now, double units) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!initialized_) {
    tokens_ = burst_;
    last_refill_ = now;
    initialized_ = true;
  }
  if (now > last_refill_) {
    tokens_ = std::min(burst_,
                       tokens_ + static_cast<double>(now - last_refill_) *
                                     rate_per_us_);
    last_refill_ = now;
  }
  tokens_ -= units;
  if (tokens_ >= 0) return 0;
  // Deficit: the reservation becomes available once refills cover it.
  return static_cast<Micros>(std::ceil(-tokens_ / rate_per_us_));
}

void TokenBucket::Refund(double units) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(burst_, tokens_ + units);
}

CloudKvStateStorage::CloudKvStateStorage(KvStore* backing,
                                         const CloudKvOptions& options)
    : backing_(backing),
      options_(options),
      write_bucket_(options.write_units_per_sec,
                    options.write_units_per_sec),  // 1s of burst.
      read_bucket_(options.read_units_per_sec, options.read_units_per_sec),
      rng_(options.seed) {}

void CloudKvStateStorage::BindMetrics(MetricsRegistry* metrics) {
  writes_metric_.store(metrics->GetCounter("storage.cloud.writes"),
                       std::memory_order_release);
  reads_metric_.store(metrics->GetCounter("storage.cloud.reads"),
                      std::memory_order_release);
  throttled_metric_.store(metrics->GetCounter("storage.cloud.throttled"),
                          std::memory_order_release);
}

double CloudKvStateStorage::UnitsFor(int64_t bytes) const {
  int64_t units = (bytes + options_.unit_bytes - 1) / options_.unit_bytes;
  return static_cast<double>(std::max<int64_t>(1, units));
}

Micros CloudKvStateStorage::SampleLatency() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<Micros>(
      rng_.LogNormal(options_.latency_mu, options_.latency_sigma));
}

Future<Status> CloudKvStateStorage::Write(const std::string& grain_key,
                                          std::string bytes, Executor* exec) {
  double units = UnitsFor(static_cast<int64_t>(bytes.size()));
  Micros now = exec->clock()->Now();
  Micros wait = write_bucket_.Reserve(now, units);
  if (wait > options_.max_throttle_wait_us) {
    write_bucket_.Refund(units);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++throttled_;
    }
    if (Counter* c = throttled_metric_.load(std::memory_order_acquire)) {
      c->Add();
    }
    return Future<Status>::FromError(
        Status::Unavailable("write capacity exceeded"));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++writes_;
  }
  if (Counter* c = writes_metric_.load(std::memory_order_acquire)) c->Add();
  Micros delay = wait + SampleLatency();
  Promise<Status> promise;
  KvStore* backing = backing_;
  std::string key = "grain/" + grain_key;
  exec->PostAfter(delay, [backing, key = std::move(key),
                          bytes = std::move(bytes), promise] {
    promise.SetValue(backing->Put(key, bytes));
  });
  return promise.GetFuture();
}

Future<std::string> CloudKvStateStorage::Read(const std::string& grain_key,
                                              Executor* exec) {
  Micros now = exec->clock()->Now();
  Micros wait = read_bucket_.Reserve(now, 1.0);
  if (wait > options_.max_throttle_wait_us) {
    read_bucket_.Refund(1.0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++throttled_;
    }
    if (Counter* c = throttled_metric_.load(std::memory_order_acquire)) {
      c->Add();
    }
    return Future<std::string>::FromError(
        Status::Unavailable("read capacity exceeded"));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++reads_;
  }
  if (Counter* c = reads_metric_.load(std::memory_order_acquire)) c->Add();
  Micros delay = wait + SampleLatency();
  Promise<std::string> promise;
  KvStore* backing = backing_;
  std::string key = "grain/" + grain_key;
  exec->PostAfter(delay, [backing, key = std::move(key), promise] {
    Result<std::string> r = backing->Get(key);
    if (r.ok()) {
      promise.SetValue(std::move(r).value());
    } else {
      promise.SetError(r.status());
    }
  });
  return promise.GetFuture();
}

Future<Status> CloudKvStateStorage::Clear(const std::string& grain_key,
                                          Executor* exec) {
  Micros now = exec->clock()->Now();
  Micros wait = write_bucket_.Reserve(now, 1.0);
  if (wait > options_.max_throttle_wait_us) {
    write_bucket_.Refund(1.0);
    return Future<Status>::FromError(
        Status::Unavailable("write capacity exceeded"));
  }
  Micros delay = wait + SampleLatency();
  Promise<Status> promise;
  KvStore* backing = backing_;
  std::string key = "grain/" + grain_key;
  exec->PostAfter(delay, [backing, key = std::move(key), promise] {
    promise.SetValue(backing->Delete(key));
  });
  return promise.GetFuture();
}

int64_t CloudKvStateStorage::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}
int64_t CloudKvStateStorage::reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_;
}
int64_t CloudKvStateStorage::throttled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return throttled_;
}

}  // namespace aodb
