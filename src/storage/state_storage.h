// Asynchronous grain-state storage providers (the Orleans storage-provider
// model): actors persist an opaque byte snapshot of their state under their
// actor id. Providers are registered on the Cluster by name and selected by
// each persistent actor class.

#ifndef AODB_STORAGE_STATE_STORAGE_H_
#define AODB_STORAGE_STATE_STORAGE_H_

#include <memory>
#include <string>

#include "actor/executor.h"
#include "actor/future.h"
#include "storage/kv_store.h"

namespace aodb {

class MetricsRegistry;

/// Asynchronous state store. `exec` supplies the completion scheduling (and
/// in simulation mode, the virtual time base for the provider's latency).
class StateStorage {
 public:
  virtual ~StateStorage() = default;

  /// Called once when the provider is registered on a cluster
  /// (Cluster::RegisterStateStorage): providers that keep internal counters
  /// mirror them into the cluster's unified registry ("storage.*" series).
  /// Default: no metrics exported.
  virtual void BindMetrics(MetricsRegistry* metrics) { (void)metrics; }

  /// Persists `bytes` as the latest state snapshot of `grain_key`.
  virtual Future<Status> Write(const std::string& grain_key,
                               std::string bytes, Executor* exec) = 0;

  /// Loads the latest snapshot; fails with NotFound if the grain was never
  /// persisted (reported through the future's error channel).
  virtual Future<std::string> Read(const std::string& grain_key,
                                   Executor* exec) = 0;

  /// Deletes the snapshot.
  virtual Future<Status> Clear(const std::string& grain_key,
                               Executor* exec) = 0;
};

/// Provider over any synchronous KvStore; completes immediately (used for
/// in-memory testing and as the zero-latency baseline).
class KvStateStorage final : public StateStorage {
 public:
  /// Does not take ownership of `kv`.
  explicit KvStateStorage(KvStore* kv) : kv_(kv) {}

  Future<Status> Write(const std::string& grain_key, std::string bytes,
                       Executor* exec) override {
    (void)exec;
    return Future<Status>::FromValue(kv_->Put(Key(grain_key), bytes));
  }

  Future<std::string> Read(const std::string& grain_key,
                            Executor* exec) override {
    (void)exec;
    Result<std::string> r = kv_->Get(Key(grain_key));
    if (!r.ok()) return Future<std::string>::FromError(r.status());
    return Future<std::string>::FromValue(std::move(r).value());
  }

  Future<Status> Clear(const std::string& grain_key,
                       Executor* exec) override {
    (void)exec;
    return Future<Status>::FromValue(kv_->Delete(Key(grain_key)));
  }

 private:
  static std::string Key(const std::string& grain_key) {
    return "grain/" + grain_key;
  }
  KvStore* kv_;
};

}  // namespace aodb

#endif  // AODB_STORAGE_STATE_STORAGE_H_
