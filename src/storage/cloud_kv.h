// Simulated managed cloud KV service (the role DynamoDB plays in the
// paper's deployment): provisioned read/write capacity enforced by token
// buckets, log-normal request latency, and optional throttling errors when
// sustained load exceeds capacity. Wraps any synchronous KvStore as the
// backing medium.

#ifndef AODB_STORAGE_CLOUD_KV_H_
#define AODB_STORAGE_CLOUD_KV_H_

#include <atomic>
#include <mutex>

#include "common/rng.h"
#include "common/telemetry.h"
#include "storage/state_storage.h"

namespace aodb {

/// Capacity and latency model of the simulated cloud store.
struct CloudKvOptions {
  /// Provisioned write capacity units per second (1 unit = one write of up
  /// to `unit_bytes`). The paper provisions 200.
  double write_units_per_sec = 200;
  /// Provisioned read capacity units per second. The paper provisions 200.
  double read_units_per_sec = 200;
  int64_t unit_bytes = 1024;
  /// Maximum queueing delay a request may absorb waiting for capacity
  /// before it is rejected with Unavailable (client-visible throttling).
  Micros max_throttle_wait_us = 2 * kMicrosPerSecond;
  /// Latency model: exp(Normal(mu, sigma)) microseconds — a log-normal
  /// centered near e^mu us. Defaults give median ~4 ms, p99 ~15 ms.
  double latency_mu = 8.3;
  double latency_sigma = 0.5;
  uint64_t seed = 7;
};

/// Token bucket over a (possibly virtual) clock.
class TokenBucket {
 public:
  TokenBucket(double units_per_sec, double burst_units)
      : rate_per_us_(units_per_sec / 1e6), burst_(burst_units) {}

  /// Reserves `units` at time `now`; returns the wait in microseconds until
  /// the reservation is available (0 if immediately). The reservation is
  /// always made — callers reject if the wait exceeds their budget (and
  /// then must Refund).
  Micros Reserve(Micros now, double units);

  /// Returns previously reserved units (failed request path).
  void Refund(double units);

 private:
  const double rate_per_us_;
  const double burst_;
  std::mutex mu_;
  double tokens_ = 0;
  Micros last_refill_ = 0;
  bool initialized_ = false;
};

/// Asynchronous cloud-store provider with provisioned capacity.
class CloudKvStateStorage final : public StateStorage {
 public:
  /// Does not take ownership of `backing`.
  CloudKvStateStorage(KvStore* backing, const CloudKvOptions& options);

  Future<Status> Write(const std::string& grain_key, std::string bytes,
                       Executor* exec) override;
  Future<std::string> Read(const std::string& grain_key,
                            Executor* exec) override;
  Future<Status> Clear(const std::string& grain_key, Executor* exec) override;

  /// Mirrors the provider's counters into the unified registry as
  /// "storage.cloud.writes/reads/throttled" (called on registration).
  void BindMetrics(MetricsRegistry* metrics) override;

  /// Counters for tests and the persistence-policy ablation bench.
  int64_t writes() const;
  int64_t reads() const;
  int64_t throttled() const;

 private:
  double UnitsFor(int64_t bytes) const;
  Micros SampleLatency();

  KvStore* backing_;
  const CloudKvOptions options_;
  TokenBucket write_bucket_;
  TokenBucket read_bucket_;

  mutable std::mutex mu_;
  Rng rng_;
  int64_t writes_ = 0;
  int64_t reads_ = 0;
  int64_t throttled_ = 0;

  // Registry mirrors; null until BindMetrics (atomic because registration
  // may race in-flight requests in real mode).
  std::atomic<Counter*> writes_metric_{nullptr};
  std::atomic<Counter*> reads_metric_{nullptr};
  std::atomic<Counter*> throttled_metric_{nullptr};
};

}  // namespace aodb

#endif  // AODB_STORAGE_CLOUD_KV_H_
