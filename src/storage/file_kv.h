// Persistent log-structured KV store (bitcask-style): an append-only record
// log with CRC32C-checksummed records, an in-memory table of live entries,
// periodic compaction into a fresh segment, and full crash recovery by log
// replay. This is the durable medium standing in for the managed cloud
// store's backing storage.

#ifndef AODB_STORAGE_FILE_KV_H_
#define AODB_STORAGE_FILE_KV_H_

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/kv_store.h"

namespace aodb {

/// Tuning knobs for the log-structured store.
struct FileKvOptions {
  /// Compaction is triggered when the live data is smaller than
  /// `garbage_ratio` times the log bytes written since the last compaction.
  double garbage_ratio = 0.5;
  /// Minimum log bytes before compaction is considered.
  int64_t min_compaction_bytes = 4 << 20;
  /// fsync after every batch (slow; off by default, matching the paper's
  /// "grain storage write rate is a tunable durability decision").
  bool sync_writes = false;
};

/// Single-directory persistent store. Thread-safe.
///
/// On-disk layout: numbered segment files `<dir>/seg-N.log` containing
/// records `[crc32c(4)][len(4)][payload]` where the payload encodes either
/// a Put(key, value) or a Delete(key), or a batch thereof. Open() replays
/// all segments in order, dropping any trailing torn record.
class FileKvStore final : public KvStore {
 public:
  ~FileKvStore() override;

  /// Opens (creating if needed) the store in `dir`.
  static Result<std::unique_ptr<FileKvStore>> Open(
      const std::string& dir, const FileKvOptions& options = {});

  Status Put(const std::string& key, const std::string& value) override;
  Result<std::string> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  Result<std::vector<std::pair<std::string, std::string>>> List(
      const std::string& prefix) override;
  Status Apply(const WriteBatch& batch) override;
  Result<int64_t> Count() override;

  /// Forces a compaction (rewrite of live data into a fresh segment).
  Status Compact();

  /// Closes the active segment file; further writes fail. Called by the
  /// destructor.
  void Close();

  /// Log bytes appended since open (for tests/benchmarks).
  int64_t BytesAppended() const;
  /// Number of compactions run.
  int64_t Compactions() const;

 private:
  FileKvStore(std::string dir, FileKvOptions options);

  Status ReplaySegments();
  Status OpenActiveSegment(int64_t seq);
  Status AppendRecord(const std::string& payload);
  Status MaybeCompactLocked();
  static std::string EncodeBatch(const WriteBatch& batch);
  Status ApplyLocked(const WriteBatch& batch);

  const std::string dir_;
  const FileKvOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::string> table_;
  std::FILE* active_ = nullptr;
  int64_t active_seq_ = 0;
  int64_t bytes_appended_ = 0;
  int64_t bytes_since_compaction_ = 0;
  int64_t live_bytes_ = 0;
  int64_t compactions_ = 0;
  bool closed_ = false;
};

}  // namespace aodb

#endif  // AODB_STORAGE_FILE_KV_H_
