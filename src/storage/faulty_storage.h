// FaultyStateStorage: a decorator that injects the FaultInjector's storage
// fault model (transient errors and latency spikes) in front of any real
// StateStorage provider. Wrap the provider you register on the cluster:
//
//   auto faulty = std::make_shared<FaultyStateStorage>(inner, &injector);
//   cluster.RegisterStateStorage("cloud", faulty);
//
// Faults fire before the inner provider is consulted, so an injected error
// never reaches the backing store — exactly the shape of a request-level
// storage-service failure that a client retry can heal.

#ifndef AODB_STORAGE_FAULTY_STORAGE_H_
#define AODB_STORAGE_FAULTY_STORAGE_H_

#include <memory>
#include <string>
#include <utility>

#include "actor/fault.h"
#include "storage/state_storage.h"

namespace aodb {

class FaultyStateStorage final : public StateStorage {
 public:
  /// Does not take ownership of `injector`; shares ownership of `inner`.
  FaultyStateStorage(std::shared_ptr<StateStorage> inner,
                     FaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  /// Metrics belong to the real provider: forward so the decorator is
  /// transparent in the registry.
  void BindMetrics(MetricsRegistry* metrics) override {
    inner_->BindMetrics(metrics);
  }

  Future<Status> Write(const std::string& grain_key, std::string bytes,
                       Executor* exec) override {
    Status fault = injector_->NextStorageFault();
    Micros delay = injector_->NextStorageDelay();
    if (!fault.ok()) return Fail<Status>(fault, delay, exec);
    if (injector_->NextTornWrite()) {
      // Torn write: the storage process dies mid-append and its log
      // recovery drops the partial tail record (the contract FileKvStore's
      // replay provides — see the torn-tail recovery tests). Net effect at
      // this boundary: the write fails un-acked with IoError and the
      // PREVIOUS durable snapshot stays readable. IoError is deliberately
      // non-transient — the persistence retry loop surfaces it to the
      // caller, whose own retry re-issues the whole write.
      return Fail<Status>(
          Status::IoError("torn write: tail record discarded on recovery"),
          delay, exec);
    }
    if (delay > 0) return Delay(inner_->Write(grain_key, std::move(bytes), exec), delay, exec);
    return inner_->Write(grain_key, std::move(bytes), exec);
  }

  Future<std::string> Read(const std::string& grain_key,
                           Executor* exec) override {
    Status fault = injector_->NextStorageFault();
    Micros delay = injector_->NextStorageDelay();
    if (!fault.ok()) return Fail<std::string>(fault, delay, exec);
    if (delay > 0) return Delay(inner_->Read(grain_key, exec), delay, exec);
    return inner_->Read(grain_key, exec);
  }

  Future<Status> Clear(const std::string& grain_key,
                       Executor* exec) override {
    Status fault = injector_->NextStorageFault();
    Micros delay = injector_->NextStorageDelay();
    if (!fault.ok()) return Fail<Status>(fault, delay, exec);
    if (delay > 0) return Delay(inner_->Clear(grain_key, exec), delay, exec);
    return inner_->Clear(grain_key, exec);
  }

  StateStorage* inner() const { return inner_.get(); }

 private:
  /// An injected failure still costs (at least) the spike latency: the
  /// client waited on a request that eventually errored out.
  template <typename T>
  static Future<T> Fail(const Status& fault, Micros delay, Executor* exec) {
    if (delay <= 0) return Future<T>::FromError(fault);
    Promise<T> p;
    exec->PostAfter(delay, [p, fault] { p.SetError(fault); });
    return p.GetFuture();
  }

  /// Defers the inner result by `delay` (the latency spike).
  template <typename T>
  static Future<T> Delay(Future<T> f, Micros delay, Executor* exec) {
    Promise<T> p;
    f.OnReady([p, delay, exec](Result<T>&& r) {
      auto shared = std::make_shared<Result<T>>(std::move(r));
      exec->PostAfter(delay, [p, shared] { p.SetResult(std::move(*shared)); });
    });
    return p.GetFuture();
  }

  std::shared_ptr<StateStorage> inner_;
  FaultInjector* injector_;
};

}  // namespace aodb

#endif  // AODB_STORAGE_FAULTY_STORAGE_H_
