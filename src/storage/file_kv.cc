#include "storage/file_kv.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/codec.h"
#include "common/logging.h"

namespace fs = std::filesystem;

namespace aodb {

namespace {

constexpr char kSegPrefix[] = "seg-";
constexpr char kSegSuffix[] = ".log";

std::string SegPath(const std::string& dir, int64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08lld%s", kSegPrefix,
                static_cast<long long>(seq), kSegSuffix);
  return dir + "/" + buf;
}

/// Parses "seg-N.log" into N; returns -1 if not a segment file name.
int64_t ParseSegSeq(const std::string& name) {
  if (name.size() <= sizeof(kSegPrefix) - 1 + sizeof(kSegSuffix) - 1)
    return -1;
  if (name.compare(0, 4, kSegPrefix) != 0) return -1;
  if (name.compare(name.size() - 4, 4, kSegSuffix) != 0) return -1;
  std::string digits = name.substr(4, name.size() - 8);
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
  }
  return std::strtoll(digits.c_str(), nullptr, 10);
}

}  // namespace

FileKvStore::FileKvStore(std::string dir, FileKvOptions options)
    : dir_(std::move(dir)), options_(options) {}

FileKvStore::~FileKvStore() { Close(); }

Result<std::unique_ptr<FileKvStore>> FileKvStore::Open(
    const std::string& dir, const FileKvOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create dir " + dir);
  std::unique_ptr<FileKvStore> store(new FileKvStore(dir, options));
  Status st = store->ReplaySegments();
  if (!st.ok()) return st;
  return store;
}

Status FileKvStore::ReplaySegments() {
  std::vector<int64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    int64_t seq = ParseSegSeq(entry.path().filename().string());
    if (seq >= 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  for (int64_t seq : seqs) {
    std::FILE* f = std::fopen(SegPath(dir_, seq).c_str(), "rb");
    if (f == nullptr) return Status::IoError("cannot open segment");
    for (;;) {
      uint8_t header[8];
      size_t n = std::fread(header, 1, 8, f);
      if (n < 8) break;  // Clean EOF or torn header: stop replay here.
      uint32_t crc, len;
      std::memcpy(&crc, header, 4);
      std::memcpy(&len, header + 4, 4);
      if (len > (64u << 20)) {
        AODB_LOG(Warn, "segment %lld: implausible record length, truncating",
                 static_cast<long long>(seq));
        break;
      }
      std::string payload(len, '\0');
      if (std::fread(payload.data(), 1, len, f) < len) break;  // Torn tail.
      if (Crc32c(payload) != crc) {
        AODB_LOG(Warn, "segment %lld: CRC mismatch, truncating replay",
                 static_cast<long long>(seq));
        break;
      }
      // Decode a batch of ops.
      BufReader r(payload);
      uint64_t count = 0;
      if (!r.GetVarint(&count).ok()) break;
      bool bad = false;
      for (uint64_t i = 0; i < count && !bad; ++i) {
        uint8_t is_delete = 0;
        std::string key, value;
        if (!r.GetU8(&is_delete).ok() || !r.GetString(&key).ok()) {
          bad = true;
          break;
        }
        if (is_delete == 0 && !r.GetString(&value).ok()) {
          bad = true;
          break;
        }
        if (is_delete != 0) {
          auto it = table_.find(key);
          if (it != table_.end()) {
            live_bytes_ -=
                static_cast<int64_t>(it->first.size() + it->second.size());
            table_.erase(it);
          }
        } else {
          auto it = table_.find(key);
          if (it != table_.end()) {
            live_bytes_ -= static_cast<int64_t>(it->second.size());
            it->second = std::move(value);
            live_bytes_ += static_cast<int64_t>(it->second.size());
          } else {
            live_bytes_ += static_cast<int64_t>(key.size() + value.size());
            table_.emplace(std::move(key), std::move(value));
          }
        }
      }
      if (bad) break;
    }
    std::fclose(f);
  }
  int64_t next_seq = seqs.empty() ? 0 : seqs.back() + 1;
  return OpenActiveSegment(next_seq);
}

Status FileKvStore::OpenActiveSegment(int64_t seq) {
  active_ = std::fopen(SegPath(dir_, seq).c_str(), "ab");
  if (active_ == nullptr) return Status::IoError("cannot open active segment");
  active_seq_ = seq;
  return Status::OK();
}

std::string FileKvStore::EncodeBatch(const WriteBatch& batch) {
  BufWriter w;
  w.PutVarint(batch.ops.size());
  for (const auto& op : batch.ops) {
    w.PutU8(op.is_delete ? 1 : 0);
    w.PutString(op.key);
    if (!op.is_delete) w.PutString(op.value);
  }
  return w.Release();
}

Status FileKvStore::AppendRecord(const std::string& payload) {
  if (closed_ || active_ == nullptr) {
    return Status::FailedPrecondition("store is closed");
  }
  uint32_t crc = Crc32c(payload);
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint8_t header[8];
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &len, 4);
  if (std::fwrite(header, 1, 8, active_) < 8 ||
      std::fwrite(payload.data(), 1, payload.size(), active_) <
          payload.size()) {
    return Status::IoError("short write to segment");
  }
  if (std::fflush(active_) != 0) return Status::IoError("flush failed");
  if (options_.sync_writes) {
    // fileno+fsync: full durability when requested.
    if (fsync(fileno(active_)) != 0) return Status::IoError("fsync failed");
  }
  int64_t written = static_cast<int64_t>(8 + payload.size());
  bytes_appended_ += written;
  bytes_since_compaction_ += written;
  return Status::OK();
}

Status FileKvStore::ApplyLocked(const WriteBatch& batch) {
  AODB_RETURN_NOT_OK(AppendRecord(EncodeBatch(batch)));
  for (const auto& op : batch.ops) {
    if (op.is_delete) {
      auto it = table_.find(op.key);
      if (it != table_.end()) {
        live_bytes_ -=
            static_cast<int64_t>(it->first.size() + it->second.size());
        table_.erase(it);
      }
    } else {
      auto it = table_.find(op.key);
      if (it != table_.end()) {
        live_bytes_ -= static_cast<int64_t>(it->second.size());
        it->second = op.value;
        live_bytes_ += static_cast<int64_t>(op.value.size());
      } else {
        live_bytes_ += static_cast<int64_t>(op.key.size() + op.value.size());
        table_.emplace(op.key, op.value);
      }
    }
  }
  return MaybeCompactLocked();
}

Status FileKvStore::Put(const std::string& key, const std::string& value) {
  WriteBatch b;
  b.Put(key, value);
  return Apply(b);
}

Status FileKvStore::Delete(const std::string& key) {
  WriteBatch b;
  b.Delete(key);
  return Apply(b);
}

Status FileKvStore::Apply(const WriteBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(batch);
}

Result<std::string> FileKvStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return Status::NotFound("key: " + key);
  return it->second;
}

Result<std::vector<std::pair<std::string, std::string>>> FileKvStore::List(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = table_.lower_bound(prefix); it != table_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

Result<int64_t> FileKvStore::Count() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(table_.size());
}

Status FileKvStore::MaybeCompactLocked() {
  if (bytes_since_compaction_ < options_.min_compaction_bytes) {
    return Status::OK();
  }
  if (static_cast<double>(live_bytes_) >
      options_.garbage_ratio * static_cast<double>(bytes_since_compaction_)) {
    return Status::OK();
  }
  // Rewrite live table into a fresh segment, then delete older segments.
  int64_t new_seq = active_seq_ + 1;
  std::FILE* old = active_;
  AODB_RETURN_NOT_OK(OpenActiveSegment(new_seq));
  std::fclose(old);
  bytes_since_compaction_ = 0;
  WriteBatch snapshot;
  for (const auto& [k, v] : table_) snapshot.Put(k, v);
  if (!snapshot.empty()) {
    AODB_RETURN_NOT_OK(AppendRecord(EncodeBatch(snapshot)));
  }
  // Snapshot bytes are not garbage; reset the counter after writing it.
  bytes_since_compaction_ = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    int64_t seq = ParseSegSeq(entry.path().filename().string());
    if (seq >= 0 && seq < new_seq) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }
  }
  ++compactions_;
  return Status::OK();
}

Status FileKvStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t saved_min = bytes_since_compaction_;
  bytes_since_compaction_ =
      std::max<int64_t>(bytes_since_compaction_, options_.min_compaction_bytes);
  int64_t saved_live = live_bytes_;
  live_bytes_ = 0;  // Force the ratio check to pass.
  Status st = MaybeCompactLocked();
  live_bytes_ = saved_live;
  if (!st.ok()) bytes_since_compaction_ = saved_min;
  return st;
}

void FileKvStore::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
}

int64_t FileKvStore::BytesAppended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

int64_t FileKvStore::Compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

}  // namespace aodb
