// Sharded in-memory KV store: the default grain-state medium in tests and
// the backing map of the simulated cloud store.

#ifndef AODB_STORAGE_MEM_KV_H_
#define AODB_STORAGE_MEM_KV_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/kv_store.h"

namespace aodb {

/// Thread-safe in-memory store. Keys are kept in sorted order per shard so
/// prefix List() is efficient.
class MemKvStore final : public KvStore {
 public:
  explicit MemKvStore(int shards = 16);

  Status Put(const std::string& key, const std::string& value) override;
  Result<std::string> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  Result<std::vector<std::pair<std::string, std::string>>> List(
      const std::string& prefix) override;
  Status Apply(const WriteBatch& batch) override;
  Result<int64_t> Count() override;

 private:
  struct Shard {
    std::mutex mu;
    std::map<std::string, std::string> data;
  };
  Shard& ShardFor(const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aodb

#endif  // AODB_STORAGE_MEM_KV_H_
