#include "storage/mem_kv.h"

#include <memory>

#include "actor/actor_id.h"

namespace aodb {

MemKvStore::MemKvStore(int shards) {
  if (shards < 1) shards = 1;
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

MemKvStore::Shard& MemKvStore::ShardFor(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return *shards_[h % shards_.size()];
}

Status MemKvStore::Put(const std::string& key, const std::string& value) {
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.data[key] = value;
  return Status::OK();
}

Result<std::string> MemKvStore::Get(const std::string& key) {
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.data.find(key);
  if (it == s.data.end()) return Status::NotFound("key: " + key);
  return it->second;
}

Status MemKvStore::Delete(const std::string& key) {
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.data.erase(key);
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>> MemKvStore::List(
    const std::string& prefix) {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->data.lower_bound(prefix); it != shard->data.end();
         ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out.emplace_back(it->first, it->second);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status MemKvStore::Apply(const WriteBatch& batch) {
  // Shard-local mutation; a batch touching several shards locks them one at
  // a time. Atomicity holds because no reader can observe a partially
  // applied batch through this API's single-key reads... except across
  // keys, which in-memory tests do not rely on; the durable store provides
  // log atomicity.
  for (const auto& op : batch.ops) {
    if (op.is_delete) {
      AODB_RETURN_NOT_OK(Delete(op.key));
    } else {
      AODB_RETURN_NOT_OK(Put(op.key, op.value));
    }
  }
  return Status::OK();
}

Result<int64_t> MemKvStore::Count() {
  int64_t n = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->data.size());
  }
  return n;
}

}  // namespace aodb
