// Synchronous key-value store interface: the lowest storage layer. The
// persistent implementation (FileKvStore) plays the role of the cloud
// store's backing medium; CloudKvSim adds the provisioned-capacity and
// latency behaviour of a managed service on top.

#ifndef AODB_STORAGE_KV_STORE_H_
#define AODB_STORAGE_KV_STORE_H_

#include <string>
#include <vector>

#include "actor/system_kv.h"
#include "common/status.h"

namespace aodb {

/// A batch of writes applied atomically (all-or-nothing in the log).
struct WriteBatch {
  struct Op {
    bool is_delete = false;
    std::string key;
    std::string value;
  };
  std::vector<Op> ops;

  void Put(std::string key, std::string value) {
    ops.push_back(Op{false, std::move(key), std::move(value)});
  }
  void Delete(std::string key) {
    ops.push_back(Op{true, std::move(key), ""});
  }
  bool empty() const { return ops.empty(); }
};

/// Abstract synchronous KV store. Extends SystemKv (Put/Get/Delete/List) so
/// any store can also serve as the cluster system store.
class KvStore : public SystemKv {
 public:
  /// Applies all operations atomically.
  virtual Status Apply(const WriteBatch& batch) = 0;

  /// Number of live keys.
  virtual Result<int64_t> Count() = 0;
};

}  // namespace aodb

#endif  // AODB_STORAGE_KV_STORE_H_
