// Deterministic chaos exploration (FoundationDB-style simulation testing):
// a seeded generator composes randomized fault schedules — silo crashes and
// restarts, unannounced wedges and gray failures, asymmetric link-level
// partitions, message drop/duplication/corruption/reorder, transient storage
// errors and torn writes — and each schedule runs against a full simulated
// cluster driving an oracle workload whose correctness is checked by
// pluggable invariants:
//
//   1. Exactly-one-live-activation: at every quiesce point, no actor id has
//      a live activation on more than one silo, and every live activation is
//      the one the directory points at (split-brain detection).
//   2. Durable-ack conservation: every operation acked to the client is
//      readable after the cluster heals and every activation is rebuilt from
//      persisted state (no acked write lost).
//   3. Monotonic sequencing: the oracle actor's replies never go backwards,
//      across crashes, duplicated deliveries, and reordered messages.
//   4. No leaked promises: after the run tears down, every promise that ever
//      had a continuation attached was completed (nothing hung forever).
//
// A violating seed is written out as a replay artifact — the seed plus the
// full fault schedule as JSON — which reproduces the run bit-identically
// (same fingerprint), and delta-debugging (ddmin) shrinks the schedule to a
// minimal set of discrete fault events that still trips the invariant.

#ifndef AODB_SIM_EXPLORE_H_
#define AODB_SIM_EXPLORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "actor/fault.h"
#include "common/clock.h"
#include "common/status.h"

namespace aodb {
namespace dst {

/// Shape of one exploration run: the cluster, the oracle workload, and the
/// ceilings the schedule generator draws fault intensities from. All times
/// are virtual (simulator) time.
struct ExploreConfig {
  int num_silos = 3;
  /// Oracle actors (dst.Seq grains) driven concurrently by the client.
  int num_actors = 8;
  /// Target acked operations per actor; drivers stop early at the fault
  /// window's end regardless.
  int ops_per_actor = 12;
  /// Gap between an ack and the next operation on the same actor.
  Micros op_gap_us = 15 * kMicrosPerMilli;
  /// Gap before re-submitting the SAME sequence number after a failure.
  Micros retry_gap_us = 40 * kMicrosPerMilli;
  /// Length of the fault window (faults are scheduled inside it; drivers
  /// stop issuing new operations when it closes).
  Micros duration_us = 4 * kMicrosPerSecond;
  /// Heal-to-teardown settle: long enough for restarts, membership
  /// convergence, and every outstanding retry chain to run dry.
  Micros settle_us = 12 * kMicrosPerSecond;
  /// Per-silo working-set cap (RuntimeOptions::max_resident_activations).
  /// Deliberately tiny against num_actors so every sweep exercises the
  /// paging path: evictions, paged directory entries, and activation faults
  /// race the injected crashes/partitions in ordinary exploration runs.
  /// 0 disables paging.
  int max_resident_activations = 3;

  /// Quiesce-point cadence of the catalog/directory invariant checker.
  /// Deliberately finer than the idle-deactivation timeout: a split-brained
  /// activation created by stale mail only lives until the idle scanner
  /// reaps it (~10ms), so a coarse cadence would sample right past it.
  Micros check_interval_us = 5 * kMicrosPerMilli;

  // Generator ceilings (per-plan counts are drawn in [0, max]; per-plan
  // probabilities in [0, max)).
  int max_crashes = 2;
  int max_wedges = 1;
  int max_partitions = 2;
  double max_drop_prob = 0.02;
  double max_duplicate_prob = 0.02;
  double max_corrupt_prob = 0.01;
  double max_reorder_prob = 0.05;
  double max_storage_error_prob = 0.10;
  double max_torn_write_prob = 0.05;

  /// Self-test hook: append a synthetic invariant violation (naming oracle
  /// actor 0) at the end of the fault window. Exercises the whole
  /// violation-handling pipeline — postmortem bundle, replay artifact,
  /// nonzero exit — without needing a real bug (tier-1 bundle-sanity).
  bool force_violation = false;
};

/// Outcome of one scenario run.
struct RunResult {
  /// Human-readable invariant violations; empty means the run was clean.
  std::vector<std::string> violations;
  /// FNV-1a digest (hex) over the run's observable outcome: per-actor acked
  /// and durable sequence numbers, every fault/robustness counter, and the
  /// violation list. Two runs of the same plan must produce the same
  /// fingerprint — this is what --replay asserts.
  std::string fingerprint;
  int64_t acked_ops = 0;
  /// Quiesce-point checks executed (sanity: the checker actually ran).
  int64_t checks_run = 0;
  /// Postmortem bundle (aodb.postmortem.v1 JSON), built from the live
  /// cluster when the run violated an invariant; empty on a clean run.
  /// Deterministic for a given (plan, config) — replays produce the same
  /// bytes. Excluded from the fingerprint (it embeds the violation list the
  /// fingerprint already covers).
  std::string postmortem_json;
};

/// Draws a randomized fault schedule from `seed` under the config ceilings.
/// Deterministic: the same (seed, config) always yields the same plan.
FaultPlan GeneratePlan(uint64_t seed, const ExploreConfig& config);

/// Runs one full scenario — simulated cluster, oracle workload, fault plan,
/// all four invariant checkers — and reports violations + fingerprint.
/// Deterministic for a given (plan, config).
RunResult RunScenario(const FaultPlan& plan, const ExploreConfig& config);

/// Serializes a plan as a self-contained JSON replay artifact.
std::string PlanToJson(const FaultPlan& plan);

/// Parses a replay artifact produced by PlanToJson (or hand-edited).
Status PlanFromJson(const std::string& json, FaultPlan* out);

/// Number of discrete fault events in the plan (a crash+restart pair, a
/// wedge, or a partition sever+heal pair each count as one event).
int CountFaultEvents(const FaultPlan& plan);

/// Delta-debugging (ddmin) over the plan's discrete fault events: returns
/// the smallest schedule found that still produces at least one violation.
/// Probabilistic fault streams (drop/dup/corrupt/reorder/storage) are kept
/// fixed — they are part of the seed's identity, not the schedule. Runs at
/// most `max_runs` candidate scenarios; `shrink_runs` (optional) reports how
/// many were actually executed.
FaultPlan ShrinkPlan(const FaultPlan& plan, const ExploreConfig& config,
                     int max_runs = 64, int* shrink_runs = nullptr);

}  // namespace dst
}  // namespace aodb

#endif  // AODB_SIM_EXPLORE_H_
